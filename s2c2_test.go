package s2c2_test

import (
	"testing"

	s2c2 "github.com/coded-computing/s2c2"
)

// The facade tests exercise the public API exactly as a downstream user
// would: encode → assign → compute → decode, plus the high-level Simulate
// entry point.

func TestPublicCodedMatVecRoundTrip(t *testing.T) {
	a := s2c2.NewDenseFromRows([][]float64{
		{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12},
	})
	x := []float64{1, -1}
	want := s2c2.MatVec(a, x)

	code, err := s2c2.NewMDSCode(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)

	strat := &s2c2.GeneralS2C2{N: 4, K: 2, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1, 0.05}) // worker 3 is nearly dead
	if err != nil {
		t.Fatal(err)
	}
	var partials []*s2c2.Partial
	for w := 0; w < 4; w++ {
		if plan.RowsFor(w) > 0 {
			partials = append(partials, enc.WorkerCompute(w, x, plan.Assignments[w]))
		}
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("row %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestPublicSimulateQuickstart(t *testing.T) {
	data := s2c2.NewClassificationDataset(200, 24, 1)
	lr := &s2c2.LogisticRegression{Data: data, LR: 0.5, Lambda: 1e-4}
	res, err := s2c2.Simulate(lr, s2c2.SimConfig{
		N: 6, K: 4,
		Strategy: s2c2.S2C2Strategy(6, 4, 0),
		Trace:    s2c2.ControlledCluster(6, 1, 30, 1),
		Numeric:  true,
		MaxIter:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 10 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	local, _ := s2c2.RunLocal(&s2c2.LogisticRegression{Data: data, LR: 0.5, Lambda: 1e-4}, 10)
	for i := range local {
		if d := res.State[i] - local[i]; d > 1e-6 || d < -1e-6 {
			t.Fatal("simulated model differs from local ground truth")
		}
	}
	if res.Aggregate.MeanLatency() <= 0 {
		t.Fatal("latency accounting missing")
	}
}

func TestPublicPolynomialHessian(t *testing.T) {
	data := s2c2.NewClassificationDataset(40, 12, 2)
	code, err := s2c2.NewPolyCode(6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.EncodeHessian(data.X)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, 40)
	for i := range d {
		d[i] = 0.5
	}
	var partials []*s2c2.Partial
	for w := 0; w < 4; w++ {
		partials = append(partials, enc.WorkerCompute(w, d, []s2c2.Range{{Lo: 0, Hi: enc.BlockColsA}}))
	}
	h, err := enc.Decode(partials)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := h.Dims(); r != 12 || c != 12 {
		t.Fatalf("Hessian dims %dx%d", r, c)
	}
}

func TestPublicTraceAndForecaster(t *testing.T) {
	tr := s2c2.CloudStable(4, 100, 3)
	var ar s2c2.AR1
	if err := ar.Fit(tr.Speeds); err != nil {
		t.Fatal(err)
	}
	p := ar.Predict(tr.Speeds[0][:50])
	if p <= 0 {
		t.Fatalf("prediction %v", p)
	}
	if s2c2.MAPE([]float64{1.1}, []float64{1.0}) <= 0 {
		t.Fatal("MAPE wiring broken")
	}
}
