GO ?= go

.PHONY: all build test test-noasm race lint vet-tool fmt bench-smoke ci

all: lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-noasm:
	$(GO) build -tags noasm ./...
	$(GO) test -tags noasm ./...

race:
	$(GO) test -race ./...
	S2C2_KERNEL_BACKEND=generic $(GO) test -race ./internal/kernel ./internal/wire

# lint mirrors the CI static-analysis job: gofmt, go vet, then the
# repo's own invariant suite both standalone (the authority — full
# module view) and through the go vet -vettool protocol.
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi
	$(GO) vet ./...
	$(GO) build -o ./s2c2-vet ./cmd/s2c2-vet
	./s2c2-vet ./...
	$(GO) vet -vettool=$$(pwd)/s2c2-vet ./...

# vet-tool just builds the invariant checker binary.
vet-tool:
	$(GO) build -o ./s2c2-vet ./cmd/s2c2-vet

fmt:
	gofmt -w .

bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

ci: lint test test-noasm race bench-smoke
