// Package s2c2 is a Go implementation of Slack Squeeze Coded Computing
// (Narra et al., SC '19): straggler-tolerant distributed computation that
// encodes data once with a conservative (n,k)-MDS or polynomial code and
// then *adaptively* assigns each worker a slice of its coded partition
// proportional to its predicted speed, so no compute capacity is wasted
// when the cluster is healthier than the code assumed.
//
// The package re-exports the stable surface of the internal packages:
//
//   - dense linear algebra (Dense, MatVec, ...) — the from-scratch
//     substrate everything runs on;
//   - MDS and polynomial codecs (NewMDSCode, NewPolyCode, exact GF(p)
//     variants) with per-row partial decoding;
//   - work-assignment strategies (GeneralS2C2 — Algorithm 1 of the paper,
//     BasicS2C2, ConventionalMDS);
//   - speed forecasting (NewLSTM, AR1, ARIMA models);
//   - speed-trace generators mirroring the paper's measured environments;
//   - a discrete-event cluster simulator (virtual time, real numerics)
//     and a real TCP master/worker runtime;
//   - the paper's workloads (logistic regression, SVM, PageRank, graph
//     filtering, Hessian computation).
//
// Quick start (simulated cluster, general S2C2, one straggler):
//
//	data := s2c2.NewClassificationDataset(1200, 100, 1)
//	lr := &s2c2.LogisticRegression{Data: data, LR: 0.5, Lambda: 1e-4}
//	res, err := s2c2.Simulate(lr, s2c2.SimConfig{
//		N: 10, K: 7,
//		Strategy: s2c2.S2C2Strategy(10, 7, 0),
//		Trace:    s2c2.ControlledCluster(10, 1, 50, 1),
//		MaxIter:  20,
//	})
//
// See examples/ for runnable programs and cmd/s2c2-exp for the harness
// that regenerates every figure of the paper.
package s2c2

import (
	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/rpc"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/sim"
	"github.com/coded-computing/s2c2/internal/trace"
	"github.com/coded-computing/s2c2/internal/workloads"
)

// ---- Linear algebra -------------------------------------------------

// Dense is a row-major dense float64 matrix.
type Dense = mat.Dense

// NewDense returns a zeroed r-by-c matrix.
func NewDense(r, c int) *Dense { return mat.New(r, c) }

// NewDenseFromRows builds a matrix from row slices, copying them.
func NewDenseFromRows(rows [][]float64) *Dense { return mat.NewFromRows(rows) }

// MatVec computes A·x.
func MatVec(a *Dense, x []float64) []float64 { return mat.MatVec(a, x) }

// MatVecInto computes A·x into a caller slice (zero allocations).
func MatVecInto(a *Dense, x, y []float64) { mat.MatVecInto(a, x, y) }

// MatMul computes A·B with the cache-blocked kernel.
func MatMul(a, b *Dense) *Dense { return mat.MatMul(a, b) }

// MatMulInto computes A·B into a caller matrix.
func MatMulInto(a, b, c *Dense) { mat.MatMulInto(a, b, c) }

// ParallelMatVec computes A·x on the persistent worker pool; workers caps
// the fan-out (<= 0 uses every pool worker).
func ParallelMatVec(a *Dense, x []float64, workers int) []float64 {
	return mat.ParallelMatVec(a, x, workers)
}

// ParallelMatVecInto is ParallelMatVec writing into a caller slice.
func ParallelMatVecInto(a *Dense, x, y []float64, workers int) {
	mat.ParallelMatVecInto(a, x, y, workers)
}

// ParallelMatMul computes A·B splitting row bands across the pool.
func ParallelMatMul(a, b *Dense, workers int) *Dense {
	return mat.ParallelMatMul(a, b, workers)
}

// Transpose returns Aᵀ.
func Transpose(a *Dense) *Dense { return mat.Transpose(a) }

// ---- Coding layer ----------------------------------------------------

// Range is a half-open row interval within a coded partition.
type Range = coding.Range

// Partial is a worker's partial result over its assigned row ranges.
type Partial = coding.Partial

// MDSCode is the systematic (n,k) MDS code over float64.
type MDSCode = coding.MDSCode

// EncodedMatrix holds the n coded partitions of a data matrix.
type EncodedMatrix = coding.EncodedMatrix

// NewMDSCode builds an (n,k) MDS code (any k of n partitions decode).
func NewMDSCode(n, k int) (*MDSCode, error) { return coding.NewMDSCode(n, k) }

// DecodeWorkspace holds reusable MDS decode state (cached factorizations,
// index tables, scratch); pass one to EncodedMatrix.DecodeMatVecInto to
// make steady-state decoding allocation-free.
type DecodeWorkspace = coding.DecodeWorkspace

// GFMDSCode is the bit-exact MDS code over GF(2³¹−1).
type GFMDSCode = coding.GFMDSCode

// GFElem is an element of GF(2³¹−1).
type GFElem = gf.Elem

// NewGFElem reduces an arbitrary integer into GF(2³¹−1).
func NewGFElem(v uint64) GFElem { return gf.New(v) }

// GFEncodedMatrix holds the n exact coded partitions of a field matrix;
// its Parts distribute over a cluster with Master.DistributeGFPartitions.
type GFEncodedMatrix = coding.GFEncodedMatrix

// GFPartial is a worker's exact partial result over GF(2³¹−1) — what
// Master.RunGFRound gathers and GFEncodedMatrix.DecodeMatVec consumes.
type GFPartial = coding.GFPartial

// GFMatrix is a dense matrix over GF(2³¹−1).
type GFMatrix = gf.Matrix

// NewGFMatrixFromData adopts row-major field elements (length r·c) as an
// r-by-c field matrix without copying — e.g. to wrap a Lagrange share for
// distribution as an exact partition.
func NewGFMatrixFromData(r, c int, data []GFElem) *GFMatrix {
	return gf.NewMatrixFromData(r, c, data)
}

// NewGFMDSCode builds an exact (n,k) code for integer payloads.
func NewGFMDSCode(n, k int) (*GFMDSCode, error) { return coding.NewGFMDSCode(n, k) }

// CompleteGFShares assembles per-worker complete result vectors from an
// exact round's partials — the map LagrangeCode.Decode consumes.
func CompleteGFShares(partials []*GFPartial, blockRows int) (map[int][]GFElem, error) {
	return coding.CompleteGFShares(partials, blockRows)
}

// PolyCode is the polynomial code for bilinear computations (Hessians).
type PolyCode = coding.PolyCode

// EncodedBilinear holds per-worker encoded partitions for Aᵀ·diag(d)·B.
type EncodedBilinear = coding.EncodedBilinear

// NewPolyCode builds a polynomial code with n workers and an a×b block
// grid (any a·b of n evaluations decode).
func NewPolyCode(n, a, b int) (*PolyCode, error) { return coding.NewPolyCode(n, a, b) }

// LagrangeCode extends coded computing to arbitrary polynomial functions
// of the data blocks (Lagrange Coded Computing, exact over GF(2³¹−1)).
type LagrangeCode = coding.LagrangeCode

// NewLagrangeCode builds a Lagrange code with n workers over k blocks;
// a degree-d computation decodes from any (k−1)·d+1 worker results.
func NewLagrangeCode(n, k int) (*LagrangeCode, error) { return coding.NewLagrangeCode(n, k) }

// ---- Strategies (the paper's contribution) ---------------------------

// Plan maps each worker to row ranges within its coded partition.
type Plan = sched.Plan

// Strategy produces per-iteration plans from predicted speeds.
type Strategy = sched.Strategy

// GeneralS2C2 is Algorithm 1: speed-proportional cyclic chunk assignment.
type GeneralS2C2 = sched.GeneralS2C2

// BasicS2C2 is the equal-split variant that only excludes stragglers.
type BasicS2C2 = sched.BasicS2C2

// ConventionalMDS is the prior-work baseline (fastest k, rest wasted).
type ConventionalMDS = sched.ConventionalMDS

// ---- Speed prediction -------------------------------------------------

// Forecaster predicts next-iteration worker speeds.
type Forecaster = predict.Forecaster

// LSTMConfig configures the from-scratch LSTM forecaster.
type LSTMConfig = predict.LSTMConfig

// NewLSTM builds the §6.1 LSTM (1-d input/output, 4-d hidden by default).
func NewLSTM(cfg LSTMConfig) *predict.LSTM { return predict.NewLSTM(cfg) }

// DefaultLSTMConfig returns the paper's architecture.
func DefaultLSTMConfig() LSTMConfig { return predict.DefaultLSTMConfig() }

// AR1 is the ARIMA(1,0,0) baseline forecaster.
type AR1 = predict.AR1

// Ensemble is a NWS-style meta-forecaster that picks the best candidate
// model per node from trailing one-step errors.
type Ensemble = predict.Ensemble

// NewDefaultEnsemble bundles the LSTM and ARIMA family with per-node
// model selection.
func NewDefaultEnsemble(seed int64) *Ensemble { return predict.NewDefaultEnsemble(seed) }

// MAPE is the mean absolute percentage error metric (as a fraction).
func MAPE(pred, actual []float64) float64 { return predict.MAPE(pred, actual) }

// ---- Speed traces ------------------------------------------------------

// Trace holds per-worker speed series driving the simulator.
type Trace = trace.Trace

// TraceConfig parameterises the generative speed model.
type TraceConfig = trace.Config

// GenerateTrace produces a deterministic trace from the config.
func GenerateTrace(cfg TraceConfig) (*Trace, error) { return trace.Generate(cfg) }

// ControlledCluster mirrors the paper's local testbed: ±20% variation
// plus `stragglers` nodes ≥5× slower (workers 0..stragglers-1).
func ControlledCluster(workers, stragglers, steps int, seed int64) *Trace {
	return trace.ControlledCluster(workers, stragglers, steps, seed)
}

// CloudStable mirrors the low-mis-prediction cloud environment.
func CloudStable(workers, steps int, seed int64) *Trace {
	return trace.CloudStable(workers, steps, seed)
}

// CloudVolatile mirrors the high-mis-prediction cloud environment.
func CloudVolatile(workers, steps int, seed int64) *Trace {
	return trace.CloudVolatile(workers, steps, seed)
}

// ---- Simulator ----------------------------------------------------------

// CodedCluster simulates MDS-coded rounds under any strategy.
type CodedCluster = sim.CodedCluster

// PolyCluster simulates polynomial-coded bilinear rounds.
type PolyCluster = sim.PolyCluster

// UncodedReplication is the Hadoop/LATE-style replication baseline.
type UncodedReplication = sim.UncodedReplication

// OverDecomposition is the Charm++-style migration baseline.
type OverDecomposition = sim.OverDecomposition

// CommModel is the simulator's network cost model.
type CommModel = sim.CommModel

// TimeoutPolicy is the §4.3 straggler-timeout rule.
type TimeoutPolicy = sim.TimeoutPolicy

// SimConfig configures an iterative simulated job.
type SimConfig = sim.JobConfig

// SimResult reports a finished simulated job.
type SimResult = sim.JobResult

// Aggregate accumulates per-round metrics (latency, waste, bytes).
type Aggregate = sim.Aggregate

// DefaultComm returns a 10GbE-like network model.
func DefaultComm() CommModel { return sim.DefaultComm() }

// DefaultTimeout returns the paper's 15% timeout policy.
func DefaultTimeout() TimeoutPolicy { return sim.DefaultTimeout() }

// S2C2Strategy returns a general-S2C2 strategy factory for SimConfig.
// granularity 0 selects 4·n chunks (capped at the partition size).
func S2C2Strategy(n, k, granularity int) sim.StrategyFactory {
	return sim.S2C2Factory(n, k, granularity)
}

// BasicS2C2Strategy returns a basic-S2C2 strategy factory.
func BasicS2C2Strategy(n, k, granularity int) sim.StrategyFactory {
	return sim.BasicS2C2Factory(n, k, granularity)
}

// MDSStrategy returns a conventional-MDS strategy factory.
func MDSStrategy(n, k int) sim.StrategyFactory { return sim.MDSFactory(n, k) }

// Simulate runs an iterative workload on the simulated coded cluster.
// Defaults are applied for Comm and Timeout when zero-valued.
func Simulate(w Workload, cfg SimConfig) (*SimResult, error) {
	if cfg.Comm == (CommModel{}) {
		cfg.Comm = DefaultComm()
	}
	if cfg.Timeout == (TimeoutPolicy{}) {
		cfg.Timeout = DefaultTimeout()
	}
	return sim.RunIterative(w, cfg)
}

// ---- Workloads -----------------------------------------------------------

// Workload is an iterative computation expressed as coded mat-vec phases.
type Workload = workloads.Iterative

// ClassificationDataset is a dense binary-classification dataset.
type ClassificationDataset = workloads.Classification

// NewClassificationDataset generates a gisette-style synthetic dataset.
func NewClassificationDataset(samples, features int, seed int64) *ClassificationDataset {
	return workloads.SyntheticClassification(samples, features, seed)
}

// Graph bundles the adjacency/stochastic/Laplacian matrices of a graph.
type Graph = workloads.Graph

// NewPowerLawGraph generates a web-like directed graph.
func NewPowerLawGraph(nodes, meanOutDegree int, seed int64) *Graph {
	return workloads.PowerLawGraph(nodes, meanOutDegree, seed)
}

// LogisticRegression is coded batch gradient descent for logistic loss.
type LogisticRegression = workloads.LogisticRegression

// SVM is coded batch subgradient descent for hinge loss.
type SVM = workloads.SVM

// PageRank is coded power iteration for graph ranking.
type PageRank = workloads.PageRank

// GraphFilter is coded n-hop Laplacian filtering.
type GraphFilter = workloads.GraphFilter

// RunLocal executes a workload without a cluster (ground truth).
func RunLocal(w Workload, maxIter int) ([]float64, int) { return workloads.RunLocal(w, maxIter) }

// ---- TCP runtime -----------------------------------------------------------

// Master coordinates a real TCP cluster.
type Master = rpc.Master

// Worker is the TCP worker daemon.
type Worker = rpc.Worker

// WorkerConfig configures a TCP worker.
type WorkerConfig = rpc.WorkerConfig

// MasterConfig configures a TCP master (execution pool, round-buffer
// reuse, stall deadline, partition-streaming chunk size and credit
// window, retry/heartbeat/eviction policy).
type MasterConfig = rpc.MasterConfig

// RetryConfig bounds the distribution retry engine: attempts per
// partition, exponential backoff between them, and per-attempt deadline.
type RetryConfig = rpc.RetryConfig

// RecoveryStats counts failure-recovery activity — retries, partition
// re-streams, evictions, replacement admissions, admission-loop accept
// failures, and (per round) which workers died and how many of their rows
// were folded back into the plan.
type RecoveryStats = rpc.RecoveryStats

// Job is one tenant of a serving master: a private phase namespace of
// encoded datasets plus a Distribute/Run method set mirroring the
// Master's. Different jobs' rounds run concurrently over the same
// workers (Master.OpenJob).
type Job = rpc.Job

// JobConfig configures one served job (per-job Exec budget, queue
// priority).
type JobConfig = rpc.JobConfig

// JobTicket is one parked round as a PriorityPolicy sees it.
type JobTicket = rpc.JobTicket

// PriorityPolicy picks which parked round runs when a serving master's
// concurrency slot frees (MasterConfig.MaxConcurrentRounds).
type PriorityPolicy = rpc.PriorityPolicy

// FCFS is the first-come-first-served queue policy (the default).
func FCFS() PriorityPolicy { return rpc.FCFS() }

// HighestPriority prefers the parked round whose job has the largest
// JobConfig.Priority, FCFS among equals.
func HighestPriority() PriorityPolicy { return rpc.HighestPriority() }

// Exec selects the worker pool and fan-out a component runs on; use it to
// isolate co-tenant clusters in one process. The zero value shares the
// process-wide pool.
type Exec = kernel.Exec

// NewKernelPool builds a dedicated compute pool of the given size for use
// in an Exec (workers <= 0 selects GOMAXPROCS).
func NewKernelPool(workers int) *kernel.Pool { return kernel.NewPool(workers) }

// NewMaster listens for workers on addr (e.g. "127.0.0.1:0").
func NewMaster(addr string) (*Master, error) { return rpc.NewMaster(addr) }

// NewMasterWithConfig listens according to cfg.
func NewMasterWithConfig(cfg MasterConfig) (*Master, error) { return rpc.NewMasterWithConfig(cfg) }

// NewWorker dials the master and joins the cluster.
func NewWorker(cfg WorkerConfig) (*Worker, error) { return rpc.NewWorker(cfg) }
