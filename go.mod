module github.com/coded-computing/s2c2

go 1.24
