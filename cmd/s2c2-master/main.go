// Command s2c2-master drives a real TCP cluster through an iterative
// coded workload: it waits for workers, encodes and distributes the data,
// then runs the selected mode — float64 gradient descent for logistic
// regression with S2C2 work assignment (the default), or exact
// GF(2³¹−1) mat-vec rounds whose results are bit-identical to a local
// compute (-mode exact) — printing per-iteration latency, straggler
// decisions, and the final quality/exactness check.
//
// Usage (one master + three workers on a laptop):
//
//	s2c2-master -listen :7077 -workers 4 -k 3 -iters 10 &
//	for i in 1 2 3; do s2c2-worker -master 127.0.0.1:7077 & done
//	s2c2-worker -master 127.0.0.1:7077 -slowdown 8   # the straggler
//
// The same worker binary serves both modes; the protocol's GF message
// types select the exact compute path per round.
//
// Serving mode (-mode exact -jobs N) opens N concurrent jobs on the one
// master — each with its own exact dataset — and runs all of their
// rounds over the same workers at once, bounded by -max-rounds with the
// -policy wait-queue discipline (fcfs or priority). Every job verifies
// its decodes bit-exactly; the run prints per-job and aggregate
// throughput.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/rpc"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/workloads"
)

func main() {
	var (
		listen      = flag.String("listen", ":7077", "listen address")
		workers     = flag.Int("workers", 4, "number of workers (n)")
		k           = flag.Int("k", 3, "MDS recovery threshold (k)")
		iters       = flag.Int("iters", 10, "gradient-descent iterations (or exact rounds)")
		samples     = flag.Int("samples", 2000, "dataset rows")
		feats       = flag.Int("features", 200, "dataset columns")
		timeout     = flag.Float64("timeout", 0.15, "straggler timeout fraction (§4.3)")
		stall       = flag.Duration("stall-timeout", 0, "hard per-round stall deadline (0 = 30s default)")
		chunkRows   = flag.Int("chunk-rows", 0, "rows per streamed partition chunk (0 = ~256 KiB chunks)")
		chunkWindow = flag.Int("chunk-window", 0, "unacknowledged chunks in flight per worker (0 = 4)")
		mode        = flag.String("mode", "float", "workload mode: float (float64 logistic GD) or exact (bit-exact GF(2^31-1) rounds)")

		retryTries   = flag.Int("retry-attempts", 0, "distribution attempts per partition before giving up (0 = no retries); >1 re-streams failed partitions to spares")
		retryBackoff = flag.Duration("retry-backoff", 0, "base delay between distribution retries, doubled per attempt (0 = 50ms)")
		heartbeat    = flag.Duration("heartbeat", 0, "ping interval for the liveness watch over idle and parked connections (0 = off)")
		hbMiss       = flag.Int("heartbeat-miss", 0, "missed-ping budget before a silent connection is evicted (0 = 3)")
		evictAfter   = flag.Int("evict-after", 0, "consecutive failed rounds before a worker is evicted (0 = never)")

		jobs      = flag.Int("jobs", 1, "concurrent jobs served over the shared workers (exact mode only)")
		maxRounds = flag.Int("max-rounds", 0, "cap on in-flight rounds across all jobs; extra rounds park in the wait queue (0 = unlimited)")
		policy    = flag.String("policy", "fcfs", "wait-queue policy when -max-rounds saturates: fcfs or priority")
	)
	flag.Parse()
	cfg := rpc.MasterConfig{
		Addr:                *listen,
		StallTimeout:        *stall,
		ChunkRows:           *chunkRows,
		ChunkWindow:         *chunkWindow,
		Retry:               rpc.RetryConfig{MaxAttempts: *retryTries, BaseBackoff: *retryBackoff},
		Heartbeat:           *heartbeat,
		HeartbeatMiss:       *hbMiss,
		EvictAfter:          *evictAfter,
		MaxConcurrentRounds: *maxRounds,
	}
	var err error
	switch *policy {
	case "fcfs":
		cfg.Policy = rpc.FCFS()
	case "priority":
		cfg.Policy = rpc.HighestPriority()
	default:
		err = fmt.Errorf("unknown -policy %q (want fcfs or priority)", *policy)
	}
	if err == nil {
		switch *mode {
		case "float":
			if *jobs != 1 {
				err = fmt.Errorf("-jobs applies to -mode exact only")
			} else {
				err = run(cfg, *workers, *k, *iters, *samples, *feats, *timeout)
			}
		case "exact":
			if *jobs > 1 {
				err = runServe(cfg, *workers, *k, *iters, *samples, *feats, *timeout, *jobs)
			} else {
				err = runExact(cfg, *workers, *k, *iters, *samples, *feats, *timeout)
			}
		default:
			err = fmt.Errorf("unknown -mode %q (want float or exact)", *mode)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2c2-master:", err)
		os.Exit(1)
	}
}

// runExact drives the exact distributed path: an integer data matrix over
// GF(2³¹−1) is MDS-encoded in the field, streamed to the workers as
// uint32 partitions, and every round's distributed A·x is verified
// bit-identical to the local field compute — the guarantee float64
// rounds cannot give.
func runExact(cfg rpc.MasterConfig, n, k, iters, rows, cols int, timeoutFrac float64) error {
	m, err := rpc.NewMasterWithConfig(cfg)
	if err != nil {
		return err
	}
	defer m.Shutdown()
	fmt.Printf("master listening on %s (exact mode), waiting for %d workers...\n", m.Addr(), n)
	if err := m.WaitForWorkers(n, 5*time.Minute); err != nil {
		return err
	}
	fmt.Printf("all %d workers connected\n", n)
	// Workers dialing in after this point park as warm spares for the
	// retry and eviction paths.
	m.StartAdmissions()
	defer reportRecovery(m)

	rng := rand.New(rand.NewSource(1))
	data := make([]gf.Elem, rows*cols)
	for i := range data {
		data[i] = gf.New(rng.Uint64())
	}
	local := gf.NewMatrixFromData(rows, cols, data)
	code, err := coding.NewGFMDSCode(n, k)
	if err != nil {
		return err
	}
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		return err
	}
	if err := m.DistributeGFPartitions(0, enc.Parts); err != nil {
		return err
	}
	fmt.Printf("distributed %d exact GF(2^31-1) partitions of %dx%d\n", n, enc.BlockRows, cols)

	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows}
	speeds := make([]float64, n)
	for i := range speeds {
		speeds[i] = 1
	}
	decWS := enc.NewDecodeWorkspace()
	dst := make([]gf.Elem, enc.OrigRows)
	x := make([]gf.Elem, cols)
	want := make([]gf.Elem, rows)
	for iter := 0; iter < iters; iter++ {
		for i := range x {
			x[i] = gf.New(rng.Uint64())
		}
		local.MulVecInto(want, x)
		plan, err := m.PlanRound(strat, speeds)
		if err != nil {
			return err
		}
		start := time.Now()
		partials, stats, err := m.RunGFRound(iter, 0, x, plan, k, timeoutFrac)
		if err != nil {
			return err
		}
		if _, err := enc.DecodeMatVecInto(dst, partials, decWS); err != nil {
			return err
		}
		for r := range want {
			if dst[r] != want[r] {
				return fmt.Errorf("iter %d row %d: distributed %d != local %d — exactness violated", iter, r, dst[r], want[r])
			}
		}
		for w := 0; w < n; w++ {
			if stats.ResponseTime[w] > 0 && stats.AssignedRows[w] > 0 {
				speeds[w] = float64(stats.AssignedRows[w]) / stats.ResponseTime[w].Seconds()
			}
		}
		if len(stats.TimedOut) > 0 {
			fmt.Printf("  iter %d: timed out %v, reassigned %d rows\n", iter, stats.TimedOut, stats.Reassigned)
		}
		fmt.Printf("iter %2d: %8.2fms  bit-exact ✓\n",
			iter, float64(time.Since(start).Microseconds())/1000)
	}
	fmt.Printf("all %d exact rounds decoded bit-identically to the local field compute\n", iters)
	return nil
}

func run(cfg rpc.MasterConfig, n, k, iters, samples, feats int, timeoutFrac float64) error {
	m, err := rpc.NewMasterWithConfig(cfg)
	if err != nil {
		return err
	}
	defer m.Shutdown()
	fmt.Printf("master listening on %s, waiting for %d workers...\n", m.Addr(), n)
	if err := m.WaitForWorkers(n, 5*time.Minute); err != nil {
		return err
	}
	fmt.Printf("all %d workers connected\n", n)
	m.StartAdmissions()
	defer reportRecovery(m)

	data := workloads.SyntheticClassification(samples, feats, 1)
	lr := &workloads.LogisticRegression{Data: data, LR: 0.5, Lambda: 1e-4, Tol: 0}
	matrices := lr.Matrices()

	code, err := coding.NewMDSCode(n, k)
	if err != nil {
		return err
	}
	code.SetExec(m.Exec()) // encode on the master's configured pool
	encs := make([]*coding.EncodedMatrix, len(matrices))
	strategies := make([]*sched.GeneralS2C2, len(matrices))
	for p, mtx := range matrices {
		encs[p] = code.Encode(mtx)
		strategies[p] = &sched.GeneralS2C2{N: n, K: k, BlockRows: encs[p].BlockRows}
		if err := m.DistributePartitions(p, encs[p]); err != nil {
			return err
		}
		fmt.Printf("phase %d: distributed %d coded partitions of %dx%d\n",
			p, n, encs[p].BlockRows, encs[p].Cols)
	}

	// Online speed estimation: observed rows/sec per worker feeds an AR(1)
	// model refitted as history accumulates.
	history := make([][]float64, n)
	ar1 := &predict.AR1{}
	state := lr.Init()
	for iter := 0; iter < iters; iter++ {
		speeds := predictSpeeds(ar1, history, n)
		start := time.Now()
		outputs := make([][]float64, len(matrices))
		for p := range matrices {
			in := lr.PhaseInput(p, state, outputs[:p])
			plan, err := m.PlanRound(strategies[p], speeds)
			if err != nil {
				return err
			}
			partials, stats, err := m.RunRound(iter, p, in, plan, k, timeoutFrac)
			if err != nil {
				return err
			}
			out, err := encs[p].DecodeMatVec(partials)
			if err != nil {
				return err
			}
			outputs[p] = out
			recordSpeeds(history, stats, encs[p].Cols)
			if len(stats.TimedOut) > 0 {
				fmt.Printf("  iter %d phase %d: timed out %v, reassigned %d rows\n",
					iter, p, stats.TimedOut, stats.Reassigned)
			}
		}
		state, _ = lr.Update(state, outputs)
		if len(history[0]) >= 3 {
			ar1.Fit(history) //nolint:errcheck // refit is best-effort
		}
		fmt.Printf("iter %2d: %8.2fms  loss %.4f  acc %.3f\n",
			iter, float64(time.Since(start).Microseconds())/1000,
			lr.Loss(state), lr.Accuracy(state))
	}
	fmt.Printf("final model: loss %.4f accuracy %.3f\n", lr.Loss(state), lr.Accuracy(state))
	return nil
}

// reportRecovery prints the job's cumulative failure-recovery activity,
// if any worker ever needed replacing or evicting.
func reportRecovery(m *rpc.Master) {
	t := m.RecoveryTotals()
	if t.Retries == 0 && t.ReStreams == 0 && t.Evictions == 0 && t.ReplacementAdmits == 0 {
		return
	}
	fmt.Printf("recovery: %d retries, %d re-streams, %d evictions, %d replacements admitted\n",
		t.Retries, t.ReStreams, t.Evictions, t.ReplacementAdmits)
}

// predictSpeeds bootstraps with equal speeds, then uses AR(1) forecasts.
func predictSpeeds(ar1 *predict.AR1, history [][]float64, n int) []float64 {
	speeds := make([]float64, n)
	for w := 0; w < n; w++ {
		if len(history[w]) == 0 {
			speeds[w] = 1
			continue
		}
		speeds[w] = ar1.Predict(history[w])
		if speeds[w] <= 0 {
			speeds[w] = history[w][len(history[w])-1]
		}
		if speeds[w] <= 0 {
			speeds[w] = 0.01
		}
	}
	return speeds
}

// recordSpeeds appends observed per-worker rates (rows·cols per second).
func recordSpeeds(history [][]float64, stats *rpc.RoundStats, cols int) {
	for w := range history {
		v := 0.0
		if stats.ResponseTime[w] > 0 && stats.AssignedRows[w] > 0 {
			v = float64(stats.AssignedRows[w]*cols) / stats.ResponseTime[w].Seconds()
		} else if len(history[w]) > 0 {
			v = history[w][len(history[w])-1]
		} else {
			v = 1
		}
		history[w] = append(history[w], v)
	}
}
