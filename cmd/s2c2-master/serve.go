package main

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/rpc"
	"github.com/coded-computing/s2c2/internal/sched"
)

// runServe is the multi-job exact mode (-mode exact -jobs N): one master
// retains N independent GF(2³¹−1) datasets and serves all N jobs' rounds
// concurrently over the same workers. Each job verifies every distributed
// decode bit-identically against its own local field compute; the run
// reports per-job and aggregate throughput so the overlap is visible
// (compare against the same invocation with -jobs 1).
func runServe(cfg rpc.MasterConfig, n, k, iters, rows, cols int, timeoutFrac float64, jobs int) error {
	m, err := rpc.NewMasterWithConfig(cfg)
	if err != nil {
		return err
	}
	defer m.Shutdown()
	fmt.Printf("master listening on %s (exact mode, %d jobs), waiting for %d workers...\n", m.Addr(), jobs, n)
	if err := m.WaitForWorkers(n, 5*time.Minute); err != nil {
		return err
	}
	fmt.Printf("all %d workers connected\n", n)
	m.StartAdmissions()
	defer reportRecovery(m)

	code, err := coding.NewGFMDSCode(n, k)
	if err != nil {
		return err
	}

	type tenant struct {
		job   *rpc.Job
		local *gf.Matrix
		enc   *coding.GFEncodedMatrix
		seed  int64
	}
	tenants := make([]*tenant, jobs)
	for i := range tenants {
		rng := rand.New(rand.NewSource(int64(i) + 1))
		data := make([]gf.Elem, rows*cols)
		for q := range data {
			data[q] = gf.New(rng.Uint64())
		}
		enc, err := code.Encode(rows, cols, data)
		if err != nil {
			return err
		}
		j := m.OpenJob(rpc.JobConfig{Priority: i})
		if err := j.DistributeGFPartitions(0, enc.Parts); err != nil {
			return err
		}
		tenants[i] = &tenant{
			job:   j,
			local: gf.NewMatrixFromData(rows, cols, data),
			enc:   enc,
			seed:  int64(i) + 1,
		}
	}
	fmt.Printf("distributed %d exact datasets of %dx%d (%d partitions each)\n",
		jobs, rows, cols, n)

	var wg sync.WaitGroup
	errs := make([]error, jobs)
	elapsed := make([]time.Duration, jobs)
	start := time.Now()
	for i, t := range tenants {
		wg.Add(1)
		go func(i int, t *tenant) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(1000 + t.seed))
			strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: t.enc.BlockRows}
			speeds := make([]float64, n)
			for w := range speeds {
				speeds[w] = 1
			}
			decWS := t.enc.NewDecodeWorkspace()
			dst := make([]gf.Elem, t.enc.OrigRows)
			x := make([]gf.Elem, cols)
			want := make([]gf.Elem, rows)
			jobStart := time.Now()
			for iter := 0; iter < iters; iter++ {
				for q := range x {
					x[q] = gf.New(rng.Uint64())
				}
				t.local.MulVecInto(want, x)
				plan, err := strat.Plan(speeds)
				if err != nil {
					errs[i] = err
					return
				}
				partials, stats, err := t.job.RunGFRound(iter, 0, x, plan, k, timeoutFrac)
				if err != nil {
					errs[i] = fmt.Errorf("job %d iter %d: %w", t.job.ID(), iter, err)
					return
				}
				if _, err := t.enc.DecodeMatVecInto(dst, partials, decWS); err != nil {
					errs[i] = err
					return
				}
				for r := range want {
					if dst[r] != want[r] {
						errs[i] = fmt.Errorf("job %d iter %d row %d: distributed %d != local %d — exactness violated",
							t.job.ID(), iter, r, dst[r], want[r])
						return
					}
				}
				for w := 0; w < n; w++ {
					if stats.ResponseTime[w] > 0 && stats.AssignedRows[w] > 0 {
						speeds[w] = float64(stats.AssignedRows[w]) / stats.ResponseTime[w].Seconds()
					}
				}
			}
			elapsed[i] = time.Since(jobStart)
		}(i, t)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("job %d failed: %w", tenants[i].job.ID(), err)
		}
	}
	for i, t := range tenants {
		fmt.Printf("job %d: %d rounds in %7.2fms (%.1f rounds/s)  bit-exact ✓\n",
			t.job.ID(), iters, float64(elapsed[i].Microseconds())/1000,
			float64(iters)/elapsed[i].Seconds())
		t.job.Close()
	}
	total := jobs * iters
	fmt.Printf("served %d jobs x %d rounds in %.2fms — %.1f rounds/s aggregate, all bit-exact\n",
		jobs, iters, float64(wall.Microseconds())/1000, float64(total)/wall.Seconds())
	return nil
}
