// Command s2c2-worker is the worker daemon of the TCP runtime: it dials
// the master, receives coded partitions, and serves per-round work
// assignments until shut down. Both compute paths are always available —
// float64 mat-vec rounds and exact GF(2³¹−1) rounds (the master's
// -mode exact) are selected per message by the protocol, so the same
// daemon serves either workload without flags.
//
// Usage:
//
//	s2c2-worker -master 127.0.0.1:7077
//	s2c2-worker -master 10.0.0.1:7077 -slowdown 5   # act as a straggler
//	s2c2-worker -master 10.0.0.1:7077 -rejoin 2s    # redial after a lost link
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/rpc"
)

func main() {
	var (
		master   = flag.String("master", "127.0.0.1:7077", "master host:port")
		slowdown = flag.Float64("slowdown", 1, "artificial slowdown factor (straggler emulation)")
		perRow   = flag.Duration("per-row-delay", 0, "fixed extra cost per computed row")
		maxFan   = flag.Int("max-fan", 0, "cap on kernel-pool fan-out per operation (0 = all cores; set when co-hosting workers)")
		useGob   = flag.Bool("gob", false, "speak the legacy gob transport instead of the binary wire protocol")
		writeTO  = flag.Duration("write-timeout", 0, "base per-send write deadline, scaled with payload (0 = 30s; raise with the master's -stall-timeout on slow links)")
		rejoin   = flag.Duration("rejoin", 0, "on a lost connection, redial the master at this interval instead of exiting (0 = exit); rejoined workers park as spares until the master admits them")
	)
	flag.Parse()

	cfg := rpc.WorkerConfig{
		MasterAddr:   *master,
		Slowdown:     *slowdown,
		PerRowDelay:  *perRow,
		Exec:         kernel.Exec{MaxFan: *maxFan},
		UseGob:       *useGob,
		WriteTimeout: *writeTO,
	}
	for {
		err := serve(cfg, *slowdown)
		if err == nil {
			return
		}
		if *rejoin <= 0 {
			fmt.Fprintln(os.Stderr, "s2c2-worker:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "s2c2-worker: %v; rejoining in %v\n", err, *rejoin)
		time.Sleep(*rejoin)
	}
}

// serve runs one connection's lifetime: dial, serve rounds, and report
// how the session ended. A nil return is a clean master-initiated
// shutdown; an error is a refused dial or a dropped link.
func serve(cfg rpc.WorkerConfig, slowdown float64) error {
	w, err := rpc.NewWorker(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "s2c2-worker: connected to %s (slowdown %.1fx)\n", cfg.MasterAddr, slowdown)
	start := time.Now()
	if err := w.Run(); err != nil {
		return fmt.Errorf("exited after %v: %w", time.Since(start), err)
	}
	fmt.Fprintf(os.Stderr, "s2c2-worker: shut down cleanly after %v\n", time.Since(start))
	return nil
}
