// Command s2c2-worker is the worker daemon of the TCP runtime: it dials
// the master, receives coded partitions, and serves per-round work
// assignments until shut down. Both compute paths are always available —
// float64 mat-vec rounds and exact GF(2³¹−1) rounds (the master's
// -mode exact) are selected per message by the protocol, so the same
// daemon serves either workload without flags.
//
// Usage:
//
//	s2c2-worker -master 127.0.0.1:7077
//	s2c2-worker -master 10.0.0.1:7077 -slowdown 5   # act as a straggler
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/rpc"
)

func main() {
	var (
		master   = flag.String("master", "127.0.0.1:7077", "master host:port")
		slowdown = flag.Float64("slowdown", 1, "artificial slowdown factor (straggler emulation)")
		perRow   = flag.Duration("per-row-delay", 0, "fixed extra cost per computed row")
		maxFan   = flag.Int("max-fan", 0, "cap on kernel-pool fan-out per operation (0 = all cores; set when co-hosting workers)")
		useGob   = flag.Bool("gob", false, "speak the legacy gob transport instead of the binary wire protocol")
		writeTO  = flag.Duration("write-timeout", 0, "base per-send write deadline, scaled with payload (0 = 30s; raise with the master's -stall-timeout on slow links)")
	)
	flag.Parse()

	w, err := rpc.NewWorker(rpc.WorkerConfig{
		MasterAddr:   *master,
		Slowdown:     *slowdown,
		PerRowDelay:  *perRow,
		Exec:         kernel.Exec{MaxFan: *maxFan},
		UseGob:       *useGob,
		WriteTimeout: *writeTO,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "s2c2-worker:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "s2c2-worker: connected to %s (slowdown %.1fx)\n", *master, *slowdown)
	start := time.Now()
	if err := w.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "s2c2-worker: exited after %v: %v\n", time.Since(start), err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "s2c2-worker: shut down cleanly after %v\n", time.Since(start))
}
