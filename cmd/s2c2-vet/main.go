// Command s2c2-vet runs the s2c2 invariant suite (internal/analysis):
// noalloc, payloadescape, backendpair, partitionerr.
//
// Standalone (the form CI runs — full module view, cross-package walks,
// tag-reload parity checks):
//
//	s2c2-vet ./...
//	s2c2-vet -tags noasm -analyzers noalloc,backendpair ./internal/kernel
//
// As a go vet tool (per-package units; module-scoped checks self-skip):
//
//	go vet -vettool=$(command -v s2c2-vet) ./...
//
// Exit status: 0 clean, 1 usage or load failure, 2 findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/coded-computing/s2c2/internal/analysis"
)

func main() {
	// go vet drives vettools through a tiny protocol: -V=full for the
	// cache key, -flags for tool flags, then one run per package with a
	// JSON config file as the sole argument.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			// cmd/go rejects "version devel" without a buildID; a concrete
			// version string keys the vet cache acceptably for a tool whose
			// binary CI rebuilds on every run.
			fmt.Printf("%s version v0.1.0\n", filepath.Base(os.Args[0]))
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitMode(os.Args[1]))
	}
	os.Exit(standalone())
}

// standalone loads the module from source and runs the full suite,
// including module-scoped checks.
func standalone() int {
	fs := flag.NewFlagSet("s2c2-vet", flag.ExitOnError)
	tags := fs.String("tags", "", "comma-separated build tags")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	noTests := fs.Bool("notests", false, "exclude _test.go files from the load")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: s2c2-vet [-tags t1,t2] [-analyzers a1,a2] [packages]\n\nanalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var tagList []string
	if *tags != "" {
		tagList = strings.Split(*tags, ",")
	}

	loader, err := analysis.NewLoader(".", tagList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "s2c2-vet: %v\n", err)
		return 1
	}
	loader.IncludeTests = !*noTests
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "s2c2-vet: %v\n", err)
		return 1
	}

	analyzers := analysis.All()
	if *names != "" {
		analyzers = analysis.ByName(strings.Split(*names, ",")...)
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "s2c2-vet: no analyzers match %q\n", *names)
			return 1
		}
	}

	diags := analysis.RunLoaded(loader, pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "s2c2-vet: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// vetConfig is the JSON cmd/go hands a vettool for each package unit.
// Field names must match cmd/go/internal/work's vetConfig.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoreFiles               []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitMode analyzes one package unit the way go vet presents it: sources
// listed in the config, dependencies resolved through compiler export
// data. Only per-package analyzer forms run here.
func unitMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "s2c2-vet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "s2c2-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// go vet requires the facts file to exist even though this suite
	// exchanges no facts between units.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "s2c2-vet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	testFiles := make(map[*ast.File]bool)
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "s2c2-vet: %v\n", err)
			return 1
		}
		files = append(files, f)
		if strings.HasSuffix(name, "_test.go") {
			testFiles[f] = true
		}
	}
	if len(files) == 0 {
		return 0
	}

	// Imports resolve through the export data cmd/go already built:
	// source path -> canonical path (ImportMap) -> archive (PackageFile).
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tcfg := &types.Config{
		Importer:  importer.ForCompiler(fset, cfg.Compiler, lookup),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		Error:     func(error) {}, // collect via the returned error only
	}
	tpkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "s2c2-vet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &analysis.Package{
		Path:      cfg.ImportPath,
		Name:      tpkg.Name(),
		Files:     files,
		Types:     tpkg,
		Info:      info,
		TestFiles: testFiles,
	}
	diags := analysis.RunUnit(fset, pkg, analysis.All())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
