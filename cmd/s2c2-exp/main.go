// Command s2c2-exp regenerates the paper's evaluation artifacts (Figures
// 1–13, the §6.1 predictor table, and the ablation studies) on the
// simulated cluster substrate.
//
// Usage:
//
//	s2c2-exp                  # run every experiment
//	s2c2-exp -exp fig8        # run one experiment
//	s2c2-exp -list            # list experiment IDs
//	s2c2-exp -scale 4         # scale problem sizes toward paper dims
//	s2c2-exp -iters 15        # iterations per job (paper: 15)
//	s2c2-exp -lstm            # use the LSTM forecaster (slower)
//	s2c2-exp -csv traces.csv  # also export the Figure 2 speed traces
//	s2c2-exp -kernelbench BENCH_PR8.json  # kernel-backend benchmark JSON
//	s2c2-exp -servebench BENCH_PR10.json  # multi-job serving benchmark JSON
//	s2c2-exp -backends        # print available/dispatched kernel backends
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/coded-computing/s2c2/internal/experiments"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/trace"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment ID to run (default: all)")
		list   = flag.Bool("list", false, "list experiment IDs and exit")
		scale  = flag.Int("scale", 1, "problem-size multiplier")
		iters  = flag.Int("iters", 15, "iterations per job")
		seed   = flag.Int64("seed", 42, "master seed")
		lstm   = flag.Bool("lstm", false, "use the LSTM speed predictor")
		csv    = flag.String("csv", "", "export Figure 2 speed traces to this CSV file")
		kbench = flag.String("kernelbench", "", "write kernel-backend benchmark JSON to this file and exit")
		sbench = flag.String("servebench", "", "write multi-job serving benchmark JSON to this file and exit")
		backs  = flag.Bool("backends", false, "print available and dispatched kernel backends and exit")
	)
	flag.Parse()

	if *backs {
		// CI capability probe: lanes that force S2C2_KERNEL_BACKEND check
		// the backend is actually available on the runner before running.
		fmt.Printf("available=%s dispatched=%s\n", strings.Join(kernel.Backends(), ","), kernel.ActiveBackend())
		return
	}

	if *kbench != "" {
		if err := runKernelBench(*kbench); err != nil {
			fatal(err)
		}
		return
	}

	if *sbench != "" {
		if err := runServeBench(*sbench); err != nil {
			fatal(err)
		}
		return
	}

	ids := make([]string, 0, len(experiments.Registry))
	for id := range experiments.Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fatal(err)
		}
		tr := trace.DigitalOceanLike(100, 100**scale, *seed)
		if err := tr.WriteCSV(f); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csv)
	}

	cfg := experiments.Config{Scale: *scale, Iterations: *iters, Seed: *seed, UseLSTM: *lstm}
	run := ids
	if *exp != "" {
		if _, ok := experiments.Registry[*exp]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (use -list)", *exp))
		}
		run = []string{*exp}
	}
	for _, id := range run {
		tables, err := experiments.Registry[id](cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		for _, t := range tables {
			fmt.Println(t.Render())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "s2c2-exp:", err)
	os.Exit(1)
}
