package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/rpc"
	"github.com/coded-computing/s2c2/internal/sched"
)

// Kernel/backend benchmark harness (-kernelbench FILE): times the hot
// kernels (MatMul, MatVec, batched MatVec, gf.Axpy, the GF dot-lane
// mat-vec, the GF decode solve) and end-to-end distributed rounds —
// single-x and batched — on every backend compiled in and runnable on
// this CPU, and writes the comparison as JSON — the perf-trajectory
// artifact for the SIMD backend work (BENCH_PR4.json, extended as
// BENCH_PR6.json by the batched-round entries and as BENCH_PR8.json by
// the avx512 backend and the GF decode-solve row).

type kernelBenchResult struct {
	Name    string  `json:"name"`
	Backend string  `json:"backend"`
	NsPerOp float64 `json:"ns_per_op"`
	GFLOPS  float64 `json:"gflops,omitempty"`
	GBps    float64 `json:"gb_per_s,omitempty"`
}

type kernelBenchReport struct {
	GeneratedAt string              `json:"generated_at"`
	GoVersion   string              `json:"go_version"`
	GOARCH      string              `json:"goarch"`
	Backends    []string            `json:"backends"`
	Dispatched  string              `json:"dispatched"`
	Results     []kernelBenchResult `json:"results"`
	// Speedups maps benchmark name to dispatched-over-scalar ratio.
	Speedups map[string]float64 `json:"speedups"`
}

// bestNs runs fn iters times per trial over several trials and returns
// the fastest per-run wall time in nanoseconds.
func bestNs(trials, iters int, fn func()) float64 {
	best := time.Duration(1 << 62)
	for t := 0; t < trials; t++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		if d := time.Since(start) / time.Duration(iters); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

func runKernelBench(path string) error {
	dispatched := kernel.ActiveBackend()
	report := kernelBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		Backends:    kernel.Backends(),
		Dispatched:  dispatched,
		Speedups:    map[string]float64{},
	}
	// Bench every runnable backend, not just the dispatched one: the
	// avx512-vs-avx2 rows need both vector tiers.
	backends := kernel.Backends()
	defer kernel.SetBackend(dispatched) //nolint:errcheck

	// Inputs shared across backends so the comparison is apples to apples.
	rng := rand.New(rand.NewSource(4))
	const mm = 1024
	mmA, mmB := randFloats(mm*mm, rng), randFloats(mm*mm, rng)
	mmDst := make([]float64, mm*mm)
	const mv = 1024
	mvA, mvX := randFloats(mv*mv, rng), randFloats(mv, rng)
	mvDst := make([]float64, mv)
	const gfN = 1 << 14
	gfDst, gfSrc := make([]gf.Elem, gfN), make([]gf.Elem, gfN)
	for i := range gfSrc {
		gfSrc[i] = gf.New(rng.Uint64())
		gfDst[i] = gf.New(rng.Uint64())
	}
	// Batched float64 mat-vec: the same 1024×1024 matrix swept once with
	// eight fused x-vectors (vs eight single MatVec sweeps).
	const bw = 8
	mvXs := randFloats(bw*mv, rng)
	mvBatchDst := make([]float64, bw*mv)
	// GF dot-lane mat-vec over a 1024×1024 field matrix.
	const gfMV = 1024
	gfMatData := make([]gf.Elem, gfMV*gfMV)
	for i := range gfMatData {
		gfMatData[i] = gf.New(rng.Uint64())
	}
	gfMat := gf.NewMatrixFromData(gfMV, gfMV, gfMatData)
	gfX := make([]gf.Elem, gfMV)
	for i := range gfX {
		gfX[i] = gf.New(rng.Uint64())
	}
	gfY := make([]gf.Elem, gfMV)
	gfXs := make([]gf.Elem, 4*gfMV)
	for i := range gfXs {
		gfXs[i] = gf.New(rng.Uint64())
	}
	gfYB := make([]gf.Elem, 4*gfMV)
	// GF decode solve: a cached 12×12 inverted system applied to a
	// 12-row × 4096-lane right-hand-side block, the shape the grouped
	// exact decode path feeds MulRangeInto.
	const gfK, gfLanes = 12, 4096
	gfInvData := make([]gf.Elem, gfK*gfK)
	for i := range gfInvData {
		gfInvData[i] = gf.New(rng.Uint64())
	}
	gfInv := gf.NewMatrixFromData(gfK, gfK, gfInvData)
	gfRHS := make([]gf.Elem, gfK*gfLanes)
	for i := range gfRHS {
		gfRHS[i] = gf.New(rng.Uint64())
	}
	gfB := gf.NewMatrixFromData(gfK, gfLanes, gfRHS)
	gfSolveDst := make([]gf.Elem, gfK*gfLanes)

	// End-to-end round: a loopback cluster of 4 in-process workers over an
	// MDS(4,3)-coded 16384×1024 mat-vec (large enough that worker compute,
	// not RPC framing, dominates the round). Workers share this process,
	// so SetBackend switches their compute path too.
	master, err := rpc.NewMaster("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer master.Shutdown()
	const nWorkers, kParts = 4, 3
	for i := 0; i < nWorkers; i++ {
		go func() {
			w, err := rpc.NewWorker(rpc.WorkerConfig{MasterAddr: master.Addr()})
			if err != nil {
				return
			}
			w.Run() //nolint:errcheck // shutdown closes the conn
		}()
		if err := master.WaitForWorkers(i+1, 10*time.Second); err != nil {
			return err
		}
	}
	a := mat.Rand(16384, 1024, rng)
	x := randFloats(1024, rng)
	code, err := coding.NewMDSCode(nWorkers, kParts)
	if err != nil {
		return err
	}
	enc := code.Encode(a)
	if err := master.DistributePartitions(0, enc); err != nil {
		return err
	}
	strat := &sched.GeneralS2C2{N: nWorkers, K: kParts, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	iter := 0
	var roundErr error // sticky: a failed round must fail the harness, not get timed
	runRound := func() {
		if roundErr != nil {
			return
		}
		plan, err := strat.Plan([]float64{1, 1, 1, 1})
		if err != nil {
			roundErr = err
			return
		}
		partials, _, err := master.RunRound(iter, 0, x, plan, kParts, 10.0)
		iter++
		if err != nil {
			roundErr = err
			return
		}
		if _, err := enc.DecodeMatVec(partials); err != nil {
			roundErr = err
		}
	}
	// Batched round: the same cluster answering four x-vectors per round
	// (one Work frame, one fused sweep, one Result frame per worker).
	const roundW = 4
	roundXs := randFloats(roundW*1024, rng)
	runRoundBatch := func() {
		if roundErr != nil {
			return
		}
		plan, err := strat.Plan([]float64{1, 1, 1, 1})
		if err != nil {
			roundErr = err
			return
		}
		partials, _, err := master.RunRoundBatch(iter, 0, roundXs, roundW, plan, kParts, 10.0)
		iter++
		if err != nil {
			roundErr = err
			return
		}
		if _, err := enc.DecodeMatVec(partials); err != nil {
			roundErr = err
		}
	}
	runRound() // warm pools and connections before timing
	runRoundBatch()
	if roundErr != nil {
		return fmt.Errorf("kernelbench: warm-up round: %w", roundErr)
	}

	for _, backend := range backends {
		if err := kernel.SetBackend(backend); err != nil {
			return err
		}
		report.Results = append(report.Results,
			kernelBenchResult{
				Name: "MatMul1024", Backend: backend,
				NsPerOp: bestNs(3, 1, func() { kernel.MatMul(mmDst, mmA, mm, mm, mmB, mm) }),
			},
			kernelBenchResult{
				Name: "MatVec1024", Backend: backend,
				NsPerOp: bestNs(7, 20, func() { kernel.MatVec(mvDst, mvA, mv, mv, mvX) }),
			},
			kernelBenchResult{
				Name: "MatVecBatch1024w2", Backend: backend,
				NsPerOp: bestNs(7, 20, func() { kernel.MatVecBatch(mvBatchDst[:2*mv], mvA, mv, mv, mvXs[:2*mv], 2) }),
			},
			kernelBenchResult{
				Name: "MatVecBatch1024w4", Backend: backend,
				NsPerOp: bestNs(7, 15, func() { kernel.MatVecBatch(mvBatchDst[:4*mv], mvA, mv, mv, mvXs[:4*mv], 4) }),
			},
			kernelBenchResult{
				Name: "MatVecBatch1024w8", Backend: backend,
				NsPerOp: bestNs(7, 10, func() { kernel.MatVecBatch(mvBatchDst, mvA, mv, mv, mvXs, bw) }),
			},
			kernelBenchResult{
				Name: "GFAxpy16k", Backend: backend,
				NsPerOp: bestNs(7, 200, func() { gf.Axpy(gfDst, 123456789, gfSrc) }),
			},
			kernelBenchResult{
				Name: "GFMatVec1024", Backend: backend,
				NsPerOp: bestNs(7, 20, func() { gfMat.MulVecRangeInto(gfY, gfX, 0, gfMV) }),
			},
			kernelBenchResult{
				Name: "GFMatVecBatch1024w4", Backend: backend,
				NsPerOp: bestNs(7, 10, func() { gfMat.MulVecBatchRangeInto(gfYB, gfXs, 4, 0, gfMV) }),
			},
			kernelBenchResult{
				Name: "GFDecodeSolve12x4096", Backend: backend,
				NsPerOp: bestNs(7, 20, func() { gfInv.MulRangeInto(gfSolveDst, gfB, 0, gfK) }),
			},
			kernelBenchResult{
				Name: "DistributedRound16384x1024", Backend: backend,
				NsPerOp: bestNs(5, 3, runRound),
			},
			kernelBenchResult{
				Name: "DistributedRoundBatch16384x1024w4", Backend: backend,
				NsPerOp: bestNs(5, 3, runRoundBatch),
			},
		)
		if roundErr != nil {
			return fmt.Errorf("kernelbench: distributed round on %s backend: %w", backend, roundErr)
		}
	}
	for i := range report.Results {
		r := &report.Results[i]
		switch r.Name {
		case "MatMul1024":
			r.GFLOPS = 2 * float64(mm) * float64(mm) * float64(mm) / r.NsPerOp
		case "MatVec1024":
			r.GFLOPS = 2 * float64(mv) * float64(mv) / r.NsPerOp
		case "MatVecBatch1024w2":
			r.GFLOPS = 2 * float64(mv) * float64(mv) * 2 / r.NsPerOp
		case "MatVecBatch1024w4":
			r.GFLOPS = 2 * float64(mv) * float64(mv) * 4 / r.NsPerOp
		case "MatVecBatch1024w8":
			r.GFLOPS = 2 * float64(mv) * float64(mv) * bw / r.NsPerOp
		case "GFAxpy16k":
			r.GBps = 4 * float64(gfN) / r.NsPerOp // source stream bytes per second
		case "GFMatVec1024", "GFMatVecBatch1024w4":
			r.GBps = 4 * float64(gfMV) * float64(gfMV) / r.NsPerOp // matrix stream bytes per second
		case "GFDecodeSolve12x4096":
			r.GBps = 4 * float64(gfK) * float64(gfLanes) / r.NsPerOp // right-hand-side stream bytes per second
		}
	}
	scalar := map[string]float64{}
	for _, r := range report.Results {
		if r.Backend == "generic" {
			scalar[r.Name] = r.NsPerOp
		}
	}
	for _, r := range report.Results {
		if r.Backend == report.Dispatched && r.Backend != "generic" {
			report.Speedups[r.Name] = scalar[r.Name] / r.NsPerOp
		}
	}
	// The batching win itself, on whatever backend dispatched: one fused
	// width-8 sweep vs eight independent single-x sweeps (and the
	// end-to-end analogue at width 4, per answered x-vector).
	disp := map[string]float64{}
	for _, r := range report.Results {
		if r.Backend == report.Dispatched {
			disp[r.Name] = r.NsPerOp
		}
	}
	if ns := disp["MatVecBatch1024w8"]; ns > 0 {
		report.Speedups["MatVecBatch1024w8_vs_8xMatVec"] = 8 * disp["MatVec1024"] / ns
	}
	if ns := disp["DistributedRoundBatch16384x1024w4"]; ns > 0 {
		report.Speedups["DistributedRoundBatch16384x1024w4_vs_4xRound"] = 4 * disp["DistributedRound16384x1024"] / ns
	}
	// Vector-tier comparison: avx512 over avx2, per benchmark, when both
	// tiers ran on this CPU.
	byBackend := map[string]map[string]float64{}
	for _, r := range report.Results {
		if byBackend[r.Backend] == nil {
			byBackend[r.Backend] = map[string]float64{}
		}
		byBackend[r.Backend][r.Name] = r.NsPerOp
	}
	if a2, a5 := byBackend["avx2"], byBackend["avx512"]; a2 != nil && a5 != nil {
		for name, ns := range a5 {
			if ns > 0 && a2[name] > 0 {
				report.Speedups[name+"_avx512_vs_avx2"] = a2[name] / ns
			}
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "kernelbench: dispatched backend %s, wrote %s\n", report.Dispatched, path)
	return nil
}

func randFloats(n int, rng *rand.Rand) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 2*rng.Float64() - 1
	}
	return s
}
