package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/rpc"
	"github.com/coded-computing/s2c2/internal/sched"
)

// Serving benchmark harness (-servebench FILE): stands up a real loopback
// cluster, opens N jobs with independent exact GF(2³¹−1) datasets, and
// measures aggregate round throughput and p99 round latency at 1 versus N
// concurrent jobs (BENCH_PR10.json). Workers carry a fixed per-row
// compute cost, so the serial lane pays each round's worker time in full
// while the concurrent lane overlaps one job's worker compute with
// another's master-side decode — the serving master's reason to exist.
// Every decode is verified bit-exact against a local recompute; the
// report is invalid if any round drifts.

type servebenchLane struct {
	// Concurrency is how many jobs submitted rounds at once.
	Concurrency int `json:"concurrency"`
	// Rounds is the total rounds completed across all jobs.
	Rounds int `json:"rounds"`
	// JobsPerSec is aggregate served rounds per second of wall time.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// P50Ms/P99Ms are round-latency percentiles in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

type servebenchReport struct {
	GeneratedAt   string           `json:"generated_at"`
	GoVersion     string           `json:"go_version"`
	GOMAXPROCS    int              `json:"gomaxprocs"`
	Workers       int              `json:"workers"`
	K             int              `json:"k"`
	Rows          int              `json:"rows"`
	Cols          int              `json:"cols"`
	PerRowDelayUs float64          `json:"per_row_delay_us"`
	Jobs          int              `json:"jobs"`
	RoundsPerJob  int              `json:"rounds_per_job"`
	Serial        servebenchLane   `json:"serial"`
	Concurrent    servebenchLane   `json:"concurrent"`
	Lanes         []servebenchLane `json:"lanes"`
	// Speedup is concurrent over serial aggregate jobs/sec.
	Speedup float64 `json:"speedup"`
	// BitExact reports that every decode in both lanes matched the local
	// ground truth exactly.
	BitExact bool `json:"bit_exact"`
}

// servebenchJob is one tenant's dataset and verification state.
type servebenchJob struct {
	job  *rpc.Job
	enc  *coding.GFEncodedMatrix
	data []gf.Elem
	rng  *rand.Rand
}

func percentileMs(lat []time.Duration, q float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := int(q * float64(len(lat)-1))
	return float64(lat[idx].Nanoseconds()) / 1e6
}

func runServeBench(path string) error {
	const (
		n, k         = 4, 3
		rows, cols   = 96, 8
		jobs         = 4
		roundsPerJob = 40
		perRowDelay  = 20 * time.Microsecond
	)

	m, err := rpc.NewMasterWithConfig(rpc.MasterConfig{
		Addr:         "127.0.0.1:0",
		StallTimeout: 30 * time.Second,
	})
	if err != nil {
		return err
	}
	defer m.Shutdown()
	for i := 0; i < n; i++ {
		w, err := rpc.NewWorker(rpc.WorkerConfig{MasterAddr: m.Addr(), PerRowDelay: perRowDelay})
		if err != nil {
			return err
		}
		go w.Run() //nolint:errcheck // master shutdown closes the conn
		if err := m.WaitForWorkers(i+1, 10*time.Second); err != nil {
			return err
		}
	}

	code, err := coding.NewGFMDSCode(n, k)
	if err != nil {
		return err
	}
	tenants := make([]*servebenchJob, jobs)
	for i := range tenants {
		rng := rand.New(rand.NewSource(9000 + int64(i)))
		data := make([]gf.Elem, rows*cols)
		for q := range data {
			data[q] = gf.New(rng.Uint64())
		}
		enc, err := code.Encode(rows, cols, data)
		if err != nil {
			return err
		}
		j := m.OpenJob(rpc.JobConfig{})
		if err := j.DistributeGFPartitions(0, enc.Parts); err != nil {
			return err
		}
		tenants[i] = &servebenchJob{job: j, enc: enc, data: data, rng: rng}
	}
	speeds := make([]float64, n)
	for i := range speeds {
		speeds[i] = 1
	}

	exact := true
	var exactMu sync.Mutex
	// runRounds drives `count` rounds on one tenant and returns their
	// latencies; every decode is checked bit-exactly.
	runRounds := func(t *servebenchJob, iterBase, count int) []time.Duration {
		strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: t.enc.BlockRows, Granularity: t.enc.BlockRows}
		lat := make([]time.Duration, 0, count)
		x := make([]gf.Elem, cols)
		for r := 0; r < count; r++ {
			for q := range x {
				x[q] = gf.New(t.rng.Uint64())
			}
			plan, err := strat.Plan(speeds)
			if err != nil {
				exactMu.Lock()
				exact = false
				exactMu.Unlock()
				return lat
			}
			start := time.Now()
			partials, _, err := t.job.RunGFRound(iterBase+r, 0, x, plan, k, 10.0)
			if err != nil {
				exactMu.Lock()
				exact = false
				exactMu.Unlock()
				return lat
			}
			lat = append(lat, time.Since(start))
			got, err := t.enc.DecodeMatVec(partials)
			if err != nil {
				exactMu.Lock()
				exact = false
				exactMu.Unlock()
				return lat
			}
			want := gf.NewMatrixFromData(rows, cols, t.data).MulVec(x)
			for q := range want {
				if got[q] != want[q] {
					exactMu.Lock()
					exact = false
					exactMu.Unlock()
					return lat
				}
			}
		}
		return lat
	}

	// Warm-up: one round per tenant sizes buffers and pools.
	for _, t := range tenants {
		runRounds(t, 1_000_000, 1)
	}

	// Serial lane: the same total round count, one round in flight at a
	// time — each tenant's rounds submitted back to back.
	serialStart := time.Now()
	var serialLat []time.Duration
	for _, t := range tenants {
		serialLat = append(serialLat, runRounds(t, 0, roundsPerJob)...)
	}
	serialWall := time.Since(serialStart)

	// Concurrent lane: all tenants submit at once over the same workers.
	concStart := time.Now()
	concLats := make([][]time.Duration, jobs)
	var wg sync.WaitGroup
	for i, t := range tenants {
		wg.Add(1)
		go func(i int, t *servebenchJob) {
			defer wg.Done()
			concLats[i] = runRounds(t, 100_000, roundsPerJob)
		}(i, t)
	}
	wg.Wait()
	concWall := time.Since(concStart)
	var concLat []time.Duration
	for _, l := range concLats {
		concLat = append(concLat, l...)
	}

	serial := servebenchLane{
		Concurrency: 1,
		Rounds:      len(serialLat),
		JobsPerSec:  float64(len(serialLat)) / serialWall.Seconds(),
		P50Ms:       percentileMs(serialLat, 0.50),
		P99Ms:       percentileMs(serialLat, 0.99),
	}
	concurrent := servebenchLane{
		Concurrency: jobs,
		Rounds:      len(concLat),
		JobsPerSec:  float64(len(concLat)) / concWall.Seconds(),
		P50Ms:       percentileMs(concLat, 0.50),
		P99Ms:       percentileMs(concLat, 0.99),
	}
	report := servebenchReport{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       n,
		K:             k,
		Rows:          rows,
		Cols:          cols,
		PerRowDelayUs: float64(perRowDelay.Nanoseconds()) / 1e3,
		Jobs:          jobs,
		RoundsPerJob:  roundsPerJob,
		Serial:        serial,
		Concurrent:    concurrent,
		Lanes:         []servebenchLane{serial, concurrent},
		Speedup:       concurrent.JobsPerSec / serial.JobsPerSec,
		BitExact:      exact,
	}
	if !exact {
		return fmt.Errorf("servebench: a round failed or decoded inexactly; report not written")
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	encJSON := json.NewEncoder(f)
	encJSON.SetIndent("", "  ")
	if err := encJSON.Encode(report); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "servebench: serial %.1f jobs/s (p99 %.2fms) → %d concurrent %.1f jobs/s (p99 %.2fms), %.2fx, bit-exact=%v; wrote %s\n",
		serial.JobsPerSec, serial.P99Ms, jobs, concurrent.JobsPerSec, concurrent.P99Ms, report.Speedup, exact, path)
	return nil
}
