package s2c2_test

// The benchmark harness regenerates every evaluation artifact of the
// paper (one Benchmark per table/figure; see DESIGN.md §4) and measures
// the throughput-critical kernels of the stack. Run with:
//
//	go test -bench=. -benchmem
//
// Figure benches report the experiment's tables through -v logs on the
// first iteration; cmd/s2c2-exp prints them directly.

import (
	"math/rand"
	"testing"

	s2c2 "github.com/coded-computing/s2c2"
	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/experiments"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/trace"
)

// ---- Paper figures -----------------------------------------------------

func benchFigure(b *testing.B, id string) {
	cfg := experiments.Config{Scale: 1, Iterations: 8, Seed: 42}
	run := experiments.Registry[id]
	if run == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tables, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.Render())
			}
		}
	}
}

func BenchmarkPredictorTraining(b *testing.B)       { benchFigure(b, "predict") }
func BenchmarkFig1_MotivationLR(b *testing.B)       { benchFigure(b, "fig1") }
func BenchmarkFig2_SpeedTraces(b *testing.B)        { benchFigure(b, "fig2") }
func BenchmarkFig3_StorageOverhead(b *testing.B)    { benchFigure(b, "fig3") }
func BenchmarkFig6_LogisticRegression(b *testing.B) { benchFigure(b, "fig6") }
func BenchmarkFig7_PageRank(b *testing.B)           { benchFigure(b, "fig7") }
func BenchmarkFig8_CloudLowMispred(b *testing.B)    { benchFigure(b, "fig8") }
func BenchmarkFig9_WasteLowMispred(b *testing.B)    { benchFigure(b, "fig9") }
func BenchmarkFig10_CloudHighMispred(b *testing.B)  { benchFigure(b, "fig10") }
func BenchmarkFig11_WasteHighMispred(b *testing.B)  { benchFigure(b, "fig11") }
func BenchmarkFig12_PolynomialS2C2(b *testing.B)    { benchFigure(b, "fig12") }
func BenchmarkFig13_Scale50(b *testing.B)           { benchFigure(b, "fig13") }

// ---- Ablations (DESIGN.md §6) -------------------------------------------

func BenchmarkAblateTimeout(b *testing.B)     { benchFigure(b, "ablate-timeout") }
func BenchmarkAblateMultiCode(b *testing.B)   { benchFigure(b, "ablate-multicode") }
func BenchmarkTailLatency(b *testing.B)       { benchFigure(b, "tail") }
func BenchmarkFig6SVM(b *testing.B)           { benchFigure(b, "fig6-svm") }
func BenchmarkFig7GraphFilter(b *testing.B)   { benchFigure(b, "fig7-filter") }
func BenchmarkAblateGranularity(b *testing.B) { benchFigure(b, "ablate-gran") }
func BenchmarkAblatePredictor(b *testing.B)   { benchFigure(b, "ablate-pred") }
func BenchmarkAblateLayout(b *testing.B)      { benchFigure(b, "ablate-layout") }

// ---- Kernel micro-benchmarks ---------------------------------------------

func BenchmarkMatVec1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := mat.Rand(1024, 1024, rng)
	x := make([]float64, 1024)
	for i := range x {
		x[i] = rng.Float64()
	}
	y := make([]float64, 1024)
	b.SetBytes(8 * 1024 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MatVecInto(a, x, y)
	}
}

func BenchmarkParallelMatVec1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := mat.Rand(1024, 1024, rng)
	x := make([]float64, 1024)
	for i := range x {
		x[i] = rng.Float64()
	}
	y := make([]float64, 1024)
	b.SetBytes(8 * 1024 * 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.ParallelMatVecInto(a, x, y, 0)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x := mat.Rand(256, 256, rng)
	y := mat.Rand(256, 256, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MatMul(x, y)
	}
}

func BenchmarkMatMul1024(b *testing.B) {
	// The acceptance benchmark for the kernel refactor: the cache-blocked
	// packed kernel vs the seed's naive ikj loop (see internal/kernel's
	// BenchmarkMatMulNaive1024 for the baseline).
	rng := rand.New(rand.NewSource(2))
	x := mat.Rand(1024, 1024, rng)
	y := mat.Rand(1024, 1024, rng)
	c := mat.New(1024, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MatMulInto(x, y, c)
	}
}

func BenchmarkMDSDecodeWorkspace(b *testing.B) {
	// DecodeMatVecInto with a reused workspace: the steady-state decode of
	// an iterative job (0 allocs/op; compare BenchmarkMDSDecodeParityHeavy).
	rng := rand.New(rand.NewSource(5))
	a := mat.Rand(2000, 50, rng)
	code, _ := coding.NewMDSCode(12, 10)
	enc := code.Encode(a)
	x := make([]float64, 50)
	for i := range x {
		x[i] = rng.Float64()
	}
	var partials []*coding.Partial
	for _, w := range []int{0, 1, 2, 3, 4, 5, 6, 7, 10, 11} {
		partials = append(partials, enc.WorkerCompute(w, x, []coding.Range{{Lo: 0, Hi: enc.BlockRows}}))
	}
	ws := enc.NewDecodeWorkspace()
	dst := make([]float64, enc.OrigRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.DecodeMatVecInto(dst, partials, ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMDSEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := mat.Rand(2000, 200, rng)
	code, _ := coding.NewMDSCode(12, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code.Encode(a)
	}
}

func BenchmarkMDSDecodeSystematicHeavy(b *testing.B) {
	// Decode dominated by systematic partitions — the common S2C2 case.
	rng := rand.New(rand.NewSource(4))
	a := mat.Rand(2000, 50, rng)
	code, _ := coding.NewMDSCode(12, 10)
	enc := code.Encode(a)
	x := make([]float64, 50)
	for i := range x {
		x[i] = rng.Float64()
	}
	var partials []*coding.Partial
	for w := 0; w < 10; w++ {
		partials = append(partials, enc.WorkerCompute(w, x, []coding.Range{{Lo: 0, Hi: enc.BlockRows}}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.DecodeMatVec(partials); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMDSDecodeParityHeavy(b *testing.B) {
	// Worst case: the two slowest systematic workers replaced by parity.
	rng := rand.New(rand.NewSource(5))
	a := mat.Rand(2000, 50, rng)
	code, _ := coding.NewMDSCode(12, 10)
	enc := code.Encode(a)
	x := make([]float64, 50)
	for i := range x {
		x[i] = rng.Float64()
	}
	var partials []*coding.Partial
	for _, w := range []int{0, 1, 2, 3, 4, 5, 6, 7, 10, 11} {
		partials = append(partials, enc.WorkerCompute(w, x, []coding.Range{{Lo: 0, Hi: enc.BlockRows}}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.DecodeMatVec(partials); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGFMDSDecodeExact(b *testing.B) {
	// The exact-field backend (float-vs-GF(p) ablation, DESIGN.md §6).
	rng := rand.New(rand.NewSource(6))
	rows, cols := 2000, 50
	data := make([]gf.Elem, rows*cols)
	for i := range data {
		data[i] = gf.New(rng.Uint64())
	}
	code, _ := coding.NewGFMDSCode(12, 10)
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		b.Fatal(err)
	}
	x := make([]gf.Elem, cols)
	for i := range x {
		x[i] = gf.New(rng.Uint64())
	}
	var partials []*coding.GFPartial
	for _, w := range []int{0, 1, 2, 3, 4, 5, 6, 7, 10, 11} {
		p, err := enc.WorkerMatVec(w, x, []coding.Range{{Lo: 0, Hi: enc.BlockRows}})
		if err != nil {
			b.Fatal(err)
		}
		partials = append(partials, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.DecodeMatVec(partials); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolyEncodeHessian(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := mat.Rand(300, 120, rng)
	code, _ := coding.NewPolyCode(12, 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.EncodeHessian(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolyDecodeHessian(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	a := mat.Rand(300, 120, rng)
	code, _ := coding.NewPolyCode(12, 3, 3)
	enc, _ := code.EncodeHessian(a)
	d := make([]float64, 300)
	for i := range d {
		d[i] = rng.Float64()
	}
	var partials []*coding.Partial
	for w := 0; w < 9; w++ {
		partials = append(partials, enc.WorkerCompute(w, d, []coding.Range{{Lo: 0, Hi: enc.BlockColsA}}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Decode(partials); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLagrangeQuadratic(b *testing.B) {
	// Encode + degree-2 compute + decode over GF(2^31-1), 12 workers.
	rng := rand.New(rand.NewSource(15))
	code, _ := coding.NewLagrangeCode(12, 5)
	blocks := make([][]gf.Elem, 5)
	for j := range blocks {
		blk := make([]gf.Elem, 4096)
		for e := range blk {
			blk[e] = gf.New(rng.Uint64())
		}
		blocks[j] = blk
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shares, err := code.Encode(blocks)
		if err != nil {
			b.Fatal(err)
		}
		results := map[int][]gf.Elem{}
		for w := 0; w < code.RecoveryThreshold(2); w++ {
			out := make([]gf.Elem, len(shares[w]))
			for e, v := range shares[w] {
				out[e] = gf.Add(gf.Mul(v, v), v)
			}
			results[w] = out
		}
		if _, err := code.Decode(results, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneralS2C2Plan(b *testing.B) {
	speeds := make([]float64, 50)
	rng := rand.New(rand.NewSource(9))
	for i := range speeds {
		speeds[i] = 0.5 + rng.Float64()
	}
	g := &sched.GeneralS2C2{N: 50, K: 40, BlockRows: 4000, Granularity: 200}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Plan(speeds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSTMTrainEpoch(b *testing.B) {
	tr := trace.CloudStable(8, 200, 10)
	cfg := predict.DefaultLSTMConfig()
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := predict.NewLSTM(cfg)
		if err := m.Fit(tr.Speeds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSTMPredict(b *testing.B) {
	tr := trace.CloudStable(1, 200, 11)
	cfg := predict.DefaultLSTMConfig()
	cfg.Epochs = 5
	m := predict.NewLSTM(cfg)
	if err := m.Fit(tr.Speeds); err != nil {
		b.Fatal(err)
	}
	hist := tr.Speeds[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(hist)
	}
}

func BenchmarkEndToEndIterationS2C2(b *testing.B) {
	// One full simulated S2C2 round including numeric encode-free compute
	// and decode on a (10,7) cluster.
	data := s2c2.NewClassificationDataset(1000, 100, 12)
	code, _ := s2c2.NewMDSCode(10, 7)
	enc := code.Encode(data.X)
	tr := s2c2.ControlledCluster(10, 1, 50, 12)
	cluster := &s2c2.CodedCluster{
		Enc:      enc,
		Strategy: &s2c2.GeneralS2C2{N: 10, K: 7, BlockRows: enc.BlockRows},
		Trace:    tr,
		Comm:     s2c2.DefaultComm(),
		Timeout:  s2c2.DefaultTimeout(),
		Numeric:  true,
	}
	x := make([]float64, 100)
	for i := range x {
		x[i] = 0.01 * float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.RunIteration(i, x); err != nil {
			b.Fatal(err)
		}
	}
}
