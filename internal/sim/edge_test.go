package sim

import (
	"math/rand"
	"testing"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/trace"
	"github.com/coded-computing/s2c2/internal/workloads"
)

func TestBasicS2C2InSimMatchesPaperShare(t *testing.T) {
	// Basic S2C2 with s live workers assigns each exactly k/s of its
	// partition (§4.1: D/s rows of the original D).
	n, k := 6, 4
	tr := trace.ControlledCluster(n, 1, 10, 61)
	rng := rand.New(rand.NewSource(61))
	a := mat.Rand(120, 32, rng)
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	strat := &sched.BasicS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	c := &CodedCluster{Enc: enc, Strategy: strat, Trace: tr, Comm: DefaultComm(), Timeout: DefaultTimeout()}
	r, err := c.RunIteration(0, randTestVec(32, rng))
	if err != nil {
		t.Fatal(err)
	}
	live := n - 1
	wantRows := enc.BlockRows * k / live
	for w := 1; w < n; w++ {
		got := r.ComputedRows[w]
		if got < wantRows-1 || got > wantRows+1 {
			t.Fatalf("worker %d assigned %d rows, want ~%d (= blockRows·k/s)", w, got, wantRows)
		}
	}
	if r.ComputedRows[0] != 0 {
		t.Fatalf("straggler assigned %d rows, want 0", r.ComputedRows[0])
	}
}

func TestRunIterativeRejectsBadCode(t *testing.T) {
	data := workloads.SyntheticClassification(40, 6, 62)
	lr := &workloads.LogisticRegression{Data: data, LR: 0.1}
	_, err := RunIterative(lr, JobConfig{
		N: 4, K: 9, // invalid: k > n
		Strategy: MDSFactory(4, 9),
		Trace:    trace.CloudStable(4, 10, 62),
		Comm:     DefaultComm(),
		Timeout:  DefaultTimeout(),
		MaxIter:  2,
	})
	if err == nil {
		t.Fatal("k > n must fail")
	}
}

func TestRunIterativeConvergesEarly(t *testing.T) {
	// A workload that converges must stop the driver before MaxIter.
	g := workloads.RingGraph(24)
	pr := &workloads.PageRank{Graph: g, Damping: 0.85, Tol: 1e-8}
	res, err := RunIterative(pr, JobConfig{
		N: 4, K: 3,
		Strategy: S2C2Factory(4, 3, 0),
		Trace:    trace.ControlledCluster(4, 0, 300, 63),
		Comm:     DefaultComm(),
		Timeout:  DefaultTimeout(),
		Numeric:  true,
		MaxIter:  250,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations >= 250 {
		t.Fatal("PageRank on a ring should converge well before 250 iterations")
	}
}

func TestUncodedNumericDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	a := mat.Rand(24, 4, rng)
	u := &UncodedReplication{A: a, Trace: trace.ControlledCluster(6, 0, 5, 64), Comm: DefaultComm()}
	r, err := u.RunIteration(0, randTestVec(4, rng))
	if err != nil {
		t.Fatal(err)
	}
	if r.Result != nil {
		t.Fatal("Numeric=false must not compute a result")
	}
}

func TestOverDecompositionProportionalCounts(t *testing.T) {
	counts := proportionalCounts([]float64{2, 1, 1}, 8)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 8 {
		t.Fatalf("counts %v do not sum to 8", counts)
	}
	if counts[0] != 4 {
		t.Fatalf("weight-2 worker got %d of 8, want 4", counts[0])
	}
	// Degenerate weights: still place everything.
	counts = proportionalCounts([]float64{0, 0}, 5)
	if counts[0]+counts[1] != 5 {
		t.Fatalf("zero weights: counts %v", counts)
	}
}

func TestCodedClusterBootstrapEqualSpeeds(t *testing.T) {
	// With a forecaster and empty history, the first round must assume
	// equal speeds (§6.2).
	n, k := 4, 3
	rng := rand.New(rand.NewSource(65))
	a := mat.Rand(48, 8, rng)
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	c := &CodedCluster{
		Enc:        enc,
		Strategy:   &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows},
		Forecaster: constantForecaster{0.5},
		Trace:      trace.ControlledCluster(n, 0, 5, 65),
		Comm:       DefaultComm(),
		Timeout:    DefaultTimeout(),
	}
	speeds := c.PredictSpeeds(0)
	for _, s := range speeds {
		if s != 1 {
			t.Fatalf("bootstrap speeds %v, want all 1", speeds)
		}
	}
	if _, err := c.RunIteration(0, randTestVec(8, rng)); err != nil {
		t.Fatal(err)
	}
	// After one observation the forecaster takes over.
	speeds = c.PredictSpeeds(1)
	for _, s := range speeds {
		if s != 0.5 {
			t.Fatalf("post-bootstrap speeds %v, want forecaster's 0.5", speeds)
		}
	}
}
