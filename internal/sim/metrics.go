package sim

// Aggregate accumulates per-round accounting across an iterative job.
type Aggregate struct {
	Rounds            int
	TotalLatency      float64
	PerWorkerComputed []int
	PerWorkerUsed     []int
	Mispredictions    int
	ReassignedRows    int
	BytesMoved        float64
	Latencies         []float64
}

// AddRound folds one MDS round into the aggregate.
func (a *Aggregate) AddRound(r *Round) {
	a.addCommon(r.Latency, r.ComputedRows, r.UsedRows, r.Mispredicted, r.ReassignedRows, r.BytesMoved)
}

// AddPolyRound folds one polynomial-code round into the aggregate.
func (a *Aggregate) AddPolyRound(r *PolyRound) {
	a.addCommon(r.Latency, r.ComputedRows, r.UsedRows, r.Mispredicted, r.ReassignedRows, r.BytesMoved)
}

func (a *Aggregate) addCommon(latency float64, computed, used []int, mispred bool, reassigned int, bytes float64) {
	a.Rounds++
	a.TotalLatency += latency
	a.Latencies = append(a.Latencies, latency)
	if a.PerWorkerComputed == nil {
		a.PerWorkerComputed = make([]int, len(computed))
		a.PerWorkerUsed = make([]int, len(used))
	}
	for w := range computed {
		a.PerWorkerComputed[w] += computed[w]
		a.PerWorkerUsed[w] += used[w]
	}
	if mispred {
		a.Mispredictions++
	}
	a.ReassignedRows += reassigned
	a.BytesMoved += bytes
}

// MeanLatency returns the average round latency.
func (a *Aggregate) MeanLatency() float64 {
	if a.Rounds == 0 {
		return 0
	}
	return a.TotalLatency / float64(a.Rounds)
}

// WastedFraction returns worker w's wasted-computation fraction across the
// whole job (the Figures 9/11 metric).
func (a *Aggregate) WastedFraction(w int) float64 {
	if w >= len(a.PerWorkerComputed) || a.PerWorkerComputed[w] == 0 {
		return 0
	}
	return float64(a.PerWorkerComputed[w]-a.PerWorkerUsed[w]) / float64(a.PerWorkerComputed[w])
}

// TotalWastedFraction returns cluster-wide wasted work.
func (a *Aggregate) TotalWastedFraction() float64 {
	c, u := 0, 0
	for w := range a.PerWorkerComputed {
		c += a.PerWorkerComputed[w]
		u += a.PerWorkerUsed[w]
	}
	if c == 0 {
		return 0
	}
	return float64(c-u) / float64(c)
}

// MispredictionRate returns the fraction of rounds where the timeout fired.
func (a *Aggregate) MispredictionRate() float64 {
	if a.Rounds == 0 {
		return 0
	}
	return float64(a.Mispredictions) / float64(a.Rounds)
}
