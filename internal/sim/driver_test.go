package sim

import (
	"testing"

	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/trace"
	"github.com/coded-computing/s2c2/internal/workloads"
)

func TestRunIterativeLogisticRegressionMatchesLocal(t *testing.T) {
	// Distributed coded gradient descent must produce the same model as
	// local execution (within float tolerance), despite a straggler.
	data := workloads.SyntheticClassification(120, 8, 10)
	mk := func() *workloads.LogisticRegression {
		return &workloads.LogisticRegression{Data: data, LR: 0.5, Lambda: 1e-4, Tol: 0}
	}
	localW, _ := workloads.RunLocal(mk(), 20)

	tr := trace.ControlledCluster(6, 1, 40, 10)
	res, err := RunIterative(mk(), JobConfig{
		N: 6, K: 4,
		Strategy: S2C2Factory(6, 4, 30),
		Trace:    tr,
		Comm:     DefaultComm(),
		Timeout:  DefaultTimeout(),
		Numeric:  true,
		MaxIter:  20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 20 {
		t.Fatalf("ran %d iterations want 20", res.Iterations)
	}
	if !mat.VecApproxEqual(res.State, localW, 1e-6) {
		t.Fatal("distributed model differs from local model")
	}
	if res.Aggregate.Rounds != 20 {
		t.Fatalf("aggregate rounds %d", res.Aggregate.Rounds)
	}
}

func TestRunIterativePageRankMatchesLocal(t *testing.T) {
	g := workloads.PowerLawGraph(48, 4, 11)
	mk := func() *workloads.PageRank {
		return &workloads.PageRank{Graph: g, Damping: 0.85, Tol: 1e-9}
	}
	localX, localIters := workloads.RunLocal(mk(), 200)

	tr := trace.ControlledCluster(6, 2, 250, 11)
	res, err := RunIterative(mk(), JobConfig{
		N: 6, K: 4,
		Strategy: S2C2Factory(6, 4, 24),
		Trace:    tr,
		Comm:     DefaultComm(),
		Timeout:  DefaultTimeout(),
		Numeric:  true,
		MaxIter:  200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != localIters {
		t.Fatalf("distributed converged in %d iters, local in %d", res.Iterations, localIters)
	}
	if !mat.VecApproxEqual(res.State, localX, 1e-6) {
		t.Fatal("distributed PageRank differs from local")
	}
}

func TestRunIterativeTimingOnlyMode(t *testing.T) {
	// Numeric=false still advances the workload using local math and
	// reports latencies.
	data := workloads.SyntheticClassification(80, 6, 12)
	lr := &workloads.LogisticRegression{Data: data, LR: 0.5, Lambda: 0, Tol: 0}
	tr := trace.CloudStable(8, 30, 12)
	res, err := RunIterative(lr, JobConfig{
		N: 8, K: 6,
		Strategy: MDSFactory(8, 6),
		Trace:    tr,
		Comm:     DefaultComm(),
		Timeout:  DefaultTimeout(),
		Numeric:  false,
		MaxIter:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aggregate.MeanLatency() <= 0 {
		t.Fatal("timing-only mode must still report latency")
	}
	if len(res.PerPhase) != 2 {
		t.Fatalf("LR has 2 phases, got %d", len(res.PerPhase))
	}
}
