package sim

import (
	"math/rand"
	"testing"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/trace"
)

func TestUncodedReplicationNoStragglers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := mat.Rand(120, 6, rng)
	x := randTestVec(6, rng)
	want := mat.MatVec(a, x)
	tr := trace.ControlledCluster(12, 0, 20, 31)
	u := &UncodedReplication{A: a, Trace: tr, Comm: DefaultComm(), Numeric: true}
	r, err := u.RunIteration(0, x)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(r.Result, want, 1e-9) {
		t.Fatal("uncoded result mismatch")
	}
	if r.Latency <= 0 {
		t.Fatal("latency must be positive")
	}
	if r.DataMoves != 0 {
		t.Fatalf("no stragglers should need no data moves, got %d", r.DataMoves)
	}
}

func TestUncodedReplicationSpeculatesOnStragglers(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := mat.Rand(120, 6, rng)
	x := randTestVec(6, rng)
	trNone := trace.ControlledCluster(12, 0, 20, 33)
	trStrag := trace.ControlledCluster(12, 2, 20, 33)
	u0 := &UncodedReplication{A: a, Trace: trNone, Comm: DefaultComm()}
	u2 := &UncodedReplication{A: a, Trace: trStrag, Comm: DefaultComm()}
	r0, err := u0.RunIteration(0, x)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := u2.RunIteration(0, x)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Speculative == 0 {
		t.Fatal("stragglers must trigger speculation")
	}
	if r2.Latency <= r0.Latency {
		t.Fatal("straggled round should still be slower than clean round")
	}
	// Speculation must beat just waiting for the 5x-slow straggler.
	noSpec := 0.0
	for w := 0; w < 12; w++ {
		ft := computeTime(10, trStrag.At(w, 0))
		if ft > noSpec {
			noSpec = ft
		}
	}
	if r2.Latency >= noSpec {
		t.Fatalf("speculation (%.4f) should beat waiting for the straggler (%.4f)", r2.Latency, noSpec)
	}
}

func TestUncodedReplicationCollapsesBeyondReplicationFactor(t *testing.T) {
	// The Figure 1/6 crossover: with r=3 replication and >= 3 stragglers,
	// replicas land on straggling nodes and recovery needs data movement,
	// so latency degrades sharply vs the clean case.
	rng := rand.New(rand.NewSource(34))
	a := mat.Rand(240, 6, rng)
	x := randTestVec(6, rng)
	lat := map[int]float64{}
	for _, s := range []int{0, 3, 6} {
		tr := trace.ControlledCluster(12, s, 20, 35)
		u := &UncodedReplication{A: a, Trace: tr, Comm: DefaultComm()}
		r, err := u.RunIteration(0, x)
		if err != nil {
			t.Fatal(err)
		}
		lat[s] = r.Latency
	}
	if lat[3] <= lat[0] || lat[6] <= lat[3] {
		t.Fatalf("latency should grow with stragglers: %v", lat)
	}
}

func TestOverDecompositionBalancedAndCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	a := mat.Rand(240, 5, rng)
	x := randTestVec(5, rng)
	want := mat.MatVec(a, x)
	tr := trace.CloudStable(10, 30, 36)
	o := &OverDecomposition{A: a, Trace: tr, Comm: DefaultComm(), Numeric: true}
	var first, last *OverDecompRound
	for iter := 0; iter < 10; iter++ {
		r, err := o.RunIteration(iter, x)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.VecApproxEqual(r.Result, want, 1e-9) {
			t.Fatalf("iteration %d: over-decomposition result mismatch", iter)
		}
		if iter == 0 {
			first = r
		}
		last = r
	}
	// After the initial rebalancing, stable speeds need few migrations.
	if last.Migrations > first.Migrations {
		t.Fatalf("migrations should subside: first %d last %d", first.Migrations, last.Migrations)
	}
}

func TestOverDecompositionStorageGrowsUnderVolatility(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	a := mat.Rand(400, 4, rng)
	x := randTestVec(4, rng)
	tr := trace.CloudVolatile(10, 100, 37)
	o := &OverDecomposition{A: a, Trace: tr, Comm: DefaultComm()}
	if _, err := o.RunIteration(0, x); err != nil {
		t.Fatal(err)
	}
	start := meanFrac(o.StorageFractions())
	for iter := 1; iter < 60; iter++ {
		if _, err := o.RunIteration(iter, x); err != nil {
			t.Fatal(err)
		}
	}
	end := meanFrac(o.StorageFractions())
	// The Figure 3 effect: avoiding data movement in an uncoded scheme
	// requires accumulating an ever-growing share of the dataset.
	if end <= start {
		t.Fatalf("storage should grow under volatile speeds: %.3f -> %.3f", start, end)
	}
	if end > 1.0 {
		t.Fatalf("storage fraction %v cannot exceed 1", end)
	}
}

func meanFrac(fs []float64) float64 {
	s := 0.0
	for _, f := range fs {
		s += f
	}
	return s / float64(len(fs))
}

func TestPolyClusterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	a := mat.Rand(60, 30, rng)
	d := randTestVec(60, rng)
	want := mat.ATDiagA(a, d)

	code, err := coding.NewPolyCode(12, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.EncodeHessian(a)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.ControlledCluster(12, 1, 20, 38)
	pc := &PolyCluster{
		Enc:      enc,
		Strategy: &sched.GeneralS2C2{N: 12, K: 9, BlockRows: enc.BlockColsA, Granularity: enc.BlockColsA},
		Trace:    tr,
		Comm:     DefaultComm(),
		Timeout:  DefaultTimeout(),
		Numeric:  true,
	}
	r, err := pc.RunIteration(0, d)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Result.ApproxEqual(want, 1e-6) {
		t.Fatal("polynomial S2C2 decode mismatch")
	}
}

func TestPolyS2C2BeatsConventionalPoly(t *testing.T) {
	// Figure 12's shape: with no stragglers and oracle speeds, S2C2 on
	// polynomial codes beats conventional polynomial coding (which waits
	// for the fastest ab full partitions and wastes the rest).
	rng := rand.New(rand.NewSource(39))
	a := mat.Rand(60, 30, rng)
	d := randTestVec(60, rng)
	code, _ := coding.NewPolyCode(12, 3, 3)
	enc, _ := code.EncodeHessian(a)
	tr := trace.ControlledCluster(12, 0, 20, 39)

	conv := &PolyCluster{Enc: enc, Strategy: &sched.ConventionalMDS{N: 12, K: 9, BlockRows: enc.BlockColsA},
		Trace: tr, Comm: DefaultComm(), Timeout: DefaultTimeout()}
	s2c2 := &PolyCluster{Enc: enc, Strategy: &sched.GeneralS2C2{N: 12, K: 9, BlockRows: enc.BlockColsA, Granularity: enc.BlockColsA},
		Trace: tr.Clone(), Comm: DefaultComm(), Timeout: DefaultTimeout()}

	aggC, aggS := &Aggregate{}, &Aggregate{}
	for iter := 0; iter < 10; iter++ {
		rc, err := conv.RunIteration(iter, d)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := s2c2.RunIteration(iter, d)
		if err != nil {
			t.Fatal(err)
		}
		aggC.AddPolyRound(rc)
		aggS.AddPolyRound(rs)
	}
	if aggS.MeanLatency() >= aggC.MeanLatency() {
		t.Fatalf("poly S2C2 (%.4f) should beat conventional (%.4f)",
			aggS.MeanLatency(), aggC.MeanLatency())
	}
}

func randTestVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}
