package sim

import (
	"math/rand"
	"testing"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/trace"
)

func buildCluster(t *testing.T, n, k, rows int, tr *trace.Trace, strat sched.Strategy, fc predict.Forecaster) (*CodedCluster, *mat.Dense, []float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	a := mat.Rand(rows, 96, rng)
	x := make([]float64, 96)
	for i := range x {
		x[i] = rng.Float64()
	}
	code, err := coding.NewMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	want := mat.MatVec(a, x)
	return &CodedCluster{
		Enc:        enc,
		Strategy:   strat,
		Forecaster: fc,
		Trace:      tr,
		Comm:       DefaultComm(),
		Timeout:    DefaultTimeout(),
		Numeric:    true,
	}, a, x, want
}

func TestCodedClusterS2C2OracleDecodesCorrectly(t *testing.T) {
	n, k := 6, 4
	tr := trace.ControlledCluster(n, 1, 50, 1)
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: mat.PaddedRows(60, k) / k, Granularity: 30}
	c, _, x, want := buildCluster(t, n, k, 60, tr, strat, nil)
	for iter := 0; iter < 5; iter++ {
		r, err := c.RunIteration(iter, x)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.VecApproxEqual(r.Result, want, 1e-6) {
			t.Fatalf("iteration %d: decoded result mismatch", iter)
		}
		if r.Latency <= 0 {
			t.Fatal("latency must be positive")
		}
	}
}

func TestCodedClusterConventionalMDSWaste(t *testing.T) {
	// Conventional (6,4)-MDS with equal speeds: the 2 slowest responders
	// are ignored every round → cluster waste ≈ 2/6.
	n, k := 6, 4
	tr := trace.ControlledCluster(n, 0, 50, 2)
	blockRows := mat.PaddedRows(60, k) / k
	strat := &sched.ConventionalMDS{N: n, K: k, BlockRows: blockRows}
	c, _, x, want := buildCluster(t, n, k, 60, tr, strat, nil)
	agg := &Aggregate{}
	for iter := 0; iter < 20; iter++ {
		r, err := c.RunIteration(iter, x)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.VecApproxEqual(r.Result, want, 1e-6) {
			t.Fatalf("iteration %d: decode mismatch", iter)
		}
		agg.AddRound(r)
	}
	wf := agg.TotalWastedFraction()
	if wf < 0.2 || wf > 0.45 {
		t.Fatalf("conventional MDS waste = %.3f want ≈ 1/3", wf)
	}
}

func TestS2C2FasterThanConventionalWithNoStragglers(t *testing.T) {
	// The core claim (Figure 8): with zero stragglers and accurate speeds,
	// S2C2(n,k) beats conventional (n,k)-MDS by about (n−k)/k.
	n, k := 10, 7
	tr := trace.ControlledCluster(n, 0, 40, 3)
	blockRows := mat.PaddedRows(140, k) / k
	mds := &sched.ConventionalMDS{N: n, K: k, BlockRows: blockRows}
	s2c2 := &sched.GeneralS2C2{N: n, K: k, BlockRows: blockRows, Granularity: 70}

	cm, _, x, _ := buildCluster(t, n, k, 140, tr, mds, nil)
	cs, _, _, _ := buildCluster(t, n, k, 140, tr.Clone(), s2c2, nil)

	aggM, aggS := &Aggregate{}, &Aggregate{}
	for iter := 0; iter < 15; iter++ {
		rm, err := cm.RunIteration(iter, x)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := cs.RunIteration(iter, x)
		if err != nil {
			t.Fatal(err)
		}
		aggM.AddRound(rm)
		aggS.AddRound(rs)
	}
	speedup := aggM.MeanLatency() / aggS.MeanLatency()
	// Ideal is n/k ≈ 1.43; comm overheads shave a little off.
	if speedup < 1.2 {
		t.Fatalf("S2C2 speedup %.3f too small (want ≳ 1.2)", speedup)
	}
	if aggS.TotalWastedFraction() > 0.01 {
		t.Fatalf("S2C2 with oracle speeds should waste ~nothing, got %.3f", aggS.TotalWastedFraction())
	}
}

func TestCodedClusterToleratesStragglers(t *testing.T) {
	// With n−k stragglers, S2C2 must still decode correctly and its
	// latency must stay bounded by the non-straggler speeds.
	n, k := 6, 4
	tr := trace.ControlledCluster(n, 2, 30, 4)
	blockRows := mat.PaddedRows(60, k) / k
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: blockRows, Granularity: 60}
	c, _, x, want := buildCluster(t, n, k, 60, tr, strat, nil)
	for iter := 0; iter < 10; iter++ {
		r, err := c.RunIteration(iter, x)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.VecApproxEqual(r.Result, want, 1e-6) {
			t.Fatalf("iteration %d: decode mismatch under stragglers", iter)
		}
	}
}

func TestCodedClusterMispredictionRecovery(t *testing.T) {
	// Force a mis-prediction: a predictor that believes all workers are
	// equally fast while worker 0 is actually 50× slower. The timeout must
	// fire, work must be reassigned, and the decode must still be right.
	n, k := 5, 3
	tr := trace.ControlledCluster(n, 0, 30, 5)
	tr.ApplyStragglers(trace.StragglerSpec{Worker: 0, Factor: 50})
	blockRows := mat.PaddedRows(30, k) / k
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: blockRows, Granularity: 30}
	c, _, x, want := buildCluster(t, n, k, 30, tr, strat, constantForecaster{1.0})
	r, err := c.RunIteration(0, x)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Mispredicted {
		t.Fatal("expected the timeout to fire")
	}
	if r.ReassignedRows == 0 {
		t.Fatal("expected reassigned rows")
	}
	if !mat.VecApproxEqual(r.Result, want, 1e-6) {
		t.Fatal("decode after recovery mismatch")
	}
	if len(r.TimedOut) == 0 || r.TimedOut[0] != 0 {
		t.Fatalf("worker 0 should have timed out, got %v", r.TimedOut)
	}
}

// constantForecaster always predicts the same speed for every worker.
type constantForecaster struct{ v float64 }

func (c constantForecaster) Name() string              { return "constant" }
func (c constantForecaster) Fit([][]float64) error     { return nil }
func (c constantForecaster) Predict([]float64) float64 { return c.v }

func TestCodedClusterForecasterLoop(t *testing.T) {
	// With an AR(1) forecaster fitted online from observations, iterations
	// after the first should assign less work to the straggler.
	n, k := 6, 4
	tr := trace.ControlledCluster(n, 1, 40, 6)
	blockRows := mat.PaddedRows(480, k) / k
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: blockRows, Granularity: 60}
	ar1 := &predict.AR1{}
	// Pre-fit on similar traces (the paper trains offline on measured data).
	fitTrace := trace.ControlledCluster(n, 1, 100, 7)
	if err := ar1.Fit(fitTrace.Speeds); err != nil {
		t.Fatal(err)
	}
	c, _, x, want := buildCluster(t, n, k, 480, tr, strat, ar1)
	var firstLatency, laterLatency float64
	for iter := 0; iter < 10; iter++ {
		r, err := c.RunIteration(iter, x)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.VecApproxEqual(r.Result, want, 1e-6) {
			t.Fatalf("iteration %d decode mismatch", iter)
		}
		if iter == 0 {
			firstLatency = r.Latency
		}
		if iter == 9 {
			laterLatency = r.Latency
		}
	}
	// After observing the straggler, the planner shifts work away from it,
	// so steady-state latency beats the uninformed first round.
	if laterLatency >= firstLatency {
		t.Fatalf("adaptive iteration (%.4f) should beat bootstrap (%.4f)", laterLatency, firstLatency)
	}
}

func TestAggregateAccounting(t *testing.T) {
	a := &Aggregate{}
	a.AddRound(&Round{Latency: 2, ComputedRows: []int{10, 10}, UsedRows: []int{10, 5}, Mispredicted: true, ReassignedRows: 3, BytesMoved: 100})
	a.AddRound(&Round{Latency: 4, ComputedRows: []int{10, 10}, UsedRows: []int{10, 10}, BytesMoved: 50})
	if a.MeanLatency() != 3 {
		t.Fatalf("MeanLatency = %v", a.MeanLatency())
	}
	if a.MispredictionRate() != 0.5 {
		t.Fatalf("MispredictionRate = %v", a.MispredictionRate())
	}
	if a.WastedFraction(1) != 0.25 {
		t.Fatalf("WastedFraction = %v", a.WastedFraction(1))
	}
	if a.TotalWastedFraction() != 5.0/40.0 {
		t.Fatalf("TotalWastedFraction = %v", a.TotalWastedFraction())
	}
	if a.ReassignedRows != 3 || a.BytesMoved != 150 {
		t.Fatal("aggregation sums wrong")
	}
}
