package sim

import (
	"fmt"
	"sort"

	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/trace"
)

// OverDecomposition simulates the Charm++-inspired baseline of §7.2: the
// data is split into Factor×n partitions (4× over-decomposition), each
// worker starts with Factor of them, ReplicationFactor (1.42, matching a
// (10,7) code's redundancy) of the data is pre-replicated round-robin,
// and every round the master rebalances partitions to match predicted
// speeds — paying a transfer cost whenever the receiving worker does not
// already hold a copy.
type OverDecomposition struct {
	A          *mat.Dense
	Trace      *trace.Trace
	Comm       CommModel
	Forecaster predict.Forecaster // nil = oracle speeds
	// Factor is the over-decomposition multiple (paper: 4).
	Factor int
	// ReplicationFactor is total stored data / original data (paper: 1.42).
	ReplicationFactor float64
	// Numeric enables real computation.
	Numeric bool

	nParts    int
	rowsPer   int
	partBytes float64
	holds     []map[int]bool // holds[w] = partitions worker w stores
	assigned  [][]int        // assigned[w] = partitions worker w computes
	history   [][]float64
}

// Name identifies the baseline in experiment output.
func (o *OverDecomposition) Name() string { return "over-decomposition" }

func (o *OverDecomposition) factor() int {
	if o.Factor <= 0 {
		return 4
	}
	return o.Factor
}

func (o *OverDecomposition) init() {
	if o.holds != nil {
		return
	}
	n := o.Trace.NumWorkers()
	f := o.factor()
	o.nParts = n * f
	o.rowsPer = mat.PaddedRows(o.A.Rows(), o.nParts) / o.nParts
	o.partBytes = float64(8 * o.rowsPer * o.A.Cols())
	o.holds = make([]map[int]bool, n)
	o.assigned = make([][]int, n)
	for w := 0; w < n; w++ {
		o.holds[w] = map[int]bool{}
	}
	for p := 0; p < o.nParts; p++ {
		w := p / f
		o.holds[w][p] = true
		o.assigned[w] = append(o.assigned[w], p)
	}
	// Pre-replicate (ReplicationFactor−1) of the partitions round-robin on
	// the next worker over.
	rf := o.ReplicationFactor
	if rf <= 1 {
		rf = 1.42
	}
	extra := int(float64(o.nParts) * (rf - 1))
	for i := 0; i < extra; i++ {
		p := i % o.nParts
		w := (p/f + 1 + i/o.nParts) % n
		o.holds[w][p] = true
	}
}

// OverDecompRound reports one over-decomposition iteration.
type OverDecompRound struct {
	Iter       int
	Latency    float64
	Migrations int
	BytesMoved float64
	Result     []float64
}

// RunIteration rebalances to predicted speeds, pays migration costs, and
// runs the round at true speeds.
func (o *OverDecomposition) RunIteration(iter int, x []float64) (*OverDecompRound, error) {
	o.init()
	n := o.Trace.NumWorkers()
	actual := make([]float64, n)
	for w := 0; w < n; w++ {
		actual[w] = o.Trace.At(w, iter)
	}
	predicted := o.predictSpeeds(iter, actual)

	round := &OverDecompRound{Iter: iter}
	xBytes := float64(8 * len(x))
	round.BytesMoved += xBytes * float64(n)

	// Target partition counts proportional to predicted speed (largest
	// remainder keeps the total exact).
	target := proportionalCounts(predicted, o.nParts)

	// Rebalance: strip surplus partitions, hand them to deficit workers.
	var pool []int
	for w := 0; w < n; w++ {
		for len(o.assigned[w]) > target[w] {
			last := o.assigned[w][len(o.assigned[w])-1]
			o.assigned[w] = o.assigned[w][:len(o.assigned[w])-1]
			pool = append(pool, last)
		}
	}
	moveCost := make([]float64, n)
	for w := 0; w < n && len(pool) > 0; w++ {
		for len(o.assigned[w]) < target[w] && len(pool) > 0 {
			// Prefer a pooled partition this worker already holds.
			pick := -1
			for i, p := range pool {
				if o.holds[w][p] {
					pick = i
					break
				}
			}
			if pick < 0 {
				pick = len(pool) - 1
				p := pool[pick]
				moveCost[w] += o.Comm.TransferTime(o.partBytes)
				round.BytesMoved += o.partBytes
				round.Migrations++
				o.holds[w][p] = true
			}
			p := pool[pick]
			pool = append(pool[:pick], pool[pick+1:]...)
			o.assigned[w] = append(o.assigned[w], p)
		}
	}
	if len(pool) > 0 {
		return nil, fmt.Errorf("sim: over-decomposition left %d partitions unplaced", len(pool))
	}

	// Execute at true speeds; migrations are on the critical path (§7.2.2).
	broadcast := o.Comm.TransferTime(xBytes)
	latest := 0.0
	for w := 0; w < n; w++ {
		rows := len(o.assigned[w]) * o.rowsPer
		if rows == 0 {
			continue
		}
		ft := broadcast + moveCost[w] + computeElems(float64(rows*o.A.Cols()), actual[w]) + o.Comm.TransferTime(float64(8*rows))
		if ft > latest {
			latest = ft
		}
		round.BytesMoved += float64(8 * rows)
		// Observed speed for the forecaster.
		o.recordObservation(w, rows, ft-broadcast-moveCost[w])
	}
	round.Latency = latest

	if o.Numeric {
		padded := mat.PadRows(o.A, o.nParts)
		y := make([]float64, padded.Rows())
		for w := 0; w < n; w++ {
			for _, p := range o.assigned[w] {
				part := mat.MatVecRows(padded, x, p*o.rowsPer, (p+1)*o.rowsPer)
				copy(y[p*o.rowsPer:], part)
			}
		}
		round.Result = y[:o.A.Rows()]
	}
	return round, nil
}

func (o *OverDecomposition) predictSpeeds(iter int, actual []float64) []float64 {
	n := len(actual)
	if o.Forecaster == nil {
		return actual
	}
	out := make([]float64, n)
	if len(o.history) == 0 || len(o.history[0]) == 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	for w := 0; w < n; w++ {
		out[w] = o.Forecaster.Predict(o.history[w])
		if out[w] <= 0 {
			out[w] = o.history[w][len(o.history[w])-1]
		}
		if out[w] <= 0 {
			out[w] = 0.01
		}
	}
	return out
}

func (o *OverDecomposition) recordObservation(w, rows int, compute float64) {
	if o.Forecaster == nil {
		return
	}
	if o.history == nil {
		o.history = make([][]float64, o.Trace.NumWorkers())
	}
	v := 1.0
	if compute > 0 {
		v = float64(rows*o.A.Cols()) / compute / ElemRate
	}
	o.history[w] = append(o.history[w], v)
}

// StorageFractions returns, per worker, the fraction of the full data
// currently stored (partitions held ÷ total partitions) — the Figure 3
// metric.
func (o *OverDecomposition) StorageFractions() []float64 {
	o.init()
	out := make([]float64, len(o.holds))
	for w, h := range o.holds {
		out[w] = float64(len(h)) / float64(o.nParts)
	}
	return out
}

// proportionalCounts apportions total items to weights by largest
// remainder, guaranteeing the counts sum to total.
func proportionalCounts(weights []float64, total int) []int {
	n := len(weights)
	sum := 0.0
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	counts := make([]int, n)
	if sum == 0 {
		for i := 0; total > 0; i = (i + 1) % n {
			counts[i]++
			total--
		}
		return counts
	}
	type frac struct {
		i int
		f float64
	}
	fr := make([]frac, n)
	used := 0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		exact := float64(total) * w / sum
		counts[i] = int(exact)
		used += counts[i]
		fr[i] = frac{i, exact - float64(counts[i])}
	}
	sort.Slice(fr, func(a, b int) bool { return fr[a].f > fr[b].f })
	for i := 0; used < total; i = (i + 1) % n {
		counts[fr[i].i]++
		used++
	}
	return counts
}
