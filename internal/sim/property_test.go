package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/trace"
)

// Property: with oracle speed knowledge, general S2C2 is never slower
// than conventional MDS on the same code and environment (up to the
// simulator's communication constants) — the paper's core dominance
// claim. Random n, k, straggler counts, and trace seeds.
func TestS2C2DominatesConventionalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(8)     // 6..13 workers
		k := n/2 + r.Intn(n/2) // n/2 .. n-1
		if k >= n {
			k = n - 1
		}
		stragglers := r.Intn(n - k + 1) // within the code's tolerance
		rows := 40 * k
		a := mat.Rand(rows, 64, r)
		x := make([]float64, 64)
		for i := range x {
			x[i] = r.Float64()
		}
		tr := trace.ControlledCluster(n, stragglers, 10, seed)
		code, err := coding.NewMDSCode(n, k)
		if err != nil {
			return false
		}
		enc := code.Encode(a)
		mkCluster := func(s sched.Strategy, tr *trace.Trace) *CodedCluster {
			return &CodedCluster{Enc: enc, Strategy: s, Trace: tr, Comm: DefaultComm(), Timeout: DefaultTimeout()}
		}
		conv := mkCluster(&sched.ConventionalMDS{N: n, K: k, BlockRows: enc.BlockRows}, tr)
		adap := mkCluster(&sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows}, tr.Clone())
		convLat, s2c2Lat := 0.0, 0.0
		for iter := 0; iter < 5; iter++ {
			rc, err := conv.RunIteration(iter, x)
			if err != nil {
				return false
			}
			rs, err := adap.RunIteration(iter, x)
			if err != nil {
				return false
			}
			convLat += rc.Latency
			s2c2Lat += rs.Latency
		}
		// Allow 5% slack for comm constants and chunk quantization.
		return s2c2Lat <= convLat*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: round latency is monotone in straggler count for S2C2 with
// oracle speeds (more lost capacity can only slow the round), and the
// decoded result never changes.
func TestS2C2LatencyMonotoneInStragglers(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	n, k := 10, 6
	a := mat.Rand(300, 64, rng)
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.Float64()
	}
	want := mat.MatVec(a, x)
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	prev := 0.0
	for s := 0; s <= n-k; s++ {
		tr := trace.ControlledCluster(n, s, 10, 200) // same seed → same healthy speeds
		c := &CodedCluster{
			Enc:      enc,
			Strategy: &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows},
			Trace:    tr,
			Comm:     DefaultComm(),
			Timeout:  DefaultTimeout(),
			Numeric:  true,
		}
		total := 0.0
		for iter := 0; iter < 5; iter++ {
			r, err := c.RunIteration(iter, x)
			if err != nil {
				t.Fatal(err)
			}
			if !mat.VecApproxEqual(r.Result, want, 1e-6) {
				t.Fatalf("stragglers=%d iter=%d: decode mismatch", s, iter)
			}
			total += r.Latency
		}
		if total < prev*0.98 { // small tolerance for per-seed jitter
			t.Fatalf("latency decreased when stragglers grew: %v -> %v at s=%d", prev, total, s)
		}
		prev = total
	}
}

// Failure injection: a worker dies mid-job (speed collapses to near zero
// at iteration 3). The AR(1)-driven cluster must recover via the timeout
// path on the failure round and re-plan around the dead worker afterward,
// with every round still decoding correctly.
func TestWorkerDeathMidJobRecovery(t *testing.T) {
	n, k := 6, 4
	rows := 240
	tr := trace.ControlledCluster(n, 0, 40, 301)
	// Worker 2 dies at iteration 3 (speed ≈ 0 thereafter).
	tr.ApplyStragglers(trace.StragglerSpec{Worker: 2, Factor: 10000, From: 3})

	rng := rand.New(rand.NewSource(301))
	a := mat.Rand(rows, 64, rng)
	x := make([]float64, 64)
	for i := range x {
		x[i] = rng.Float64()
	}
	want := mat.MatVec(a, x)
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)

	lastValue := lastValueForecaster{}
	c := &CodedCluster{
		Enc:        enc,
		Strategy:   &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows},
		Forecaster: lastValue,
		Trace:      tr,
		Comm:       DefaultComm(),
		Timeout:    DefaultTimeout(),
		Numeric:    true,
	}
	var deathRound *Round
	for iter := 0; iter < 8; iter++ {
		r, err := c.RunIteration(iter, x)
		if err != nil {
			t.Fatalf("iteration %d: %v", iter, err)
		}
		if !mat.VecApproxEqual(r.Result, want, 1e-6) {
			t.Fatalf("iteration %d: decode mismatch after worker death", iter)
		}
		if iter == 3 {
			deathRound = r
		}
		if iter >= 5 && r.ComputedRows[2] > rows/20 {
			t.Fatalf("iteration %d: dead worker still assigned %d rows", iter, r.ComputedRows[2])
		}
	}
	if deathRound == nil || !deathRound.Mispredicted {
		t.Fatal("the death round should have triggered timeout recovery")
	}
}

// lastValueForecaster adapts predict.LastValue semantics without the
// import (history carries observed speeds).
type lastValueForecaster struct{}

func (lastValueForecaster) Name() string          { return "last-value" }
func (lastValueForecaster) Fit([][]float64) error { return nil }
func (lastValueForecaster) Predict(h []float64) float64 {
	if len(h) == 0 {
		return 0
	}
	return h[len(h)-1]
}

func TestPolyClusterMispredictionRecovery(t *testing.T) {
	// Polynomial-code variant of the timeout path: predictions say all
	// equal, worker 0 is 40× slower; coverage must be re-established and
	// the Hessian still decode exactly.
	rng := rand.New(rand.NewSource(302))
	a := mat.Rand(60, 30, rng)
	d := make([]float64, 60)
	for i := range d {
		d[i] = rng.Float64()
	}
	want := mat.ATDiagA(a, d)
	code, _ := coding.NewPolyCode(12, 3, 3)
	enc, _ := code.EncodeHessian(a)
	tr := trace.ControlledCluster(12, 0, 10, 302)
	tr.ApplyStragglers(trace.StragglerSpec{Worker: 0, Factor: 40})
	pc := &PolyCluster{
		Enc:        enc,
		Strategy:   &sched.GeneralS2C2{N: 12, K: 9, BlockRows: enc.BlockColsA, Granularity: enc.BlockColsA},
		Forecaster: constantForecaster{1},
		Trace:      tr,
		Comm:       DefaultComm(),
		Timeout:    DefaultTimeout(),
		Numeric:    true,
	}
	r, err := pc.RunIteration(0, d)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Mispredicted || r.ReassignedRows == 0 {
		t.Fatalf("expected poly timeout recovery, got mispredicted=%v reassigned=%d",
			r.Mispredicted, r.ReassignedRows)
	}
	if !r.Result.ApproxEqual(want, 1e-6) {
		t.Fatal("poly decode after recovery mismatch")
	}
}

func TestCommModel(t *testing.T) {
	c := CommModel{Latency: 0.001, Bandwidth: 1e9}
	if got := c.TransferTime(0); got != 0.001 {
		t.Fatalf("zero-byte transfer = %v want latency only", got)
	}
	if got := c.TransferTime(1e9); got != 1.001 {
		t.Fatalf("1GB transfer = %v want 1.001", got)
	}
	if computeElems(0, 1) != 0 {
		t.Fatal("zero elems must cost zero")
	}
	if computeElems(100, 0) < 1e17 {
		t.Fatal("zero speed must be effectively infinite")
	}
}
