package sim

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/trace"
	"github.com/coded-computing/s2c2/internal/workloads"
)

// StrategyFactory builds a strategy for a phase given that phase's
// partition size. It lets one job configuration drive phases whose
// matrices have different shapes (e.g. X and Xᵀ in gradient descent).
type StrategyFactory func(blockRows int) sched.Strategy

// MDSFactory returns a conventional-MDS strategy factory.
func MDSFactory(n, k int) StrategyFactory {
	return func(blockRows int) sched.Strategy {
		return &sched.ConventionalMDS{N: n, K: k, BlockRows: blockRows}
	}
}

// S2C2Factory returns a general-S2C2 strategy factory.
func S2C2Factory(n, k, granularity int) StrategyFactory {
	return func(blockRows int) sched.Strategy {
		return &sched.GeneralS2C2{N: n, K: k, BlockRows: blockRows, Granularity: granularity}
	}
}

// BasicS2C2Factory returns a basic-S2C2 strategy factory.
func BasicS2C2Factory(n, k, granularity int) StrategyFactory {
	return func(blockRows int) sched.Strategy {
		return &sched.BasicS2C2{N: n, K: k, BlockRows: blockRows, Granularity: granularity}
	}
}

// JobConfig configures an iterative coded job on the simulator.
type JobConfig struct {
	N, K       int
	Strategy   StrategyFactory
	Forecaster predict.Forecaster // nil = oracle speeds
	Trace      *trace.Trace
	Comm       CommModel
	Timeout    TimeoutPolicy
	// Numeric runs real encode/compute/decode every round. When false the
	// timing model runs but state updates use locally computed products.
	Numeric bool
	MaxIter int
	// Exec pins this job's encode parallelism to a pool and fan-out, so
	// co-tenant jobs in one process stop contending for the shared
	// GOMAXPROCS-sized default pool. The zero value uses the default.
	Exec kernel.Exec
}

// JobResult reports a finished iterative job.
type JobResult struct {
	State      []float64
	Iterations int
	Aggregate  *Aggregate
	// PerPhase holds one aggregate per workload phase.
	PerPhase []*Aggregate
}

// RunIterative executes the workload to convergence (or MaxIter) on a
// simulated coded cluster, one CodedCluster per phase, all driven by the
// same speed trace. The returned aggregate sums phase latencies per
// iteration — the paper's end-to-end computation latency.
func RunIterative(w workloads.Iterative, cfg JobConfig) (*JobResult, error) {
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	matrices := w.Matrices()
	clusters := make([]*CodedCluster, len(matrices))
	for p, m := range matrices {
		code, err := coding.NewMDSCode(cfg.N, cfg.K)
		if err != nil {
			return nil, err
		}
		code.SetExec(cfg.Exec)
		enc := code.Encode(m)
		clusters[p] = &CodedCluster{
			Enc:        enc,
			Strategy:   cfg.Strategy(enc.BlockRows),
			Forecaster: cfg.Forecaster,
			Trace:      cfg.Trace,
			Comm:       cfg.Comm,
			Timeout:    cfg.Timeout,
			Numeric:    cfg.Numeric,
		}
	}
	// Each phase's cluster owns its round buffers: results are consumed
	// within the iteration, so the clusters may recycle them.
	for _, cl := range clusters {
		cl.ReuseBuffers = true
	}
	res := &JobResult{Aggregate: &Aggregate{}, PerPhase: make([]*Aggregate, len(matrices))}
	for p := range res.PerPhase {
		res.PerPhase[p] = &Aggregate{}
	}
	state := w.Init()
	// Per-phase buffers reused across iterations: the phase outputs and
	// (in timing-only mode) the locally computed products.
	outputs := make([][]float64, len(matrices))
	local := make([][]float64, len(matrices))
	var iterComputed, iterUsed []int
	for iter := 0; iter < cfg.MaxIter; iter++ {
		for p := range outputs {
			outputs[p] = nil
		}
		iterLatency := 0.0
		mispred := false
		reassigned := 0
		bytes := 0.0
		for p := range matrices {
			in := w.PhaseInput(p, state, outputs[:p])
			round, err := clusters[p].RunIteration(iter, in)
			if err != nil {
				return nil, fmt.Errorf("sim: %s phase %d: %w", w.Name(), p, err)
			}
			if cfg.Numeric {
				outputs[p] = round.Result
			} else {
				local[p] = kernel.Grow(local[p], matrices[p].Rows())
				mat.MatVecInto(matrices[p], in, local[p])
				outputs[p] = local[p]
			}
			iterLatency += round.Latency
			if iterComputed == nil {
				iterComputed = make([]int, len(round.ComputedRows))
				iterUsed = make([]int, len(round.UsedRows))
			}
			for i := range round.ComputedRows {
				iterComputed[i] += round.ComputedRows[i]
				iterUsed[i] += round.UsedRows[i]
			}
			mispred = mispred || round.Mispredicted
			reassigned += round.ReassignedRows
			bytes += round.BytesMoved
			res.PerPhase[p].AddRound(round)
		}
		res.Aggregate.addCommon(iterLatency, iterComputed, iterUsed, mispred, reassigned, bytes)
		for i := range iterComputed {
			iterComputed[i] = 0
			iterUsed[i] = 0
		}
		var done bool
		state, done = w.Update(state, outputs)
		res.Iterations = iter + 1
		if done {
			break
		}
	}
	// Workloads may hand back state in reusable internal buffers; the
	// result must outlive the job.
	res.State = mat.CloneVec(state)
	return res, nil
}
