package sim

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/trace"
	"github.com/coded-computing/s2c2/internal/workloads"
)

// StrategyFactory builds a strategy for a phase given that phase's
// partition size. It lets one job configuration drive phases whose
// matrices have different shapes (e.g. X and Xᵀ in gradient descent).
type StrategyFactory func(blockRows int) sched.Strategy

// MDSFactory returns a conventional-MDS strategy factory.
func MDSFactory(n, k int) StrategyFactory {
	return func(blockRows int) sched.Strategy {
		return &sched.ConventionalMDS{N: n, K: k, BlockRows: blockRows}
	}
}

// S2C2Factory returns a general-S2C2 strategy factory.
func S2C2Factory(n, k, granularity int) StrategyFactory {
	return func(blockRows int) sched.Strategy {
		return &sched.GeneralS2C2{N: n, K: k, BlockRows: blockRows, Granularity: granularity}
	}
}

// BasicS2C2Factory returns a basic-S2C2 strategy factory.
func BasicS2C2Factory(n, k, granularity int) StrategyFactory {
	return func(blockRows int) sched.Strategy {
		return &sched.BasicS2C2{N: n, K: k, BlockRows: blockRows, Granularity: granularity}
	}
}

// JobConfig configures an iterative coded job on the simulator.
type JobConfig struct {
	N, K       int
	Strategy   StrategyFactory
	Forecaster predict.Forecaster // nil = oracle speeds
	Trace      *trace.Trace
	Comm       CommModel
	Timeout    TimeoutPolicy
	// Numeric runs real encode/compute/decode every round. When false the
	// timing model runs but state updates use locally computed products.
	Numeric bool
	MaxIter int
}

// JobResult reports a finished iterative job.
type JobResult struct {
	State      []float64
	Iterations int
	Aggregate  *Aggregate
	// PerPhase holds one aggregate per workload phase.
	PerPhase []*Aggregate
}

// RunIterative executes the workload to convergence (or MaxIter) on a
// simulated coded cluster, one CodedCluster per phase, all driven by the
// same speed trace. The returned aggregate sums phase latencies per
// iteration — the paper's end-to-end computation latency.
func RunIterative(w workloads.Iterative, cfg JobConfig) (*JobResult, error) {
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	matrices := w.Matrices()
	clusters := make([]*CodedCluster, len(matrices))
	for p, m := range matrices {
		code, err := coding.NewMDSCode(cfg.N, cfg.K)
		if err != nil {
			return nil, err
		}
		enc := code.Encode(m)
		clusters[p] = &CodedCluster{
			Enc:        enc,
			Strategy:   cfg.Strategy(enc.BlockRows),
			Forecaster: cfg.Forecaster,
			Trace:      cfg.Trace,
			Comm:       cfg.Comm,
			Timeout:    cfg.Timeout,
			Numeric:    cfg.Numeric,
		}
	}
	res := &JobResult{Aggregate: &Aggregate{}, PerPhase: make([]*Aggregate, len(matrices))}
	for p := range res.PerPhase {
		res.PerPhase[p] = &Aggregate{}
	}
	state := w.Init()
	for iter := 0; iter < cfg.MaxIter; iter++ {
		outputs := make([][]float64, len(matrices))
		iterLatency := 0.0
		var iterComputed, iterUsed []int
		mispred := false
		reassigned := 0
		bytes := 0.0
		for p := range matrices {
			in := w.PhaseInput(p, state, outputs[:p])
			round, err := clusters[p].RunIteration(iter, in)
			if err != nil {
				return nil, fmt.Errorf("sim: %s phase %d: %w", w.Name(), p, err)
			}
			if cfg.Numeric {
				outputs[p] = round.Result
			} else {
				outputs[p] = mat.MatVec(matrices[p], in)
			}
			iterLatency += round.Latency
			if iterComputed == nil {
				iterComputed = make([]int, len(round.ComputedRows))
				iterUsed = make([]int, len(round.UsedRows))
			}
			for i := range round.ComputedRows {
				iterComputed[i] += round.ComputedRows[i]
				iterUsed[i] += round.UsedRows[i]
			}
			mispred = mispred || round.Mispredicted
			reassigned += round.ReassignedRows
			bytes += round.BytesMoved
			res.PerPhase[p].AddRound(round)
		}
		res.Aggregate.addCommon(iterLatency, iterComputed, iterUsed, mispred, reassigned, bytes)
		var done bool
		state, done = w.Update(state, outputs)
		res.Iterations = iter + 1
		if done {
			break
		}
	}
	res.State = state
	return res, nil
}
