package sim

import (
	"fmt"
	"sort"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/trace"
)

// TimeoutPolicy is the §4.3 recovery rule: after the first k workers
// respond, the remaining workers get Fraction (paper: 0.15, matching the
// predictor's ~16.7% error) of the mean response time of those k; work
// still pending at the deadline is reassigned to the finished workers.
type TimeoutPolicy struct {
	Fraction float64
}

// DefaultTimeout returns the paper's 15% policy.
func DefaultTimeout() TimeoutPolicy { return TimeoutPolicy{Fraction: 0.15} }

// CodedCluster simulates an MDS-coded master/worker cluster executing
// iterative mat-vec rounds.
type CodedCluster struct {
	Enc      *coding.EncodedMatrix
	Strategy sched.Strategy
	// Forecaster predicts next-round speeds from observed history.
	// nil means an oracle that knows the true speeds (the paper's
	// "knowing the exact speeds" configuration).
	Forecaster predict.Forecaster
	Trace      *trace.Trace
	Comm       CommModel
	Timeout    TimeoutPolicy
	// Numeric controls whether workers really execute their kernels and
	// the master really decodes (true: end-to-end verification) or only
	// the timing model runs (false: fast latency sweeps).
	Numeric bool
	// ReuseBuffers lets the cluster return Round.Result slices backed by
	// per-cluster storage that the NEXT RunIteration overwrites. Drivers
	// that consume each round before requesting the next (sim.RunIterative,
	// benchmarks) set it to avoid a per-round result allocation; leave it
	// false if round results must outlive the following iteration.
	ReuseBuffers bool

	history [][]float64 // observed speed per worker per iteration

	scratch clusterScratch
}

// clusterScratch is per-cluster round state recycled across iterations:
// speed vectors, coverage counters, finish-time records, worker partials,
// and the decode workspace (which also caches LU factorizations of
// recurring worker sets across rounds).
type clusterScratch struct {
	predicted, actual, observed []float64
	cov                         []int
	used                        []bool
	finishes                    []workerFinish
	partials                    []*coding.Partial
	partialBuf                  []*coding.Partial // per-worker reusable partials
	decodeWS                    *coding.DecodeWorkspace
	result                      []float64
	planBuf                     sched.PlanBuffer // double-buffered round plans
}

// Round captures one iteration's outcome and accounting.
type Round struct {
	Iter    int
	Latency float64 // virtual seconds, broadcast to decodable
	// Result is the decoded product (Numeric mode) or nil.
	Result []float64
	// ComputedRows[w] is what worker w was asked to compute (including
	// reassignments); UsedRows[w] is how much of it the master consumed.
	ComputedRows []int
	UsedRows     []int
	// ReassignedRows counts rows re-executed after the timeout fired.
	ReassignedRows int
	// TimedOut lists workers whose results were abandoned.
	TimedOut []int
	// Mispredicted reports whether the timeout mechanism fired.
	Mispredicted bool
	// BytesMoved is control+data traffic this round (broadcast + results).
	BytesMoved float64
}

// WastedFraction returns the round's wasted compute fraction for worker w.
func (r *Round) WastedFraction(w int) float64 {
	if r.ComputedRows[w] == 0 {
		return 0
	}
	return float64(r.ComputedRows[w]-r.UsedRows[w]) / float64(r.ComputedRows[w])
}

// PredictSpeeds returns the strategy input for the given iteration: 1.0
// for every worker on the first round (the paper's bootstrap assumption),
// otherwise the forecaster's one-step-ahead estimates — or the true trace
// speeds when no forecaster is configured (oracle mode).
func (c *CodedCluster) PredictSpeeds(iter int) []float64 {
	return c.predictSpeedsInto(make([]float64, c.Trace.NumWorkers()), iter)
}

// predictSpeedsInto is PredictSpeeds writing into caller scratch.
func (c *CodedCluster) predictSpeedsInto(speeds []float64, iter int) []float64 {
	n := c.Trace.NumWorkers()
	if c.Forecaster == nil {
		for w := 0; w < n; w++ {
			speeds[w] = c.Trace.At(w, iter)
		}
		return speeds
	}
	if len(c.history) == 0 || len(c.history[0]) == 0 {
		for w := 0; w < n; w++ {
			speeds[w] = 1
		}
		return speeds
	}
	for w := 0; w < n; w++ {
		speeds[w] = c.Forecaster.Predict(c.history[w])
		if speeds[w] <= 0 {
			speeds[w] = c.history[w][len(c.history[w])-1]
		}
		if speeds[w] <= 0 {
			speeds[w] = 0.01
		}
	}
	return speeds
}

// observe records per-worker observed speeds (ℓ/t, as §6.2) after a round.
func (c *CodedCluster) observe(observed []float64) {
	n := len(observed)
	if c.history == nil {
		c.history = make([][]float64, n)
	}
	for w := 0; w < n; w++ {
		v := observed[w]
		if v <= 0 {
			// No observation (idle worker): carry the last estimate so the
			// forecaster keeps a continuous series.
			if len(c.history[w]) > 0 {
				v = c.history[w][len(c.history[w])-1]
			} else {
				v = 1
			}
		}
		c.history[w] = append(c.history[w], v)
	}
}

// RunIteration executes one coded round: plan from predicted speeds,
// simulate worker finish times from true trace speeds, apply the timeout/
// reassignment recovery, decode (in Numeric mode), and update the
// observed-speed history.
func (c *CodedCluster) RunIteration(iter int, x []float64) (*Round, error) {
	n := c.Trace.NumWorkers()
	c.scratch.predicted = kernel.Grow(c.scratch.predicted, n)
	predicted := c.predictSpeedsInto(c.scratch.predicted, iter)
	plan, err := c.scratch.planBuf.Next(c.Strategy, predicted)
	if err != nil {
		return nil, fmt.Errorf("sim: iteration %d: %w", iter, err)
	}
	c.scratch.actual = kernel.Grow(c.scratch.actual, n)
	actual := c.scratch.actual
	for w := 0; w < n; w++ {
		actual[w] = c.Trace.At(w, iter)
	}
	k := c.Strategy.NeedK()
	round, observed, err := c.simulateRound(iter, plan, actual, predicted, k, x)
	if err != nil {
		return nil, err
	}
	c.observe(observed)
	return round, nil
}

// workerFinish orders workers by completion time.
type workerFinish struct {
	w      int
	finish float64
	rows   int
}

func (c *CodedCluster) simulateRound(iter int, plan *sched.Plan, actual, predicted []float64, k int, x []float64) (*Round, []float64, error) {
	n := len(actual)
	blockRows := c.Enc.BlockRows
	round := &Round{
		Iter:         iter,
		ComputedRows: make([]int, n),
		UsedRows:     make([]int, n),
	}
	// Broadcast of x to all workers (concurrent sends; one transfer time).
	xBytes := float64(8 * len(x))
	broadcast := c.Comm.TransferTime(xBytes)
	round.BytesMoved += xBytes * float64(n)

	finishes := c.scratch.finishes[:0]
	for w := 0; w < n; w++ {
		rows := plan.RowsFor(w)
		if rows == 0 {
			continue
		}
		round.ComputedRows[w] = rows
		ft := broadcast + computeElems(float64(rows*c.Enc.Cols), actual[w]) + c.Comm.TransferTime(float64(8*rows))
		finishes = append(finishes, workerFinish{w: w, finish: ft, rows: rows})
	}
	c.scratch.finishes = finishes
	if len(finishes) < k {
		return nil, nil, fmt.Errorf("sim: plan uses %d workers, need at least %d", len(finishes), k)
	}
	sort.Slice(finishes, func(i, j int) bool { return finishes[i].finish < finishes[j].finish })

	// Find when per-row coverage k is first satisfied, walking arrivals.
	cov := kernel.GrowInts(c.scratch.cov, blockRows)
	for i := range cov {
		cov[i] = 0
	}
	c.scratch.cov = cov
	needed := blockRows
	coveredAt := -1.0
	usedUpTo := -1 // index into finishes of last needed arrival
	for i, f := range finishes {
		for _, rg := range plan.Assignments[f.w] {
			for r := rg.Lo; r < rg.Hi; r++ {
				cov[r]++
				if cov[r] == k {
					needed--
				}
			}
		}
		if needed == 0 {
			coveredAt = f.finish
			usedUpTo = i
			break
		}
	}

	// Timeout deadline per §4.3: after the first k responses, stragglers
	// get Fraction of the mean response time. Two refinements keep the
	// rule sound when S2C2 assigns *unequal* loads by design: the deadline
	// never precedes (a) the k-th response (the paper measures from there)
	// or (b) (1+Fraction) × the plan's own expected makespan under the
	// predicted speeds — a worker on schedule with its assignment is not a
	// straggler merely because lightly-loaded peers answered sooner.
	meanK := 0.0
	for i := 0; i < k; i++ {
		meanK += finishes[i].finish
	}
	meanK /= float64(k)
	deadline := meanK * (1 + c.Timeout.Fraction)
	planned := 0.0
	for w := 0; w < n; w++ {
		rows := plan.RowsFor(w)
		if rows == 0 {
			continue
		}
		pf := broadcast + computeElems(float64(rows*c.Enc.Cols), predicted[w]) + c.Comm.TransferTime(float64(8*rows))
		if pf > planned {
			planned = pf
		}
	}
	if d := planned * (1 + c.Timeout.Fraction); d > deadline {
		deadline = d
	}
	if deadline < finishes[k-1].finish {
		deadline = finishes[k-1].finish
	}

	c.scratch.observed = kernel.GrowZeroed(c.scratch.observed, n)
	observed := c.scratch.observed
	used := c.scratch.used
	if cap(used) < n {
		used = make([]bool, n)
	}
	used = used[:n]
	for i := range used {
		used[i] = false
	}
	c.scratch.used = used

	if coveredAt >= 0 && coveredAt <= deadline {
		// Normal path: coverage reached before the timeout.
		round.Latency = coveredAt
		for i := 0; i <= usedUpTo; i++ {
			used[finishes[i].w] = true
			round.UsedRows[finishes[i].w] = finishes[i].rows
		}
		// Workers finishing later had their results ignored (conventional
		// MDS's discarded stragglers).
		for i := usedUpTo + 1; i < len(finishes); i++ {
			round.UsedRows[finishes[i].w] = 0
		}
	} else {
		// Mis-prediction: some assigned workers blew the deadline. Their
		// pending coverage is re-executed by finished workers.
		round.Mispredicted = true
		completed := map[int]bool{}
		for _, f := range finishes {
			if f.finish <= deadline {
				completed[f.w] = true
				used[f.w] = true
				round.UsedRows[f.w] = f.rows
			} else {
				round.TimedOut = append(round.TimedOut, f.w)
			}
		}
		// Recompute coverage counting only completed workers.
		for r := range cov {
			cov[r] = 0
		}
		for w := range completed {
			for _, rg := range plan.Assignments[w] {
				for r := rg.Lo; r < rg.Hi; r++ {
					cov[r]++
				}
			}
		}
		// Assign missing coverage row-by-row to completed workers that do
		// not already cover the row, balancing by projected extra time.
		type helper struct {
			w     int
			extra int
			has   []bool
		}
		var helpers []helper
		for w := range completed {
			has := make([]bool, blockRows)
			for _, rg := range plan.Assignments[w] {
				for r := rg.Lo; r < rg.Hi; r++ {
					has[r] = true
				}
			}
			helpers = append(helpers, helper{w: w, has: has})
		}
		sort.Slice(helpers, func(i, j int) bool { return helpers[i].w < helpers[j].w })
		reassigned := 0
		for r := 0; r < blockRows; r++ {
			for cov[r] < k {
				// Pick the helper with the least projected extra work that
				// can still add coverage for this row.
				best := -1
				bestLoad := 0.0
				for hi := range helpers {
					h := &helpers[hi]
					if h.has[r] {
						continue
					}
					load := float64(h.extra+1) / maxf(actual[h.w], 1e-9)
					if best < 0 || load < bestLoad {
						best, bestLoad = hi, load
					}
				}
				if best < 0 {
					return nil, nil, fmt.Errorf("sim: iteration %d: cannot re-cover row %d", iter, r)
				}
				helpers[best].has[r] = true
				helpers[best].extra++
				cov[r]++
				reassigned++
			}
		}
		round.ReassignedRows = reassigned
		// Completion: deadline + assignment message + helper compute+reply.
		latest := deadline
		for _, h := range helpers {
			if h.extra == 0 {
				continue
			}
			round.ComputedRows[h.w] += h.extra
			round.UsedRows[h.w] += h.extra
			ft := deadline + c.Comm.TransferTime(64) + computeElems(float64(h.extra*c.Enc.Cols), actual[h.w]) + c.Comm.TransferTime(float64(8*h.extra))
			if ft > latest {
				latest = ft
			}
			round.BytesMoved += 64 + float64(8*h.extra)
		}
		round.Latency = latest
	}

	// Result bytes from used workers.
	for w, used := range round.UsedRows {
		round.BytesMoved += float64(8 * used)
		_ = w
	}

	// Observed speeds from response times (§6.2: ℓ/t). A timed-out
	// worker's result still arrives eventually — off the critical path —
	// so the master measures its true rate and the predictor converges
	// instead of repeating the same over-estimate every round.
	for _, f := range finishes {
		ct := f.finish - broadcast - c.Comm.TransferTime(float64(8*f.rows))
		if ct <= 0 {
			ct = 1e-9
		}
		observed[f.w] = float64(f.rows*c.Enc.Cols) / ct / ElemRate
	}

	// Numeric execution and decode. Worker partials, the decode workspace
	// (with its cached LU factorizations), and the result vector are all
	// recycled across rounds.
	if c.Numeric {
		if c.scratch.partialBuf == nil {
			c.scratch.partialBuf = make([]*coding.Partial, n)
		}
		partials := c.scratch.partials[:0]
		for w := 0; w < n; w++ {
			if used[w] && plan.RowsFor(w) > 0 {
				c.scratch.partialBuf[w] = c.Enc.WorkerComputeInto(w, x, plan.Assignments[w], c.scratch.partialBuf[w])
				partials = append(partials, c.scratch.partialBuf[w])
			}
		}
		c.scratch.partials = partials
		if round.Mispredicted {
			// The timing pass reassigned coverage from timed-out workers to
			// finished ones; mirror that here so the decode has coverage k.
			partials = c.numericRecovery(partials, k, x)
		}
		if c.scratch.decodeWS == nil {
			c.scratch.decodeWS = c.Enc.NewDecodeWorkspace()
		}
		c.scratch.result = kernel.Grow(c.scratch.result, c.Enc.OrigRows)
		dec, err := c.Enc.DecodeMatVecInto(c.scratch.result, partials, c.scratch.decodeWS)
		if err != nil {
			return nil, nil, fmt.Errorf("sim: iteration %d decode: %w", iter, err)
		}
		if !c.ReuseBuffers {
			dec = append([]float64(nil), dec...)
		}
		round.Result = dec
	}
	return round, observed, nil
}

// numericRecovery adds helper partials so that every row reaches coverage
// k among the supplied partials, mirroring the timing-model reassignment.
func (c *CodedCluster) numericRecovery(partials []*coding.Partial, k int, x []float64) []*coding.Partial {
	blockRows := c.Enc.BlockRows
	cov := make([]int, blockRows)
	has := map[int][]bool{}
	for _, p := range partials {
		h := has[p.Worker]
		if h == nil {
			h = make([]bool, blockRows)
			has[p.Worker] = h
		}
		for _, rg := range p.Ranges {
			for r := rg.Lo; r < rg.Hi; r++ {
				if !h[r] {
					h[r] = true
					cov[r]++
				}
			}
		}
	}
	extraRows := map[int][]coding.Range{}
	workers := make([]int, 0, len(has))
	for w := range has {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for r := 0; r < blockRows; r++ {
		for cov[r] < k {
			placed := false
			for _, w := range workers {
				if !has[w][r] {
					has[w][r] = true
					cov[r]++
					extraRows[w] = append(extraRows[w], coding.Range{Lo: r, Hi: r + 1})
					placed = true
					break
				}
			}
			if !placed {
				break // cannot recover; decode will surface the error
			}
		}
	}
	for w, ranges := range extraRows {
		partials = append(partials, c.Enc.WorkerCompute(w, x, ranges))
	}
	return partials
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
