package sim

import (
	"fmt"
	"sort"

	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/trace"
)

// UncodedReplication simulates the enhanced Hadoop/LATE-style baseline of
// §7.1: the data matrix is split into n partitions, each replicated on
// Replication (3) randomly chosen workers; a round launches every task on
// its primary holder, then — reactively, once SpeculateAfter of the tasks
// have finished — launches up to MaxSpeculative speculative copies of the
// stragglers on idle workers, moving the partition when no idle worker
// holds a replica.
type UncodedReplication struct {
	A     *mat.Dense
	Trace *trace.Trace
	Comm  CommModel
	// Replication is the data replication factor (paper: 3).
	Replication int
	// MaxSpeculative caps speculative task launches per round (paper: 6).
	MaxSpeculative int
	// SpeculateAfter is the completed-task fraction that triggers
	// speculation (LATE waits for most tasks before reacting).
	SpeculateAfter float64
	// Numeric enables real computation of the product.
	Numeric bool

	replicas  [][]int // replicas[p] = workers holding partition p
	rowsPer   int
	partBytes float64
}

// Name identifies the baseline in experiment output.
func (u *UncodedReplication) Name() string {
	return fmt.Sprintf("uncoded-%drep", u.replicationFactor())
}

func (u *UncodedReplication) replicationFactor() int {
	if u.Replication <= 0 {
		return 3
	}
	return u.Replication
}

func (u *UncodedReplication) init() {
	if u.replicas != nil {
		return
	}
	n := u.Trace.NumWorkers()
	rep := u.replicationFactor()
	u.rowsPer = mat.PaddedRows(u.A.Rows(), n) / n
	u.partBytes = float64(8 * u.rowsPer * u.A.Cols())
	u.replicas = make([][]int, n)
	for p := 0; p < n; p++ {
		// Deterministic round-robin placement: primary p plus the next
		// rep-1 workers. (The paper says "randomly selected"; round-robin
		// is the same placement law with a fixed seed and keeps runs
		// reproducible.)
		for r := 0; r < rep; r++ {
			u.replicas[p] = append(u.replicas[p], (p+r)%n)
		}
	}
}

// UncodedRound reports one replication-baseline iteration.
type UncodedRound struct {
	Iter        int
	Latency     float64
	Speculative int
	DataMoves   int
	BytesMoved  float64
	Result      []float64
}

// RunIteration simulates one round at the given trace step.
func (u *UncodedReplication) RunIteration(iter int, x []float64) (*UncodedRound, error) {
	u.init()
	n := u.Trace.NumWorkers()
	speeds := make([]float64, n)
	for w := 0; w < n; w++ {
		speeds[w] = u.Trace.At(w, iter)
	}
	round := &UncodedRound{Iter: iter}
	xBytes := float64(8 * len(x))
	broadcast := u.Comm.TransferTime(xBytes)
	round.BytesMoved += xBytes * float64(n)

	// Primary executions: task p on worker p.
	finish := make([]float64, n) // finish[p] = task p completion
	for p := 0; p < n; p++ {
		finish[p] = broadcast + computeElems(float64(u.rowsPer*u.A.Cols()), speeds[p]) + u.Comm.TransferTime(float64(8*u.rowsPer))
	}
	// Speculation trigger time: when SpeculateAfter of tasks have finished.
	frac := u.SpeculateAfter
	if frac <= 0 || frac >= 1 {
		frac = 0.75
	}
	sorted := append([]float64(nil), finish...)
	sort.Float64s(sorted)
	trigIdx := int(frac * float64(n))
	if trigIdx >= n {
		trigIdx = n - 1
	}
	trigger := sorted[trigIdx]

	// Straggling tasks (unfinished at trigger), slowest first.
	type lag struct {
		p  int
		ft float64
	}
	var lagging []lag
	for p := 0; p < n; p++ {
		if finish[p] > trigger {
			lagging = append(lagging, lag{p, finish[p]})
		}
	}
	sort.Slice(lagging, func(i, j int) bool { return lagging[i].ft > lagging[j].ft })
	maxSpec := u.MaxSpeculative
	if maxSpec <= 0 {
		maxSpec = 6
	}
	if len(lagging) > maxSpec {
		lagging = lagging[:maxSpec]
	}

	// Idle workers at trigger: those whose primary task has finished.
	// available[w] = time worker w can start speculative work.
	available := map[int]float64{}
	for w := 0; w < n; w++ {
		if finish[w] <= trigger {
			available[w] = trigger
		}
	}
	for _, l := range lagging {
		// Prefer an idle replica holder; fall back to moving the data to
		// the earliest-available idle worker.
		bestW, bestStart, needMove := -1, 0.0, false
		for _, w := range u.replicas[l.p] {
			if w == l.p {
				continue
			}
			if at, ok := available[w]; ok && (bestW < 0 || at < bestStart) {
				bestW, bestStart = w, at
			}
		}
		if bestW < 0 {
			for w, at := range available {
				if bestW < 0 || at < bestStart {
					bestW, bestStart, needMove = w, at, true
				}
			}
		}
		if bestW < 0 {
			continue // nobody idle: speculation impossible this round
		}
		start := bestStart + u.Comm.TransferTime(64) // task dispatch
		if needMove {
			start += u.Comm.TransferTime(u.partBytes)
			round.BytesMoved += u.partBytes
			round.DataMoves++
		}
		specFinish := start + computeElems(float64(u.rowsPer*u.A.Cols()), speeds[bestW]) + u.Comm.TransferTime(float64(8*u.rowsPer))
		round.Speculative++
		available[bestW] = specFinish
		if specFinish < finish[l.p] {
			finish[l.p] = specFinish
		}
	}

	latest := 0.0
	for _, ft := range finish {
		if ft > latest {
			latest = ft
		}
	}
	round.Latency = latest
	round.BytesMoved += float64(8 * u.rowsPer * n)

	if u.Numeric {
		padded := mat.PadRows(u.A, n)
		y := make([]float64, 0, padded.Rows())
		for p := 0; p < n; p++ {
			y = append(y, mat.MatVecRows(padded, x, p*u.rowsPer, (p+1)*u.rowsPer)...)
		}
		round.Result = y[:u.A.Rows()]
	}
	return round, nil
}
