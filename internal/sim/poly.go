package sim

import (
	"fmt"
	"sort"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/predict"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/trace"
)

// PolyCluster simulates polynomial-coded bilinear rounds (the §7.2.3
// Hessian workload) with or without S2C2 workload distribution. The
// recovery threshold is a·b instead of k, and a worker's per-row kernel is
// BlockColsB multiply-accumulate columns wide; otherwise the timing model
// matches CodedCluster.
type PolyCluster struct {
	Enc        *coding.EncodedBilinear
	Strategy   sched.Strategy
	Forecaster predict.Forecaster // nil = oracle
	Trace      *trace.Trace
	Comm       CommModel
	Timeout    TimeoutPolicy
	Numeric    bool
	// ReuseBuffers lets the cluster back Round.Result with per-cluster
	// storage overwritten by the next RunIteration (see CodedCluster).
	ReuseBuffers bool

	history [][]float64

	// Per-round scratch recycled across iterations (see clusterScratch).
	predictBuf []float64
	actualBuf  []float64
	finishes   []workerFinish
	cov        []int
	used       []bool
	observed   []float64
	partialBuf []*coding.Partial
	partials   []*coding.Partial
	decodeWS   *coding.PolyDecodeWorkspace
	result     *mat.Dense
	planBuf    sched.PlanBuffer // double-buffered round plans
}

// PolyRound reports one bilinear iteration.
type PolyRound struct {
	Iter           int
	Latency        float64
	Result         *mat.Dense
	ComputedRows   []int
	UsedRows       []int
	ReassignedRows int
	Mispredicted   bool
	BytesMoved     float64
}

// predictSpeeds mirrors CodedCluster.predictSpeedsInto, writing into the
// cluster's reusable speed scratch.
func (c *PolyCluster) predictSpeeds(iter int) []float64 {
	n := c.Trace.NumWorkers()
	c.predictBuf = kernel.Grow(c.predictBuf, n)
	speeds := c.predictBuf
	if c.Forecaster == nil {
		for w := 0; w < n; w++ {
			speeds[w] = c.Trace.At(w, iter)
		}
		return speeds
	}
	if len(c.history) == 0 || len(c.history[0]) == 0 {
		for w := range speeds {
			speeds[w] = 1
		}
		return speeds
	}
	for w := 0; w < n; w++ {
		speeds[w] = c.Forecaster.Predict(c.history[w])
		if speeds[w] <= 0 {
			speeds[w] = 0.01
		}
	}
	return speeds
}

// RunIteration executes one Hessian round on the diagonal vector d.
//
// Every assigned row costs RowsM·BlockColsB multiply-accumulates — far
// more than a mat-vec row — so compute time is scaled by that row weight
// in multiply-accumulates (ElemRate units).
func (c *PolyCluster) RunIteration(iter int, d []float64) (*PolyRound, error) {
	n := c.Trace.NumWorkers()
	predicted := c.predictSpeeds(iter)
	plan, err := c.planBuf.Next(c.Strategy, predicted)
	if err != nil {
		return nil, fmt.Errorf("sim: poly iteration %d: %w", iter, err)
	}
	threshold := c.Strategy.NeedK()
	c.actualBuf = kernel.Grow(c.actualBuf, n)
	actual := c.actualBuf
	for w := 0; w < n; w++ {
		actual[w] = c.Trace.At(w, iter)
	}
	blockRows := c.Enc.BlockColsA
	round := &PolyRound{
		Iter:         iter,
		ComputedRows: make([]int, n),
		UsedRows:     make([]int, n),
	}
	dBytes := float64(8 * len(d))
	broadcast := c.Comm.TransferTime(dBytes)
	round.BytesMoved += dBytes * float64(n)

	// Row weight: one output row of Ã_wᵀ·diag(d)·B̃_w costs
	// RowsM × BlockColsB multiply-accumulates.
	rowWeight := float64(c.Enc.RowsM * c.Enc.BlockColsB)

	finishes := c.finishes[:0]
	for w := 0; w < n; w++ {
		rows := plan.RowsFor(w)
		if rows == 0 {
			continue
		}
		round.ComputedRows[w] = rows
		ft := broadcast + computeElems(float64(rows)*rowWeight, actual[w]) + c.Comm.TransferTime(float64(8*rows*c.Enc.BlockColsB))
		finishes = append(finishes, workerFinish{w: w, finish: ft, rows: rows})
	}
	c.finishes = finishes
	if len(finishes) < threshold {
		return nil, fmt.Errorf("sim: poly plan uses %d workers, need %d", len(finishes), threshold)
	}
	sort.Slice(finishes, func(i, j int) bool { return finishes[i].finish < finishes[j].finish })

	cov := kernel.GrowInts(c.cov, blockRows)
	for i := range cov {
		cov[i] = 0
	}
	c.cov = cov
	needed := blockRows
	coveredAt := -1.0
	usedUpTo := -1
	for i, f := range finishes {
		for _, rg := range plan.Assignments[f.w] {
			for r := rg.Lo; r < rg.Hi; r++ {
				cov[r]++
				if cov[r] == threshold {
					needed--
				}
			}
		}
		if needed == 0 {
			coveredAt = f.finish
			usedUpTo = i
			break
		}
	}
	// Deadline rule as in CodedCluster.simulateRound: first-threshold mean
	// plus the plan's expected makespan under predicted speeds.
	meanK := 0.0
	for i := 0; i < threshold; i++ {
		meanK += finishes[i].finish
	}
	meanK /= float64(threshold)
	deadline := meanK * (1 + c.Timeout.Fraction)
	planned := 0.0
	for w := 0; w < n; w++ {
		rows := plan.RowsFor(w)
		if rows == 0 {
			continue
		}
		pf := broadcast + computeElems(float64(rows)*rowWeight, predicted[w]) + c.Comm.TransferTime(float64(8*rows*c.Enc.BlockColsB))
		if pf > planned {
			planned = pf
		}
	}
	if d := planned * (1 + c.Timeout.Fraction); d > deadline {
		deadline = d
	}
	if deadline < finishes[threshold-1].finish {
		deadline = finishes[threshold-1].finish
	}

	usedWorkers := c.used
	if cap(usedWorkers) < n {
		usedWorkers = make([]bool, n)
	}
	usedWorkers = usedWorkers[:n]
	for i := range usedWorkers {
		usedWorkers[i] = false
	}
	c.used = usedWorkers
	if coveredAt >= 0 && coveredAt <= deadline {
		round.Latency = coveredAt
		for i := 0; i <= usedUpTo; i++ {
			usedWorkers[finishes[i].w] = true
			round.UsedRows[finishes[i].w] = finishes[i].rows
		}
	} else {
		round.Mispredicted = true
		for r := range cov {
			cov[r] = 0
		}
		for _, f := range finishes {
			if f.finish <= deadline {
				usedWorkers[f.w] = true
				round.UsedRows[f.w] = f.rows
				for _, rg := range plan.Assignments[f.w] {
					for r := rg.Lo; r < rg.Hi; r++ {
						cov[r]++
					}
				}
			}
		}
		// Reassign deficient rows among finished workers.
		type helper struct {
			w     int
			extra int
			has   []bool
		}
		var helpers []helper
		for w, u := range usedWorkers {
			if !u {
				continue
			}
			has := make([]bool, blockRows)
			for _, rg := range plan.Assignments[w] {
				for r := rg.Lo; r < rg.Hi; r++ {
					has[r] = true
				}
			}
			helpers = append(helpers, helper{w: w, has: has})
		}
		for r := 0; r < blockRows; r++ {
			for cov[r] < threshold {
				best := -1
				bestLoad := 0.0
				for hi := range helpers {
					h := &helpers[hi]
					if h.has[r] {
						continue
					}
					load := float64(h.extra+1) / maxf(actual[h.w], 1e-9)
					if best < 0 || load < bestLoad {
						best, bestLoad = hi, load
					}
				}
				if best < 0 {
					return nil, fmt.Errorf("sim: poly iteration %d: cannot re-cover row %d", iter, r)
				}
				helpers[best].has[r] = true
				helpers[best].extra++
				cov[r]++
				round.ReassignedRows++
			}
		}
		latest := deadline
		for _, h := range helpers {
			if h.extra == 0 {
				continue
			}
			round.ComputedRows[h.w] += h.extra
			round.UsedRows[h.w] += h.extra
			ft := deadline + c.Comm.TransferTime(64) + computeElems(float64(h.extra)*rowWeight, actual[h.w]) + c.Comm.TransferTime(float64(8*h.extra*c.Enc.BlockColsB))
			if ft > latest {
				latest = ft
			}
		}
		round.Latency = latest
	}

	for _, used := range round.UsedRows {
		round.BytesMoved += float64(8 * used * c.Enc.BlockColsB)
	}

	// Observed speeds for the forecaster.
	c.observed = kernel.GrowZeroed(c.observed, n)
	observed := c.observed
	for _, f := range finishes {
		ct := f.finish - broadcast
		if ct <= 0 {
			ct = 1e-9
		}
		observed[f.w] = float64(f.rows) * rowWeight / ct / ElemRate
	}
	if c.history == nil {
		c.history = make([][]float64, n)
	}
	for w := 0; w < n; w++ {
		v := observed[w]
		if v <= 0 {
			if len(c.history[w]) > 0 {
				v = c.history[w][len(c.history[w])-1]
			} else {
				v = 1
			}
		}
		c.history[w] = append(c.history[w], v)
	}

	if c.Numeric {
		if c.partialBuf == nil {
			c.partialBuf = make([]*coding.Partial, n)
		}
		partials := c.partials[:0]
		for w := 0; w < n; w++ {
			if usedWorkers[w] && plan.RowsFor(w) > 0 {
				c.partialBuf[w] = c.Enc.WorkerComputeInto(w, d, plan.Assignments[w], c.partialBuf[w])
				partials = append(partials, c.partialBuf[w])
			}
		}
		c.partials = partials
		if round.Mispredicted {
			partials = c.numericRecovery(partials, threshold, d)
		}
		if c.decodeWS == nil {
			c.decodeWS = c.Enc.NewDecodeWorkspace()
		}
		if c.result == nil {
			c.result = mat.New(c.Enc.ColsA, c.Enc.ColsB)
		}
		dec, err := c.Enc.DecodeInto(c.result, partials, c.decodeWS)
		if err != nil {
			return nil, fmt.Errorf("sim: poly iteration %d decode: %w", iter, err)
		}
		if !c.ReuseBuffers {
			dec = dec.Clone()
		}
		round.Result = dec
	}
	return round, nil
}

// numericRecovery mirrors CodedCluster.numericRecovery for the bilinear
// backend.
func (c *PolyCluster) numericRecovery(partials []*coding.Partial, threshold int, d []float64) []*coding.Partial {
	blockRows := c.Enc.BlockColsA
	cov := make([]int, blockRows)
	has := map[int][]bool{}
	for _, p := range partials {
		h := has[p.Worker]
		if h == nil {
			h = make([]bool, blockRows)
			has[p.Worker] = h
		}
		for _, rg := range p.Ranges {
			for r := rg.Lo; r < rg.Hi; r++ {
				if !h[r] {
					h[r] = true
					cov[r]++
				}
			}
		}
	}
	workers := make([]int, 0, len(has))
	for w := range has {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	extraRows := map[int][]coding.Range{}
	for r := 0; r < blockRows; r++ {
		for cov[r] < threshold {
			placed := false
			for _, w := range workers {
				if !has[w][r] {
					has[w][r] = true
					cov[r]++
					extraRows[w] = append(extraRows[w], coding.Range{Lo: r, Hi: r + 1})
					placed = true
					break
				}
			}
			if !placed {
				break
			}
		}
	}
	for w, ranges := range extraRows {
		partials = append(partials, c.Enc.WorkerCompute(w, d, ranges))
	}
	return partials
}
