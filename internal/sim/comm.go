// Package sim is the discrete-event cluster substrate that stands in for
// the paper's physical testbeds (local Xeon cluster, Digital Ocean
// droplets — see DESIGN.md §2). Workers actually execute their coded
// kernels on real data, so decoded results are verifiably correct, while
// elapsed time is *virtual*: it is derived from per-worker speed traces
// and a communication model rather than wall-clock measurement. That
// makes every experiment deterministic, seedable, and fast.
//
// The package provides four engines matching the paper's evaluation:
//
//   - CodedCluster: MDS-coded mat-vec rounds under any sched.Strategy
//     (conventional MDS, basic S2C2, general S2C2), with the §4.3
//     timeout/reassignment recovery.
//   - PolyCluster: polynomial-coded bilinear (Hessian) rounds ± S2C2.
//   - UncodedReplication: the Hadoop/LATE-style 3-replication baseline
//     with speculative re-execution.
//   - OverDecomposition: the Charm++-style baseline combining 4×
//     over-decomposition, partial replication and prediction-driven
//     partition migration.
package sim

// CommModel is the network cost model: every message pays Latency, and
// payloads stream at Bandwidth bytes per virtual second.
type CommModel struct {
	Latency   float64 // seconds per message
	Bandwidth float64 // bytes per second
}

// DefaultComm roughly matches a 10 GbE datacenter network.
func DefaultComm() CommModel {
	return CommModel{Latency: 0.001, Bandwidth: 1.25e9}
}

// TransferTime returns the virtual time to move `bytes` in one message.
func (c CommModel) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return c.Latency
	}
	return c.Latency + bytes/c.Bandwidth
}

// ElemRate converts trace speed units into multiply-accumulates per
// virtual second: a speed-1.0 worker performs ElemRate MACs/second. Using
// element counts (rows × row width) rather than raw row counts keeps
// phases with different matrix shapes — e.g. X and Xᵀ in gradient
// descent — correctly weighted.
const ElemRate = 200000.0

// SpeedScale is the legacy rows-per-second interpretation used where a
// kernel's row width is already folded into the work estimate.
const SpeedScale = 1000.0

// computeElems returns the virtual seconds a worker at `speed` needs for
// `elems` multiply-accumulates. Zero/negative speed is guarded with a
// huge constant; callers must not schedule work on such workers.
func computeElems(elems float64, speed float64) float64 {
	if elems <= 0 {
		return 0
	}
	if speed <= 0 {
		return 1e18
	}
	return elems / (speed * ElemRate)
}

// computeTime is row-based compute cost at a nominal 200-wide row.
func computeTime(rows int, speed float64) float64 {
	return computeElems(float64(rows)*200, speed)
}
