package rpc

import (
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/wire"
)

// WorkerConfig configures a worker daemon.
type WorkerConfig struct {
	// MasterAddr is the master's host:port.
	MasterAddr string
	// Slowdown artificially multiplies compute time (1 = full speed);
	// values > 1 make this worker a reproducible partial straggler.
	Slowdown float64
	// PerRowDelay adds a fixed virtual cost per computed row so straggler
	// effects are visible even on tiny test matrices. Zero is fine for
	// real workloads.
	PerRowDelay time.Duration
	// Exec pins this worker's kernel execution to a pool and fan-out. The
	// zero value uses the shared default pool with full fan-out (serial
	// on a single-core host); co-tenant workers in one process should cap
	// MaxFan or bring their own pool.
	Exec kernel.Exec
	// UseGob selects the legacy gob envelope transport instead of the
	// binary wire protocol — the compatibility fallback behind the
	// handshake version byte.
	UseGob bool
	// MaxResultRows bounds one Result message's row count so result
	// frames stay well under the receiver's frame limit no matter how
	// large the partition is; larger results are split into several
	// messages, which the master's gather accepts natively. Zero selects
	// 4 Mi rows (≈ 32 MiB of values).
	MaxResultRows int
	// WriteTimeout is the base per-send write deadline (scaled up with
	// payload size), mirroring MasterConfig.StallTimeout on the master
	// side; raise it together with the master's on slow links. Zero
	// selects 30 seconds.
	WriteTimeout time.Duration
}

// partBuild is a streamed partition being assembled from chunks.
type partBuild struct {
	m         *mat.Dense
	seq       int // transfer sequence, echoed in every chunk ack
	remaining int // rows not yet received
}

// gfPartBuild is a streamed GF(2³¹−1) partition being assembled from
// chunks — the exact-path mirror of partBuild.
type gfPartBuild struct {
	m         *gf.Matrix
	seq       int
	remaining int
}

// maxPartitionElems bounds the matrix a partition header may ask the
// worker to allocate (16 GiB of float64), rejecting corrupt or hostile
// headers before any allocation. Typed int64 so the constant (and the
// bounds arithmetic below) stays valid on 32-bit platforms, and clamped
// at init so Rows·Cols — and its byte count — always fits the platform
// int (on 386, 2³¹ elements exactly would pass an int64-only check and
// then overflow mat.New's int multiplication).
var maxPartitionElems = func() int64 {
	const want = int64(1) << 31
	if host := int64(math.MaxInt / 8); host < want {
		return host
	}
	return want
}()

// validPartitionDims is the one shape guard both partition ingest paths
// (monolithic and streamed) apply: non-negative rows, positive cols, and
// a Rows·Cols product bounded by division so a hostile header cannot
// overflow the check into passing.
func validPartitionDims(rows, cols int) bool {
	return rows >= 0 && cols > 0 && int64(rows) <= maxPartitionElems/int64(cols)
}

// Worker is the daemon side of the runtime: it stores coded partitions
// and executes assigned row ranges on demand.
type Worker struct {
	cfg WorkerConfig
	c   transport

	mu           sync.Mutex
	partitions   map[int]*mat.Dense   // phase → coded partition
	pending      map[int]*partBuild   // phase → partition mid-stream
	gfPartitions map[int]*gf.Matrix   // phase → coded GF partition (exact path)
	gfPending    map[int]*gfPartBuild // phase → GF partition mid-stream

	workPool   sync.Pool // *Work slots for concurrent handlers
	resPool    sync.Pool // *Result send slots
	gfWorkPool sync.Pool // *GFWork slots
	gfResPool  sync.Pool // *GFResult send slots
}

// NewWorker dials the master, performs the transport handshake (the
// binary wire protocol by default, gob when cfg.UseGob is set), and sends
// the hello.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Slowdown <= 0 {
		cfg.Slowdown = 1
	}
	if cfg.MaxResultRows <= 0 {
		cfg.MaxResultRows = 4 << 20
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = defaultStallTimeout
	}
	nc, err := net.Dial("tcp", cfg.MasterAddr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial master: %w", err)
	}
	version := wire.VersionWire
	if cfg.UseGob {
		version = wire.VersionGob
	}
	if err := wire.WriteHandshake(nc, version); err != nil {
		nc.Close()
		return nil, err
	}
	t, err := newTransport(nc, version, cfg.WriteTimeout)
	if err != nil {
		nc.Close()
		return nil, err
	}
	w := &Worker{
		cfg:          cfg,
		c:            t,
		partitions:   map[int]*mat.Dense{},
		pending:      map[int]*partBuild{},
		gfPartitions: map[int]*gf.Matrix{},
		gfPending:    map[int]*gfPartBuild{},
	}
	if err := t.sendHello(&Hello{Slowdown: cfg.Slowdown}); err != nil {
		t.close()
		return nil, err
	}
	return w, nil
}

// Close tears down the worker's connection immediately: a blocked Run
// returns with the connection error. It is how a driver retires a worker
// in place of a process kill — chaos tests and the failover example use
// it to simulate a worker dying mid-job. Close is idempotent.
func (w *Worker) Close() error { return w.c.close() }

// Run processes messages until shutdown or connection loss. Work requests
// are served concurrently so a reassignment can overtake a slow round.
func (w *Worker) Run() error {
	defer w.c.close()
	msg := &Msg{}
	for {
		if err := w.c.recv(msg); err != nil {
			return err
		}
		switch msg.Kind {
		case KindPartition:
			// Monolithic partition (gob fallback): the decoded data is a
			// fresh allocation, adopted as the matrix storage directly.
			p := &msg.Partition
			if !validPartitionDims(p.Rows, p.Cols) || len(p.Data) != p.Rows*p.Cols {
				return fmt.Errorf("rpc: partition %dx%d with %d values", p.Rows, p.Cols, len(p.Data))
			}
			w.mu.Lock()
			w.partitions[p.Phase] = mat.NewFromData(p.Rows, p.Cols, p.Data)
			w.mu.Unlock()
		case KindPartitionStart:
			if err := w.startPartition(&msg.PartStart); err != nil {
				return err
			}
		case KindPartitionChunk:
			if err := w.storeChunk(msg); err != nil {
				return err
			}
		case KindGFPartition:
			// Monolithic GF partition (gob fallback): adopt the decoded
			// element slice as the matrix storage directly.
			p := &msg.GFPartition
			if !validPartitionDims(p.Rows, p.Cols) || len(p.Data) != p.Rows*p.Cols {
				return fmt.Errorf("rpc: GF partition %dx%d with %d values", p.Rows, p.Cols, len(p.Data))
			}
			if !gf.Valid(p.Data) {
				return fmt.Errorf("rpc: GF partition %d carries non-canonical field elements", p.Phase)
			}
			w.mu.Lock()
			w.gfPartitions[p.Phase] = gf.NewMatrixFromData(p.Rows, p.Cols, p.Data)
			w.mu.Unlock()
		case KindGFPartitionStart:
			if err := w.startGFPartition(&msg.PartStart); err != nil {
				return err
			}
		case KindGFPartitionChunk:
			if err := w.storeGFChunk(msg); err != nil {
				return err
			}
		case KindWork:
			// Hand the assignment to a concurrent handler by swapping the
			// message's Work with a pooled slot: ownership of the decoded
			// slices moves without copying, and the next recv reuses the
			// slot's old capacity.
			job := w.getWork()
			*job, msg.Work = msg.Work, *job
			go w.handleWork(job)
		case KindGFWork:
			job := w.getGFWork()
			*job, msg.GFWork = msg.GFWork, *job
			go w.handleGFWork(job)
		case KindPing:
			// Heartbeat: answer immediately from the receive loop. Pong
			// sends share the connection's write mutex with result sends,
			// so a busy compute round delays the answer by at most one
			// in-flight frame — size the master's miss budget accordingly.
			if err := w.c.sendPong(); err != nil {
				return err
			}
		case KindPong:
			// Workers never solicit pongs; tolerate one anyway (a future
			// symmetric heartbeat would send them).
		case KindShutdown:
			return nil
		default:
			return fmt.Errorf("rpc: worker got unexpected kind %d", msg.Kind)
		}
	}
}

// startPartition allocates the destination matrix of a streamed
// partition. Chunks decode straight into it; the partition becomes
// visible to work requests only once every row has arrived.
func (w *Worker) startPartition(ps *PartitionStart) error {
	if !validPartitionDims(ps.Rows, ps.Cols) {
		return fmt.Errorf("rpc: partition start %dx%d rejected", ps.Rows, ps.Cols)
	}
	b := &partBuild{m: mat.New(ps.Rows, ps.Cols), seq: ps.Seq, remaining: ps.Rows}
	w.mu.Lock()
	// The master serializes transfers per connection (float64 and GF alike
	// share the per-conn transfer lock), so every build still pending when
	// a new stream starts belongs to an abandoned transfer. Dropping them
	// all bounds the memory pinned by aborted transfers to a single build.
	clear(w.pending)
	clear(w.gfPending)
	if b.remaining == 0 {
		w.partitions[ps.Phase] = b.m
	} else {
		w.pending[ps.Phase] = b
	}
	w.mu.Unlock()
	return nil
}

// startGFPartition allocates the destination matrix of a streamed GF
// partition; chunks decode straight into it and the partition becomes
// visible to GF work requests only once every row has arrived.
func (w *Worker) startGFPartition(ps *PartitionStart) error {
	if !validPartitionDims(ps.Rows, ps.Cols) {
		return fmt.Errorf("rpc: GF partition start %dx%d rejected", ps.Rows, ps.Cols)
	}
	b := &gfPartBuild{m: gf.NewMatrix(ps.Rows, ps.Cols), seq: ps.Seq, remaining: ps.Rows}
	w.mu.Lock()
	clear(w.pending)
	clear(w.gfPending)
	if b.remaining == 0 {
		w.gfPartitions[ps.Phase] = b.m
	} else {
		w.gfPending[ps.Phase] = b
	}
	w.mu.Unlock()
	return nil
}

// storeGFChunk decodes one field-element row band straight into the GF
// partition matrix and returns a credit to the master's streaming window.
// It applies the same strict in-order contract as the float64 path, plus
// a canonicality check: the worker's Mersenne-folded mat-vec bounds its
// intermediate arithmetic on every element being < P, so non-canonical
// lanes are a protocol error, not a silent wraparound later.
func (w *Worker) storeGFChunk(msg *Msg) error {
	pc := &msg.PartChunk
	w.mu.Lock()
	b := w.gfPending[pc.Phase]
	w.mu.Unlock()
	if b == nil {
		return fmt.Errorf("rpc: GF chunk for phase %d with no partition in progress", pc.Phase)
	}
	if pc.Seq != b.seq {
		return fmt.Errorf("rpc: GF chunk seq %d for phase %d, transfer in progress is seq %d", pc.Seq, pc.Phase, b.seq)
	}
	rows, cols := b.m.Dims()
	if pc.Lo < 0 || pc.Hi > rows || pc.Lo >= pc.Hi {
		return fmt.Errorf("rpc: GF chunk rows [%d,%d) outside partition [0,%d)", pc.Lo, pc.Hi, rows)
	}
	if got := rows - b.remaining; pc.Lo != got {
		return fmt.Errorf("rpc: GF chunk rows [%d,%d) out of order, expected start %d", pc.Lo, pc.Hi, got)
	}
	dst := b.m.Data()[pc.Lo*cols : pc.Hi*cols]
	if err := msg.GFChunkInto(dst); err != nil {
		return err
	}
	if !gf.Valid(dst) {
		return fmt.Errorf("rpc: GF chunk rows [%d,%d) carry non-canonical field elements", pc.Lo, pc.Hi)
	}
	b.remaining -= pc.Hi - pc.Lo
	if err := w.c.sendPartitionAck(pc.Phase, b.seq); err != nil {
		return err
	}
	if b.remaining <= 0 {
		w.mu.Lock()
		w.gfPartitions[pc.Phase] = b.m
		delete(w.gfPending, pc.Phase)
		w.mu.Unlock()
	}
	return nil
}

// storeChunk decodes one row band straight into the partition matrix
// (the wire transport's zero-intermediate-copy path) and returns a credit
// to the master's streaming window.
func (w *Worker) storeChunk(msg *Msg) error {
	pc := &msg.PartChunk
	w.mu.Lock()
	b := w.pending[pc.Phase]
	w.mu.Unlock()
	if b == nil {
		return fmt.Errorf("rpc: chunk for phase %d with no partition in progress", pc.Phase)
	}
	if pc.Seq != b.seq {
		return fmt.Errorf("rpc: chunk seq %d for phase %d, transfer in progress is seq %d", pc.Seq, pc.Phase, b.seq)
	}
	rows, cols := b.m.Dims()
	if pc.Lo < 0 || pc.Hi > rows || pc.Lo >= pc.Hi {
		return fmt.Errorf("rpc: chunk rows [%d,%d) outside partition [0,%d)", pc.Lo, pc.Hi, rows)
	}
	// The master streams rows strictly in order, so the chunk must start
	// exactly where the previous one ended. Without this, a duplicate or
	// overlapping chunk could drive `remaining` to zero and publish a
	// partition whose uncovered rows are silently zero — corrupt results
	// instead of a protocol error.
	if got := rows - b.remaining; pc.Lo != got {
		return fmt.Errorf("rpc: chunk rows [%d,%d) out of order, expected start %d", pc.Lo, pc.Hi, got)
	}
	if err := msg.ChunkInto(b.m.Data()[pc.Lo*cols : pc.Hi*cols]); err != nil {
		return err
	}
	b.remaining -= pc.Hi - pc.Lo
	if err := w.c.sendPartitionAck(pc.Phase, b.seq); err != nil {
		return err
	}
	if b.remaining <= 0 {
		w.mu.Lock()
		w.partitions[pc.Phase] = b.m
		delete(w.pending, pc.Phase)
		w.mu.Unlock()
	}
	return nil
}

func (w *Worker) getWork() *Work {
	if v := w.workPool.Get(); v != nil {
		return v.(*Work)
	}
	return &Work{}
}

func (w *Worker) getResult() *Result {
	if v := w.resPool.Get(); v != nil {
		return v.(*Result)
	}
	return &Result{}
}

func (w *Worker) getGFWork() *GFWork {
	if v := w.gfWorkPool.Get(); v != nil {
		return v.(*GFWork)
	}
	return &GFWork{}
}

func (w *Worker) getGFResult() *GFResult {
	if v := w.gfResPool.Get(); v != nil {
		return v.(*GFResult)
	}
	return &GFResult{}
}

// matVecChunk sizes row chunks for a width-w mat-vec sweep through the
// active kernel backend's per-chunk flop target (each row costs 2·cols·w
// flops), so vector backends get proportionally larger bands.
func matVecChunk(cols, w int) int {
	return kernel.ChunkRows(2 * cols * w)
}

// handleWork computes the assigned rows of this worker's partition into a
// pooled result slot (handleWork runs concurrently, so per-goroutine
// storage is borrowed, not owned) returned to the pool once the
// synchronous send completes — the worker side of a steady-state round
// allocates nothing either.
func (w *Worker) handleWork(job *Work) {
	defer w.workPool.Put(job)
	w.mu.Lock()
	part := w.partitions[job.Phase]
	w.mu.Unlock()
	if part == nil {
		return // partition not yet delivered; master will time us out
	}
	cols := part.Cols()
	bw := job.W
	if bw < 1 {
		bw = 1
	}
	if len(job.X) != bw*cols {
		return // corrupt assignment; master will time us out and reassign
	}
	start := time.Now()
	res := w.getResult()
	// Reset every scalar field: a pooled slot may carry Partial=true from
	// a split send whose error path skipped the final flush.
	res.Iter, res.Phase, res.Worker, res.Partial = job.Iter, job.Phase, 0, false
	res.Job = job.Job // echo the job tag so the master routes the result
	res.RowWidth = bw
	res.Ranges = coding.AppendNormalizeRanges(res.Ranges[:0], job.Ranges)
	total := coding.TotalRows(res.Ranges)
	res.Values = kernel.Grow(res.Values, total*bw)
	at := 0
	for _, r := range res.Ranges {
		seg := res.Values[at : at+r.Len()*bw]
		lo := r.Lo
		// Band-split the assigned rows on the worker's configured pool;
		// on a one-core host (or MaxFan 1) this degenerates to the plain
		// serial sweep. Batched rounds run the fused multi-x kernel: one
		// sweep of the band serves every lane.
		if bw == 1 {
			w.cfg.Exec.For(r.Len(), matVecChunk(cols, 1), func(clo, chi int) {
				kernel.MatVecRange(seg[clo:chi], part.Data(), cols, job.X, lo+clo, lo+chi)
			})
		} else {
			w.cfg.Exec.For(r.Len(), matVecChunk(cols, bw), func(clo, chi int) {
				kernel.MatVecRangeBatch(seg[clo*bw:chi*bw], part.Data(), cols, job.X, bw, lo+clo, lo+chi)
			})
		}
		at += r.Len() * bw
	}
	elapsed := time.Since(start)
	res.ComputeNanos = int64(elapsed)
	// Straggler emulation: stretch compute time by the slowdown factor
	// plus the per-row floor.
	delay := time.Duration(float64(elapsed)*(w.cfg.Slowdown-1) +
		float64(w.cfg.PerRowDelay)*float64(total)*w.cfg.Slowdown)
	if delay > 0 {
		time.Sleep(delay)
	}
	w.sendResultBounded(res) //nolint:errcheck // conn errors surface in Run
	w.resPool.Put(res)
}

// handleGFWork computes the assigned rows of this worker's GF partition —
// the exact mirror of handleWork: Mersenne-folded mat-vec over the field
// banded on the worker's pool, pooled result slots, bounded result frames.
// Results are bit-exact field values; there is no backend- or banding-
// dependent rounding on this path by construction.
func (w *Worker) handleGFWork(job *GFWork) {
	defer w.gfWorkPool.Put(job)
	w.mu.Lock()
	part := w.gfPartitions[job.Phase]
	w.mu.Unlock()
	if part == nil {
		return // partition not yet delivered; master will time us out
	}
	_, cols := part.Dims()
	bw := job.W
	if bw < 1 {
		bw = 1
	}
	if len(job.X) != bw*cols {
		return // corrupt assignment; master will time us out and reassign
	}
	start := time.Now()
	res := w.getGFResult()
	res.Iter, res.Phase, res.Worker, res.Partial = job.Iter, job.Phase, 0, false
	res.Job = job.Job // echo the job tag so the master routes the result
	res.RowWidth = bw
	res.Ranges = coding.AppendNormalizeRanges(res.Ranges[:0], job.Ranges)
	total := coding.TotalRows(res.Ranges)
	res.Values = kernel.GrowSlice(res.Values, total*bw)
	at := 0
	for _, r := range res.Ranges {
		seg := res.Values[at : at+r.Len()*bw]
		lo := r.Lo
		if bw == 1 {
			w.cfg.Exec.For(r.Len(), matVecChunk(cols, 1), func(clo, chi int) {
				part.MulVecRangeInto(seg[clo:chi], job.X, lo+clo, lo+chi)
			})
		} else {
			w.cfg.Exec.For(r.Len(), matVecChunk(cols, bw), func(clo, chi int) {
				part.MulVecBatchRangeInto(seg[clo*bw:chi*bw], job.X, bw, lo+clo, lo+chi)
			})
		}
		at += r.Len() * bw
	}
	elapsed := time.Since(start)
	res.ComputeNanos = int64(elapsed)
	delay := time.Duration(float64(elapsed)*(w.cfg.Slowdown-1) +
		float64(w.cfg.PerRowDelay)*float64(total)*w.cfg.Slowdown)
	if delay > 0 {
		time.Sleep(delay)
	}
	w.sendGFResultBounded(res) //nolint:errcheck // conn errors surface in Run
	w.gfResPool.Put(res)
}

// splitResultRanges is the one bounded-result segmentation algorithm
// shared by both element types: it walks ranges in range-aligned segments
// of at most maxRows rows, calling emit(seg, at, rows, last) per segment
// — seg is the segment's range list (aliasing scratch), at the row offset
// into the concatenated values, last whether this segment completes the
// result (only that one clears the Partial flag; the master counts the
// worker as responded on it). It stops on the first emit error and
// returns the scratch slice for capacity reuse.
func splitResultRanges(ranges []coding.Range, total, maxRows int, scratch []coding.Range,
	emit func(seg []coding.Range, at, rows int, last bool) error) ([]coding.Range, error) {
	at, rows := 0, 0 // consumed offset into the values, rows in the open segment
	seg := scratch[:0]
	flush := func() error {
		err := emit(seg, at, rows, at+rows >= total)
		at += rows
		rows = 0
		seg = seg[:0]
		return err
	}
	for _, r := range ranges {
		lo := r.Lo
		for lo < r.Hi {
			take := r.Hi - lo
			if take > maxRows-rows {
				take = maxRows - rows
			}
			seg = append(seg, coding.Range{Lo: lo, Hi: lo + take})
			rows += take
			lo += take
			if rows == maxRows {
				if err := flush(); err != nil {
					return seg, err
				}
			}
		}
	}
	if rows > 0 {
		if err := flush(); err != nil {
			return seg, err
		}
	}
	return seg, nil
}

// boundedRows is the per-message row cap for a width-wide result: the
// configured MaxResultRows budget counts values, so batched rounds split
// at maxRows/width rows (floored at 1 — a single row always ships whole,
// matching the one-row-chunk escape of partition streaming).
func boundedRows(maxRows, width int) int {
	rows := maxRows / width
	if rows < 1 {
		rows = 1
	}
	return rows
}

// sendResultBounded sends res, splitting it into range-aligned segments
// of at most cfg.MaxResultRows values when necessary so result frames
// never outgrow the receiver's frame limit. Segments of a batched result
// carry whole rows — all RowWidth lanes of a row travel in one message.
func (w *Worker) sendResultBounded(res *Result) error {
	wd := res.RowWidth
	if wd < 1 {
		wd = 1
	}
	maxRows := boundedRows(w.cfg.MaxResultRows, wd)
	total := coding.TotalRows(res.Ranges)
	if total <= maxRows {
		return w.c.sendResult(res)
	}
	sub := w.getResult()
	sub.Iter, sub.Phase, sub.Worker, sub.ComputeNanos = res.Iter, res.Phase, res.Worker, res.ComputeNanos
	sub.Job = res.Job
	sub.RowWidth = wd
	scratch, err := splitResultRanges(res.Ranges, total, maxRows, sub.Ranges[:0],
		func(seg []coding.Range, at, rows int, last bool) error {
			sub.Ranges = seg
			sub.Partial = !last
			sub.Values = res.Values[at*wd : (at+rows)*wd]
			return w.c.sendResult(sub)
		})
	sub.Ranges = scratch
	// sub.Values aliased segments of res.Values; detach before pooling so
	// two pooled results can never share a backing array.
	sub.Values = nil
	w.resPool.Put(sub)
	return err
}

// sendGFResultBounded is sendResultBounded for the exact path — the same
// segmentation via splitResultRanges, emitting GF result frames.
func (w *Worker) sendGFResultBounded(res *GFResult) error {
	wd := res.RowWidth
	if wd < 1 {
		wd = 1
	}
	maxRows := boundedRows(w.cfg.MaxResultRows, wd)
	total := coding.TotalRows(res.Ranges)
	if total <= maxRows {
		return w.c.sendGFResult(res)
	}
	sub := w.getGFResult()
	sub.Iter, sub.Phase, sub.Worker, sub.ComputeNanos = res.Iter, res.Phase, res.Worker, res.ComputeNanos
	sub.Job = res.Job
	sub.RowWidth = wd
	scratch, err := splitResultRanges(res.Ranges, total, maxRows, sub.Ranges[:0],
		func(seg []coding.Range, at, rows int, last bool) error {
			sub.Ranges = seg
			sub.Partial = !last
			sub.Values = res.Values[at*wd : (at+rows)*wd]
			return w.c.sendGFResult(sub)
		})
	sub.Ranges = scratch
	// sub.Values aliased segments of res.Values; detach before pooling.
	sub.Values = nil
	w.gfResPool.Put(sub)
	return err
}
