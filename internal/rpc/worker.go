package rpc

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
)

// WorkerConfig configures a worker daemon.
type WorkerConfig struct {
	// MasterAddr is the master's host:port.
	MasterAddr string
	// Slowdown artificially multiplies compute time (1 = full speed);
	// values > 1 make this worker a reproducible partial straggler.
	Slowdown float64
	// PerRowDelay adds a fixed virtual cost per computed row so straggler
	// effects are visible even on tiny test matrices. Zero is fine for
	// real workloads.
	PerRowDelay time.Duration
	// Exec pins this worker's kernel execution to a pool and fan-out. The
	// zero value uses the shared default pool with full fan-out (serial
	// on a single-core host); co-tenant workers in one process should cap
	// MaxFan or bring their own pool.
	Exec kernel.Exec
}

// Worker is the daemon side of the runtime: it stores coded partitions
// and executes assigned row ranges on demand.
type Worker struct {
	cfg WorkerConfig
	c   *conn

	mu         sync.Mutex
	partitions map[int]*mat.Dense // phase → coded partition
}

// NewWorker dials the master and performs the hello handshake.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Slowdown <= 0 {
		cfg.Slowdown = 1
	}
	nc, err := net.Dial("tcp", cfg.MasterAddr)
	if err != nil {
		return nil, fmt.Errorf("rpc: dial master: %w", err)
	}
	w := &Worker{cfg: cfg, c: newConn(nc), partitions: map[int]*mat.Dense{}}
	if err := w.c.send(&Envelope{Kind: KindHello, Hello: &Hello{Slowdown: cfg.Slowdown}}); err != nil {
		nc.Close()
		return nil, err
	}
	return w, nil
}

// Run processes messages until shutdown or connection loss. Work requests
// are served concurrently so a reassignment can overtake a slow round.
func (w *Worker) Run() error {
	defer w.c.close()
	for {
		env, err := w.c.recv()
		if err != nil {
			return err
		}
		switch env.Kind {
		case KindPartition:
			p := env.Partition
			w.mu.Lock()
			w.partitions[p.Phase] = mat.NewFromData(p.Rows, p.Cols, p.Data)
			w.mu.Unlock()
		case KindWork:
			go w.handleWork(env.Work)
		case KindShutdown:
			return nil
		default:
			return fmt.Errorf("rpc: worker got unexpected kind %d", env.Kind)
		}
	}
}

// matVecChunk sizes row chunks so each is ~16k flops of mat-vec work.
func matVecChunk(cols int) int {
	if cols < 1 {
		cols = 1
	}
	chunk := 16 * 1024 / (2 * cols)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// handleWork computes the assigned rows of this worker's partition. The
// result values live in a pooled buffer (handleWork runs concurrently, so
// per-goroutine scratch is borrowed, not owned) returned to the pool once
// the synchronous gob send completes.
func (w *Worker) handleWork(job *Work) {
	w.mu.Lock()
	part := w.partitions[job.Phase]
	w.mu.Unlock()
	if part == nil {
		return // partition not yet delivered; master will time us out
	}
	start := time.Now()
	ranges := coding.NormalizeRanges(job.Ranges)
	total := coding.TotalRows(ranges)
	buf := kernel.GetBuf(total)
	cols := part.Cols()
	at := 0
	for _, r := range ranges {
		seg := buf.F[at : at+r.Len()]
		lo := r.Lo
		// Band-split the assigned rows on the worker's configured pool;
		// on a one-core host (or MaxFan 1) this degenerates to the plain
		// serial sweep.
		w.cfg.Exec.For(r.Len(), matVecChunk(cols), func(clo, chi int) {
			kernel.MatVecRange(seg[clo:chi], part.Data(), cols, job.X, lo+clo, lo+chi)
		})
		at += r.Len()
	}
	elapsed := time.Since(start)
	// Straggler emulation: stretch compute time by the slowdown factor
	// plus the per-row floor.
	delay := time.Duration(float64(elapsed)*(w.cfg.Slowdown-1) +
		float64(w.cfg.PerRowDelay)*float64(total)*w.cfg.Slowdown)
	if delay > 0 {
		time.Sleep(delay)
	}
	w.c.send(&Envelope{Kind: KindResult, Result: &Result{ //nolint:errcheck // conn errors surface in Run
		Iter:         job.Iter,
		Phase:        job.Phase,
		Ranges:       ranges,
		Values:       buf.F,
		ComputeNanos: int64(elapsed),
	}})
	buf.Put()
}
