package rpc

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/sched"
)

// Master coordinates a real TCP cluster: it accepts worker connections,
// pushes coded partitions, runs assignment rounds, and decodes results.
type Master struct {
	ln      net.Listener
	workers []*conn
	results chan *Result
	errs    chan error

	mu        sync.Mutex
	blockRows map[int]int // phase → partition rows
}

// NewMaster listens on addr (e.g. "127.0.0.1:0").
func NewMaster(addr string) (*Master, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen: %w", err)
	}
	return &Master{
		ln:        ln,
		results:   make(chan *Result, 1024),
		errs:      make(chan error, 16),
		blockRows: map[int]int{},
	}, nil
}

// Addr returns the listen address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// WaitForWorkers accepts exactly n worker connections (assigning worker
// IDs in connection order) within the deadline.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for len(m.workers) < n {
		if tl, ok := m.ln.(*net.TCPListener); ok {
			if err := tl.SetDeadline(deadline); err != nil {
				return err
			}
		}
		c, err := m.ln.Accept()
		if err != nil {
			return fmt.Errorf("rpc: accept (have %d/%d workers): %w", len(m.workers), n, err)
		}
		wc := newConn(c)
		env, err := wc.recv()
		if err != nil || env.Kind != KindHello {
			wc.close()
			return fmt.Errorf("rpc: bad hello from %s: %v", c.RemoteAddr(), err)
		}
		id := len(m.workers)
		m.workers = append(m.workers, wc)
		go m.readLoop(id, wc)
	}
	return nil
}

// readLoop pumps one worker's results into the shared channel.
func (m *Master) readLoop(id int, wc *conn) {
	for {
		env, err := wc.recv()
		if err != nil {
			select {
			case m.errs <- fmt.Errorf("rpc: worker %d: %w", id, err):
			default:
			}
			return
		}
		if env.Kind == KindResult && env.Result != nil {
			env.Result.Worker = id
			m.results <- env.Result
		}
	}
}

// NumWorkers returns the connected worker count.
func (m *Master) NumWorkers() int { return len(m.workers) }

// DistributePartitions ships phase p's coded partitions (partition w to
// worker w). This is the one-time setup cost of coded computing.
func (m *Master) DistributePartitions(phase int, enc *coding.EncodedMatrix) error {
	if len(enc.Parts) != len(m.workers) {
		return fmt.Errorf("rpc: %d partitions for %d workers", len(enc.Parts), len(m.workers))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(m.workers))
	for w, wc := range m.workers {
		wg.Add(1)
		go func(w int, wc *conn) {
			defer wg.Done()
			part := enc.Parts[w]
			rows, cols := part.Dims()
			errCh <- wc.send(&Envelope{Kind: KindPartition, Partition: &Partition{
				Phase: phase, Rows: rows, Cols: cols, Data: part.Data(),
			}})
		}(w, wc)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.blockRows[phase] = enc.BlockRows
	m.mu.Unlock()
	return nil
}

// RoundStats reports a round's real-time measurements.
type RoundStats struct {
	// ResponseTime[w] is worker w's wall-clock response time (0 if it had
	// no assignment or timed out before responding).
	ResponseTime []time.Duration
	// AssignedRows[w] mirrors the plan (plus reassignments).
	AssignedRows []int
	// Reassigned counts rows re-executed after the timeout fired.
	Reassigned int
	// TimedOut lists workers whose results were abandoned.
	TimedOut []int
}

// RunRound sends the plan's assignments for (iter, phase), gathers
// partials until per-row coverage k is met, applying the §4.3 timeout:
// once the first k workers respond, the rest get timeoutFrac of the mean
// response time before their pending rows are reassigned to finished
// workers. It returns the collected partials (decode with the encoder)
// and the round's stats.
func (m *Master) RunRound(iter, phase int, x []float64, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	m.mu.Lock()
	blockRows := m.blockRows[phase]
	m.mu.Unlock()
	if blockRows == 0 {
		return nil, nil, fmt.Errorf("rpc: phase %d has no distributed partitions", phase)
	}
	n := len(m.workers)
	stats := &RoundStats{
		ResponseTime: make([]time.Duration, n),
		AssignedRows: make([]int, n),
	}
	start := time.Now()
	active := 0
	for w, wc := range m.workers {
		ranges := plan.Assignments[w]
		if coding.TotalRows(ranges) == 0 {
			continue
		}
		stats.AssignedRows[w] = coding.TotalRows(ranges)
		if err := wc.send(&Envelope{Kind: KindWork, Work: &Work{
			Iter: iter, Phase: phase, X: x, Ranges: ranges,
		}}); err != nil {
			return nil, nil, fmt.Errorf("rpc: send work to %d: %w", w, err)
		}
		active++
	}

	var partials []*coding.Partial
	responded := map[int]bool{}
	var responseTimes []time.Duration
	cov := make([]int, blockRows)
	needed := blockRows
	addPartial := func(r *Result) {
		p := &coding.Partial{Worker: r.Worker, Ranges: r.Ranges, RowWidth: 1, Values: r.Values}
		partials = append(partials, p)
		if !responded[r.Worker] {
			responded[r.Worker] = true
			stats.ResponseTime[r.Worker] = time.Since(start)
			responseTimes = append(responseTimes, stats.ResponseTime[r.Worker])
		}
		for _, rg := range r.Ranges {
			for row := rg.Lo; row < rg.Hi; row++ {
				cov[row]++
				if cov[row] == k {
					needed--
				}
			}
		}
	}

	if active < k {
		return nil, nil, fmt.Errorf("rpc: plan activates %d workers, decoding needs %d", active, k)
	}
	// Phase 1: wait for the first k responders (coded computing cannot
	// decode with fewer).
	hardDeadline := time.After(30 * time.Second)
	for len(responded) < k {
		select {
		case r := <-m.results:
			if r.Iter != iter || r.Phase != phase {
				continue // stale result from a reassigned/abandoned round
			}
			addPartial(r)
		case err := <-m.errs:
			return nil, nil, err
		case <-hardDeadline:
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) stalled waiting for %d responders", iter, phase, k)
		}
	}
	if needed == 0 {
		return partials, stats, nil
	}

	// Phase 2: grace window = timeoutFrac × mean response of the first k.
	sort.Slice(responseTimes, func(i, j int) bool { return responseTimes[i] < responseTimes[j] })
	mean := time.Duration(0)
	for i := 0; i < k && i < len(responseTimes); i++ {
		mean += responseTimes[i]
	}
	mean /= time.Duration(k)
	grace := time.Duration(float64(mean) * timeoutFrac)
	graceTimer := time.After(grace)
	for needed > 0 {
		select {
		case r := <-m.results:
			if r.Iter != iter || r.Phase != phase {
				continue
			}
			addPartial(r)
		case err := <-m.errs:
			return nil, nil, err
		case <-graceTimer:
			// Timeout fired: reassign pending coverage to responders.
			extra, timedOut, err := m.reassign(iter, phase, x, plan, cov, k, responded, blockRows)
			if err != nil {
				return nil, nil, err
			}
			stats.TimedOut = timedOut
			for w, rows := range extra {
				stats.AssignedRows[w] += rows
				stats.Reassigned += rows
			}
			graceTimer = nil
			// Collect until coverage completes (reassigned results arrive
			// tagged with the same iter/phase).
			for needed > 0 {
				select {
				case r := <-m.results:
					if r.Iter != iter || r.Phase != phase {
						continue
					}
					addPartial(r)
				case err := <-m.errs:
					return nil, nil, err
				case <-hardDeadline:
					return nil, nil, fmt.Errorf("rpc: round (%d,%d) stalled after reassignment", iter, phase)
				}
			}
		case <-hardDeadline:
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) stalled", iter, phase)
		}
	}
	return partials, stats, nil
}

// reassign sends uncovered rows to responders that do not already cover
// them, returning extra rows per worker and the abandoned workers.
func (m *Master) reassign(iter, phase int, x []float64, plan *sched.Plan, cov []int, k int, responded map[int]bool, blockRows int) (map[int]int, []int, error) {
	var timedOut []int
	for w := range plan.Assignments {
		if coding.TotalRows(plan.Assignments[w]) > 0 && !responded[w] {
			timedOut = append(timedOut, w)
		}
	}
	sort.Ints(timedOut)
	// has[w][r]: responder w already covers row r.
	has := map[int][]bool{}
	var helpers []int
	for w := range responded {
		h := make([]bool, blockRows)
		for _, rg := range plan.Assignments[w] {
			for r := rg.Lo; r < rg.Hi; r++ {
				h[r] = true
			}
		}
		has[w] = h
		helpers = append(helpers, w)
	}
	sort.Ints(helpers)
	extraRanges := map[int][]coding.Range{}
	extraRows := map[int]int{}
	for r := 0; r < blockRows; r++ {
		for c := cov[r]; c < k; c++ {
			placed := false
			// Round-robin over helpers, preferring the least loaded.
			best := -1
			for _, w := range helpers {
				if has[w][r] {
					continue
				}
				if best < 0 || extraRows[w] < extraRows[best] {
					best = w
				}
			}
			if best >= 0 {
				has[best][r] = true
				extraRanges[best] = append(extraRanges[best], coding.Range{Lo: r, Hi: r + 1})
				extraRows[best]++
				placed = true
			}
			if !placed {
				return nil, nil, fmt.Errorf("rpc: cannot re-cover row %d", r)
			}
		}
	}
	for w, ranges := range extraRanges {
		if err := m.workers[w].send(&Envelope{Kind: KindWork, Work: &Work{
			Iter: iter, Phase: phase, X: x, Ranges: coding.NormalizeRanges(ranges),
		}}); err != nil {
			return nil, nil, err
		}
	}
	return extraRows, timedOut, nil
}

// Shutdown tells all workers to exit and closes the listener.
func (m *Master) Shutdown() {
	for _, wc := range m.workers {
		wc.send(&Envelope{Kind: KindShutdown}) //nolint:errcheck // best effort
		wc.close()
	}
	m.ln.Close()
}
