package rpc

import (
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/wire"
)

// MasterConfig configures a master.
type MasterConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:0").
	Addr string
	// Exec pins the master's compute (and, via Exec(), the codecs a
	// driver wires to this master) to a pool and fan-out, so co-tenant
	// masters in one process stop contending for the shared
	// GOMAXPROCS-sized default pool. The zero value uses the default.
	Exec kernel.Exec
	// ReuseRound lets RunRound return partials and stats backed by a
	// per-master workspace that the NEXT RunRound overwrites. Drivers
	// that decode each round before starting the next (every iterative
	// workload) set it to make the steady-state gather path
	// allocation-free; leave it false if round results must outlive the
	// following round.
	ReuseRound bool
	// StallTimeout bounds how long a round waits for responders (both
	// before and after reassignment) and how long a streamed partition
	// transfer waits for a chunk credit. Zero selects 30 seconds.
	StallTimeout time.Duration
	// ChunkRows is the row granularity of streamed partition transfers
	// on the wire transport. Zero sizes chunks to ~256 KiB of row data.
	ChunkRows int
	// ChunkWindow is the credit window of a streamed partition transfer:
	// the number of unacknowledged chunks the master keeps in flight per
	// worker. Zero selects 4; values are clamped to [1, 128].
	ChunkWindow int
}

// defaultStallTimeout applies when MasterConfig.StallTimeout is zero.
const defaultStallTimeout = 30 * time.Second

// ackBuffer sizes each worker's credit channel; it only needs to cover
// the largest permitted ChunkWindow plus slack for stale credits from an
// aborted transfer.
const ackBuffer = 256

func (m *Master) stallTimeout() time.Duration {
	if m.cfg.StallTimeout > 0 {
		return m.cfg.StallTimeout
	}
	return defaultStallTimeout
}

func (m *Master) chunkRowsFor(cols int) int {
	if cols < 1 {
		cols = 1
	}
	// A chunk's row data must stay well under the receiver's frame limit
	// no matter what ChunkRows was configured to; 32 MiB of float64s per
	// chunk leaves ample headroom below maxRPCFrame. (A single row wider
	// than that still ships as a one-row chunk — the rpc frame cap of
	// 1 GiB covers rows up to 128 Mi columns.)
	maxRows := (32 << 20) / 8 / cols
	if maxRows < 1 {
		maxRows = 1
	}
	rows := m.cfg.ChunkRows
	if rows <= 0 {
		rows = 32 * 1024 / cols // ~256 KiB of float64 row data per chunk
	}
	if rows > maxRows {
		rows = maxRows
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

func (m *Master) chunkWindow() int {
	w := m.cfg.ChunkWindow
	if w <= 0 {
		w = 4
	}
	if w > 128 {
		w = 128
	}
	return w
}

// workerConn is the master's per-worker connection state: the transport
// plus the channels its readLoop uses to route flow-control credits and
// signal connection loss.
type workerConn struct {
	t transport
	// acks receives one (phase, seq) credit per stored partition chunk;
	// the streaming sender blocks on it when its window is exhausted.
	acks chan PartitionAck
	// dead closes when the readLoop exits, so a partition transfer in
	// flight fails promptly instead of waiting out the stall timeout.
	dead chan struct{}
	// xfer serializes partition transfers on this connection: concurrent
	// DistributePartitions calls for different phases would otherwise
	// consume (and drop) each other's credits off the shared acks channel.
	xfer sync.Mutex
}

// Master coordinates a real TCP cluster: it accepts worker connections,
// streams coded partitions, runs assignment rounds, and decodes results.
type Master struct {
	cfg     MasterConfig
	ln      net.Listener
	results chan *Result
	errs    chan error
	quit    chan struct{}

	mu        sync.Mutex
	workers   []*workerConn
	pending   []*workerConn // admitted past a WaitForWorkers target; registered by a later call
	closing   bool
	blockRows map[int]int // phase → partition rows

	// pendingReady holds one token when pending is non-empty, so a
	// WaitForWorkers call already inside its wait loop notices workers
	// parked mid-call (by a previous call's orphaned admission).
	pendingReady chan struct{}

	wg      sync.WaitGroup // readLoops
	round   roundWorkspace
	planBuf sched.PlanBuffer
	resPool sync.Pool    // *Result receive slots recycled across rounds
	xferSeq atomic.Int64 // partition-transfer sequence (stale-ack fencing)
}

// NewMaster listens on addr (e.g. "127.0.0.1:0") with a default config.
func NewMaster(addr string) (*Master, error) {
	return NewMasterWithConfig(MasterConfig{Addr: addr})
}

// NewMasterWithConfig listens according to cfg.
func NewMasterWithConfig(cfg MasterConfig) (*Master, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen: %w", err)
	}
	return &Master{
		cfg:          cfg,
		ln:           ln,
		results:      make(chan *Result, 1024),
		errs:         make(chan error, 16),
		quit:         make(chan struct{}),
		blockRows:    map[int]int{},
		pendingReady: make(chan struct{}, 1),
	}, nil
}

// Addr returns the listen address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Exec returns the execution resources this master was configured with;
// drivers pass it to the codecs they pair with the master (SetExec) so
// one process can host several masters without pool contention.
func (m *Master) Exec() kernel.Exec { return m.cfg.Exec }

// getResult returns a pooled receive slot (readLoops decode results into
// these; RunRound recycles them once the round's partials are released).
func (m *Master) getResult() *Result {
	if v := m.resPool.Get(); v != nil {
		return v.(*Result)
	}
	return &Result{}
}

func (m *Master) putResult(r *Result) { m.resPool.Put(r) }

// handshakeTimeout bounds how long one accepted connection may take to
// complete its handshake and hello before WaitForWorkers moves on.
const handshakeTimeout = 5 * time.Second

// maxConcurrentAdmits caps handshakes in flight at once; connections past
// the cap wait in the listener backlog (see WaitForWorkers).
const maxConcurrentAdmits = 32

// WaitForWorkers accepts worker connections (assigning worker IDs in
// admission-completion order) until n are connected or the deadline
// expires. Each connection performs the wire handshake; its version byte
// selects the binary frame transport or the gob fallback, so one cluster
// may mix both. Connections that fail the handshake or hello — wrong
// magic, an unsupported version, a stalled client — are rejected and
// accepting continues; they cannot wedge the master.
//
// Handshakes are admitted concurrently: accepting never waits on an
// in-flight handshake, so one slow or stalled dialer delays later workers
// by nothing instead of up to handshakeTimeout each. Registration is
// serialized through this call, so the cluster never grows past n
// mid-call: a handshake that completes after the target is reached (or
// after the call returned) is parked and registered by the next
// WaitForWorkers call — the concurrent analogue of a connection waiting
// in the listener backlog under the old serial admission.
//
// The listener's accept deadline is cleared again on every return path, so
// a later call — e.g. retrying after a timeout, or growing the cluster —
// starts fresh instead of failing on a stale deadline.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	// Workers admitted past a previous call's target register first.
	for m.NumWorkers() < n {
		wc := m.popPending()
		if wc == nil {
			break
		}
		m.register(wc)
	}
	if m.NumWorkers() >= n {
		return nil
	}
	tl, _ := m.ln.(*net.TCPListener)
	if tl != nil {
		if err := tl.SetDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	// outcomes carries one admission verdict per accepted connection (the
	// admitted worker, or the reject reason); acceptErr carries the
	// accept-loop exit error (deadline or closed listener).
	type outcome struct {
		wc  *workerConn
		err error
	}
	outcomes := make(chan outcome)
	acceptErr := make(chan error, 1)
	stop := make(chan struct{})
	acceptDone := make(chan struct{})
	// admitSlots bounds concurrent handshakes, restoring the backpressure
	// the serial loop had: past the cap, accepting waits and surplus
	// connections queue in the listener backlog instead of each pinning a
	// goroutine + fd for up to handshakeTimeout (reconnect storms, port
	// scanners).
	admitSlots := make(chan struct{}, maxConcurrentAdmits)
	go func() {
		defer close(acceptDone)
		for {
			c, err := m.ln.Accept()
			if err != nil {
				select {
				case acceptErr <- err:
				case <-stop:
				}
				return
			}
			select {
			case admitSlots <- struct{}{}:
			case <-stop:
				// The call is returning; finish this last accepted
				// connection's handshake in the background and park it
				// for the next call — the serial code would have left it
				// in the listener backlog, not dropped it.
				go func(c net.Conn) {
					if wc, err := m.admit(c); err == nil {
						m.enqueuePending(wc)
					}
				}(c)
				return
			}
			go func(c net.Conn) {
				defer func() { <-admitSlots }()
				addr := c.RemoteAddr()
				wc, err := m.admit(c)
				if err != nil {
					err = fmt.Errorf("%s: %w", addr, err)
				}
				select {
				case outcomes <- outcome{wc: wc, err: err}:
				case <-stop:
					// The call already returned; hold the admitted worker
					// for the next WaitForWorkers instead of registering
					// into rounds planned for the current cluster size.
					if wc != nil {
						m.enqueuePending(wc)
					}
				}
			}(c)
		}
	}()
	defer func() {
		close(stop)
		if tl != nil {
			// Force the pending Accept to return so exactly one accept
			// loop ever runs, then clear the deadline for the next call.
			tl.SetDeadline(time.Now()) //nolint:errcheck
			<-acceptDone
			tl.SetDeadline(time.Time{}) //nolint:errcheck // best-effort clear
		}
	}()
	// The wait loop carries its own timer: the listener deadline only
	// fires while the accept goroutine is blocked in Accept, and a storm
	// of stalled handshakes holding every admit slot would otherwise
	// stretch the caller's timeout toward handshakeTimeout.
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var lastReject error
	for m.NumWorkers() < n {
		select {
		case res := <-outcomes:
			if res.err != nil {
				lastReject = res.err
			} else if m.NumWorkers() < n {
				m.register(res.wc)
			} else {
				m.enqueuePending(res.wc)
			}
		case <-timer.C:
			if lastReject != nil {
				return fmt.Errorf("rpc: wait for workers: %w (have %d/%d workers, last rejected conn: %v)",
					os.ErrDeadlineExceeded, m.NumWorkers(), n, lastReject)
			}
			return fmt.Errorf("rpc: wait for workers: %w (have %d/%d workers)",
				os.ErrDeadlineExceeded, m.NumWorkers(), n)
		case <-m.pendingReady:
			// A previous call's orphaned admission parked a worker while
			// this call was already waiting; register it now.
			for m.NumWorkers() < n {
				wc := m.popPending()
				if wc == nil {
					break
				}
				m.register(wc)
			}
		case err := <-acceptErr:
			// A worker whose handshake completed as the deadline fired may
			// be blocked handing over its outcome (or just parked);
			// register what's ready before deciding this call failed.
		drain:
			for m.NumWorkers() < n {
				if wc := m.popPending(); wc != nil {
					m.register(wc)
					continue
				}
				select {
				case res := <-outcomes:
					if res.err != nil {
						lastReject = res.err
					} else {
						m.register(res.wc)
					}
				default:
					break drain
				}
			}
			if m.NumWorkers() >= n {
				return nil
			}
			if lastReject != nil {
				return fmt.Errorf("rpc: accept (have %d/%d workers, last rejected conn: %v): %w",
					m.NumWorkers(), n, lastReject, err)
			}
			return fmt.Errorf("rpc: accept (have %d/%d workers): %w", m.NumWorkers(), n, err)
		}
	}
	return nil
}

// enqueuePending parks an admitted connection for a later WaitForWorkers
// call (closing it instead if the master is shutting down) and pulses
// pendingReady so a call already waiting picks it up.
//
// No read loop watches a parked connection, so one that dies while parked
// is only discovered when a later call registers it and its read loop
// starts. That is the same contract registration has always had — a
// worker can die the instant after WaitForWorkers returns — and the same
// recovery applies: the death surfaces on the master's error channel and
// the round path reassigns around it.
func (m *Master) enqueuePending(wc *workerConn) {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		wc.t.close()
		return
	}
	m.pending = append(m.pending, wc)
	m.mu.Unlock()
	select {
	case m.pendingReady <- struct{}{}:
	default: // token already posted
	}
}

// popPending dequeues the oldest parked connection, or nil.
func (m *Master) popPending() *workerConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pending) == 0 {
		return nil
	}
	wc := m.pending[0]
	m.pending = m.pending[1:]
	return wc
}

// register assigns the next worker ID to an admitted connection and
// starts its read loop. A handshake that completes after Shutdown began
// is turned away (its connection closed) instead of registered: the
// worker would miss Shutdown's close sweep and hang the final Wait. The
// wg.Add happens under the same lock Shutdown sets closing under, so
// every registered read loop is ordered before Shutdown's Wait.
func (m *Master) register(wc *workerConn) {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		wc.t.close()
		return
	}
	id := len(m.workers)
	m.workers = append(m.workers, wc)
	m.wg.Add(1)
	m.mu.Unlock()
	go m.readLoop(id, wc)
}

// admit runs the handshake + hello exchange on a freshly accepted
// connection under a deadline, returning the registered worker state or
// closing the connection.
func (m *Master) admit(c net.Conn) (*workerConn, error) {
	c.SetDeadline(time.Now().Add(handshakeTimeout)) //nolint:errcheck
	version, err := wire.ReadHandshake(c)
	if err != nil {
		c.Close()
		return nil, err
	}
	t, err := newTransport(c, version, m.stallTimeout())
	if err != nil {
		c.Close()
		return nil, err // version mismatch: reject this conn, keep serving
	}
	var msg Msg
	if err := t.recv(&msg); err != nil {
		t.close()
		return nil, fmt.Errorf("rpc: hello: %w", err)
	}
	if msg.Kind != KindHello {
		t.close()
		return nil, fmt.Errorf("rpc: first message kind %d, want hello", msg.Kind)
	}
	c.SetDeadline(time.Time{}) //nolint:errcheck
	return &workerConn{t: t, acks: make(chan PartitionAck, ackBuffer), dead: make(chan struct{})}, nil
}

// readLoop pumps one worker's messages into the master until the
// connection drops or the master shuts down: results go to the shared
// round channel (decoded into pooled slots — the steady-state receive path
// allocates nothing), partition acks return credits to the streaming
// sender.
func (m *Master) readLoop(id int, wc *workerConn) {
	defer m.wg.Done()
	defer close(wc.dead)
	msg := &Msg{}
	for {
		if err := wc.t.recv(msg); err != nil {
			if m.isClosing() {
				return // orderly shutdown: the close raced the read, by design
			}
			select {
			case m.errs <- fmt.Errorf("rpc: worker %d: %w", id, err):
			default:
			}
			return
		}
		switch msg.Kind {
		case KindResult:
			r := m.getResult()
			// Swap structs: the pooled slot takes the decoded message
			// (slices included), the message slot inherits the pooled
			// capacity for the next decode. No copying, no allocation.
			*r, msg.Result = msg.Result, *r
			r.Worker = id
			select {
			case m.results <- r:
			case <-m.quit:
				return
			}
		case KindPartitionAck:
			// Never block the readLoop on the credit channel: a full
			// buffer means stale acks from aborted transfers accumulated
			// with nothing draining them, and parking here would stop
			// Result forwarding for this worker permanently. Dropping is
			// safe — credits are (phase, seq)-fenced, and an active
			// transfer that loses one is bounded by its stall timeout.
			select {
			case wc.acks <- msg.PartAck:
			default:
			}
		}
	}
}

func (m *Master) isClosing() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closing
}

// NumWorkers returns the connected worker count.
func (m *Master) NumWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// conns returns the current worker connections. The slice is append-only
// (WaitForWorkers only ever appends under the lock), so callers may
// iterate the length captured here but must not assume later growth is
// invisible.
func (m *Master) conns() []*workerConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers
}

// DistributePartitions ships phase p's coded partitions (partition w to
// worker w), all workers in parallel. On the wire transport each partition
// is streamed in ChunkRows-row chunks under a ChunkWindow credit window —
// the worker acknowledges every chunk it has stored, so peak transport
// memory is O(chunk), not O(partition), on both ends. Gob-fallback workers
// receive their partition as one monolithic message.
func (m *Master) DistributePartitions(phase int, enc *coding.EncodedMatrix) error {
	workers := m.conns()
	if len(enc.Parts) != len(workers) {
		return fmt.Errorf("rpc: %d partitions for %d workers", len(enc.Parts), len(workers))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(workers))
	for w, wc := range workers {
		wg.Add(1)
		go func(w int, wc *workerConn) {
			defer wg.Done()
			if err := m.shipPartition(wc, phase, enc.Parts[w]); err != nil {
				errCh <- fmt.Errorf("rpc: partition to worker %d: %w", w, err)
			}
		}(w, wc)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.blockRows[phase] = enc.BlockRows
	m.mu.Unlock()
	return nil
}

// shipPartition delivers one partition over the connection's transport:
// chunked with credit-based flow control on the wire transport, monolithic
// on the gob fallback.
func (m *Master) shipPartition(wc *workerConn, phase int, part *mat.Dense) error {
	rows, cols := part.Dims()
	if !wc.t.streamsPartitions() {
		return wc.t.sendPartition(&Partition{Phase: phase, Rows: rows, Cols: cols, Data: part.Data()})
	}
	// One transfer at a time per connection: the credit channel is shared,
	// so interleaved transfers would steal each other's acks.
	wc.xfer.Lock()
	defer wc.xfer.Unlock()
	// With the transfer lock held, any credit still buffered belongs to an
	// aborted earlier transfer and is provably dead — drain now so stale
	// credits can never crowd this transfer's fresh ones out of the
	// buffer (readLoop drops credits rather than block when it fills).
drain:
	for {
		select {
		case <-wc.acks:
		default:
			break drain
		}
	}
	// The transfer sequence fences this stream: chunks carry it, acks echo
	// it, and credits from any earlier (possibly aborted) transfer are
	// dropped below instead of inflating this transfer's window or failing
	// it spuriously.
	seq := int(m.xferSeq.Add(1))
	chunkRows := m.chunkRowsFor(cols)
	if err := wc.t.sendPartitionStart(&PartitionStart{
		Phase: phase, Seq: seq, Rows: rows, Cols: cols, ChunkRows: chunkRows,
	}); err != nil {
		return err
	}
	stall := m.stallTimeout()
	timer := time.NewTimer(stall)
	defer timer.Stop()
	awaitCredit := func() error {
		timer.Stop()
		timer.Reset(stall)
		for {
			select {
			case ack := <-wc.acks:
				if ack.Phase != phase || ack.Seq != seq {
					continue // stale credit from an aborted earlier transfer
				}
				return nil
			case <-wc.dead:
				return fmt.Errorf("rpc: connection lost mid-transfer")
			case <-m.quit:
				return fmt.Errorf("rpc: master shut down mid-transfer")
			case <-timer.C:
				return fmt.Errorf("rpc: no chunk credit within %v", stall)
			}
		}
	}
	window := m.chunkWindow()
	outstanding := 0
	data := part.Data()
	for lo := 0; lo < rows; lo += chunkRows {
		hi := lo + chunkRows
		if hi > rows {
			hi = rows
		}
		for outstanding >= window {
			if err := awaitCredit(); err != nil {
				return err
			}
			outstanding--
		}
		if err := wc.t.sendPartitionChunk(phase, seq, lo, hi, data[lo*cols:hi*cols]); err != nil {
			return err
		}
		outstanding++
	}
	// Wait until the worker has stored every chunk: when shipPartition
	// returns, the partition is usable, not merely in flight.
	for outstanding > 0 {
		if err := awaitCredit(); err != nil {
			return err
		}
		outstanding--
	}
	return nil
}

// RoundStats reports a round's real-time measurements.
type RoundStats struct {
	// ResponseTime[w] is worker w's wall-clock response time (0 if it had
	// no assignment or timed out before responding).
	ResponseTime []time.Duration
	// AssignedRows[w] mirrors the plan (plus reassignments).
	AssignedRows []int
	// Reassigned counts rows re-executed after the timeout fired.
	Reassigned int
	// TimedOut lists workers whose results were abandoned.
	TimedOut []int
}

// roundWorkspace is the master's reusable per-round gather state:
// coverage counters, a per-(worker,row) delivery bitmap that makes
// duplicate deliveries idempotent, the partial structs handed to the
// decoder, response bookkeeping, reassignment scratch, the pooled result
// slots the round retains, and the round's reusable timers and send
// struct. One warm workspace makes the whole steady-state round —
// sending work, receiving results, decoding — allocation-free.
type roundWorkspace struct {
	stats RoundStats

	n, k, blockRows int
	needed          int // rows still below coverage k
	nResponded      int

	cov        []int  // per-row coverage by distinct workers
	coveredBy  []bool // n×blockRows: worker w delivered (or was assigned) row r
	partialSeq []coding.Partial
	nPartials  int
	partials   []*coding.Partial
	responded  []bool
	respTimes  []time.Duration

	// Reassignment scratch, grown lazily on the first timeout.
	extraMark   []bool // n×blockRows: row r reassigned to worker w this round
	extraRows   []int
	extraRanges [][]coding.Range

	// retained lists the pooled result slots whose slices this round's
	// partials alias; they recycle at the start of the next round.
	retained []*Result
	// workMsg is the reusable master→worker send struct (sends are
	// synchronous, so one slot serves the whole round).
	workMsg Work
	// hardTimer and graceTimer are reused across rounds (Go 1.23 timer
	// semantics: Stop+Reset without draining is race-free).
	hardTimer  *time.Timer
	graceTimer *time.Timer
}

// armTimer (re)arms one of the workspace's reusable timers.
func armTimer(t **time.Timer, d time.Duration) *time.Timer {
	if *t == nil {
		*t = time.NewTimer(d)
		return *t
	}
	(*t).Stop()
	(*t).Reset(d)
	return *t
}

// begin resets the workspace for a round of n workers over blockRows-row
// partitions with decode threshold k.
func (ws *roundWorkspace) begin(n, blockRows, k int) {
	ws.n, ws.k, ws.blockRows = n, k, blockRows
	ws.needed = blockRows
	ws.nResponded = 0
	ws.nPartials = 0

	if cap(ws.stats.ResponseTime) < n {
		ws.stats.ResponseTime = make([]time.Duration, n)
	}
	ws.stats.ResponseTime = ws.stats.ResponseTime[:n]
	for i := range ws.stats.ResponseTime {
		ws.stats.ResponseTime[i] = 0
	}
	ws.stats.AssignedRows = kernel.GrowInts(ws.stats.AssignedRows, n)
	for i := range ws.stats.AssignedRows {
		ws.stats.AssignedRows[i] = 0
	}
	ws.stats.Reassigned = 0
	ws.stats.TimedOut = ws.stats.TimedOut[:0]

	ws.cov = kernel.GrowInts(ws.cov, blockRows)
	for i := range ws.cov {
		ws.cov[i] = 0
	}
	if cap(ws.coveredBy) < n*blockRows {
		ws.coveredBy = make([]bool, n*blockRows)
	}
	ws.coveredBy = ws.coveredBy[:n*blockRows]
	for i := range ws.coveredBy {
		ws.coveredBy[i] = false
	}
	// A worker normally sends one result per Work message, and a round
	// sends at most one original plus one reassignment message per
	// worker, so 2n partial structs cover the common case. Workers whose
	// results exceed WorkerConfig.MaxResultRows split them into several
	// messages — that surplus (like a misbehaving worker's) falls back to
	// allocation, trading the 0-alloc property for bounded frames on
	// multi-gigabyte partitions.
	if cap(ws.partialSeq) < 2*n {
		ws.partialSeq = make([]coding.Partial, 2*n)
	}
	ws.partialSeq = ws.partialSeq[:2*n]
	ws.partials = ws.partials[:0]
	if cap(ws.responded) < n {
		ws.responded = make([]bool, n)
	}
	ws.responded = ws.responded[:n]
	for i := range ws.responded {
		ws.responded[i] = false
	}
	ws.respTimes = ws.respTimes[:0]
	if cap(ws.retained) < 2*n {
		ws.retained = make([]*Result, 0, 2*n)
	}
}

// addResult folds one worker result into the round: it wraps the values
// as a decoder partial and advances per-row coverage. Coverage counts
// each (worker, row) pair once, so duplicate deliveries — a slow worker's
// late original overlapping its reassigned rows, or a buggy worker
// re-sending ranges — can never inflate coverage past what the decoder
// will actually find.
func (ws *roundWorkspace) addResult(r *Result, elapsed time.Duration) error {
	if r.Worker < 0 || r.Worker >= ws.n {
		return fmt.Errorf("rpc: result from unknown worker %d", r.Worker)
	}
	for _, rg := range r.Ranges {
		if rg.Lo < 0 || rg.Hi > ws.blockRows || rg.Lo > rg.Hi {
			return fmt.Errorf("rpc: worker %d result range [%d,%d) outside [0,%d)", r.Worker, rg.Lo, rg.Hi, ws.blockRows)
		}
	}
	var p *coding.Partial
	if ws.nPartials < len(ws.partialSeq) {
		p = &ws.partialSeq[ws.nPartials]
	} else {
		p = &coding.Partial{}
	}
	ws.nPartials++
	p.Worker = r.Worker
	p.RowWidth = 1
	p.Ranges = r.Ranges
	p.Values = r.Values
	ws.partials = append(ws.partials, p)
	// A Partial segment contributes coverage but does not count as the
	// worker having responded: response time (the §4.3 timeout's and the
	// predictor's input) is recorded only when the final segment of a
	// split result lands, so large results are not systematically
	// under-measured.
	if !r.Partial && !ws.responded[r.Worker] {
		ws.responded[r.Worker] = true
		ws.nResponded++
		ws.stats.ResponseTime[r.Worker] = elapsed
		ws.respTimes = append(ws.respTimes, elapsed)
	}
	base := r.Worker * ws.blockRows
	for _, rg := range r.Ranges {
		for row := rg.Lo; row < rg.Hi; row++ {
			if ws.coveredBy[base+row] {
				continue // duplicate (worker, row): coverage already counted
			}
			ws.coveredBy[base+row] = true
			ws.cov[row]++
			if ws.cov[row] == ws.k {
				ws.needed--
			}
		}
	}
	return nil
}

// PlanRound builds the next round's plan from the master's double-
// buffered plan storage: the previous round's plan stays intact (it may
// still be referenced by a draining round) while the new one is written
// into the other buffer. Steady-state planning allocates nothing.
func (m *Master) PlanRound(s sched.Strategy, speeds []float64) (*sched.Plan, error) {
	return m.planBuf.Next(s, speeds)
}

// RunRound is RunRoundContext with a background context.
func (m *Master) RunRound(iter, phase int, x []float64, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	return m.RunRoundContext(context.Background(), iter, phase, x, plan, k, timeoutFrac)
}

// RunRoundContext sends the plan's assignments for (iter, phase), gathers
// partials until per-row coverage k is met, applying the §4.3 timeout:
// once the first k workers respond, the rest get timeoutFrac of the mean
// response time before their pending rows are reassigned to finished
// workers. It returns the collected partials (decode with the encoder)
// and the round's stats. With ReuseRound set, both alias the master's
// round workspace and are valid until the next RunRound.
//
// The context cancels the round between messages: when ctx is done the
// round returns its error, abandoning any stragglers (their late results
// are discarded by the next round's stale filter). The configured
// StallTimeout still bounds the round independently of ctx.
func (m *Master) RunRoundContext(ctx context.Context, iter, phase int, x []float64, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	m.mu.Lock()
	blockRows := m.blockRows[phase]
	m.mu.Unlock()
	if blockRows == 0 {
		return nil, nil, fmt.Errorf("rpc: phase %d has no distributed partitions", phase)
	}
	workers := m.conns()
	n := len(workers)
	ws := &m.round
	m.recycleRound(ws)
	ws.begin(n, blockRows, k)
	start := time.Now()
	active := 0
	for w, wc := range workers {
		ranges := plan.Assignments[w]
		rows := coding.TotalRows(ranges)
		if rows == 0 {
			continue
		}
		ws.stats.AssignedRows[w] = rows
		ws.workMsg = Work{Iter: iter, Phase: phase, X: x, Ranges: ranges}
		if err := wc.t.sendWork(&ws.workMsg); err != nil {
			return nil, nil, fmt.Errorf("rpc: send work to %d: %w", w, err)
		}
		active++
	}
	if active < k {
		return nil, nil, fmt.Errorf("rpc: plan activates %d workers, decoding needs %d", active, k)
	}

	// Phase 1: wait for the first k responders (coded computing cannot
	// decode with fewer).
	hard := armTimer(&ws.hardTimer, m.stallTimeout())
	defer hard.Stop()
	for ws.nResponded < k {
		select {
		case r := <-m.results:
			if r.Iter != iter || r.Phase != phase {
				m.putResult(r) // stale result from an abandoned round
				continue
			}
			if err := ws.addResult(r, time.Since(start)); err != nil {
				return nil, nil, err
			}
			ws.retained = append(ws.retained, r)
		case err := <-m.errs:
			return nil, nil, err
		case <-m.quit:
			return nil, nil, fmt.Errorf("rpc: master shut down during round (%d,%d)", iter, phase)
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) canceled: %w", iter, phase, ctx.Err())
		case <-hard.C:
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) stalled waiting for %d responders", iter, phase, k)
		}
	}
	if ws.needed == 0 {
		return m.finishRound(ws)
	}

	// Phase 2: grace window = timeoutFrac × mean response of the first k;
	// when it expires, pending coverage is reassigned to responders and
	// the round keeps collecting until coverage completes.
	sortDurations(ws.respTimes)
	mean := time.Duration(0)
	for i := 0; i < k && i < len(ws.respTimes); i++ {
		mean += ws.respTimes[i]
	}
	mean /= time.Duration(k)
	grace := armTimer(&ws.graceTimer, time.Duration(float64(mean)*timeoutFrac))
	defer grace.Stop()
	for ws.needed > 0 {
		select {
		case r := <-m.results:
			if r.Iter != iter || r.Phase != phase {
				m.putResult(r)
				continue
			}
			if err := ws.addResult(r, time.Since(start)); err != nil {
				return nil, nil, err
			}
			ws.retained = append(ws.retained, r)
		case err := <-m.errs:
			return nil, nil, err
		case <-m.quit:
			return nil, nil, fmt.Errorf("rpc: master shut down during round (%d,%d)", iter, phase)
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) canceled: %w", iter, phase, ctx.Err())
		case <-grace.C:
			// Timeout fired: reassign pending coverage to responders
			// (reassigned results arrive tagged with the same iter/phase,
			// so the same collection loop finishes the round).
			if err := m.reassign(ws, iter, phase, x, plan); err != nil {
				return nil, nil, err
			}
		case <-hard.C:
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) stalled", iter, phase)
		}
	}
	return m.finishRound(ws)
}

// recycleRound returns the previous round's pooled result slots to the
// receive pool. Callers of the previous RunRound have released its
// partials by contract (ReuseRound) or received copies (default), so the
// slots are free for the readLoops to decode into again.
func (m *Master) recycleRound(ws *roundWorkspace) {
	for i, r := range ws.retained {
		m.putResult(r)
		ws.retained[i] = nil
	}
	ws.retained = ws.retained[:0]
}

// finishRound hands the gathered round to the caller: workspace-backed
// when ReuseRound is set, deep copies otherwise (the pooled receive slots
// the workspace-backed form aliases are overwritten by the next round, so
// the default mode must not alias them).
func (m *Master) finishRound(ws *roundWorkspace) ([]*coding.Partial, *RoundStats, error) {
	if m.cfg.ReuseRound {
		return ws.partials, &ws.stats, nil
	}
	partials := make([]*coding.Partial, len(ws.partials))
	for i, p := range ws.partials {
		partials[i] = &coding.Partial{
			Worker:   p.Worker,
			RowWidth: p.RowWidth,
			Ranges:   append([]coding.Range(nil), p.Ranges...),
			Values:   append([]float64(nil), p.Values...),
		}
	}
	stats := &RoundStats{
		ResponseTime: append([]time.Duration(nil), ws.stats.ResponseTime...),
		AssignedRows: append([]int(nil), ws.stats.AssignedRows...),
		Reassigned:   ws.stats.Reassigned,
		TimedOut:     append([]int(nil), ws.stats.TimedOut...),
	}
	return partials, stats, nil
}

// reassign sends uncovered rows to responders that do not already cover
// them (delivered rows and rows just reassigned both disqualify), filling
// stats.TimedOut and the per-worker extra accounting.
func (m *Master) reassign(ws *roundWorkspace, iter, phase int, x []float64, plan *sched.Plan) error {
	for w := range plan.Assignments {
		if ws.stats.AssignedRows[w] > 0 && !ws.responded[w] {
			ws.stats.TimedOut = append(ws.stats.TimedOut, w)
		}
	}
	// Lazily sized: only rounds that actually time out pay for this.
	if cap(ws.extraMark) < ws.n*ws.blockRows {
		ws.extraMark = make([]bool, ws.n*ws.blockRows)
	}
	ws.extraMark = ws.extraMark[:ws.n*ws.blockRows]
	for i := range ws.extraMark {
		ws.extraMark[i] = false
	}
	ws.extraRows = kernel.GrowInts(ws.extraRows, ws.n)
	for i := range ws.extraRows {
		ws.extraRows[i] = 0
	}
	if cap(ws.extraRanges) < ws.n {
		ws.extraRanges = make([][]coding.Range, ws.n)
	}
	ws.extraRanges = ws.extraRanges[:ws.n]
	for i := range ws.extraRanges {
		ws.extraRanges[i] = ws.extraRanges[i][:0]
	}
	for r := 0; r < ws.blockRows; r++ {
		for c := ws.cov[r]; c < ws.k; c++ {
			// Least-loaded responder that can still add coverage for r.
			best := -1
			for w := 0; w < ws.n; w++ {
				if !ws.responded[w] || ws.coveredBy[w*ws.blockRows+r] || ws.extraMark[w*ws.blockRows+r] {
					continue
				}
				if best < 0 || ws.extraRows[w] < ws.extraRows[best] {
					best = w
				}
			}
			if best < 0 {
				return fmt.Errorf("rpc: cannot re-cover row %d", r)
			}
			ws.extraMark[best*ws.blockRows+r] = true
			ws.extraRows[best]++
			// Rows are visited in ascending order, so per-worker ranges
			// stay normalized by construction.
			rs := ws.extraRanges[best]
			if len(rs) > 0 && rs[len(rs)-1].Hi == r {
				rs[len(rs)-1].Hi = r + 1
			} else {
				rs = append(rs, coding.Range{Lo: r, Hi: r + 1})
			}
			ws.extraRanges[best] = rs
		}
	}
	workers := m.conns()
	for w, ranges := range ws.extraRanges {
		if len(ranges) == 0 {
			continue
		}
		ws.workMsg = Work{Iter: iter, Phase: phase, X: x, Ranges: ranges}
		if err := workers[w].t.sendWork(&ws.workMsg); err != nil {
			return err
		}
		ws.stats.AssignedRows[w] += ws.extraRows[w]
		ws.stats.Reassigned += ws.extraRows[w]
	}
	return nil
}

// sortDurations is an ascending insertion sort (short slices, no closure
// allocation).
func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// Shutdown tells all workers to exit, closes every connection and the
// listener, and waits for the reader goroutines to drain. It is
// idempotent and safe to call while reads are in flight: readers observe
// the closing flag and exit silently instead of reporting the torn
// connection as a worker failure.
func (m *Master) Shutdown() {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return
	}
	m.closing = true
	workers := append([]*workerConn(nil), m.workers...)
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	close(m.quit) // unblock readers parked on a full results channel
	for _, wc := range workers {
		wc.t.sendShutdown() //nolint:errcheck // best effort
		wc.t.close()
	}
	for _, wc := range pending {
		wc.t.close() // admitted but never registered: no read loop to stop
	}
	m.ln.Close()
	m.wg.Wait()
}
