package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/wire"
)

// MasterConfig configures a master.
type MasterConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:0").
	Addr string
	// Exec pins the master's compute (and, via Exec(), the codecs a
	// driver wires to this master) to a pool and fan-out, so co-tenant
	// masters in one process stop contending for the shared
	// GOMAXPROCS-sized default pool. The zero value uses the default.
	Exec kernel.Exec
	// ReuseRound lets RunRound return partials and stats backed by a
	// per-master workspace that the NEXT RunRound overwrites. Drivers
	// that decode each round before starting the next (every iterative
	// workload) set it to make the steady-state gather path
	// allocation-free; leave it false if round results must outlive the
	// following round.
	ReuseRound bool
	// StallTimeout bounds how long a round waits for responders (both
	// before and after reassignment) and how long a streamed partition
	// transfer waits for a chunk credit. Zero selects 30 seconds.
	StallTimeout time.Duration
	// ChunkRows is the row granularity of streamed partition transfers
	// on the wire transport. Zero sizes chunks to ~256 KiB of row data.
	ChunkRows int
	// ChunkWindow is the credit window of a streamed partition transfer:
	// the number of unacknowledged chunks the master keeps in flight per
	// worker. Zero selects 4; values are clamped to [1, 128].
	ChunkWindow int
	// Retry configures the distribute-path retry engine: on a
	// *PartitionError, only the failed workers' partitions are re-streamed
	// — to a warm spare from the parked pool when one is available — under
	// bounded exponential backoff. The zero value disables retries.
	Retry RetryConfig
	// Heartbeat is the cadence of the liveness watch: every interval the
	// master pings all connections — registered workers and parked spares
	// alike — and declares a connection dead when no pong arrives within
	// HeartbeatMiss intervals. Zero disables the watch. Choose an interval
	// comfortably above the link's frame delivery time: a pong queues
	// behind whatever frame is mid-flight on the worker's sender.
	Heartbeat time.Duration
	// HeartbeatMiss is the number of consecutive silent heartbeat
	// intervals tolerated before eviction. Zero selects 3.
	HeartbeatMiss int
	// EvictAfter evicts a worker once it has failed this many consecutive
	// rounds (timed out or dead each time, never responding in between).
	// An evicted slot stays dead until RepairWorkers promotes a spare into
	// it. Zero disables round-failure eviction.
	EvictAfter int
	// MaxConcurrentRounds caps how many rounds — across all jobs — may be
	// in flight at once. Rounds past the cap park in the serving wait
	// queue until a slot frees; Policy picks which parked round runs next.
	// Zero means unlimited (no queue), the pre-serving behavior.
	MaxConcurrentRounds int
	// Policy selects the next queued round when a slot frees. Nil selects
	// FCFS — strict admission order, an identity op over the queue.
	Policy PriorityPolicy
}

// defaultStallTimeout applies when MasterConfig.StallTimeout is zero.
const defaultStallTimeout = 30 * time.Second

// ackBuffer sizes each worker's credit channel; it only needs to cover
// the largest permitted ChunkWindow plus slack for stale credits from an
// aborted transfer.
const ackBuffer = 256

//s2c2:noalloc
func (m *Master) stallTimeout() time.Duration {
	if m.cfg.StallTimeout > 0 {
		return m.cfg.StallTimeout
	}
	return defaultStallTimeout
}

func (m *Master) chunkRowsFor(cols, elemBytes int) int {
	if cols < 1 {
		cols = 1
	}
	// A chunk's row data must stay well under the receiver's frame limit
	// no matter what ChunkRows was configured to; 32 MiB per chunk leaves
	// ample headroom below maxRPCFrame. (A single row wider than that
	// still ships as a one-row chunk — the rpc frame cap of 1 GiB covers
	// rows up to 128 Mi float64 columns.) elemBytes is 8 for float64
	// partitions, 4 for GF(2³¹−1) field elements.
	maxRows := (32 << 20) / elemBytes / cols
	if maxRows < 1 {
		maxRows = 1
	}
	rows := m.cfg.ChunkRows
	if rows <= 0 {
		rows = (256 << 10) / elemBytes / cols // ~256 KiB of row data per chunk
	}
	if rows > maxRows {
		rows = maxRows
	}
	if rows < 1 {
		rows = 1
	}
	return rows
}

func (m *Master) chunkWindow() int {
	w := m.cfg.ChunkWindow
	if w <= 0 {
		w = 4
	}
	if w > 128 {
		w = 128
	}
	return w
}

// workerConn is the master's per-worker connection state: the transport
// plus the channels its readLoop uses to route flow-control credits and
// signal connection loss.
type workerConn struct {
	t transport
	// acks receives one (phase, seq) credit per stored partition chunk;
	// the streaming sender blocks on it when its window is exhausted.
	acks chan PartitionAck
	// dead closes when the readLoop exits, so a partition transfer in
	// flight fails promptly instead of waiting out the stall timeout.
	dead chan struct{}
	// xfer serializes partition transfers on this connection: concurrent
	// DistributePartitions calls for different phases would otherwise
	// consume (and drop) each other's credits off the shared acks channel.
	xfer sync.Mutex
	// id is the worker slot this connection serves, or -1 while parked in
	// the spare pool. The readLoop reads it per message, so a spare
	// promoted into a slot starts attributing traffic to it without a
	// loop restart.
	id atomic.Int64
	// lastPong is the UnixNano of the latest pong (seeded at admission);
	// the heartbeat watcher evicts connections whose pong age exceeds the
	// miss budget.
	lastPong atomic.Int64
	// evicted marks a deliberate teardown (replacement, eviction policy):
	// the readLoop exits silently instead of reporting a worker failure
	// that was already attributed elsewhere.
	evicted atomic.Bool
	// loopOnce guards the connection's single read loop, started when the
	// connection is first parked or registered — whichever happens first —
	// and owned by it until the connection dies.
	loopOnce sync.Once
}

// Master coordinates a real TCP cluster: it accepts worker connections,
// streams coded partitions, runs assignment rounds, and decodes results.
//
// A master serves any number of jobs concurrently over the same worker
// connections (OpenJob); the promoted Distribute/Run methods act on the
// built-in default job, so single-tenant callers never see the serving
// layer.
type Master struct {
	cfg  MasterConfig
	ln   net.Listener
	quit chan struct{}

	mu         sync.Mutex
	workers    []*workerConn
	pending    []*workerConn // spare pool: admitted past a target, or parked by the admission loop
	closing    bool
	admissions bool // background admission loop running (StartAdmissions)
	// failStreak[w] counts worker w's consecutive failed rounds (timed out
	// or dead, never responding in between); EvictAfter reads it.
	failStreak []int
	// parts/gfParts retain the distributed partitions per wire phase —
	// across every job — so a replacement worker promoted into a slot can
	// be brought up to the incumbent's state by re-streaming
	// (retryPartitions, RepairWorkers).
	parts   map[int][]*mat.Dense
	gfParts map[int][]*gf.Matrix
	// totals accumulates lifetime recovery counters (RecoveryTotals).
	totals RecoveryStats

	// pendingReady holds one token when pending is non-empty, so a
	// WaitForWorkers call already inside its wait loop notices workers
	// parked mid-call (by a previous call's orphaned admission).
	pendingReady chan struct{}

	// def is the built-in default job (id 0): the one every promoted
	// Master round/distribute method acts on, whose traffic stays on the
	// untagged legacy frames.
	def Job
	// jobsMu guards the job registry; the readLoops take it per result to
	// route by job id, so it is an RWMutex written only on OpenJob/Close.
	jobsMu  sync.RWMutex
	jobs    map[int]*Job
	jobSeq  int          // last job id handed out
	wireSeq atomic.Int64 // wire-phase namespace allocator (non-default jobs)

	// qmu guards the round wait queue (MaxConcurrentRounds).
	qmu          sync.Mutex
	activeRounds int
	waitq        []*roundTicket
	ticketSeq    int
	ticketView   []JobTicket // reused policy snapshot

	wg        sync.WaitGroup // readLoops
	resPool   sync.Pool      // *Result receive slots recycled across rounds
	gfResPool sync.Pool      // *GFResult receive slots
	xferSeq   atomic.Int64   // partition-transfer sequence (stale-ack fencing)
}

// NewMaster listens on addr (e.g. "127.0.0.1:0") with a default config.
func NewMaster(addr string) (*Master, error) {
	return NewMasterWithConfig(MasterConfig{Addr: addr})
}

// NewMasterWithConfig listens according to cfg.
func NewMasterWithConfig(cfg MasterConfig) (*Master, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen: %w", err)
	}
	m := &Master{
		cfg:          cfg,
		ln:           ln,
		quit:         make(chan struct{}),
		parts:        map[int][]*mat.Dense{},
		gfParts:      map[int][]*gf.Matrix{},
		pendingReady: make(chan struct{}, 1),
	}
	initJob(&m.def, m, 0, JobConfig{})
	m.jobs = map[int]*Job{0: &m.def}
	m.wireSeq.Store(jobPhaseBase)
	if cfg.Heartbeat > 0 {
		m.wg.Add(1)
		go m.heartbeatLoop()
	}
	return m, nil
}

// Addr returns the listen address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Exec returns the execution resources this master was configured with;
// drivers pass it to the codecs they pair with the master (SetExec) so
// one process can host several masters without pool contention.
func (m *Master) Exec() kernel.Exec { return m.cfg.Exec }

// getResult returns a pooled receive slot (readLoops decode results into
// these; RunRound recycles them once the round's partials are released).
//
//s2c2:noalloc
func (m *Master) getResult() *Result {
	if v := m.resPool.Get(); v != nil {
		return v.(*Result)
	}
	// Pool miss: mints the slot the pool will recycle from then on.
	//s2c2:waive noalloc
	return &Result{}
}

//s2c2:recycler
func (m *Master) putResult(r *Result) { m.resPool.Put(r) }

// getGFResult / putGFResult are the GF mirror of the pooled receive slots.
//
//s2c2:noalloc
func (m *Master) getGFResult() *GFResult {
	if v := m.gfResPool.Get(); v != nil {
		return v.(*GFResult)
	}
	// Pool miss: mints the slot the pool will recycle from then on.
	//s2c2:waive noalloc
	return &GFResult{}
}

//s2c2:recycler
func (m *Master) putGFResult(r *GFResult) { m.gfResPool.Put(r) }

// handshakeTimeout bounds how long one accepted connection may take to
// complete its handshake and hello before WaitForWorkers moves on.
const handshakeTimeout = 5 * time.Second

// maxConcurrentAdmits caps handshakes in flight at once; connections past
// the cap wait in the listener backlog (see WaitForWorkers).
const maxConcurrentAdmits = 32

// WaitForWorkers accepts worker connections (assigning worker IDs in
// admission-completion order) until n are connected or the deadline
// expires. Each connection performs the wire handshake; its version byte
// selects the binary frame transport or the gob fallback, so one cluster
// may mix both. Connections that fail the handshake or hello — wrong
// magic, an unsupported version, a stalled client — are rejected and
// accepting continues; they cannot wedge the master.
//
// Handshakes are admitted concurrently: accepting never waits on an
// in-flight handshake, so one slow or stalled dialer delays later workers
// by nothing instead of up to handshakeTimeout each. Registration is
// serialized through this call, so the cluster never grows past n
// mid-call: a handshake that completes after the target is reached (or
// after the call returned) is parked and registered by the next
// WaitForWorkers call — the concurrent analogue of a connection waiting
// in the listener backlog under the old serial admission.
//
// The listener's accept deadline is cleared again on every return path, so
// a later call — e.g. retrying after a timeout, or growing the cluster —
// starts fresh instead of failing on a stale deadline.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	// Workers admitted past a previous call's target register first.
	for m.NumWorkers() < n {
		wc := m.popPending()
		if wc == nil {
			break
		}
		m.register(wc)
	}
	if m.NumWorkers() >= n {
		return nil
	}
	if m.admissionsRunning() {
		// The background admission loop owns the listener's accept loop;
		// grow from its spare pool instead of competing for Accept.
		return m.waitFromPool(n, timeout)
	}
	tl, _ := m.ln.(*net.TCPListener)
	if tl != nil {
		if err := tl.SetDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
	}
	// outcomes carries one admission verdict per accepted connection (the
	// admitted worker, or the reject reason); acceptErr carries the
	// accept-loop exit error (deadline or closed listener).
	type outcome struct {
		wc  *workerConn
		err error
	}
	outcomes := make(chan outcome)
	acceptErr := make(chan error, 1)
	stop := make(chan struct{})
	acceptDone := make(chan struct{})
	// admitSlots bounds concurrent handshakes, restoring the backpressure
	// the serial loop had: past the cap, accepting waits and surplus
	// connections queue in the listener backlog instead of each pinning a
	// goroutine + fd for up to handshakeTimeout (reconnect storms, port
	// scanners).
	admitSlots := make(chan struct{}, maxConcurrentAdmits)
	go func() {
		defer close(acceptDone)
		for {
			c, err := m.ln.Accept()
			if err != nil {
				select {
				case acceptErr <- err:
				case <-stop:
				}
				return
			}
			select {
			case admitSlots <- struct{}{}:
			case <-stop:
				// The call is returning; finish this last accepted
				// connection's handshake in the background and park it
				// for the next call — the serial code would have left it
				// in the listener backlog, not dropped it.
				go func(c net.Conn) {
					if wc, err := m.admit(c); err == nil {
						m.enqueuePending(wc)
					}
				}(c)
				return
			}
			go func(c net.Conn) {
				defer func() { <-admitSlots }()
				addr := c.RemoteAddr()
				wc, err := m.admit(c)
				if err != nil {
					err = fmt.Errorf("%s: %w", addr, err)
				}
				select {
				case outcomes <- outcome{wc: wc, err: err}:
				case <-stop:
					// The call already returned; hold the admitted worker
					// for the next WaitForWorkers instead of registering
					// into rounds planned for the current cluster size.
					if wc != nil {
						m.enqueuePending(wc)
					}
				}
			}(c)
		}
	}()
	defer func() {
		close(stop)
		if tl != nil {
			// Force the pending Accept to return so exactly one accept
			// loop ever runs, then clear the deadline for the next call.
			tl.SetDeadline(time.Now()) //nolint:errcheck
			<-acceptDone
			tl.SetDeadline(time.Time{}) //nolint:errcheck // best-effort clear
		}
	}()
	// The wait loop carries its own timer: the listener deadline only
	// fires while the accept goroutine is blocked in Accept, and a storm
	// of stalled handshakes holding every admit slot would otherwise
	// stretch the caller's timeout toward handshakeTimeout.
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var lastReject error
	for m.NumWorkers() < n {
		select {
		case res := <-outcomes:
			if res.err != nil {
				lastReject = res.err
			} else if m.NumWorkers() < n {
				m.register(res.wc)
			} else {
				m.enqueuePending(res.wc)
			}
		case <-timer.C:
			if lastReject != nil {
				return fmt.Errorf("rpc: wait for workers: %w (have %d/%d workers, last rejected conn: %v)",
					os.ErrDeadlineExceeded, m.NumWorkers(), n, lastReject)
			}
			return fmt.Errorf("rpc: wait for workers: %w (have %d/%d workers)",
				os.ErrDeadlineExceeded, m.NumWorkers(), n)
		case <-m.pendingReady:
			// A previous call's orphaned admission parked a worker while
			// this call was already waiting; register it now.
			for m.NumWorkers() < n {
				wc := m.popPending()
				if wc == nil {
					break
				}
				m.register(wc)
			}
		case err := <-acceptErr:
			// A worker whose handshake completed as the deadline fired may
			// be blocked handing over its outcome (or just parked);
			// register what's ready before deciding this call failed.
		drain:
			for m.NumWorkers() < n {
				if wc := m.popPending(); wc != nil {
					m.register(wc)
					continue
				}
				select {
				case res := <-outcomes:
					if res.err != nil {
						lastReject = res.err
					} else {
						m.register(res.wc)
					}
				default:
					break drain
				}
			}
			if m.NumWorkers() >= n {
				return nil
			}
			if lastReject != nil {
				return fmt.Errorf("rpc: accept (have %d/%d workers, last rejected conn: %v): %w",
					m.NumWorkers(), n, lastReject, err)
			}
			return fmt.Errorf("rpc: accept (have %d/%d workers): %w", m.NumWorkers(), n, err)
		}
	}
	return nil
}

// enqueuePending parks an admitted connection in the spare pool for a
// later WaitForWorkers call or a replacement promotion (closing it
// instead if the master is shutting down) and pulses pendingReady so a
// call already waiting picks it up.
//
// A parked connection runs the same read loop a registered one does, so a
// spare that dies while parked is discovered the moment its connection
// errors — the loop discards it from the pool (dropParked) instead of
// letting a later registration inherit a corpse. Promotion into a worker
// slot is an atomic id swap observed by that same loop, not a loop
// restart.
func (m *Master) enqueuePending(wc *workerConn) {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		wc.t.close()
		return
	}
	m.pending = append(m.pending, wc)
	m.startReadLoopLocked(wc)
	m.mu.Unlock()
	select {
	case m.pendingReady <- struct{}{}:
	default: // token already posted
	}
}

// popPending dequeues the oldest parked connection that is still alive, or
// nil. Dead spares are normally discarded by their read loops the moment
// they die; the liveness check here is the second line of defense against
// the race where a pop lands between a spare's death and its discard.
func (m *Master) popPending() *workerConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.pending) > 0 {
		wc := m.pending[0]
		m.pending = m.pending[1:]
		select {
		case <-wc.dead:
			continue // died while parked
		default:
		}
		return wc
	}
	return nil
}

// register assigns the next worker ID to an admitted connection and
// starts its read loop (unless the connection was parked first, in which
// case the loop is already running and merely observes the id swap). A
// handshake that completes after Shutdown began is turned away (its
// connection closed) instead of registered: the worker would miss
// Shutdown's close sweep and hang the final Wait. The wg.Add happens
// under the same lock Shutdown sets closing under, so every read loop is
// ordered before Shutdown's Wait.
func (m *Master) register(wc *workerConn) {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		wc.t.close()
		return
	}
	id := len(m.workers)
	m.workers = append(m.workers, wc)
	m.failStreak = append(m.failStreak, 0)
	wc.id.Store(int64(id))
	m.startReadLoopLocked(wc)
	m.mu.Unlock()
}

// startReadLoopLocked starts the connection's lifetime read loop exactly
// once; callers hold m.mu (the wg.Add must be ordered before Shutdown's
// Wait under the same lock that sets closing).
func (m *Master) startReadLoopLocked(wc *workerConn) {
	wc.loopOnce.Do(func() {
		m.wg.Add(1)
		go m.readLoop(wc)
	})
}

// admit runs the handshake + hello exchange on a freshly accepted
// connection under a deadline, returning the registered worker state or
// closing the connection.
func (m *Master) admit(c net.Conn) (*workerConn, error) {
	c.SetDeadline(time.Now().Add(handshakeTimeout)) //nolint:errcheck
	version, err := wire.ReadHandshake(c)
	if err != nil {
		c.Close()
		return nil, err
	}
	t, err := newTransport(c, version, m.stallTimeout())
	if err != nil {
		c.Close()
		return nil, err // version mismatch: reject this conn, keep serving
	}
	var msg Msg
	if err := t.recv(&msg); err != nil {
		t.close()
		return nil, fmt.Errorf("rpc: hello: %w", err)
	}
	if msg.Kind != KindHello {
		t.close()
		return nil, fmt.Errorf("rpc: first message kind %d, want hello", msg.Kind)
	}
	c.SetDeadline(time.Time{}) //nolint:errcheck
	wc := &workerConn{t: t, acks: make(chan PartitionAck, ackBuffer), dead: make(chan struct{})}
	wc.id.Store(-1) // parked until register assigns a slot
	wc.lastPong.Store(time.Now().UnixNano())
	return wc, nil
}

// readLoop pumps one connection's messages into the master until the
// connection drops or the master shuts down: results go to the shared
// round channel (decoded into pooled slots — the steady-state receive path
// allocates nothing), partition acks return credits to the streaming
// sender, pongs feed the liveness watch. One loop serves the connection
// for its whole life — parked or registered — reading the worker slot per
// message, so promoting a spare into a slot is an atomic id swap, not a
// loop restart. A connection that dies while parked is discarded from the
// spare pool on the spot; one that dies while registered is reported as a
// typed *WorkerError so the round path can fold its rows back into the
// plan.
//
//s2c2:noalloc
func (m *Master) readLoop(wc *workerConn) {
	defer m.wg.Done()
	defer close(wc.dead)
	// One receive struct per connection, reused for every frame.
	//s2c2:waive noalloc
	msg := &Msg{}
	for {
		if err := wc.t.recv(msg); err != nil {
			if m.isClosing() || wc.evicted.Load() {
				return // orderly teardown: the close raced the read, by design
			}
			id := int(wc.id.Load())
			if id < 0 {
				// Died while parked: discard the spare eagerly instead of
				// letting a later registration inherit a corpse.
				//s2c2:waive noalloc
				m.dropParked(wc)
				return
			}
			// Failure path: the connection is already dead here. Every
			// job's round may hold assignments on this worker, so the
			// death is broadcast to all of them.
			//s2c2:waive noalloc
			m.broadcastWorkerError(&WorkerError{Worker: id, Err: err, conn: wc})
			return
		}
		id := int(wc.id.Load())
		switch msg.Kind {
		case KindResult:
			if id < 0 {
				continue // a parked spare has no slot to attribute results to
			}
			j := m.jobFor(msg.Result.Job)
			if j == nil {
				continue // closed or unknown job: drop the frame
			}
			r := m.getResult()
			// Swap structs: the pooled slot takes the decoded message
			// (slices included), the message slot inherits the pooled
			// capacity for the next decode. No copying, no allocation.
			*r, msg.Result = msg.Result, *r
			r.Worker = id
			select {
			case j.results <- r:
			case <-m.quit:
				return
			}
		case KindGFResult:
			if id < 0 {
				continue
			}
			j := m.jobFor(msg.GFResult.Job)
			if j == nil {
				continue // closed or unknown job: drop the frame
			}
			r := m.getGFResult()
			*r, msg.GFResult = msg.GFResult, *r
			r.Worker = id
			select {
			case j.gfResults <- r:
			case <-m.quit:
				return
			}
		case KindPong:
			wc.lastPong.Store(time.Now().UnixNano())
		case KindPartitionAck:
			// Never block the readLoop on the credit channel: a full
			// buffer means stale acks from aborted transfers accumulated
			// with nothing draining them, and parking here would stop
			// Result forwarding for this worker permanently. Dropping is
			// safe — credits are (phase, seq)-fenced, and an active
			// transfer that loses one is bounded by its stall timeout.
			select {
			case wc.acks <- msg.PartAck:
			default:
			}
		}
	}
}

func (m *Master) isClosing() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closing
}

// NumWorkers returns the connected worker count.
func (m *Master) NumWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// conns returns the current worker connections. Snapshots are immutable:
// registration only ever appends under the lock (past a snapshot's
// length), and replaceWorker swaps in a fresh copy of the slice instead
// of mutating elements in place, so a round iterating an old snapshot
// races with nothing — at worst it holds a dead incumbent whose sends
// fail, which the recovery path absorbs.
//
//s2c2:noalloc
func (m *Master) conns() []*workerConn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers
}

// PartitionError attributes one worker's failed partition transfer. The
// Distribute functions wrap every per-worker failure in one (joined with
// errors.Join when several workers fail), so a caller — or a future
// retry/re-stream layer — can extract exactly which transfers broke with
// errors.As instead of parsing message text.
type PartitionError struct {
	Worker int
	Err    error
}

func (e *PartitionError) Error() string {
	return fmt.Sprintf("rpc: partition to worker %d: %v", e.Worker, e.Err)
}

func (e *PartitionError) Unwrap() error { return e.Err }

// ErrDistributeShape reports a partition/worker shape mismatch detected
// before any transfer starts: nothing was shipped, so no *PartitionError
// exists to attribute. Callers can distinguish "bad call" from "broken
// worker" with errors.Is.
var ErrDistributeShape = errors.New("rpc: distribute shape mismatch")

// distributeAll fans one shipment per worker out in parallel and
// aggregates the failures, each attributed to its worker.
//
//s2c2:partition-attrib
func distributeAll(workers []*workerConn, ship func(w int, wc *workerConn) error) error {
	var wg sync.WaitGroup
	errCh := make(chan *PartitionError, len(workers))
	for w, wc := range workers {
		wg.Add(1)
		go func(w int, wc *workerConn) {
			defer wg.Done()
			if err := ship(w, wc); err != nil {
				errCh <- &PartitionError{Worker: w, Err: err}
			}
		}(w, wc)
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for e := range errCh {
		errs = append(errs, e)
	}
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	default:
		return errors.Join(errs...)
	}
}

// DistributePartitions ships phase p's coded partitions (partition w to
// worker w), all workers in parallel. On the wire transport each partition
// is streamed in ChunkRows-row chunks under a ChunkWindow credit window —
// the worker acknowledges every chunk it has stored, so peak transport
// memory is O(chunk), not O(partition), on both ends. Gob-fallback workers
// receive their partition as one monolithic message. Failures name the
// broken workers (*PartitionError, aggregated across workers); with
// MasterConfig.Retry enabled, only the failed workers' partitions are
// re-streamed — to a warm spare promoted into the slot when one is parked
// — under bounded exponential backoff before any error is returned.
//
// The partitions are retained (aliased, not copied) so RepairWorkers and
// the retry engine can re-stream them to replacements; callers must not
// mutate a distributed phase's partitions while the master may re-stream.
//
//s2c2:partition-attrib
func (m *Master) DistributePartitions(phase int, enc *coding.EncodedMatrix) error {
	return m.def.DistributePartitions(phase, enc)
}

// DistributePartitionsContext is DistributePartitions with a caller
// context: cancellation aborts promptly between transfer attempts —
// including mid-backoff inside the retry engine — returning whatever
// per-worker attribution the attempts so far produced.
//
//s2c2:partition-attrib
func (m *Master) DistributePartitionsContext(ctx context.Context, phase int, enc *coding.EncodedMatrix) error {
	return m.def.DistributePartitionsContext(ctx, phase, enc)
}

// DistributePartitions ships phase p's coded partitions for this job —
// see Master.DistributePartitions for the transfer contract. Each job's
// phase numbers are its own namespace: two jobs' phase 0 datasets coexist
// on the workers without collision.
//
//s2c2:partition-attrib
func (j *Job) DistributePartitions(phase int, enc *coding.EncodedMatrix) error {
	return j.DistributePartitionsContext(context.Background(), phase, enc)
}

// DistributePartitionsContext is DistributePartitions under a caller
// context (see Master.DistributePartitionsContext).
//
//s2c2:partition-attrib
func (j *Job) DistributePartitionsContext(ctx context.Context, phase int, enc *coding.EncodedMatrix) error {
	m := j.m
	workers := m.conns()
	if len(enc.Parts) != len(workers) {
		return fmt.Errorf("%w: %d partitions for %d workers", ErrDistributeShape, len(enc.Parts), len(workers))
	}
	wp := j.wirePhase(phase)
	err := distributeAll(workers, func(w int, wc *workerConn) error {
		return m.shipPartition(wc, wp, enc.Parts[w], m.stallTimeout())
	})
	if err != nil {
		err = m.retryPartitions(ctx, err, func(w int, wc *workerConn, stall time.Duration) error {
			return m.shipPartition(wc, wp, enc.Parts[w], stall)
		})
	}
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.blockRows[phase] = enc.BlockRows
	j.mu.Unlock()
	m.mu.Lock()
	m.parts[wp] = enc.Parts
	m.mu.Unlock()
	return nil
}

// DistributeGFPartitions is DistributePartitions for the exact path: it
// ships phase p's GF(2³¹−1) coded partitions (partition w to worker w) as
// uint32 field-element streams. The partitions may come from
// GFMDSCode.Encode (GFEncodedMatrix.Parts) or be Lagrange shares wrapped
// as matrices — any per-worker field matrices of one shared shape.
//
//s2c2:partition-attrib
func (m *Master) DistributeGFPartitions(phase int, parts []*gf.Matrix) error {
	return m.def.DistributeGFPartitions(phase, parts)
}

// DistributeGFPartitionsContext is DistributeGFPartitions with a caller
// context (see DistributePartitionsContext for the cancellation contract).
//
//s2c2:partition-attrib
func (m *Master) DistributeGFPartitionsContext(ctx context.Context, phase int, parts []*gf.Matrix) error {
	return m.def.DistributeGFPartitionsContext(ctx, phase, parts)
}

// DistributeGFPartitions ships phase p's GF(2³¹−1) partitions for this
// job (see Master.DistributeGFPartitions).
//
//s2c2:partition-attrib
func (j *Job) DistributeGFPartitions(phase int, parts []*gf.Matrix) error {
	return j.DistributeGFPartitionsContext(context.Background(), phase, parts)
}

// DistributeGFPartitionsContext is DistributeGFPartitions under a caller
// context.
//
//s2c2:partition-attrib
func (j *Job) DistributeGFPartitionsContext(ctx context.Context, phase int, parts []*gf.Matrix) error {
	m := j.m
	workers := m.conns()
	if len(parts) != len(workers) {
		return fmt.Errorf("%w: %d GF partitions for %d workers", ErrDistributeShape, len(parts), len(workers))
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: no GF partitions to distribute", ErrDistributeShape)
	}
	rows, cols := parts[0].Dims()
	for w, p := range parts {
		if r, c := p.Dims(); r != rows || c != cols {
			return fmt.Errorf("%w: GF partition %d is %dx%d, want %dx%d", ErrDistributeShape, w, r, c, rows, cols)
		}
	}
	wp := j.wirePhase(phase)
	err := distributeAll(workers, func(w int, wc *workerConn) error {
		return m.shipGFPartition(wc, wp, parts[w], m.stallTimeout())
	})
	if err != nil {
		err = m.retryPartitions(ctx, err, func(w int, wc *workerConn, stall time.Duration) error {
			return m.shipGFPartition(wc, wp, parts[w], stall)
		})
	}
	if err != nil {
		return err
	}
	j.mu.Lock()
	j.gfBlockRows[phase] = rows
	j.mu.Unlock()
	m.mu.Lock()
	m.gfParts[wp] = parts
	m.mu.Unlock()
	return nil
}

// shipPartition delivers one float64 partition over the connection's
// transport: chunked with credit-based flow control on the wire transport,
// monolithic on the gob fallback.
func (m *Master) shipPartition(wc *workerConn, phase int, part *mat.Dense, stall time.Duration) error {
	rows, cols := part.Dims()
	if !wc.t.streamsPartitions() {
		return wc.t.sendPartition(&Partition{Phase: phase, Rows: rows, Cols: cols, Data: part.Data()})
	}
	chunkRows := m.chunkRowsFor(cols, 8)
	data := part.Data()
	return m.streamPartition(wc, phase, rows, chunkRows, stall,
		func(seq int) error {
			return wc.t.sendPartitionStart(&PartitionStart{
				Phase: phase, Seq: seq, Rows: rows, Cols: cols, ChunkRows: chunkRows,
			})
		},
		func(seq, lo, hi int) error {
			return wc.t.sendPartitionChunk(phase, seq, lo, hi, data[lo*cols:hi*cols])
		})
}

// shipGFPartition is shipPartition for field-element partitions.
func (m *Master) shipGFPartition(wc *workerConn, phase int, part *gf.Matrix, stall time.Duration) error {
	rows, cols := part.Dims()
	if !wc.t.streamsPartitions() {
		return wc.t.sendGFPartition(&GFPartition{Phase: phase, Rows: rows, Cols: cols, Data: part.Data()})
	}
	chunkRows := m.chunkRowsFor(cols, 4)
	data := part.Data()
	return m.streamPartition(wc, phase, rows, chunkRows, stall,
		func(seq int) error {
			return wc.t.sendGFPartitionStart(&PartitionStart{
				Phase: phase, Seq: seq, Rows: rows, Cols: cols, ChunkRows: chunkRows,
			})
		},
		func(seq, lo, hi int) error {
			return wc.t.sendGFPartitionChunk(phase, seq, lo, hi, data[lo*cols:hi*cols])
		})
}

// streamPartition is the shared credit-controlled streaming engine of both
// element types: it serializes the transfer on the connection, fences it
// with a fresh sequence number, and ships rows chunk by chunk under the
// configured credit window via the provided start/chunk senders. stall
// bounds each credit wait — the configured StallTimeout on the first
// attempt, the retry engine's per-attempt deadline on re-streams.
func (m *Master) streamPartition(wc *workerConn, phase, rows, chunkRows int, stall time.Duration,
	start func(seq int) error, chunk func(seq, lo, hi int) error) error {
	// One transfer at a time per connection: the credit channel is shared,
	// so interleaved transfers would steal each other's acks.
	wc.xfer.Lock()
	defer wc.xfer.Unlock()
	// With the transfer lock held, any credit still buffered belongs to an
	// aborted earlier transfer and is provably dead — drain now so stale
	// credits can never crowd this transfer's fresh ones out of the
	// buffer (readLoop drops credits rather than block when it fills).
drain:
	for {
		select {
		case <-wc.acks:
		default:
			break drain
		}
	}
	// The transfer sequence fences this stream: chunks carry it, acks echo
	// it, and credits from any earlier (possibly aborted) transfer are
	// dropped below instead of inflating this transfer's window or failing
	// it spuriously.
	seq := int(m.xferSeq.Add(1))
	if err := start(seq); err != nil {
		return err
	}
	timer := time.NewTimer(stall)
	defer timer.Stop()
	awaitCredit := func() error {
		timer.Stop()
		timer.Reset(stall)
		for {
			select {
			case ack := <-wc.acks:
				if ack.Phase != phase || ack.Seq != seq {
					continue // stale credit from an aborted earlier transfer
				}
				return nil
			case <-wc.dead:
				return fmt.Errorf("rpc: connection lost mid-transfer")
			case <-m.quit:
				return fmt.Errorf("rpc: master shut down mid-transfer")
			case <-timer.C:
				return fmt.Errorf("rpc: no chunk credit within %v", stall)
			}
		}
	}
	window := m.chunkWindow()
	outstanding := 0
	for lo := 0; lo < rows; lo += chunkRows {
		hi := lo + chunkRows
		if hi > rows {
			hi = rows
		}
		for outstanding >= window {
			if err := awaitCredit(); err != nil {
				return err
			}
			outstanding--
		}
		if err := chunk(seq, lo, hi); err != nil {
			return err
		}
		outstanding++
	}
	// Wait until the worker has stored every chunk: when streamPartition
	// returns, the partition is usable, not merely in flight.
	for outstanding > 0 {
		if err := awaitCredit(); err != nil {
			return err
		}
		outstanding--
	}
	return nil
}

// RoundStats reports a round's real-time measurements.
type RoundStats struct {
	// ResponseTime[w] is worker w's wall-clock response time (0 if it had
	// no assignment or timed out before responding).
	ResponseTime []time.Duration
	// AssignedRows[w] mirrors the plan (plus reassignments).
	AssignedRows []int
	// Reassigned counts rows re-executed after the timeout fired.
	Reassigned int
	// TimedOut lists workers whose results were abandoned.
	TimedOut []int
	// Recovery reports the round's failure-recovery activity (zero-valued
	// in a healthy round).
	Recovery RecoveryStats
}

// roundCore is the element-type-independent heart of a round's gather
// state: coverage counters, a per-(worker,row) delivery bitmap that makes
// duplicate deliveries idempotent, response bookkeeping, reassignment
// scratch, and the round's reusable timers. The float64 and exact-GF
// round workspaces embed it — the seam that gives both element types one
// gather/timeout/reassignment semantics instead of two diverging copies.
type roundCore struct {
	stats RoundStats

	n, k, blockRows int
	width           int // values per covered row (1 single-x, w batched)
	needed          int // rows still below coverage k
	nResponded      int

	cov       []int  // per-row coverage by distinct workers
	coveredBy []bool // n×blockRows: worker w delivered (or was assigned) row r
	responded []bool
	respTimes []time.Duration

	// dead marks workers whose connections failed this round (send error
	// or a readLoop-reported *WorkerError); their undelivered rows are
	// folded back into the plan by planRepair.
	dead []bool
	// asgMark is the n×blockRows assignment bitmap: row r is expected from
	// worker w (original plan or a successfully sent extra). planRepair
	// counts alive-but-undelivered assignments as in-flight potential so
	// repair never re-covers rows a healthy worker is already computing.
	asgMark []bool

	// Reassignment scratch, grown lazily on the first timeout.
	extraMark   []bool // n×blockRows: row r reassigned to worker w this round
	extraRows   []int
	extraRanges [][]coding.Range

	// hardTimer and graceTimer are reused across rounds (Go 1.23 timer
	// semantics: Stop+Reset without draining is race-free).
	hardTimer  *time.Timer
	graceTimer *time.Timer
}

// armTimer (re)arms one of the workspace's reusable timers.
//
//s2c2:noalloc
func armTimer(t **time.Timer, d time.Duration) *time.Timer {
	if *t == nil {
		// First round only; the timer is reused ever after.
		//s2c2:waive noalloc
		*t = time.NewTimer(d)
		return *t
	}
	(*t).Stop()
	(*t).Reset(d)
	return *t
}

// begin resets the core for a round of n workers over blockRows-row
// partitions with decode threshold k and batch width w.
//
//s2c2:noalloc
func (c *roundCore) begin(n, blockRows, k, w int) {
	c.n, c.k, c.blockRows, c.width = n, k, blockRows, w
	c.needed = blockRows
	c.nResponded = 0

	if cap(c.stats.ResponseTime) < n {
		//s2c2:waive noalloc — capacity growth, first round at this n only
		c.stats.ResponseTime = make([]time.Duration, n)
	}
	c.stats.ResponseTime = c.stats.ResponseTime[:n]
	for i := range c.stats.ResponseTime {
		c.stats.ResponseTime[i] = 0
	}
	c.stats.AssignedRows = kernel.GrowInts(c.stats.AssignedRows, n)
	for i := range c.stats.AssignedRows {
		c.stats.AssignedRows[i] = 0
	}
	c.stats.Reassigned = 0
	c.stats.TimedOut = c.stats.TimedOut[:0]
	c.stats.Recovery.Retries = 0
	c.stats.Recovery.ReStreams = 0
	c.stats.Recovery.Evictions = 0
	c.stats.Recovery.ReplacementAdmits = 0
	c.stats.Recovery.RecoveredRows = 0
	c.stats.Recovery.DeadWorkers = c.stats.Recovery.DeadWorkers[:0]

	c.cov = kernel.GrowInts(c.cov, blockRows)
	for i := range c.cov {
		c.cov[i] = 0
	}
	if cap(c.coveredBy) < n*blockRows {
		//s2c2:waive noalloc — capacity growth, first round at this shape only
		c.coveredBy = make([]bool, n*blockRows)
	}
	c.coveredBy = c.coveredBy[:n*blockRows]
	for i := range c.coveredBy {
		c.coveredBy[i] = false
	}
	if cap(c.responded) < n {
		//s2c2:waive noalloc — capacity growth, first round at this n only
		c.responded = make([]bool, n)
	}
	c.responded = c.responded[:n]
	for i := range c.responded {
		c.responded[i] = false
	}
	c.respTimes = c.respTimes[:0]

	if cap(c.dead) < n {
		//s2c2:waive noalloc — capacity growth, first round at this n only
		c.dead = make([]bool, n)
	}
	c.dead = c.dead[:n]
	for i := range c.dead {
		c.dead[i] = false
	}
	if cap(c.asgMark) < n*blockRows {
		//s2c2:waive noalloc — capacity growth, first round at this shape only
		c.asgMark = make([]bool, n*blockRows)
	}
	c.asgMark = c.asgMark[:n*blockRows]
	for i := range c.asgMark {
		c.asgMark[i] = false
	}
}

// checkResult validates a result's worker index, range bounds, row width,
// and values length before anything is folded into the round. The length
// check is the batched path's all-lanes-or-nothing dedup guarantee: a
// frame that covers a row contributes either every one of the round's
// width lanes for it or is rejected wholesale, so per-(worker,row)
// coverage marks never stand for partially delivered rows. The arithmetic
// divides rather than multiplies so hostile counts cannot overflow it.
//
//s2c2:noalloc
func (c *roundCore) checkResult(worker int, ranges []coding.Range, rowWidth, numValues int) error {
	if worker < 0 || worker >= c.n {
		return fmt.Errorf("rpc: result from unknown worker %d", worker)
	}
	if rowWidth < 1 {
		rowWidth = 1
	}
	if rowWidth != c.width {
		return fmt.Errorf("rpc: worker %d result row width %d, round width %d", worker, rowWidth, c.width)
	}
	rows := 0
	for _, rg := range ranges {
		if rg.Lo < 0 || rg.Hi > c.blockRows || rg.Lo > rg.Hi {
			return fmt.Errorf("rpc: worker %d result range [%d,%d) outside [0,%d)", worker, rg.Lo, rg.Hi, c.blockRows)
		}
		rows += rg.Hi - rg.Lo
	}
	if numValues/rowWidth != rows || numValues%rowWidth != 0 {
		return fmt.Errorf("rpc: worker %d result carries %d values for %d rows at width %d", worker, numValues, rows, rowWidth)
	}
	return nil
}

// noteResult advances coverage and response bookkeeping for one delivered
// result. Coverage counts each (worker, row) pair once, so duplicate
// deliveries — a slow worker's late original overlapping its reassigned
// rows, or a buggy worker re-sending ranges — can never inflate coverage
// past what the decoder will actually find. A Partial segment contributes
// coverage but does not count as the worker having responded: response
// time (the §4.3 timeout's and the predictor's input) is recorded only
// when the final segment of a split result lands, so large results are
// not systematically under-measured.
//
//s2c2:noalloc
func (c *roundCore) noteResult(worker int, ranges []coding.Range, elapsed time.Duration, partial bool) {
	if !partial && !c.responded[worker] {
		c.responded[worker] = true
		c.nResponded++
		c.stats.ResponseTime[worker] = elapsed
		// Amortized: reset to length 0 each round, capacity retained.
		//s2c2:waive noalloc
		c.respTimes = append(c.respTimes, elapsed)
	}
	base := worker * c.blockRows
	for _, rg := range ranges {
		for row := rg.Lo; row < rg.Hi; row++ {
			if c.coveredBy[base+row] {
				continue // duplicate (worker, row): coverage already counted
			}
			c.coveredBy[base+row] = true
			c.cov[row]++
			if c.cov[row] == c.k {
				c.needed--
			}
		}
	}
}

// graceWindow computes the §4.3 grace duration: timeoutFrac times the
// mean response time of the first k responders.
//
//s2c2:noalloc
func (c *roundCore) graceWindow(k int, timeoutFrac float64) time.Duration {
	sortDurations(c.respTimes)
	mean := time.Duration(0)
	for i := 0; i < k && i < len(c.respTimes); i++ {
		mean += c.respTimes[i]
	}
	mean /= time.Duration(k)
	return time.Duration(float64(mean) * timeoutFrac)
}

// planExtras computes the timeout reassignment: every row short of
// coverage k is routed to the least-loaded responder that does not
// already cover it (delivered rows and rows just reassigned both
// disqualify), filling stats.TimedOut and the per-worker extra ranges.
// The caller sends the typed work messages and folds extraRows into the
// assignment stats as each send succeeds.
//
//s2c2:noalloc-waive
func (c *roundCore) planExtras() error {
	for w := 0; w < c.n; w++ {
		if c.stats.AssignedRows[w] > 0 && !c.responded[w] && !c.dead[w] {
			// Dead workers are tracked in Recovery.DeadWorkers: a torn
			// connection is a failure, not a straggle.
			c.stats.TimedOut = append(c.stats.TimedOut, w)
		}
	}
	c.resetExtras()
	for r := 0; r < c.blockRows; r++ {
		for cv := c.cov[r]; cv < c.k; cv++ {
			// Least-loaded live responder that can still add coverage for r.
			best := -1
			for w := 0; w < c.n; w++ {
				if !c.responded[w] || c.dead[w] || c.coveredBy[w*c.blockRows+r] || c.extraMark[w*c.blockRows+r] {
					continue
				}
				if best < 0 || c.extraRows[w] < c.extraRows[best] {
					best = w
				}
			}
			if best < 0 {
				return fmt.Errorf("rpc: cannot re-cover row %d", r)
			}
			c.extraMark[best*c.blockRows+r] = true
			c.extraRows[best]++
			// Rows are visited in ascending order, so per-worker ranges
			// stay normalized by construction.
			rs := c.extraRanges[best]
			if len(rs) > 0 && rs[len(rs)-1].Hi == r {
				rs[len(rs)-1].Hi = r + 1
			} else {
				rs = append(rs, coding.Range{Lo: r, Hi: r + 1})
			}
			c.extraRanges[best] = rs
		}
	}
	return nil
}

// resetExtras clears the reassignment scratch shared by planExtras and
// planRepair. Lazily sized: only rounds that time out or lose a worker
// pay for it.
//
//s2c2:noalloc-waive
func (c *roundCore) resetExtras() {
	if cap(c.extraMark) < c.n*c.blockRows {
		c.extraMark = make([]bool, c.n*c.blockRows)
	}
	c.extraMark = c.extraMark[:c.n*c.blockRows]
	for i := range c.extraMark {
		c.extraMark[i] = false
	}
	c.extraRows = kernel.GrowInts(c.extraRows, c.n)
	for i := range c.extraRows {
		c.extraRows[i] = 0
	}
	if cap(c.extraRanges) < c.n {
		c.extraRanges = make([][]coding.Range, c.n)
	}
	c.extraRanges = c.extraRanges[:c.n]
	for i := range c.extraRanges {
		c.extraRanges[i] = c.extraRanges[i][:0]
	}
}

// copyStats deep-copies the round stats (the non-ReuseRound contract).
//
//s2c2:noalloc-waive
func (c *roundCore) copyStats() *RoundStats {
	recovery := c.stats.Recovery
	recovery.DeadWorkers = append([]int(nil), c.stats.Recovery.DeadWorkers...)
	return &RoundStats{
		ResponseTime: append([]time.Duration(nil), c.stats.ResponseTime...),
		AssignedRows: append([]int(nil), c.stats.AssignedRows...),
		Reassigned:   c.stats.Reassigned,
		TimedOut:     append([]int(nil), c.stats.TimedOut...),
		Recovery:     recovery,
	}
}

// roundWorkspace is the master's reusable float64-round gather state: the
// shared core plus the partial structs handed to the float64 decoder, the
// pooled result slots the round retains, and the reusable send struct.
// One warm workspace makes the whole steady-state round — sending work,
// receiving results, decoding — allocation-free.
type roundWorkspace struct {
	roundCore

	partialSeq []coding.Partial
	nPartials  int
	partials   []*coding.Partial
	// retained lists the pooled result slots whose slices this round's
	// partials alias; they recycle at the start of the next round.
	retained []*Result
	// workMsg is the reusable master→worker send struct (sends are
	// synchronous, so one slot serves the whole round).
	workMsg Work
}

// begin resets the workspace for a round of n workers over blockRows-row
// partitions with decode threshold k and batch width w.
//
//s2c2:noalloc
func (ws *roundWorkspace) begin(n, blockRows, k, w int) {
	ws.roundCore.begin(n, blockRows, k, w)
	ws.nPartials = 0
	// A worker normally sends one result per Work message, and a round
	// sends at most one original plus one reassignment message per
	// worker, so 2n partial structs cover the common case. Workers whose
	// results exceed WorkerConfig.MaxResultRows split them into several
	// messages — that surplus (like a misbehaving worker's) falls back to
	// allocation, trading the 0-alloc property for bounded frames on
	// multi-gigabyte partitions.
	if cap(ws.partialSeq) < 2*n {
		//s2c2:waive noalloc — capacity growth, first round at this n only
		ws.partialSeq = make([]coding.Partial, 2*n)
	}
	ws.partialSeq = ws.partialSeq[:2*n]
	ws.partials = ws.partials[:0]
	if cap(ws.retained) < 2*n {
		//s2c2:waive noalloc — capacity growth, first round at this n only
		ws.retained = make([]*Result, 0, 2*n)
	}
}

// addResult folds one worker result into the round: it wraps the values
// as a decoder partial and advances per-row coverage through the core.
//
//s2c2:noalloc
func (ws *roundWorkspace) addResult(r *Result, elapsed time.Duration) error {
	if err := ws.checkResult(r.Worker, r.Ranges, r.RowWidth, len(r.Values)); err != nil {
		return err
	}
	var p *coding.Partial
	if ws.nPartials < len(ws.partialSeq) {
		p = &ws.partialSeq[ws.nPartials]
	} else {
		// Result-split overflow past 2n partials: falls back to the heap
		// (see begin); bounded frames beat the 0-alloc property here.
		//s2c2:waive noalloc
		p = &coding.Partial{}
	}
	ws.nPartials++
	p.Worker = r.Worker
	p.RowWidth = ws.width
	p.Ranges = r.Ranges
	p.Values = r.Values
	// Amortized: reset to length 0 each round, capacity retained.
	//s2c2:waive noalloc
	ws.partials = append(ws.partials, p)
	ws.noteResult(r.Worker, r.Ranges, elapsed, r.Partial)
	return nil
}

// gfRoundWorkspace is roundWorkspace for the exact GF(2³¹−1) path.
type gfRoundWorkspace struct {
	roundCore

	partialSeq []coding.GFPartial
	nPartials  int
	partials   []*coding.GFPartial
	retained   []*GFResult
	workMsg    GFWork
}

//s2c2:noalloc
func (ws *gfRoundWorkspace) begin(n, blockRows, k, w int) {
	ws.roundCore.begin(n, blockRows, k, w)
	ws.nPartials = 0
	if cap(ws.partialSeq) < 2*n {
		//s2c2:waive noalloc — capacity growth, first round at this n only
		ws.partialSeq = make([]coding.GFPartial, 2*n)
	}
	ws.partialSeq = ws.partialSeq[:2*n]
	ws.partials = ws.partials[:0]
	if cap(ws.retained) < 2*n {
		//s2c2:waive noalloc — capacity growth, first round at this n only
		ws.retained = make([]*GFResult, 0, 2*n)
	}
}

//s2c2:noalloc
func (ws *gfRoundWorkspace) addResult(r *GFResult, elapsed time.Duration) error {
	if err := ws.checkResult(r.Worker, r.Ranges, r.RowWidth, len(r.Values)); err != nil {
		return err
	}
	var p *coding.GFPartial
	if ws.nPartials < len(ws.partialSeq) {
		p = &ws.partialSeq[ws.nPartials]
	} else {
		// Result-split overflow past 2n partials (see begin).
		//s2c2:waive noalloc
		p = &coding.GFPartial{}
	}
	ws.nPartials++
	p.Worker = r.Worker
	p.RowWidth = ws.width
	p.Ranges = r.Ranges
	p.Values = r.Values
	// Amortized: reset to length 0 each round, capacity retained.
	//s2c2:waive noalloc
	ws.partials = append(ws.partials, p)
	ws.noteResult(r.Worker, r.Ranges, elapsed, r.Partial)
	return nil
}

// PlanRound builds the next round's plan from the default job's double-
// buffered plan storage: the previous round's plan stays intact (it may
// still be referenced by a draining round) while the new one is written
// into the other buffer. Steady-state planning allocates nothing.
func (m *Master) PlanRound(s sched.Strategy, speeds []float64) (*sched.Plan, error) {
	return m.def.PlanRound(s, speeds)
}

// PlanRound is Master.PlanRound against this job's own plan buffer, so
// concurrent jobs plan without sharing (sched.PlanBuffer is not safe for
// concurrent Next calls).
func (j *Job) PlanRound(s sched.Strategy, speeds []float64) (*sched.Plan, error) {
	return j.planBuf.Next(s, speeds)
}

// RunRound is RunRoundContext with a background context.
func (m *Master) RunRound(iter, phase int, x []float64, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	return m.def.RunRoundContext(context.Background(), iter, phase, x, plan, k, timeoutFrac)
}

// RunRoundContext sends the plan's assignments for (iter, phase), gathers
// partials until per-row coverage k is met, applying the §4.3 timeout:
// once the first k workers respond, the rest get timeoutFrac of the mean
// response time before their pending rows are reassigned to finished
// workers. It returns the collected partials (decode with the encoder)
// and the round's stats. With ReuseRound set, both alias the master's
// round workspace and are valid until the next RunRound.
//
// The context cancels the round between messages: when ctx is done the
// round returns its error, abandoning any stragglers (their late results
// are discarded by the next round's stale filter). The configured
// StallTimeout still bounds the round independently of ctx. A round
// parked in the serving wait queue (MaxConcurrentRounds) observes ctx and
// Shutdown while queued.
func (m *Master) RunRoundContext(ctx context.Context, iter, phase int, x []float64, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	return m.def.runRound(ctx, iter, phase, x, 1, plan, k, timeoutFrac)
}

// RunRoundBatch is RunRoundBatchContext with a background context.
func (m *Master) RunRoundBatch(iter, phase int, xs []float64, w int, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	return m.def.RunRoundBatchContext(context.Background(), iter, phase, xs, w, plan, k, timeoutFrac)
}

// RunRoundBatchContext runs one batched round: w input vectors
// concatenated in xs (x_l at xs[l*cols : (l+1)*cols]) travel in a single
// work message per worker, each worker sweeps its assigned rows once
// through the fused multi-x kernel, and the returned partials carry
// RowWidth = w with row-major w-wide values, ready for the width-general
// decoders. Grace, timeout, reassignment, and dedup semantics are
// identical to the single-x round — the same gather core runs both —
// with coverage counting a row only when all w of its lanes landed.
func (m *Master) RunRoundBatchContext(ctx context.Context, iter, phase int, xs []float64, w int, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	return m.def.RunRoundBatchContext(ctx, iter, phase, xs, w, plan, k, timeoutFrac)
}

// RunRound / RunRoundContext / RunRoundBatch / RunRoundBatchContext run
// one float64 round for this job — the per-job forms of the Master
// methods, with identical §4.3 grace, timeout, reassignment, and repair
// semantics. Jobs' rounds run concurrently over the shared workers; with
// ReuseRound set, the returned partials alias this job's own workspace,
// valid until the job's next round.
func (j *Job) RunRound(iter, phase int, x []float64, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	return j.runRound(context.Background(), iter, phase, x, 1, plan, k, timeoutFrac)
}

// RunRoundContext is RunRound under a caller context.
func (j *Job) RunRoundContext(ctx context.Context, iter, phase int, x []float64, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	return j.runRound(ctx, iter, phase, x, 1, plan, k, timeoutFrac)
}

// RunRoundBatch is RunRoundBatchContext with a background context.
func (j *Job) RunRoundBatch(iter, phase int, xs []float64, w int, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	return j.RunRoundBatchContext(context.Background(), iter, phase, xs, w, plan, k, timeoutFrac)
}

// RunRoundBatchContext runs one batched round for this job (see
// Master.RunRoundBatchContext for the width contract).
func (j *Job) RunRoundBatchContext(ctx context.Context, iter, phase int, xs []float64, w int, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	if err := checkBatchArgs(w, len(xs)); err != nil {
		return nil, nil, err
	}
	return j.runRound(ctx, iter, phase, xs, w, plan, k, timeoutFrac)
}

// checkBatchArgs validates a batched round's width against the
// concatenated input length.
func checkBatchArgs(w, xsLen int) error {
	if w < 1 || w > maxBatchWidth {
		return fmt.Errorf("rpc: batch width %d outside [1,%d]", w, maxBatchWidth)
	}
	if xsLen%w != 0 {
		return fmt.Errorf("rpc: batched input length %d not divisible by width %d", xsLen, w)
	}
	return nil
}

//s2c2:noalloc
func (j *Job) runRound(ctx context.Context, iter, phase int, x []float64, w int, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	m := j.m
	j.mu.Lock()
	blockRows := j.blockRows[phase]
	j.mu.Unlock()
	if blockRows == 0 {
		return nil, nil, fmt.Errorf("rpc: phase %d has no distributed partitions", phase)
	}
	wp := j.wirePhase(phase)
	if err := m.acquireRoundSlot(ctx, j); err != nil {
		return nil, nil, err
	}
	defer m.releaseRoundSlot()
	workers := m.conns()
	n := len(workers)
	ws := &j.round
	m.recycleRound(ws)
	ws.begin(n, blockRows, k, w)
	start := time.Now()
	active := 0
	for wk, wc := range workers {
		ranges := plan.Assignments[wk]
		rows := coding.TotalRows(ranges)
		if rows == 0 {
			continue
		}
		ws.stats.AssignedRows[wk] = rows
		ws.workMsg = Work{Job: j.id, Iter: iter, Phase: wp, W: w, X: x, Ranges: ranges}
		if err := wc.t.sendWork(&ws.workMsg); err != nil {
			// A send failure is a worker death, not a round abort: note it
			// and fold its rows back into the plan once every healthy send
			// is out (repairing mid-loop would misplan — later workers'
			// assignments are not marked yet).
			ws.stats.AssignedRows[wk] = 0
			ws.noteDead(wk)
			continue
		}
		ws.markAssigned(wk, ranges)
		active++
	}
	if len(ws.stats.Recovery.DeadWorkers) > 0 {
		if err := j.repairRound(ws, workers, iter, wp, x, w); err != nil {
			return nil, nil, err
		}
	} else if active < k {
		return nil, nil, fmt.Errorf("rpc: plan activates %d workers, decoding needs %d", active, k)
	}

	// Phase 1: wait for the first k responders (coded computing cannot
	// decode with fewer).
	hard := armTimer(&ws.hardTimer, m.stallTimeout())
	defer hard.Stop()
	for ws.nResponded < k {
		select {
		case r := <-j.results:
			if r.Iter != iter || r.Phase != wp {
				m.putResult(r) // stale result from an abandoned round
				continue
			}
			if err := ws.addResult(r, time.Since(start)); err != nil {
				return nil, nil, err
			}
			// Amortized: recycled and reset each round, capacity retained.
			//s2c2:waive noalloc
			ws.retained = append(ws.retained, r)
		case err := <-j.errs:
			we, ok := err.(*WorkerError)
			if !ok {
				return nil, nil, err
			}
			if we.Worker >= n || workers[we.Worker] != we.conn {
				continue // stale: a conn no longer serving this round's slots
			}
			ws.noteDead(we.Worker)
			if err := j.repairRound(ws, workers, iter, wp, x, w); err != nil {
				return nil, nil, err
			}
		case <-m.quit:
			return nil, nil, fmt.Errorf("rpc: master shut down during round (%d,%d)", iter, phase)
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) canceled: %w", iter, phase, ctx.Err())
		case <-hard.C:
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) stalled waiting for %d responders", iter, phase, k)
		}
	}
	if ws.needed == 0 {
		m.noteRoundOutcome(&ws.roundCore, workers)
		return m.finishRound(ws)
	}

	// Phase 2: grace window = timeoutFrac × mean response of the first k;
	// when it expires, pending coverage is reassigned to responders and
	// the round keeps collecting until coverage completes.
	grace := armTimer(&ws.graceTimer, ws.graceWindow(k, timeoutFrac))
	defer grace.Stop()
	for ws.needed > 0 {
		select {
		case r := <-j.results:
			if r.Iter != iter || r.Phase != wp {
				m.putResult(r)
				continue
			}
			if err := ws.addResult(r, time.Since(start)); err != nil {
				return nil, nil, err
			}
			// Amortized: recycled and reset each round, capacity retained.
			//s2c2:waive noalloc
			ws.retained = append(ws.retained, r)
		case err := <-j.errs:
			we, ok := err.(*WorkerError)
			if !ok {
				return nil, nil, err
			}
			if we.Worker >= n || workers[we.Worker] != we.conn {
				continue // stale: a conn no longer serving this round's slots
			}
			ws.noteDead(we.Worker)
			if err := j.repairRound(ws, workers, iter, wp, x, w); err != nil {
				return nil, nil, err
			}
		case <-m.quit:
			return nil, nil, fmt.Errorf("rpc: master shut down during round (%d,%d)", iter, phase)
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) canceled: %w", iter, phase, ctx.Err())
		case <-grace.C:
			// Timeout fired: reassign pending coverage to responders
			// (reassigned results arrive tagged with the same iter/phase,
			// so the same collection loop finishes the round). A send that
			// fails here is a death, absorbed by the repair planner.
			lost, err := j.reassign(ws, workers, iter, wp, x, w)
			if err != nil {
				return nil, nil, err
			}
			if lost {
				if err := j.repairRound(ws, workers, iter, wp, x, w); err != nil {
					return nil, nil, err
				}
			}
		case <-hard.C:
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) stalled", iter, phase)
		}
	}
	m.noteRoundOutcome(&ws.roundCore, workers)
	return m.finishRound(ws)
}

// RunGFRound is RunGFRoundContext with a background context.
func (m *Master) RunGFRound(iter, phase int, x []gf.Elem, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.GFPartial, *RoundStats, error) {
	return m.RunGFRoundContext(context.Background(), iter, phase, x, plan, k, timeoutFrac)
}

// RunGFRound runs one exact GF(2³¹−1) round for this job.
func (j *Job) RunGFRound(iter, phase int, x []gf.Elem, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.GFPartial, *RoundStats, error) {
	return j.RunGFRoundContext(context.Background(), iter, phase, x, plan, k, timeoutFrac)
}

// RunGFRoundContext runs one exact GF(2³¹−1) round for this job under ctx.
func (j *Job) RunGFRoundContext(ctx context.Context, iter, phase int, x []gf.Elem, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.GFPartial, *RoundStats, error) {
	return j.runGFRound(ctx, iter, phase, x, 1, plan, k, timeoutFrac)
}

// RunGFRoundBatch runs one batched exact round for this job.
func (j *Job) RunGFRoundBatch(iter, phase int, xs []gf.Elem, w int, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.GFPartial, *RoundStats, error) {
	return j.RunGFRoundBatchContext(context.Background(), iter, phase, xs, w, plan, k, timeoutFrac)
}

// RunGFRoundBatchContext runs one batched exact round for this job under ctx.
func (j *Job) RunGFRoundBatchContext(ctx context.Context, iter, phase int, xs []gf.Elem, w int, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.GFPartial, *RoundStats, error) {
	if err := checkBatchArgs(w, len(xs)); err != nil {
		return nil, nil, err
	}
	return j.runGFRound(ctx, iter, phase, xs, w, plan, k, timeoutFrac)
}

// RunGFRoundContext is RunRoundContext over GF(2³¹−1): it broadcasts the
// field-element input vector with the plan's assignments, gathers exact
// partials until per-row coverage k is met under the same §4.3 timeout and
// reassignment semantics, and returns partials that decode bit-exactly
// through GFMDSCode.DecodeMatVecInto (or assemble into Lagrange shares via
// coding.CompleteGFShares). With ReuseRound set, the partials and stats
// alias the master's GF round workspace until the next RunGFRound.
func (m *Master) RunGFRoundContext(ctx context.Context, iter, phase int, x []gf.Elem, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.GFPartial, *RoundStats, error) {
	return m.def.runGFRound(ctx, iter, phase, x, 1, plan, k, timeoutFrac)
}

// RunGFRoundBatch is RunGFRoundBatchContext with a background context.
func (m *Master) RunGFRoundBatch(iter, phase int, xs []gf.Elem, w int, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.GFPartial, *RoundStats, error) {
	return m.RunGFRoundBatchContext(context.Background(), iter, phase, xs, w, plan, k, timeoutFrac)
}

// RunGFRoundBatchContext is RunRoundBatchContext over GF(2³¹−1): one
// batched exact round whose partials carry RowWidth = w. Because field
// arithmetic has no rounding, lane l of the decoded result is bit-exact
// equal to a single-x round over xs[l*cols : (l+1)*cols] — batching
// changes throughput, never values.
func (m *Master) RunGFRoundBatchContext(ctx context.Context, iter, phase int, xs []gf.Elem, w int, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.GFPartial, *RoundStats, error) {
	if err := checkBatchArgs(w, len(xs)); err != nil {
		return nil, nil, err
	}
	return m.def.runGFRound(ctx, iter, phase, xs, w, plan, k, timeoutFrac)
}

//s2c2:noalloc
func (j *Job) runGFRound(ctx context.Context, iter, phase int, x []gf.Elem, w int, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.GFPartial, *RoundStats, error) {
	m := j.m
	j.mu.Lock()
	blockRows := j.gfBlockRows[phase]
	j.mu.Unlock()
	if blockRows == 0 {
		return nil, nil, fmt.Errorf("rpc: phase %d has no distributed GF partitions", phase)
	}
	wp := j.wirePhase(phase)
	if err := m.acquireRoundSlot(ctx, j); err != nil {
		return nil, nil, err
	}
	defer m.releaseRoundSlot()
	workers := m.conns()
	n := len(workers)
	ws := &j.gfRound
	m.recycleGFRound(ws)
	ws.begin(n, blockRows, k, w)
	start := time.Now()
	active := 0
	for wk, wc := range workers {
		ranges := plan.Assignments[wk]
		rows := coding.TotalRows(ranges)
		if rows == 0 {
			continue
		}
		ws.stats.AssignedRows[wk] = rows
		ws.workMsg = GFWork{Job: j.id, Iter: iter, Phase: wp, W: w, X: x, Ranges: ranges}
		if err := wc.t.sendGFWork(&ws.workMsg); err != nil {
			// Send failure = worker death; fold its rows back in after the
			// healthy sends are out (see runRound).
			ws.stats.AssignedRows[wk] = 0
			ws.noteDead(wk)
			continue
		}
		ws.markAssigned(wk, ranges)
		active++
	}
	if len(ws.stats.Recovery.DeadWorkers) > 0 {
		if err := j.repairGFRound(ws, workers, iter, wp, x, w); err != nil {
			return nil, nil, err
		}
	} else if active < k {
		return nil, nil, fmt.Errorf("rpc: plan activates %d workers, decoding needs %d", active, k)
	}

	// Phase 1: wait for the first k responders.
	hard := armTimer(&ws.hardTimer, m.stallTimeout())
	defer hard.Stop()
	for ws.nResponded < k {
		select {
		case r := <-j.gfResults:
			if r.Iter != iter || r.Phase != wp {
				m.putGFResult(r) // stale result from an abandoned round
				continue
			}
			if err := ws.addResult(r, time.Since(start)); err != nil {
				return nil, nil, err
			}
			// Amortized: recycled and reset each round, capacity retained.
			//s2c2:waive noalloc
			ws.retained = append(ws.retained, r)
		case err := <-j.errs:
			we, ok := err.(*WorkerError)
			if !ok {
				return nil, nil, err
			}
			if we.Worker >= n || workers[we.Worker] != we.conn {
				continue // stale: a conn no longer serving this round's slots
			}
			ws.noteDead(we.Worker)
			if err := j.repairGFRound(ws, workers, iter, wp, x, w); err != nil {
				return nil, nil, err
			}
		case <-m.quit:
			return nil, nil, fmt.Errorf("rpc: master shut down during GF round (%d,%d)", iter, phase)
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("rpc: GF round (%d,%d) canceled: %w", iter, phase, ctx.Err())
		case <-hard.C:
			return nil, nil, fmt.Errorf("rpc: GF round (%d,%d) stalled waiting for %d responders", iter, phase, k)
		}
	}
	if ws.needed == 0 {
		m.noteRoundOutcome(&ws.roundCore, workers)
		return m.finishGFRound(ws)
	}

	// Phase 2: grace window, reassignment, and collection to coverage —
	// the same semantics as the float64 round, through the shared core.
	grace := armTimer(&ws.graceTimer, ws.graceWindow(k, timeoutFrac))
	defer grace.Stop()
	for ws.needed > 0 {
		select {
		case r := <-j.gfResults:
			if r.Iter != iter || r.Phase != wp {
				m.putGFResult(r)
				continue
			}
			if err := ws.addResult(r, time.Since(start)); err != nil {
				return nil, nil, err
			}
			// Amortized: recycled and reset each round, capacity retained.
			//s2c2:waive noalloc
			ws.retained = append(ws.retained, r)
		case err := <-j.errs:
			we, ok := err.(*WorkerError)
			if !ok {
				return nil, nil, err
			}
			if we.Worker >= n || workers[we.Worker] != we.conn {
				continue // stale: a conn no longer serving this round's slots
			}
			ws.noteDead(we.Worker)
			if err := j.repairGFRound(ws, workers, iter, wp, x, w); err != nil {
				return nil, nil, err
			}
		case <-m.quit:
			return nil, nil, fmt.Errorf("rpc: master shut down during GF round (%d,%d)", iter, phase)
		case <-ctx.Done():
			return nil, nil, fmt.Errorf("rpc: GF round (%d,%d) canceled: %w", iter, phase, ctx.Err())
		case <-grace.C:
			lost, err := j.reassignGF(ws, workers, iter, wp, x, w)
			if err != nil {
				return nil, nil, err
			}
			if lost {
				if err := j.repairGFRound(ws, workers, iter, wp, x, w); err != nil {
					return nil, nil, err
				}
			}
		case <-hard.C:
			return nil, nil, fmt.Errorf("rpc: GF round (%d,%d) stalled", iter, phase)
		}
	}
	m.noteRoundOutcome(&ws.roundCore, workers)
	return m.finishGFRound(ws)
}

// recycleRound returns the previous round's pooled result slots to the
// receive pool. Callers of the previous RunRound have released its
// partials by contract (ReuseRound) or received copies (default), so the
// slots are free for the readLoops to decode into again.
//
//s2c2:noalloc
func (m *Master) recycleRound(ws *roundWorkspace) {
	for i, r := range ws.retained {
		m.putResult(r)
		ws.retained[i] = nil
	}
	ws.retained = ws.retained[:0]
}

// recycleGFRound is recycleRound for the GF workspace.
//
//s2c2:noalloc
func (m *Master) recycleGFRound(ws *gfRoundWorkspace) {
	for i, r := range ws.retained {
		m.putGFResult(r)
		ws.retained[i] = nil
	}
	ws.retained = ws.retained[:0]
}

// finishRound hands the gathered round to the caller: workspace-backed
// when ReuseRound is set, deep copies otherwise (the pooled receive slots
// the workspace-backed form aliases are overwritten by the next round, so
// the default mode must not alias them).
//
//s2c2:noalloc
func (m *Master) finishRound(ws *roundWorkspace) ([]*coding.Partial, *RoundStats, error) {
	if m.cfg.ReuseRound {
		return ws.partials, &ws.stats, nil
	}
	return copyPartials(ws.partials), ws.copyStats(), nil
}

// copyPartials deep-copies a round's partials for the default contract.
// Deliberately allocating: the copies must survive the next round
// overwriting the pooled slots ws.partials alias; allocation-free rounds
// opt into ReuseRound instead.
//
//s2c2:noalloc-waive
func copyPartials(src []*coding.Partial) []*coding.Partial {
	out := make([]*coding.Partial, len(src))
	for i, p := range src {
		out[i] = &coding.Partial{
			Worker:   p.Worker,
			RowWidth: p.RowWidth,
			Ranges:   append([]coding.Range(nil), p.Ranges...),
			Values:   append([]float64(nil), p.Values...),
		}
	}
	return out
}

// finishGFRound is finishRound for the exact path.
//
//s2c2:noalloc
func (m *Master) finishGFRound(ws *gfRoundWorkspace) ([]*coding.GFPartial, *RoundStats, error) {
	if m.cfg.ReuseRound {
		return ws.partials, &ws.stats, nil
	}
	return copyGFPartials(ws.partials), ws.copyStats(), nil
}

// copyGFPartials is copyPartials for the exact path.
//
//s2c2:noalloc-waive
func copyGFPartials(src []*coding.GFPartial) []*coding.GFPartial {
	out := make([]*coding.GFPartial, len(src))
	for i, p := range src {
		out[i] = &coding.GFPartial{
			Worker:   p.Worker,
			RowWidth: p.RowWidth,
			Ranges:   append([]coding.Range(nil), p.Ranges...),
			Values:   append([]gf.Elem(nil), p.Values...),
		}
	}
	return out
}

// reassign routes uncovered rows to responders via the core's plan and
// sends the extra float64 work assignments (at the round's batch width —
// reassigned rows need all their lanes recomputed like any others). A
// responder that dies at send time is noted dead and its extras skipped;
// lost reports whether that happened so the caller can run the repair
// planner over the remaining deficit.
//
//s2c2:noalloc
func (j *Job) reassign(ws *roundWorkspace, workers []*workerConn, iter, phase int, x []float64, bw int) (lost bool, err error) {
	if err := ws.planExtras(); err != nil {
		return false, err
	}
	for w, ranges := range ws.extraRanges {
		if len(ranges) == 0 {
			continue
		}
		ws.workMsg = Work{Job: j.id, Iter: iter, Phase: phase, W: bw, X: x, Ranges: ranges}
		if err := workers[w].t.sendWork(&ws.workMsg); err != nil {
			ws.noteDead(w)
			lost = true
			continue
		}
		ws.markAssigned(w, ranges)
		ws.stats.AssignedRows[w] += ws.extraRows[w]
		ws.stats.Reassigned += ws.extraRows[w]
	}
	return lost, nil
}

// reassignGF is reassign for the exact path.
//
//s2c2:noalloc
func (j *Job) reassignGF(ws *gfRoundWorkspace, workers []*workerConn, iter, phase int, x []gf.Elem, bw int) (lost bool, err error) {
	if err := ws.planExtras(); err != nil {
		return false, err
	}
	for w, ranges := range ws.extraRanges {
		if len(ranges) == 0 {
			continue
		}
		ws.workMsg = GFWork{Job: j.id, Iter: iter, Phase: phase, W: bw, X: x, Ranges: ranges}
		if err := workers[w].t.sendGFWork(&ws.workMsg); err != nil {
			ws.noteDead(w)
			lost = true
			continue
		}
		ws.markAssigned(w, ranges)
		ws.stats.AssignedRows[w] += ws.extraRows[w]
		ws.stats.Reassigned += ws.extraRows[w]
	}
	return lost, nil
}

// sortDurations is an ascending insertion sort (short slices, no closure
// allocation).
//
//s2c2:noalloc
func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// Shutdown tells all workers to exit, closes every connection and the
// listener, and waits for the reader goroutines to drain. It is
// idempotent and safe to call while reads are in flight: readers observe
// the closing flag and exit silently instead of reporting the torn
// connection as a worker failure.
func (m *Master) Shutdown() {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return
	}
	m.closing = true
	workers := append([]*workerConn(nil), m.workers...)
	pending := m.pending
	m.pending = nil
	m.mu.Unlock()
	close(m.quit) // unblock readers parked on a full results channel
	for _, wc := range workers {
		wc.t.sendShutdown() //nolint:errcheck // best effort
		wc.t.close()
	}
	for _, wc := range pending {
		wc.t.close() // parked spare: its read loop sees closing and exits
	}
	m.ln.Close()
	m.wg.Wait()
}
