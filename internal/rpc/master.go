package rpc

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/sched"
)

// MasterConfig configures a master.
type MasterConfig struct {
	// Addr is the listen address (e.g. "127.0.0.1:0").
	Addr string
	// Exec pins the master's compute (and, via Exec(), the codecs a
	// driver wires to this master) to a pool and fan-out, so co-tenant
	// masters in one process stop contending for the shared
	// GOMAXPROCS-sized default pool. The zero value uses the default.
	Exec kernel.Exec
	// ReuseRound lets RunRound return partials and stats backed by a
	// per-master workspace that the NEXT RunRound overwrites. Drivers
	// that decode each round before starting the next (every iterative
	// workload) set it to make the steady-state gather path
	// allocation-free; leave it false if round results must outlive the
	// following round.
	ReuseRound bool
}

// Master coordinates a real TCP cluster: it accepts worker connections,
// pushes coded partitions, runs assignment rounds, and decodes results.
type Master struct {
	cfg     MasterConfig
	ln      net.Listener
	results chan *Result
	errs    chan error
	quit    chan struct{}

	mu        sync.Mutex
	workers   []*conn
	closing   bool
	blockRows map[int]int // phase → partition rows

	wg      sync.WaitGroup // readLoops
	round   roundWorkspace
	planBuf sched.PlanBuffer
}

// NewMaster listens on addr (e.g. "127.0.0.1:0") with a default config.
func NewMaster(addr string) (*Master, error) {
	return NewMasterWithConfig(MasterConfig{Addr: addr})
}

// NewMasterWithConfig listens according to cfg.
func NewMasterWithConfig(cfg MasterConfig) (*Master, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("rpc: listen: %w", err)
	}
	return &Master{
		cfg:       cfg,
		ln:        ln,
		results:   make(chan *Result, 1024),
		errs:      make(chan error, 16),
		quit:      make(chan struct{}),
		blockRows: map[int]int{},
	}, nil
}

// Addr returns the listen address workers should dial.
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Exec returns the execution resources this master was configured with;
// drivers pass it to the codecs they pair with the master (SetExec) so
// one process can host several masters without pool contention.
func (m *Master) Exec() kernel.Exec { return m.cfg.Exec }

// WaitForWorkers accepts worker connections (assigning worker IDs in
// connection order) until n are connected or the deadline expires. The
// listener's accept deadline is cleared again on every return path, so a
// later call — e.g. retrying after a timeout, or growing the cluster —
// starts fresh instead of failing on a stale deadline.
func (m *Master) WaitForWorkers(n int, timeout time.Duration) error {
	if tl, ok := m.ln.(*net.TCPListener); ok {
		if err := tl.SetDeadline(time.Now().Add(timeout)); err != nil {
			return err
		}
		defer tl.SetDeadline(time.Time{}) //nolint:errcheck // best-effort clear
	}
	for m.NumWorkers() < n {
		c, err := m.ln.Accept()
		if err != nil {
			return fmt.Errorf("rpc: accept (have %d/%d workers): %w", m.NumWorkers(), n, err)
		}
		wc := newConn(c)
		env, err := wc.recv()
		if err != nil || env.Kind != KindHello {
			wc.close()
			return fmt.Errorf("rpc: bad hello from %s: %v", c.RemoteAddr(), err)
		}
		m.mu.Lock()
		id := len(m.workers)
		m.workers = append(m.workers, wc)
		m.mu.Unlock()
		m.wg.Add(1)
		go m.readLoop(id, wc)
	}
	return nil
}

// readLoop pumps one worker's results into the shared channel until the
// connection drops or the master shuts down.
func (m *Master) readLoop(id int, wc *conn) {
	defer m.wg.Done()
	for {
		env, err := wc.recv()
		if err != nil {
			if m.isClosing() {
				return // orderly shutdown: the close raced the read, by design
			}
			select {
			case m.errs <- fmt.Errorf("rpc: worker %d: %w", id, err):
			default:
			}
			return
		}
		if env.Kind == KindResult && env.Result != nil {
			env.Result.Worker = id
			select {
			case m.results <- env.Result:
			case <-m.quit:
				return
			}
		}
	}
}

func (m *Master) isClosing() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closing
}

// NumWorkers returns the connected worker count.
func (m *Master) NumWorkers() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.workers)
}

// conns returns the current worker connections. The slice is append-only
// (WaitForWorkers only ever appends under the lock), so callers may
// iterate the length captured here but must not assume later growth is
// invisible.
func (m *Master) conns() []*conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workers
}

// DistributePartitions ships phase p's coded partitions (partition w to
// worker w). This is the one-time setup cost of coded computing.
func (m *Master) DistributePartitions(phase int, enc *coding.EncodedMatrix) error {
	workers := m.conns()
	if len(enc.Parts) != len(workers) {
		return fmt.Errorf("rpc: %d partitions for %d workers", len(enc.Parts), len(workers))
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(workers))
	for w, wc := range workers {
		wg.Add(1)
		go func(w int, wc *conn) {
			defer wg.Done()
			part := enc.Parts[w]
			rows, cols := part.Dims()
			errCh <- wc.send(&Envelope{Kind: KindPartition, Partition: &Partition{
				Phase: phase, Rows: rows, Cols: cols, Data: part.Data(),
			}})
		}(w, wc)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	m.mu.Lock()
	m.blockRows[phase] = enc.BlockRows
	m.mu.Unlock()
	return nil
}

// RoundStats reports a round's real-time measurements.
type RoundStats struct {
	// ResponseTime[w] is worker w's wall-clock response time (0 if it had
	// no assignment or timed out before responding).
	ResponseTime []time.Duration
	// AssignedRows[w] mirrors the plan (plus reassignments).
	AssignedRows []int
	// Reassigned counts rows re-executed after the timeout fired.
	Reassigned int
	// TimedOut lists workers whose results were abandoned.
	TimedOut []int
}

// roundWorkspace is the master's reusable per-round gather state:
// coverage counters, a per-(worker,row) delivery bitmap that makes
// duplicate deliveries idempotent, the partial structs handed to the
// decoder, response bookkeeping, and reassignment scratch. One warm
// workspace makes the steady-state gather path allocation-free (the gob
// layer's own decode allocations are the network's cost, not the
// round's).
type roundWorkspace struct {
	stats RoundStats

	n, k, blockRows int
	needed          int // rows still below coverage k
	nResponded      int

	cov        []int  // per-row coverage by distinct workers
	coveredBy  []bool // n×blockRows: worker w delivered (or was assigned) row r
	partialSeq []coding.Partial
	nPartials  int
	partials   []*coding.Partial
	responded  []bool
	respTimes  []time.Duration

	// Reassignment scratch, grown lazily on the first timeout.
	extraMark   []bool // n×blockRows: row r reassigned to worker w this round
	extraRows   []int
	extraRanges [][]coding.Range
}

// begin resets the workspace for a round of n workers over blockRows-row
// partitions with decode threshold k.
func (ws *roundWorkspace) begin(n, blockRows, k int) {
	ws.n, ws.k, ws.blockRows = n, k, blockRows
	ws.needed = blockRows
	ws.nResponded = 0
	ws.nPartials = 0

	if cap(ws.stats.ResponseTime) < n {
		ws.stats.ResponseTime = make([]time.Duration, n)
	}
	ws.stats.ResponseTime = ws.stats.ResponseTime[:n]
	for i := range ws.stats.ResponseTime {
		ws.stats.ResponseTime[i] = 0
	}
	ws.stats.AssignedRows = kernel.GrowInts(ws.stats.AssignedRows, n)
	for i := range ws.stats.AssignedRows {
		ws.stats.AssignedRows[i] = 0
	}
	ws.stats.Reassigned = 0
	ws.stats.TimedOut = ws.stats.TimedOut[:0]

	ws.cov = kernel.GrowInts(ws.cov, blockRows)
	for i := range ws.cov {
		ws.cov[i] = 0
	}
	if cap(ws.coveredBy) < n*blockRows {
		ws.coveredBy = make([]bool, n*blockRows)
	}
	ws.coveredBy = ws.coveredBy[:n*blockRows]
	for i := range ws.coveredBy {
		ws.coveredBy[i] = false
	}
	// Each worker sends at most one result per Work message, and a round
	// sends at most one original plus one reassignment message per
	// worker, so 2n partial structs cover any round; a misbehaving
	// worker's surplus falls back to allocation.
	if cap(ws.partialSeq) < 2*n {
		ws.partialSeq = make([]coding.Partial, 2*n)
	}
	ws.partialSeq = ws.partialSeq[:2*n]
	ws.partials = ws.partials[:0]
	if cap(ws.responded) < n {
		ws.responded = make([]bool, n)
	}
	ws.responded = ws.responded[:n]
	for i := range ws.responded {
		ws.responded[i] = false
	}
	ws.respTimes = ws.respTimes[:0]
}

// addResult folds one worker result into the round: it wraps the values
// as a decoder partial and advances per-row coverage. Coverage counts
// each (worker, row) pair once, so duplicate deliveries — a slow worker's
// late original overlapping its reassigned rows, or a buggy worker
// re-sending ranges — can never inflate coverage past what the decoder
// will actually find.
func (ws *roundWorkspace) addResult(r *Result, elapsed time.Duration) error {
	if r.Worker < 0 || r.Worker >= ws.n {
		return fmt.Errorf("rpc: result from unknown worker %d", r.Worker)
	}
	for _, rg := range r.Ranges {
		if rg.Lo < 0 || rg.Hi > ws.blockRows || rg.Lo > rg.Hi {
			return fmt.Errorf("rpc: worker %d result range [%d,%d) outside [0,%d)", r.Worker, rg.Lo, rg.Hi, ws.blockRows)
		}
	}
	var p *coding.Partial
	if ws.nPartials < len(ws.partialSeq) {
		p = &ws.partialSeq[ws.nPartials]
	} else {
		p = &coding.Partial{}
	}
	ws.nPartials++
	p.Worker = r.Worker
	p.RowWidth = 1
	p.Ranges = r.Ranges
	p.Values = r.Values
	ws.partials = append(ws.partials, p)
	if !ws.responded[r.Worker] {
		ws.responded[r.Worker] = true
		ws.nResponded++
		ws.stats.ResponseTime[r.Worker] = elapsed
		ws.respTimes = append(ws.respTimes, elapsed)
	}
	base := r.Worker * ws.blockRows
	for _, rg := range r.Ranges {
		for row := rg.Lo; row < rg.Hi; row++ {
			if ws.coveredBy[base+row] {
				continue // duplicate (worker, row): coverage already counted
			}
			ws.coveredBy[base+row] = true
			ws.cov[row]++
			if ws.cov[row] == ws.k {
				ws.needed--
			}
		}
	}
	return nil
}

// PlanRound builds the next round's plan from the master's double-
// buffered plan storage: the previous round's plan stays intact (it may
// still be referenced by a draining round) while the new one is written
// into the other buffer. Steady-state planning allocates nothing.
func (m *Master) PlanRound(s sched.Strategy, speeds []float64) (*sched.Plan, error) {
	return m.planBuf.Next(s, speeds)
}

// RunRound sends the plan's assignments for (iter, phase), gathers
// partials until per-row coverage k is met, applying the §4.3 timeout:
// once the first k workers respond, the rest get timeoutFrac of the mean
// response time before their pending rows are reassigned to finished
// workers. It returns the collected partials (decode with the encoder)
// and the round's stats. With ReuseRound set, both alias the master's
// round workspace and are valid until the next RunRound.
func (m *Master) RunRound(iter, phase int, x []float64, plan *sched.Plan, k int, timeoutFrac float64) ([]*coding.Partial, *RoundStats, error) {
	m.mu.Lock()
	blockRows := m.blockRows[phase]
	m.mu.Unlock()
	if blockRows == 0 {
		return nil, nil, fmt.Errorf("rpc: phase %d has no distributed partitions", phase)
	}
	workers := m.conns()
	n := len(workers)
	ws := &m.round
	ws.begin(n, blockRows, k)
	start := time.Now()
	active := 0
	for w, wc := range workers {
		ranges := plan.Assignments[w]
		rows := coding.TotalRows(ranges)
		if rows == 0 {
			continue
		}
		ws.stats.AssignedRows[w] = rows
		if err := wc.send(&Envelope{Kind: KindWork, Work: &Work{
			Iter: iter, Phase: phase, X: x, Ranges: ranges,
		}}); err != nil {
			return nil, nil, fmt.Errorf("rpc: send work to %d: %w", w, err)
		}
		active++
	}
	if active < k {
		return nil, nil, fmt.Errorf("rpc: plan activates %d workers, decoding needs %d", active, k)
	}

	// Phase 1: wait for the first k responders (coded computing cannot
	// decode with fewer).
	hardDeadline := time.After(30 * time.Second)
	for ws.nResponded < k {
		select {
		case r := <-m.results:
			if r.Iter != iter || r.Phase != phase {
				continue // stale result from a reassigned/abandoned round
			}
			if err := ws.addResult(r, time.Since(start)); err != nil {
				return nil, nil, err
			}
		case err := <-m.errs:
			return nil, nil, err
		case <-m.quit:
			return nil, nil, fmt.Errorf("rpc: master shut down during round (%d,%d)", iter, phase)
		case <-hardDeadline:
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) stalled waiting for %d responders", iter, phase, k)
		}
	}
	if ws.needed == 0 {
		return m.finishRound(ws)
	}

	// Phase 2: grace window = timeoutFrac × mean response of the first k.
	sortDurations(ws.respTimes)
	mean := time.Duration(0)
	for i := 0; i < k && i < len(ws.respTimes); i++ {
		mean += ws.respTimes[i]
	}
	mean /= time.Duration(k)
	grace := time.Duration(float64(mean) * timeoutFrac)
	graceTimer := time.After(grace)
	for ws.needed > 0 {
		select {
		case r := <-m.results:
			if r.Iter != iter || r.Phase != phase {
				continue
			}
			if err := ws.addResult(r, time.Since(start)); err != nil {
				return nil, nil, err
			}
		case err := <-m.errs:
			return nil, nil, err
		case <-m.quit:
			return nil, nil, fmt.Errorf("rpc: master shut down during round (%d,%d)", iter, phase)
		case <-graceTimer:
			// Timeout fired: reassign pending coverage to responders.
			if err := m.reassign(ws, iter, phase, x, plan); err != nil {
				return nil, nil, err
			}
			graceTimer = nil
			// Collect until coverage completes (reassigned results arrive
			// tagged with the same iter/phase).
			for ws.needed > 0 {
				select {
				case r := <-m.results:
					if r.Iter != iter || r.Phase != phase {
						continue
					}
					if err := ws.addResult(r, time.Since(start)); err != nil {
						return nil, nil, err
					}
				case err := <-m.errs:
					return nil, nil, err
				case <-m.quit:
					return nil, nil, fmt.Errorf("rpc: master shut down during round (%d,%d)", iter, phase)
				case <-hardDeadline:
					return nil, nil, fmt.Errorf("rpc: round (%d,%d) stalled after reassignment", iter, phase)
				}
			}
		case <-hardDeadline:
			return nil, nil, fmt.Errorf("rpc: round (%d,%d) stalled", iter, phase)
		}
	}
	return m.finishRound(ws)
}

// finishRound hands the gathered round to the caller: workspace-backed
// when ReuseRound is set, deep-copied bookkeeping otherwise (values still
// alias the per-message receive buffers, which nothing overwrites).
func (m *Master) finishRound(ws *roundWorkspace) ([]*coding.Partial, *RoundStats, error) {
	if m.cfg.ReuseRound {
		return ws.partials, &ws.stats, nil
	}
	partials := make([]*coding.Partial, len(ws.partials))
	for i, p := range ws.partials {
		q := *p
		partials[i] = &q
	}
	stats := &RoundStats{
		ResponseTime: append([]time.Duration(nil), ws.stats.ResponseTime...),
		AssignedRows: append([]int(nil), ws.stats.AssignedRows...),
		Reassigned:   ws.stats.Reassigned,
		TimedOut:     append([]int(nil), ws.stats.TimedOut...),
	}
	return partials, stats, nil
}

// reassign sends uncovered rows to responders that do not already cover
// them (delivered rows and rows just reassigned both disqualify), filling
// stats.TimedOut and the per-worker extra accounting.
func (m *Master) reassign(ws *roundWorkspace, iter, phase int, x []float64, plan *sched.Plan) error {
	for w := range plan.Assignments {
		if ws.stats.AssignedRows[w] > 0 && !ws.responded[w] {
			ws.stats.TimedOut = append(ws.stats.TimedOut, w)
		}
	}
	// Lazily sized: only rounds that actually time out pay for this.
	if cap(ws.extraMark) < ws.n*ws.blockRows {
		ws.extraMark = make([]bool, ws.n*ws.blockRows)
	}
	ws.extraMark = ws.extraMark[:ws.n*ws.blockRows]
	for i := range ws.extraMark {
		ws.extraMark[i] = false
	}
	ws.extraRows = kernel.GrowInts(ws.extraRows, ws.n)
	for i := range ws.extraRows {
		ws.extraRows[i] = 0
	}
	if cap(ws.extraRanges) < ws.n {
		ws.extraRanges = make([][]coding.Range, ws.n)
	}
	ws.extraRanges = ws.extraRanges[:ws.n]
	for i := range ws.extraRanges {
		ws.extraRanges[i] = ws.extraRanges[i][:0]
	}
	for r := 0; r < ws.blockRows; r++ {
		for c := ws.cov[r]; c < ws.k; c++ {
			// Least-loaded responder that can still add coverage for r.
			best := -1
			for w := 0; w < ws.n; w++ {
				if !ws.responded[w] || ws.coveredBy[w*ws.blockRows+r] || ws.extraMark[w*ws.blockRows+r] {
					continue
				}
				if best < 0 || ws.extraRows[w] < ws.extraRows[best] {
					best = w
				}
			}
			if best < 0 {
				return fmt.Errorf("rpc: cannot re-cover row %d", r)
			}
			ws.extraMark[best*ws.blockRows+r] = true
			ws.extraRows[best]++
			// Rows are visited in ascending order, so per-worker ranges
			// stay normalized by construction.
			rs := ws.extraRanges[best]
			if len(rs) > 0 && rs[len(rs)-1].Hi == r {
				rs[len(rs)-1].Hi = r + 1
			} else {
				rs = append(rs, coding.Range{Lo: r, Hi: r + 1})
			}
			ws.extraRanges[best] = rs
		}
	}
	workers := m.conns()
	for w, ranges := range ws.extraRanges {
		if len(ranges) == 0 {
			continue
		}
		if err := workers[w].send(&Envelope{Kind: KindWork, Work: &Work{
			Iter: iter, Phase: phase, X: x, Ranges: ranges,
		}}); err != nil {
			return err
		}
		ws.stats.AssignedRows[w] += ws.extraRows[w]
		ws.stats.Reassigned += ws.extraRows[w]
	}
	return nil
}

// sortDurations is an ascending insertion sort (short slices, no closure
// allocation).
func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// Shutdown tells all workers to exit, closes every connection and the
// listener, and waits for the reader goroutines to drain. It is
// idempotent and safe to call while reads are in flight: readers observe
// the closing flag and exit silently instead of reporting the torn
// connection as a worker failure.
func (m *Master) Shutdown() {
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		return
	}
	m.closing = true
	workers := append([]*conn(nil), m.workers...)
	m.mu.Unlock()
	close(m.quit) // unblock readers parked on a full results channel
	for _, wc := range workers {
		wc.send(&Envelope{Kind: KindShutdown}) //nolint:errcheck // best effort
		wc.close()
	}
	m.ln.Close()
	m.wg.Wait()
}
