//go:build race

package rpc

// raceEnabled flags the race detector: allocation-regression tests skip
// under it, because the detector's sync.Pool instrumentation deliberately
// drops pooled items (forcing reallocation) and its own bookkeeping
// allocates — neither reflects the production allocation profile.
const raceEnabled = true
