package rpc

import (
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/workloads"
)

// TestTCPGradientDescentEndToEnd runs the full §6 pipeline over real TCP:
// two coded phases (X and Xᵀ), S2C2 plans from speeds observed out of
// real response times, and gradient descent to a verified model — the
// same loop cmd/s2c2-master drives.
func TestTCPGradientDescentEndToEnd(t *testing.T) {
	const (
		n, k  = 4, 3
		iters = 6
	)
	m := startCluster(t, n, map[int]float64{3: 10})

	data := workloads.SyntheticClassification(240, 24, 9)
	lr := &workloads.LogisticRegression{Data: data, LR: 0.5, Lambda: 1e-4, Tol: 0}
	matrices := lr.Matrices()

	code, err := coding.NewMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	encs := make([]*coding.EncodedMatrix, len(matrices))
	strategies := make([]*sched.GeneralS2C2, len(matrices))
	for p, mtx := range matrices {
		encs[p] = code.Encode(mtx)
		strategies[p] = &sched.GeneralS2C2{N: n, K: k, BlockRows: encs[p].BlockRows}
		if err := m.DistributePartitions(p, encs[p]); err != nil {
			t.Fatal(err)
		}
	}

	speeds := []float64{1, 1, 1, 1}
	state := lr.Init()
	sawTimeout := false
	for iter := 0; iter < iters; iter++ {
		outputs := make([][]float64, len(matrices))
		for p := range matrices {
			in := lr.PhaseInput(p, state, outputs[:p])
			plan, err := m.PlanRound(strategies[p], speeds)
			if err != nil {
				t.Fatal(err)
			}
			partials, stats, err := m.RunRound(iter, p, in, plan, k, 0.15)
			if err != nil {
				t.Fatal(err)
			}
			out, err := encs[p].DecodeMatVec(partials)
			if err != nil {
				t.Fatal(err)
			}
			outputs[p] = out
			if len(stats.TimedOut) > 0 {
				sawTimeout = true
			}
			for w := 0; w < n; w++ {
				if stats.ResponseTime[w] > 0 && stats.AssignedRows[w] > 0 {
					speeds[w] = float64(stats.AssignedRows[w]) / stats.ResponseTime[w].Seconds()
				}
			}
		}
		state, _ = lr.Update(state, outputs)
	}

	// The model must match a purely local run exactly (coded GD computes
	// the same products).
	local, _ := workloads.RunLocal(
		&workloads.LogisticRegression{Data: data, LR: 0.5, Lambda: 1e-4, Tol: 0}, iters)
	if !mat.VecApproxEqual(state, local, 1e-6) {
		t.Fatal("TCP gradient descent diverged from local ground truth")
	}
	if !sawTimeout {
		t.Log("note: the 10x straggler never tripped the timeout in this run (tight loop timing); acceptable")
	}
	// After observing real response times, the straggler's share must have
	// shrunk well below an equal split.
	plan, err := strategies[0].Plan(speeds)
	if err != nil {
		t.Fatal(err)
	}
	equal := encs[0].BlockRows * k / n
	if plan.RowsFor(3) >= equal {
		t.Fatalf("straggler still assigned %d rows (equal split %d) after speed observation",
			plan.RowsFor(3), equal)
	}
}

func TestTCPStaleResultsIgnored(t *testing.T) {
	// A late result from an abandoned round must not corrupt later rounds.
	n, k := 3, 2
	m := startCluster(t, n, nil)
	a := mat.NewFromRows([][]float64{{1, 0}, {0, 1}, {2, 1}, {1, 2}})
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, _ := strat.Plan([]float64{1, 1, 1})
	for iter := 0; iter < 5; iter++ {
		x := []float64{float64(iter + 1), float64(-iter)}
		partials, _, err := m.RunRound(iter, 0, x, plan, k, 5.0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := enc.DecodeMatVec(partials)
		if err != nil {
			t.Fatal(err)
		}
		want := mat.MatVec(a, x)
		if !mat.VecApproxEqual(got, want, 1e-9) {
			t.Fatalf("iteration %d decode mismatch (stale result leakage?)", iter)
		}
	}
}

func TestTCPWorkerShutdown(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		w, err := NewWorker(WorkerConfig{MasterAddr: m.Addr()})
		if err != nil {
			done <- err
			return
		}
		done <- w.Run()
	}()
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	m.Shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker should exit cleanly on shutdown, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit after shutdown")
	}
}

func TestRunRoundRequiresPartitions(t *testing.T) {
	m := startCluster(t, 2, nil)
	plan := &sched.Plan{BlockRows: 4, Assignments: [][]coding.Range{{{Lo: 0, Hi: 4}}, {{Lo: 0, Hi: 4}}}}
	if _, _, err := m.RunRound(0, 9, []float64{1}, plan, 2, 1.0); err == nil {
		t.Fatal("round on an undistributed phase must fail")
	}
}

func TestRunRoundRequiresEnoughActiveWorkers(t *testing.T) {
	m := startCluster(t, 3, nil)
	a := mat.NewFromRows([][]float64{{1}, {2}, {3}, {4}})
	code, _ := coding.NewMDSCode(3, 2)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	// A plan that only activates one worker cannot decode with k=2.
	plan := &sched.Plan{BlockRows: enc.BlockRows, Assignments: [][]coding.Range{
		{{Lo: 0, Hi: enc.BlockRows}}, nil, nil,
	}}
	if _, _, err := m.RunRound(0, 0, []float64{1}, plan, 2, 1.0); err == nil {
		t.Fatal("must reject plans with fewer than k active workers")
	}
}
