// Package rpc is the real-network runtime of the system: a master and
// worker speaking a gob-encoded protocol over TCP (stdlib net only). It
// mirrors the paper's implementation (§6): the master encodes and
// distributes coded partitions once, then each iteration broadcasts the
// input vector together with per-worker S2C2 work assignments; workers run
// the coded kernel over their assigned row ranges and stream results back;
// the master measures per-worker response times (the predictor's input),
// applies the §4.3 timeout, reassigns pending coverage, and decodes.
//
// Workers accept an artificial slowdown factor so straggler scenarios are
// reproducible on a laptop (the controlled-cluster methodology of §6.5).
package rpc

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"github.com/coded-computing/s2c2/internal/coding"
)

// Kind discriminates protocol envelopes.
type Kind int

// Protocol message kinds.
const (
	KindHello Kind = iota + 1
	KindPartition
	KindWork
	KindResult
	KindShutdown
)

// Hello is the worker's first message after dialing.
type Hello struct {
	// Slowdown is the worker's self-reported artificial slowdown factor
	// (1 = full speed); used only for logging/experiments.
	Slowdown float64
}

// Partition carries one phase's coded partition to a worker.
type Partition struct {
	Phase int
	Rows  int
	Cols  int
	Data  []float64
}

// Work assigns row ranges for one round.
type Work struct {
	Iter   int
	Phase  int
	X      []float64
	Ranges []coding.Range
}

// Result returns the computed rows.
type Result struct {
	Iter         int
	Phase        int
	Worker       int
	Ranges       []coding.Range
	Values       []float64
	ComputeNanos int64
}

// Envelope is the single wire type; exactly one payload field is set,
// per Kind.
type Envelope struct {
	Kind      Kind
	Hello     *Hello
	Partition *Partition
	Work      *Work
	Result    *Result
}

// conn wraps a TCP connection with gob codecs and a write lock. close is
// idempotent, so a shutdown path and an error path may both close it.
type conn struct {
	c         net.Conn
	enc       *gob.Encoder
	dec       *gob.Decoder
	mu        sync.Mutex
	closeOnce sync.Once
	closeErr  error
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (c *conn) send(e *Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(e)
}

func (c *conn) recv() (*Envelope, error) {
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, err
	}
	if e.Kind == 0 {
		return nil, fmt.Errorf("rpc: envelope missing kind")
	}
	return &e, nil
}

func (c *conn) close() error {
	c.closeOnce.Do(func() { c.closeErr = c.c.Close() })
	return c.closeErr
}
