// Package rpc is the real-network runtime of the system: a master and
// worker speaking a framed binary protocol over TCP (stdlib net only). It
// mirrors the paper's implementation (§6): the master encodes the data
// once and streams coded partitions to the workers in bounded, credit-
// controlled chunks; each iteration broadcasts the input vector together
// with per-worker S2C2 work assignments; workers run the coded kernel over
// their assigned row ranges and stream results back; the master measures
// per-worker response times (the predictor's input), applies the §4.3
// timeout, reassigns pending coverage, and decodes.
//
// Transport: every connection opens with the wire-package handshake. The
// default encoding (wire.VersionWire) is the length-prefixed binary frame
// format of internal/wire — per-connection send/receive buffers are reused
// across messages, payloads decode straight into caller-owned storage, and
// the steady-state network round allocates nothing on the master. The
// legacy encoding/gob envelope stream (wire.VersionGob) remains available
// behind the handshake version byte as a compatibility fallback; a single
// master serves both kinds of worker at once.
//
// Workers accept an artificial slowdown factor so straggler scenarios are
// reproducible on a laptop (the controlled-cluster methodology of §6.5).
package rpc

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/wire"
)

// Kind discriminates protocol messages.
type Kind int

// Protocol message kinds. The first five keep their historical values so
// the gob envelope encoding stays stable; note that cross-version
// compatibility is governed by the handshake (pre-handshake peers are
// rejected at admit), not by these values. The GF kinds are the exact
// GF(2³¹−1) mirror of the float64 round messages. They are an in-version
// extension of VersionWire/VersionGob, not a new handshake version: the
// handshake gates the *framing*, not the message set, so a peer built
// before the GF kinds existed rejects the first GF frame as unknown and
// drops the connection (surfacing as a worker error / transfer failure
// on the master). Masters therefore only drive the GF path against
// workers from the same build generation — acceptable while both
// binaries ship from one tree; a capability bit in the hello would be
// the upgrade path if that ever loosens.
const (
	KindHello     Kind = iota + 1
	KindPartition      // monolithic partition (gob fallback only)
	KindWork
	KindResult
	KindShutdown
	KindPartitionStart   // begin a streamed partition (wire transport)
	KindPartitionChunk   // one row band of a streamed partition
	KindPartitionAck     // chunk stored; returns one flow-control credit
	KindGFPartition      // monolithic GF partition (gob fallback only)
	KindGFWork           // field-element row assignment
	KindGFResult         // computed field-element rows
	KindGFPartitionStart // begin a streamed GF partition (wire transport)
	KindGFPartitionChunk // one row band of field elements
	KindPing             // master → worker liveness probe
	KindPong             // worker → master liveness answer
)

// Hello is the worker's first message after the transport handshake.
type Hello struct {
	// Slowdown is the worker's self-reported artificial slowdown factor
	// (1 = full speed); used only for logging/experiments.
	Slowdown float64
}

// Partition carries one phase's whole coded partition in a single message.
// Only the gob fallback ships partitions this way; the wire transport
// streams PartitionStart + PartitionChunk instead so peak transport memory
// is O(chunk), not O(partition).
type Partition struct {
	Phase int
	Rows  int
	Cols  int
	Data  []float64
}

// PartitionStart announces a streamed partition: the worker allocates the
// Rows×Cols destination matrix and expects chunks covering every row.
// Seq identifies this transfer; chunks carry it and acks echo it, so
// credits from an aborted earlier transfer can never be mistaken for this
// one's (they would otherwise inflate the flow-control window or fail a
// healthy later transfer).
type PartitionStart struct {
	Phase     int
	Seq       int
	Rows      int
	Cols      int
	ChunkRows int // row granularity the master will stream at (informational)
}

// PartitionChunk carries rows [Lo, Hi) of a streamed partition. The row
// data stays in the receive buffer until the worker decodes it straight
// into the partition matrix (Msg.ChunkInto). Only the wire transport
// streams chunks; the gob fallback ships partitions monolithically.
type PartitionChunk struct {
	Phase  int
	Seq    int
	Lo, Hi int
}

// PartitionAck acknowledges one stored chunk, returning a flow-control
// credit to the master's streaming window for transfer (Phase, Seq).
type PartitionAck struct {
	Phase int
	Seq   int
}

// Work assigns row ranges for one round. W is the round's batch width:
// the number of input vectors concatenated in X (x_l at
// X[l*cols : (l+1)*cols]). W ≤ 1 is the classic single-x round; batched
// rounds (W > 1) ship as a distinct frame type on the wire transport so
// the single-x encoding stays byte-identical across versions. recv
// normalizes W to 1 on single-x messages.
//
// Job names the serving job the round belongs to. Job 0 — the master's
// default job — travels on the pre-serving frame types, byte-identical to
// the pre-job encoding; other jobs use the TypeJob* frames, which always
// carry both the job id and the width. recv normalizes Job to 0 on
// untagged messages.
type Work struct {
	Job    int
	Iter   int
	Phase  int
	W      int
	X      []float64
	Ranges []coding.Range
}

// Result returns the computed rows. A result larger than the worker's
// MaxResultRows arrives as several messages; every segment but the last
// sets Partial, so the master counts the worker as responded — and
// records its response time for the §4.3 timeout and the speed predictor
// — only when the full result has been delivered.
//
// RowWidth is the values-per-row width: 1 for single-x rounds, the
// round's W for batched rounds, where Values is row-major RowWidth-wide
// (lane l of covered row r at Values[r*RowWidth+l]). recv normalizes it
// to 1 on single-x messages.
//
// Job echoes the Work's job id so the master's read loop can route the
// result to the owning job's round; it is 0 (and normalized to 0 by recv)
// on untagged traffic.
type Result struct {
	Job          int
	Iter         int
	Phase        int
	Worker       int
	Partial      bool
	RowWidth     int
	Ranges       []coding.Range
	Values       []float64
	ComputeNanos int64
}

// GFPartition carries one phase's whole coded GF(2³¹−1) partition in a
// single message (gob fallback only; the wire transport streams
// GFPartitionStart + GFPartitionChunk instead).
type GFPartition struct {
	Phase int
	Rows  int
	Cols  int
	Data  []gf.Elem
}

// GFWork assigns field-element row ranges for one exact round. X is the
// round's input vector over GF(2³¹−1) — or, when W > 1, the round's W
// input vectors concatenated (the batched mirror of Work.W). Job follows
// the same tagging contract as Work.Job.
type GFWork struct {
	Job    int
	Iter   int
	Phase  int
	W      int
	X      []gf.Elem
	Ranges []coding.Range
}

// GFResult returns the computed field-element rows — the exact mirror of
// Result, including the split-result Partial contract, the RowWidth
// batched-values layout, and the Job routing tag.
type GFResult struct {
	Job          int
	Iter         int
	Phase        int
	Worker       int
	Partial      bool
	RowWidth     int
	Ranges       []coding.Range
	Values       []gf.Elem
	ComputeNanos int64
}

// Envelope is the gob fallback's single wire type; exactly one payload
// field is set, per Kind. The wire transport does not use it.
type Envelope struct {
	Kind        Kind
	Hello       *Hello
	Partition   *Partition
	Work        *Work
	Result      *Result
	GFPartition *GFPartition
	GFWork      *GFWork
	GFResult    *GFResult
}

// Msg is a reusable receive slot: transport.recv decodes the next message
// into it, overwriting slice fields in place (capacity is retained across
// messages). A message that must outlive the next recv — a Work handed to
// a concurrent handler, a Result queued for the round — is transferred out
// by swapping structs with a pooled instance, which moves slice ownership
// without copying.
type Msg struct {
	Kind        Kind
	Hello       Hello
	Partition   Partition
	PartStart   PartitionStart
	PartChunk   PartitionChunk
	PartAck     PartitionAck
	Work        Work
	Result      Result
	GFPartition GFPartition
	GFWork      GFWork
	GFResult    GFResult

	// chunk holds the undecoded row payload of a wire-transport
	// PartitionChunk or GFPartitionChunk until ChunkInto/GFChunkInto
	// drains it into the destination rows. (GF chunks reuse the PartStart/
	// PartChunk header structs; the Kind disambiguates.)
	chunk *wire.Payload
}

// ChunkInto decodes the pending partition chunk's row data into dst, the
// caller-owned matrix rows [Lo, Hi) — the only copy the data makes after
// the socket read. It drains the chunk: a second call (or a call on a
// message that is not a partition chunk) is an error.
//
//s2c2:noalloc
func (m *Msg) ChunkInto(dst []float64) error {
	if m.chunk == nil {
		return fmt.Errorf("rpc: no pending chunk payload")
	}
	p := m.chunk
	m.chunk = nil
	return p.Float64sInto(dst)
}

// GFChunkInto is ChunkInto for a GF partition chunk: the pending uint32
// payload decodes straight into the destination field-element rows.
//
//s2c2:noalloc
func (m *Msg) GFChunkInto(dst []gf.Elem) error {
	if m.chunk == nil {
		return fmt.Errorf("rpc: no pending chunk payload")
	}
	p := m.chunk
	m.chunk = nil
	return p.Uint32sInto(gf.AsUint32s(dst))
}

// transport is the message layer spoken over one connection. Sends may be
// called from multiple goroutines (implementations serialize internally);
// recv must only be called from the connection's single reader goroutine.
type transport interface {
	sendHello(h *Hello) error
	sendWork(w *Work) error
	sendResult(r *Result) error
	sendShutdown() error
	sendPartition(p *Partition) error
	sendPartitionStart(p *PartitionStart) error
	sendPartitionChunk(phase, seq, lo, hi int, data []float64) error
	sendPartitionAck(phase, seq int) error
	sendGFWork(w *GFWork) error
	sendGFResult(r *GFResult) error
	sendGFPartition(p *GFPartition) error
	sendGFPartitionStart(p *PartitionStart) error
	sendGFPartitionChunk(phase, seq, lo, hi int, data []gf.Elem) error
	// sendPing/sendPong are the heartbeat pair: the master probes
	// liveness (registered and parked connections alike), the worker
	// answers. Both frames are empty-bodied on both transports, so the
	// heartbeat costs a few bytes per interval.
	sendPing() error
	sendPong() error
	// streamsPartitions reports whether partitions ship as
	// PartitionStart/Chunk streams (true) or as one monolithic
	// Partition message (false) — the capability the master's
	// distribution path dispatches on.
	streamsPartitions() bool
	recv(m *Msg) error
	close() error
}

// maxRPCFrame is the frame-body cap the rpc transport accepts — larger
// than wire.DefaultMaxFrame so a single partition row, work broadcast, or
// result segment of an extremely wide matrix (up to 128 Mi float64s)
// still fits one frame, while corrupt or hostile length prefixes are
// still rejected before any buffer is sized to them.
const maxRPCFrame = 1 << 30

// newTransport wraps an accepted/dialed connection in the transport
// selected by the handshake version byte. writeTimeout bounds every frame
// write: a peer that stops reading (frozen process, full socket buffer)
// makes sends fail with a deadline error instead of blocking forever
// while holding the connection's write mutex — which would otherwise
// wedge rounds, partition transfers, and even Shutdown's best-effort
// goodbye.
func newTransport(c net.Conn, version byte, writeTimeout time.Duration) (transport, error) {
	switch version {
	case wire.VersionWire:
		return newWireConn(c, writeTimeout), nil
	case wire.VersionGob:
		return newGobConn(c, writeTimeout), nil
	default:
		return nil, fmt.Errorf("rpc: unsupported protocol version %d", version)
	}
}

// ---------------------------------------------------------------------------
// wire transport

// wireConn frames messages with internal/wire. One Writer (guarded by mu)
// and one Reader per connection; both reuse their buffers across messages,
// so a steady-state round performs no per-message allocation.
type wireConn struct {
	c            net.Conn
	br           *bufio.Reader
	writeTimeout time.Duration

	mu sync.Mutex // serializes frame writes
	w  *wire.Writer
	r  *wire.Reader

	closeOnce sync.Once
	closeErr  error
}

func newWireConn(c net.Conn, writeTimeout time.Duration) *wireConn {
	br := bufio.NewReaderSize(c, 64<<10)
	r := wire.NewReader(br)
	r.SetMaxFrame(maxRPCFrame)
	return &wireConn{c: c, br: br, writeTimeout: writeTimeout, w: wire.NewWriter(c), r: r}
}

// writeDeadlineFor scales a per-send write deadline with the payload —
// the base timeout plus one second per MiB — so a large frame on a slow
// link gets transfer time proportional to its size while a peer that has
// stopped reading entirely is still detected within the base timeout.
//
//s2c2:noalloc
func writeDeadlineFor(base time.Duration, payloadBytes int) time.Duration {
	return base + time.Duration(payloadBytes>>20)*time.Second
}

// end finishes the frame under construction and flushes it to the socket
// under the write deadline. A deadline failure leaves a torn frame on the
// stream, so the error is fatal for the connection (callers abort and the
// peer's reader fails on the truncation).
//
//s2c2:noalloc
func (c *wireConn) end() error {
	if c.c != nil && c.writeTimeout > 0 {
		d := writeDeadlineFor(c.writeTimeout, c.w.PendingBytes())
		c.c.SetWriteDeadline(time.Now().Add(d)) //nolint:errcheck
	}
	return c.w.End()
}

func (c *wireConn) sendHello(h *Hello) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Begin(wire.TypeHello)
	c.w.Float64(h.Slowdown)
	return c.end()
}

// sendWork frames a single-x assignment as TypeWork — byte-identical to
// the pre-batch encoding — and a batched one (W > 1) as TypeWorkBatch
// with the width field ahead of the concatenated x-vectors. A non-default
// job's assignment (Job != 0) travels as TypeJobWork, which carries the
// job id and the width at every width, so job 0's traffic never changes
// shape for old workers.
//
//s2c2:noalloc
func (c *wireConn) sendWork(wk *Work) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wk.Job != 0 {
		c.w.Begin(wire.TypeJobWork)
		c.w.Int(wk.Job)
		c.w.Int(wk.Iter)
		c.w.Int(wk.Phase)
		c.w.Int(wk.W)
		c.w.Float64s(wk.X)
		writeRanges(c.w, wk.Ranges)
		return c.end()
	}
	if wk.W > 1 {
		c.w.Begin(wire.TypeWorkBatch)
		c.w.Int(wk.Iter)
		c.w.Int(wk.Phase)
		c.w.Int(wk.W)
		c.w.Float64s(wk.X)
		writeRanges(c.w, wk.Ranges)
		return c.end()
	}
	c.w.Begin(wire.TypeWork)
	c.w.Int(wk.Iter)
	c.w.Int(wk.Phase)
	c.w.Float64s(wk.X)
	writeRanges(c.w, wk.Ranges)
	return c.end()
}

// sendResult frames a single-x result as TypeResult (unchanged encoding)
// and a batched one (RowWidth > 1) as TypeResultBatch with the width
// field ahead of the ranges and row-major width-wide values. A tagged
// job's result (Job != 0) echoes the job id on TypeJobResult, width field
// always present.
//
//s2c2:noalloc
func (c *wireConn) sendResult(r *Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.Job != 0 {
		c.w.Begin(wire.TypeJobResult)
		c.w.Int(r.Job)
		c.w.Int(r.Iter)
		c.w.Int(r.Phase)
		c.w.Int(r.Worker)
		if r.Partial {
			c.w.Uvarint(1)
		} else {
			c.w.Uvarint(0)
		}
		c.w.Uvarint(uint64(r.ComputeNanos))
		c.w.Int(r.RowWidth)
		writeRanges(c.w, r.Ranges)
		c.w.Float64s(r.Values)
		return c.end()
	}
	if r.RowWidth > 1 {
		c.w.Begin(wire.TypeResultBatch)
	} else {
		c.w.Begin(wire.TypeResult)
	}
	c.w.Int(r.Iter)
	c.w.Int(r.Phase)
	c.w.Int(r.Worker)
	if r.Partial {
		c.w.Uvarint(1)
	} else {
		c.w.Uvarint(0)
	}
	c.w.Uvarint(uint64(r.ComputeNanos))
	if r.RowWidth > 1 {
		c.w.Int(r.RowWidth)
	}
	writeRanges(c.w, r.Ranges)
	c.w.Float64s(r.Values)
	return c.end()
}

func (c *wireConn) sendShutdown() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Begin(wire.TypeShutdown)
	return c.end()
}

//s2c2:noalloc
func (c *wireConn) sendPing() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Begin(wire.TypePing)
	return c.end()
}

//s2c2:noalloc
func (c *wireConn) sendPong() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Begin(wire.TypePong)
	return c.end()
}

// sendPartition is the monolithic form; the wire transport streams
// partitions instead, so shipping one as a single oversized frame would
// defeat the bounded-memory design.
func (c *wireConn) sendPartition(p *Partition) error {
	return fmt.Errorf("rpc: wire transport streams partitions; use sendPartitionStart/Chunk")
}

func (c *wireConn) streamsPartitions() bool { return true }

func (c *wireConn) sendPartitionStart(p *PartitionStart) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Begin(wire.TypePartitionStart)
	c.w.Int(p.Phase)
	c.w.Int(p.Seq)
	c.w.Int(p.Rows)
	c.w.Int(p.Cols)
	c.w.Int(p.ChunkRows)
	return c.end()
}

//s2c2:noalloc
func (c *wireConn) sendPartitionChunk(phase, seq, lo, hi int, data []float64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Begin(wire.TypePartitionChunk)
	c.w.Int(phase)
	c.w.Int(seq)
	c.w.Int(lo)
	c.w.Int(hi)
	c.w.Float64s(data)
	return c.end()
}

//s2c2:noalloc
func (c *wireConn) sendPartitionAck(phase, seq int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Begin(wire.TypePartitionAck)
	c.w.Int(phase)
	c.w.Int(seq)
	return c.end()
}

//s2c2:noalloc
func (c *wireConn) sendGFWork(wk *GFWork) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if wk.Job != 0 {
		c.w.Begin(wire.TypeJobGFWork)
		c.w.Int(wk.Job)
		c.w.Int(wk.Iter)
		c.w.Int(wk.Phase)
		c.w.Int(wk.W)
		c.w.Uint32s(gf.AsUint32s(wk.X))
		writeRanges(c.w, wk.Ranges)
		return c.end()
	}
	if wk.W > 1 {
		c.w.Begin(wire.TypeGFWorkBatch)
		c.w.Int(wk.Iter)
		c.w.Int(wk.Phase)
		c.w.Int(wk.W)
		c.w.Uint32s(gf.AsUint32s(wk.X))
		writeRanges(c.w, wk.Ranges)
		return c.end()
	}
	c.w.Begin(wire.TypeGFWork)
	c.w.Int(wk.Iter)
	c.w.Int(wk.Phase)
	c.w.Uint32s(gf.AsUint32s(wk.X))
	writeRanges(c.w, wk.Ranges)
	return c.end()
}

//s2c2:noalloc
func (c *wireConn) sendGFResult(r *GFResult) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.Job != 0 {
		c.w.Begin(wire.TypeJobGFResult)
		c.w.Int(r.Job)
		c.w.Int(r.Iter)
		c.w.Int(r.Phase)
		c.w.Int(r.Worker)
		if r.Partial {
			c.w.Uvarint(1)
		} else {
			c.w.Uvarint(0)
		}
		c.w.Uvarint(uint64(r.ComputeNanos))
		c.w.Int(r.RowWidth)
		writeRanges(c.w, r.Ranges)
		c.w.Uint32s(gf.AsUint32s(r.Values))
		return c.end()
	}
	if r.RowWidth > 1 {
		c.w.Begin(wire.TypeGFResultBatch)
	} else {
		c.w.Begin(wire.TypeGFResult)
	}
	c.w.Int(r.Iter)
	c.w.Int(r.Phase)
	c.w.Int(r.Worker)
	if r.Partial {
		c.w.Uvarint(1)
	} else {
		c.w.Uvarint(0)
	}
	c.w.Uvarint(uint64(r.ComputeNanos))
	if r.RowWidth > 1 {
		c.w.Int(r.RowWidth)
	}
	writeRanges(c.w, r.Ranges)
	c.w.Uint32s(gf.AsUint32s(r.Values))
	return c.end()
}

// sendGFPartition is the monolithic form; like float64 partitions, the
// wire transport streams GF partitions instead.
func (c *wireConn) sendGFPartition(p *GFPartition) error {
	return fmt.Errorf("rpc: wire transport streams partitions; use sendGFPartitionStart/Chunk")
}

func (c *wireConn) sendGFPartitionStart(p *PartitionStart) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Begin(wire.TypeGFPartitionStart)
	c.w.Int(p.Phase)
	c.w.Int(p.Seq)
	c.w.Int(p.Rows)
	c.w.Int(p.Cols)
	c.w.Int(p.ChunkRows)
	return c.end()
}

//s2c2:noalloc
func (c *wireConn) sendGFPartitionChunk(phase, seq, lo, hi int, data []gf.Elem) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.w.Begin(wire.TypeGFPartitionChunk)
	c.w.Int(phase)
	c.w.Int(seq)
	c.w.Int(lo)
	c.w.Int(hi)
	c.w.Uint32s(gf.AsUint32s(data))
	return c.end()
}

//s2c2:noalloc
func (c *wireConn) recv(m *Msg) error {
	typ, p, err := c.r.Next()
	if err != nil {
		return err
	}
	m.chunk = nil
	switch typ {
	case wire.TypeHello:
		m.Kind = KindHello
		m.Hello.Slowdown = p.Float64()
	case wire.TypeWork:
		m.Kind = KindWork
		m.Work.Job = 0 // pooled slot may carry a stale job tag
		m.Work.Iter = p.Int()
		m.Work.Phase = p.Int()
		m.Work.W = 1 // pooled slot may carry a stale batch width
		m.Work.X = p.Float64s(m.Work.X)
		m.Work.Ranges = readRanges(p, m.Work.Ranges)
	case wire.TypeWorkBatch:
		m.Kind = KindWork
		m.Work.Job = 0
		m.Work.Iter = p.Int()
		m.Work.Phase = p.Int()
		m.Work.W = readBatchWidth(p)
		m.Work.X = p.Float64s(m.Work.X)
		m.Work.Ranges = readRanges(p, m.Work.Ranges)
	case wire.TypeJobWork:
		m.Kind = KindWork
		m.Work.Job = readJobID(p)
		m.Work.Iter = p.Int()
		m.Work.Phase = p.Int()
		m.Work.W = readJobWidth(p)
		m.Work.X = p.Float64s(m.Work.X)
		m.Work.Ranges = readRanges(p, m.Work.Ranges)
	case wire.TypeResult:
		m.Kind = KindResult
		m.Result.Job = 0 // pooled slot may carry a stale job tag
		m.Result.Iter = p.Int()
		m.Result.Phase = p.Int()
		m.Result.Worker = p.Int()
		m.Result.Partial = p.Uvarint() != 0
		m.Result.ComputeNanos = int64(p.Uvarint())
		m.Result.RowWidth = 1 // pooled slot may carry a stale batch width
		m.Result.Ranges = readRanges(p, m.Result.Ranges)
		m.Result.Values = p.Float64s(m.Result.Values)
	case wire.TypeResultBatch:
		m.Kind = KindResult
		m.Result.Job = 0
		m.Result.Iter = p.Int()
		m.Result.Phase = p.Int()
		m.Result.Worker = p.Int()
		m.Result.Partial = p.Uvarint() != 0
		m.Result.ComputeNanos = int64(p.Uvarint())
		m.Result.RowWidth = readBatchWidth(p)
		m.Result.Ranges = readRanges(p, m.Result.Ranges)
		m.Result.Values = p.Float64s(m.Result.Values)
	case wire.TypeJobResult:
		m.Kind = KindResult
		m.Result.Job = readJobID(p)
		m.Result.Iter = p.Int()
		m.Result.Phase = p.Int()
		m.Result.Worker = p.Int()
		m.Result.Partial = p.Uvarint() != 0
		m.Result.ComputeNanos = int64(p.Uvarint())
		m.Result.RowWidth = readJobWidth(p)
		m.Result.Ranges = readRanges(p, m.Result.Ranges)
		m.Result.Values = p.Float64s(m.Result.Values)
	case wire.TypePartitionStart:
		m.Kind = KindPartitionStart
		m.PartStart.Phase = p.Int()
		m.PartStart.Seq = p.Int()
		m.PartStart.Rows = p.Int()
		m.PartStart.Cols = p.Int()
		m.PartStart.ChunkRows = p.Int()
	case wire.TypePartitionChunk:
		m.Kind = KindPartitionChunk
		m.PartChunk.Phase = p.Int()
		m.PartChunk.Seq = p.Int()
		m.PartChunk.Lo = p.Int()
		m.PartChunk.Hi = p.Int()
		if err := p.Err(); err != nil {
			return err
		}
		// The cursor is consumed by ChunkInto before the next recv on this
		// conn; recv's single-goroutine ownership makes the stash safe.
		//s2c2:waive payloadescape
		m.chunk = p // row payload decoded by ChunkInto, straight into the matrix
		return nil
	case wire.TypePartitionAck:
		m.Kind = KindPartitionAck
		m.PartAck.Phase = p.Int()
		m.PartAck.Seq = p.Int()
	case wire.TypeGFWork:
		m.Kind = KindGFWork
		m.GFWork.Job = 0 // pooled slot may carry a stale job tag
		m.GFWork.Iter = p.Int()
		m.GFWork.Phase = p.Int()
		m.GFWork.W = 1 // pooled slot may carry a stale batch width
		m.GFWork.X = gf.AsElems(p.Uint32s(gf.AsUint32s(m.GFWork.X)))
		m.GFWork.Ranges = readRanges(p, m.GFWork.Ranges)
	case wire.TypeGFWorkBatch:
		m.Kind = KindGFWork
		m.GFWork.Job = 0
		m.GFWork.Iter = p.Int()
		m.GFWork.Phase = p.Int()
		m.GFWork.W = readBatchWidth(p)
		m.GFWork.X = gf.AsElems(p.Uint32s(gf.AsUint32s(m.GFWork.X)))
		m.GFWork.Ranges = readRanges(p, m.GFWork.Ranges)
	case wire.TypeJobGFWork:
		m.Kind = KindGFWork
		m.GFWork.Job = readJobID(p)
		m.GFWork.Iter = p.Int()
		m.GFWork.Phase = p.Int()
		m.GFWork.W = readJobWidth(p)
		m.GFWork.X = gf.AsElems(p.Uint32s(gf.AsUint32s(m.GFWork.X)))
		m.GFWork.Ranges = readRanges(p, m.GFWork.Ranges)
	case wire.TypeGFResult:
		m.Kind = KindGFResult
		m.GFResult.Job = 0 // pooled slot may carry a stale job tag
		m.GFResult.Iter = p.Int()
		m.GFResult.Phase = p.Int()
		m.GFResult.Worker = p.Int()
		m.GFResult.Partial = p.Uvarint() != 0
		m.GFResult.ComputeNanos = int64(p.Uvarint())
		m.GFResult.RowWidth = 1 // pooled slot may carry a stale batch width
		m.GFResult.Ranges = readRanges(p, m.GFResult.Ranges)
		m.GFResult.Values = gf.AsElems(p.Uint32s(gf.AsUint32s(m.GFResult.Values)))
	case wire.TypeGFResultBatch:
		m.Kind = KindGFResult
		m.GFResult.Job = 0
		m.GFResult.Iter = p.Int()
		m.GFResult.Phase = p.Int()
		m.GFResult.Worker = p.Int()
		m.GFResult.Partial = p.Uvarint() != 0
		m.GFResult.ComputeNanos = int64(p.Uvarint())
		m.GFResult.RowWidth = readBatchWidth(p)
		m.GFResult.Ranges = readRanges(p, m.GFResult.Ranges)
		m.GFResult.Values = gf.AsElems(p.Uint32s(gf.AsUint32s(m.GFResult.Values)))
	case wire.TypeJobGFResult:
		m.Kind = KindGFResult
		m.GFResult.Job = readJobID(p)
		m.GFResult.Iter = p.Int()
		m.GFResult.Phase = p.Int()
		m.GFResult.Worker = p.Int()
		m.GFResult.Partial = p.Uvarint() != 0
		m.GFResult.ComputeNanos = int64(p.Uvarint())
		m.GFResult.RowWidth = readJobWidth(p)
		m.GFResult.Ranges = readRanges(p, m.GFResult.Ranges)
		m.GFResult.Values = gf.AsElems(p.Uint32s(gf.AsUint32s(m.GFResult.Values)))
	case wire.TypeGFPartitionStart:
		m.Kind = KindGFPartitionStart
		m.PartStart.Phase = p.Int()
		m.PartStart.Seq = p.Int()
		m.PartStart.Rows = p.Int()
		m.PartStart.Cols = p.Int()
		m.PartStart.ChunkRows = p.Int()
	case wire.TypeGFPartitionChunk:
		m.Kind = KindGFPartitionChunk
		m.PartChunk.Phase = p.Int()
		m.PartChunk.Seq = p.Int()
		m.PartChunk.Lo = p.Int()
		m.PartChunk.Hi = p.Int()
		if err := p.Err(); err != nil {
			return err
		}
		// Same contract as the float chunk above: GFChunkInto drains the
		// cursor before the conn reads another frame.
		//s2c2:waive payloadescape
		m.chunk = p // element payload decoded by GFChunkInto, straight into the matrix
		return nil
	case wire.TypeShutdown:
		m.Kind = KindShutdown
	case wire.TypePing:
		m.Kind = KindPing
	case wire.TypePong:
		m.Kind = KindPong
	default:
		return fmt.Errorf("rpc: unknown frame type %d", typ)
	}
	return p.Err()
}

func (c *wireConn) close() error {
	// c.c is nil when the transport runs over an in-memory stream (test
	// and fuzz harnesses); there is no socket to close then.
	c.closeOnce.Do(func() {
		if c.c != nil {
			c.closeErr = c.c.Close()
		}
	})
	return c.closeErr
}

// maxBatchWidth bounds the per-row width a batch frame may declare. Real
// rounds batch a handful of x-vectors (DRAM-bandwidth amortization stops
// paying long before this); the bound exists so a corrupt or hostile
// width is rejected at decode, before any consistency arithmetic uses it.
const maxBatchWidth = 4096

// readBatchWidth decodes the width field of a batch frame. Batch frames
// exist only for widths ≥ 2 (width-1 traffic uses the classic frames), so
// anything else is malformed — rejected through the payload's sticky
// error, like every other corrupt field.
//
//s2c2:noalloc
func readBatchWidth(p *wire.Payload) int {
	w := p.Int()
	if w < 2 || w > maxBatchWidth {
		p.Reject()
		return 0
	}
	return w
}

// maxJobID bounds the job tag a TypeJob* frame may declare, rejecting
// corrupt or hostile ids before any routing structure is consulted.
const maxJobID = 1 << 30

// readJobID decodes the job tag of a TypeJob* frame. Tagged frames exist
// only for jobs ≥ 1 (the default job travels untagged), so anything else
// is malformed.
//
//s2c2:noalloc
func readJobID(p *wire.Payload) int {
	id := p.Int()
	if id < 1 || id > maxJobID {
		p.Reject()
		return 0
	}
	return id
}

// readJobWidth decodes the width field of a TypeJob* frame, which —
// unlike the batch frames — is present at every width including 1.
//
//s2c2:noalloc
func readJobWidth(p *wire.Payload) int {
	w := p.Int()
	if w < 1 || w > maxBatchWidth {
		p.Reject()
		return 0
	}
	return w
}

// writeRanges appends a count-prefixed list of [lo, hi) varint pairs.
//
//s2c2:noalloc
func writeRanges(w *wire.Writer, ranges []coding.Range) {
	w.Int(len(ranges))
	for _, r := range ranges {
		w.Int(r.Lo)
		w.Int(r.Hi)
	}
}

// readRanges decodes a range list, reusing dst's capacity.
//
//s2c2:noalloc
func readRanges(p *wire.Payload, dst []coding.Range) []coding.Range {
	n := p.Int()
	// Every range costs at least two payload bytes; a count the remaining
	// bytes cannot hold is corrupt, rejected before any allocation. The
	// comparison divides rather than multiplies so a hostile count cannot
	// overflow the guard.
	if p.Err() != nil || n > p.Remaining()/2 {
		p.Reject()
		return dst[:0]
	}
	dst = kernel.GrowSlice(dst, n)
	for i := range dst {
		dst[i].Lo = p.Int()
		dst[i].Hi = p.Int()
	}
	return dst
}

// ---------------------------------------------------------------------------
// gob fallback transport

// gobConn is the legacy envelope stream. Each message is one gob-encoded
// Envelope; decode allocates per message (that is the fallback's cost).
type gobConn struct {
	c            net.Conn
	enc          *gob.Encoder
	dec          *gob.Decoder
	writeTimeout time.Duration

	mu        sync.Mutex
	closeOnce sync.Once
	closeErr  error
}

func newGobConn(c net.Conn, writeTimeout time.Duration) *gobConn {
	return &gobConn{c: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c), writeTimeout: writeTimeout}
}

func (c *gobConn) send(e *Envelope) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.c != nil && c.writeTimeout > 0 {
		// The gob fallback ships partitions monolithically, so the
		// deadline must scale with the payload or a multi-GiB partition
		// on a slow link would fail where the pre-deadline code worked.
		bytes := 0
		switch {
		case e.Partition != nil:
			bytes = 8 * len(e.Partition.Data)
		case e.Work != nil:
			bytes = 8 * len(e.Work.X)
		case e.Result != nil:
			bytes = 8 * len(e.Result.Values)
		case e.GFPartition != nil:
			bytes = 4 * len(e.GFPartition.Data)
		case e.GFWork != nil:
			bytes = 4 * len(e.GFWork.X)
		case e.GFResult != nil:
			bytes = 4 * len(e.GFResult.Values)
		}
		d := writeDeadlineFor(c.writeTimeout, bytes)
		c.c.SetWriteDeadline(time.Now().Add(d)) //nolint:errcheck
	}
	return c.enc.Encode(e)
}

func (c *gobConn) sendHello(h *Hello) error { return c.send(&Envelope{Kind: KindHello, Hello: h}) }
func (c *gobConn) sendWork(w *Work) error   { return c.send(&Envelope{Kind: KindWork, Work: w}) }
func (c *gobConn) sendResult(r *Result) error {
	return c.send(&Envelope{Kind: KindResult, Result: r})
}
func (c *gobConn) sendShutdown() error { return c.send(&Envelope{Kind: KindShutdown}) }
func (c *gobConn) sendPing() error     { return c.send(&Envelope{Kind: KindPing}) }
func (c *gobConn) sendPong() error     { return c.send(&Envelope{Kind: KindPong}) }
func (c *gobConn) sendPartition(p *Partition) error {
	return c.send(&Envelope{Kind: KindPartition, Partition: p})
}

func (c *gobConn) sendGFWork(w *GFWork) error {
	return c.send(&Envelope{Kind: KindGFWork, GFWork: w})
}
func (c *gobConn) sendGFResult(r *GFResult) error {
	return c.send(&Envelope{Kind: KindGFResult, GFResult: r})
}
func (c *gobConn) sendGFPartition(p *GFPartition) error {
	return c.send(&Envelope{Kind: KindGFPartition, GFPartition: p})
}

// The streamed-partition messages exist only on the wire transport; the
// gob fallback ships partitions monolithically.
func (c *gobConn) sendPartitionStart(*PartitionStart) error {
	return fmt.Errorf("rpc: gob transport does not stream partitions")
}
func (c *gobConn) sendPartitionChunk(int, int, int, int, []float64) error {
	return fmt.Errorf("rpc: gob transport does not stream partitions")
}
func (c *gobConn) sendPartitionAck(int, int) error {
	return fmt.Errorf("rpc: gob transport does not stream partitions")
}
func (c *gobConn) sendGFPartitionStart(*PartitionStart) error {
	return fmt.Errorf("rpc: gob transport does not stream partitions")
}
func (c *gobConn) sendGFPartitionChunk(int, int, int, int, []gf.Elem) error {
	return fmt.Errorf("rpc: gob transport does not stream partitions")
}

func (c *gobConn) streamsPartitions() bool { return false }

func (c *gobConn) recv(m *Msg) error {
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return err
	}
	m.Kind = e.Kind
	m.chunk = nil
	switch e.Kind {
	case KindHello:
		if e.Hello == nil {
			return fmt.Errorf("rpc: envelope missing hello payload")
		}
		m.Hello = *e.Hello
	case KindPartition:
		if e.Partition == nil {
			return fmt.Errorf("rpc: envelope missing partition payload")
		}
		m.Partition = *e.Partition
	case KindWork:
		if e.Work == nil {
			return fmt.Errorf("rpc: envelope missing work payload")
		}
		m.Work = *e.Work
		// gob omits zero fields, so a single-x peer's Work decodes with
		// W == 0; normalize to the single-x width like the wire transport.
		if m.Work.W < 1 {
			m.Work.W = 1
		}
	case KindResult:
		if e.Result == nil {
			return fmt.Errorf("rpc: envelope missing result payload")
		}
		m.Result = *e.Result
		if m.Result.RowWidth < 1 {
			m.Result.RowWidth = 1
		}
	case KindGFPartition:
		if e.GFPartition == nil {
			return fmt.Errorf("rpc: envelope missing GF partition payload")
		}
		m.GFPartition = *e.GFPartition
	case KindGFWork:
		if e.GFWork == nil {
			return fmt.Errorf("rpc: envelope missing GF work payload")
		}
		m.GFWork = *e.GFWork
		if m.GFWork.W < 1 {
			m.GFWork.W = 1
		}
	case KindGFResult:
		if e.GFResult == nil {
			return fmt.Errorf("rpc: envelope missing GF result payload")
		}
		m.GFResult = *e.GFResult
		if m.GFResult.RowWidth < 1 {
			m.GFResult.RowWidth = 1
		}
	case KindShutdown, KindPing, KindPong:
	default:
		return fmt.Errorf("rpc: envelope missing kind")
	}
	return nil
}

func (c *gobConn) close() error {
	c.closeOnce.Do(func() { c.closeErr = c.c.Close() })
	return c.closeErr
}
