package rpc

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
)

// TestWaitForWorkersClearsDeadline is the stale-deadline regression: a
// WaitForWorkers call that returns (here: times out) must clear the
// accept deadline it set, so a later call can still accept connections.
func TestWaitForWorkersClearsDeadline(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	if err := m.WaitForWorkers(1, 50*time.Millisecond); err == nil {
		t.Fatal("WaitForWorkers with no workers should time out")
	}
	go func() {
		w, err := NewWorker(WorkerConfig{MasterAddr: m.Addr()})
		if err != nil {
			t.Error(err)
			return
		}
		w.Run() //nolint:errcheck // shutdown closes the conn
	}()
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatalf("second WaitForWorkers failed after a timed-out first call: %v", err)
	}
}

// TestWaitForWorkersStalledDialer is the serialized-admission regression:
// a dialer that connects first but never sends its handshake must not
// delay admission of workers connecting behind it. With serial admission
// the stalled connection holds the accept loop for handshakeTimeout (5 s)
// and this WaitForWorkers call times out; with concurrent admission the
// healthy worker is admitted immediately.
func TestWaitForWorkersStalledDialer(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	// The stalled dialer lands in the listener's accept queue first, so
	// the master accepts (and begins admitting) it before the real worker.
	stalled, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	go func() {
		time.Sleep(100 * time.Millisecond) // let the stalled conn queue first
		w, err := NewWorker(WorkerConfig{MasterAddr: m.Addr()})
		if err != nil {
			t.Error(err)
			return
		}
		w.Run() //nolint:errcheck // shutdown closes the conn
	}()
	start := time.Now()
	if err := m.WaitForWorkers(1, 3*time.Second); err != nil {
		t.Fatalf("WaitForWorkers behind a stalled dialer: %v", err)
	}
	if elapsed := time.Since(start); elapsed >= 2500*time.Millisecond {
		t.Fatalf("worker admitted only after %v; admission is serialized behind the stalled dialer", elapsed)
	}
}

// TestWaitForWorkersSurplusParksUntilNextCall pins the cluster-size
// invariant under concurrent admission: a handshake that completes past
// the call's target must NOT grow the cluster mid-round (plans and
// partition distribution are sized to NumWorkers), but must be
// registered by the next WaitForWorkers call.
func TestWaitForWorkersSurplusParksUntilNextCall(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	for i := 0; i < 2; i++ {
		go func() {
			w, err := NewWorker(WorkerConfig{MasterAddr: m.Addr()})
			if err != nil {
				return // surplus conn may be parked or closed by shutdown
			}
			w.Run() //nolint:errcheck // shutdown closes the conn
		}()
	}
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// The second worker's handshake finishes on its own schedule; however
	// long we wait, it must never be registered without a call asking.
	time.Sleep(300 * time.Millisecond)
	if got := m.NumWorkers(); got != 1 {
		t.Fatalf("cluster grew to %d workers without a WaitForWorkers call (want 1)", got)
	}
	// The next call registers the parked worker without a new dial.
	if err := m.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatalf("second WaitForWorkers did not register the parked worker: %v", err)
	}
	if got := m.NumWorkers(); got != 2 {
		t.Fatalf("NumWorkers = %d after growing, want 2", got)
	}
}

// TestTimeoutReassignmentDecodesBitExact forces a timeout + reassignment
// and checks that the round's partials — which contain two partials from
// the same helper worker (original ranges + reassigned extras) — decode
// bit-identically to the same partial set recomputed locally.
func TestTimeoutReassignmentDecodesBitExact(t *testing.T) {
	n, k := 4, 2
	m := startCluster(t, n, map[int]float64{3: 300})

	rng := rand.New(rand.NewSource(30))
	a := mat.Rand(48, 6, rng)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	// Mis-prediction: the planner believes all four are equally fast, so
	// the dead-slow worker 3 gets real work and must be timed out.
	plan, err := strat.Plan([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials, stats, err := m.RunRound(0, 0, x, plan, k, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reassigned == 0 {
		t.Fatal("expected reassigned rows after the timeout")
	}
	// The reassignment path must have delivered two partials from at
	// least one helper worker.
	perWorker := map[int]int{}
	for _, p := range partials {
		perWorker[p.Worker]++
	}
	dup := false
	for _, c := range perWorker {
		if c > 1 {
			dup = true
		}
	}
	if !dup {
		t.Fatalf("expected a worker with original + reassigned partials, got %v", perWorker)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute the identical partial set locally (same workers, same
	// ranges — the worker kernel and the local kernel are the same code)
	// and require a bit-exact decode match.
	local := make([]*coding.Partial, len(partials))
	for i, p := range partials {
		local[i] = enc.WorkerCompute(p.Worker, x, p.Ranges)
		if len(local[i].Values) != len(p.Values) {
			t.Fatalf("partial %d: local recompute has %d values, rpc delivered %d", i, len(local[i].Values), len(p.Values))
		}
		for q := range p.Values {
			if p.Values[q] != local[i].Values[q] {
				t.Fatalf("partial %d value %d: rpc %v != local %v", i, q, p.Values[q], local[i].Values[q])
			}
		}
	}
	want, err := enc.DecodeMatVec(local)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: decode over rpc partials %v differs bit-wise from local decode %v", i, got[i], want[i])
		}
	}
	// And the decode must of course match the true product numerically.
	if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
		t.Fatal("decode after reassignment mismatch")
	}
}

// TestShutdownDuringActiveRound exercises the Shutdown/readLoop ordering:
// closing the master while workers are mid-computation (and reads are in
// flight) must not panic, deadlock, or leave goroutines stuck. Run with
// -race this also checks the connection teardown for data races.
func TestShutdownDuringActiveRound(t *testing.T) {
	n, k := 3, 2
	m := startCluster(t, n, map[int]float64{0: 50, 1: 50, 2: 50})
	rng := rand.New(rand.NewSource(31))
	a := mat.Rand(60, 4, rng)
	x := []float64{1, 2, 3, 4}
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, _ := strat.Plan([]float64{1, 1, 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		// The round races the shutdown: either outcome (success before
		// the close, or an error after it) is acceptable — what matters
		// is that it returns.
		m.RunRound(0, 0, x, plan, k, 10.0) //nolint:errcheck
	}()
	time.Sleep(2 * time.Millisecond) // let the work messages go out
	m.Shutdown()
	m.Shutdown() // idempotent
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunRound did not return after Shutdown")
	}
}

// TestRunRoundReuseRound runs an iterative job on a ReuseRound master:
// each round's partials alias the master's workspace, are decoded before
// the next round, and every decode must stay correct.
func TestRunRoundReuseRound(t *testing.T) {
	n, k := 4, 3
	cfg := MasterConfig{Addr: "127.0.0.1:0", ReuseRound: true}
	m, err := NewMasterWithConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	for i := 0; i < n; i++ {
		go func() {
			w, err := NewWorker(WorkerConfig{MasterAddr: m.Addr(), PerRowDelay: 50 * time.Microsecond})
			if err != nil {
				t.Error(err)
				return
			}
			w.Run() //nolint:errcheck
		}()
		if err := m.WaitForWorkers(i+1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(32))
	a := mat.Rand(30, 5, rng)
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	ws := enc.NewDecodeWorkspace()
	dst := make([]float64, enc.OrigRows)
	speeds := []float64{1, 1, 1, 1}
	for iter := 0; iter < 5; iter++ {
		x := make([]float64, 5)
		for i := range x {
			x[i] = float64(iter) + rng.Float64()
		}
		plan, err := m.PlanRound(strat, speeds)
		if err != nil {
			t.Fatal(err)
		}
		partials, _, err := m.RunRound(iter, 0, x, plan, k, 10.0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := enc.DecodeMatVecInto(dst, partials, ws)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
			t.Fatalf("iteration %d: ReuseRound decode mismatch", iter)
		}
	}
}

// gatherFixture builds a synthetic full round of worker results against a
// real encoding, bypassing the network.
func gatherFixture(tb testing.TB) (*coding.EncodedMatrix, []*Result, []float64) {
	rng := rand.New(rand.NewSource(33))
	a := mat.Rand(600, 20, rng)
	code, err := coding.NewMDSCode(10, 8)
	if err != nil {
		tb.Fatal(err)
	}
	enc := code.Encode(a)
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.Float64()
	}
	var results []*Result
	for _, w := range []int{0, 1, 2, 3, 4, 5, 8, 9} {
		p := enc.WorkerCompute(w, x, []coding.Range{{Lo: 0, Hi: enc.BlockRows}})
		results = append(results, &Result{
			Iter: 0, Phase: 0, Worker: w, Ranges: p.Ranges, Values: p.Values,
		})
	}
	return enc, results, mat.MatVec(a, x)
}

// TestGatherAndDecodeZeroAllocsSteadyState is the acceptance criterion:
// a steady-state round's master-side gather bookkeeping plus the decode
// must allocate nothing. (The gob receive path allocates per network
// message by nature; this pins everything the master itself does.)
func TestGatherAndDecodeZeroAllocsSteadyState(t *testing.T) {
	enc, results, want := gatherFixture(t)
	m := &Master{cfg: MasterConfig{ReuseRound: true}}
	n, k := 10, 8
	decWS := enc.NewDecodeWorkspace()
	dst := make([]float64, enc.OrigRows)
	runRound := func() {
		ws := &m.def.round
		ws.begin(n, enc.BlockRows, k, 1)
		for _, r := range results {
			if err := ws.addResult(r, time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		if ws.needed != 0 {
			t.Fatal("fixture round did not reach coverage")
		}
		partials, stats, err := m.finishRound(ws)
		if err != nil {
			t.Fatal(err)
		}
		if stats.AssignedRows == nil {
			t.Fatal("missing stats")
		}
		if _, err := enc.DecodeMatVecInto(dst, partials, decWS); err != nil {
			t.Fatal(err)
		}
	}
	runRound() // warm: sizes the workspace, factors the decode set
	if !mat.VecApproxEqual(dst, want, 1e-8) {
		t.Fatal("gather+decode fixture produced a wrong result")
	}
	allocs := testing.AllocsPerRun(50, runRound)
	if allocs != 0 {
		t.Fatalf("steady-state gather+decode allocates %v/op, want 0", allocs)
	}
}

// TestGatherDeduplicatesCoverage pins the duplicate-delivery hardening: a
// worker re-sending rows it already delivered must not advance coverage,
// so the master can never hand the decoder a round it cannot decode.
func TestGatherDeduplicatesCoverage(t *testing.T) {
	m := &Master{cfg: MasterConfig{ReuseRound: true}}
	ws := &m.def.round
	ws.begin(3, 4, 2, 1)
	r := &Result{Worker: 0, Ranges: []coding.Range{{Lo: 0, Hi: 4}}, Values: []float64{1, 2, 3, 4}}
	if err := ws.addResult(r, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := ws.addResult(r, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ws.needed != 4 {
		t.Fatalf("duplicate delivery advanced coverage: needed=%d, want 4", ws.needed)
	}
	for row, c := range ws.cov {
		if c != 1 {
			t.Fatalf("row %d coverage %d after duplicate delivery, want 1", row, c)
		}
	}
	// A second distinct worker completes coverage at k=2.
	r2 := &Result{Worker: 2, Ranges: []coding.Range{{Lo: 0, Hi: 4}}, Values: []float64{5, 6, 7, 8}}
	if err := ws.addResult(r2, 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if ws.needed != 0 {
		t.Fatalf("coverage incomplete after second worker: needed=%d", ws.needed)
	}
	// Malformed ranges are rejected, not indexed out of bounds.
	bad := &Result{Worker: 1, Ranges: []coding.Range{{Lo: 2, Hi: 9}}, Values: make([]float64, 7)}
	if err := ws.addResult(bad, time.Millisecond); err == nil {
		t.Fatal("out-of-partition result range must be rejected")
	}
}
