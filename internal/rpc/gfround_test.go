package rpc

// gfround_test.go covers the exact GF(2³¹−1) distributed round path: the
// acceptance property (distributed == local, bit-exact, on both
// transports, under randomized shapes and straggler patterns) and the
// master-side zero-allocation bar mirroring the float64 wire round.

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/wire"
)

// randElems fills a fresh slice with canonical field elements.
func randElems(rng *rand.Rand, n int) []gf.Elem {
	out := make([]gf.Elem, n)
	for i := range out {
		out[i] = gf.New(rng.Uint64())
	}
	return out
}

// gfGroundTruth computes A·x over the field locally (the bit-exact
// reference every distributed round must reproduce).
func gfGroundTruth(rows, cols int, data, x []gf.Elem) []gf.Elem {
	return gf.NewMatrixFromData(rows, cols, data).MulVec(x)
}

// runGFTrial runs one randomized cluster trial: random (n,k), partition
// shape, chunking, transport, result splitting, and optionally a
// mis-predicted straggler that forces the §4.3 timeout + reassignment —
// then requires every round to decode bit-exactly against the local
// ground truth.
func runGFTrial(t *testing.T, rng *rand.Rand, useGob bool) {
	t.Helper()
	n := 2 + rng.Intn(4) // 2..5 workers
	k := 1 + rng.Intn(n) // 1..n threshold
	rows := 1 + rng.Intn(48)
	cols := 1 + rng.Intn(8)
	straggler := -1
	frac := 10.0
	if n > k && rng.Intn(2) == 0 {
		straggler = rng.Intn(n)
		frac = 0.15
	}
	mcfg := MasterConfig{StallTimeout: 20 * time.Second}
	if !useGob && rng.Intn(2) == 0 {
		mcfg.ChunkRows = 1 + rng.Intn(3)
		mcfg.ChunkWindow = 1 + rng.Intn(4)
	}
	reuse := rng.Intn(2) == 0
	mcfg.ReuseRound = reuse
	splitResults := rng.Intn(2) == 0
	m := startTestCluster(t, n, clusterConfig{
		master: mcfg,
		worker: func(i int) WorkerConfig {
			cfg := WorkerConfig{UseGob: useGob, Slowdown: 1, PerRowDelay: 200 * time.Microsecond}
			if i == straggler {
				cfg.Slowdown = 100
			}
			if splitResults {
				cfg.MaxResultRows = 3
			}
			return cfg
		},
	})

	data := randElems(rng, rows*cols)
	code, err := coding.NewGFMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DistributeGFPartitions(0, enc.Parts); err != nil {
		t.Fatal(err)
	}
	gran := enc.BlockRows
	if rng.Intn(2) == 0 {
		gran = 0 // strategy default granularity
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: gran}
	speeds := make([]float64, n)
	for i := range speeds {
		speeds[i] = 1 // mis-prediction: the straggler looks healthy
	}
	decWS := enc.NewDecodeWorkspace()
	dst := make([]gf.Elem, enc.OrigRows)
	for iter := 0; iter < 2; iter++ {
		x := randElems(rng, cols)
		want := gfGroundTruth(rows, cols, data, x)
		plan, err := strat.Plan(speeds)
		if err != nil {
			t.Fatal(err)
		}
		partials, stats, err := m.RunGFRound(iter, 0, x, plan, k, frac)
		if err != nil {
			t.Fatalf("n=%d k=%d rows=%d cols=%d straggler=%d gob=%v: %v",
				n, k, rows, cols, straggler, useGob, err)
		}
		got, err := enc.DecodeMatVecInto(dst, partials, decWS)
		if err != nil {
			t.Fatal(err)
		}
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("n=%d k=%d rows=%d cols=%d straggler=%d gob=%v reuse=%v split=%v iter=%d: row %d decodes to %d, local compute says %d (reassigned %d)",
					n, k, rows, cols, straggler, useGob, reuse, splitResults, iter, r, got[r], want[r], stats.Reassigned)
			}
		}
	}
}

// TestGFRoundExactness is the acceptance property: a distributed GF round
// decodes bit-exactly to the local GFMDSCode compute across randomized
// (n,k), partition shapes, straggler/timeout patterns, and both
// transports.
func TestGFRoundExactness(t *testing.T) {
	for _, tc := range []struct {
		name   string
		useGob bool
	}{
		{"wire", false},
		{"gob", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(200))
			trials := 4
			if testing.Short() {
				trials = 2
			}
			for trial := 0; trial < trials; trial++ {
				runGFTrial(t, rng, tc.useGob)
			}
		})
	}
}

// TestGFRoundTimeoutReassignmentExact deterministically forces the §4.3
// timeout on the exact path: a dead-slow worker gets real GF work, the
// grace window fires, coverage is reassigned, and the decode must still be
// bit-exact (including the duplicate-partial shape reassignment creates).
func TestGFRoundTimeoutReassignmentExact(t *testing.T) {
	n, k := 4, 2
	m := startTestCluster(t, n, clusterConfig{
		worker: func(i int) WorkerConfig {
			cfg := WorkerConfig{Slowdown: 1, PerRowDelay: 200 * time.Microsecond}
			if i == 3 {
				cfg.Slowdown = 300
			}
			return cfg
		},
	})
	rng := rand.New(rand.NewSource(201))
	rows, cols := 48, 6
	data := randElems(rng, rows*cols)
	code, err := coding.NewGFMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DistributeGFPartitions(0, enc.Parts); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	x := randElems(rng, cols)
	partials, stats, err := m.RunGFRound(0, 0, x, plan, k, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reassigned == 0 {
		t.Fatal("expected reassigned rows after the timeout")
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	want := gfGroundTruth(rows, cols, data, x)
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("row %d: distributed decode %d != local %d after reassignment", r, got[r], want[r])
		}
	}
	found := false
	for _, w := range stats.TimedOut {
		if w == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("worker 3 should be listed as timed out, got %v", stats.TimedOut)
	}
}

// TestGFRoundLagrangeExactness closes the Lagrange loop over the wire:
// shares of a Lagrange code (each wrapped as a field matrix) are
// distributed as GF partitions, every worker evaluates its share against
// the round's x (a degree-1 polynomial of the share), and any
// RecoveryThreshold(1) complete share results interpolate the per-block
// products exactly — multiparty exact evaluation end to end.
func TestGFRoundLagrangeExactness(t *testing.T) {
	n, k := 5, 3
	m := startTestCluster(t, n, clusterConfig{
		worker: func(i int) WorkerConfig {
			cfg := WorkerConfig{Slowdown: 1, PerRowDelay: 100 * time.Microsecond}
			if i == 1 {
				cfg.Slowdown = 50 // one straggler; threshold decode ignores it
			}
			return cfg
		},
	})
	rng := rand.New(rand.NewSource(202))
	rows, cols := 30, 5
	data := randElems(rng, rows*cols)
	blockRows := (rows + k - 1) / k
	blocks := make([][]gf.Elem, k)
	for b := range blocks {
		blocks[b] = make([]gf.Elem, blockRows*cols)
		for r := 0; r < blockRows; r++ {
			src := b*blockRows + r
			if src >= rows {
				break
			}
			copy(blocks[b][r*cols:(r+1)*cols], data[src*cols:(src+1)*cols])
		}
	}
	lag, err := coding.NewLagrangeCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := lag.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]*gf.Matrix, n)
	for i, s := range shares {
		parts[i] = gf.NewMatrixFromData(blockRows, cols, s)
	}
	if err := m.DistributeGFPartitions(0, parts); err != nil {
		t.Fatal(err)
	}
	// Full-share evaluation: every worker computes all rows of its share.
	assignments := make([][]coding.Range, n)
	for w := range assignments {
		assignments[w] = []coding.Range{{Lo: 0, Hi: blockRows}}
	}
	plan := &sched.Plan{BlockRows: blockRows, Assignments: assignments}
	threshold := lag.RecoveryThreshold(1)
	x := randElems(rng, cols)
	partials, _, err := m.RunGFRound(0, 0, x, plan, threshold, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	results, err := coding.CompleteGFShares(partials, blockRows)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < threshold {
		t.Fatalf("only %d complete shares for threshold %d", len(results), threshold)
	}
	decoded, err := lag.Decode(results, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := gfGroundTruth(rows, cols, data, x)
	for r := 0; r < rows; r++ {
		b, off := r/blockRows, r%blockRows
		if decoded[b][off] != want[r] {
			t.Fatalf("row %d: Lagrange distributed decode %d != local %d", r, decoded[b][off], want[r])
		}
	}
}

// gfGatherFixture builds a synthetic full GF round of worker results
// against a real exact encoding, bypassing the network.
func gfGatherFixture(tb testing.TB) (*coding.GFEncodedMatrix, []*GFResult, []gf.Elem, []gf.Elem) {
	rng := rand.New(rand.NewSource(203))
	rows, cols := 240, 16
	data := randElems(rng, rows*cols)
	code, err := coding.NewGFMDSCode(10, 8)
	if err != nil {
		tb.Fatal(err)
	}
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		tb.Fatal(err)
	}
	x := randElems(rng, cols)
	var results []*GFResult
	for _, w := range []int{0, 1, 2, 3, 4, 5, 8, 9} {
		p, err := enc.WorkerMatVec(w, x, []coding.Range{{Lo: 0, Hi: enc.BlockRows}})
		if err != nil {
			tb.Fatal(err)
		}
		results = append(results, &GFResult{
			Iter: 0, Phase: 0, Worker: w, Ranges: p.Ranges, Values: p.Values,
		})
	}
	return enc, results, x, gfGroundTruth(rows, cols, data, x)
}

// TestMasterGFWireRoundZeroAllocsSteadyState is the exact-path transport
// acceptance criterion, the same bar as
// TestMasterWireRoundZeroAllocsSteadyState: a steady-state GF round on the
// master — sending the GF work assignments, receiving every GF result
// frame through the wire transport, gathering, and decoding — allocates
// nothing.
func TestMasterGFWireRoundZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items, forcing reallocation")
	}
	enc, results, x, want := gfGatherFixture(t)
	n, k := 10, 8

	// Pre-encode the round's result frames once, as the workers would.
	var stream bytes.Buffer
	sender := &wireConn{w: wire.NewWriter(&stream)}
	for _, r := range results {
		if err := sender.sendGFResult(r); err != nil {
			t.Fatal(err)
		}
	}
	src := bytes.NewReader(stream.Bytes())
	tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(src)}

	m := &Master{cfg: MasterConfig{ReuseRound: true}}
	decWS := enc.NewDecodeWorkspace()
	dst := make([]gf.Elem, enc.OrigRows)
	assignment := []coding.Range{{Lo: 0, Hi: enc.BlockRows}}
	msg := &Msg{}

	runRound := func() {
		ws := &m.def.gfRound
		m.recycleGFRound(ws)
		ws.begin(n, enc.BlockRows, k, 1)
		// Send tasks: one GF work frame per active worker.
		for w := 0; w < n; w++ {
			ws.workMsg = GFWork{Iter: 0, Phase: 0, X: x, Ranges: assignment}
			if err := tc.sendGFWork(&ws.workMsg); err != nil {
				t.Fatal(err)
			}
		}
		// Receive results: decode each frame into a pooled slot (the
		// readLoop's swap idiom) and gather.
		src.Reset(stream.Bytes())
		tc.r.Reset(src)
		for range results {
			if err := tc.recv(msg); err != nil {
				t.Fatal(err)
			}
			if msg.Kind != KindGFResult {
				t.Fatalf("kind %d", msg.Kind)
			}
			r := m.getGFResult()
			*r, msg.GFResult = msg.GFResult, *r
			if err := ws.addResult(r, time.Millisecond); err != nil {
				t.Fatal(err)
			}
			ws.retained = append(ws.retained, r)
		}
		if ws.needed != 0 {
			t.Fatal("fixture round did not reach coverage")
		}
		partials, stats, err := m.finishGFRound(ws)
		if err != nil {
			t.Fatal(err)
		}
		if stats.AssignedRows == nil {
			t.Fatal("missing stats")
		}
		if _, err := enc.DecodeMatVecInto(dst, partials, decWS); err != nil {
			t.Fatal(err)
		}
	}
	runRound() // warm: sizes buffers, pools the result slots, inverts the decode set
	for r := range want {
		if dst[r] != want[r] {
			t.Fatalf("GF wire round fixture row %d: %d != %d", r, dst[r], want[r])
		}
	}
	allocs := testing.AllocsPerRun(50, runRound)
	if allocs != 0 {
		t.Fatalf("steady-state GF wire round allocates %v/op on the master, want 0", allocs)
	}
}

// TestGFGobWireDecodeBitIdentical runs the same deterministic full-
// coverage GF round over both transports; being field arithmetic, the
// decoded outputs must be identical element for element.
func TestGFGobWireDecodeBitIdentical(t *testing.T) {
	run := func(useGob bool) []gf.Elem {
		const n = 3
		m := startTestCluster(t, n, clusterConfig{
			worker: func(i int) WorkerConfig { return WorkerConfig{UseGob: useGob} },
		})
		rng := rand.New(rand.NewSource(204))
		rows, cols := 31, 6
		data := randElems(rng, rows*cols)
		code, err := coding.NewGFMDSCode(n, n)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := code.Encode(rows, cols, data)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.DistributeGFPartitions(0, enc.Parts); err != nil {
			t.Fatal(err)
		}
		strat := &sched.GeneralS2C2{N: n, K: n, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
		plan, err := strat.Plan([]float64{1, 1, 1})
		if err != nil {
			t.Fatal(err)
		}
		x := randElems(rng, cols)
		partials, _, err := m.RunGFRound(0, 0, x, plan, n, 10.0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := enc.DecodeMatVec(partials)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	gob := run(true)
	wireOut := run(false)
	if len(gob) != len(wireOut) {
		t.Fatalf("length mismatch: gob %d, wire %d", len(gob), len(wireOut))
	}
	for i := range gob {
		if gob[i] != wireOut[i] {
			t.Fatalf("row %d: gob %d != wire %d", i, gob[i], wireOut[i])
		}
	}
}
