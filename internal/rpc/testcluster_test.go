package rpc

// testcluster_test.go is the shared in-process cluster harness of the rpc
// tests: one master plus n loopback workers, connected sequentially so
// worker IDs are deterministic, with optional per-worker fault injection.
// The historical helpers startCluster (rpc_test.go) and startClusterCfg
// (wire_test.go) are thin wrappers over startTestCluster, so every round,
// wire, and race test runs on this harness.
//
// Faults are injected by a byte-level TCP proxy spliced into the faulted
// worker's link. The worker→master direction is forwarded transparently
// (handshake included); the master→worker direction is re-framed one
// message at a time so faults can trigger on message boundaries — wire
// frames (uvarint length + body) on the wire transport, gob segments
// (gob's unsigned count + body) on the gob fallback — so drop/stall/slow
// faults run against mixed clusters too.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
)

// workerFault describes one worker's link faults. The zero value injects
// nothing. Frame counts refer to master→worker wire frames (partition
// starts, chunks, work messages) forwarded so far.
type workerFault struct {
	// dropAfterFrames severs the link — both directions — once N frames
	// have been forwarded: the mid-stream connection drop.
	dropAfterFrames int
	// stallAfterFrames stops delivering frames to the worker after N,
	// while keeping the link open and draining the master side: the
	// worker goes silent (no acks, no results) without a visible drop.
	stallAfterFrames int
	// frameDelay sleeps before forwarding each frame: a slow reader whose
	// acks and results arrive late.
	frameDelay time.Duration
}

// clusterConfig configures startTestCluster. Zero values mean defaults:
// loopback master, default worker configs, no faults.
type clusterConfig struct {
	master MasterConfig
	worker func(i int) WorkerConfig
	faults map[int]*workerFault
}

// startTestCluster spins up a master plus n in-process workers on
// loopback and returns the master (shut down via t.Cleanup). Workers
// connect one at a time: the master assigns IDs in admission order, so
// per-index configs and faults are pinned to the intended worker IDs.
func startTestCluster(t *testing.T, n int, cc clusterConfig) *Master {
	t.Helper()
	if cc.master.Addr == "" {
		cc.master.Addr = "127.0.0.1:0"
	}
	m, err := NewMasterWithConfig(cc.master)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	for i := 0; i < n; i++ {
		cfg := WorkerConfig{}
		if cc.worker != nil {
			cfg = cc.worker(i)
		}
		cfg.MasterAddr = m.Addr()
		if f := cc.faults[i]; f != nil {
			cfg.MasterAddr = startFaultProxy(t, m.Addr(), f, cfg.UseGob)
		}
		go func() {
			w, err := NewWorker(cfg)
			if err != nil {
				// The dial raced cluster teardown (or a fault proxy closing);
				// the test that needed this worker fails on WaitForWorkers.
				return
			}
			w.Run() //nolint:errcheck // shutdown (or an injected fault) closes the conn
		}()
		if err := m.WaitForWorkers(i+1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// startFaultProxy listens for exactly one worker connection and splices it
// to the master through the fault spec, returning the address the worker
// should dial. useGob selects the gob-segment pump for the master→worker
// direction (the worker's transport choice decides the stream's framing).
func startFaultProxy(t *testing.T, masterAddr string, f *workerFault, useGob bool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		wc, err := ln.Accept()
		if err != nil {
			return
		}
		mc, err := net.Dial("tcp", masterAddr)
		if err != nil {
			wc.Close()
			return
		}
		var closeOnce sync.Once
		closeBoth := func() {
			closeOnce.Do(func() {
				wc.Close()
				mc.Close()
			})
		}
		t.Cleanup(closeBoth)
		// worker → master: transparent byte pump (handshake included).
		go func() {
			defer closeBoth()
			io.Copy(mc, wc) //nolint:errcheck
		}()
		// master → worker: message-parsed pump with fault injection.
		if useGob {
			pumpFaultedGobMessages(wc, mc, f, closeBoth)
		} else {
			pumpFaultedFrames(wc, mc, f, closeBoth)
		}
	}()
	return ln.Addr().String()
}

// pumpFaultedFrames forwards master→worker wire frames one at a time,
// applying the fault spec at frame boundaries.
func pumpFaultedFrames(dst, src net.Conn, f *workerFault, closeBoth func()) {
	defer closeBoth()
	br := bufio.NewReader(src)
	var buf []byte
	var head [binary.MaxVarintLen64]byte
	forwarded := 0
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil || size > maxRPCFrame {
			return
		}
		if cap(buf) < int(size) {
			buf = make([]byte, size)
		}
		buf = buf[:size]
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		if f.dropAfterFrames > 0 && forwarded >= f.dropAfterFrames {
			return // the deferred close severs both directions mid-stream
		}
		if f.stallAfterFrames > 0 && forwarded >= f.stallAfterFrames {
			// Swallow this frame and everything after it: the master sees
			// a healthy connection that simply stops acking and answering.
			io.Copy(io.Discard, br) //nolint:errcheck
			return
		}
		if f.frameDelay > 0 {
			time.Sleep(f.frameDelay)
		}
		n := binary.PutUvarint(head[:], size)
		if _, err := dst.Write(head[:n]); err != nil {
			return
		}
		if _, err := dst.Write(buf); err != nil {
			return
		}
		forwarded++
	}
}

// pumpFaultedGobMessages is pumpFaultedFrames for the gob fallback: it
// forwards master→worker gob segments (type definitions and values alike)
// one at a time, applying the fault spec at segment boundaries. Each gob
// segment is an unsigned byte count followed by that many bytes; the
// count's original encoding is preserved verbatim so the forwarded stream
// is byte-identical to the original.
func pumpFaultedGobMessages(dst, src net.Conn, f *workerFault, closeBoth func()) {
	defer closeBoth()
	br := bufio.NewReader(src)
	var buf []byte
	forwarded := 0
	for {
		prefix, size, err := readGobCount(br)
		if err != nil || size > maxRPCFrame {
			return
		}
		if cap(buf) < int(size) {
			buf = make([]byte, size)
		}
		buf = buf[:size]
		if _, err := io.ReadFull(br, buf); err != nil {
			return
		}
		if f.dropAfterFrames > 0 && forwarded >= f.dropAfterFrames {
			return // the deferred close severs both directions mid-stream
		}
		if f.stallAfterFrames > 0 && forwarded >= f.stallAfterFrames {
			io.Copy(io.Discard, br) //nolint:errcheck
			return
		}
		if f.frameDelay > 0 {
			time.Sleep(f.frameDelay)
		}
		if _, err := dst.Write(prefix); err != nil {
			return
		}
		if _, err := dst.Write(buf); err != nil {
			return
		}
		forwarded++
	}
}

// readGobCount decodes one gob unsigned count (the segment length prefix)
// and returns both its raw bytes — for transparent re-emission — and its
// value. Gob encodes an unsigned integer as a single byte when it fits in
// 7 bits; otherwise the first byte is 256-n where n ∈ [1,8] is the count
// of big-endian value bytes that follow.
func readGobCount(br *bufio.Reader) (prefix []byte, size uint64, err error) {
	b, err := br.ReadByte()
	if err != nil {
		return nil, 0, err
	}
	if b <= 0x7f {
		return []byte{b}, uint64(b), nil
	}
	n := 256 - int(b)
	if n < 1 || n > 8 {
		return nil, 0, errors.New("testcluster: invalid gob count prefix")
	}
	prefix = make([]byte, 1+n)
	prefix[0] = b
	if _, err := io.ReadFull(br, prefix[1:]); err != nil {
		return nil, 0, err
	}
	for _, vb := range prefix[1:] {
		size = size<<8 | uint64(vb)
	}
	return prefix, size, nil
}

// ---------------------------------------------------------------------------
// Fault-injection tests: the per-worker error-attribution contract of the
// distribution path.

// TestDistributePartitionsNamesDroppedWorker pins the attribution fix: a
// connection dropped mid-way through a chunked partition transfer must
// fail DistributePartitions promptly with a *PartitionError naming the
// dropped worker, so a retry layer can re-stream exactly that transfer.
func TestDistributePartitionsNamesDroppedWorker(t *testing.T) {
	const n = 3
	m := startTestCluster(t, n, clusterConfig{
		master: MasterConfig{ChunkRows: 1, ChunkWindow: 1, StallTimeout: 10 * time.Second},
		faults: map[int]*workerFault{1: {dropAfterFrames: 3}},
	})
	rng := rand.New(rand.NewSource(90))
	a := mat.Rand(24, 3, rng)
	code, err := coding.NewMDSCode(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	start := time.Now()
	err = m.DistributePartitions(0, enc)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("DistributePartitions succeeded despite a mid-stream drop")
	}
	var pe *PartitionError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not carry a *PartitionError", err)
	}
	if pe.Worker != 1 {
		t.Fatalf("PartitionError names worker %d, want 1", pe.Worker)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("failure took %v — detected by the stall deadline, not the dead connection", elapsed)
	}
}

// TestDistributePartitionsAttributesStalledWorker covers the second
// failure shape: a worker that stays connected but goes silent (no chunk
// acks). The transfer must fail on the credit stall deadline, again naming
// the worker.
func TestDistributePartitionsAttributesStalledWorker(t *testing.T) {
	const n = 2
	m := startTestCluster(t, n, clusterConfig{
		master: MasterConfig{ChunkRows: 1, ChunkWindow: 1, StallTimeout: 200 * time.Millisecond},
		faults: map[int]*workerFault{0: {stallAfterFrames: 2}},
	})
	rng := rand.New(rand.NewSource(91))
	a := mat.Rand(16, 2, rng)
	code, err := coding.NewMDSCode(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	err = m.DistributePartitions(0, enc)
	if err == nil {
		t.Fatal("DistributePartitions succeeded despite a stalled worker")
	}
	var pe *PartitionError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not carry a *PartitionError", err)
	}
	if pe.Worker != 0 {
		t.Fatalf("PartitionError names worker %d, want 0", pe.Worker)
	}
	if !strings.Contains(err.Error(), "credit") {
		t.Fatalf("stalled transfer error should mention the missing credit, got: %v", err)
	}
}

// TestDistributePartitionsAggregatesFailures checks that several broken
// workers are all named: the joined error exposes each *PartitionError.
func TestDistributePartitionsAggregatesFailures(t *testing.T) {
	const n = 3
	m := startTestCluster(t, n, clusterConfig{
		master: MasterConfig{ChunkRows: 1, ChunkWindow: 1, StallTimeout: 10 * time.Second},
		faults: map[int]*workerFault{
			0: {dropAfterFrames: 2},
			2: {dropAfterFrames: 3},
		},
	})
	rng := rand.New(rand.NewSource(92))
	a := mat.Rand(30, 2, rng)
	code, err := coding.NewMDSCode(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	err = m.DistributePartitions(0, enc)
	if err == nil {
		t.Fatal("DistributePartitions succeeded despite two dropped workers")
	}
	workers := map[int]bool{}
	var walk func(error)
	walk = func(e error) {
		var pe *PartitionError
		if errors.As(e, &pe) {
			workers[pe.Worker] = true
		}
		if joined, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range joined.Unwrap() {
				walk(sub)
			}
		}
	}
	walk(err)
	if !workers[0] || !workers[2] {
		t.Fatalf("aggregated error names workers %v, want both 0 and 2 (err: %v)", workers, err)
	}
	if workers[1] {
		t.Fatalf("healthy worker 1 was blamed: %v", err)
	}
}

// TestSlowReaderRoundStillCompletes exercises the slow-reader fault: a
// worker whose inbound frames are delayed must slow the round, not break
// it — distribution and decode stay correct.
func TestSlowReaderRoundStillCompletes(t *testing.T) {
	const n, k = 3, 2
	m := startTestCluster(t, n, clusterConfig{
		faults: map[int]*workerFault{2: {frameDelay: 2 * time.Millisecond}},
	})
	rng := rand.New(rand.NewSource(93))
	a := mat.Rand(24, 4, rng)
	x := []float64{1, -2, 0.5, 3}
	code, err := coding.NewMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials, _, err := m.RunRound(0, 0, x, plan, k, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
		t.Fatal("decode mismatch behind a slow-reader fault")
	}
}
