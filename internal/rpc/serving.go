package rpc

import (
	"context"
	"fmt"
	"sync"

	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/sched"
)

// This file is the multi-job serving layer: one master holds any number
// of jobs, each with its own encoded datasets (float64 and GF), round
// workspaces, plan buffer, and result channels, all multiplexed over the
// same worker connections. Job 0 — the built-in default job every
// promoted Master method acts on — travels on the untagged legacy wire
// frames, so a single-tenant master is byte-identical on the wire to the
// pre-serving one. Rounds across jobs run concurrently: the per-worker
// readLoops demux results by (job, iter, phase) to the owning job's
// channels, so worker compute for one job overlaps master decode for
// another. A wait queue in front of the round path (MaxConcurrentRounds,
// PriorityPolicy) bounds that concurrency for co-tenancy.

// jobPhaseBase is the floor of the wire-phase namespace handed to
// non-default jobs. The default job's user phases pass through verbatim
// (identity, preserving legacy traffic), so any user phase below this
// bound can never collide with an allocated one.
const jobPhaseBase = 1 << 20

// JobConfig configures one served job.
type JobConfig struct {
	// Exec pins this job's master-side compute budget (decode pool and
	// fan-out) for co-tenancy, overriding the master's Exec. The zero
	// value inherits MasterConfig.Exec. Drivers read it via Job.Exec and
	// wire it to the codecs they pair with the job.
	Exec kernel.Exec
	// Priority orders this job's parked rounds for priority-aware
	// policies (e.g. HighestPriority). FCFS ignores it.
	Priority int
}

// Job is one tenant of a serving master: a private phase namespace of
// encoded datasets plus the round machinery to compute over them. Its
// Distribute/Run method set mirrors the Master's one-to-one; the Master's
// own methods delegate to the built-in default job (id 0).
//
// A Job's round methods must not be called concurrently with each other —
// one job runs one round at a time, exactly like a pre-serving master.
// Different jobs' rounds may (and should) run concurrently.
type Job struct {
	m   *Master
	id  int
	cfg JobConfig

	mu sync.Mutex
	// blockRows/gfBlockRows record each distributed phase's partition
	// rows, keyed by the job's own (user) phase numbers.
	blockRows   map[int]int
	gfBlockRows map[int]int
	// phaseMap translates this job's user phases to master-wide wire
	// phases (nil for the default job, whose mapping is identity).
	phaseMap map[int]int

	// results/gfResults/errs receive this job's demuxed traffic from the
	// shared readLoops.
	results   chan *Result
	gfResults chan *GFResult
	errs      chan error

	round   roundWorkspace
	gfRound gfRoundWorkspace
	planBuf sched.PlanBuffer
}

// initJob readies a (possibly embedded) Job in place.
func initJob(j *Job, m *Master, id int, cfg JobConfig) {
	j.m = m
	j.id = id
	j.cfg = cfg
	j.blockRows = map[int]int{}
	j.gfBlockRows = map[int]int{}
	if id != 0 {
		j.phaseMap = map[int]int{}
	}
	// Capacities match the pre-serving master's single channel set: deep
	// enough that a full cluster's round responses never block a readLoop
	// in steady state.
	j.results = make(chan *Result, 1024)
	j.gfResults = make(chan *GFResult, 1024)
	j.errs = make(chan error, 16)
}

// OpenJob registers a new job with the master. The job sees the same
// worker pool as every other; its phase numbers are private, so two jobs'
// phase 0 datasets coexist on the workers. Close the job when done to
// release its retained partitions.
func (m *Master) OpenJob(cfg JobConfig) *Job {
	m.jobsMu.Lock()
	m.jobSeq++
	j := &Job{}
	initJob(j, m, m.jobSeq, cfg)
	m.jobs[j.id] = j
	m.jobsMu.Unlock()
	return j
}

// ID returns the job's id (0 for the master's built-in default job).
func (j *Job) ID() int { return j.id }

// Exec returns the job's compute budget: its own JobConfig.Exec when set,
// else the master's. Drivers pass it to the codecs they pair with the job
// so co-tenant decodes stay within their lanes.
func (j *Job) Exec() kernel.Exec {
	if j.cfg.Exec != (kernel.Exec{}) {
		return j.cfg.Exec
	}
	return j.m.cfg.Exec
}

// Close deregisters the job and drops its retained partitions from the
// master's re-stream store. Results still in flight for the job are
// discarded by the readLoops. Closing the default job is a no-op — it
// lives as long as the master.
func (j *Job) Close() {
	if j.id == 0 {
		return
	}
	m := j.m
	m.jobsMu.Lock()
	delete(m.jobs, j.id)
	m.jobsMu.Unlock()
	j.mu.Lock()
	wps := make([]int, 0, len(j.phaseMap))
	for _, wp := range j.phaseMap {
		wps = append(wps, wp)
	}
	j.mu.Unlock()
	m.mu.Lock()
	for _, wp := range wps {
		delete(m.parts, wp)
		delete(m.gfParts, wp)
	}
	m.mu.Unlock()
}

// wirePhase translates one of the job's user phases to the master-wide
// wire phase that names the dataset on the workers. The default job is
// identity — its traffic must stay byte-identical to a pre-serving
// master's — while other jobs allocate from the shared namespace above
// jobPhaseBase on first use.
//
//s2c2:noalloc
func (j *Job) wirePhase(phase int) int {
	if j.id == 0 {
		return phase
	}
	j.mu.Lock()
	wp, ok := j.phaseMap[phase]
	if !ok {
		wp = int(j.m.wireSeq.Add(1))
		j.phaseMap[phase] = wp
	}
	j.mu.Unlock()
	return wp
}

// jobFor routes a result frame's job tag to the owning job, or nil when
// the job is closed or was never opened (the frame is dropped). The
// default job skips the registry lock: it always exists, and legacy
// single-job traffic must not contend with OpenJob/Close.
//
//s2c2:noalloc
func (m *Master) jobFor(id int) *Job {
	if id == 0 {
		return &m.def
	}
	m.jobsMu.RLock()
	j := m.jobs[id]
	m.jobsMu.RUnlock()
	return j
}

// broadcastWorkerError announces a worker death to every job's error
// channel: any job's round may hold assignments on the dead connection,
// and each must fold its own rows back. Sends never block — a job not in
// a round has nobody draining its channel, and a 16-deep buffer already
// holds more deaths than a round can act on.
func (m *Master) broadcastWorkerError(we *WorkerError) {
	m.jobsMu.RLock()
	for _, j := range m.jobs {
		select {
		case j.errs <- we:
		default:
		}
	}
	m.jobsMu.RUnlock()
}

// JobTicket is one parked round as a PriorityPolicy sees it.
type JobTicket struct {
	// Job is the owning job's id (0 = the master's default job).
	Job int
	// Priority is the owning job's JobConfig.Priority.
	Priority int
	// Seq is the admission order: lower parked earlier.
	Seq int
}

// PriorityPolicy picks which parked round runs when a concurrency slot
// frees (MaxConcurrentRounds). Implementations must be safe for
// concurrent use by multiple goroutines.
type PriorityPolicy interface {
	// Pick returns the index into queued of the round to run next. The
	// slice is admission-ordered (Seq ascending) and valid only for the
	// duration of the call; out-of-range returns fall back to index 0.
	Pick(queued []JobTicket) int
}

// FCFS returns the first-come-first-served policy: an identity op over
// the admission-ordered queue, preserving the pre-serving behavior. It is
// what a nil MasterConfig.Policy selects.
func FCFS() PriorityPolicy { return fcfsPolicy{} }

type fcfsPolicy struct{}

func (fcfsPolicy) Pick([]JobTicket) int { return 0 }

// HighestPriority returns a policy that runs the parked round whose job
// has the largest JobConfig.Priority, FCFS among equals.
func HighestPriority() PriorityPolicy { return highestPriority{} }

type highestPriority struct{}

func (highestPriority) Pick(queued []JobTicket) int {
	best := 0
	for i := range queued {
		if queued[i].Priority > queued[best].Priority {
			best = i
		}
	}
	return best
}

// roundTicket parks one round in the wait queue until a slot frees.
type roundTicket struct {
	j   *Job
	seq int
	// ready closes when releaseRoundSlot hands this ticket the freed slot
	// (the slot transfers: activeRounds is not decremented).
	ready chan struct{}
}

// acquireRoundSlot admits a round under the MaxConcurrentRounds cap,
// parking it in the wait queue when the cap is reached. Queued rounds
// observe caller cancellation and master shutdown. The un-queued fast
// path — every round, with the cap unset or un-contended — does not
// allocate.
//
//s2c2:noalloc
func (m *Master) acquireRoundSlot(ctx context.Context, j *Job) error {
	if m.cfg.MaxConcurrentRounds <= 0 {
		return nil
	}
	m.qmu.Lock()
	if m.activeRounds < m.cfg.MaxConcurrentRounds && len(m.waitq) == 0 {
		m.activeRounds++
		m.qmu.Unlock()
		return nil
	}
	// Parked path: a queued round is off the steady-state hot path by
	// definition, so the ticket may allocate.
	//s2c2:waive noalloc
	t := &roundTicket{j: j, seq: m.ticketSeq, ready: make(chan struct{})}
	m.ticketSeq++
	//s2c2:waive noalloc
	m.waitq = append(m.waitq, t)
	m.qmu.Unlock()
	select {
	case <-t.ready:
		return nil
	case <-ctx.Done():
		m.cancelTicket(t)
		return fmt.Errorf("rpc: job %d round canceled while queued: %w", j.id, ctx.Err())
	case <-m.quit:
		m.cancelTicket(t)
		return fmt.Errorf("rpc: master shut down while job %d round was queued", j.id)
	}
}

// releaseRoundSlot frees one concurrency slot: the policy's pick among
// the parked rounds inherits it directly (activeRounds unchanged — the
// slot transfers), or the active count drops when nothing is parked.
//
//s2c2:noalloc
func (m *Master) releaseRoundSlot() {
	if m.cfg.MaxConcurrentRounds <= 0 {
		return
	}
	m.qmu.Lock()
	if i := m.pickLocked(); i >= 0 {
		t := m.waitq[i]
		copy(m.waitq[i:], m.waitq[i+1:])
		m.waitq[len(m.waitq)-1] = nil
		m.waitq = m.waitq[:len(m.waitq)-1]
		close(t.ready)
		m.qmu.Unlock()
		return
	}
	m.activeRounds--
	m.qmu.Unlock()
}

// cancelTicket withdraws a parked round after its caller gave up (ctx or
// shutdown). If the grant raced the cancellation — the ticket is no
// longer queued because releaseRoundSlot already handed it the slot — the
// slot is passed on instead of leaking.
func (m *Master) cancelTicket(t *roundTicket) {
	m.qmu.Lock()
	for i, q := range m.waitq {
		if q == t {
			// In-place removal: the append target is the slice's own
			// backing array and strictly shrinks.
			//s2c2:waive noalloc
			m.waitq = append(m.waitq[:i], m.waitq[i+1:]...)
			m.qmu.Unlock()
			return
		}
	}
	m.qmu.Unlock()
	m.releaseRoundSlot()
}

// pickLocked selects the waitq index to grant the freed slot, -1 when
// nothing is parked. Called with qmu held. A nil policy is FCFS without
// even building the ticket view.
//
//s2c2:noalloc
func (m *Master) pickLocked() int {
	n := len(m.waitq)
	if n == 0 {
		return -1
	}
	if m.cfg.Policy == nil || n == 1 {
		return 0
	}
	// Amortized: the view buffer is reused across picks.
	m.ticketView = m.ticketView[:0]
	for _, t := range m.waitq {
		//s2c2:waive noalloc
		m.ticketView = append(m.ticketView, JobTicket{Job: t.j.id, Priority: t.j.cfg.Priority, Seq: t.seq})
	}
	i := m.cfg.Policy.Pick(m.ticketView)
	if i < 0 || i >= n {
		i = 0
	}
	return i
}

// QueuedRounds reports how many rounds are parked in the wait queue.
func (m *Master) QueuedRounds() int {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	return len(m.waitq)
}

// ActiveRounds reports how many rounds hold concurrency slots. Always 0
// when MaxConcurrentRounds is unset (no accounting without a cap).
func (m *Master) ActiveRounds() int {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	return m.activeRounds
}

// Jobs reports how many jobs are open, the default job included.
func (m *Master) Jobs() int {
	m.jobsMu.RLock()
	defer m.jobsMu.RUnlock()
	return len(m.jobs)
}

// Compile-time interface checks for the built-in policies.
var (
	_ PriorityPolicy = fcfsPolicy{}
	_ PriorityPolicy = highestPriority{}
)
