package rpc

// gffuzz_test.go: native fuzz targets and deterministic edge-case tests
// for the GF(2³¹−1) frame decoders, mirroring the float64 wire edge-case
// suite — hostile element counts, truncation at every cut point, and
// duplicate/out-of-order chunk streams must surface as protocol errors,
// never as panics or silently-corrupt partitions.

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/wire"
)

// dialGFVictim starts a real worker against a hand-rolled master socket
// and returns the accepted conn (handshake + hello consumed), a framer
// pair, and the worker's exit channel.
func dialGFVictim(t *testing.T) (net.Conn, *wire.Writer, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	done := make(chan error, 1)
	go func() {
		w, err := NewWorker(WorkerConfig{MasterAddr: ln.Addr().String()})
		if err != nil {
			done <- err
			return
		}
		done <- w.Run()
	}()
	c, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if _, err := wire.ReadHandshake(c); err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(c)
	if typ, _, err := r.Next(); err != nil || typ != wire.TypeHello {
		t.Fatalf("hello: %v %v", typ, err)
	}
	return c, wire.NewWriter(c), done
}

func sendGFStart(t *testing.T, w *wire.Writer, phase, seq, rows, cols, chunkRows int) {
	t.Helper()
	w.Begin(wire.TypeGFPartitionStart)
	w.Int(phase)
	w.Int(seq)
	w.Int(rows)
	w.Int(cols)
	w.Int(chunkRows)
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
}

func sendGFChunk(t *testing.T, w *wire.Writer, phase, seq, lo, hi int, vals []uint32) {
	t.Helper()
	w.Begin(wire.TypeGFPartitionChunk)
	w.Int(phase)
	w.Int(seq)
	w.Int(lo)
	w.Int(hi)
	w.Uint32s(vals)
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
}

func expectWorkerError(t *testing.T, done chan error, want string) {
	t.Helper()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("worker exited with %v, want error containing %q", err, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("worker did not exit (want error containing %q)", want)
	}
}

// TestWorkerRejectsOutOfOrderGFChunks is the GF mirror of the float64
// sequential-streaming guard: a duplicate chunk could otherwise drive the
// remaining-row count to zero and publish a partition whose uncovered
// rows are silently zero.
func TestWorkerRejectsOutOfOrderGFChunks(t *testing.T) {
	_, w, done := dialGFVictim(t)
	sendGFStart(t, w, 0, 1, 4, 1, 2)
	sendGFChunk(t, w, 0, 1, 0, 2, []uint32{1, 2})
	sendGFChunk(t, w, 0, 1, 0, 2, []uint32{1, 2}) // duplicate
	expectWorkerError(t, done, "out of order")
}

// TestWorkerRejectsNonCanonicalGFChunk pins the canonicality guard: a
// lane ≥ P would break the Mersenne-folded arithmetic's overflow bounds,
// so it must be a protocol error at ingest.
func TestWorkerRejectsNonCanonicalGFChunk(t *testing.T) {
	_, w, done := dialGFVictim(t)
	sendGFStart(t, w, 0, 1, 2, 1, 2)
	sendGFChunk(t, w, 0, 1, 0, 2, []uint32{uint32(gf.P), 0}) // P itself is out of range
	expectWorkerError(t, done, "non-canonical")
}

// TestWorkerRejectsHostileGFPartitionStart pins the dimension guard: a
// header whose Rows·Cols exceeds the element bound is rejected before any
// allocation (the bounds check divides, so it cannot be overflowed).
func TestWorkerRejectsHostileGFPartitionStart(t *testing.T) {
	_, w, done := dialGFVictim(t)
	sendGFStart(t, w, 0, 1, 1<<20, 1<<20, 64) // 2⁴⁰ elements
	expectWorkerError(t, done, "rejected")
}

// TestWorkerRejectsGFChunkCountMismatch pins the exact-count contract of
// the zero-copy chunk decode: a chunk claiming rows [0,2) of a 1-column
// partition but carrying three elements must fail, not spill.
func TestWorkerRejectsGFChunkCountMismatch(t *testing.T) {
	_, w, done := dialGFVictim(t)
	sendGFStart(t, w, 0, 1, 4, 1, 2)
	sendGFChunk(t, w, 0, 1, 0, 2, []uint32{1, 2, 3}) // 3 values for 2 rows
	expectWorkerError(t, done, "malformed")
}

// buildGFResultStream encodes one valid GF result frame stream.
func buildGFResultStream(tb testing.TB) []byte {
	var buf bytes.Buffer
	c := &wireConn{w: wire.NewWriter(&buf)}
	res := &GFResult{
		Iter: 3, Phase: 1, Worker: 2, ComputeNanos: 12345,
		Ranges: []coding.Range{{Lo: 0, Hi: 4}},
		Values: []gf.Elem{1, 2, 3, gf.Elem(gf.P - 1)},
	}
	if err := c.sendGFResult(res); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestGFResultFrameTruncatedAtEveryCut cuts a valid GF result frame at
// every byte boundary: the master-side decode must error (truncation or
// EOF), never decode garbage or panic.
func TestGFResultFrameTruncatedAtEveryCut(t *testing.T) {
	full := buildGFResultStream(t)
	for cut := 0; cut < len(full); cut++ {
		tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(bytes.NewReader(full[:cut]))}
		msg := &Msg{}
		if err := tc.recv(msg); err == nil {
			t.Fatalf("cut at %d decoded without error", cut)
		}
	}
	// The uncut frame decodes cleanly.
	tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(bytes.NewReader(full))}
	msg := &Msg{}
	if err := tc.recv(msg); err != nil || msg.Kind != KindGFResult {
		t.Fatalf("full frame: kind %d err %v", msg.Kind, err)
	}
	if len(msg.GFResult.Values) != 4 || msg.GFResult.Values[3] != gf.Elem(gf.P-1) {
		t.Fatalf("decoded values %v", msg.GFResult.Values)
	}
}

// TestGFResultHostileElementCount declares a value count the frame cannot
// hold: the division-based guard must reject it before sizing anything.
func TestGFResultHostileElementCount(t *testing.T) {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Begin(wire.TypeGFResult)
	w.Int(0)           // iter
	w.Int(0)           // phase
	w.Int(0)           // worker
	w.Uvarint(0)       // partial
	w.Uvarint(0)       // nanos
	w.Int(0)           // no ranges
	w.Uvarint(1 << 40) // hostile element count, no bytes behind it
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(bytes.NewReader(buf.Bytes()))}
	msg := &Msg{}
	if err := tc.recv(msg); err == nil {
		t.Fatal("hostile element count decoded without error")
	}
}

// FuzzGFResultFrame feeds arbitrary byte streams to the master-side wire
// decoder: it must terminate without panicking on any input, and whatever
// decodes successfully must be a known frame kind.
func FuzzGFResultFrame(f *testing.F) {
	valid := buildGFResultStream(f)
	f.Add(valid)
	for _, cut := range []int{1, len(valid) / 2, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, byte(wire.TypeGFResult)})
	f.Fuzz(func(t *testing.T, data []byte) {
		tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(bytes.NewReader(data))}
		msg := &Msg{}
		for {
			if err := tc.recv(msg); err != nil {
				return // any error ends the stream; panics fail the fuzz
			}
			if msg.Kind == 0 {
				t.Fatal("recv succeeded with zero kind")
			}
		}
	})
}

// buildGFChunkSeed builds one seed stream for the chunk-assembly fuzzer.
// variant 0 is a fully valid stream; the others are canonical corruptions
// (duplicate chunk, gap, count mismatch, non-canonical lane).
func buildGFChunkSeed(tb testing.TB, variant int) []byte {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	start := func(rows, cols int) {
		w.Begin(wire.TypeGFPartitionStart)
		w.Int(0)
		w.Int(1)
		w.Int(rows)
		w.Int(cols)
		w.Int(2)
		if err := w.End(); err != nil {
			tb.Fatal(err)
		}
	}
	chunk := func(lo, hi int, vals []uint32) {
		w.Begin(wire.TypeGFPartitionChunk)
		w.Int(0)
		w.Int(1)
		w.Int(lo)
		w.Int(hi)
		w.Uint32s(vals)
		if err := w.End(); err != nil {
			tb.Fatal(err)
		}
	}
	start(4, 1)
	switch variant {
	case 0:
		chunk(0, 2, []uint32{1, 2})
		chunk(2, 4, []uint32{3, 4})
	case 1:
		chunk(0, 2, []uint32{1, 2})
		chunk(0, 2, []uint32{1, 2}) // duplicate
	case 2:
		chunk(2, 4, []uint32{3, 4}) // gap: starts past row 0
	case 3:
		chunk(0, 2, []uint32{1, 2, 3}) // count mismatch
	case 4:
		chunk(0, 2, []uint32{uint32(gf.P), 1}) // non-canonical lane
	}
	return buf.Bytes()
}

// FuzzGFChunkStream drives a real Worker's receive loop over arbitrary
// inbound byte streams (GF partition starts, chunks, work, anything):
// Run must terminate without panicking, and a published partition can
// only ever come from a complete in-order stream.
func FuzzGFChunkStream(f *testing.F) {
	for v := 0; v <= 4; v++ {
		f.Add(buildGFChunkSeed(f, v))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the partition allocation bound so a fuzzed header cannot ask
		// for gigabytes; the guard logic under test is unchanged.
		old := maxPartitionElems
		maxPartitionElems = 1 << 14
		defer func() { maxPartitionElems = old }()
		tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(bytes.NewReader(data))}
		w := &Worker{
			cfg:          WorkerConfig{Slowdown: 1, MaxResultRows: 4 << 20},
			c:            tc,
			partitions:   map[int]*mat.Dense{},
			pending:      map[int]*partBuild{},
			gfPartitions: map[int]*gf.Matrix{},
			gfPending:    map[int]*gfPartBuild{},
		}
		w.Run() //nolint:errcheck // any error is a valid outcome; panics fail the fuzz
		// Invariant: every published GF partition is fully assembled and
		// canonical (the guards must make partial publication impossible).
		w.mu.Lock()
		defer w.mu.Unlock()
		for phase, p := range w.gfPartitions {
			if !gf.Valid(p.Data()) {
				t.Fatalf("phase %d published a non-canonical partition", phase)
			}
		}
	})
}
