package rpc

// multijob_test.go covers the multi-job serving layer: M jobs of mixed
// element types and batch widths racing over one shared cluster with
// bit-exact decodes (the tentpole acceptance property), the wait queue's
// shutdown and policy behavior, the serving-path lifecycle bugfixes
// (distribute cancellation mid-backoff, admission-loop listener death),
// and the per-job steady-state zero-allocation bar.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/wire"
)

// flatSpeeds returns n unit speeds (uniform workers).
func flatSpeeds(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

// TestConcurrentJobsExactness is the tentpole acceptance property: four
// jobs — the master's default float64 job, a GF job, a batched float64
// job, and a batched GF job, every one using phase 0 of its own namespace
// — run rounds concurrently over one shared cluster, under a concurrency
// cap that forces the wait queue into play, and each decode matches a
// local recompute (bit-exact on the GF paths). Runs on both transports;
// the race detector covers the demux and queue machinery.
func TestConcurrentJobsExactness(t *testing.T) {
	for _, tc := range []struct {
		name   string
		useGob bool
	}{
		{"wire", false},
		{"gob", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const (
				n, k  = 4, 3
				iters = 3
			)
			m := startTestCluster(t, n, clusterConfig{
				master: MasterConfig{MaxConcurrentRounds: 2},
				worker: func(i int) WorkerConfig {
					return WorkerConfig{UseGob: tc.useGob, PerRowDelay: 50 * time.Microsecond}
				},
			})
			rng := rand.New(rand.NewSource(1019))
			strat := &sched.GeneralS2C2{N: n, K: k}
			speeds := flatSpeeds(n)

			var wg sync.WaitGroup
			errCh := make(chan error, 4)
			fail := func(format string, args ...any) {
				errCh <- fmt.Errorf(format, args...)
			}

			// Job 1 of 4: the default float64 job on the legacy frames.
			{
				a := mat.Rand(36, 5, rng)
				code, err := coding.NewMDSCode(n, k)
				if err != nil {
					t.Fatal(err)
				}
				enc := code.Encode(a)
				if err := m.DistributePartitions(0, enc); err != nil {
					t.Fatal(err)
				}
				x := make([]float64, 5)
				for i := range x {
					x[i] = rng.NormFloat64()
				}
				want := mat.MatVec(a, x)
				wg.Add(1)
				go func() {
					defer wg.Done()
					s := *strat
					s.BlockRows, s.Granularity = enc.BlockRows, enc.BlockRows
					for iter := 0; iter < iters; iter++ {
						plan, err := s.Plan(speeds)
						if err != nil {
							fail("default job plan: %v", err)
							return
						}
						partials, _, err := m.RunRound(iter, 0, x, plan, k, 10.0)
						if err != nil {
							fail("default job round %d: %v", iter, err)
							return
						}
						got, err := enc.DecodeMatVec(partials)
						if err != nil {
							fail("default job decode %d: %v", iter, err)
							return
						}
						if !mat.VecApproxEqual(got, want, 1e-8) {
							fail("default job iter %d: decode drifted from A·x", iter)
							return
						}
					}
				}()
			}

			// Job 2 of 4: exact GF(2³¹−1), width 1 — must be bit-exact.
			{
				j := m.OpenJob(JobConfig{})
				defer j.Close()
				rows, cols := 30, 4
				data := randElems(rng, rows*cols)
				code, err := coding.NewGFMDSCode(n, k)
				if err != nil {
					t.Fatal(err)
				}
				enc, err := code.Encode(rows, cols, data)
				if err != nil {
					t.Fatal(err)
				}
				if err := j.DistributeGFPartitions(0, enc.Parts); err != nil {
					t.Fatal(err)
				}
				x := randElems(rng, cols)
				want := gfGroundTruth(rows, cols, data, x)
				wg.Add(1)
				go func() {
					defer wg.Done()
					s := *strat
					s.BlockRows, s.Granularity = enc.BlockRows, enc.BlockRows
					for iter := 0; iter < iters; iter++ {
						plan, err := s.Plan(speeds)
						if err != nil {
							fail("gf job plan: %v", err)
							return
						}
						partials, _, err := j.RunGFRound(iter, 0, x, plan, k, 10.0)
						if err != nil {
							fail("gf job round %d: %v", iter, err)
							return
						}
						got, err := enc.DecodeMatVec(partials)
						if err != nil {
							fail("gf job decode %d: %v", iter, err)
							return
						}
						for r := range want {
							if got[r] != want[r] {
								fail("gf job iter %d row %d: %d != local %d", iter, r, got[r], want[r])
								return
							}
						}
					}
				}()
			}

			// Job 3 of 4: batched float64, width 3.
			{
				const w = 3
				j := m.OpenJob(JobConfig{})
				defer j.Close()
				a := mat.Rand(24, 6, rng)
				code, err := coding.NewMDSCode(n, k)
				if err != nil {
					t.Fatal(err)
				}
				enc := code.Encode(a)
				if err := j.DistributePartitions(0, enc); err != nil {
					t.Fatal(err)
				}
				xs := make([]float64, w*6)
				for i := range xs {
					xs[i] = rng.NormFloat64()
				}
				rows := 24
				wg.Add(1)
				go func() {
					defer wg.Done()
					s := *strat
					s.BlockRows, s.Granularity = enc.BlockRows, enc.BlockRows
					lane := make([]float64, rows)
					for iter := 0; iter < iters; iter++ {
						plan, err := s.Plan(speeds)
						if err != nil {
							fail("batch job plan: %v", err)
							return
						}
						partials, _, err := j.RunRoundBatch(iter, 0, xs, w, plan, k, 10.0)
						if err != nil {
							fail("batch job round %d: %v", iter, err)
							return
						}
						got, err := enc.DecodeMatVec(partials)
						if err != nil {
							fail("batch job decode %d: %v", iter, err)
							return
						}
						for l := 0; l < w; l++ {
							want := mat.MatVec(a, xs[l*6:(l+1)*6])
							for r := 0; r < rows; r++ {
								lane[r] = got[r*w+l]
							}
							if !mat.VecApproxEqual(lane, want, 1e-8) {
								fail("batch job iter %d lane %d drifted from A·x_l", iter, l)
								return
							}
						}
					}
				}()
			}

			// Job 4 of 4: batched GF, width 2 — bit-exact per lane.
			{
				const w = 2
				j := m.OpenJob(JobConfig{})
				defer j.Close()
				rows, cols := 20, 5
				data := randElems(rng, rows*cols)
				code, err := coding.NewGFMDSCode(n, k)
				if err != nil {
					t.Fatal(err)
				}
				enc, err := code.Encode(rows, cols, data)
				if err != nil {
					t.Fatal(err)
				}
				if err := j.DistributeGFPartitions(0, enc.Parts); err != nil {
					t.Fatal(err)
				}
				xs := randElems(rng, w*cols)
				wg.Add(1)
				go func() {
					defer wg.Done()
					s := *strat
					s.BlockRows, s.Granularity = enc.BlockRows, enc.BlockRows
					for iter := 0; iter < iters; iter++ {
						plan, err := s.Plan(speeds)
						if err != nil {
							fail("gf batch job plan: %v", err)
							return
						}
						partials, _, err := j.RunGFRoundBatch(iter, 0, xs, w, plan, k, 10.0)
						if err != nil {
							fail("gf batch job round %d: %v", iter, err)
							return
						}
						got, err := enc.DecodeMatVec(partials)
						if err != nil {
							fail("gf batch job decode %d: %v", iter, err)
							return
						}
						for l := 0; l < w; l++ {
							want := gfGroundTruth(rows, cols, data, xs[l*cols:(l+1)*cols])
							for r := range want {
								if got[r*w+l] != want[r] {
									fail("gf batch job iter %d lane %d row %d: %d != %d", iter, l, r, got[r*w+l], want[r])
									return
								}
							}
						}
					}
				}()
			}

			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
		})
	}
}

// TestQueuedRoundsObserveShutdown pins the wait-queue half of the
// convenience-wrapper bugfix: rounds parked behind MaxConcurrentRounds=1
// — submitted through the background-context wrappers, with no caller
// context to cancel — must return errors when the master shuts down,
// instead of wedging in the queue forever.
func TestQueuedRoundsObserveShutdown(t *testing.T) {
	const n, queued = 1, 3
	m := startTestCluster(t, n, clusterConfig{
		master: MasterConfig{MaxConcurrentRounds: 1, StallTimeout: 30 * time.Second},
		worker: func(i int) WorkerConfig {
			return WorkerConfig{PerRowDelay: time.Second} // slot holder never finishes on its own
		},
	})
	rng := rand.New(rand.NewSource(1031))
	a := mat.Rand(12, 3, rng)
	code, err := coding.NewMDSCode(n, n)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	x := []float64{1, 2, 3}
	strat := &sched.GeneralS2C2{N: n, K: n, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan(flatSpeeds(n))
	if err != nil {
		t.Fatal(err)
	}

	// One dataset per job (distribution is unaffected by PerRowDelay).
	jobs := make([]*Job, queued)
	for i := range jobs {
		jobs[i] = m.OpenJob(JobConfig{})
		if err := jobs[i].DistributePartitions(0, enc); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, queued+1)
	// The slot holder: a round the slow worker will not answer.
	go func() {
		_, _, err := m.RunRound(0, 0, x, plan, n, 10.0)
		errs <- err
	}()
	waitUntil(t, 5*time.Second, "the slot holder to start", func() bool { return m.ActiveRounds() == 1 })
	// The parked rounds, through the Background()-pinned wrappers.
	for _, j := range jobs {
		go func(j *Job) {
			_, _, err := j.RunRound(0, 0, x, plan, n, 10.0)
			errs <- err
		}(j)
	}
	waitUntil(t, 5*time.Second, "all rounds to park in the wait queue", func() bool {
		return m.QueuedRounds() == queued
	})

	m.Shutdown()
	for i := 0; i < queued+1; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Fatal("a round submitted before Shutdown returned success")
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%d of %d rounds still wedged after Shutdown", queued+1-i, queued+1)
		}
	}
}

// TestDistributeCancelMidBackoff pins the retry-engine half of the
// cancellation bugfix: a distribute whose retry engine is sleeping out a
// long backoff must return promptly when the caller's context is
// canceled — with the per-worker *PartitionError attribution from the
// attempts already made intact.
func TestDistributeCancelMidBackoff(t *testing.T) {
	const n = 2
	m := startTestCluster(t, n, clusterConfig{
		master: MasterConfig{
			ChunkRows: 1, ChunkWindow: 1, StallTimeout: 10 * time.Second,
			// No spare is parked, so the first retry sleeps the full base
			// backoff — far beyond the context deadline.
			Retry: RetryConfig{MaxAttempts: 4, BaseBackoff: 30 * time.Second, AttemptTimeout: 2 * time.Second},
		},
		faults: map[int]*workerFault{1: {dropAfterFrames: 3}},
	})
	rng := rand.New(rand.NewSource(1033))
	a := mat.Rand(24, 3, rng)
	code, err := coding.NewMDSCode(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = m.DistributePartitionsContext(ctx, 0, enc)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("distribute over a dropped link reported success")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("canceled distribute returned after %v — it slept through the 30s backoff", elapsed)
	}
	var pe *PartitionError
	if !errors.As(err, &pe) {
		t.Fatalf("cancellation lost the per-worker attribution: %v", err)
	}
	if pe.Worker != 1 {
		t.Fatalf("attributed worker %d, want 1 (the dropped link)", pe.Worker)
	}
}

// TestAdmitLoopExitsOnClosedListener pins the admission-loop bugfix: a
// listener that dies outside of Shutdown must be counted in
// RecoveryStats.AcceptFailures and end the loop, not spin silently
// forever — and Shutdown must still complete (it waits on the loop's
// goroutine, so a spinning loop would wedge it).
func TestAdmitLoopExitsOnClosedListener(t *testing.T) {
	m, err := NewMasterWithConfig(MasterConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	m.StartAdmissions()
	m.ln.Close() // the listener dies out from under the loop
	waitUntil(t, 5*time.Second, "the accept failure to be counted", func() bool {
		return m.RecoveryTotals().AcceptFailures >= 1
	})
	done := make(chan struct{})
	go func() {
		m.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown wedged: the admission loop did not exit on the dead listener")
	}
}

// TestHighestPriorityPolicyOrdersQueue pins the pluggable-policy seam:
// with MaxConcurrentRounds=1 and the HighestPriority policy, the parked
// round belonging to the higher-priority job runs before an
// earlier-parked low-priority one.
func TestHighestPriorityPolicyOrdersQueue(t *testing.T) {
	const n = 1
	m := startTestCluster(t, n, clusterConfig{
		master: MasterConfig{MaxConcurrentRounds: 1, Policy: HighestPriority(), StallTimeout: 30 * time.Second},
		worker: func(i int) WorkerConfig { return WorkerConfig{} },
	})
	rng := rand.New(rand.NewSource(1049))
	a := mat.Rand(8, 2, rng)
	code, err := coding.NewMDSCode(n, n)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	x := []float64{1, 1}
	strat := &sched.GeneralS2C2{N: n, K: n, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan(flatSpeeds(n))
	if err != nil {
		t.Fatal(err)
	}

	low := m.OpenJob(JobConfig{Priority: 1})
	high := m.OpenJob(JobConfig{Priority: 9})
	defer low.Close()
	defer high.Close()
	for _, j := range []*Job{low, high} {
		if err := j.DistributePartitions(0, enc); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}

	// Hold the only slot with a round that blocks until released: the
	// worker is fast, so block the round by holding the slot directly.
	if err := m.acquireRoundSlot(context.Background(), &m.def); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	var wg sync.WaitGroup
	run := func(j *Job, tag int) {
		defer wg.Done()
		if _, _, err := j.RunRound(0, 0, x, plan, n, 10.0); err != nil {
			t.Errorf("job %d round: %v", tag, err)
			return
		}
		order <- tag
	}
	wg.Add(2)
	go run(low, 1)
	waitUntil(t, 5*time.Second, "the low-priority round to park", func() bool { return m.QueuedRounds() == 1 })
	go run(high, 9)
	waitUntil(t, 5*time.Second, "the high-priority round to park", func() bool { return m.QueuedRounds() == 2 })

	m.releaseRoundSlot() // frees the slot: the policy must pick the high-priority round
	wg.Wait()
	close(order)
	first := <-order
	if first != 9 {
		t.Fatalf("first completed round was job priority %d, want the high-priority job (9)", first)
	}
}

// TestMultiJobWireRoundZeroAllocsSteadyState extends the per-round
// zero-allocation bar to the serving path: two opened jobs alternating
// steady-state rounds — job-tagged work frames out, job-tagged result
// frames in through jobFor routing — allocate nothing per round.
func TestMultiJobWireRoundZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items, forcing reallocation")
	}
	enc, results, want := gatherFixture(t)
	n, k := 10, 8

	m := &Master{cfg: MasterConfig{ReuseRound: true}}
	initJob(&m.def, m, 0, JobConfig{})
	m.jobs = map[int]*Job{0: &m.def}
	m.wireSeq.Store(jobPhaseBase)
	jobs := []*Job{m.OpenJob(JobConfig{}), m.OpenJob(JobConfig{})}

	// Pre-encode each job's result frames once, as the workers would:
	// the same fixture values, tagged with the job id.
	streams := make([]*bytes.Reader, len(jobs))
	payloads := make([][]byte, len(jobs))
	for i, j := range jobs {
		var stream bytes.Buffer
		sender := &wireConn{w: wire.NewWriter(&stream)}
		for _, r := range results {
			tagged := *r
			tagged.Job = j.id
			tagged.Phase = j.wirePhase(0)
			tagged.RowWidth = 1 // workers always stamp the width on tagged frames
			if err := sender.sendResult(&tagged); err != nil {
				t.Fatal(err)
			}
		}
		payloads[i] = stream.Bytes()
		streams[i] = bytes.NewReader(payloads[i])
	}
	tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(streams[0])}

	decWS := enc.NewDecodeWorkspace()
	dst := make([]float64, enc.OrigRows)
	x := make([]float64, enc.Cols)
	assignment := []coding.Range{{Lo: 0, Hi: enc.BlockRows}}
	msg := &Msg{}

	runRound := func(i int) {
		j := jobs[i]
		wp := j.wirePhase(0)
		ws := &j.round
		m.recycleRound(ws)
		ws.begin(n, enc.BlockRows, k, 1)
		for w := 0; w < n; w++ {
			ws.workMsg = Work{Job: j.id, Iter: 0, Phase: wp, X: x, Ranges: assignment}
			if err := tc.sendWork(&ws.workMsg); err != nil {
				t.Fatal(err)
			}
		}
		streams[i].Reset(payloads[i])
		tc.r.Reset(streams[i])
		for range results {
			if err := tc.recv(msg); err != nil {
				t.Fatal(err)
			}
			if msg.Kind != KindResult {
				t.Fatalf("kind %d", msg.Kind)
			}
			owner := m.jobFor(msg.Result.Job)
			if owner != j {
				t.Fatalf("result for job %d routed to job %d", j.id, owner.id)
			}
			r := m.getResult()
			*r, msg.Result = msg.Result, *r
			if err := ws.addResult(r, time.Millisecond); err != nil {
				t.Fatal(err)
			}
			ws.retained = append(ws.retained, r)
		}
		if ws.needed != 0 {
			t.Fatal("fixture round did not reach coverage")
		}
		partials, _, err := m.finishRound(ws)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := enc.DecodeMatVecInto(dst, partials, decWS); err != nil {
			t.Fatal(err)
		}
	}
	runRound(0) // warm both jobs: wire-phase maps, buffers, pooled slots
	runRound(1)
	if !mat.VecApproxEqual(dst, want, 1e-8) {
		t.Fatal("multi-job wire round fixture produced a wrong result")
	}
	turn := 0
	allocs := testing.AllocsPerRun(50, func() {
		runRound(turn)
		turn = 1 - turn
	})
	if allocs != 0 {
		t.Fatalf("steady-state multi-job round allocates %v/op per job, want 0", allocs)
	}
}

// TestLegacyWireTrafficByteIdentical pins the compatibility acceptance
// criterion: the default job's work frames — the only frames a single-job
// master sends during a round — are byte-identical to the pre-serving
// encoding (TypeWork, no job tag), and only non-default jobs move to the
// tagged frame types.
func TestLegacyWireTrafficByteIdentical(t *testing.T) {
	assignment := []coding.Range{{Lo: 0, Hi: 7}}
	x := []float64{1.5, -2.25, 3}

	var legacy bytes.Buffer
	c := &wireConn{w: wire.NewWriter(&legacy)}
	if err := c.sendWork(&Work{Iter: 3, Phase: 0, W: 1, X: x, Ranges: assignment}); err != nil {
		t.Fatal(err)
	}
	// Hand-build the pre-serving frame: TypeWork, iter, phase, x, ranges.
	var want bytes.Buffer
	w := wire.NewWriter(&want)
	w.Begin(wire.TypeWork)
	w.Int(3)
	w.Int(0)
	w.Float64s(x)
	w.Int(1)
	w.Int(assignment[0].Lo)
	w.Int(assignment[0].Hi)
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy.Bytes(), want.Bytes()) {
		t.Fatalf("default-job work frame is not byte-identical to the legacy encoding:\n got %x\nwant %x",
			legacy.Bytes(), want.Bytes())
	}

	// A tagged job must leave the legacy frame type.
	var tagged bytes.Buffer
	c2 := &wireConn{w: wire.NewWriter(&tagged)}
	if err := c2.sendWork(&Work{Job: 2, Iter: 3, Phase: 0, W: 1, X: x, Ranges: assignment}); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(tagged.Bytes(), want.Bytes()) {
		t.Fatal("tagged work frame collided with the legacy encoding")
	}
}
