package rpc

// soak_test.go is the chaos lifecycle soak: hundreds of mixed
// float64/GF(2³¹−1), single/batched rounds over a mixed wire/gob cluster
// while workers are killed (between rounds and mid-round), replaced via
// the admission pool, and re-streamed their slots' partitions. Every
// completed round must decode bit-exactly against a local recompute, and
// Shutdown must leave no goroutines behind. Gated behind -short so the
// default tier-1 run stays fast; CI runs it in the chaos lane under
// -race.

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
)

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		n, k      = 5, 3
		rows      = 48
		cols      = 6
		batchW    = 2
		rounds    = 240
		killEvery = 12
	)
	baseline := runtime.NumGoroutine()

	rng := rand.New(rand.NewSource(777))
	wcfg := func(i int) WorkerConfig {
		// Mixed transports, and enough per-row delay that mid-round kills
		// actually land mid-round.
		return WorkerConfig{UseGob: i%2 == 1, Slowdown: 1, PerRowDelay: 100 * time.Microsecond}
	}
	m, err := NewMasterWithConfig(MasterConfig{
		Addr:         "127.0.0.1:0",
		StallTimeout: 10 * time.Second,
		Retry:        RetryConfig{MaxAttempts: 4, BaseBackoff: 5 * time.Millisecond, AttemptTimeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Worker, n)
	for i := 0; i < n; i++ {
		cfg := wcfg(i)
		cfg.MasterAddr = m.Addr()
		w, err := NewWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = w
		go w.Run() //nolint:errcheck
		if err := m.WaitForWorkers(i+1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	m.StartAdmissions()

	// One float64 phase and one exact GF phase, both retained for
	// re-streaming to replacements.
	a := mat.Rand(rows, cols, rng)
	fcode, err := coding.NewMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	fenc := fcode.Encode(a)
	if err := m.DistributePartitions(0, fenc); err != nil {
		t.Fatal(err)
	}
	gdata := randElems(rng, rows*cols)
	gcode, err := coding.NewGFMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	genc, err := gcode.Encode(rows, cols, gdata)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DistributeGFPartitions(1, genc.Parts); err != nil {
		t.Fatal(err)
	}
	if fenc.BlockRows != genc.BlockRows {
		t.Fatalf("block rows diverge: float %d vs GF %d", fenc.BlockRows, genc.BlockRows)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: fenc.BlockRows, Granularity: fenc.BlockRows}
	speeds := []float64{1, 1, 1, 1, 1}

	// Multi-job extension: a second tenant serves exact GF rounds on its
	// own dataset (its private phase 0) concurrently with the default
	// job's entire churn loop below — worker deaths land mid-round on
	// both jobs at once, and both must keep decoding bit-exactly.
	tdata := randElems(rng, rows*cols)
	tenc, err := gcode.Encode(rows, cols, tdata)
	if err != nil {
		t.Fatal(err)
	}
	tenant := m.OpenJob(JobConfig{})
	if err := tenant.DistributeGFPartitions(0, tenc.Parts); err != nil {
		t.Fatal(err)
	}
	stopTenant := make(chan struct{})
	tenantRounds := make(chan int, 1)
	go func() {
		trng := rand.New(rand.NewSource(778))
		tstrat := &sched.GeneralS2C2{N: n, K: k, BlockRows: tenc.BlockRows, Granularity: tenc.BlockRows}
		completed := 0
		for iter := 0; ; iter++ {
			select {
			case <-stopTenant:
				tenantRounds <- completed
				return
			default:
			}
			x := randElems(trng, cols)
			plan, err := tstrat.Plan(speeds)
			if err != nil {
				t.Errorf("tenant plan %d: %v", iter, err)
				tenantRounds <- completed
				return
			}
			partials, _, err := tenant.RunGFRound(iter, 0, x, plan, k, 10.0)
			if err != nil {
				t.Errorf("tenant round %d: %v", iter, err)
				tenantRounds <- completed
				return
			}
			got, err := tenc.DecodeMatVec(partials)
			if err != nil {
				t.Errorf("tenant decode %d: %v", iter, err)
				tenantRounds <- completed
				return
			}
			want := gfGroundTruth(rows, cols, tdata, x)
			for q := range want {
				if got[q] != want[q] {
					t.Errorf("tenant round %d row %d: GF decode %d != local %d", iter, q, got[q], want[q])
					tenantRounds <- completed
					return
				}
			}
			completed++
		}
	}()

	checkFloat := func(r int, xs []float64, w int, partials []*coding.Partial) {
		t.Helper()
		got, err := fenc.DecodeMatVec(partials)
		if err != nil {
			t.Fatalf("round %d: decode: %v", r, err)
		}
		lane := make([]float64, rows)
		for l := 0; l < w; l++ {
			want := mat.MatVec(a, xs[l*cols:(l+1)*cols])
			for q := 0; q < rows; q++ {
				lane[q] = got[q*w+l]
			}
			if !mat.VecApproxEqual(lane, want, 1e-8) {
				t.Fatalf("round %d lane %d: decode drifted from A·x", r, l)
			}
		}
	}
	checkGF := func(r int, xs []gf.Elem, w int, partials []*coding.GFPartial) {
		t.Helper()
		got, err := genc.DecodeMatVec(partials)
		if err != nil {
			t.Fatalf("round %d: GF decode: %v", r, err)
		}
		for l := 0; l < w; l++ {
			want := gfGroundTruth(rows, cols, gdata, xs[l*cols:(l+1)*cols])
			for q := range want {
				if got[q*w+l] != want[q] {
					t.Fatalf("round %d lane %d row %d: GF decode %d != local %d", r, l, q, got[q*w+l], want[q])
				}
			}
		}
	}

	for r := 0; r < rounds; r++ {
		// Churn: every killEvery rounds a random worker dies — half the
		// time right now, half the time mid-round via a timed close.
		var kill *time.Timer
		if r > 0 && r%killEvery == 0 {
			victim := rng.Intn(n)
			if rng.Intn(2) == 0 {
				handles[victim].Close() //nolint:errcheck
			} else {
				h := handles[victim]
				kill = time.AfterFunc(time.Duration(rng.Intn(2000))*time.Microsecond, func() { h.Close() }) //nolint:errcheck
			}
		}
		plan, err := strat.Plan(speeds)
		if err != nil {
			t.Fatal(err)
		}
		switch r % 4 {
		case 0: // float64, single x
			x := make([]float64, cols)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			partials, _, err := m.RunRound(r, 0, x, plan, k, 10.0)
			if err != nil {
				t.Fatalf("round %d (float): %v", r, err)
			}
			checkFloat(r, x, 1, partials)
		case 1: // float64, batched
			xs := make([]float64, batchW*cols)
			for i := range xs {
				xs[i] = rng.NormFloat64()
			}
			partials, _, err := m.RunRoundBatch(r, 0, xs, batchW, plan, k, 10.0)
			if err != nil {
				t.Fatalf("round %d (float batch): %v", r, err)
			}
			checkFloat(r, xs, batchW, partials)
		case 2: // GF, single x
			x := randElems(rng, cols)
			partials, _, err := m.RunGFRound(r, 1, x, plan, k, 10.0)
			if err != nil {
				t.Fatalf("round %d (gf): %v", r, err)
			}
			checkGF(r, x, 1, partials)
		case 3: // GF, batched
			xs := randElems(rng, batchW*cols)
			partials, _, err := m.RunGFRoundBatch(r, 1, xs, batchW, plan, k, 10.0)
			if err != nil {
				t.Fatalf("round %d (gf batch): %v", r, err)
			}
			checkGF(r, xs, batchW, partials)
		}
		if kill != nil {
			kill.Stop()
		}
		// Heal before the next round: one replacement spare per dead
		// slot, promoted and re-streamed by RepairWorkers.
		if dead := m.DeadWorkers(); len(dead) > 0 {
			for _, slot := range dead {
				handles[slot] = addSpare(t, m, wcfg(rng.Intn(n)))
			}
			repaired, err := m.RepairWorkers()
			if err != nil {
				t.Fatalf("round %d: repair: %v", r, err)
			}
			if repaired != len(dead) {
				t.Fatalf("round %d: repaired %d of %d dead slots", r, repaired, len(dead))
			}
			if left := m.DeadWorkers(); len(left) != 0 {
				t.Fatalf("round %d: dead slots remain after repair: %v", r, left)
			}
		}
	}

	close(stopTenant)
	if completed := <-tenantRounds; completed == 0 {
		t.Fatal("tenant job completed no rounds during the soak")
	} else {
		t.Logf("tenant job completed %d concurrent rounds", completed)
	}
	tenant.Close()

	totals := m.RecoveryTotals()
	if totals.ReplacementAdmits == 0 || totals.ReStreams == 0 {
		t.Fatalf("soak saw no churn recovery: %+v", totals)
	}
	t.Logf("soak recovery totals: %+v", totals)

	// Zero leaked goroutines: Shutdown tears down the master loops and
	// every worker (registered and parked) exits with its connection.
	m.Shutdown()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked after Shutdown: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}
