package rpc

import (
	"math/rand"
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
)

// startCluster spins up a master plus n in-process workers on loopback —
// a thin wrapper over the shared testcluster harness keeping the
// historical signature (per-worker slowdowns, 200µs per-row delay).
func startCluster(t *testing.T, n int, slowdown map[int]float64) *Master {
	t.Helper()
	return startTestCluster(t, n, clusterConfig{
		worker: func(i int) WorkerConfig {
			cfg := WorkerConfig{
				Slowdown:    slowdown[i],
				PerRowDelay: 200 * time.Microsecond,
			}
			if cfg.Slowdown == 0 {
				cfg.Slowdown = 1
			}
			return cfg
		},
	})
}

func TestTCPClusterCodedRoundTrip(t *testing.T) {
	n, k := 4, 3
	m := startCluster(t, n, nil)

	rng := rand.New(rand.NewSource(1))
	a := mat.Rand(30, 5, rng)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.Float64()
	}
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	want := mat.MatVec(a, x)
	for iter := 0; iter < 3; iter++ {
		plan, err := strat.Plan([]float64{1, 1, 1, 1})
		if err != nil {
			t.Fatal(err)
		}
		partials, stats, err := m.RunRound(iter, 0, x, plan, k, 10.0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := enc.DecodeMatVec(partials)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.VecApproxEqual(got, want, 1e-8) {
			t.Fatalf("iteration %d: TCP decode mismatch", iter)
		}
		for w := 0; w < n; w++ {
			if stats.AssignedRows[w] > 0 && stats.ResponseTime[w] <= 0 {
				t.Fatalf("worker %d responded but has no response time", w)
			}
		}
	}
}

func TestTCPClusterConventionalMDSIgnoresStraggler(t *testing.T) {
	// Conventional (4,3)-MDS with one heavy straggler: the master decodes
	// from the fastest 3 full partitions without waiting for it.
	n, k := 4, 3
	m := startCluster(t, n, map[int]float64{0: 25})

	rng := rand.New(rand.NewSource(2))
	a := mat.Rand(24, 4, rng)
	x := []float64{1, -1, 0.5, 2}
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.ConventionalMDS{N: n, K: k, BlockRows: enc.BlockRows}
	plan, _ := strat.Plan([]float64{1, 1, 1, 1})
	start := time.Now()
	partials, _, err := m.RunRound(0, 0, x, plan, k, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
		t.Fatal("decode mismatch")
	}
	// The straggler (~25×200µs×6rows ≈ 30ms+) must not gate the round;
	// the fast path is ~6 rows × 200µs ≈ 1.2ms + overheads.
	if elapsed > 20*time.Millisecond {
		t.Fatalf("round took %v — master appears to have waited for the straggler", elapsed)
	}
}

func TestTCPClusterTimeoutReassignment(t *testing.T) {
	// S2C2 plan that (wrongly) assigns work to a dead-slow worker: the
	// timeout must fire, coverage must be reassigned, decode must succeed.
	n, k := 4, 2
	m := startCluster(t, n, map[int]float64{3: 200})

	rng := rand.New(rand.NewSource(3))
	a := mat.Rand(40, 4, rng)
	x := []float64{0.5, 1, -0.25, 0.75}
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	// Mis-prediction: planner believes all four are equally fast.
	plan, err := strat.Plan([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials, stats, err := m.RunRound(0, 0, x, plan, k, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
		t.Fatal("decode after reassignment mismatch")
	}
	if stats.Reassigned == 0 {
		t.Fatal("expected reassigned rows after the timeout")
	}
	found := false
	for _, w := range stats.TimedOut {
		if w == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("worker 3 should be listed as timed out, got %v", stats.TimedOut)
	}
}

func TestTCPMultiPhase(t *testing.T) {
	// Two phases with different matrices (the gradient-descent layout).
	n, k := 3, 2
	m := startCluster(t, n, nil)
	rng := rand.New(rand.NewSource(4))
	a := mat.Rand(12, 6, rng)
	at := mat.Transpose(a)
	code, _ := coding.NewMDSCode(n, k)
	encA := code.Encode(a)
	encAT := code.Encode(at)
	if err := m.DistributePartitions(0, encA); err != nil {
		t.Fatal(err)
	}
	if err := m.DistributePartitions(1, encAT); err != nil {
		t.Fatal(err)
	}
	w := make([]float64, 6)
	for i := range w {
		w[i] = rng.Float64()
	}
	sA := &sched.GeneralS2C2{N: n, K: k, BlockRows: encA.BlockRows, Granularity: encA.BlockRows}
	planA, _ := sA.Plan([]float64{1, 1, 1})
	pA, _, err := m.RunRound(0, 0, w, planA, k, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	z, err := encA.DecodeMatVec(pA)
	if err != nil {
		t.Fatal(err)
	}
	sAT := &sched.GeneralS2C2{N: n, K: k, BlockRows: encAT.BlockRows, Granularity: encAT.BlockRows}
	planAT, _ := sAT.Plan([]float64{1, 1, 1})
	pAT, _, err := m.RunRound(0, 1, z, planAT, k, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := encAT.DecodeMatVec(pAT)
	if err != nil {
		t.Fatal(err)
	}
	want := mat.MatVec(at, mat.MatVec(a, w))
	if !mat.VecApproxEqual(g, want, 1e-7) {
		t.Fatal("two-phase TCP pipeline mismatch")
	}
}
