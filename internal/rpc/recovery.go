package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
)

// This file is the elastic-membership and failure-recovery layer: the
// distribute-path retry engine (re-stream only the lost worker's
// partition, to a warm spare when one is parked), the cluster lifecycle
// (background admissions, heartbeat liveness watch, eviction on repeated
// round failures), and the round repair planner that folds a dead
// worker's rows back into the reassignment plan instead of stalling to
// the timeout. The (n,k) coding slack the paper spends on stragglers
// within a round becomes cluster headroom across rounds.

// RetryConfig bounds the distribute-path retry engine.
type RetryConfig struct {
	// MaxAttempts is the total number of times a partition transfer may be
	// tried (first attempt included). Values below 2 disable retries.
	MaxAttempts int
	// BaseBackoff is the delay before the second attempt; it doubles per
	// attempt up to MaxBackoff. Zero selects 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero selects 2s.
	MaxBackoff time.Duration
	// AttemptTimeout bounds each retry attempt's credit waits (the
	// per-attempt deadline). Zero falls back to StallTimeout.
	AttemptTimeout time.Duration
}

func (r RetryConfig) enabled() bool { return r.MaxAttempts > 1 }

func (r RetryConfig) base() time.Duration {
	if r.BaseBackoff > 0 {
		return r.BaseBackoff
	}
	return 50 * time.Millisecond
}

func (r RetryConfig) cap() time.Duration {
	if r.MaxBackoff > 0 {
		return r.MaxBackoff
	}
	return 2 * time.Second
}

//s2c2:noalloc
func (m *Master) attemptTimeout() time.Duration {
	if m.cfg.Retry.AttemptTimeout > 0 {
		return m.cfg.Retry.AttemptTimeout
	}
	return m.stallTimeout()
}

// RecoveryStats counts failure-recovery activity. It appears twice: in
// RoundStats.Recovery scoped to one round (the autoscaler signals of
// ROADMAP item 2), and as the master's lifetime totals (RecoveryTotals),
// which also cover distribute-path retries that happen outside any round.
type RecoveryStats struct {
	// Retries counts re-stream attempts on the distribute path.
	Retries int
	// ReStreams counts partitions successfully re-streamed to a worker
	// after a failure (retry engine and RepairWorkers catch-ups).
	ReStreams int
	// Evictions counts connections deliberately torn down: heartbeat
	// loss or the EvictAfter round-failure policy.
	Evictions int
	// ReplacementAdmits counts spares promoted into worker slots.
	ReplacementAdmits int
	// DeadWorkers lists the worker slots whose connections died during
	// the round (round scope only; nil in the lifetime totals).
	DeadWorkers []int
	// RecoveredRows counts row assignments folded back into the plan
	// after mid-round worker deaths.
	RecoveredRows int
	// AcceptFailures counts Accept errors in the background admission
	// loop (lifetime totals only; nil-equivalent zero in round scope). A
	// climbing counter with no ReplacementAdmits is the signature of a
	// dead or misconfigured listener.
	AcceptFailures int
}

// WorkerError attributes a connection failure to a worker slot. Read
// loops report deaths with it so the round path can fold the worker's
// rows back into the plan; anything else on the error channel stays
// fatal to the round.
type WorkerError struct {
	Worker int
	Err    error
	// conn identifies which connection died: a slot can be re-served by a
	// replacement, and a late report about the replaced corpse must not
	// kill the successor (the round path compares conn against its
	// snapshot before acting).
	conn *workerConn
}

func (e *WorkerError) Error() string { return fmt.Sprintf("rpc: worker %d: %v", e.Worker, e.Err) }

func (e *WorkerError) Unwrap() error { return e.Err }

// errLivenessLost is the eviction reason the heartbeat watcher attributes
// to a silent connection.
var errLivenessLost = errors.New("rpc: no pong within the heartbeat miss budget")

// collectPartitionErrors walks a distribute error (one *PartitionError or
// an errors.Join of several) and indexes the per-worker attributions.
func collectPartitionErrors(err error, out map[int]*PartitionError) {
	switch e := err.(type) {
	case nil:
	case *PartitionError:
		out[e.Worker] = e
	case interface{ Unwrap() []error }:
		for _, sub := range e.Unwrap() {
			collectPartitionErrors(sub, out)
		}
	}
}

// retryPartitions drives the distribute-path retry engine: it extracts
// the failed workers from err's *PartitionError attributions and retries
// only their partitions under bounded exponential backoff, drawing a warm
// spare into any slot whose connection died (the replacement is first
// caught up on every previously retained phase). Attribution is preserved
// through the loop: whatever still fails after the last attempt is
// returned as the surviving *PartitionErrors — wrapped, never flattened —
// so callers and the partitionerr analyzer see the same per-worker
// contract the first attempt has. The backoff sleeps watch ctx alongside
// the master's quit channel, so a cancelled caller returns promptly with
// the attributions from the attempts already made.
//
//s2c2:partition-attrib
func (m *Master) retryPartitions(ctx context.Context, err error, ship func(w int, wc *workerConn, stall time.Duration) error) error {
	if !m.cfg.Retry.enabled() {
		return err
	}
	failed := map[int]*PartitionError{}
	collectPartitionErrors(err, failed)
	if len(failed) == 0 {
		return err // not per-worker attributed (shape error): nothing to retry
	}
	backoff := m.cfg.Retry.base()
	for attempt := 2; attempt <= m.cfg.Retry.MaxAttempts && len(failed) > 0; attempt++ {
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return err
		case <-m.quit:
			return err
		}
		if backoff *= 2; backoff > m.cfg.Retry.cap() {
			backoff = m.cfg.Retry.cap()
		}
		for w := range failed {
			wc, replaced := m.replaceWorker(w)
			if wc == nil {
				continue // slot dead and no spare parked yet; next attempt
			}
			m.bumpTotals(1, 0, 0)
			if replaced {
				// A promoted spare holds nothing: catch it up on every
				// phase retained so far before shipping the failed one.
				if cerr := m.streamRetained(w, wc); cerr != nil {
					failed[w] = &PartitionError{Worker: w, Err: cerr}
					continue
				}
			}
			if serr := ship(w, wc, m.attemptTimeout()); serr != nil {
				failed[w] = &PartitionError{Worker: w, Err: serr}
				continue
			}
			delete(failed, w)
			m.bumpTotals(0, 1, 0)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	// Deterministic order for the surviving attributions.
	slots := make([]int, 0, len(failed))
	for w := range failed {
		slots = append(slots, w)
	}
	sort.Ints(slots)
	if len(slots) == 1 {
		return failed[slots[0]]
	}
	errs := make([]error, 0, len(slots))
	for _, w := range slots {
		errs = append(errs, failed[w])
	}
	return errors.Join(errs...)
}

// replaceWorker returns a live connection for worker slot w: the
// incumbent when it is still alive (retry the same conn), else a warm
// spare promoted into the slot — the corpse is silenced and closed, the
// workers slice is swapped copy-on-write so conns() snapshots stay
// immutable, and the spare's read loop starts attributing to the slot via
// the atomic id swap. Returns nil when the slot is dead and no spare is
// parked.
func (m *Master) replaceWorker(w int) (wc *workerConn, replaced bool) {
	m.mu.Lock()
	if w < 0 || w >= len(m.workers) {
		m.mu.Unlock()
		return nil, false
	}
	cur := m.workers[w]
	m.mu.Unlock()
	select {
	case <-cur.dead:
	default:
		return cur, false // incumbent alive: retry the same conn
	}
	spare := m.popPending()
	if spare == nil {
		return nil, false
	}
	cur.evicted.Store(true) // already dead; silence any straggling report
	cur.t.close()
	m.mu.Lock()
	if m.closing {
		m.mu.Unlock()
		spare.t.close()
		return nil, false
	}
	fresh := make([]*workerConn, len(m.workers))
	copy(fresh, m.workers)
	fresh[w] = spare
	m.workers = fresh
	if w < len(m.failStreak) {
		m.failStreak[w] = 0
	}
	m.totals.ReplacementAdmits++
	m.mu.Unlock()
	spare.id.Store(int64(w))
	return spare, true
}

// streamRetained ships every retained partition phase's slot-w partition
// to a (typically just-promoted) connection, so a replacement joins with
// the same loaded state its predecessor had. Phases ship in ascending
// order; the first failure aborts with that phase's attribution.
//
//s2c2:partition-attrib
func (m *Master) streamRetained(w int, wc *workerConn) error {
	m.mu.Lock()
	phases := make([]int, 0, len(m.parts))
	for p := range m.parts {
		phases = append(phases, p)
	}
	gfPhases := make([]int, 0, len(m.gfParts))
	for p := range m.gfParts {
		gfPhases = append(gfPhases, p)
	}
	m.mu.Unlock()
	sort.Ints(phases)
	sort.Ints(gfPhases)
	for _, p := range phases {
		m.mu.Lock()
		parts := m.parts[p]
		m.mu.Unlock()
		if w >= len(parts) {
			continue
		}
		if err := m.shipPartition(wc, p, parts[w], m.attemptTimeout()); err != nil {
			return &PartitionError{Worker: w, Err: fmt.Errorf("re-stream phase %d: %w", p, err)}
		}
		m.bumpTotals(0, 1, 0)
	}
	for _, p := range gfPhases {
		m.mu.Lock()
		parts := m.gfParts[p]
		m.mu.Unlock()
		if w >= len(parts) {
			continue
		}
		if err := m.shipGFPartition(wc, p, parts[w], m.attemptTimeout()); err != nil {
			return &PartitionError{Worker: w, Err: fmt.Errorf("re-stream GF phase %d: %w", p, err)}
		}
		m.bumpTotals(0, 1, 0)
	}
	return nil
}

// RepairWorkers promotes warm spares into every dead worker slot,
// re-streaming all retained partition phases to each replacement. It
// returns the number of slots repaired; slots with no spare parked are
// left dead (call again once new workers have joined — StartAdmissions
// keeps the pool filling in the background). Rounds route around dead
// slots on their own, so repair is a capacity restore between rounds, not
// a correctness requirement — until fewer than k slots are alive, at
// which point rounds fail and repair is the way back.
func (m *Master) RepairWorkers() (int, error) {
	repaired := 0
	for _, w := range m.DeadWorkers() {
		wc, replaced := m.replaceWorker(w)
		if wc == nil || !replaced {
			continue // no spare for this slot (or it revived); next call
		}
		if err := m.streamRetained(w, wc); err != nil {
			return repaired, err
		}
		repaired++
	}
	return repaired, nil
}

// DeadWorkers returns the worker slots whose connections are down.
func (m *Master) DeadWorkers() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	var dead []int
	for w, wc := range m.workers {
		select {
		case <-wc.dead:
			dead = append(dead, w)
		default:
		}
	}
	return dead
}

// Spares returns the number of live parked spare connections.
func (m *Master) Spares() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	alive := 0
	for _, wc := range m.pending {
		select {
		case <-wc.dead:
		default:
			alive++
		}
	}
	return alive
}

// RecoveryTotals returns the master's lifetime recovery counters across
// all rounds and distribute calls. DeadWorkers is nil here — per-round
// deaths are reported in RoundStats.Recovery.
func (m *Master) RecoveryTotals() RecoveryStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totals
}

// bumpTotals accumulates lifetime retry/re-stream/admit counters.
//
//s2c2:noalloc
func (m *Master) bumpTotals(retries, restreams, evictions int) {
	m.mu.Lock()
	m.totals.Retries += retries
	m.totals.ReStreams += restreams
	m.totals.Evictions += evictions
	m.mu.Unlock()
}

// dropParked removes a dead connection from the spare pool; the read loop
// calls it the moment a parked connection errors, so the pool never hands
// out a corpse (popPending double-checks regardless).
func (m *Master) dropParked(wc *workerConn) {
	m.mu.Lock()
	for i, p := range m.pending {
		if p == wc {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	wc.t.close()
}

// evictConn deliberately tears a connection down for reason: the evicted
// flag keeps its read loop from reporting the teardown as a spontaneous
// failure, and a registered worker's eviction is announced to every job's
// error channel as a *WorkerError so any round in flight repairs
// immediately instead of waiting out its timers.
func (m *Master) evictConn(wc *workerConn, reason error) {
	if wc.evicted.Swap(true) {
		return // already being torn down
	}
	wc.t.close()
	m.bumpTotals(0, 0, 1)
	if id := int(wc.id.Load()); id >= 0 {
		m.broadcastWorkerError(&WorkerError{Worker: id, Err: reason, conn: wc})
	}
}

// StartAdmissions switches the master to elastic membership: a background
// loop accepts, handshakes, and parks new worker connections for the life
// of the master, so replacements are warm before they are needed. After
// this call the background loop owns the listener — WaitForWorkers grows
// the cluster from the spare pool instead of accepting directly.
// Idempotent.
func (m *Master) StartAdmissions() {
	m.mu.Lock()
	if m.admissions || m.closing {
		m.mu.Unlock()
		return
	}
	m.admissions = true
	m.wg.Add(1)
	m.mu.Unlock()
	go m.admitLoop()
}

func (m *Master) admissionsRunning() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.admissions
}

// admitLoop accepts and parks joining workers until shutdown. Handshakes
// run serially — elastic joins are not latency-critical, and a stalled
// dialer costs at most handshakeTimeout before the next accept. Accept
// errors split two ways: a closed listener outside of Shutdown is
// permanent — the loop exits rather than spinning on a socket that will
// never accept again — while transient failures (EMFILE pressure, resets
// during the TCP handshake) are retried under exponential backoff. Both
// kinds are tallied in RecoveryStats.AcceptFailures so a dead or
// misbehaving listener shows up in RecoveryTotals instead of failing
// silently.
func (m *Master) admitLoop() {
	defer m.wg.Done()
	backoff := admitBaseBackoff
	for {
		c, err := m.ln.Accept()
		if err != nil {
			if m.isClosing() {
				return
			}
			m.noteAcceptFailure()
			if errors.Is(err, net.ErrClosed) {
				// The listener died out from under us (not a Shutdown —
				// the closing flag is clear). No future Accept can
				// succeed; leave rather than spin.
				return
			}
			select {
			case <-m.quit:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > admitMaxBackoff {
				backoff = admitMaxBackoff
			}
			continue
		}
		backoff = admitBaseBackoff
		wc, err := m.admit(c)
		if err != nil {
			continue // rejected handshake; keep serving
		}
		m.enqueuePending(wc)
	}
}

// Admission-loop Accept retry bounds: start quick (a transient error burst
// should not delay a joining worker), cap low enough that a recovering
// listener is rediscovered promptly.
const (
	admitBaseBackoff = 10 * time.Millisecond
	admitMaxBackoff  = 2 * time.Second
)

// noteAcceptFailure tallies one admission-loop Accept error.
func (m *Master) noteAcceptFailure() {
	m.mu.Lock()
	m.totals.AcceptFailures++
	m.mu.Unlock()
}

// waitFromPool is WaitForWorkers' elastic-mode body: it registers workers
// out of the spare pool the background admission loop keeps filling.
func (m *Master) waitFromPool(n int, timeout time.Duration) error {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for m.NumWorkers() < n {
		if wc := m.popPending(); wc != nil {
			m.register(wc)
			continue
		}
		select {
		case <-m.pendingReady:
		case <-timer.C:
			return fmt.Errorf("rpc: wait for workers: deadline exceeded (have %d/%d workers)",
				m.NumWorkers(), n)
		case <-m.quit:
			return fmt.Errorf("rpc: wait for workers: master shut down")
		}
	}
	return nil
}

// heartbeatLoop is the liveness watch: every interval it pings all
// connections — registered workers and parked spares alike — and evicts
// any whose latest pong is older than the miss budget. Parked spares can
// otherwise die silently only on OS-level resets; a wedged-but-connected
// peer is indistinguishable from a healthy idle one without this probe.
func (m *Master) heartbeatLoop() {
	defer m.wg.Done()
	interval := m.cfg.Heartbeat
	miss := m.cfg.HeartbeatMiss
	if miss <= 0 {
		miss = 3
	}
	budget := time.Duration(miss) * interval
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var conns []*workerConn // reused snapshot buffer
	for {
		select {
		case <-m.quit:
			return
		case <-tick.C:
		}
		conns = conns[:0]
		m.mu.Lock()
		conns = append(conns, m.workers...)
		conns = append(conns, m.pending...)
		m.mu.Unlock()
		now := time.Now().UnixNano()
		for _, wc := range conns {
			select {
			case <-wc.dead:
				continue // already down; its read loop handled it
			default:
			}
			if now-wc.lastPong.Load() > int64(budget) {
				m.evictConn(wc, errLivenessLost)
				continue
			}
			wc.t.sendPing() //nolint:errcheck // a dead conn surfaces via its read loop
		}
	}
}

// noteRoundOutcome feeds the eviction policy at the end of every round:
// responders reset their failure streak, workers that died or timed out
// extend theirs, and a streak reaching EvictAfter evicts the worker (its
// slot stays dead until RepairWorkers promotes a spare into it). Workers
// that were merely slower than the first k — never timed out — are not
// penalized.
//
//s2c2:noalloc-waive
func (m *Master) noteRoundOutcome(c *roundCore, workers []*workerConn) {
	m.mu.Lock()
	for w := 0; w < c.n && w < len(m.failStreak); w++ {
		switch {
		case c.responded[w]:
			m.failStreak[w] = 0
		case c.dead[w]:
			m.failStreak[w]++
		}
	}
	for _, w := range c.stats.TimedOut {
		if w < len(m.failStreak) {
			m.failStreak[w]++
		}
	}
	var toEvict []*workerConn
	if m.cfg.EvictAfter > 0 {
		for w := 0; w < c.n && w < len(m.workers) && w < len(m.failStreak); w++ {
			wc := m.workers[w]
			if m.failStreak[w] < m.cfg.EvictAfter || wc != workers[w] || wc.evicted.Load() {
				continue
			}
			select {
			case <-wc.dead:
				continue // already down; nothing left to evict
			default:
			}
			toEvict = append(toEvict, wc)
		}
	}
	m.mu.Unlock()
	for _, wc := range toEvict {
		wc.t.sendShutdown() //nolint:errcheck // best effort
		m.evictConn(wc, errRoundFailures)
		c.stats.Recovery.Evictions++
	}
}

// errRoundFailures is the eviction reason of the EvictAfter policy.
var errRoundFailures = errors.New("rpc: evicted after repeated round failures")

// markAssigned records that worker w is expected to deliver ranges (an
// original plan assignment or a successfully sent extra); planRepair
// counts these as in-flight potential.
//
//s2c2:noalloc
func (c *roundCore) markAssigned(w int, ranges []coding.Range) {
	base := w * c.blockRows
	for _, rg := range ranges {
		for r := rg.Lo; r < rg.Hi; r++ {
			c.asgMark[base+r] = true
		}
	}
}

// noteDead records worker w's mid-round death (idempotent).
//
//s2c2:noalloc-waive
func (c *roundCore) noteDead(w int) {
	if w < 0 || w >= c.n || c.dead[w] {
		return
	}
	c.dead[w] = true
	c.stats.Recovery.DeadWorkers = append(c.stats.Recovery.DeadWorkers, w)
}

// aliveWorkers counts workers not marked dead this round.
//
//s2c2:noalloc
func (c *roundCore) aliveWorkers() int {
	alive := 0
	for w := 0; w < c.n; w++ {
		if !c.dead[w] {
			alive++
		}
	}
	return alive
}

// planRepair folds dead workers' undelivered rows back into the round:
// for every row whose confirmed coverage plus in-flight potential (alive
// workers still expected to deliver it) falls short of k, it routes the
// deficit to the least-loaded alive workers that do not already cover or
// compute the row. Unlike planExtras — which re-executes stragglers' rows
// on responders only — repair may assign to any alive worker, responder
// or not: a dead worker's rows are gone, not merely late, so idle
// capacity is fair game. Every worker holds its full partition from the
// distribute phase, so any alive worker can compute any of its own
// partition's rows.
//
//s2c2:noalloc-waive
func (c *roundCore) planRepair() error {
	c.resetExtras()
	for r := 0; r < c.blockRows; r++ {
		if c.cov[r] >= c.k {
			continue
		}
		pot := 0
		for w := 0; w < c.n; w++ {
			idx := w*c.blockRows + r
			if !c.dead[w] && c.asgMark[idx] && !c.coveredBy[idx] {
				pot++
			}
		}
		for have := c.cov[r] + pot; have < c.k; have++ {
			best := -1
			for w := 0; w < c.n; w++ {
				idx := w*c.blockRows + r
				if c.dead[w] || c.asgMark[idx] || c.coveredBy[idx] || c.extraMark[idx] {
					continue
				}
				if best < 0 || c.stats.AssignedRows[w]+c.extraRows[w] < c.stats.AssignedRows[best]+c.extraRows[best] {
					best = w
				}
			}
			if best < 0 {
				return fmt.Errorf("rpc: cannot re-cover row %d after worker failure (%d alive, need %d distinct)",
					r, c.aliveWorkers(), c.k)
			}
			c.extraMark[best*c.blockRows+r] = true
			c.extraRows[best]++
			rs := c.extraRanges[best]
			if len(rs) > 0 && rs[len(rs)-1].Hi == r {
				rs[len(rs)-1].Hi = r + 1
			} else {
				rs = append(rs, coding.Range{Lo: r, Hi: r + 1})
			}
			c.extraRanges[best] = rs
		}
	}
	return nil
}

// repairRound replans and re-sends the coverage lost to dead workers,
// absorbing send-time deaths by replanning until every extra sticks or
// too few workers remain. Each iteration that fails marks at least one
// more worker dead, so the loop runs at most n times.
//
//s2c2:noalloc-waive
func (j *Job) repairRound(ws *roundWorkspace, workers []*workerConn, iter, phase int, x []float64, bw int) error {
	for {
		if ws.aliveWorkers() < ws.k {
			return roundLostError(&ws.roundCore, iter, phase)
		}
		if err := ws.planRepair(); err != nil {
			return err
		}
		failed := false
		for w, ranges := range ws.extraRanges {
			if len(ranges) == 0 {
				continue
			}
			ws.workMsg = Work{Job: j.id, Iter: iter, Phase: phase, W: bw, X: x, Ranges: ranges}
			if err := workers[w].t.sendWork(&ws.workMsg); err != nil {
				ws.noteDead(w)
				failed = true
				continue
			}
			ws.markAssigned(w, ranges)
			ws.stats.AssignedRows[w] += ws.extraRows[w]
			ws.stats.Recovery.RecoveredRows += ws.extraRows[w]
		}
		if !failed {
			return nil
		}
	}
}

// repairGFRound is repairRound for the exact path.
//
//s2c2:noalloc-waive
func (j *Job) repairGFRound(ws *gfRoundWorkspace, workers []*workerConn, iter, phase int, x []gf.Elem, bw int) error {
	for {
		if ws.aliveWorkers() < ws.k {
			return roundLostError(&ws.roundCore, iter, phase)
		}
		if err := ws.planRepair(); err != nil {
			return err
		}
		failed := false
		for w, ranges := range ws.extraRanges {
			if len(ranges) == 0 {
				continue
			}
			ws.workMsg = GFWork{Job: j.id, Iter: iter, Phase: phase, W: bw, X: x, Ranges: ranges}
			if err := workers[w].t.sendGFWork(&ws.workMsg); err != nil {
				ws.noteDead(w)
				failed = true
				continue
			}
			ws.markAssigned(w, ranges)
			ws.stats.AssignedRows[w] += ws.extraRows[w]
			ws.stats.Recovery.RecoveredRows += ws.extraRows[w]
		}
		if !failed {
			return nil
		}
	}
}

// roundLostError reports a round that lost so many workers that coverage
// k is unreachable.
func roundLostError(c *roundCore, iter, phase int) error {
	return fmt.Errorf("rpc: round (%d,%d) lost %d workers; %d alive, coverage needs %d distinct",
		iter, phase, len(c.stats.Recovery.DeadWorkers), c.aliveWorkers(), c.k)
}
