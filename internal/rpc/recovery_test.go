package rpc

// recovery_test.go pins the elastic-membership and failure-recovery
// contracts: eager discard of dead parked spares, distribute-path retries
// that re-stream only the lost worker's partition to a warm spare, rounds
// that survive a worker dying mid-round by folding its rows back into the
// plan (both transports, both element types, batched included), the
// EvictAfter round-failure policy with RepairWorkers promotion, and the
// heartbeat liveness watch.

import (
	"math/rand"
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
)

// waitUntil polls cond until it holds or the deadline expires.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startHandleCluster is startTestCluster with worker handles, so tests
// can kill specific workers in place of a process death (Worker.Close).
func startHandleCluster(t *testing.T, n int, mcfg MasterConfig, wcfg func(i int) WorkerConfig) (*Master, []*Worker) {
	t.Helper()
	if mcfg.Addr == "" {
		mcfg.Addr = "127.0.0.1:0"
	}
	m, err := NewMasterWithConfig(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)
	handles := make([]*Worker, n)
	for i := 0; i < n; i++ {
		cfg := WorkerConfig{}
		if wcfg != nil {
			cfg = wcfg(i)
		}
		cfg.MasterAddr = m.Addr()
		w, err := NewWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = w
		go w.Run() //nolint:errcheck // teardown closes the conn
		if err := m.WaitForWorkers(i+1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return m, handles
}

// addSpare dials one extra worker at the master (which must be running
// StartAdmissions) and returns its handle once it is parked.
func addSpare(t *testing.T, m *Master, cfg WorkerConfig) *Worker {
	t.Helper()
	before := m.Spares()
	cfg.MasterAddr = m.Addr()
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go w.Run() //nolint:errcheck
	waitUntil(t, 5*time.Second, "spare to park", func() bool { return m.Spares() > before })
	return w
}

// TestParkedSpareDeathDiscardedEagerly pins the fix for the parked-
// connection blind spot: a spare that dies while parked is discarded the
// moment its connection drops, and the next admission skips it without
// wedging.
func TestParkedSpareDeathDiscardedEagerly(t *testing.T) {
	m, _ := startHandleCluster(t, 1, MasterConfig{}, nil)
	m.StartAdmissions()
	doomed := addSpare(t, m, WorkerConfig{})
	if err := doomed.Close(); err != nil {
		t.Fatal(err)
	}
	// Eager discard: the pool empties without anyone popping it.
	waitUntil(t, 5*time.Second, "dead spare to be discarded", func() bool { return m.Spares() == 0 })
	// The next admission must register the healthy newcomer, not wedge on
	// (or hand out) the corpse.
	addSpare(t, m, WorkerConfig{})
	if err := m.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatalf("admission after a parked death wedged: %v", err)
	}
	if got := m.NumWorkers(); got != 2 {
		t.Fatalf("NumWorkers = %d, want 2", got)
	}
}

// distributeRetryFixture builds a 3-worker wire cluster whose worker 1
// link drops mid-stream, with retries enabled and one warm spare parked.
func distributeRetryFixture(t *testing.T) *Master {
	t.Helper()
	const n = 3
	m := startTestCluster(t, n, clusterConfig{
		master: MasterConfig{
			ChunkRows: 1, ChunkWindow: 1, StallTimeout: 10 * time.Second,
			Retry: RetryConfig{MaxAttempts: 4, BaseBackoff: 5 * time.Millisecond, AttemptTimeout: 2 * time.Second},
		},
		faults: map[int]*workerFault{1: {dropAfterFrames: 3}},
	})
	m.StartAdmissions()
	addSpare(t, m, WorkerConfig{})
	return m
}

// TestDistributeRetryReStreamsToSpare is the distribution half of the
// acceptance criterion on the wire transport: a worker dying during
// partition distribution is replaced by a warm spare, only its partition
// is re-streamed, and the subsequent round decodes bit-exactly.
func TestDistributeRetryReStreamsToSpare(t *testing.T) {
	const n, k = 3, 2
	m := distributeRetryFixture(t)
	rng := rand.New(rand.NewSource(94))
	a := mat.Rand(24, 3, rng)
	code, err := coding.NewMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatalf("distribute did not recover via retry: %v", err)
	}
	totals := m.RecoveryTotals()
	if totals.Retries == 0 || totals.ReStreams == 0 {
		t.Fatalf("recovery totals report no retry activity: %+v", totals)
	}
	if totals.ReplacementAdmits != 1 {
		t.Fatalf("ReplacementAdmits = %d, want 1 (the spare promoted into slot 1)", totals.ReplacementAdmits)
	}
	// The replacement must hold slot 1's partition: run a full round and
	// require partial-level bit-exactness against local recompute.
	x := []float64{1, -2, 0.5}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials, _, err := m.RunRound(0, 0, x, plan, k, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range partials {
		local := enc.WorkerCompute(p.Worker, x, p.Ranges)
		for q := range p.Values {
			if p.Values[q] != local.Values[q] {
				t.Fatalf("partial %d (worker %d) value %d: rpc %v != local %v", i, p.Worker, q, p.Values[q], local.Values[q])
			}
		}
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
		t.Fatal("decode mismatch after re-streamed distribution")
	}
}

// TestDistributeGFRetryReStreamsToSpare is TestDistributeRetryReStreams-
// ToSpare for the exact GF(2³¹−1) path: the re-streamed partition must
// decode bit-exactly.
func TestDistributeGFRetryReStreamsToSpare(t *testing.T) {
	const n, k = 3, 2
	m := distributeRetryFixture(t)
	rng := rand.New(rand.NewSource(95))
	rows, cols := 24, 4
	data := randElems(rng, rows*cols)
	code, err := coding.NewGFMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DistributeGFPartitions(0, enc.Parts); err != nil {
		t.Fatalf("GF distribute did not recover via retry: %v", err)
	}
	if totals := m.RecoveryTotals(); totals.ReStreams == 0 || totals.ReplacementAdmits != 1 {
		t.Fatalf("recovery totals report no re-stream/promotion: %+v", totals)
	}
	x := randElems(rng, cols)
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials, _, err := m.RunGFRound(0, 0, x, plan, k, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	want := gfGroundTruth(rows, cols, data, x)
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("row %d: decode %d != local %d after GF re-stream", r, got[r], want[r])
		}
	}
}

// TestGobDistributeRetryAfterWorkerDeath covers the distribution half on
// the gob fallback: the victim's process dies before distribution (its
// connection is torn down), the monolithic send fails, and the retry
// engine promotes a gob spare and re-sends. The partition is sized ~1 MiB
// so the send cannot vanish into socket buffers.
func TestGobDistributeRetryAfterWorkerDeath(t *testing.T) {
	const n, k = 3, 2
	m, handles := startHandleCluster(t, n, MasterConfig{
		StallTimeout: 10 * time.Second,
		Retry:        RetryConfig{MaxAttempts: 5, BaseBackoff: 5 * time.Millisecond, AttemptTimeout: 5 * time.Second},
	}, func(i int) WorkerConfig { return WorkerConfig{UseGob: true} })
	m.StartAdmissions()
	addSpare(t, m, WorkerConfig{UseGob: true})
	if err := handles[1].Close(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "master to notice the death", func() bool {
		dead := m.DeadWorkers()
		return len(dead) == 1 && dead[0] == 1
	})
	rng := rand.New(rand.NewSource(96))
	a := mat.Rand(512, 512, rng) // 256-row × 512-col partitions ≈ 1 MiB each
	code, err := coding.NewMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatalf("gob distribute did not recover via retry: %v", err)
	}
	if totals := m.RecoveryTotals(); totals.ReplacementAdmits != 1 {
		t.Fatalf("ReplacementAdmits = %d, want 1: %+v", totals.ReplacementAdmits, totals)
	}
	x := make([]float64, 512)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials, _, err := m.RunRound(0, 0, x, plan, k, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
		t.Fatal("decode mismatch after gob re-stream to replacement")
	}
}

// midRoundDeathCluster builds a 4-worker wire cluster whose worker 1 link
// is severed by the proxy exactly after the distribute frames, so the
// round's work frame (or the connection behind it) dies mid-round
// deterministically. blockRows chunks at ChunkRows=1 plus the stream
// start make blockRows+1 distribute frames.
func midRoundDeathCluster(t *testing.T, blockRows int) *Master {
	t.Helper()
	return startTestCluster(t, 4, clusterConfig{
		master: MasterConfig{ChunkRows: 1, ChunkWindow: 8, StallTimeout: 10 * time.Second},
		faults: map[int]*workerFault{1: {dropAfterFrames: blockRows + 1}},
	})
}

// TestRoundSurvivesWorkerDeathMidRound is the mid-round half of the
// acceptance criterion (wire, float64): worker 1 dies as the round's work
// message reaches it, the master folds its rows back into the plan, and
// the round completes with a bit-exact decode and the death reported in
// RecoveryStats.
func TestRoundSurvivesWorkerDeathMidRound(t *testing.T) {
	const n, k = 4, 2
	rng := rand.New(rand.NewSource(97))
	a := mat.Rand(48, 6, rng)
	code, err := coding.NewMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	m := midRoundDeathCluster(t, enc.BlockRows)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials, stats, err := m.RunRound(0, 0, x, plan, k, 10.0)
	if err != nil {
		t.Fatalf("round did not survive the mid-round death: %v", err)
	}
	if len(stats.Recovery.DeadWorkers) != 1 || stats.Recovery.DeadWorkers[0] != 1 {
		t.Fatalf("Recovery.DeadWorkers = %v, want [1]", stats.Recovery.DeadWorkers)
	}
	if stats.Recovery.RecoveredRows == 0 {
		t.Fatal("Recovery.RecoveredRows = 0, want the dead worker's rows folded back in")
	}
	for i, p := range partials {
		local := enc.WorkerCompute(p.Worker, x, p.Ranges)
		for q := range p.Values {
			if p.Values[q] != local.Values[q] {
				t.Fatalf("partial %d (worker %d) value %d: rpc %v != local %v", i, p.Worker, q, p.Values[q], local.Values[q])
			}
		}
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
		t.Fatal("decode mismatch after mid-round recovery")
	}
}

// TestGFRoundSurvivesWorkerDeathMidRound is the exact-path mirror: the
// repaired round must still decode bit-exactly in GF(2³¹−1).
func TestGFRoundSurvivesWorkerDeathMidRound(t *testing.T) {
	const n, k = 4, 2
	rng := rand.New(rand.NewSource(98))
	rows, cols := 48, 6
	data := randElems(rng, rows*cols)
	code, err := coding.NewGFMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	m := midRoundDeathCluster(t, enc.BlockRows)
	if err := m.DistributeGFPartitions(0, enc.Parts); err != nil {
		t.Fatal(err)
	}
	x := randElems(rng, cols)
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials, stats, err := m.RunGFRound(0, 0, x, plan, k, 10.0)
	if err != nil {
		t.Fatalf("GF round did not survive the mid-round death: %v", err)
	}
	if len(stats.Recovery.DeadWorkers) != 1 || stats.Recovery.DeadWorkers[0] != 1 {
		t.Fatalf("Recovery.DeadWorkers = %v, want [1]", stats.Recovery.DeadWorkers)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	want := gfGroundTruth(rows, cols, data, x)
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("row %d: decode %d != local %d after mid-round recovery", r, got[r], want[r])
		}
	}
}

// TestBatchRoundSurvivesWorkerDeathMidRound runs the repair path at batch
// width 2: every lane of the recovered rows must decode correctly.
func TestBatchRoundSurvivesWorkerDeathMidRound(t *testing.T) {
	const n, k, w = 4, 2, 2
	rng := rand.New(rand.NewSource(99))
	a := mat.Rand(48, 6, rng)
	code, err := coding.NewMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	m := midRoundDeathCluster(t, enc.BlockRows)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, w*6)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials, stats, err := m.RunRoundBatch(0, 0, xs, w, plan, k, 10.0)
	if err != nil {
		t.Fatalf("batched round did not survive the mid-round death: %v", err)
	}
	if len(stats.Recovery.DeadWorkers) != 1 {
		t.Fatalf("Recovery.DeadWorkers = %v, want one death", stats.Recovery.DeadWorkers)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	lane := make([]float64, len(got)/w)
	for l := 0; l < w; l++ {
		want := mat.MatVec(a, xs[l*6:(l+1)*6])
		for r := range lane {
			lane[r] = got[r*w+l]
		}
		if !mat.VecApproxEqual(lane, want, 1e-8) {
			t.Fatalf("lane %d decode mismatch after mid-round recovery", l)
		}
	}
}

// TestGobRoundSurvivesWorkerDeath kills a slow gob worker mid-round via
// its handle (the in-process stand-in for a process death) and requires
// the round to complete with the death attributed and the decode exact.
func TestGobRoundSurvivesWorkerDeath(t *testing.T) {
	const n, k = 4, 2
	// Every worker takes ~48ms per block (24 rows × 2ms), so the kill at
	// 15ms lands while the whole round is still in flight.
	m, handles := startHandleCluster(t, n, MasterConfig{StallTimeout: 10 * time.Second}, func(i int) WorkerConfig {
		return WorkerConfig{UseGob: true, Slowdown: 1, PerRowDelay: 2 * time.Millisecond}
	})
	rng := rand.New(rand.NewSource(100))
	rows, cols := 48, 6
	data := randElems(rng, rows*cols)
	code, err := coding.NewGFMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DistributeGFPartitions(0, enc.Parts); err != nil {
		t.Fatal(err)
	}
	x := randElems(rng, cols)
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	kill := time.AfterFunc(15*time.Millisecond, func() { handles[1].Close() }) //nolint:errcheck
	defer kill.Stop()
	partials, stats, err := m.RunGFRound(0, 0, x, plan, k, 10.0)
	if err != nil {
		t.Fatalf("gob round did not survive the worker death: %v", err)
	}
	if len(stats.Recovery.DeadWorkers) != 1 || stats.Recovery.DeadWorkers[0] != 1 {
		t.Fatalf("Recovery.DeadWorkers = %v, want [1]", stats.Recovery.DeadWorkers)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	want := gfGroundTruth(rows, cols, data, x)
	for r := range want {
		if got[r] != want[r] {
			t.Fatalf("row %d: decode %d != local %d after gob mid-round recovery", r, got[r], want[r])
		}
	}
}

// TestEvictAfterRoundFailuresAndRepair drives the round-failure eviction
// policy end to end: a silent worker times out a round, EvictAfter=1
// evicts it, and RepairWorkers promotes a spare that serves the next
// round with a correct partition.
func TestEvictAfterRoundFailuresAndRepair(t *testing.T) {
	const n, k = 3, 2
	rng := rand.New(rand.NewSource(101))
	a := mat.Rand(24, 3, rng)
	code, err := coding.NewMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	// blockRows+1 distribute frames pass, then the work frame (and all
	// after it) is swallowed: worker 2 stays connected but silent.
	m := startTestCluster(t, n, clusterConfig{
		master: MasterConfig{
			ChunkRows: 1, ChunkWindow: 8, StallTimeout: 10 * time.Second,
			EvictAfter: 1,
		},
		faults: map[int]*workerFault{2: {stallAfterFrames: enc.BlockRows + 1}},
	})
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -2, 0.5}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials, stats, err := m.RunRound(0, 0, x, plan, k, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	timedOut := false
	for _, w := range stats.TimedOut {
		timedOut = timedOut || w == 2
	}
	if !timedOut {
		t.Fatalf("TimedOut = %v, want worker 2", stats.TimedOut)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
		t.Fatal("decode mismatch in the timeout round")
	}
	// EvictAfter=1: the failed round evicts worker 2.
	if stats.Recovery.Evictions != 1 {
		t.Fatalf("Recovery.Evictions = %d, want 1", stats.Recovery.Evictions)
	}
	waitUntil(t, 5*time.Second, "evicted slot to be dead", func() bool {
		dead := m.DeadWorkers()
		return len(dead) == 1 && dead[0] == 2
	})
	// Repair: park a spare and promote it into the dead slot.
	m.StartAdmissions()
	addSpare(t, m, WorkerConfig{})
	repaired, err := m.RepairWorkers()
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 1 {
		t.Fatalf("RepairWorkers repaired %d slots, want 1", repaired)
	}
	if dead := m.DeadWorkers(); len(dead) != 0 {
		t.Fatalf("DeadWorkers = %v after repair, want none", dead)
	}
	// The replacement holds the re-streamed partition: a full-strength
	// round over all three workers must decode bit-exactly.
	plan2, err := strat.Plan([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials2, stats2, err := m.RunRound(1, 0, x, plan2, k, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats2.TimedOut) != 0 || len(stats2.Recovery.DeadWorkers) != 0 {
		t.Fatalf("post-repair round still degraded: timedOut=%v dead=%v", stats2.TimedOut, stats2.Recovery.DeadWorkers)
	}
	for i, p := range partials2 {
		local := enc.WorkerCompute(p.Worker, x, p.Ranges)
		for q := range p.Values {
			if p.Values[q] != local.Values[q] {
				t.Fatalf("post-repair partial %d (worker %d) mismatch", i, p.Worker)
			}
		}
	}
}

// TestHeartbeatEvictsSilentConnection pins the liveness watch: a parked
// spare whose link swallows pings is evicted within the miss budget,
// while healthy connections (registered and parked alike) survive the
// pinging.
func TestHeartbeatEvictsSilentConnection(t *testing.T) {
	const n = 2
	m, _ := startHandleCluster(t, n, MasterConfig{
		Heartbeat:     20 * time.Millisecond,
		HeartbeatMiss: 3,
	}, nil)
	m.StartAdmissions()
	// A healthy spare and a spare whose master→worker link forwards only
	// its first frame (the first ping) and swallows the rest: it looks
	// connected but never answers again.
	addSpare(t, m, WorkerConfig{})
	silentAddr := startFaultProxy(t, m.Addr(), &workerFault{stallAfterFrames: 1}, false)
	sw, err := NewWorker(WorkerConfig{MasterAddr: silentAddr})
	if err != nil {
		t.Fatal(err)
	}
	go sw.Run() //nolint:errcheck
	waitUntil(t, 5*time.Second, "both spares to park", func() bool { return m.Spares() == 2 })
	waitUntil(t, 5*time.Second, "the silent spare to be evicted", func() bool { return m.Spares() == 1 })
	if totals := m.RecoveryTotals(); totals.Evictions == 0 {
		t.Fatalf("no eviction recorded: %+v", totals)
	}
	// The registered workers answered every ping: still fully alive.
	if dead := m.DeadWorkers(); len(dead) != 0 {
		t.Fatalf("healthy workers evicted by the heartbeat: %v", dead)
	}
	if m.NumWorkers() != n {
		t.Fatalf("NumWorkers = %d, want %d", m.NumWorkers(), n)
	}
}
