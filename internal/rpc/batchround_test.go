package rpc

// batchround_test.go covers the batched multi-x round path end to end:
// the acceptance property (a width-w distributed round is bit-exact per
// lane against w independent local computes on GF, and within rounding on
// float64, on both transports), the master-side zero-allocation bar for
// batched frames, and the hostile-input guards on the new batch frame
// types (widths and value counts rejected before allocation, all lanes
// land or none do).

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/wire"
)

// batchWidths are the round widths the exactness properties sweep. Width
// 1 is included deliberately: it must ride the legacy single-x frames.
var batchWidths = []int{1, 2, 4, 8}

// runGFBatchTrial runs one randomized batched GF cluster trial: random
// (n,k) and partition shape, optional mis-predicted straggler forcing the
// timeout + reassignment path, then requires the width-w distributed
// round to decode bit-exactly, lane by lane, against w independent local
// ground-truth products.
func runGFBatchTrial(t *testing.T, rng *rand.Rand, useGob bool, w int) {
	t.Helper()
	n := 2 + rng.Intn(4)
	k := 1 + rng.Intn(n)
	rows := 1 + rng.Intn(40)
	cols := 1 + rng.Intn(8)
	straggler := -1
	frac := 10.0
	if n > k && rng.Intn(2) == 0 {
		straggler = rng.Intn(n)
		frac = 0.15
	}
	splitResults := rng.Intn(2) == 0
	m := startTestCluster(t, n, clusterConfig{
		master: MasterConfig{StallTimeout: 20 * time.Second, ReuseRound: rng.Intn(2) == 0},
		worker: func(i int) WorkerConfig {
			cfg := WorkerConfig{UseGob: useGob, Slowdown: 1, PerRowDelay: 200 * time.Microsecond}
			if i == straggler {
				cfg.Slowdown = 100
			}
			if splitResults {
				cfg.MaxResultRows = 3
			}
			return cfg
		},
	})

	data := randElems(rng, rows*cols)
	code, err := coding.NewGFMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DistributeGFPartitions(0, enc.Parts); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	speeds := make([]float64, n)
	for i := range speeds {
		speeds[i] = 1
	}
	decWS := enc.NewDecodeWorkspace()
	dst := make([]gf.Elem, enc.OrigRows*w)
	for iter := 0; iter < 2; iter++ {
		xs := randElems(rng, w*cols)
		plan, err := strat.Plan(speeds)
		if err != nil {
			t.Fatal(err)
		}
		partials, _, err := m.RunGFRoundBatch(iter, 0, xs, w, plan, k, frac)
		if err != nil {
			t.Fatalf("n=%d k=%d rows=%d cols=%d w=%d straggler=%d gob=%v: %v",
				n, k, rows, cols, w, straggler, useGob, err)
		}
		// Every delivered partial is bit-identical to recomputing the same
		// batched ranges locally (worker kernel == local kernel).
		for _, p := range partials {
			local, err := enc.WorkerMatVecBatch(p.Worker, xs, w, p.Ranges)
			if err != nil {
				t.Fatal(err)
			}
			if len(local.Values) != len(p.Values) {
				t.Fatalf("worker %d: rpc delivered %d values, local compute %d", p.Worker, len(p.Values), len(local.Values))
			}
			for q := range p.Values {
				if p.Values[q] != local.Values[q] {
					t.Fatalf("worker %d value %d: rpc %d != local %d", p.Worker, q, p.Values[q], local.Values[q])
				}
			}
		}
		got, err := enc.DecodeMatVecInto(dst, partials, decWS)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < w; l++ {
			want := gfGroundTruth(rows, cols, data, xs[l*cols:(l+1)*cols])
			for r := range want {
				if got[r*w+l] != want[r] {
					t.Fatalf("n=%d k=%d rows=%d cols=%d w=%d lane=%d gob=%v iter=%d: row %d decodes to %d, local compute says %d",
						n, k, rows, cols, w, l, useGob, iter, r, got[r*w+l], want[r])
				}
			}
		}
	}
}

// TestGFRoundBatchExactness is the batched acceptance property on the
// exact path: a width-w distributed GF round equals w independent local
// products bit-exactly, per lane, across widths, transports, and
// straggler patterns.
func TestGFRoundBatchExactness(t *testing.T) {
	for _, tc := range []struct {
		name   string
		useGob bool
	}{
		{"wire", false},
		{"gob", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(210))
			trials := 2
			if testing.Short() {
				trials = 1
			}
			for _, w := range batchWidths {
				for trial := 0; trial < trials; trial++ {
					runGFBatchTrial(t, rng, tc.useGob, w)
				}
			}
		})
	}
}

// TestRoundBatchExactness is the float64 counterpart: every lane of a
// width-w distributed round approximates A·x_l, each delivered partial is
// bit-identical to a local recompute of the same batched ranges, and both
// transports agree with the direct product within rounding.
func TestRoundBatchExactness(t *testing.T) {
	for _, tc := range []struct {
		name   string
		useGob bool
	}{
		{"wire", false},
		{"gob", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(211))
			for _, w := range batchWidths {
				n := 3 + rng.Intn(3)
				k := 1 + rng.Intn(n)
				rows := 4 + rng.Intn(40)
				cols := 1 + rng.Intn(9)
				m := startTestCluster(t, n, clusterConfig{
					worker: func(i int) WorkerConfig {
						return WorkerConfig{UseGob: tc.useGob, Slowdown: 1, PerRowDelay: 100 * time.Microsecond}
					},
				})
				a := mat.Rand(rows, cols, rng)
				code, err := coding.NewMDSCode(n, k)
				if err != nil {
					t.Fatal(err)
				}
				enc := code.Encode(a)
				if err := m.DistributePartitions(0, enc); err != nil {
					t.Fatal(err)
				}
				strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
				speeds := make([]float64, n)
				for i := range speeds {
					speeds[i] = 1
				}
				plan, err := strat.Plan(speeds)
				if err != nil {
					t.Fatal(err)
				}
				xs := make([]float64, w*cols)
				for i := range xs {
					xs[i] = rng.NormFloat64()
				}
				partials, _, err := m.RunRoundBatch(0, 0, xs, w, plan, k, 10.0)
				if err != nil {
					t.Fatalf("n=%d k=%d w=%d gob=%v: %v", n, k, w, tc.useGob, err)
				}
				for _, p := range partials {
					// Width 1 rides the legacy single-x kernel on the worker;
					// mirror that path locally so the comparison is bit-exact.
					var local *coding.Partial
					if w == 1 {
						local = enc.WorkerCompute(p.Worker, xs, p.Ranges)
					} else {
						local = enc.WorkerComputeBatchInto(p.Worker, xs, w, p.Ranges, nil)
					}
					if len(local.Values) != len(p.Values) {
						t.Fatalf("worker %d: rpc delivered %d values, local compute %d", p.Worker, len(p.Values), len(local.Values))
					}
					for q := range p.Values {
						if p.Values[q] != local.Values[q] {
							t.Fatalf("worker %d value %d: rpc %v != local %v", p.Worker, q, p.Values[q], local.Values[q])
						}
					}
				}
				got, err := enc.DecodeMatVec(partials)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != rows*w {
					t.Fatalf("w=%d: decode length %d want %d", w, len(got), rows*w)
				}
				lane := make([]float64, rows)
				for l := 0; l < w; l++ {
					want := mat.MatVec(a, xs[l*cols:(l+1)*cols])
					for r := 0; r < rows; r++ {
						lane[r] = got[r*w+l]
					}
					if !mat.VecApproxEqual(lane, want, 1e-8) {
						t.Fatalf("n=%d k=%d w=%d lane=%d gob=%v: decode drifted from A·x_l", n, k, w, l, tc.useGob)
					}
				}
			}
		})
	}
}

// TestGFRoundBatchTimeoutReassignment forces the §4.3 timeout on a
// batched round: the straggler's rows are reassigned and the width-w
// decode must still be bit-exact on every lane.
func TestGFRoundBatchTimeoutReassignment(t *testing.T) {
	n, k, w := 4, 2, 4
	m := startTestCluster(t, n, clusterConfig{
		worker: func(i int) WorkerConfig {
			cfg := WorkerConfig{Slowdown: 1, PerRowDelay: 200 * time.Microsecond}
			if i == 3 {
				cfg.Slowdown = 300
			}
			return cfg
		},
	})
	rng := rand.New(rand.NewSource(212))
	rows, cols := 48, 6
	data := randElems(rng, rows*cols)
	code, err := coding.NewGFMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DistributeGFPartitions(0, enc.Parts); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	xs := randElems(rng, w*cols)
	partials, stats, err := m.RunGFRoundBatch(0, 0, xs, w, plan, k, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reassigned == 0 {
		t.Fatal("expected reassigned rows after the timeout")
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < w; l++ {
		want := gfGroundTruth(rows, cols, data, xs[l*cols:(l+1)*cols])
		for r := range want {
			if got[r*w+l] != want[r] {
				t.Fatalf("lane %d row %d: %d != local %d after reassignment", l, r, got[r*w+l], want[r])
			}
		}
	}
}

// batchGatherFixture builds a synthetic full width-w float64 round of
// batched worker results against a real encoding, bypassing the network.
func batchGatherFixture(tb testing.TB, w int) (*coding.EncodedMatrix, []*Result, []float64, []float64) {
	rng := rand.New(rand.NewSource(213))
	a := mat.Rand(600, 20, rng)
	code, err := coding.NewMDSCode(10, 8)
	if err != nil {
		tb.Fatal(err)
	}
	enc := code.Encode(a)
	xs := make([]float64, w*20)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	var results []*Result
	for _, wk := range []int{0, 1, 2, 3, 4, 5, 8, 9} {
		p := enc.WorkerComputeBatchInto(wk, xs, w, []coding.Range{{Lo: 0, Hi: enc.BlockRows}}, nil)
		results = append(results, &Result{
			Iter: 0, Phase: 0, Worker: wk, RowWidth: w, Ranges: p.Ranges, Values: p.Values,
		})
	}
	want := make([]float64, 600*w)
	for l := 0; l < w; l++ {
		col := mat.MatVec(a, xs[l*20:(l+1)*20])
		for r := range col {
			want[r*w+l] = col[r]
		}
	}
	return enc, results, xs, want
}

// TestMasterWireBatchRoundZeroAllocsSteadyState holds the batched path to
// the same bar as the single-x wire round: sending width-w work frames,
// receiving every width-w result frame, gathering, and decoding on the
// master allocates nothing in steady state.
func TestMasterWireBatchRoundZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items, forcing reallocation")
	}
	const bw = 4
	enc, results, xs, want := batchGatherFixture(t, bw)
	n, k := 10, 8

	var stream bytes.Buffer
	sender := &wireConn{w: wire.NewWriter(&stream)}
	for _, r := range results {
		if err := sender.sendResult(r); err != nil {
			t.Fatal(err)
		}
	}
	src := bytes.NewReader(stream.Bytes())
	tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(src)}

	m := &Master{cfg: MasterConfig{ReuseRound: true}}
	decWS := enc.NewDecodeWorkspace()
	dst := make([]float64, enc.OrigRows*bw)
	assignment := []coding.Range{{Lo: 0, Hi: enc.BlockRows}}
	msg := &Msg{}

	runRound := func() {
		ws := &m.def.round
		m.recycleRound(ws)
		ws.begin(n, enc.BlockRows, k, bw)
		for w := 0; w < n; w++ {
			ws.workMsg = Work{Iter: 0, Phase: 0, W: bw, X: xs, Ranges: assignment}
			if err := tc.sendWork(&ws.workMsg); err != nil {
				t.Fatal(err)
			}
		}
		src.Reset(stream.Bytes())
		tc.r.Reset(src)
		for range results {
			if err := tc.recv(msg); err != nil {
				t.Fatal(err)
			}
			if msg.Kind != KindResult {
				t.Fatalf("kind %d", msg.Kind)
			}
			r := m.getResult()
			*r, msg.Result = msg.Result, *r
			if err := ws.addResult(r, time.Millisecond); err != nil {
				t.Fatal(err)
			}
			ws.retained = append(ws.retained, r)
		}
		if ws.needed != 0 {
			t.Fatal("fixture round did not reach coverage")
		}
		partials, _, err := m.finishRound(ws)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := enc.DecodeMatVecInto(dst, partials, decWS); err != nil {
			t.Fatal(err)
		}
	}
	runRound() // warm: sizes the workspace, factors the decode set
	_ = xs
	if !mat.VecApproxEqual(dst, want, 1e-8) {
		t.Fatal("batched gather+decode fixture produced a wrong result")
	}
	allocs := testing.AllocsPerRun(50, runRound)
	if allocs != 0 {
		t.Fatalf("steady-state batched round allocates %v/op, want 0", allocs)
	}
}

// TestMasterGFWireBatchRoundZeroAllocsSteadyState is the exact-path
// mirror: a steady-state width-w GF round over the wire transport
// allocates nothing on the master.
func TestMasterGFWireBatchRoundZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items, forcing reallocation")
	}
	const bw = 4
	rng := rand.New(rand.NewSource(214))
	rows, cols := 240, 16
	data := randElems(rng, rows*cols)
	code, err := coding.NewGFMDSCode(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	xs := randElems(rng, bw*cols)
	var results []*GFResult
	for _, wk := range []int{0, 1, 2, 3, 4, 5, 8, 9} {
		p, err := enc.WorkerMatVecBatch(wk, xs, bw, []coding.Range{{Lo: 0, Hi: enc.BlockRows}})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, &GFResult{
			Iter: 0, Phase: 0, Worker: wk, RowWidth: bw, Ranges: p.Ranges, Values: p.Values,
		})
	}
	n, k := 10, 8

	var stream bytes.Buffer
	sender := &wireConn{w: wire.NewWriter(&stream)}
	for _, r := range results {
		if err := sender.sendGFResult(r); err != nil {
			t.Fatal(err)
		}
	}
	src := bytes.NewReader(stream.Bytes())
	tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(src)}

	m := &Master{cfg: MasterConfig{ReuseRound: true}}
	decWS := enc.NewDecodeWorkspace()
	dst := make([]gf.Elem, enc.OrigRows*bw)
	assignment := []coding.Range{{Lo: 0, Hi: enc.BlockRows}}
	msg := &Msg{}

	runRound := func() {
		ws := &m.def.gfRound
		m.recycleGFRound(ws)
		ws.begin(n, enc.BlockRows, k, bw)
		for w := 0; w < n; w++ {
			ws.workMsg = GFWork{Iter: 0, Phase: 0, W: bw, X: xs, Ranges: assignment}
			if err := tc.sendGFWork(&ws.workMsg); err != nil {
				t.Fatal(err)
			}
		}
		src.Reset(stream.Bytes())
		tc.r.Reset(src)
		for range results {
			if err := tc.recv(msg); err != nil {
				t.Fatal(err)
			}
			if msg.Kind != KindGFResult {
				t.Fatalf("kind %d", msg.Kind)
			}
			r := m.getGFResult()
			*r, msg.GFResult = msg.GFResult, *r
			if err := ws.addResult(r, time.Millisecond); err != nil {
				t.Fatal(err)
			}
			ws.retained = append(ws.retained, r)
		}
		if ws.needed != 0 {
			t.Fatal("fixture round did not reach coverage")
		}
		partials, _, err := m.finishGFRound(ws)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := enc.DecodeMatVecInto(dst, partials, decWS); err != nil {
			t.Fatal(err)
		}
	}
	runRound()
	for l := 0; l < bw; l++ {
		want := gfGroundTruth(rows, cols, data, xs[l*cols:(l+1)*cols])
		for r := range want {
			if dst[r*bw+l] != want[r] {
				t.Fatalf("lane %d row %d: %d != %d", l, r, dst[r*bw+l], want[r])
			}
		}
	}
	allocs := testing.AllocsPerRun(50, runRound)
	if allocs != 0 {
		t.Fatalf("steady-state batched GF round allocates %v/op, want 0", allocs)
	}
}

// TestBatchFrameRoundTrip pins the frame encodings: width > 1 emits the
// batch frame types and survives a round trip; a width-1 message after a
// batched one must reset the pooled slot's width back to 1 (the stale
// batch-width regression).
func TestBatchFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := &wireConn{w: wire.NewWriter(&buf)}
	work := &Work{Iter: 2, Phase: 1, W: 3, X: []float64{1, 2, 3, 4, 5, 6}, Ranges: []coding.Range{{Lo: 0, Hi: 2}}}
	res := &Result{Iter: 2, Phase: 1, Worker: 4, RowWidth: 3, ComputeNanos: 9,
		Ranges: []coding.Range{{Lo: 0, Hi: 2}}, Values: []float64{1, 2, 3, 4, 5, 6}}
	gfw := &GFWork{Iter: 2, Phase: 1, W: 2, X: []gf.Elem{7, 8, 9, 10}, Ranges: []coding.Range{{Lo: 1, Hi: 3}}}
	gfr := &GFResult{Iter: 2, Phase: 1, Worker: 5, RowWidth: 2, ComputeNanos: 11,
		Ranges: []coding.Range{{Lo: 1, Hi: 3}}, Values: []gf.Elem{4, 5, 6, 7}}
	singleRes := &Result{Iter: 3, Phase: 0, Worker: 1,
		Ranges: []coding.Range{{Lo: 0, Hi: 1}}, Values: []float64{42}}
	for _, err := range []error{
		c.sendWork(work), c.sendResult(res), c.sendGFWork(gfw), c.sendGFResult(gfr), c.sendResult(singleRes),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(bytes.NewReader(buf.Bytes()))}
	msg := &Msg{}
	if err := tc.recv(msg); err != nil || msg.Kind != KindWork {
		t.Fatalf("work: kind %d err %v", msg.Kind, err)
	}
	if msg.Work.W != 3 || len(msg.Work.X) != 6 {
		t.Fatalf("work round trip: W=%d len(X)=%d", msg.Work.W, len(msg.Work.X))
	}
	if err := tc.recv(msg); err != nil || msg.Kind != KindResult {
		t.Fatalf("result: kind %d err %v", msg.Kind, err)
	}
	if msg.Result.RowWidth != 3 || len(msg.Result.Values) != 6 || msg.Result.ComputeNanos != 9 {
		t.Fatalf("result round trip: %+v", msg.Result)
	}
	if err := tc.recv(msg); err != nil || msg.Kind != KindGFWork {
		t.Fatalf("gfwork: kind %d err %v", msg.Kind, err)
	}
	if msg.GFWork.W != 2 || len(msg.GFWork.X) != 4 {
		t.Fatalf("gfwork round trip: W=%d len(X)=%d", msg.GFWork.W, len(msg.GFWork.X))
	}
	if err := tc.recv(msg); err != nil || msg.Kind != KindGFResult {
		t.Fatalf("gfresult: kind %d err %v", msg.Kind, err)
	}
	if msg.GFResult.RowWidth != 2 || len(msg.GFResult.Values) != 4 {
		t.Fatalf("gfresult round trip: %+v", msg.GFResult)
	}
	// The width-1 frame arrives into the same pooled Msg whose Result slot
	// still says RowWidth=3; recv must reset it.
	if err := tc.recv(msg); err != nil || msg.Kind != KindResult {
		t.Fatalf("single result: kind %d err %v", msg.Kind, err)
	}
	if msg.Result.RowWidth != 1 || len(msg.Result.Values) != 1 || msg.Result.Values[0] != 42 {
		t.Fatalf("stale batch width leaked into single-x frame: %+v", msg.Result)
	}
}

// hostileBatchFrame encodes a GF result batch frame with an arbitrary
// declared width and value count.
func hostileBatchFrame(tb testing.TB, width, count int) []byte {
	var buf bytes.Buffer
	w := wire.NewWriter(&buf)
	w.Begin(wire.TypeGFResultBatch)
	w.Int(0)     // iter
	w.Int(0)     // phase
	w.Int(0)     // worker
	w.Uvarint(0) // partial
	w.Uvarint(0) // nanos
	w.Int(width)
	w.Int(0) // no ranges
	w.Uvarint(uint64(count))
	if err := w.End(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestBatchFrameHostileWidths pins readBatchWidth: a batch frame claiming
// width < 2 (the single-x types own that) or width beyond the bound is a
// protocol error, decoded into nothing.
func TestBatchFrameHostileWidths(t *testing.T) {
	for _, width := range []int{-1, 0, 1, maxBatchWidth + 1, 1 << 30} {
		data := hostileBatchFrame(t, width, 0)
		tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(bytes.NewReader(data))}
		msg := &Msg{}
		if err := tc.recv(msg); err == nil {
			t.Fatalf("width %d decoded without error", width)
		}
	}
}

// TestBatchFrameHostileElementCount declares a value count the frame
// cannot hold: the division-based guard rejects it before sizing.
func TestBatchFrameHostileElementCount(t *testing.T) {
	data := hostileBatchFrame(t, 4, 1<<40)
	tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(bytes.NewReader(data))}
	msg := &Msg{}
	if err := tc.recv(msg); err == nil {
		t.Fatal("hostile batched element count decoded without error")
	}
}

// TestBatchGatherAllLanesOrNothing pins the master-side dedup contract: a
// result whose value count is not rows×width contributes nothing (no row
// may be marked covered by a frame missing lanes), a result whose width
// disagrees with the round is rejected wholesale, and a correct frame
// then advances coverage normally.
func TestBatchGatherAllLanesOrNothing(t *testing.T) {
	m := &Master{cfg: MasterConfig{ReuseRound: true}}
	ws := &m.def.round
	ws.begin(3, 4, 2, 2)
	// 4 rows at width 2 need 8 values; 7 is a missing lane.
	bad := &Result{Worker: 0, RowWidth: 2, Ranges: []coding.Range{{Lo: 0, Hi: 4}}, Values: make([]float64, 7)}
	if err := ws.addResult(bad, time.Millisecond); err == nil {
		t.Fatal("short batched result accepted")
	}
	if ws.needed != 4 {
		t.Fatalf("rejected result advanced coverage: needed=%d, want 4", ws.needed)
	}
	for _, c := range ws.cov {
		if c != 0 {
			t.Fatal("rejected result marked rows covered")
		}
	}
	// A width-1 result in a width-2 round is rejected outright.
	wrong := &Result{Worker: 1, RowWidth: 1, Ranges: []coding.Range{{Lo: 0, Hi: 4}}, Values: make([]float64, 4)}
	if err := ws.addResult(wrong, time.Millisecond); err == nil {
		t.Fatal("width-mismatched result accepted")
	}
	for _, c := range ws.cov {
		if c != 0 {
			t.Fatal("width-mismatched result marked rows covered")
		}
	}
	// Correct frames from two workers complete coverage at k=2.
	for _, wk := range []int{0, 2} {
		good := &Result{Worker: wk, RowWidth: 2, Ranges: []coding.Range{{Lo: 0, Hi: 4}}, Values: make([]float64, 8)}
		if err := ws.addResult(good, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if ws.needed != 0 {
		t.Fatalf("correct batched results did not complete coverage: needed=%d", ws.needed)
	}
}

// TestRunRoundBatchValidatesArgs pins the public API guard: widths
// outside [1, maxBatchWidth] and xs lengths that do not divide by the
// width are errors before any network traffic.
func TestRunRoundBatchValidatesArgs(t *testing.T) {
	m := &Master{}
	plan := &sched.Plan{BlockRows: 1, Assignments: [][]coding.Range{{{Lo: 0, Hi: 1}}}}
	if _, _, err := m.RunRoundBatch(0, 0, make([]float64, 3), 2, plan, 1, 1.0); err == nil {
		t.Fatal("xs length not divisible by width accepted")
	}
	if _, _, err := m.RunRoundBatch(0, 0, nil, 0, plan, 1, 1.0); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, _, err := m.RunGFRoundBatch(0, 0, make([]gf.Elem, 4), maxBatchWidth+1, plan, 1, 1.0); err == nil {
		t.Fatal("oversized width accepted")
	}
}

// buildBatchResultStream encodes one valid batched GF result frame.
func buildBatchResultStream(tb testing.TB) []byte {
	var buf bytes.Buffer
	c := &wireConn{w: wire.NewWriter(&buf)}
	res := &GFResult{
		Iter: 1, Phase: 0, Worker: 2, RowWidth: 2, ComputeNanos: 77,
		Ranges: []coding.Range{{Lo: 0, Hi: 3}},
		Values: []gf.Elem{1, 2, 3, 4, 5, gf.Elem(gf.P - 1)},
	}
	if err := c.sendGFResult(res); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzBatchResultFrame feeds arbitrary byte streams to the master-side
// decoder seeded with batched frames: recv must terminate without
// panicking, and whatever decodes must carry a sane width.
func FuzzBatchResultFrame(f *testing.F) {
	valid := buildBatchResultStream(f)
	f.Add(valid)
	for _, cut := range []int{1, len(valid) / 2, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}
	f.Add(hostileBatchFrame(f, 1, 4))
	f.Add(hostileBatchFrame(f, maxBatchWidth+1, 0))
	f.Add(hostileBatchFrame(f, 4, 1<<40))
	f.Fuzz(func(t *testing.T, data []byte) {
		tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(bytes.NewReader(data))}
		msg := &Msg{}
		for {
			if err := tc.recv(msg); err != nil {
				return
			}
			switch msg.Kind {
			case KindResult:
				if msg.Result.RowWidth < 1 || msg.Result.RowWidth > maxBatchWidth {
					t.Fatalf("decoded result width %d", msg.Result.RowWidth)
				}
			case KindGFResult:
				if msg.GFResult.RowWidth < 1 || msg.GFResult.RowWidth > maxBatchWidth {
					t.Fatalf("decoded GF result width %d", msg.GFResult.RowWidth)
				}
			case KindWork:
				if msg.Work.W < 1 || msg.Work.W > maxBatchWidth {
					t.Fatalf("decoded work width %d", msg.Work.W)
				}
			case KindGFWork:
				if msg.GFWork.W < 1 || msg.GFWork.W > maxBatchWidth {
					t.Fatalf("decoded GF work width %d", msg.GFWork.W)
				}
			case 0:
				t.Fatal("recv succeeded with zero kind")
			}
		}
	})
}
