//go:build !race

package rpc

// raceEnabled flags the race detector; see race_test.go.
const raceEnabled = false
