package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/mat"
	"github.com/coded-computing/s2c2/internal/sched"
	"github.com/coded-computing/s2c2/internal/wire"
)

// startClusterCfg is startCluster with explicit master and worker config
// control (transport selection, streaming knobs, stall deadline) — a thin
// wrapper over the shared testcluster harness.
func startClusterCfg(t *testing.T, n int, mcfg MasterConfig, wcfg func(i int) WorkerConfig) *Master {
	t.Helper()
	return startTestCluster(t, n, clusterConfig{master: mcfg, worker: wcfg})
}

// runDeterministicRound runs one full-coverage (k = n) round on a fresh
// cluster and returns the decoded product. With k = n every worker's
// result enters the decode, so the output is independent of arrival order
// — the property that makes transport comparisons bit-exact.
func runDeterministicRound(t *testing.T, useGob bool, mcfg MasterConfig) []float64 {
	t.Helper()
	const n = 3
	m := startClusterCfg(t, n, mcfg, func(i int) WorkerConfig {
		return WorkerConfig{UseGob: useGob}
	})
	rng := rand.New(rand.NewSource(77))
	a := mat.Rand(47, 6, rng)
	x := make([]float64, 6)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	code, err := coding.NewMDSCode(n, n)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: n, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, err := strat.Plan([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	partials, _, err := m.RunRound(0, 0, x, plan, n, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestGobWireDecodeBitIdentical is the transport-equivalence acceptance
// criterion: the same round run over the gob fallback and over the wire
// protocol must decode to bit-identical outputs (the wire format ships
// raw IEEE-754 bits, so no value may change in transit).
func TestGobWireDecodeBitIdentical(t *testing.T) {
	gob := runDeterministicRound(t, true, MasterConfig{})
	wireOut := runDeterministicRound(t, false, MasterConfig{})
	if len(gob) != len(wireOut) {
		t.Fatalf("length mismatch: gob %d, wire %d", len(gob), len(wireOut))
	}
	for i := range gob {
		if gob[i] != wireOut[i] {
			t.Fatalf("row %d: gob %v != wire %v", i, gob[i], wireOut[i])
		}
	}
}

// TestMixedTransportCluster runs one cluster where half the workers speak
// the wire protocol and half the gob fallback: the handshake version byte
// selects per connection, and rounds must decode correctly across both.
func TestMixedTransportCluster(t *testing.T) {
	n, k := 4, 3
	m := startClusterCfg(t, n, MasterConfig{}, func(i int) WorkerConfig {
		return WorkerConfig{UseGob: i%2 == 0, PerRowDelay: 50 * time.Microsecond}
	})
	rng := rand.New(rand.NewSource(78))
	a := mat.Rand(36, 5, rng)
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.Float64()
	}
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	want := mat.MatVec(a, x)
	for iter := 0; iter < 3; iter++ {
		plan, err := strat.Plan([]float64{1, 1, 1, 1})
		if err != nil {
			t.Fatal(err)
		}
		partials, _, err := m.RunRound(iter, 0, x, plan, k, 10.0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := enc.DecodeMatVec(partials)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.VecApproxEqual(got, want, 1e-8) {
			t.Fatalf("iteration %d: mixed-transport decode mismatch", iter)
		}
	}
}

// TestChunkedDistributionTinyChunks forces many-chunk streams (one row
// per chunk, window 2) and checks the reassembled partitions compute the
// right products — the credit-based flow control path under maximal
// chunking.
func TestChunkedDistributionTinyChunks(t *testing.T) {
	n, k := 3, 2
	m := startClusterCfg(t, n, MasterConfig{ChunkRows: 1, ChunkWindow: 2},
		func(i int) WorkerConfig { return WorkerConfig{} })
	rng := rand.New(rand.NewSource(79))
	a := mat.Rand(30, 4, rng)
	x := []float64{0.25, -1, 2, 0.5}
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, _ := strat.Plan([]float64{1, 1, 1})
	partials, _, err := m.RunRound(0, 0, x, plan, k, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
		t.Fatal("decode mismatch after tiny-chunk distribution")
	}
}

// TestHandshakeVersionMismatch pins the handshake rejection path: clients
// with the wrong magic or an unsupported version byte are turned away
// without wedging the master, which keeps serving well-formed workers.
func TestHandshakeVersionMismatch(t *testing.T) {
	m, err := NewMaster("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)

	// Client 1: right magic, unknown version byte.
	badVersion, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer badVersion.Close()
	if _, err := badVersion.Write([]byte{'S', '2', 'C', '2', 99}); err != nil {
		t.Fatal(err)
	}
	// Client 2: wrong magic entirely.
	badMagic, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer badMagic.Close()
	if _, err := badMagic.Write([]byte("GARBAGE!!")); err != nil {
		t.Fatal(err)
	}

	// A real worker must still be admitted after both rejects.
	go func() {
		w, err := NewWorker(WorkerConfig{MasterAddr: m.Addr()})
		if err != nil {
			t.Error(err)
			return
		}
		w.Run() //nolint:errcheck
	}()
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatalf("master did not survive handshake rejects: %v", err)
	}
	if got := m.NumWorkers(); got != 1 {
		t.Fatalf("NumWorkers = %d, want 1 (rejected conns must not register)", got)
	}

	// Both rejected connections must have been closed by the master.
	for name, c := range map[string]net.Conn{"bad version": badVersion, "bad magic": badMagic} {
		c.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatalf("%s conn still open after reject", name)
		}
	}
}

// TestWorkerRejectsCorruptFrames pins the worker-side framing guards: an
// oversized length prefix and a truncated frame must both surface as
// errors from Run, not decode garbage.
func TestWorkerRejectsCorruptFrames(t *testing.T) {
	cases := []struct {
		name string
		send func(c net.Conn)
		want string
	}{
		{
			name: "oversized length prefix",
			send: func(c net.Conn) {
				c.Write(binary.AppendUvarint(nil, uint64(maxRPCFrame)+1)) //nolint:errcheck
			},
			want: "size limit",
		},
		{
			name: "truncated frame",
			send: func(c net.Conn) {
				// Declare a 100-byte body, deliver 3, then close.
				b := binary.AppendUvarint(nil, 100)
				b = append(b, byte(wire.TypeWork), 0, 0)
				c.Write(b) //nolint:errcheck
				c.Close()
			},
			want: "unexpected EOF",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			done := make(chan error, 1)
			go func() {
				w, err := NewWorker(WorkerConfig{MasterAddr: ln.Addr().String()})
				if err != nil {
					done <- err
					return
				}
				done <- w.Run()
			}()
			c, err := ln.Accept()
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if _, err := wire.ReadHandshake(c); err != nil {
				t.Fatal(err)
			}
			// Consume the hello frame so the stream position is clean.
			r := wire.NewReader(c)
			if typ, _, err := r.Next(); err != nil || typ != wire.TypeHello {
				t.Fatalf("hello: %v %v", typ, err)
			}
			tc.send(c)
			select {
			case err := <-done:
				if err == nil || !strings.Contains(err.Error(), tc.want) {
					t.Fatalf("worker exited with %v, want error containing %q", err, tc.want)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("worker did not exit on corrupt frame")
			}
		})
	}
}

// TestLargeResultsSplitAcrossMessages pins the result-size ceiling fix: a
// result larger than maxResultRows must arrive as several range-aligned
// Result messages (each a bounded frame), and the round must gather and
// decode them exactly as if the result were monolithic.
func TestLargeResultsSplitAcrossMessages(t *testing.T) {
	n, k := 3, 2
	m := startClusterCfg(t, n, MasterConfig{}, func(i int) WorkerConfig {
		return WorkerConfig{MaxResultRows: 7} // force splitting on a laptop-sized fixture
	})
	rng := rand.New(rand.NewSource(82))
	a := mat.Rand(60, 4, rng) // blockRows 30 >> 7: every worker splits
	x := []float64{1, -0.5, 2, 0.25}
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, _ := strat.Plan([]float64{1, 1, 1})
	partials, _, err := m.RunRound(0, 0, x, plan, k, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	perWorker := map[int]int{}
	for _, p := range partials {
		perWorker[p.Worker]++
	}
	for w, c := range perWorker {
		if c < 2 {
			t.Fatalf("worker %d delivered %d partials; expected split results", w, c)
		}
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
		t.Fatal("decode mismatch over split results")
	}
}

// TestWorkerRejectsOutOfOrderChunks pins the sequential-streaming guard:
// a duplicate chunk could otherwise drive the remaining-row count to zero
// and publish a partition whose uncovered rows are silently zero. The
// worker must treat it as a protocol error instead.
func TestWorkerRejectsOutOfOrderChunks(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		w, err := NewWorker(WorkerConfig{MasterAddr: ln.Addr().String()})
		if err != nil {
			done <- err
			return
		}
		done <- w.Run()
	}()
	c, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := wire.ReadHandshake(c); err != nil {
		t.Fatal(err)
	}
	r := wire.NewReader(c)
	if typ, _, err := r.Next(); err != nil || typ != wire.TypeHello {
		t.Fatalf("hello: %v %v", typ, err)
	}
	w := wire.NewWriter(c)
	w.Begin(wire.TypePartitionStart)
	w.Int(0) // phase
	w.Int(1) // seq
	w.Int(4) // rows
	w.Int(1) // cols
	w.Int(2) // chunk rows
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	sendChunk := func(lo, hi int) {
		w.Begin(wire.TypePartitionChunk)
		w.Int(0) // phase
		w.Int(1) // seq
		w.Int(lo)
		w.Int(hi)
		w.Float64s(make([]float64, hi-lo))
		if err := w.End(); err != nil {
			t.Fatal(err)
		}
	}
	sendChunk(0, 2)
	sendChunk(0, 2) // duplicate: would complete the row count without rows [2,4)
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "out of order") {
			t.Fatalf("worker exited with %v, want out-of-order chunk error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not reject the duplicate chunk")
	}
}

// TestDistributePartitionsConnDropMidStream drops the connection in the
// middle of a chunked partition transfer: DistributePartitions must fail
// promptly (the reader's death signal, not the stall deadline, ends the
// wait) and report the transfer error.
func TestDistributePartitionsConnDropMidStream(t *testing.T) {
	m, err := NewMasterWithConfig(MasterConfig{
		Addr:         "127.0.0.1:0",
		ChunkRows:    1,
		ChunkWindow:  2,
		StallTimeout: 10 * time.Second, // must NOT be what bounds this test
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Shutdown)

	// A hand-rolled wire client: handshake + hello, ack the first two
	// chunks, then drop the connection mid-stream.
	go func() {
		c, err := net.Dial("tcp", m.Addr())
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		if err := wire.WriteHandshake(c, wire.VersionWire); err != nil {
			t.Error(err)
			return
		}
		w := wire.NewWriter(c)
		w.Begin(wire.TypeHello)
		w.Float64(1)
		if err := w.End(); err != nil {
			t.Error(err)
			return
		}
		r := wire.NewReader(c)
		acked := 0
		for {
			typ, p, err := r.Next()
			if err != nil {
				return // master closed on us after the failure: fine
			}
			if typ != wire.TypePartitionChunk {
				continue
			}
			phase, seq := p.Int(), p.Int()
			if acked >= 2 {
				return // defer closes the conn mid-stream
			}
			acked++
			w.Begin(wire.TypePartitionAck)
			w.Int(phase)
			w.Int(seq)
			if err := w.End(); err != nil {
				return
			}
		}
	}()
	if err := m.WaitForWorkers(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	a := mat.NewFromRows([][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}})
	code, _ := coding.NewMDSCode(1, 1)
	enc := code.Encode(a)
	start := time.Now()
	err = m.DistributePartitions(0, enc)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("DistributePartitions succeeded despite a mid-stream connection drop")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("failure took %v — the drop was detected by the stall deadline, not the dead connection", elapsed)
	}
	// The partition must not have been installed for rounds.
	plan := &sched.Plan{BlockRows: enc.BlockRows, Assignments: [][]coding.Range{{{Lo: 0, Hi: enc.BlockRows}}}}
	if _, _, err := m.RunRound(0, 0, []float64{1}, plan, 1, 1.0); err == nil {
		t.Fatal("round ran against a partition whose transfer failed")
	}
}

// TestRunRoundContextCancel pins per-round cancellation: a canceled
// context must end the round promptly with the context's error while the
// cluster stays usable for the next round.
func TestRunRoundContextCancel(t *testing.T) {
	n, k := 2, 2
	m := startClusterCfg(t, n, MasterConfig{}, func(i int) WorkerConfig {
		return WorkerConfig{PerRowDelay: 20 * time.Millisecond} // slow enough to outlive the ctx
	})
	rng := rand.New(rand.NewSource(80))
	a := mat.Rand(40, 4, rng)
	x := []float64{1, 2, 3, 4}
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, _ := strat.Plan([]float64{1, 1})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := m.RunRoundContext(ctx, 0, 0, x, plan, k, 10.0)
	if err == nil {
		t.Fatal("canceled round returned no error")
	}
	if !strings.Contains(err.Error(), "canceled") && !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("unexpected cancellation error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}

	// The cluster must still complete a later round (the canceled round's
	// late results are discarded by the stale filter).
	partials, _, err := m.RunRound(1, 0, x, plan, k, 10.0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, mat.MatVec(a, x), 1e-8) {
		t.Fatal("decode mismatch on the round after a cancellation")
	}
}

// TestMasterStallTimeoutConfigurable pins the MasterConfig.StallTimeout
// knob: a round against workers that never respond must fail after the
// configured deadline, not the 30-second default.
func TestMasterStallTimeoutConfigurable(t *testing.T) {
	n, k := 2, 2
	m := startClusterCfg(t, n, MasterConfig{StallTimeout: 100 * time.Millisecond},
		func(i int) WorkerConfig {
			return WorkerConfig{PerRowDelay: time.Second} // effectively never responds
		})
	rng := rand.New(rand.NewSource(81))
	a := mat.Rand(20, 4, rng)
	code, _ := coding.NewMDSCode(n, k)
	enc := code.Encode(a)
	if err := m.DistributePartitions(0, enc); err != nil {
		t.Fatal(err)
	}
	strat := &sched.GeneralS2C2{N: n, K: k, BlockRows: enc.BlockRows, Granularity: enc.BlockRows}
	plan, _ := strat.Plan([]float64{1, 1})
	start := time.Now()
	_, _, err := m.RunRound(0, 0, []float64{1, 1, 1, 1}, plan, k, 10.0)
	elapsed := time.Since(start)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v, want stall", err)
	}
	if elapsed < 80*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("stall fired after %v with a 100ms configured deadline", elapsed)
	}
}

// TestMasterWireRoundZeroAllocsSteadyState is the transport acceptance
// criterion: a steady-state round on the master — sending the work
// assignments, receiving every result frame through the wire transport,
// gathering, and decoding — allocates nothing. The harness drives the
// master-side wireConn synchronously over an in-memory byte stream so the
// measurement covers exactly the master's per-round path (frame encode,
// frame decode into pooled slots, gather bookkeeping, decode).
func TestMasterWireRoundZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector drops sync.Pool items, forcing reallocation")
	}
	enc, results, want := gatherFixture(t)
	n, k := 10, 8

	// Pre-encode the round's result frames once, as the workers would.
	var stream bytes.Buffer
	sender := &wireConn{w: wire.NewWriter(&stream)}
	for _, r := range results {
		if err := sender.sendResult(r); err != nil {
			t.Fatal(err)
		}
	}
	src := bytes.NewReader(stream.Bytes())
	tc := &wireConn{w: wire.NewWriter(io.Discard), r: wire.NewReader(src)}

	m := &Master{cfg: MasterConfig{ReuseRound: true}}
	decWS := enc.NewDecodeWorkspace()
	dst := make([]float64, enc.OrigRows)
	x := make([]float64, enc.Cols)
	assignment := []coding.Range{{Lo: 0, Hi: enc.BlockRows}}
	msg := &Msg{}

	runRound := func() {
		ws := &m.def.round
		m.recycleRound(ws)
		ws.begin(n, enc.BlockRows, k, 1)
		// Send tasks: one work frame per active worker.
		for w := 0; w < n; w++ {
			ws.workMsg = Work{Iter: 0, Phase: 0, X: x, Ranges: assignment}
			if err := tc.sendWork(&ws.workMsg); err != nil {
				t.Fatal(err)
			}
		}
		// Receive results: decode each frame into a pooled slot (the
		// readLoop's swap idiom) and gather.
		src.Reset(stream.Bytes())
		tc.r.Reset(src)
		for range results {
			if err := tc.recv(msg); err != nil {
				t.Fatal(err)
			}
			if msg.Kind != KindResult {
				t.Fatalf("kind %d", msg.Kind)
			}
			r := m.getResult()
			*r, msg.Result = msg.Result, *r
			if err := ws.addResult(r, time.Millisecond); err != nil {
				t.Fatal(err)
			}
			ws.retained = append(ws.retained, r)
		}
		if ws.needed != 0 {
			t.Fatal("fixture round did not reach coverage")
		}
		partials, stats, err := m.finishRound(ws)
		if err != nil {
			t.Fatal(err)
		}
		if stats.AssignedRows == nil {
			t.Fatal("missing stats")
		}
		if _, err := enc.DecodeMatVecInto(dst, partials, decWS); err != nil {
			t.Fatal(err)
		}
	}
	runRound() // warm: sizes buffers, pools the result slots, factors the decode set
	if !mat.VecApproxEqual(dst, want, 1e-8) {
		t.Fatal("wire round fixture produced a wrong result")
	}
	allocs := testing.AllocsPerRun(50, runRound)
	if allocs != 0 {
		t.Fatalf("steady-state wire round allocates %v/op on the master, want 0", allocs)
	}
}
