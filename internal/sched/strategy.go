// Package sched implements the paper's workload-distribution strategies:
// the S2C2 algorithms (basic §4.1 and general §4.2/Algorithm 1), the
// conventional (n,k)-MDS plan they improve upon, and the configuration of
// the two uncoded baselines (3-replication with speculation, and
// Charm++-style over-decomposition) whose event-level simulation lives in
// internal/sim.
//
// A Plan assigns every worker a set of row ranges within its own coded
// partition. The central invariant — checked by Plan.Coverage and
// property-tested — is that every partition row index is covered by at
// least k distinct workers, which is exactly the decodability condition
// of the MDS (or polynomial) code.
package sched

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/coding"
)

// Plan is one round's work map: Assignments[w] lists the row ranges
// worker w must compute within its coded partition.
type Plan struct {
	BlockRows   int
	Assignments [][]coding.Range
}

// NumWorkers returns the worker count.
func (p *Plan) NumWorkers() int { return len(p.Assignments) }

// RowsFor returns how many rows worker w is assigned.
func (p *Plan) RowsFor(w int) int { return coding.TotalRows(p.Assignments[w]) }

// TotalRows sums assigned rows over all workers.
func (p *Plan) TotalRows() int {
	t := 0
	for w := range p.Assignments {
		t += p.RowsFor(w)
	}
	return t
}

// Coverage returns, for each partition row index, how many workers are
// assigned to compute it.
func (p *Plan) Coverage() []int {
	cov := make([]int, p.BlockRows)
	for _, ranges := range p.Assignments {
		for _, r := range ranges {
			for i := r.Lo; i < r.Hi; i++ {
				cov[i]++
			}
		}
	}
	return cov
}

// CoverageAtLeast reports whether every row index is covered by >= k
// workers (the decodability invariant).
func (p *Plan) CoverageAtLeast(k int) bool {
	for _, c := range p.Coverage() {
		if c < k {
			return false
		}
	}
	return true
}

// Strategy produces per-iteration work plans from predicted speeds.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// NeedK is the per-row coverage required for decoding.
	NeedK() int
	// Plan builds the round's assignment from predicted worker speeds
	// (len == number of workers).
	Plan(predictedSpeeds []float64) (*Plan, error)
}

// ConventionalMDS is the prior-work baseline (Lee et al., ISIT'16): every
// worker computes its entire partition; the master uses the fastest k
// responses and discards the rest.
type ConventionalMDS struct {
	N, K      int
	BlockRows int
}

// Name implements Strategy.
func (c *ConventionalMDS) Name() string { return fmt.Sprintf("mds(%d,%d)", c.N, c.K) }

// NeedK implements Strategy.
func (c *ConventionalMDS) NeedK() int { return c.K }

// Plan assigns the full partition to every worker regardless of speed.
func (c *ConventionalMDS) Plan(speeds []float64) (*Plan, error) {
	return c.PlanInto(speeds, nil)
}

// PlanInto is Plan writing into dst, reusing its assignment storage (nil
// allocates a fresh plan).
func (c *ConventionalMDS) PlanInto(speeds []float64, dst *Plan) (*Plan, error) {
	if len(speeds) != c.N {
		return nil, fmt.Errorf("sched: got %d speeds for %d workers", len(speeds), c.N)
	}
	if dst == nil {
		dst = &Plan{}
	}
	dst.BlockRows = c.BlockRows
	if cap(dst.Assignments) < c.N {
		assignments := make([][]coding.Range, c.N)
		copy(assignments, dst.Assignments)
		dst.Assignments = assignments
	}
	dst.Assignments = dst.Assignments[:c.N]
	for w := 0; w < c.N; w++ {
		dst.Assignments[w] = append(dst.Assignments[w][:0], coding.Range{Lo: 0, Hi: c.BlockRows})
	}
	return dst, nil
}

// IntoPlanner is the optional reuse form of Strategy: PlanInto writes the
// round's assignment into a caller-owned Plan, recycling its storage. All
// built-in strategies implement it.
type IntoPlanner interface {
	PlanInto(predictedSpeeds []float64, dst *Plan) (*Plan, error)
}

// PlanBuffer double-buffers round plans: Next plans into the older of two
// reusable Plans, so the previous round's plan — which a master may still
// be reading while its round drains (late results, reassignment) — stays
// intact while the next one is built. With an IntoPlanner strategy the
// steady state allocates nothing.
//
// The zero value is ready to use. Not safe for concurrent Next calls.
type PlanBuffer struct {
	plans [2]*Plan
	cur   int
}

// Next builds the next round's plan from the predicted speeds, recycling
// the plan returned two calls ago.
func (b *PlanBuffer) Next(s Strategy, speeds []float64) (*Plan, error) {
	b.cur ^= 1
	if ip, ok := s.(IntoPlanner); ok {
		p, err := ip.PlanInto(speeds, b.plans[b.cur])
		if err != nil {
			return nil, err
		}
		b.plans[b.cur] = p
		return p, nil
	}
	p, err := s.Plan(speeds)
	if err != nil {
		return nil, err
	}
	b.plans[b.cur] = p
	return p, nil
}
