package sched

import (
	"math/rand"
	"testing"
)

func plansEqual(a, b *Plan) bool {
	if a.BlockRows != b.BlockRows || len(a.Assignments) != len(b.Assignments) {
		return false
	}
	for w := range a.Assignments {
		if len(a.Assignments[w]) != len(b.Assignments[w]) {
			return false
		}
		for i, r := range a.Assignments[w] {
			if b.Assignments[w][i] != r {
				return false
			}
		}
	}
	return true
}

func TestPlanIntoMatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		k := 1 + rng.Intn(n)
		blockRows := 1 + rng.Intn(300)
		gran := rng.Intn(6 * n) // 0 selects the default
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = rng.Float64() * 3
		}
		fresh := &GeneralS2C2{N: n, K: k, BlockRows: blockRows, Granularity: gran}
		want, err := fresh.Plan(speeds)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		reused := &GeneralS2C2{N: n, K: k, BlockRows: blockRows, Granularity: gran}
		var dst *Plan
		for round := 0; round < 3; round++ {
			dst, err = reused.PlanInto(speeds, dst)
			if err != nil {
				t.Fatalf("trial %d round %d: %v", trial, round, err)
			}
			if !plansEqual(want, dst) {
				t.Fatalf("trial %d round %d: PlanInto differs from Plan\nwant %+v\ngot  %+v",
					trial, round, want.Assignments, dst.Assignments)
			}
		}
	}
}

func TestConventionalMDSPlanIntoMatchesPlan(t *testing.T) {
	c := &ConventionalMDS{N: 5, K: 3, BlockRows: 17}
	speeds := []float64{1, 2, 3, 4, 5}
	want, err := c.Plan(speeds)
	if err != nil {
		t.Fatal(err)
	}
	var dst *Plan
	for round := 0; round < 3; round++ {
		dst, err = c.PlanInto(speeds, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !plansEqual(want, dst) {
			t.Fatalf("round %d: PlanInto differs from Plan", round)
		}
	}
}

func TestBasicS2C2PlanIntoMatchesPlan(t *testing.T) {
	speeds := []float64{1, 1, 0.1, 1}
	fresh := &BasicS2C2{N: 4, K: 2, BlockRows: 40}
	want, err := fresh.Plan(speeds)
	if err != nil {
		t.Fatal(err)
	}
	reused := &BasicS2C2{N: 4, K: 2, BlockRows: 40}
	var dst *Plan
	for round := 0; round < 3; round++ {
		dst, err = reused.PlanInto(speeds, dst)
		if err != nil {
			t.Fatal(err)
		}
		if !plansEqual(want, dst) {
			t.Fatalf("round %d: PlanInto differs from Plan", round)
		}
	}
}

// TestPlanBufferSteadyStateZeroAllocs pins the double-buffer contract:
// once both buffers are warm, planning a round allocates nothing.
func TestPlanBufferSteadyStateZeroAllocs(t *testing.T) {
	s := &GeneralS2C2{N: 8, K: 6, BlockRows: 250}
	speeds := []float64{1, 0.8, 1.2, 0.5, 1, 1, 0.9, 1.1}
	var buf PlanBuffer
	for i := 0; i < 4; i++ { // warm both buffers
		if _, err := buf.Next(s, speeds); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := buf.Next(s, speeds); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PlanBuffer.Next allocates %v/op in steady state, want 0", allocs)
	}
}

// TestPlanBufferKeepsPreviousPlanIntact verifies the double buffering:
// the plan from round i must remain readable (unmodified) while round
// i+1 is planned into the other buffer.
func TestPlanBufferKeepsPreviousPlanIntact(t *testing.T) {
	s := &GeneralS2C2{N: 4, K: 2, BlockRows: 60, Granularity: 12}
	var buf PlanBuffer
	fast := []float64{1, 1, 1, 1}
	skew := []float64{2, 1, 0.25, 1}
	p1, err := buf.Next(s, fast)
	if err != nil {
		t.Fatal(err)
	}
	snapshot, err := s.Plan(fast) // independent copy of p1's contents
	if err != nil {
		t.Fatal(err)
	}
	if _, err := buf.Next(s, skew); err != nil {
		t.Fatal(err)
	}
	if !plansEqual(p1, snapshot) {
		t.Fatal("planning the next round mutated the previous round's plan")
	}
}
