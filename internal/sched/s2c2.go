package sched

import (
	"fmt"
	"math"

	"github.com/coded-computing/s2c2/internal/coding"
	"github.com/coded-computing/s2c2/internal/kernel"
)

// GeneralS2C2 implements Algorithm 1. Each partition is over-decomposed
// into Granularity chunks; k×Granularity chunk-computations are allocated
// to workers proportionally to predicted speed (capped at one full
// partition each) and laid out as contiguous cyclic intervals, so every
// chunk index is covered exactly k times.
type GeneralS2C2 struct {
	N, K      int
	BlockRows int
	// Granularity is the over-decomposition factor (chunks per partition).
	// Higher values track speed differences more precisely at slightly
	// higher planning cost. 0 selects a default of 4×N.
	Granularity int

	// Planning scratch recycled across rounds; PlanInto on one strategy
	// value is therefore not safe for concurrent use.
	alloc, order []int
}

// Name implements Strategy.
func (g *GeneralS2C2) Name() string { return fmt.Sprintf("s2c2(%d,%d)", g.N, g.K) }

// NeedK implements Strategy.
func (g *GeneralS2C2) NeedK() int { return g.K }

func (g *GeneralS2C2) granularity() int {
	m := g.Granularity
	if m <= 0 {
		m = 4 * g.N
	}
	// More chunks than rows only adds quantization noise: cap at the
	// partition size so one chunk is never less than one row.
	if g.BlockRows > 0 && m > g.BlockRows {
		m = g.BlockRows
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Plan implements Algorithm 1 of the paper.
func (g *GeneralS2C2) Plan(speeds []float64) (*Plan, error) {
	return g.PlanInto(speeds, nil)
}

// PlanInto is Plan writing into dst, reusing its assignment storage (nil
// allocates a fresh plan). A warm (strategy, plan) pair plans steady-state
// rounds without allocation; pair it with a PlanBuffer so the previous
// round's plan stays readable while the next one is built.
func (g *GeneralS2C2) PlanInto(speeds []float64, dst *Plan) (*Plan, error) {
	if len(speeds) != g.N {
		return nil, fmt.Errorf("sched: got %d speeds for %d workers", len(speeds), g.N)
	}
	if g.K < 1 || g.K > g.N {
		return nil, fmt.Errorf("sched: invalid (n,k)=(%d,%d)", g.N, g.K)
	}
	m := g.granularity()
	g.alloc = kernel.GrowInts(g.alloc, g.N)
	if err := allocateChunksInto(g.alloc, speeds, g.K, m); err != nil {
		return nil, err
	}
	// Lay out contiguous cyclic chunk intervals in descending-speed order
	// (the order allocateChunksInto used), so coverage is exactly k per
	// chunk.
	g.order = appendSpeedOrder(g.order[:0], speeds)
	if dst == nil {
		dst = &Plan{}
	}
	dst.BlockRows = g.BlockRows
	if cap(dst.Assignments) < g.N {
		assignments := make([][]coding.Range, g.N)
		copy(assignments, dst.Assignments)
		dst.Assignments = assignments
	}
	dst.Assignments = dst.Assignments[:g.N]
	begin := 0
	for _, w := range g.order {
		a := g.alloc[w]
		if a == 0 {
			dst.Assignments[w] = dst.Assignments[w][:0]
			continue
		}
		dst.Assignments[w] = appendChunkRows(dst.Assignments[w][:0], begin, begin+a, g.BlockRows, m)
		begin = (begin + a) % m
	}
	return dst, nil
}

// AllocateChunks distributes k×m chunk-computations over the workers
// proportionally to their speeds, each worker capped at m (its whole
// partition). It errors when fewer than k workers have positive speed,
// since coverage k would then be impossible.
//
// Rounding matters: naively rounding a slow worker's share *up* by one
// chunk can dominate the round's makespan (one extra chunk at speed 0.14
// costs 7× what it costs at speed 1). So quotas are floored and the
// leftover chunks are placed greedily on whichever worker's marginal
// completion time (alloc+1)/speed stays smallest — an LPT-style rule
// that keeps the realised makespan within one chunk of the fractional
// optimum.
func AllocateChunks(speeds []float64, k, m int) ([]int, error) {
	alloc := make([]int, len(speeds))
	if err := allocateChunksInto(alloc, speeds, k, m); err != nil {
		return nil, err
	}
	return alloc, nil
}

// allocateChunksInto is AllocateChunks writing into caller scratch of
// length len(speeds).
func allocateChunksInto(alloc []int, speeds []float64, k, m int) error {
	positive := 0
	total := 0.0
	for _, s := range speeds {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("sched: invalid speed %v", s)
		}
		if s > 0 {
			positive++
			total += s
		}
	}
	if positive < k {
		return fmt.Errorf("sched: only %d workers with positive speed, need >= %d", positive, k)
	}
	want := k * m
	placed := 0
	for w, s := range speeds {
		alloc[w] = 0
		if s <= 0 {
			continue
		}
		q := int(float64(want) * s / total) // floor of the exact quota
		if q > m {
			q = m
		}
		alloc[w] = q
		placed += q
	}
	// Place the remainder one chunk at a time on the worker with the
	// smallest resulting completion time that still has capacity.
	for placed < want {
		best := -1
		bestTime := 0.0
		for w, s := range speeds {
			if s <= 0 || alloc[w] >= m {
				continue
			}
			t := float64(alloc[w]+1) / s
			if best < 0 || t < bestTime {
				best, bestTime = w, t
			}
		}
		if best < 0 {
			return fmt.Errorf("sched: cannot place %d of %d chunk-computations", want-placed, want)
		}
		alloc[best]++
		placed++
	}
	return nil
}

// speedOrder returns worker indices sorted by descending speed (stable on
// ties by index, keeping plans deterministic).
func speedOrder(speeds []float64) []int {
	return appendSpeedOrder(make([]int, 0, len(speeds)), speeds)
}

// appendSpeedOrder is speedOrder appending onto dst (which must be
// empty), reusing its storage. Insertion sort with a strict comparison
// keeps ties in index order and avoids sort.SliceStable's closure
// allocation.
func appendSpeedOrder(dst []int, speeds []float64) []int {
	for i := range speeds {
		dst = append(dst, i)
	}
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && speeds[dst[j]] > speeds[dst[j-1]]; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	return dst
}

// appendChunkRows converts the cyclic chunk interval [begin, end) (end may
// exceed m, wrapping around) to normalized row ranges appended onto dst
// (which must be empty), using uniform banding: chunk c spans rows
// [c·rows/m, (c+1)·rows/m).
func appendChunkRows(dst []coding.Range, begin, end, blockRows, m int) []coding.Range {
	if end <= m {
		lo, hi := begin*blockRows/m, end*blockRows/m
		if hi > lo {
			dst = append(dst, coding.Range{Lo: lo, Hi: hi})
		}
		return dst
	}
	// Wrapped: chunks [begin, m) and [0, end-m). Row order is ascending —
	// the wrapped prefix first — and the two ranges merge when banding
	// makes them touch (notably a full-partition assignment).
	headHi := (end - m) * blockRows / m
	tailLo := begin * blockRows / m
	if headHi >= tailLo {
		dst = append(dst, coding.Range{Lo: 0, Hi: blockRows})
		return dst
	}
	if headHi > 0 {
		dst = append(dst, coding.Range{Lo: 0, Hi: headHi})
	}
	if blockRows > tailLo {
		dst = append(dst, coding.Range{Lo: tailLo, Hi: blockRows})
	}
	return dst
}

// ChunkRowBounds exposes the chunk→row banding for callers that must
// reason about chunk-aligned reassignment.
func ChunkRowBounds(chunk, blockRows, m int) coding.Range {
	return coding.Range{Lo: chunk * blockRows / m, Hi: (chunk + 1) * blockRows / m}
}

// BasicS2C2 is the §4.1 special case: every node is classified as either
// a straggler (assigned nothing) or a full-speed worker (assigned an equal
// share), ignoring fine-grained speed differences. A node is a straggler
// when its predicted speed falls below the fastest node's speed divided by
// StragglerFactor (the paper's controlled-cluster definition uses 5×).
type BasicS2C2 struct {
	N, K        int
	BlockRows   int
	Granularity int
	// StragglerFactor is the slowdown ratio that classifies stragglers;
	// 0 selects the paper's 5.
	StragglerFactor float64

	// Planning scratch recycled across rounds (see GeneralS2C2).
	binary []float64
	inner  *GeneralS2C2
}

// Name implements Strategy.
func (b *BasicS2C2) Name() string { return fmt.Sprintf("s2c2-basic(%d,%d)", b.N, b.K) }

// NeedK implements Strategy.
func (b *BasicS2C2) NeedK() int { return b.K }

// Plan classifies stragglers, then delegates to the general algorithm
// with binary speeds.
func (b *BasicS2C2) Plan(speeds []float64) (*Plan, error) {
	return b.PlanInto(speeds, nil)
}

// PlanInto is Plan writing into dst, reusing its assignment storage (nil
// allocates a fresh plan).
func (b *BasicS2C2) PlanInto(speeds []float64, dst *Plan) (*Plan, error) {
	if len(speeds) != b.N {
		return nil, fmt.Errorf("sched: got %d speeds for %d workers", len(speeds), b.N)
	}
	factor := b.StragglerFactor
	if factor <= 0 {
		factor = 5
	}
	max := 0.0
	for _, s := range speeds {
		if s > max {
			max = s
		}
	}
	b.binary = kernel.Grow(b.binary, b.N)
	binary := b.binary
	live := 0
	for i, s := range speeds {
		binary[i] = 0
		if s > 0 && s >= max/factor {
			binary[i] = 1
			live++
		}
	}
	// If classification leaves fewer than k live nodes, fall back to
	// counting the k fastest as live (coded computing still needs k).
	if live < b.K {
		for _, w := range speedOrder(speeds) {
			if binary[w] == 0 && speeds[w] > 0 {
				binary[w] = 1
				live++
				if live == b.K {
					break
				}
			}
		}
	}
	if b.inner == nil {
		b.inner = &GeneralS2C2{}
	}
	b.inner.N, b.inner.K, b.inner.BlockRows, b.inner.Granularity = b.N, b.K, b.BlockRows, b.Granularity
	return b.inner.PlanInto(binary, dst)
}
