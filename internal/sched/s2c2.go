package sched

import (
	"fmt"
	"math"
	"sort"

	"github.com/coded-computing/s2c2/internal/coding"
)

// GeneralS2C2 implements Algorithm 1. Each partition is over-decomposed
// into Granularity chunks; k×Granularity chunk-computations are allocated
// to workers proportionally to predicted speed (capped at one full
// partition each) and laid out as contiguous cyclic intervals, so every
// chunk index is covered exactly k times.
type GeneralS2C2 struct {
	N, K      int
	BlockRows int
	// Granularity is the over-decomposition factor (chunks per partition).
	// Higher values track speed differences more precisely at slightly
	// higher planning cost. 0 selects a default of 4×N.
	Granularity int
}

// Name implements Strategy.
func (g *GeneralS2C2) Name() string { return fmt.Sprintf("s2c2(%d,%d)", g.N, g.K) }

// NeedK implements Strategy.
func (g *GeneralS2C2) NeedK() int { return g.K }

func (g *GeneralS2C2) granularity() int {
	m := g.Granularity
	if m <= 0 {
		m = 4 * g.N
	}
	// More chunks than rows only adds quantization noise: cap at the
	// partition size so one chunk is never less than one row.
	if g.BlockRows > 0 && m > g.BlockRows {
		m = g.BlockRows
	}
	if m < 1 {
		m = 1
	}
	return m
}

// Plan implements Algorithm 1 of the paper.
func (g *GeneralS2C2) Plan(speeds []float64) (*Plan, error) {
	if len(speeds) != g.N {
		return nil, fmt.Errorf("sched: got %d speeds for %d workers", len(speeds), g.N)
	}
	if g.K < 1 || g.K > g.N {
		return nil, fmt.Errorf("sched: invalid (n,k)=(%d,%d)", g.N, g.K)
	}
	m := g.granularity()
	alloc, err := AllocateChunks(speeds, g.K, m)
	if err != nil {
		return nil, err
	}
	// Lay out contiguous cyclic chunk intervals in descending-speed order
	// (the order AllocateChunks used), so coverage is exactly k per chunk.
	order := speedOrder(speeds)
	plan := &Plan{BlockRows: g.BlockRows, Assignments: make([][]coding.Range, g.N)}
	begin := 0
	for _, w := range order {
		a := alloc[w]
		if a == 0 {
			plan.Assignments[w] = nil
			continue
		}
		end := begin + a
		var chunkRanges []coding.Range
		if end <= m {
			chunkRanges = []coding.Range{{Lo: begin, Hi: end}}
		} else {
			chunkRanges = []coding.Range{{Lo: begin, Hi: m}, {Lo: 0, Hi: end - m}}
		}
		plan.Assignments[w] = chunksToRows(chunkRanges, g.BlockRows, m)
		begin = end % m
	}
	return plan, nil
}

// AllocateChunks distributes k×m chunk-computations over the workers
// proportionally to their speeds, each worker capped at m (its whole
// partition). It errors when fewer than k workers have positive speed,
// since coverage k would then be impossible.
//
// Rounding matters: naively rounding a slow worker's share *up* by one
// chunk can dominate the round's makespan (one extra chunk at speed 0.14
// costs 7× what it costs at speed 1). So quotas are floored and the
// leftover chunks are placed greedily on whichever worker's marginal
// completion time (alloc+1)/speed stays smallest — an LPT-style rule
// that keeps the realised makespan within one chunk of the fractional
// optimum.
func AllocateChunks(speeds []float64, k, m int) ([]int, error) {
	n := len(speeds)
	positive := 0
	total := 0.0
	for _, s := range speeds {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("sched: invalid speed %v", s)
		}
		if s > 0 {
			positive++
			total += s
		}
	}
	if positive < k {
		return nil, fmt.Errorf("sched: only %d workers with positive speed, need >= %d", positive, k)
	}
	alloc := make([]int, n)
	want := k * m
	placed := 0
	for w, s := range speeds {
		if s <= 0 {
			continue
		}
		q := int(float64(want) * s / total) // floor of the exact quota
		if q > m {
			q = m
		}
		alloc[w] = q
		placed += q
	}
	// Place the remainder one chunk at a time on the worker with the
	// smallest resulting completion time that still has capacity.
	for placed < want {
		best := -1
		bestTime := 0.0
		for w, s := range speeds {
			if s <= 0 || alloc[w] >= m {
				continue
			}
			t := float64(alloc[w]+1) / s
			if best < 0 || t < bestTime {
				best, bestTime = w, t
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("sched: cannot place %d of %d chunk-computations", want-placed, want)
		}
		alloc[best]++
		placed++
	}
	return alloc, nil
}

// speedOrder returns worker indices sorted by descending speed (stable on
// ties by index, keeping plans deterministic).
func speedOrder(speeds []float64) []int {
	order := make([]int, len(speeds))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return speeds[order[a]] > speeds[order[b]] })
	return order
}

// chunksToRows converts chunk intervals to row ranges using uniform
// banding: chunk c spans rows [c·rows/m, (c+1)·rows/m).
func chunksToRows(chunks []coding.Range, blockRows, m int) []coding.Range {
	out := make([]coding.Range, 0, len(chunks))
	for _, c := range chunks {
		lo := c.Lo * blockRows / m
		hi := c.Hi * blockRows / m
		if hi > lo {
			out = append(out, coding.Range{Lo: lo, Hi: hi})
		}
	}
	return coding.NormalizeRanges(out)
}

// ChunkRowBounds exposes the chunk→row banding for callers that must
// reason about chunk-aligned reassignment.
func ChunkRowBounds(chunk, blockRows, m int) coding.Range {
	return coding.Range{Lo: chunk * blockRows / m, Hi: (chunk + 1) * blockRows / m}
}

// BasicS2C2 is the §4.1 special case: every node is classified as either
// a straggler (assigned nothing) or a full-speed worker (assigned an equal
// share), ignoring fine-grained speed differences. A node is a straggler
// when its predicted speed falls below the fastest node's speed divided by
// StragglerFactor (the paper's controlled-cluster definition uses 5×).
type BasicS2C2 struct {
	N, K        int
	BlockRows   int
	Granularity int
	// StragglerFactor is the slowdown ratio that classifies stragglers;
	// 0 selects the paper's 5.
	StragglerFactor float64
}

// Name implements Strategy.
func (b *BasicS2C2) Name() string { return fmt.Sprintf("s2c2-basic(%d,%d)", b.N, b.K) }

// NeedK implements Strategy.
func (b *BasicS2C2) NeedK() int { return b.K }

// Plan classifies stragglers, then delegates to the general algorithm
// with binary speeds.
func (b *BasicS2C2) Plan(speeds []float64) (*Plan, error) {
	if len(speeds) != b.N {
		return nil, fmt.Errorf("sched: got %d speeds for %d workers", len(speeds), b.N)
	}
	factor := b.StragglerFactor
	if factor <= 0 {
		factor = 5
	}
	max := 0.0
	for _, s := range speeds {
		if s > max {
			max = s
		}
	}
	binary := make([]float64, b.N)
	live := 0
	for i, s := range speeds {
		if s > 0 && s >= max/factor {
			binary[i] = 1
			live++
		}
	}
	// If classification leaves fewer than k live nodes, fall back to
	// counting the k fastest as live (coded computing still needs k).
	if live < b.K {
		for _, w := range speedOrder(speeds) {
			if binary[w] == 0 && speeds[w] > 0 {
				binary[w] = 1
				live++
				if live == b.K {
					break
				}
			}
		}
	}
	g := &GeneralS2C2{N: b.N, K: b.K, BlockRows: b.BlockRows, Granularity: b.Granularity}
	return g.Plan(binary)
}
