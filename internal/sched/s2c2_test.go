package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConventionalMDSPlan(t *testing.T) {
	c := &ConventionalMDS{N: 4, K: 2, BlockRows: 10}
	p, err := c.Plan([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if p.RowsFor(w) != 10 {
			t.Fatalf("worker %d assigned %d rows, want full partition", w, p.RowsFor(w))
		}
	}
	if !p.CoverageAtLeast(4) {
		t.Fatal("conventional MDS covers every row n times")
	}
	if _, err := c.Plan([]float64{1}); err == nil {
		t.Fatal("wrong speed count must fail")
	}
}

func TestBasicS2C2EqualSplit(t *testing.T) {
	// Figure 4c: (4,2) code, worker 3 a straggler, three equal workers.
	// Each live worker computes 2/3 of its partition; coverage exactly 2.
	b := &BasicS2C2{N: 4, K: 2, BlockRows: 9, Granularity: 3}
	p, err := b.Plan([]float64{1, 1, 1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if p.RowsFor(3) != 0 {
		t.Fatalf("straggler assigned %d rows, want 0", p.RowsFor(3))
	}
	for w := 0; w < 3; w++ {
		if p.RowsFor(w) != 6 {
			t.Fatalf("worker %d assigned %d rows, want 6 (= 9·k/s)", w, p.RowsFor(w))
		}
	}
	cov := p.Coverage()
	for r, c := range cov {
		if c != 2 {
			t.Fatalf("row %d covered %d times, want exactly 2", r, c)
		}
	}
}

func TestBasicS2C2FallsBackWhenTooManyStragglers(t *testing.T) {
	// 3 of 4 nodes classified as stragglers but k=2: basic S2C2 must
	// re-admit enough nodes to keep the computation decodable.
	b := &BasicS2C2{N: 4, K: 2, BlockRows: 8, Granularity: 4}
	p, err := b.Plan([]float64{1, 0.01, 0.01, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !p.CoverageAtLeast(2) {
		t.Fatal("coverage must still be k")
	}
}

func TestGeneralS2C2ProportionalAllocation(t *testing.T) {
	// Figure 5's numbers transposed to MDS: speeds {2,2,2,2,1}, k=4,
	// granularity 9 → allocations {8,8,8,8,4}.
	g := &GeneralS2C2{N: 5, K: 4, BlockRows: 9, Granularity: 9}
	p, err := g.Plan([]float64{2, 2, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{8, 8, 8, 8, 4}
	for w, rows := range want {
		if p.RowsFor(w) != rows {
			t.Fatalf("worker %d assigned %d rows, want %d", w, p.RowsFor(w), rows)
		}
	}
	for r, c := range p.Coverage() {
		if c != 4 {
			t.Fatalf("row %d covered %d times, want exactly 4", r, c)
		}
	}
}

func TestGeneralS2C2FastWorkerCapped(t *testing.T) {
	// One worker much faster than the rest: its allocation is capped at a
	// full partition and the excess spills to the next workers
	// (Algorithm 1's re-assignment clause).
	g := &GeneralS2C2{N: 4, K: 2, BlockRows: 12, Granularity: 12}
	p, err := g.Plan([]float64{100, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.RowsFor(0) != 12 {
		t.Fatalf("fast worker assigned %d rows, want full partition 12", p.RowsFor(0))
	}
	if !p.CoverageAtLeast(2) {
		t.Fatal("coverage violated after capping")
	}
	if p.TotalRows() != 24 {
		t.Fatalf("total rows %d want k·blockRows = 24", p.TotalRows())
	}
}

func TestGeneralS2C2ErrorsWhenInfeasible(t *testing.T) {
	g := &GeneralS2C2{N: 3, K: 2, BlockRows: 6, Granularity: 6}
	if _, err := g.Plan([]float64{1, 0, 0}); err == nil {
		t.Fatal("fewer than k positive-speed workers must fail")
	}
	if _, err := g.Plan([]float64{1, 1}); err == nil {
		t.Fatal("wrong speed count must fail")
	}
}

func TestAllocateChunksRejectsBadSpeeds(t *testing.T) {
	if _, err := AllocateChunks([]float64{-1, 1}, 1, 4); err == nil {
		t.Fatal("negative speed must fail")
	}
}

// The decodability invariant, property-tested: for random worker counts,
// codes, granularities and speeds, every row is covered exactly k times
// and no worker exceeds its partition.
func TestGeneralS2C2CoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		k := 1 + r.Intn(n)
		gran := n + r.Intn(4*n)
		blockRows := gran * (1 + r.Intn(5))
		speeds := make([]float64, n)
		positive := 0
		for i := range speeds {
			if r.Float64() < 0.2 {
				speeds[i] = 0 // dead node
			} else {
				speeds[i] = 0.1 + r.Float64()*5
				positive++
			}
		}
		g := &GeneralS2C2{N: n, K: k, BlockRows: blockRows, Granularity: gran}
		p, err := g.Plan(speeds)
		if positive < k {
			return err != nil // must refuse
		}
		if err != nil {
			return false
		}
		// Exactly k coverage everywhere.
		for _, c := range p.Coverage() {
			if c != k {
				return false
			}
		}
		// No worker exceeds its own partition and dead nodes get nothing.
		for w := 0; w < n; w++ {
			if p.RowsFor(w) > blockRows {
				return false
			}
			if speeds[w] == 0 && p.RowsFor(w) != 0 {
				return false
			}
		}
		return p.TotalRows() == k*blockRows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Faster workers never receive materially less work than slower ones.
// Integer rounding of chunk shares can invert near-equal speeds by at most
// one chunk, so the property allows that single-chunk slack.
func TestAllocationMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(10)
		k := 1 + r.Intn(n-1)
		m := 2 * n
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = 0.5 + r.Float64()*4
		}
		alloc, err := AllocateChunks(speeds, k, m)
		if err != nil {
			return false
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if speeds[a] > speeds[b] && alloc[a] < alloc[b]-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkRowBounds(t *testing.T) {
	// Bands must partition [0, blockRows).
	blockRows, m := 10, 4
	covered := make([]int, blockRows)
	for c := 0; c < m; c++ {
		r := ChunkRowBounds(c, blockRows, m)
		for i := r.Lo; i < r.Hi; i++ {
			covered[i]++
		}
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("row %d covered %d times by chunk bands", i, c)
		}
	}
}

func TestPlanAccounting(t *testing.T) {
	g := &GeneralS2C2{N: 4, K: 3, BlockRows: 12, Granularity: 12}
	p, err := g.Plan([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumWorkers() != 4 {
		t.Fatal("NumWorkers wrong")
	}
	if p.TotalRows() != 36 {
		t.Fatalf("TotalRows = %d want 36", p.TotalRows())
	}
	// Equal speeds: every worker gets exactly k/n of the work.
	for w := 0; w < 4; w++ {
		if p.RowsFor(w) != 9 {
			t.Fatalf("worker %d rows = %d want 9", w, p.RowsFor(w))
		}
	}
}
