package sched

import (
	"math/rand"
	"testing"
)

// The cyclic S2C2 layout's central invariant is that every partition row
// is covered by EXACTLY k workers — not merely at least k. At-least-k is
// what decoding needs; exactly-k is what Algorithm 1 promises (k·m chunk
// computations, no duplicated work). This property test hammers the
// layout with adversarial granularities: m not dividing BlockRows, m
// larger than BlockRows (capped internally), granularity 1, and worker
// populations with zero-speed members.
func TestCyclicLayoutCoversEveryRowExactlyK(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	check := func(t *testing.T, n, k, blockRows, gran int, speeds []float64) {
		t.Helper()
		g := &GeneralS2C2{N: n, K: k, BlockRows: blockRows, Granularity: gran}
		plan, err := g.Plan(speeds)
		if err != nil {
			t.Fatalf("n=%d k=%d rows=%d m=%d speeds=%v: %v", n, k, blockRows, gran, speeds, err)
		}
		for row, c := range plan.Coverage() {
			if c != k {
				t.Fatalf("n=%d k=%d rows=%d m=%d speeds=%v: row %d covered %d times, want exactly %d\nassignments: %v",
					n, k, blockRows, gran, speeds, row, c, k, plan.Assignments)
			}
		}
		// Each worker's assignment must stay within one partition.
		for w, ranges := range plan.Assignments {
			for _, r := range ranges {
				if r.Lo < 0 || r.Hi > blockRows || r.Lo >= r.Hi {
					t.Fatalf("worker %d has invalid range [%d,%d) in [0,%d)", w, r.Lo, r.Hi, blockRows)
				}
			}
		}
	}

	t.Run("adversarial-fixed", func(t *testing.T) {
		// Hand-picked corners: m ∤ BlockRows, m > BlockRows, m = 1, k = n,
		// a single-row partition, and zero-speed workers in every position.
		check(t, 4, 2, 30, 7, []float64{1, 1, 1, 1})           // 7 ∤ 30
		check(t, 4, 2, 5, 100, []float64{1, 1, 1, 1})          // m > BlockRows
		check(t, 4, 3, 12, 1, []float64{1, 1, 1, 1})           // single chunk
		check(t, 5, 5, 9, 13, []float64{1, 2, 3, 4, 5})        // k = n
		check(t, 3, 2, 1, 4, []float64{1, 1, 1})               // single-row partition
		check(t, 4, 2, 30, 8, []float64{0, 1, 1, 1})           // dead worker, head
		check(t, 4, 2, 30, 8, []float64{1, 1, 1, 0})           // dead worker, tail
		check(t, 6, 3, 50, 11, []float64{0, 0, 1, 1, 1, 0.01}) // two dead + crawler
	})

	t.Run("randomized", func(t *testing.T) {
		for trial := 0; trial < 500; trial++ {
			n := 2 + rng.Intn(12)
			k := 1 + rng.Intn(n)
			blockRows := 1 + rng.Intn(200)
			gran := 1 + rng.Intn(3*blockRows+2*n) // frequently ∤ BlockRows, often > BlockRows
			speeds := make([]float64, n)
			positive := 0
			for i := range speeds {
				switch rng.Intn(4) {
				case 0:
					speeds[i] = 0 // zero-speed straggler
				default:
					speeds[i] = 0.05 + rng.Float64()*4
					positive++
				}
			}
			if positive < k {
				// Not plannable by construction; the planner must say so.
				g := &GeneralS2C2{N: n, K: k, BlockRows: blockRows, Granularity: gran}
				if _, err := g.Plan(speeds); err == nil {
					t.Fatalf("trial %d: plan with %d positive speeds for k=%d should fail", trial, positive, k)
				}
				continue
			}
			check(t, n, k, blockRows, gran, speeds)
		}
	})
}
