package gf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coded-computing/s2c2/internal/kernel"
)

// TestAxpyMatchesScalarOps checks the mul-accumulate kernel against the
// definitional Add/Mul chain over random data, every unroll-tail length,
// and the field's edge values — on every kernel backend compiled into
// this binary (GF results must be exact everywhere, vector lanes
// included).
func TestAxpyMatchesScalarOps(t *testing.T) {
	prev := kernel.ActiveBackend()
	defer kernel.SetBackend(prev) //nolint:errcheck
	for _, backend := range kernel.Backends() {
		if err := kernel.SetBackend(backend); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		edge := []Elem{0, 1, 2, Elem(P - 1), Elem(P - 2), Elem(P / 2)}
		coeffs := append([]Elem{}, edge...)
		for i := 0; i < 10; i++ {
			coeffs = append(coeffs, New(rng.Uint64()))
		}
		for _, c := range coeffs {
			for n := 0; n <= 35; n++ { // covers empty, vector+scalar tails, full lanes
				dst := make([]Elem, n)
				src := make([]Elem, n)
				for i := range dst {
					if i < len(edge) {
						dst[i], src[i] = edge[i], edge[(i+1)%len(edge)]
					} else {
						dst[i], src[i] = New(rng.Uint64()), New(rng.Uint64())
					}
				}
				want := make([]Elem, n)
				for i := range want {
					want[i] = Add(dst[i], Mul(c, src[i]))
				}
				Axpy(dst, c, src)
				for i := range want {
					if dst[i] != want[i] {
						t.Fatalf("backend=%s c=%d n=%d i=%d: Axpy %d != scalar %d",
							backend, c, n, i, dst[i], want[i])
					}
				}
			}
		}
	}
}

// naiveMulVec is the definitional y = M·x: per-element Mul and Add, the
// pre-folding implementation the optimized reduction must agree with.
func naiveMulVec(m *Matrix, x []Elem) []Elem {
	y := make([]Elem, m.rows)
	for i := 0; i < m.rows; i++ {
		var acc Elem
		for j, v := range m.Row(i) {
			acc = Add(acc, Mul(v, x[j]))
		}
		y[i] = acc
	}
	return y
}

// TestMulVecIntoExhaustiveSmall enumerates every assignment of boundary
// values (0, 1, 2, P−2, P−1) to tiny matrix/vector shapes, so the folded
// reduction's carry and subtract edges are all exercised.
func TestMulVecIntoExhaustiveSmall(t *testing.T) {
	bound := []Elem{0, 1, 2, Elem(P - 2), Elem(P - 1)}
	for _, dims := range [][2]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}, {1, 3}} {
		rows, cols := dims[0], dims[1]
		cells := rows*cols + cols // matrix entries plus vector entries
		total := 1
		for i := 0; i < cells; i++ {
			total *= len(bound)
		}
		m := NewMatrix(rows, cols)
		x := make([]Elem, cols)
		y := make([]Elem, rows)
		for idx := 0; idx < total; idx++ {
			v := idx
			for i := 0; i < rows*cols; i++ {
				m.data[i] = bound[v%len(bound)]
				v /= len(bound)
			}
			for i := 0; i < cols; i++ {
				x[i] = bound[v%len(bound)]
				v /= len(bound)
			}
			m.MulVecInto(y, x)
			want := naiveMulVec(m, x)
			for i := range want {
				if y[i] != want[i] {
					t.Fatalf("%dx%d case %d row %d: folded %d != naive %d",
						rows, cols, idx, i, y[i], want[i])
				}
			}
		}
	}
}

// TestMulVecIntoMatchesNaive covers longer rows (accumulator stays folded
// across many worst-case products) and random shapes.
func TestMulVecIntoMatchesNaive(t *testing.T) {
	// Worst-case accumulation: every operand P−1, row long enough that an
	// unfolded accumulator would overflow many times over.
	m := NewMatrix(1, 4097)
	x := make([]Elem, 4097)
	for i := range x {
		m.data[i] = Elem(P - 1)
		x[i] = Elem(P - 1)
	}
	y := make([]Elem, 1)
	m.MulVecInto(y, x)
	if want := naiveMulVec(m, x); y[0] != want[0] {
		t.Fatalf("worst-case row: folded %d != naive %d", y[0], want[0])
	}

	rng := rand.New(rand.NewSource(21))
	for _, cols := range []int{3, 4, 5, 7, 8, 9, 16, 17, 33, 100} {
		rows := 1 + rng.Intn(6)
		m := NewMatrix(rows, cols)
		for i := range m.data {
			m.data[i] = New(rng.Uint64())
		}
		x := make([]Elem, cols)
		for i := range x {
			x[i] = New(rng.Uint64())
		}
		y := make([]Elem, rows)
		m.MulVecInto(y, x)
		want := naiveMulVec(m, x)
		for i := range want {
			if y[i] != want[i] {
				t.Fatalf("%dx%d row %d: folded %d != naive %d", rows, cols, i, y[i], want[i])
			}
		}
	}
}

func TestAxpyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Axpy with mismatched lengths must panic")
		}
	}()
	Axpy(make([]Elem, 3), 1, make([]Elem, 4))
}

func BenchmarkAxpy(b *testing.B) {
	dst := make([]Elem, 4096)
	src := make([]Elem, 4096)
	for i := range src {
		src[i] = New(uint64(i) * 2654435761)
	}
	b.SetBytes(4096 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Axpy(dst, 123456789, src)
	}
}

func BenchmarkAxpyScalarReference(b *testing.B) {
	dst := make([]Elem, 4096)
	src := make([]Elem, 4096)
	for i := range src {
		src[i] = New(uint64(i) * 2654435761)
	}
	b.SetBytes(4096 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dst {
			dst[j] = Add(dst[j], Mul(123456789, src[j]))
		}
	}
}

// TestMulVecRangeIntoMatchesFull checks the ranged mat-vec (the worker
// kernel of the exact distributed round) against the full MulVec on
// random matrices and every [lo, hi) window.
func TestMulVecRangeIntoMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(9)
		m := NewMatrix(rows, cols)
		for i := range m.data {
			m.data[i] = New(rng.Uint64())
		}
		x := make([]Elem, cols)
		for i := range x {
			x[i] = New(rng.Uint64())
		}
		full := m.MulVec(x)
		for lo := 0; lo <= rows; lo++ {
			for hi := lo; hi <= rows; hi++ {
				got := make([]Elem, hi-lo)
				m.MulVecRangeInto(got, x, lo, hi)
				for i := range got {
					if got[i] != full[lo+i] {
						t.Fatalf("rows [%d,%d) index %d: %d != full %d", lo, hi, i, got[i], full[lo+i])
					}
				}
			}
		}
	}
}

// TestUint32Views checks the zero-copy reinterpret bridges: the uint32
// view aliases the element storage both ways, and Valid flags exactly
// the non-canonical lanes.
func TestUint32Views(t *testing.T) {
	es := []Elem{0, 1, Elem(P - 1)}
	u := AsUint32s(es)
	if len(u) != len(es) {
		t.Fatalf("length %d != %d", len(u), len(es))
	}
	u[1] = 99
	if es[1] != 99 {
		t.Fatal("AsUint32s does not alias the element storage")
	}
	back := AsElems(u)
	back[2] = 7
	if es[2] != 7 {
		t.Fatal("AsElems does not alias the lane storage")
	}
	if AsUint32s(nil) != nil || AsElems(nil) != nil {
		t.Fatal("empty views must be nil")
	}
	if !Valid(es) {
		t.Fatalf("canonical elements flagged invalid: %v", es)
	}
	if Valid([]Elem{0, Elem(P)}) {
		t.Fatal("P itself must be non-canonical")
	}
	if Valid([]Elem{Elem(^uint32(0))}) {
		t.Fatal("max uint32 must be non-canonical")
	}
}

// TestNewMatrixFromDataAdoptsStorage pins the no-copy contract.
func TestNewMatrixFromDataAdoptsStorage(t *testing.T) {
	data := []Elem{1, 2, 3, 4, 5, 6}
	m := NewMatrixFromData(2, 3, data)
	data[4] = 42
	if m.At(1, 1) != 42 {
		t.Fatal("NewMatrixFromData copied instead of adopting")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	NewMatrixFromData(2, 2, data)
}

func TestFieldAxiomsSpot(t *testing.T) {
	a, b := Elem(P-1), Elem(5)
	if Add(a, b) != Elem(4) {
		t.Fatalf("Add wraparound: %d", Add(a, b))
	}
	if Sub(Elem(3), Elem(5)) != Elem(P-2) {
		t.Fatalf("Sub wraparound: %d", Sub(Elem(3), Elem(5)))
	}
	if Neg(0) != 0 {
		t.Fatal("Neg(0) != 0")
	}
	if Add(Elem(7), Neg(Elem(7))) != 0 {
		t.Fatal("a + (-a) != 0")
	}
}

func TestNewReduction(t *testing.T) {
	if New(P) != 0 || New(P+3) != 3 {
		t.Fatal("New does not reduce mod P")
	}
	if NewInt(-1) != Elem(P-1) {
		t.Fatalf("NewInt(-1) = %d", NewInt(-1))
	}
}

func TestInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(raw uint64) bool {
		a := New(raw)
		if a == 0 {
			a = 1
		}
		return Mul(a, Inv(a)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(x, y, z uint64) bool {
		a, b, c := New(x), New(y), New(z)
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestPow(t *testing.T) {
	if Pow(2, 10) != 1024 {
		t.Fatalf("2^10 = %d", Pow(2, 10))
	}
	if Pow(5, 0) != 1 {
		t.Fatal("a^0 != 1")
	}
	// Fermat's little theorem: a^(P-1) == 1 for a != 0.
	if Pow(1234567, P-1) != 1 {
		t.Fatal("Fermat violated")
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) must panic")
		}
	}()
	Inv(0)
}

func TestSolveRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		// Vandermonde systems with distinct nodes are always nonsingular.
		xs := distinctElems(n, r)
		m := Vandermonde(xs, n)
		want := make([]Elem, n)
		for i := range want {
			want[i] = New(r.Uint64())
		}
		b := m.MulVec(want)
		got, ok := Solve(m, b)
		if !ok {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, ok := Solve(m, []Elem{1, 2}); ok {
		t.Fatal("expected singular")
	}
}

func TestInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := distinctElems(5, rng)
	m := Vandermonde(xs, 5)
	inv, ok := Invert(m)
	if !ok {
		t.Fatal("Vandermonde must be invertible")
	}
	// M · M⁻¹ == I, checked via action on random vectors.
	for trial := 0; trial < 5; trial++ {
		x := make([]Elem, 5)
		for i := range x {
			x[i] = New(rng.Uint64())
		}
		y := inv.MulVec(m.MulVec(x))
		for i := range x {
			if y[i] != x[i] {
				t.Fatalf("M⁻¹Mx != x at %d", i)
			}
		}
	}
}

func TestVandermondeAnyRowsInvertible(t *testing.T) {
	// The defining MDS property: every square submatrix formed by choosing
	// k rows of an n-row Vandermonde with distinct nodes is invertible.
	rng := rand.New(rand.NewSource(5))
	n, k := 8, 4
	xs := distinctElems(n, rng)
	v := Vandermonde(xs, k)
	for trial := 0; trial < 50; trial++ {
		rows := rng.Perm(n)[:k]
		sub := NewMatrix(k, k)
		for i, r := range rows {
			copy(sub.Row(i), v.Row(r))
		}
		if _, ok := Invert(sub); !ok {
			t.Fatalf("rows %v gave singular submatrix", rows)
		}
	}
}

// TestMulRangeIntoMatchesNaive checks the mat-mul kernel against the
// definitional per-element Mul/Add chain over shapes straddling the
// vector lane widths, on every kernel backend — plus band splits, which
// must produce identical values (the dst is band-relative).
func TestMulRangeIntoMatchesNaive(t *testing.T) {
	prev := kernel.ActiveBackend()
	defer kernel.SetBackend(prev) //nolint:errcheck
	rng := rand.New(rand.NewSource(8))
	shapes := [][3]int{{1, 1, 1}, {3, 2, 5}, {4, 4, 7}, {7, 5, 8}, {8, 8, 9}, {5, 12, 33}, {12, 12, 100}}
	for _, s := range shapes {
		r, k, c := s[0], s[1], s[2]
		m := NewMatrix(r, k)
		b := NewMatrix(k, c)
		fill := func(mat *Matrix) {
			d := mat.Data()
			for i := range d {
				switch i % 5 {
				case 0:
					d[i] = Elem(P - 1)
				case 1:
					d[i] = 0
				default:
					d[i] = New(rng.Uint64())
				}
			}
		}
		fill(m)
		fill(b)
		want := make([]Elem, r*c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				var acc Elem
				for tt := 0; tt < k; tt++ {
					acc = Add(acc, Mul(m.At(i, tt), b.At(tt, j)))
				}
				want[i*c+j] = acc
			}
		}
		for _, backend := range kernel.Backends() {
			if err := kernel.SetBackend(backend); err != nil {
				t.Fatal(err)
			}
			got := make([]Elem, r*c)
			m.MulRangeInto(got, b, 0, r)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("backend=%s %dx%d·%dx%d i=%d: %d want %d", backend, r, k, k, c, i, got[i], want[i])
				}
			}
			if r > 2 {
				band := make([]Elem, (r-2)*c)
				m.MulRangeInto(band, b, 1, r-1)
				for i := range band {
					if band[i] != want[c+i] {
						t.Fatalf("backend=%s %dx%d·%dx%d: band value %d want %d", backend, r, k, k, c, band[i], want[c+i])
					}
				}
			}
		}
	}
}

// TestInvertMatchesEntrywise pins the augmented-elimination Invert to the
// defining identities M·M⁻¹ = M⁻¹·M = I, entry by entry via MulRangeInto.
func TestInvertMatchesEntrywise(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 5, 8, 12} {
		m := Vandermonde(distinctElems(n, rng), n)
		inv, ok := Invert(m)
		if !ok {
			t.Fatalf("n=%d: Vandermonde must be invertible", n)
		}
		check := func(a, b *Matrix, name string) {
			prod := make([]Elem, n*n)
			a.MulRangeInto(prod, b, 0, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					want := Elem(0)
					if i == j {
						want = 1
					}
					if prod[i*n+j] != want {
						t.Fatalf("n=%d %s[%d,%d] = %d want %d", n, name, i, j, prod[i*n+j], want)
					}
				}
			}
		}
		check(m, inv, "M·M⁻¹")
		check(inv, m, "M⁻¹·M")
	}
}

func TestInvertSingular(t *testing.T) {
	m := NewMatrix(3, 3)
	// Row 2 = row 0 + row 1.
	vals := [][]Elem{{1, 2, 3}, {4, 5, 6}, {5, 7, 9}}
	for i, row := range vals {
		copy(m.Row(i), row)
	}
	if _, ok := Invert(m); ok {
		t.Fatal("expected singular")
	}
	// The pivot search must survive needing a row swap: leading zero block.
	sw := NewMatrix(2, 2)
	sw.Set(0, 1, 3)
	sw.Set(1, 0, 5)
	inv, ok := Invert(sw)
	if !ok {
		t.Fatal("antidiagonal matrix must be invertible")
	}
	if got := Mul(inv.At(0, 1), 5); got != 1 {
		t.Fatalf("inv[0,1]·5 = %d want 1", got)
	}
}

func distinctElems(n int, rng *rand.Rand) []Elem {
	seen := map[Elem]bool{}
	out := make([]Elem, 0, n)
	for len(out) < n {
		e := New(rng.Uint64())
		if e == 0 || seen[e] {
			continue
		}
		seen[e] = true
		out = append(out, e)
	}
	return out
}
