// Package gf implements arithmetic over the prime field GF(p) with
// p = 2³¹ − 1 (the Mersenne prime 2147483647), plus the dense linear
// solvers the exact MDS codec needs.
//
// The float64 MDS codec in internal/coding is subject to rounding; this
// field gives a bit-exact backend so the "any k of n" MDS property can be
// property-tested without numerical tolerances, and offers an exact coding
// path for integer payloads.
package gf

import (
	"fmt"
	"unsafe"

	"github.com/coded-computing/s2c2/internal/kernel"
)

// P is the field modulus, the Mersenne prime 2³¹−1.
const P uint64 = 1<<31 - 1

// Elem is a field element in [0, P).
type Elem uint32

// New reduces an arbitrary uint64 into the field.
func New(v uint64) Elem { return Elem(v % P) }

// NewInt reduces a signed integer into the field.
func NewInt(v int64) Elem {
	m := v % int64(P)
	if m < 0 {
		m += int64(P)
	}
	return Elem(m)
}

// Add returns a+b mod P.
func Add(a, b Elem) Elem {
	s := uint64(a) + uint64(b)
	if s >= P {
		s -= P
	}
	return Elem(s)
}

// Sub returns a−b mod P.
func Sub(a, b Elem) Elem {
	if a >= b {
		return a - b
	}
	return Elem(uint64(a) + P - uint64(b))
}

// Neg returns −a mod P.
func Neg(a Elem) Elem {
	if a == 0 {
		return 0
	}
	return Elem(P - uint64(a))
}

// Mul returns a·b mod P using 64-bit intermediate arithmetic.
func Mul(a, b Elem) Elem {
	return Elem(uint64(a) * uint64(b) % P)
}

// Pow returns a^e mod P by square-and-multiply.
func Pow(a Elem, e uint64) Elem {
	result := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns the multiplicative inverse of a. It panics on zero, which is
// a programming error everywhere this package is used.
func Inv(a Elem) Elem {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	// Fermat: a^(P-2) mod P.
	return Pow(a, P-2)
}

// Div returns a/b mod P.
func Div(a, b Elem) Elem { return Mul(a, Inv(b)) }

// asU32 reinterprets a slice of field elements as raw uint32 lanes for the
// kernel layer (Elem is defined as uint32, so the layouts are identical).
func asU32(s []Elem) []uint32 {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&s[0])), len(s))
}

// AsUint32s reinterprets field elements as raw uint32 lanes without
// copying — the wire layer ships GF payloads as count-prefixed uint32s and
// this is the zero-copy bridge to it. The returned slice aliases s.
func AsUint32s(s []Elem) []uint32 { return asU32(s) }

// AsElems is the inverse view of AsUint32s: raw uint32 lanes seen as field
// elements, aliasing s. Values are NOT reduced mod P — callers that accept
// untrusted lanes must validate with Valid before using them in field
// arithmetic whose invariants assume canonical elements.
func AsElems(s []uint32) []Elem {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*Elem)(unsafe.Pointer(&s[0])), len(s))
}

// Valid reports whether every lane is a canonical field element in [0, P).
func Valid(s []Elem) bool {
	for _, v := range s {
		if uint64(v) >= P {
			return false
		}
	}
	return true
}

// Axpy computes dst[i] ← dst[i] + c·src[i] over the field — the
// mul-accumulate kernel of the coding layer's GF paths (MDS/Lagrange
// encode mixing, decode back-substitution). It dispatches through
// kernel.GFAxpyMod31: branch-light Mersenne folding instead of hardware
// divides on the portable backend, 4-lane folded vectors on the AVX2
// backend. Results are exactly the field operations' on every backend
// (this is modular arithmetic, not floating point).
//
//s2c2:noalloc
func Axpy(dst []Elem, c Elem, src []Elem) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("gf: Axpy length %d want %d", len(src), len(dst)))
	}
	if c == 0 {
		return
	}
	kernel.GFAxpyMod31(asU32(dst), uint32(c), asU32(src))
}

// Matrix is a dense matrix over GF(P) in row-major order.
type Matrix struct {
	rows, cols int
	data       []Elem
}

// NewMatrix returns a zeroed r-by-c field matrix.
//
//s2c2:noalloc-waive
func NewMatrix(r, c int) *Matrix {
	return &Matrix{rows: r, cols: c, data: make([]Elem, r*c)}
}

// NewMatrixFromData adopts data (row-major, length r·c) as the backing
// storage of an r-by-c matrix without copying.
func NewMatrixFromData(r, c int, data []Elem) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("gf: NewMatrixFromData %dx%d with %d elements", r, c, len(data)))
	}
	return &Matrix{rows: r, cols: c, data: data}
}

// Reshape repoints m at data as an r-by-c row-major matrix without
// copying or allocating — for workspaces that rebuild a matrix view over
// reused scratch every round. The previous backing storage is released.
//
//s2c2:noalloc
func (m *Matrix) Reshape(r, c int, data []Elem) {
	if len(data) != r*c {
		panic(fmt.Sprintf("gf: Reshape %dx%d with %d elements", r, c, len(data)))
	}
	m.rows, m.cols, m.data = r, c, data
}

// Dims reports the shape.
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// At returns entry (i, j).
func (m *Matrix) At(i, j int) Elem { return m.data[i*m.cols+j] }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v Elem) { m.data[i*m.cols+j] = v }

// Row returns row i, aliasing the backing storage.
func (m *Matrix) Row(i int) []Elem { return m.data[i*m.cols : (i+1)*m.cols] }

// Data returns the row-major backing storage, aliasing the matrix.
func (m *Matrix) Data() []Elem { return m.data }

// Clone deep-copies the matrix.
//
//s2c2:noalloc-waive
func (m *Matrix) Clone() *Matrix {
	d := make([]Elem, len(m.data))
	copy(d, m.data)
	return &Matrix{rows: m.rows, cols: m.cols, data: d}
}

// MulVec computes y = M·x over the field.
func (m *Matrix) MulVec(x []Elem) []Elem {
	y := make([]Elem, m.rows)
	m.MulVecInto(y, x)
	return y
}

// MulVecInto computes y = M·x over the field into the provided slice
// (length M.rows). It performs no allocation.
//
// The row reduction uses the same Mersenne folding as Axpy instead of
// per-element hardware divides: each 62-bit product is added to the
// accumulator and folded once via x ≡ (x >> 31) + (x & P) (mod P), which
// keeps the accumulator under 2³³ so the next product cannot overflow; a
// final fold plus one conditional subtract lands in [0, P).
//
//s2c2:noalloc
func (m *Matrix) MulVecInto(y, x []Elem) {
	if len(y) != m.rows {
		panic(fmt.Sprintf("gf: MulVec dst length %d want %d", len(y), m.rows))
	}
	m.MulVecRangeInto(y, x, 0, m.rows)
}

// MulVecRangeInto computes rows [lo, hi) of M·x into y (length hi−lo) —
// the worker-side kernel of the exact distributed round path, where a
// round assigns each worker a row range of its coded partition. It
// dispatches through kernel.GFMatVecMod31: the Mersenne accumulate-fold
// recurrence on the portable backend, folded 64-bit VPMULUDQ lanes on the
// AVX2 backend, with bit-exact results on every backend.
//
//s2c2:noalloc
func (m *Matrix) MulVecRangeInto(y, x []Elem, lo, hi int) {
	if len(x) != m.cols {
		panic(fmt.Sprintf("gf: MulVec length %d want %d", len(x), m.cols))
	}
	if lo < 0 || hi > m.rows || lo > hi {
		panic(fmt.Sprintf("gf: MulVecRange rows [%d,%d) outside [0,%d)", lo, hi, m.rows))
	}
	if len(y) != hi-lo {
		panic(fmt.Sprintf("gf: MulVecRange dst length %d want %d", len(y), hi-lo))
	}
	kernel.GFMatVecMod31(asU32(y), asU32(m.data), m.cols, asU32(x), lo, hi)
}

// MulVecBatchRangeInto computes rows [lo, hi) of M·[x_0 … x_{w-1}] for w
// x-vectors concatenated in xs (x_l at xs[l*cols : (l+1)*cols]) into y,
// row-major w-wide (y[(i-lo)*w+l] = (M·x_l)[i]): one sweep of the matrix
// serving all w vectors. Results are bit-exact equal to w MulVecRangeInto
// calls on every backend.
//
//s2c2:noalloc
func (m *Matrix) MulVecBatchRangeInto(y, xs []Elem, w, lo, hi int) {
	if w < 1 {
		panic(fmt.Sprintf("gf: MulVecBatchRange width %d", w))
	}
	if len(xs) != w*m.cols {
		panic(fmt.Sprintf("gf: MulVecBatchRange xs length %d want %d", len(xs), w*m.cols))
	}
	if lo < 0 || hi > m.rows || lo > hi {
		panic(fmt.Sprintf("gf: MulVecBatchRange rows [%d,%d) outside [0,%d)", lo, hi, m.rows))
	}
	if len(y) != (hi-lo)*w {
		panic(fmt.Sprintf("gf: MulVecBatchRange dst length %d want %d", len(y), (hi-lo)*w))
	}
	kernel.GFMatVecBatchMod31(asU32(y), asU32(m.data), m.cols, asU32(xs), w, lo, hi)
}

// MulRangeInto computes rows [lo, hi) of the matrix product M·B into y
// (band-relative row-major, length (hi−lo)·B.cols) — the decode-solve
// kernel of the exact path, where one cached k×k inverse is applied to a
// k-row right-hand-side block covering many lanes at once. It dispatches
// through kernel.GFMatMulAccMod31: an axpy sweep per row on the portable
// backends, a fused in-register k sweep per 8-column block on the AVX-512
// backend. Results are exactly the field values on every backend.
//
//s2c2:noalloc
func (m *Matrix) MulRangeInto(y []Elem, b *Matrix, lo, hi int) {
	if m.cols != b.rows {
		panic(fmt.Sprintf("gf: MulRange %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	if lo < 0 || hi > m.rows || lo > hi {
		panic(fmt.Sprintf("gf: MulRange rows [%d,%d) outside [0,%d)", lo, hi, m.rows))
	}
	if len(y) != (hi-lo)*b.cols {
		panic(fmt.Sprintf("gf: MulRange dst length %d want %d", len(y), (hi-lo)*b.cols))
	}
	clear(y)
	kernel.GFMatMulAccMod31(asU32(y), asU32(m.data), m.cols, asU32(b.data), b.cols, lo, hi)
}

// Vandermonde returns the r-by-c matrix V[i][j] = xs[i]^j. The xs must be
// distinct and r == len(xs); any c rows of the matrix are then linearly
// independent, which is the MDS generator property.
func Vandermonde(xs []Elem, c int) *Matrix {
	m := NewMatrix(len(xs), c)
	for i, x := range xs {
		v := Elem(1)
		for j := 0; j < c; j++ {
			m.Set(i, j, v)
			v = Mul(v, x)
		}
	}
	return m
}

// Solve solves the square system M·x = b by Gauss–Jordan elimination,
// destroying a copy of M. It returns false if M is singular.
//
//s2c2:noalloc-waive
func Solve(m *Matrix, b []Elem) ([]Elem, bool) {
	if m.rows != m.cols || len(b) != m.rows {
		panic("gf: Solve shape mismatch")
	}
	n := m.rows
	a := m.Clone()
	x := make([]Elem, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Find a nonzero pivot.
		p := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				p = r
				break
			}
		}
		if p < 0 {
			return nil, false
		}
		if p != col {
			rp, rc := a.Row(p), a.Row(col)
			for j := 0; j < n; j++ {
				rp[j], rc[j] = rc[j], rp[j]
			}
			x[p], x[col] = x[col], x[p]
		}
		inv := Inv(a.At(col, col))
		rowc := a.Row(col)
		for j := col; j < n; j++ {
			rowc[j] = Mul(rowc[j], inv)
		}
		x[col] = Mul(x[col], inv)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			// rr += (P−f)·rowc ≡ rr − f·rowc: the elimination update is an
			// axpy with the negated factor, so it rides the vectorized
			// field kernel instead of a scalar Sub/Mul loop.
			Axpy(a.Row(r)[col:], Neg(f), rowc[col:])
			x[r] = Sub(x[r], Mul(f, x[col]))
		}
	}
	return x, true
}

// Invert returns M⁻¹, or false if M is singular. One Gauss–Jordan
// elimination of the augmented matrix [M | I] — O(n³), with the
// elimination updates running through the vectorized Axpy kernel —
// rather than n independent Solve calls (O(n⁴)).
//
//s2c2:noalloc-waive
func Invert(m *Matrix) (*Matrix, bool) {
	if m.rows != m.cols {
		panic("gf: Invert non-square")
	}
	n := m.rows
	aug := NewMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:n], m.Row(i))
		aug.Set(i, n+i, 1)
	}
	for col := 0; col < n; col++ {
		p := -1
		for r := col; r < n; r++ {
			if aug.At(r, col) != 0 {
				p = r
				break
			}
		}
		if p < 0 {
			return nil, false
		}
		if p != col {
			// Rows at or below col are zero left of col, so swapping from
			// col covers every nonzero entry (including the right half).
			rp, rc := aug.Row(p), aug.Row(col)
			for j := col; j < 2*n; j++ {
				rp[j], rc[j] = rc[j], rp[j]
			}
		}
		inv := Inv(aug.At(col, col))
		rowc := aug.Row(col)
		for j := col; j < 2*n; j++ {
			rowc[j] = Mul(rowc[j], inv)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := aug.At(r, col)
			if f == 0 {
				continue
			}
			Axpy(aug.Row(r)[col:], Neg(f), rowc[col:])
		}
	}
	out := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(out.Row(i), aug.Row(i)[n:])
	}
	return out, true
}
