package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PartitionErr enforces the failure-attribution contract of the
// distribute/stream paths.
//
// Rule 1 — attribution: inside a function annotated
// //s2c2:partition-attrib, a returned error must carry attribution. A
// fresh, unwrapped error — errors.New(...), or fmt.Errorf whose format
// has no %w verb — erases which worker/partition failed, which is
// exactly what PartitionError exists to preserve. Wrapping constructs
// (fmt.Errorf with %w, errors.Join, &PartitionError{...}, or
// propagating an existing error value) all pass.
//
// Rule 2 — context plumbing: a function that takes a context.Context
// must not call anything with context.Background() or context.TODO() as
// an argument. Minting a fresh root context below an entry point detaches
// the call from the caller's deadline and cancellation; the straggler
// cutoff stops propagating. Root entry points without a ctx parameter
// (RunRound) are free to mint one.
var PartitionErr = &Analyzer{
	Name: "partitionerr",
	Doc:  "distribute/stream errors must stay attributed; ctx must be propagated, not re-minted",
	Run:  runPartitionErr,
}

func runPartitionErr(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if funcAnnotated(fn, "partition-attrib") {
				checkAttribution(pass, fn)
			}
			checkCtxPropagation(pass, fn)
		}
	}
}

// checkAttribution flags fresh unattributed errors returned from a
// //s2c2:partition-attrib function.
func checkAttribution(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !isErrorType(info.Types[res].Type) {
				continue
			}
			if msg := freshUnattributedError(info, res); msg != "" {
				pass.Reportf(res.Pos(), "%s returns an unattributed error (%s); wrap the failing partition via %%w or *PartitionError", fn.Name.Name, msg)
			}
		}
		return true
	})
}

// freshUnattributedError reports (as a non-empty description) whether e
// mints a brand-new error that wraps nothing: errors.New, or fmt.Errorf
// with no %w verb. Everything else — propagated values, errors.Join,
// wrapping Errorf, custom error structs — is considered attributed.
func freshUnattributedError(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	callee := staticCallee(info, call)
	if callee == nil || callee.Pkg() == nil {
		return ""
	}
	switch {
	case callee.Pkg().Path() == "errors" && callee.Name() == "New":
		return "errors.New"
	case callee.Pkg().Path() == "fmt" && callee.Name() == "Errorf":
		if len(call.Args) == 0 {
			return ""
		}
		format, ok := stringLiteral(info, call.Args[0])
		if !ok {
			return "" // dynamic format string: give it the benefit of the doubt
		}
		if !strings.Contains(format, "%w") {
			return "fmt.Errorf without %w"
		}
	}
	return ""
}

// stringLiteral resolves e to its compile-time string value, if it has one.
func stringLiteral(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return "", false
	}
	if s := tv.Value.ExactString(); len(s) >= 2 && s[0] == '"' {
		return s, true // quoted constant string; %w survives quoting untouched
	}
	return "", false
}

// checkCtxPropagation flags context.Background()/context.TODO() used as
// call arguments inside a function that already has a ctx parameter.
func checkCtxPropagation(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	if !hasCtxParam(info, fn) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n, ok := n.(*ast.FuncLit); ok {
			_ = n
			return false // a closure may legitimately be a new root (goroutine body)
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			callee := staticCallee(info, inner)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
				continue
			}
			if callee.Name() == "Background" || callee.Name() == "TODO" {
				pass.Reportf(arg.Pos(), "%s has a context parameter but passes context.%s(); propagate the caller's ctx", fn.Name.Name, callee.Name())
			}
		}
		return true
	})
}

// hasCtxParam reports whether fn declares a context.Context parameter.
func hasCtxParam(info *types.Info, fn *ast.FuncDecl) bool {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	params := obj.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if named, ok := types.Unalias(params.At(i).Type()).(*types.Named); ok {
			o := named.Obj()
			if o.Pkg() != nil && o.Pkg().Path() == "context" && o.Name() == "Context" {
				return true
			}
		}
	}
	return false
}
