package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PartitionErr enforces the failure-attribution contract of the
// distribute/stream paths.
//
// Rule 1 — attribution: inside a function annotated
// //s2c2:partition-attrib, a returned error must carry attribution. A
// fresh, unwrapped error — errors.New(...), or fmt.Errorf whose format
// has no %w verb — erases which worker/partition failed, which is
// exactly what PartitionError exists to preserve. Wrapping constructs
// (fmt.Errorf with %w, errors.Join, &PartitionError{...}, or
// propagating an existing error value) all pass.
//
// Rule 2 — context plumbing: a function that takes a context.Context
// must not call anything with context.Background() or context.TODO() as
// an argument. Minting a fresh root context below an entry point detaches
// the call from the caller's deadline and cancellation; the straggler
// cutoff stops propagating. Root entry points without a ctx parameter
// (RunRound) are free to mint one.
//
// Rule 3 — retry loops must not swallow the loop's error: inside a
// //s2c2:partition-attrib function, an error variable declared outside a
// for-loop and assigned within it is the retry path's attribution
// carrier (`var last error; for ... { last = ship(...) }`). If nothing
// ever consults it once the loop is done — no read after the loop, no
// return of it from inside the loop, no bare return naming it as a
// result — then backoff exhaustion discards the last attempt's
// *PartitionError and the caller learns nothing about which worker
// failed. The loop must return the variable, wrap it (%w), or join it
// into the exhaustion error.
var PartitionErr = &Analyzer{
	Name: "partitionerr",
	Doc:  "distribute/stream errors must stay attributed; ctx must be propagated, not re-minted",
	Run:  runPartitionErr,
}

func runPartitionErr(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if funcAnnotated(fn, "partition-attrib") {
				checkAttribution(pass, fn)
				checkRetrySwallow(pass, fn)
			}
			checkCtxPropagation(pass, fn)
		}
	}
}

// checkAttribution flags fresh unattributed errors returned from a
// //s2c2:partition-attrib function.
func checkAttribution(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !isErrorType(info.Types[res].Type) {
				continue
			}
			if msg := freshUnattributedError(info, res); msg != "" {
				pass.Reportf(res.Pos(), "%s returns an unattributed error (%s); wrap the failing partition via %%w or *PartitionError", fn.Name.Name, msg)
			}
		}
		return true
	})
}

// checkRetrySwallow flags error variables that a loop assigns but the
// function then abandons (rule 3).
func checkRetrySwallow(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		for obj, firstAssign := range loopErrorCarriers(info, n.Pos(), body) {
			if !errorCarrierConsulted(info, fn, obj, body) {
				pass.Reportf(firstAssign, "retry loop assigns %s but nothing consults it after the loop; return, wrap (%%w), or join it so exhaustion keeps the last attempt's attribution", obj.Name())
			}
		}
		return true
	})
}

// loopErrorCarriers collects error-typed variables declared before the
// loop (position-wise) and plain-assigned inside its body, keyed to the
// first assignment's position. Loop-local `err :=` declarations are the
// per-iteration early-return idiom and are not carriers.
func loopErrorCarriers(info *types.Info, loopPos token.Pos, body *ast.BlockStmt) map[types.Object]token.Pos {
	var carriers map[types.Object]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || asg.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range asg.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil || obj.Pos() >= loopPos || !isErrorType(obj.Type()) {
				continue
			}
			if _, seen := carriers[obj]; !seen {
				if carriers == nil {
					carriers = make(map[types.Object]token.Pos)
				}
				carriers[obj] = id.Pos()
			}
		}
		return true
	})
	return carriers
}

// errorCarrierConsulted reports whether the loop-assigned error obj is
// preserved: read anywhere after the loop ends, referenced inside a
// return statement within the loop, or implicitly returned by a bare
// return when obj is a named result of fn.
func errorCarrierConsulted(info *types.Info, fn *ast.FuncDecl, obj types.Object, body *ast.BlockStmt) bool {
	consulted := false
	bareReturnMatters := isNamedResult(info, fn, obj)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if consulted {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if info.Uses[n] == obj && n.Pos() > body.End() {
				consulted = true
			}
		case *ast.ReturnStmt:
			if len(n.Results) == 0 && bareReturnMatters {
				consulted = true
				return false
			}
			// A return inside the loop that mentions the carrier (return
			// err, return fmt.Errorf("...: %w", err)) preserves it.
			if n.Pos() > body.Pos() && n.End() < body.End() {
				for _, res := range n.Results {
					ast.Inspect(res, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
							consulted = true
						}
						return !consulted
					})
				}
			}
		}
		return !consulted
	})
	return consulted
}

// isNamedResult reports whether obj is one of fn's named result
// parameters.
func isNamedResult(info *types.Info, fn *ast.FuncDecl, obj types.Object) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}

// freshUnattributedError reports (as a non-empty description) whether e
// mints a brand-new error that wraps nothing: errors.New, or fmt.Errorf
// with no %w verb. Everything else — propagated values, errors.Join,
// wrapping Errorf, custom error structs — is considered attributed.
func freshUnattributedError(info *types.Info, e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return ""
	}
	callee := staticCallee(info, call)
	if callee == nil || callee.Pkg() == nil {
		return ""
	}
	switch {
	case callee.Pkg().Path() == "errors" && callee.Name() == "New":
		return "errors.New"
	case callee.Pkg().Path() == "fmt" && callee.Name() == "Errorf":
		if len(call.Args) == 0 {
			return ""
		}
		format, ok := stringLiteral(info, call.Args[0])
		if !ok {
			return "" // dynamic format string: give it the benefit of the doubt
		}
		if !strings.Contains(format, "%w") {
			return "fmt.Errorf without %w"
		}
	}
	return ""
}

// stringLiteral resolves e to its compile-time string value, if it has one.
func stringLiteral(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Value == nil {
		return "", false
	}
	if s := tv.Value.ExactString(); len(s) >= 2 && s[0] == '"' {
		return s, true // quoted constant string; %w survives quoting untouched
	}
	return "", false
}

// checkCtxPropagation flags context.Background()/context.TODO() used as
// call arguments inside a function that already has a ctx parameter.
func checkCtxPropagation(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	if !hasCtxParam(info, fn) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n, ok := n.(*ast.FuncLit); ok {
			_ = n
			return false // a closure may legitimately be a new root (goroutine body)
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			inner, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			callee := staticCallee(info, inner)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "context" {
				continue
			}
			if callee.Name() == "Background" || callee.Name() == "TODO" {
				pass.Reportf(arg.Pos(), "%s has a context parameter but passes context.%s(); propagate the caller's ctx", fn.Name.Name, callee.Name())
			}
		}
		return true
	})
}

// hasCtxParam reports whether fn declares a context.Context parameter.
func hasCtxParam(info *types.Info, fn *ast.FuncDecl) bool {
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	params := obj.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if named, ok := types.Unalias(params.At(i).Type()).(*types.Named); ok {
			o := named.Obj()
			if o.Pkg() != nil && o.Pkg().Path() == "context" && o.Name() == "Context" {
				return true
			}
		}
	}
	return false
}
