package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// BackendPair enforces the kernel backend contract around a struct
// annotated //s2c2:backend-contract (kernel.backendImpl): its function
// fields are the dispatched micro-kernel ABI, and every backend is one
// composite literal of it.
//
// Checks, per package containing an annotated contract struct:
//
//  1. Literal parity — every composite literal of the contract type must
//     assign every function-typed field, in keyed form. "Added a kernel
//     field, forgot to wire one backend" becomes a vet failure instead of
//     a nil-func panic at dispatch.
//  2. Assembly wiring — every bodyless (assembly-backed) function in the
//     package must be statically reachable from a function assigned to a
//     contract field: an asm kernel that no backend routes to is dead
//     weight or, worse, a kernel whose generic twin was never written.
//  3. Equivalence coverage — every contract field must be reachable from
//     at least one Test* or Fuzz* function in the package's tests (via
//     same-package static calls): each dispatched kernel keeps a
//     cross-backend equivalence or fuzz test.
//  4. noasm API parity — reloading the package under the noasm build tag
//     must not change its exported package-level API or the exported
//     method sets of exported types, so -tags noasm builds keep the
//     determinism contract rather than silently shedding symbols.
//  5. Guarded registration — when the package declares an archBackends
//     function (the CPU-conditional registration list), every use of a
//     contract-typed package variable inside it must sit under an if
//     whose condition calls a cpuHas*-prefixed capability probe, so a
//     backend can never be registered on hardware that cannot execute
//     it; and every contract-typed package variable must be referenced
//     from non-test code at all — an orphan backend literal is a kernel
//     set that can never be dispatched.
//
// Check 4 needs a tag-reloading driver and self-skips under go vet
// -vettool; check 3 self-skips when the load carried no test files;
// check 5's guard rule self-skips when the package has no archBackends
// function.
var BackendPair = &Analyzer{
	Name:      "backendpair",
	Doc:       "every arch kernel backend must wire the full contract, feature-guarded, registered, and test-covered",
	RunModule: runBackendPairModule,
	Run:       runBackendPairUnit,
}

func runBackendPairModule(pass *ModulePass) {
	for _, pkg := range pass.Pkgs {
		checkBackendPackage(pass.Reportf, pass.Fset, pkg, pass.LoadTags)
	}
}

func runBackendPairUnit(pass *Pass) {
	checkBackendPackage(pass.Reportf, pass.Fset, pass.Pkg, nil)
}

func checkBackendPackage(report func(pos token.Pos, format string, args ...any), fset *token.FileSet, pkg *Package,
	loadTags func(path string, tags []string) (*Package, error)) {

	contract := findContract(pkg)
	if contract == nil {
		return
	}
	st, ok := contract.typ.Underlying().(*types.Struct)
	if !ok {
		return
	}
	var funcFields []string
	for i := 0; i < st.NumFields(); i++ {
		if _, ok := st.Field(i).Type().Underlying().(*types.Signature); ok {
			funcFields = append(funcFields, st.Field(i).Name())
		}
	}

	fieldFuncs := checkLiterals(report, pkg, contract, funcFields)
	checkAsmWiring(report, pkg, fieldFuncs)
	checkTestCoverage(report, pkg, contract, funcFields)
	checkRegistration(report, pkg, contract)
	checkNoasmParity(report, fset, pkg, loadTags)
}

// contractType is a //s2c2:backend-contract struct found in a package.
type contractType struct {
	name string
	typ  types.Type
	pos  token.Pos
}

func findContract(pkg *Package) *contractType {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !typeAnnotated(gd, ts, "backend-contract") {
					continue
				}
				if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					return &contractType{name: ts.Name.Name, typ: obj.Type(), pos: ts.Pos()}
				}
			}
		}
	}
	return nil
}

// checkLiterals enforces keyed, fully-populated contract literals and
// returns the set of package functions assigned to contract fields.
func checkLiterals(report func(pos token.Pos, format string, args ...any), pkg *Package,
	contract *contractType, funcFields []string) map[*types.Func]bool {

	fieldFuncs := make(map[*types.Func]bool)
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pkg.Info.Types[lit].Type
			if t == nil || !types.Identical(types.Unalias(t), contract.typ) {
				return true
			}
			assigned := make(map[string]bool)
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					report(elt.Pos(), "%s literal must use keyed fields", contract.name)
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				assigned[key.Name] = true
				if fn := funcValueOf(pkg.Info, kv.Value); fn != nil {
					fieldFuncs[fn] = true
				}
			}
			for _, field := range funcFields {
				if !assigned[field] {
					report(lit.Pos(), "%s literal does not assign kernel field %q: backend would dispatch a nil kernel", contract.name, field)
				}
			}
			return true
		})
	}
	return fieldFuncs
}

// funcValueOf resolves an expression assigned to a contract field to the
// package function it names.
func funcValueOf(info *types.Info, e ast.Expr) *types.Func {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if fn, ok := info.Uses[id].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// checkAsmWiring flags assembly stubs not reachable from any contract
// field's function.
func checkAsmWiring(report func(pos token.Pos, format string, args ...any), pkg *Package,
	fieldFuncs map[*types.Func]bool) {

	idx := buildIndex([]*Package{pkg})
	reachable := make(map[*types.Func]bool)
	var mark func(fn *types.Func)
	mark = func(fn *types.Func) {
		if reachable[fn] {
			return
		}
		reachable[fn] = true
		decl, _ := idx.lookup(fn)
		if decl == nil || decl.Body == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := staticCallee(pkg.Info, call); callee != nil {
					mark(callee)
				}
			}
			return true
		})
	}
	for fn := range fieldFuncs {
		mark(fn)
	}

	for _, f := range pkg.Files {
		if pkg.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body != nil {
				continue
			}
			if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok && !reachable[obj] {
				report(fn.Pos(), "assembly kernel %s is not reachable from any backend contract field", fn.Name.Name)
			}
		}
	}
}

// checkTestCoverage flags contract fields no Test*/Fuzz* function
// exercises (transitively, through same-package static calls).
func checkTestCoverage(report func(pos token.Pos, format string, args ...any), pkg *Package,
	contract *contractType, funcFields []string) {

	hasTests := false
	for f := range pkg.TestFiles {
		if pkg.TestFiles[f] {
			hasTests = true
			break
		}
	}
	if !hasTests {
		return // load carried no test files (vettool non-test unit): self-skip
	}

	idx := buildIndex([]*Package{pkg})
	// fieldsUsed(fn) = contract fields whose selector appears in fn's body.
	covered := make(map[string]bool)
	var walk func(fn *types.Func, seen map[*types.Func]bool)
	walk = func(fn *types.Func, seen map[*types.Func]bool) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		decl, _ := idx.lookup(fn)
		if decl == nil || decl.Body == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pkg.Info.Selections[n]; ok && sel.Kind() == types.FieldVal &&
					types.Identical(types.Unalias(derefType(sel.Recv())), contract.typ) {
					covered[n.Sel.Name] = true
				}
			case *ast.CallExpr:
				if callee := staticCallee(pkg.Info, n); callee != nil {
					walk(callee, seen)
				}
			}
			return true
		})
	}

	seen := make(map[*types.Func]bool)
	for _, f := range pkg.Files {
		if !pkg.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil {
				continue
			}
			if strings.HasPrefix(fn.Name.Name, "Test") || strings.HasPrefix(fn.Name.Name, "Fuzz") {
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					walk(obj, seen)
				}
			}
		}
	}

	for _, field := range funcFields {
		if !covered[field] {
			report(contract.pos, "kernel field %q has no cross-backend equivalence or fuzz test exercising it", field)
		}
	}
}

// checkRegistration enforces the registration half of the contract: a
// backend variable used inside archBackends must be lexically inside an
// if guarded by a cpuHas* capability probe, and every backend variable
// must be referenced from non-test code somewhere (otherwise its kernel
// set exists but can never be dispatched).
func checkRegistration(report func(pos token.Pos, format string, args ...any), pkg *Package, contract *contractType) {
	// Package-level variables of the contract type (or pointer to it),
	// declared in non-test files.
	backendVars := make(map[*types.Var]bool)
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || inTestFile(pkg, v.Pos()) {
			continue
		}
		if types.Identical(types.Unalias(derefType(v.Type())), contract.typ) {
			backendVars[v] = true
		}
	}
	if len(backendVars) == 0 {
		return
	}

	used := make(map[*types.Var]bool)
	var archDecl *ast.FuncDecl
	for _, f := range pkg.Files {
		if pkg.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Name.Name == "archBackends" && n.Body != nil {
					archDecl = n
				}
			case *ast.Ident:
				if v, ok := pkg.Info.Uses[n].(*types.Var); ok && backendVars[v] {
					used[v] = true
				}
			}
			return true
		})
	}

	if archDecl != nil {
		// Lexical guard walk: an if whose condition calls a cpuHas*
		// probe guards its then-branch only — an else branch runs
		// exactly when the capability is absent.
		var scan func(n ast.Node, guarded bool)
		scan = func(n ast.Node, guarded bool) {
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.IfStmt:
					if m.Init != nil {
						scan(m.Init, guarded)
					}
					scan(m.Cond, guarded)
					scan(m.Body, guarded || callsCPUProbe(pkg.Info, m.Cond))
					if m.Else != nil {
						scan(m.Else, guarded)
					}
					return false
				case *ast.Ident:
					if v, ok := pkg.Info.Uses[m].(*types.Var); ok && backendVars[v] && !guarded {
						report(m.Pos(), "backend %s is registered outside a cpuHas* feature guard: it could dispatch on hardware that cannot execute it", m.Name)
					}
				}
				return true
			})
		}
		scan(archDecl.Body, false)
	}

	for v := range backendVars {
		if !used[v] {
			report(v.Pos(), "backend %s is wired to no dispatch list: its kernels can never be selected", v.Name())
		}
	}
}

// callsCPUProbe reports whether expr contains a call to a same-package
// function whose name starts with cpuHas — the capability-probe naming
// convention the registration check keys on.
func callsCPUProbe(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if fn, ok := info.Uses[id].(*types.Func); ok && strings.HasPrefix(fn.Name(), "cpuHas") {
				found = true
			}
		}
		return true
	})
	return found
}

// inTestFile reports whether pos falls inside one of the package's test
// files.
func inTestFile(pkg *Package, pos token.Pos) bool {
	for f, isTest := range pkg.TestFiles {
		if isTest && f.Pos() <= pos && pos <= f.End() {
			return true
		}
	}
	return false
}

func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// checkNoasmParity reloads the package under -tags noasm and diffs the
// exported API. The primary load may carry _test.go symbols the reload
// lacks; those are excluded from the diff via their declaring file.
func checkNoasmParity(report func(pos token.Pos, format string, args ...any), fset *token.FileSet, pkg *Package,
	loadTags func(path string, tags []string) (*Package, error)) {

	if loadTags == nil {
		return // unit-checker mode cannot reload build configurations
	}
	noasm, err := loadTags(pkg.Path, []string{"noasm"})
	if err != nil || noasm == nil {
		report(token.NoPos, "reloading %s under -tags noasm failed: %v", pkg.Path, err)
		return
	}
	inTestFile := func(obj types.Object) bool {
		return strings.HasSuffix(fset.Position(obj.Pos()).Filename, "_test.go")
	}
	base := exportedAPI(pkg.Types, inTestFile)
	alt := exportedAPI(noasm.Types, inTestFile)
	var missing, extra []string
	for sym := range base {
		if !alt[sym] {
			missing = append(missing, sym)
		}
	}
	for sym := range alt {
		if !base[sym] {
			extra = append(extra, sym)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	for _, sym := range missing {
		report(pkg.Files[0].Pos(), "exported symbol %s vanishes under -tags noasm", sym)
	}
	for _, sym := range extra {
		report(pkg.Files[0].Pos(), "exported symbol %s exists only under -tags noasm", sym)
	}
}

// exportedAPI lists a package's exported package-level symbols and the
// exported methods of its exported named types, as stable strings.
// Objects for which skip returns true (test-file declarations) are left
// out.
func exportedAPI(pkg *types.Package, skip func(types.Object) bool) map[string]bool {
	api := make(map[string]bool)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		if !obj.Exported() || skip(obj) {
			continue
		}
		api[name] = true
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := types.Unalias(tn.Type()).(*types.Named)
		if !ok {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if m.Exported() && !skip(m) {
				api[fmt.Sprintf("%s.%s", name, m.Name())] = true
			}
		}
	}
	return api
}
