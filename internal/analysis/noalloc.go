package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc enforces the repo's 0-allocs/op steady-state contract: a
// function annotated //s2c2:noalloc — and every same-module function it
// statically calls — must not contain allocation-inducing constructs.
//
// Flagged constructs: make, new, append (growth), map/slice composite
// literals and &T{} literals, closures (func literals), go statements,
// string concatenation and string<->[]byte/[]rune conversions, interface
// boxing of non-pointer values at call sites and conversions, and calls
// into fmt, log, errors.New and errors.Join.
//
// Two escape hatches keep guarded slow paths honest:
//
//   - A construct inside the error result of a return statement that
//     actually carries an error is exempt: allocation on a failing exit
//     is not the steady state the contract covers. Panic arguments are
//     exempt for the same reason.
//   - //s2c2:noalloc-waive on a line (or a whole function's doc comment)
//     waives findings there; every waive is an auditable in-source record.
//
// Calls the walk cannot resolve statically — interface methods, function
// values, the kernel backend's struct function fields — are not followed;
// the AllocsPerRun tests remain the runtime backstop behind those seams.
var NoAlloc = &Analyzer{
	Name:      "noalloc",
	Doc:       "flag allocation-inducing constructs reachable from //s2c2:noalloc functions",
	RunModule: runNoAllocModule,
	Run:       runNoAllocUnit,
}

// runNoAllocModule is the full cross-package walk (standalone s2c2-vet,
// the authority in CI).
func runNoAllocModule(pass *ModulePass) {
	noallocOver(pass.Fset, pass.Pkgs, pass.Reportf)
}

// runNoAllocUnit is the single-package variant for go vet -vettool mode,
// where other packages' bodies are unavailable: the walk stops at the
// package boundary. The driver runs exactly one of the two forms.
func runNoAllocUnit(pass *Pass) {
	noallocOver(pass.Fset, []*Package{pass.Pkg}, pass.Reportf)
}

func noallocOver(fset *token.FileSet, pkgs []*Package, report func(pos token.Pos, format string, args ...any)) {
	na := &noallocWalk{
		idx:     buildIndex(pkgs),
		fset:    fset,
		waives:  collectWaives(fset, pkgs),
		report:  report,
		visited: make(map[*ast.FuncDecl]bool),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !funcAnnotated(fn, "noalloc") {
					continue
				}
				na.visit(fn, pkg, funcName(fn, pkg))
			}
		}
	}
}

// noallocWalk carries the DFS over annotated roots and their callees. A
// function's constructs are flagged once even when several roots reach it.
type noallocWalk struct {
	idx     *moduleIndex
	fset    *token.FileSet
	waives  waiveSet
	report  func(pos token.Pos, format string, args ...any)
	visited map[*ast.FuncDecl]bool
}

func (na *noallocWalk) visit(fn *ast.FuncDecl, pkg *Package, root string) {
	if na.visited[fn] || fn.Body == nil {
		return
	}
	na.visited[fn] = true
	if funcAnnotated(fn, "noalloc-waive") {
		return // explicitly waived slow path: neither checked nor walked
	}
	info := pkg.Info
	name := funcName(fn, pkg)
	ctx := ""
	if name != root {
		ctx = fmt.Sprintf(" (in %s, reached from //s2c2:noalloc %s)", name, root)
	}

	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		flag := func(pos token.Pos, format string, args ...any) {
			if !onFailureExit(info, pos, stack) {
				na.report(pos, format, args...)
			}
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			na.checkCall(n, info, root, ctx, flag)
		case *ast.CompositeLit:
			na.checkCompositeLit(n, info, stack, ctx, flag)
		case *ast.FuncLit:
			flag(n.Pos(), "closure allocates%s", ctx)
		case *ast.GoStmt:
			flag(n.Pos(), "go statement allocates a goroutine%s", ctx)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.Types[n.X].Type) {
				flag(n.Pos(), "string concatenation allocates%s", ctx)
			}
		}
		return true
	})
}

// checkCall flags builtin allocators, allocating stdlib calls, allocating
// conversions and interface boxing, then recurses into same-module
// callees.
func (na *noallocWalk) checkCall(call *ast.CallExpr, info *types.Info, root, ctx string,
	flag func(pos token.Pos, format string, args ...any)) {

	// A line waive covers the call's transitive behavior too: neither
	// flag the call nor walk into its callee from a waived site (the
	// callee's own //s2c2:noalloc roots, if any, still cover it).
	if na.waives.waivedAt(na.fset.Position(call.Pos()), "noalloc") {
		return
	}

	fun := ast.Unparen(call.Fun)

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				flag(call.Pos(), "make allocates%s", ctx)
			case "new":
				flag(call.Pos(), "new allocates%s", ctx)
			case "append":
				flag(call.Pos(), "append may grow its backing array%s", ctx)
			}
			return
		}
	}

	// Conversions: T(x).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		na.checkConversion(call, tv.Type, info, ctx, flag)
		return
	}

	// Allocating stdlib calls, then interface boxing of the arguments.
	callee := staticCallee(info, call)
	if callee != nil && callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "fmt", "log":
			flag(call.Pos(), "%s.%s allocates%s", callee.Pkg().Name(), callee.Name(), ctx)
			return
		case "errors":
			if callee.Name() == "New" || callee.Name() == "Join" {
				flag(call.Pos(), "errors.%s allocates%s", callee.Name(), ctx)
				return
			}
		}
	}
	if sig, ok := info.Types[call.Fun].Type.(*types.Signature); ok {
		na.checkBoxing(call, sig, info, ctx, flag)
	}

	// Same-module recursion.
	if callee != nil {
		if decl, pkg := na.idx.lookup(callee); decl != nil {
			na.visit(decl, pkg, root)
		}
	}
}

// checkConversion flags string<->[]byte/[]rune conversions and interface
// boxing conversions.
func (na *noallocWalk) checkConversion(call *ast.CallExpr, to types.Type, info *types.Info, ctx string,
	flag func(pos token.Pos, format string, args ...any)) {

	if len(call.Args) != 1 {
		return
	}
	from := info.Types[call.Args[0]].Type
	if from == nil {
		return
	}
	switch {
	case isString(to) && isByteOrRuneSlice(from), isByteOrRuneSlice(to) && isString(from):
		flag(call.Pos(), "string conversion copies and allocates%s", ctx)
	case types.IsInterface(to) && !types.IsInterface(from) && boxingAllocates(from):
		flag(call.Pos(), "conversion boxes %s into an interface%s", from, ctx)
	}
}

// checkBoxing flags arguments whose assignment to an interface-typed
// parameter heap-boxes a non-pointer value.
func (na *noallocWalk) checkBoxing(call *ast.CallExpr, sig *types.Signature, info *types.Info, ctx string,
	flag func(pos token.Pos, format string, args ...any)) {

	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		at := info.Types[arg].Type
		if at == nil || !types.IsInterface(pt) || types.IsInterface(at) {
			continue
		}
		if boxingAllocates(at) {
			flag(arg.Pos(), "argument boxes %s into %s%s", at, pt, ctx)
		}
	}
}

// checkCompositeLit flags literals whose storage lands on the heap: map
// and slice literals, and struct literals whose address is taken.
func (na *noallocWalk) checkCompositeLit(lit *ast.CompositeLit, info *types.Info, stack []ast.Node, ctx string,
	flag func(pos token.Pos, format string, args ...any)) {

	t := info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Map:
		flag(lit.Pos(), "map literal allocates%s", ctx)
	case *types.Slice:
		flag(lit.Pos(), "slice literal allocates%s", ctx)
	default:
		if len(stack) > 0 {
			if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
				flag(u.Pos(), "&composite literal escapes to the heap%s", ctx)
			}
		}
	}
}

// onFailureExit reports whether pos lies inside the error result of an
// enclosing return statement that carries a non-nil error, or inside a
// panic argument — the guarded failure exits the steady-state contract
// does not cover.
func onFailureExit(info *types.Info, pos token.Pos, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ReturnStmt:
			if len(n.Results) == 0 {
				continue
			}
			last := n.Results[len(n.Results)-1]
			if last.Pos() <= pos && pos < last.End() &&
				isErrorType(info.Types[last].Type) && !isNilIdent(info, last) {
				// A bare tail call (`return w.flush()`) is steady-state,
				// not a failure exit: exempt only composite error
				// construction, where the construct is nested below the
				// result expression itself.
				if pos != last.Pos() || isErrorConstruction(info, last) {
					return true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
	}
	return false
}

// isErrorConstruction reports whether e builds a fresh error value (the
// fmt.Errorf / errors.New / errors.Join / &SomeError{} family) rather
// than propagating one.
func isErrorConstruction(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		return e.Op == token.AND
	case *ast.CallExpr:
		callee := staticCallee(info, e)
		if callee == nil || callee.Pkg() == nil {
			return false
		}
		switch callee.Pkg().Path() {
		case "fmt", "errors":
			return true
		}
	}
	return false
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxingAllocates reports whether storing a value of concrete type t in
// an interface heap-allocates: pointer-shaped values (pointers, channels,
// maps, funcs, unsafe pointers) fit the interface word directly.
func boxingAllocates(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}
