package kernel3

import "testing"

// TestDotEquivalence exercises the dot field across all registered
// backends, satisfying the per-field coverage rule.
func TestDotEquivalence(t *testing.T) {
	a := []float64{1, 2, 3}
	want := generic.dot(a, a)
	for _, b := range append(all, sve) {
		if b.dot(a, a) != want {
			t.Fatalf("backend %s disagrees", b.name)
		}
	}
}
