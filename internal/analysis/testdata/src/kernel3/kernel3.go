// Package kernel3 exercises the backendpair registration rules with a
// three-backend dispatch: every contract var used inside archBackends
// must sit under a cpuHas* feature guard, and a contract var wired to no
// dispatch list is an orphan.
package kernel3

// backendImpl is the dispatched kernel ABI.
//
//s2c2:backend-contract
type backendImpl struct {
	name string
	dot  func(a, b []float64) float64
}

var generic = &backendImpl{name: "generic", dot: dotGeneric}

var avx2 = &backendImpl{name: "avx2", dot: dotAVX2}

var avx512 = &backendImpl{name: "avx512", dot: dotAVX512}

// sve is declared but registered nowhere.
var sve = &backendImpl{name: "sve", dot: dotGeneric} // want `backend sve is wired to no dispatch list`

// all is the dispatch list: the portable backend unconditionally, the
// arch backends behind capability probes.
var all = append([]*backendImpl{generic}, archBackends()...)

func archBackends() []*backendImpl {
	var out []*backendImpl
	if cpuHasAVX2() {
		out = append(out, avx2)
	}
	out = append(out, avx512) // want `backend avx512 is registered outside a cpuHas\* feature guard`
	return out
}

// cpuHasAVX2 stands in for a CPUID probe; a Go body keeps the asm-wiring
// check quiet.
func cpuHasAVX2() bool { return false }

func dotGeneric(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func dotAVX2(a, b []float64) float64 { return dotGeneric(a, b) }

func dotAVX512(a, b []float64) float64 { return dotGeneric(a, b) }
