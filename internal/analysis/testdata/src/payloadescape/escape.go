// Package payloadescape exercises the frame-scope escape rules and the
// use-after-recycle rule against the fixture wire package.
package payloadescape

import (
	"fixture/wire"
)

type holder struct {
	last *wire.Payload
}

func (h *holder) keep(p *wire.Payload) {
	h.last = p // want `stored in struct field last`
}

func send(ch chan *wire.Payload, p *wire.Payload) {
	ch <- p // want `sent on a channel`
}

func slot(dst []*wire.Payload, p *wire.Payload) {
	dst[0] = p // want `stored in a container element`
}

func lit(p *wire.Payload) []*wire.Payload {
	return []*wire.Payload{p} // want `placed in a composite literal`
}

func use(p *wire.Payload) { _ = p }

func launch(p *wire.Payload) {
	go use(p) // want `passed to a goroutine`
}

func launchClosure(p *wire.Payload) {
	go func() {
		use(p) // want `goroutine captures frame-scoped`
	}()
}

// borrow copies out of the cursor before the frame ends: legal.
func borrow(p *wire.Payload, dst []byte) int {
	return copy(dst, p.Bytes())
}

func reuse(pool *wire.Pool, b *wire.Buf) {
	pool.Put(b)
	b.F[0] = 1 // want `b used after being recycled to its pool`
}

func rearm(pool *wire.Pool, b *wire.Buf) {
	pool.Put(b)
	b = wire.NewBuf()
	b.F[0] = 1 // legal: the slot was reassigned
	_ = b
}

func deferred(pool *wire.Pool, b *wire.Buf) {
	defer pool.Put(b)
	b.F[0] = 1 // legal: the recycle runs at function exit
}

// guarded recycles on an early-exit branch; the fall-through path still
// owns the slot.
func guarded(pool *wire.Pool, b *wire.Buf, stale bool) {
	if stale {
		pool.Put(b)
		return
	}
	b.F[0] = 1 // legal: the recycle branch exited
}

// guardedLoop is the runRound shape: a continue-guard recycle must not
// poison the next statement of the loop body, but a same-block use after
// the recycle is still dead.
func guardedLoop(pool *wire.Pool, bufs []*wire.Buf) {
	for _, b := range bufs {
		if b.F == nil {
			pool.Put(b)
			_ = b.F // want `b used after being recycled to its pool`
			continue
		}
		b.F[0] = 1 // legal: reached only when the guard did not recycle
	}
}
