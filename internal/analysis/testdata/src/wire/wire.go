// Package wire mirrors the real wire package's frame-scope and pooling
// contracts for the payloadescape fixtures.
package wire

// Payload is a decode cursor, valid only until the next frame is read.
//
//s2c2:frame-scoped
type Payload struct {
	bytes []byte
}

// Bytes exposes the cursor's backing window.
func (p *Payload) Bytes() []byte { return p.bytes }

// Buf is a pooled scratch slot.
type Buf struct {
	F []float64
}

// NewBuf mints a fresh slot.
func NewBuf() *Buf { return &Buf{F: make([]float64, 8)} }

// Pool recycles Buf slots.
type Pool struct {
	free []*Buf
}

// Put returns b to the pool; b must not be touched afterwards.
//
//s2c2:recycler
func (p *Pool) Put(b *Buf) { p.free = append(p.free, b) }

// cursor shows the declaring-package exemption: wire may manage its own
// frame-scoped values, so this store is not a finding.
type cursor struct {
	current *Payload
}

func (c *cursor) advance(p *Payload) { c.current = p }
