// Package partitionerr exercises error attribution and context plumbing.
package partitionerr

import (
	"context"
	"errors"
	"fmt"
)

var errDown = errors.New("worker down")

// distribute fans a partition out to workers; its errors must say which
// partition failed.
//
//s2c2:partition-attrib
func distribute(n int) error {
	if n == 0 {
		return errors.New("no workers") // want `unattributed error \(errors.New\)`
	}
	if n < 0 {
		return fmt.Errorf("bad worker count %d", n) // want `unattributed error \(fmt.Errorf without %w\)`
	}
	if n > 64 {
		return fmt.Errorf("worker %d: %w", n, errDown) // legal: wraps the cause
	}
	return errDown // legal: propagates an attributed value
}

// plain has no annotation, so its fresh errors are its own business.
func plain() error {
	return errors.New("fine here")
}

func call(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

func stream(ctx context.Context) error {
	return call(context.Background(), 1) // want `passes context.Background\(\)`
}

func relay(ctx context.Context) {
	go func() {
		_ = call(context.Background(), 2) // legal: a goroutine may root its own ctx
	}()
	_ = call(context.TODO(), 3) // want `passes context.TODO\(\)`
}

// root has no ctx parameter, so minting one is legal.
func root() error {
	return call(context.Background(), 4)
}

func attempt(i int) error {
	if i > 0 {
		return nil
	}
	return errDown
}

// retrySwallows is the rule-3 violation: the backoff loop tracks the
// last attempt's error, then throws it away and reports a bare sentinel.
//
//s2c2:partition-attrib
func retrySwallows(tries int) error {
	var last error
	for i := 0; i < tries; i++ {
		last = attempt(i) // want `retry loop assigns last but nothing consults it after the loop`
		if last == nil {
			return nil
		}
	}
	return errDown
}

// retryReturnsCarrier is legal: exhaustion propagates the final error.
//
//s2c2:partition-attrib
func retryReturnsCarrier(tries int) error {
	var last error
	for i := 0; i < tries; i++ {
		last = attempt(i)
		if last == nil {
			return nil
		}
	}
	return fmt.Errorf("retries exhausted: %w", last) // legal: wraps the carrier
}

// retryReturnsInsideLoop is legal: the final attempt returns the carrier
// from within the loop, so nothing after it needs to.
//
//s2c2:partition-attrib
func retryReturnsInsideLoop(tries int) error {
	var last error
	for i := 0; i < tries; i++ {
		last = attempt(i)
		if last == nil {
			return nil
		}
		if i == tries-1 {
			return last
		}
	}
	return nil
}

// retryNamedResult is legal: the carrier is a named result, so the bare
// return hands it back implicitly.
//
//s2c2:partition-attrib
func retryNamedResult(tries int) (err error) {
	for i := 0; i < tries; i++ {
		err = attempt(i)
		if err == nil {
			return nil
		}
	}
	return
}

// retryLocalErr is not a carrier pattern: the per-iteration `err :=`
// early-return idiom declares inside the loop and rule 3 stays quiet.
//
//s2c2:partition-attrib
func retryLocalErr(tries int) error {
	for i := 0; i < tries; i++ {
		if err := attempt(i); err != nil {
			return fmt.Errorf("attempt %d: %w", i, err)
		}
	}
	return nil
}
