// Package partitionerr exercises error attribution and context plumbing.
package partitionerr

import (
	"context"
	"errors"
	"fmt"
)

var errDown = errors.New("worker down")

// distribute fans a partition out to workers; its errors must say which
// partition failed.
//
//s2c2:partition-attrib
func distribute(n int) error {
	if n == 0 {
		return errors.New("no workers") // want `unattributed error \(errors.New\)`
	}
	if n < 0 {
		return fmt.Errorf("bad worker count %d", n) // want `unattributed error \(fmt.Errorf without %w\)`
	}
	if n > 64 {
		return fmt.Errorf("worker %d: %w", n, errDown) // legal: wraps the cause
	}
	return errDown // legal: propagates an attributed value
}

// plain has no annotation, so its fresh errors are its own business.
func plain() error {
	return errors.New("fine here")
}

func call(ctx context.Context, n int) error {
	_ = ctx
	_ = n
	return nil
}

func stream(ctx context.Context) error {
	return call(context.Background(), 1) // want `passes context.Background\(\)`
}

func relay(ctx context.Context) {
	go func() {
		_ = call(context.Background(), 2) // legal: a goroutine may root its own ctx
	}()
	_ = call(context.TODO(), 3) // want `passes context.TODO\(\)`
}

// root has no ctx parameter, so minting one is legal.
func root() error {
	return call(context.Background(), 4)
}
