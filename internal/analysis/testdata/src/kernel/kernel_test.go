package kernel

import "testing"

// TestDotEquivalence covers the dot field across backends; nothing
// exercises axpy, which the analyzer reports on the contract type.
func TestDotEquivalence(t *testing.T) {
	a := []float64{1, 2, 3}
	if generic.dot(a, a) != avx2.dot(a, a) {
		t.Fatal("backend mismatch")
	}
}
