// Package kernel exercises the backendpair contract rules: literal
// parity, assembly wiring, and per-field test coverage.
package kernel

// backendImpl is the dispatched kernel ABI.
//
//s2c2:backend-contract
type backendImpl struct { // want `kernel field "axpy" has no cross-backend equivalence or fuzz test`
	name string
	dot  func(a, b []float64) float64
	axpy func(dst []float64, a float64, x []float64)
}

var generic = backendImpl{
	name: "generic",
	dot:  dotGeneric,
	axpy: axpyGeneric,
}

var avx2 = backendImpl{ // want `does not assign kernel field "axpy"`
	name: "avx2",
	dot:  dotWrap,
}

// all registers both backends (no archBackends here, so the guard rule
// self-skips; the registration reference keeps them non-orphans).
var all = []backendImpl{generic, avx2}

func dotGeneric(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpyGeneric(dst []float64, a float64, x []float64) {
	for i := range x {
		dst[i] += a * x[i]
	}
}

func dotWrap(a, b []float64) float64 { return dotAsm(a, b) }

// dotAsm is implemented in assembly and reached through dotWrap.
func dotAsm(a, b []float64) float64

// axpyAsm is implemented in assembly but wired to no backend.
func axpyAsm(dst []float64, a float64, x []float64) // want `assembly kernel axpyAsm is not reachable`
