// Package noalloc exercises every construct the noalloc analyzer flags,
// both exemptions, and the waive escape hatches.
package noalloc

import (
	"errors"
	"fmt"
)

//s2c2:noalloc
func addRow(dst, src []float64) []float64 {
	buf := make([]float64, len(src)) // want `make allocates`
	copy(buf, src)
	dst = append(dst, buf...) // want `append may grow its backing array`
	return dst
}

//s2c2:noalloc
func fresh() *[8]float64 {
	return new([8]float64) // want `new allocates`
}

//s2c2:noalloc
func box(v int) any {
	return any(v) // want `conversion boxes int into an interface`
}

func sink(v any) { _ = v }

//s2c2:noalloc
func passes(x int) {
	sink(x) // want `argument boxes int`
}

//s2c2:noalloc
func logs() {
	fmt.Println("hot path") // want `fmt.Println allocates`
}

//s2c2:noalloc
func joined(a, b error) error {
	e := errors.Join(a, b) // want `errors.Join allocates`
	return e
}

//s2c2:noalloc
func spawn() {
	go leak() // want `go statement allocates a goroutine`
}

//s2c2:noalloc
func capture(n int) func() int {
	return func() int { return n } // want `closure allocates`
}

func leak() {}

//s2c2:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//s2c2:noalloc
func stringify(b []byte) string {
	return string(b) // want `string conversion copies and allocates`
}

//s2c2:noalloc
func table() map[int]int {
	return map[int]int{1: 2} // want `map literal allocates`
}

//s2c2:noalloc
func rows() []int {
	return []int{1, 2, 3} // want `slice literal allocates`
}

type state struct{ n int }

//s2c2:noalloc
func escapes() *state {
	return &state{n: 1} // want `&composite literal escapes to the heap`
}

// caller reaches scratch through the call graph; the finding lands in
// the callee with root attribution.

//s2c2:noalloc
func caller(n int) []byte {
	return scratch(n)
}

func scratch(n int) []byte {
	return make([]byte, n) // want `make allocates.*reached from //s2c2:noalloc caller`
}

// guarded allocates only on its failure exit, which the contract exempts.

//s2c2:noalloc
func guarded(ok bool) error {
	if !ok {
		return fmt.Errorf("bad state")
	}
	return nil
}

// mustPositive allocates only inside a panic argument: also exempt.

//s2c2:noalloc
func mustPositive(n int) {
	if n < 0 {
		panic(fmt.Sprintf("negative %d", n))
	}
}

// waivedFunc opts out wholesale: neither checked nor walked.
//
//s2c2:noalloc-waive
//s2c2:noalloc
func waivedFunc() []int {
	return make([]int, 8)
}

// waivedLine records a single audited exception.

//s2c2:noalloc
func waivedLine() {
	//s2c2:waive noalloc
	_ = make([]int, 4)
	_ = make([]int, 4) //s2c2:waive noalloc
}
