//go:build !noasm

package noasmbreak // want `exported symbol FastPath vanishes under -tags noasm`

// FastPath exists only in the asm build: a parity violation.
func FastPath(a, b []float64) float64 { return backend.dot(a, b) }
