// Package noasmbreak exercises the noasm API-parity rule: FastPath is
// exported only in the default build, so the noasm reload loses it.
package noasmbreak

// impl is the contract that makes backendpair look at this package.
//
//s2c2:backend-contract
type impl struct {
	dot func(a, b []float64) float64
}

var backend = impl{dot: dot}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
