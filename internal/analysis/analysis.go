// Package analysis is a self-contained go/analysis-style framework plus
// the s2c2 invariant analyzers built on it. The repo's hot-path contracts
// — 0-alloc steady-state rounds, frame-scoped wire.Payload cursors, the
// generic↔avx2 backend pairing, *PartitionError attribution — are enforced
// here mechanically instead of by reviewer vigilance.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built entirely on the standard library: packages are
// parsed with go/parser and type-checked with go/types against an offline
// source importer, so the suite runs with zero third-party dependencies.
// cmd/s2c2-vet is the multichecker binary; it also speaks the go vet
// -vettool unit-checker protocol.
//
// Analyzers are directed by source annotations:
//
//	//s2c2:noalloc           function must not allocate in steady state
//	//s2c2:noalloc-waive     waive a noalloc finding (line or function)
//	//s2c2:frame-scoped      type whose values die at the next frame/recv
//	//s2c2:recycler          call returns its receiver/argument to a pool
//	//s2c2:backend-contract  struct whose func fields are the kernel ABI
//	//s2c2:partition-attrib  errors leaving here carry worker attribution
//	//s2c2:waive <analyzer>  waive any analyzer's finding on a line or decl
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker. Run inspects a single package;
// RunModule (optional) additionally sees every package of the load at
// once, which is what the call-graph and cross-backend checks need.
type Analyzer struct {
	Name string
	Doc  string

	// Run analyzes one package. Nil when the analyzer is module-scoped
	// only.
	Run func(pass *Pass)

	// RunModule analyzes the whole loaded package set (call graphs,
	// cross-package and cross-build-tag checks). Nil for per-package
	// analyzers.
	RunModule func(pass *ModulePass)
}

// A Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	report func(Diagnostic)
}

// A ModulePass carries the whole package load through a module-scoped
// analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	// LoadTags reloads the given import path under a different build-tag
	// set (sharing the pass fileset), for cross-build-configuration checks
	// such as backendpair's noasm API parity. Nil when the driver cannot
	// reload (unit-checker mode).
	LoadTags func(path string, tags []string) (*Package, error)

	report func(Diagnostic)
}

// A Package is one loaded, type-checked package: syntax plus type info.
// Test files of the package (package foo _test.go files) are included in
// Files when the loader was asked for them; external test packages
// (package foo_test) load as their own Package with ForTest set.
type Package struct {
	Path    string // import path ("github.com/.../internal/kernel")
	Name    string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	ForTest string // non-empty on an external test package: the path under test

	// TestFiles marks which entries of Files are _test.go files.
	TestFiles map[*ast.File]bool
}

// A Diagnostic is one finding, reported at a position with the owning
// analyzer's name.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos. Findings waived by a //s2c2: waive
// comment are dropped by the driver, not here, so tests can assert on the
// waive machinery itself.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Reportf is ModulePass's finding hook.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ---------------------------------------------------------------------------
// Annotations

// annotationPrefix introduces every machine-readable marker this suite
// understands. Markers are ordinary line comments: "//s2c2:noalloc".
const annotationPrefix = "//s2c2:"

// hasAnnotation reports whether any comment group in doc carries the given
// marker (exact word match after the prefix: "noalloc" does not match
// "noalloc-waive").
func hasAnnotation(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, annotationPrefix) {
			continue
		}
		rest := strings.TrimPrefix(text, annotationPrefix)
		fields := strings.Fields(rest)
		if len(fields) > 0 && fields[0] == name {
			return true
		}
	}
	return false
}

// funcAnnotated reports whether fn's doc comment carries the marker.
func funcAnnotated(fn *ast.FuncDecl, name string) bool {
	return hasAnnotation(fn.Doc, name)
}

// typeAnnotated reports whether the type declaration's doc comment (on the
// TypeSpec or its enclosing GenDecl) carries the marker.
func typeAnnotated(gd *ast.GenDecl, ts *ast.TypeSpec, name string) bool {
	return hasAnnotation(ts.Doc, name) || hasAnnotation(gd.Doc, name)
}

// ---------------------------------------------------------------------------
// Waives

// waiveSet records, per file line, which analyzers are waived there. A
// waive comment covers its own line and the line below it, so it works
// both trailing a statement and on the line above one.
// "//s2c2:noalloc-waive" is shorthand for "//s2c2:waive noalloc";
// "//s2c2:waive foo bar" waives two analyzers at once.
type waiveSet map[string]map[int][]string

// collectWaives scans every comment of every file for waive markers.
func collectWaives(fset *token.FileSet, pkgs []*Package) waiveSet {
	ws := make(waiveSet)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, ok := waiveNames(c.Text)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					m := ws[pos.Filename]
					if m == nil {
						m = make(map[int][]string)
						ws[pos.Filename] = m
					}
					m[pos.Line] = append(m[pos.Line], names...)
					m[pos.Line+1] = append(m[pos.Line+1], names...)
				}
			}
		}
	}
	return ws
}

// waiveNames parses one comment's waive marker, returning the waived
// analyzer names.
func waiveNames(text string) ([]string, bool) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, annotationPrefix) {
		return nil, false
	}
	rest := strings.TrimPrefix(text, annotationPrefix)
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	switch {
	case fields[0] == "waive" && len(fields) > 1:
		return fields[1:], true
	case strings.HasSuffix(fields[0], "-waive"):
		return []string{strings.TrimSuffix(fields[0], "-waive")}, true
	}
	return nil, false
}

// waived reports whether the diagnostic's analyzer is waived at its line.
func (ws waiveSet) waived(d Diagnostic) bool {
	return ws.waivedAt(d.Pos, d.Analyzer)
}

// waivedAt reports whether analyzer name is waived at the source position.
func (ws waiveSet) waivedAt(pos token.Position, name string) bool {
	for _, n := range ws[pos.Filename][pos.Line] {
		if n == name {
			return true
		}
	}
	return false
}

// sortDiagnostics orders findings by file, line, column, analyzer.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
