package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of one module completely offline:
// module packages load from their directories, everything else resolves
// from GOROOT source. Dependencies are checked API-only (bodies skipped),
// target packages fully, so a whole-module load stays fast while the
// analyzers get complete syntax and type information for every target.
type Loader struct {
	// ModDir is the module root (the directory holding go.mod).
	ModDir string
	// ModPath is the module path from go.mod.
	ModPath string
	// Tags are extra build tags ("noasm").
	Tags []string
	// IncludeTests merges in-package _test.go files into their package and
	// loads external (package foo_test) test packages alongside.
	IncludeTests bool
	// ExtraRoots maps import-path prefixes to directories outside the
	// module tree, letting fixture packages under testdata/src import each
	// other by bare path ("wire" → testdata/src/wire).
	ExtraRoots map[string]string

	Fset *token.FileSet

	ctxt build.Context
	deps map[string]*types.Package // API-only dependency cache
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string, tags []string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	return newLoaderAt(modDir, modPath, tags), nil
}

func newLoaderAt(modDir, modPath string, tags []string) *Loader {
	fset := token.NewFileSet()
	ctxt := build.Default
	ctxt.BuildTags = tags
	// Cgo-gated files are excluded so every package — net included —
	// selects its pure-Go variant and type-checks without invoking cgo.
	ctxt.CgoEnabled = false
	return &Loader{
		ModDir:  modDir,
		ModPath: modPath,
		Tags:    tags,
		Fset:    fset,
		ctxt:    ctxt,
		deps:    make(map[string]*types.Package),
	}
}

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (modDir, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := dir; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
	}
}

// Load resolves the patterns ("./...", "./internal/kernel", import paths)
// to module packages and returns them fully type-checked, in import-path
// order. With IncludeTests set, external test packages follow their
// package under test.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		got, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	return pkgs, nil
}

// expand turns patterns into package directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	base := func(pat string) string {
		if strings.HasPrefix(pat, l.ModPath) {
			pat = strings.TrimPrefix(strings.TrimPrefix(pat, l.ModPath), "/")
		}
		return filepath.Join(l.ModDir, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
	}
	for _, pat := range patterns {
		switch {
		case pat == "...":
			pat = "./..."
			fallthrough
		case strings.HasSuffix(pat, "/..."):
			all, err := l.walkTree(base(strings.TrimSuffix(pat, "/...")))
			if err != nil {
				return nil, err
			}
			for _, d := range all {
				add(d)
			}
		default:
			add(base(pat))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// walkModule lists every directory under the module root that contains
// buildable Go files, skipping testdata, vendored and hidden trees.
func (l *Loader) walkModule() ([]string, error) {
	return l.walkTree(l.ModDir)
}

// walkTree lists every directory under root that contains buildable Go
// files, with the same skips.
func (l *Loader) walkTree(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

// importPathFor maps a module directory back to its import path.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModDir, dir)
	if err != nil || rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// dirFor resolves an import path to a source directory: module packages
// under ModDir, extra roots for fixtures, everything else GOROOT source
// (with the GOROOT vendor fallback for the std-vendored golang.org/x
// packages the standard library itself imports).
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModDir, filepath.FromSlash(rest))
	}
	for prefix, root := range l.ExtraRoots {
		if prefix == "" {
			// Catch-all fixture root: only paths that exist there; stdlib
			// imports fall through to GOROOT below.
			if d := filepath.Join(root, filepath.FromSlash(path)); dirExists(d) {
				return d
			}
			continue
		}
		if path == prefix {
			return root
		}
		if rest, ok := strings.CutPrefix(path, prefix+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest))
		}
	}
	dir := filepath.Join(runtime.GOROOT(), "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err != nil {
		if v := filepath.Join(runtime.GOROOT(), "src", "vendor", filepath.FromSlash(path)); dirExists(v) {
			return v
		}
	}
	return dir
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// matchedFiles lists the buildable .go files of dir under the loader's
// build context, split into package files and _test.go files (both only
// in-package; external foo_test files land in xtest).
func (l *Loader) matchedFiles(dir string) (srcs, tests, xtests []string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var pending [][2]string // file, declared package name
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		ok, err := l.ctxt.MatchFile(dir, name)
		if err != nil {
			return nil, nil, nil, err
		}
		if !ok {
			continue
		}
		full := filepath.Join(dir, name)
		declared, err := packageClause(l.Fset, full)
		if err != nil {
			return nil, nil, nil, err
		}
		if !strings.HasSuffix(name, "_test.go") {
			srcs = append(srcs, full)
			continue
		}
		pending = append(pending, [2]string{full, declared})
	}
	for _, p := range pending {
		if strings.HasSuffix(p[1], "_test") {
			xtests = append(xtests, p[0])
		} else {
			tests = append(tests, p[0])
		}
	}
	sort.Strings(srcs)
	sort.Strings(tests)
	sort.Strings(xtests)
	return srcs, tests, xtests, nil
}

// packageClause parses just the package clause of file.
func packageClause(fset *token.FileSet, file string) (string, error) {
	f, err := parser.ParseFile(fset, file, nil, parser.PackageClauseOnly)
	if err != nil {
		return "", err
	}
	return f.Name.Name, nil
}

// loadDir fully loads the package in dir (and, with IncludeTests, its
// external test package).
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	path := l.importPathFor(dir)
	srcs, tests, xtests, err := l.matchedFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 && len(tests) == 0 {
		return nil, nil // nothing buildable under these tags
	}
	files := srcs
	testSet := make(map[*ast.File]bool)
	if l.IncludeTests {
		files = append(append([]string{}, srcs...), tests...)
	}
	pkg, err := l.check(path, files, func(f *ast.File, src string) {
		if strings.HasSuffix(src, "_test.go") {
			testSet[f] = true
		}
	})
	if err != nil {
		return nil, err
	}
	pkg.TestFiles = testSet
	out := []*Package{pkg}

	if l.IncludeTests && len(xtests) > 0 {
		xset := make(map[*ast.File]bool)
		xpkg, err := l.check(path+"_test", xtests, func(f *ast.File, src string) { xset[f] = true })
		if err != nil {
			return nil, err
		}
		xpkg.ForTest = path
		xpkg.TestFiles = xset
		out = append(out, xpkg)
	}
	return out, nil
}

// check parses files and type-checks them as one package.
func (l *Loader) check(path string, files []string, note func(*ast.File, string)) (*Package, error) {
	var asts []*ast.File
	for _, file := range files {
		f, err := parser.ParseFile(l.Fset, file, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if note != nil {
			note(f, file)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, asts, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, firstErr)
	}
	name := ""
	if len(asts) > 0 {
		name = asts[0].Name.Name
	}
	return &Package{Path: path, Name: name, Files: asts, Types: tpkg, Info: info}, nil
}

// loaderImporter resolves imports for target packages: module (and extra
// root) packages are type-checked from source API-only and memoized;
// GOROOT packages go through the standard library's source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	dir := l.dirFor(path)
	srcs, _, _, err := l.matchedFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files for %s in %s", path, dir)
	}
	var asts []*ast.File
	for _, file := range srcs {
		f, err := parser.ParseFile(l.Fset, file, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		asts = append(asts, f)
	}
	var firstErr error
	conf := types.Config{
		Importer:         li,
		IgnoreFuncBodies: true,
		Sizes:            types.SizesFor("gc", build.Default.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(path, l.Fset, asts, nil)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: importing %s: %w", path, firstErr)
	}
	l.deps[path] = pkg
	return pkg, nil
}
