package analysis

import (
	"go/ast"
	"go/types"
)

// moduleIndex maps type-checker function objects back to their syntax
// across every package of a load, which is what the call-graph walks need.
//
// Keys are (package path, receiver-qualified name) strings rather than
// *types.Func identities: a cross-package call site resolves to the
// importer's API-only copy of the callee, a distinct object from the one
// minted when the callee's own package was fully checked. String keys
// make both copies land on the same declaration.
type moduleIndex struct {
	decls map[typeKey]*ast.FuncDecl
	pkgOf map[*ast.FuncDecl]*Package
}

func buildIndex(pkgs []*Package) *moduleIndex {
	idx := &moduleIndex{
		decls: make(map[typeKey]*ast.FuncDecl),
		pkgOf: make(map[*ast.FuncDecl]*Package),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Name == nil {
					continue
				}
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					if _, dup := idx.decls[funcKey(obj)]; !dup {
						idx.decls[funcKey(obj)] = fn
					}
					idx.pkgOf[fn] = pkg
				}
			}
		}
	}
	return idx
}

// lookup resolves a (possibly imported-copy) function object to its
// declaration and declaring package, if the load carries its source.
func (idx *moduleIndex) lookup(fn *types.Func) (*ast.FuncDecl, *Package) {
	decl, ok := idx.decls[funcKey(fn)]
	if !ok {
		return nil, nil
	}
	return decl, idx.pkgOf[decl]
}

// staticCallee resolves the function a call statically invokes: a named
// function or a method called on a concrete receiver. Calls through
// interfaces, function values, and struct function fields resolve to nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface method calls have no body to walk.
				if types.IsInterface(sel.Recv()) {
					return nil
				}
				return fn
			}
			return nil
		}
		// Package-qualified call (pkg.Fn).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// walkStack traverses root in source order, calling visit with each node
// and the stack of its ancestors (outermost first). Returning false skips
// the node's children.
func walkStack(root ast.Node, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !visit(n, stack) {
			return false // children skipped: Inspect sends no nil pop
		}
		stack = append(stack, n)
		return true
	})
}

// funcName renders a function declaration for diagnostics: "Fn" or
// "(*T).Method".
func funcName(fn *ast.FuncDecl, pkg *Package) string {
	if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
		if recv := obj.Type().(*types.Signature).Recv(); recv != nil {
			return "(" + types.TypeString(recv.Type(), types.RelativeTo(pkg.Types)) + ")." + fn.Name.Name
		}
	}
	return fn.Name.Name
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
