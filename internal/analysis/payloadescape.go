package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PayloadEscape enforces the frame-scope contract of decode cursors and
// pooled slots.
//
// A type annotated //s2c2:frame-scoped (wire.Payload: the cursor returned
// by Reader.Next is valid only until the next Next) must not outlive its
// frame. Outside the declaring package, a value of such a type (or a
// pointer to one) must not be:
//
//   - stored in a struct field, slice, array or map element,
//   - placed in a composite literal,
//   - sent on a channel, or
//   - captured by a goroutine (go statement closure or argument).
//
// Pooled slots have the complementary temporal rule: after a call to a
// function annotated //s2c2:recycler returns its argument (or receiver)
// to a pool, later statements of the same function must not touch that
// variable again — use-after-recycle is how stale Result aliases leak
// into the next round. Reassigning the variable re-arms it.
var PayloadEscape = &Analyzer{
	Name: "payloadescape",
	Doc:  "frame-scoped values must not outlive their frame; recycled pooled slots must not be reused",
	Run:  runPayloadEscape,
}

func runPayloadEscape(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFrameScoped(pass, fn)
			checkUseAfterRecycle(pass, info, fn)
		}
	}
}

// checkFrameScoped flags stores that let a frame-scoped value outlive its
// frame.
func checkFrameScoped(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	frameScoped := func(e ast.Expr) (types.Type, bool) {
		t := info.Types[e].Type
		if t == nil {
			return nil, false
		}
		if isFrameScoped(t, pass.Pkg.Types) {
			return t, true
		}
		return nil, false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break // n-to-1 assignments carry no frame-scoped RHS of interest
				}
				t, ok := frameScoped(n.Rhs[i])
				if !ok {
					continue
				}
				switch target := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[target]; ok && sel.Kind() == types.FieldVal {
						pass.Reportf(n.Pos(), "frame-scoped %s stored in struct field %s outlives its frame", t, sel.Obj().Name())
					}
				case *ast.IndexExpr:
					pass.Reportf(n.Pos(), "frame-scoped %s stored in a container element outlives its frame", t)
				}
			}
		case *ast.SendStmt:
			if t, ok := frameScoped(n.Value); ok {
				pass.Reportf(n.Pos(), "frame-scoped %s sent on a channel outlives its frame", t)
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if t, ok := frameScoped(v); ok {
					pass.Reportf(v.Pos(), "frame-scoped %s placed in a composite literal outlives its frame", t)
				}
			}
		case *ast.GoStmt:
			checkGoCapture(pass, n)
			return false
		}
		return true
	})
}

// checkGoCapture flags frame-scoped values handed to a goroutine, either
// as call arguments or as free variables of the launched closure.
func checkGoCapture(pass *Pass, g *ast.GoStmt) {
	info := pass.Pkg.Info
	for _, arg := range g.Call.Args {
		if t := info.Types[arg].Type; t != nil && isFrameScoped(t, pass.Pkg.Types) {
			pass.Reportf(arg.Pos(), "frame-scoped %s passed to a goroutine may outlive its frame", t)
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	// A free variable of the closure: used inside, declared outside.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.Pos() == token.NoPos {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the closure (or a parameter)
		}
		if isFrameScoped(obj.Type(), pass.Pkg.Types) {
			pass.Reportf(id.Pos(), "goroutine captures frame-scoped %s; it may outlive its frame", obj.Type())
		}
		return true
	})
}

// isFrameScoped reports whether t (or the type it points to) is annotated
// //s2c2:frame-scoped and declared outside current — the declaring
// package may manage its own cursors.
func isFrameScoped(t types.Type, current *types.Package) bool {
	t = types.Unalias(t)
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg() == current {
		return false
	}
	return frameScopedTypes[typeKey{obj.Pkg().Path(), obj.Name()}]
}

// typeKey identifies a named type across the load.
type typeKey struct{ pkg, name string }

// frameScopedTypes caches //s2c2:frame-scoped discovery. It is filled by
// the driver before analyzers run (RegisterFrameScoped) — annotation
// discovery needs syntax, but consumers of an annotated type may be
// type-checked against its API only, so wire.Payload is seeded
// unconditionally for go vet -vettool units that analyze rpc alone.
var frameScopedTypes = map[typeKey]bool{
	{"github.com/coded-computing/s2c2/internal/wire", "Payload"}: true,
}

// RegisterFrameScoped scans pkgs for //s2c2:frame-scoped type annotations
// and records them for isFrameScoped. The wire package's Payload is also
// seeded unconditionally: its consumers (rpc) typically load wire
// API-only, where comments are unavailable.
func RegisterFrameScoped(pkgs []*Package) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if typeAnnotated(gd, ts, "frame-scoped") {
						frameScopedTypes[typeKey{pkg.Path, ts.Name.Name}] = true
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Use-after-recycle

// recycleMark records where a variable was recycled and the end of the
// innermost block containing the recycle call. A later use is only a
// violation while control is still inside that block: a recycle in a
// guard branch that exits (`if stale { pool.Put(r); continue }`) does
// not poison uses on the fall-through path.
type recycleMark struct {
	pos      token.Pos
	blockEnd token.Pos
}

// checkUseAfterRecycle flags statement-ordered uses of a variable after a
// //s2c2:recycler call returned it to its pool.
func checkUseAfterRecycle(pass *Pass, info *types.Info, fn *ast.FuncDecl) {
	recycled := make(map[*types.Var]recycleMark)
	dead := func(v *types.Var, at token.Pos) bool {
		m, ok := recycled[v]
		return ok && at < m.blockEnd
	}
	walkStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false // defer runs at exit; not a source-order recycle
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := varOf(info, lhs); v != nil {
					delete(recycled, v) // reassignment re-arms the slot
				}
			}
		case *ast.CallExpr:
			if v := recycledVar(info, n); v != nil {
				// Arguments are evaluated before the call recycles; check
				// them first, then mark.
				for _, arg := range n.Args {
					checkRecycledUse(pass, info, arg, recycled, dead)
				}
				recycled[v] = recycleMark{pos: n.Pos(), blockEnd: scopeEnd(stack, fn)}
				return false
			}
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && dead(v, n.Pos()) {
				pass.Reportf(n.Pos(), "%s used after being recycled to its pool", n.Name)
				delete(recycled, v) // one report per recycle
			}
		}
		return true
	})
}

// scopeEnd returns the End of the innermost block-like node on the
// stack — the region within which a recycle mark stays live.
func scopeEnd(stack []ast.Node, fn *ast.FuncDecl) token.Pos {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.BlockStmt:
			return n.End()
		case *ast.CaseClause:
			return n.End()
		case *ast.CommClause:
			return n.End()
		}
	}
	return fn.Body.End()
}

func checkRecycledUse(pass *Pass, info *types.Info, e ast.Expr,
	recycled map[*types.Var]recycleMark, dead func(*types.Var, token.Pos) bool) {

	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && dead(v, id.Pos()) {
				pass.Reportf(id.Pos(), "%s used after being recycled to its pool", id.Name)
				delete(recycled, v)
			}
		}
		return true
	})
}

// recycledVar returns the local variable a call recycles: the first
// variable argument of a //s2c2:recycler function (m.putResult(r)
// recycles r), or — for argument-less recycler methods like b.Release()
// — the receiver itself.
func recycledVar(info *types.Info, call *ast.CallExpr) *types.Var {
	callee := staticCallee(info, call)
	if callee == nil || !recyclerFuncs[funcKey(callee)] {
		return nil
	}
	for _, arg := range call.Args {
		if v := varOf(info, arg); v != nil {
			return v
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			return varOf(info, sel.X)
		}
	}
	return nil
}

func varOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	return v
}

// recyclerFuncs caches //s2c2:recycler discovery, filled by
// RegisterRecyclers alongside the frame-scoped scan.
var recyclerFuncs = map[typeKey]bool{}

func funcKey(fn *types.Func) typeKey {
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			name = named.Obj().Name() + "." + name
		}
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	return typeKey{pkg, name}
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// RegisterRecyclers scans pkgs for //s2c2:recycler function annotations.
func RegisterRecyclers(pkgs []*Package) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !funcAnnotated(fn, "recycler") {
					continue
				}
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					recyclerFuncs[funcKey(obj)] = true
				}
			}
		}
	}
}
