package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture suites load deliberate-violation packages from the mini
// module under testdata/src and diff the suite's findings against
// `// want` comments, analysistest-style: each want carries one or more
// regexps (backquoted or double-quoted) that must match a finding
// reported on that line; any unmatched want or unexpected finding fails.

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	re  *regexp.Regexp
	met bool
}

func runFixture(t *testing.T, analyzers []*Analyzer, patterns ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.IncludeTests = true
	pkgs, err := l.Load(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded for %v", patterns)
	}
	diags := RunLoaded(l, pkgs, analyzers)

	wants := make(map[string][]*expectation) // "file:line" -> expectations
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					i := strings.Index(c.Text, "want ")
					if i < 0 {
						continue
					}
					pos := l.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, m := range wantRE.FindAllStringSubmatch(c.Text[i+len("want "):], -1) {
						pat := m[1]
						if pat == "" {
							pat = m[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
						}
						wants[key] = append(wants[key], &expectation{re: re})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %v declares no want comments", patterns)
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, e := range wants[key] {
			if !e.met && e.re.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding %s: %s (%s)", d.Pos, d.Message, d.Analyzer)
		}
	}
	for key, es := range wants {
		for _, e := range es {
			if !e.met {
				t.Errorf("%s: no finding matched want %q", key, e.re)
			}
		}
	}
}

func TestNoAllocFixture(t *testing.T) {
	runFixture(t, ByName("noalloc"), "./noalloc")
}

func TestPayloadEscapeFixture(t *testing.T) {
	runFixture(t, ByName("payloadescape"), "./wire", "./payloadescape")
}

func TestBackendPairFixture(t *testing.T) {
	runFixture(t, ByName("backendpair"), "./kernel")
}

func TestBackendTripleFixture(t *testing.T) {
	runFixture(t, ByName("backendpair"), "./kernel3")
}

func TestNoasmParityFixture(t *testing.T) {
	runFixture(t, ByName("backendpair"), "./noasmbreak")
}

func TestPartitionErrFixture(t *testing.T) {
	runFixture(t, ByName("partitionerr"), "./partitionerr")
}

// TestModuleClean is the self-scan gate: the full suite over the real
// module must report nothing — every real finding is either fixed or
// carries an audited waive.
func TestModuleClean(t *testing.T) {
	l, err := NewLoader(".", nil)
	if err != nil {
		t.Fatal(err)
	}
	l.IncludeTests = true
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunLoaded(l, pkgs, All())
	for _, d := range diags {
		t.Errorf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
	}
}
