package analysis

import "go/token"

// The driver runs a set of analyzers over a loaded package set, applies
// waive comments, and returns the surviving findings sorted by position.
// It is shared by cmd/s2c2-vet and the analysistest-style fixture suites.

// All is the full s2c2 invariant suite in the order findings are listed.
func All() []*Analyzer {
	return []*Analyzer{NoAlloc, PayloadEscape, BackendPair, PartitionErr}
}

// ByName returns the named analyzers from the full suite.
func ByName(names ...string) []*Analyzer {
	var out []*Analyzer
	for _, name := range names {
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
			}
		}
	}
	return out
}

// Run executes the analyzers over pkgs. Module-scoped analyzers see the
// whole set once; per-package analyzers run on every package. loadTags,
// when non-nil, lets module analyzers reload a package under different
// build tags (nil in unit-checker mode, where those checks self-skip).
// Findings waived in source are dropped; the rest come back sorted.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer,
	loadTags func(path string, tags []string) (*Package, error)) []Diagnostic {

	RegisterFrameScoped(pkgs)
	RegisterRecyclers(pkgs)

	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }

	for _, a := range analyzers {
		switch {
		case a.RunModule != nil:
			a.RunModule(&ModulePass{
				Analyzer: a, Fset: fset, Pkgs: pkgs,
				LoadTags: loadTags, report: report,
			})
		case a.Run != nil:
			for _, pkg := range pkgs {
				a.Run(&Pass{Analyzer: a, Fset: fset, Pkg: pkg, report: report})
			}
		}
	}

	waives := collectWaives(fset, pkgs)
	kept := diags[:0]
	for _, d := range diags {
		if !waives.waived(d) {
			kept = append(kept, d)
		}
	}
	sortDiagnostics(kept)
	return kept
}

// RunUnit executes only the per-package form of each analyzer over a
// single package — the go vet -vettool unit-checker mode, where other
// packages' syntax is unavailable. Module-scoped checks (cross-package
// noalloc walks, backendpair's noasm parity) self-skip; the standalone
// multichecker remains the authority in CI.
func RunUnit(fset *token.FileSet, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	pkgs := []*Package{pkg}
	RegisterFrameScoped(pkgs)
	RegisterRecyclers(pkgs)

	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		if a.Run != nil {
			a.Run(&Pass{Analyzer: a, Fset: fset, Pkg: pkg, report: report})
		}
	}

	waives := collectWaives(fset, pkgs)
	kept := diags[:0]
	for _, d := range diags {
		if !waives.waived(d) {
			kept = append(kept, d)
		}
	}
	sortDiagnostics(kept)
	return kept
}

// RunLoaded is Run wired to a Loader: tag reloads share the loader's
// module root and fixture roots (but use a fresh fileset-compatible
// sub-loader so the alternate build configuration cannot leak into the
// primary load's caches).
func RunLoaded(l *Loader, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	loadTags := func(path string, tags []string) (*Package, error) {
		sub := newLoaderAt(l.ModDir, l.ModPath, tags)
		sub.ExtraRoots = l.ExtraRoots
		sub.Fset = l.Fset // one fileset, so reloaded positions report correctly
		got, err := sub.Load(path)
		if err != nil {
			return nil, err
		}
		if len(got) == 0 {
			return nil, nil
		}
		return got[0], nil
	}
	return Run(l.Fset, pkgs, analyzers, loadTags)
}
