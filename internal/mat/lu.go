package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no usable pivot.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting of a square matrix:
// P·A = L·U, stored compactly in lu with the permutation in piv.
type LU struct {
	lu   *Dense
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of square A with partial pivoting.
func FactorLU(a *Dense) (*LU, error) {
	if a.rows != a.cols {
		panic(fmt.Sprintf("mat: FactorLU non-square %dx%d", a.rows, a.cols))
	}
	n := a.rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for col := 0; col < n; col++ {
		// Find the pivot: largest magnitude in this column at/below the diagonal.
		p := col
		max := math.Abs(lu.data[col*n+col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu.data[r*n+col]); a > max {
				max, p = a, r
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != col {
			rp := lu.data[p*n : (p+1)*n]
			rc := lu.data[col*n : (col+1)*n]
			for j := 0; j < n; j++ {
				rp[j], rc[j] = rc[j], rp[j]
			}
			piv[p], piv[col] = piv[col], piv[p]
			sign = -sign
		}
		pivVal := lu.data[col*n+col]
		for r := col + 1; r < n; r++ {
			f := lu.data[r*n+col] / pivVal
			lu.data[r*n+col] = f
			if f == 0 {
				continue
			}
			rr := lu.data[r*n : (r+1)*n]
			rc := lu.data[col*n : (col+1)*n]
			for j := col + 1; j < n; j++ {
				rr[j] -= f * rc[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A·x = b for x given the factorization.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, f.lu.rows)
	f.SolveInto(x, b)
	return x
}

// SolveInto solves A·x = b into the provided slice x, which must not
// alias b. Both must have length N (the factored dimension). It performs
// no allocation.
//
//s2c2:noalloc
func (f *LU) SolveInto(x, b []float64) {
	n := f.lu.rows
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("mat: LU.SolveInto lengths x=%d b=%d want %d", len(x), len(b), n))
	}
	// Apply permutation.
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit-diagonal L.
	for i := 1; i < n; i++ {
		row := f.lu.data[i*n : i*n+i]
		s := x[i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}

// SolveMany solves A·X = B column-block-wise where each element of bs is an
// independent right-hand side. It amortises the factorization.
func (f *LU) SolveMany(bs [][]float64) [][]float64 {
	out := make([][]float64, len(bs))
	for i, b := range bs {
		out[i] = f.Solve(b)
	}
	return out
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Solve solves the square system A·x = b with one step of iterative
// refinement, which substantially tightens residuals for the moderately
// ill-conditioned Cauchy systems arising in MDS decoding.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	x := f.Solve(b)
	// One iterative-refinement sweep: r = b - A·x, x += A⁻¹ r.
	r := make([]float64, len(b))
	MatVecInto(a, x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	dx := f.Solve(r)
	for i := range x {
		x[i] += dx[i]
	}
	return x, nil
}

// Invert returns A⁻¹ for square A.
func Invert(a *Dense) (*Dense, error) {
	n := a.rows
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.data[i*n+j] = col[i]
		}
	}
	return inv, nil
}
