package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("entry (%d,%d) = %v want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At = %v want 7.5", got)
	}
	if got := m.Row(1)[2]; got != 7.5 {
		t.Fatalf("Row slice = %v want 7.5", got)
	}
}

func TestNewFromRows(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected contents %v", m)
	}
}

func TestNewFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	NewFromRows([][]float64{{1, 2}, {3}})
}

func TestNewFromDataLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad data length")
		}
	}()
	NewFromData(2, 2, []float64{1, 2, 3})
}

func TestCloneIsDeep(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestRowSliceAliases(t *testing.T) {
	m := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	s := m.RowSlice(1, 3)
	if r, c := s.Dims(); r != 2 || c != 2 {
		t.Fatalf("slice dims %d,%d", r, c)
	}
	s.Set(0, 0, -3)
	if m.At(1, 0) != -3 {
		t.Fatal("RowSlice should alias parent storage")
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{10, 20}, {30, 40}})
	a.Add(b)
	want := NewFromRows([][]float64{{11, 22}, {33, 44}})
	if !a.Equal(want) {
		t.Fatalf("Add: got %v", a)
	}
	a.Sub(b)
	if !a.Equal(NewFromRows([][]float64{{1, 2}, {3, 4}})) {
		t.Fatalf("Sub: got %v", a)
	}
	a.Scale(2)
	if !a.Equal(NewFromRows([][]float64{{2, 4}, {6, 8}})) {
		t.Fatalf("Scale: got %v", a)
	}
	a.AddScaled(0.5, b)
	if !a.Equal(NewFromRows([][]float64{{7, 14}, {21, 28}})) {
		t.Fatalf("AddScaled: got %v", a)
	}
}

func TestVStack(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}})
	b := NewFromRows([][]float64{{3, 4}, {5, 6}})
	s := VStack(a, b)
	want := NewFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if !s.Equal(want) {
		t.Fatalf("VStack got %v", s)
	}
}

func TestHStack(t *testing.T) {
	a := NewFromRows([][]float64{{1}, {4}})
	b := NewFromRows([][]float64{{2, 3}, {5, 6}})
	s := HStack(a, b)
	want := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if !s.Equal(want) {
		t.Fatalf("HStack got %v", s)
	}
}

func TestIdentityMatVec(t *testing.T) {
	id := Identity(4)
	x := []float64{1, -2, 3, -4}
	y := MatVec(id, x)
	if !VecApproxEqual(x, y, 0) {
		t.Fatalf("I·x = %v want %v", y, x)
	}
}

func TestApproxEqualTolerance(t *testing.T) {
	a := NewFromRows([][]float64{{1.0}})
	b := NewFromRows([][]float64{{1.0 + 1e-12}})
	if !a.ApproxEqual(b, 1e-9) {
		t.Fatal("should be approx equal")
	}
	c := NewFromRows([][]float64{{1.1}})
	if a.ApproxEqual(c, 1e-9) {
		t.Fatal("should not be approx equal")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := NewFromRows([][]float64{{3, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Frobenius = %v want 5", got)
	}
}

// Property: matvec is linear — A(x+y) == Ax + Ay.
func TestMatVecLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(20), 1+r.Intn(20)
		a := Rand(rows, cols, r)
		x := randVec(cols, r)
		y := randVec(cols, r)
		lhs := MatVec(a, AddVec(x, y))
		rhs := AddVec(MatVec(a, x), MatVec(a, y))
		return VecApproxEqual(lhs, rhs, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an involution and (AB)ᵀ == BᵀAᵀ.
func TestTransposeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, p := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a := Rand(m, n, r)
		b := Rand(n, p, r)
		if !Transpose(Transpose(a)).Equal(a) {
			return false
		}
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return lhs.ApproxEqual(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func randVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}
