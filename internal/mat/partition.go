package mat

import "fmt"

// SplitRows divides A into k contiguous row blocks whose vertical
// concatenation reproduces A. If A's row count is not divisible by k the
// matrix is zero-padded at the bottom first (PadRows), so every block has
// exactly ceil(rows/k) rows — the uniform-partition requirement of MDS
// encoding. The returned blocks copy their data.
func SplitRows(a *Dense, k int) []*Dense {
	if k <= 0 {
		panic(fmt.Sprintf("mat: SplitRows k=%d", k))
	}
	padded := PadRows(a, k)
	per := padded.rows / k
	blocks := make([]*Dense, k)
	for i := 0; i < k; i++ {
		blocks[i] = padded.RowSlice(i*per, (i+1)*per).Clone()
	}
	return blocks
}

// PadRows returns A zero-padded at the bottom so its row count is a
// multiple of k. If it already is, A itself is returned (no copy).
func PadRows(a *Dense, k int) *Dense {
	if k <= 0 {
		panic(fmt.Sprintf("mat: PadRows k=%d", k))
	}
	rem := a.rows % k
	if rem == 0 {
		return a
	}
	pad := k - rem
	out := New(a.rows+pad, a.cols)
	copy(out.data, a.data)
	return out
}

// SplitCols divides A into k contiguous column blocks whose horizontal
// concatenation reproduces A (zero-padding columns on the right if needed).
func SplitCols(a *Dense, k int) []*Dense {
	if k <= 0 {
		panic(fmt.Sprintf("mat: SplitCols k=%d", k))
	}
	cols := a.cols
	per := (cols + k - 1) / k
	blocks := make([]*Dense, k)
	for b := 0; b < k; b++ {
		blk := New(a.rows, per)
		for i := 0; i < a.rows; i++ {
			for j := 0; j < per; j++ {
				src := b*per + j
				if src < cols {
					blk.data[i*per+j] = a.data[i*cols+src]
				}
			}
		}
		blocks[b] = blk
	}
	return blocks
}

// PaddedRows reports the row count after PadRows(a, k).
func PaddedRows(rows, k int) int {
	if rows%k == 0 {
		return rows
	}
	return rows + k - rows%k
}
