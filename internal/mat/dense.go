// Package mat implements the dense linear-algebra substrate used by the
// coded-computing stack: row-major dense matrices, vectors, sequential and
// parallel multiplication kernels, and row-block partitioning.
//
// The package is deliberately self-contained (no cgo, no external BLAS) so
// the repository builds offline with the standard library only. Kernels are
// written for predictable cache behaviour: matrices are row-major and all
// hot loops stream along rows.
package mat

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/coded-computing/s2c2/internal/kernel"
)

// Dense is a row-major dense matrix of float64 values.
//
// The zero value is an empty (0x0) matrix. Use New or NewFromData to build
// one with a shape. Methods that return matrices always allocate fresh
// backing storage unless documented otherwise.
type Dense struct {
	rows, cols int
	// data holds the entries row-by-row; len(data) == rows*cols.
	data []float64
}

// New returns a zeroed r-by-c matrix.
func New(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewFromData wraps data (taking ownership) as an r-by-c matrix.
// len(data) must equal r*c.
func NewFromData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// NewFromRows builds a matrix from a slice of equal-length rows, copying.
func NewFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("mat: ragged row %d: len %d want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Rand returns an r-by-c matrix with entries drawn uniformly from [-1, 1)
// using the given deterministic source.
func Rand(r, c int, rng *rand.Rand) *Dense {
	m := New(r, c)
	for i := range m.data {
		m.data[i] = 2*rng.Float64() - 1
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims reports the matrix shape.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the row count.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the column count.
func (m *Dense) Cols() int { return m.cols }

// At returns the entry at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.checkIndex(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the entry at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.checkIndex(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) checkIndex(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Data returns the backing slice (row-major). Mutations are visible.
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// RowSlice returns the sub-matrix of rows [lo, hi) sharing storage with m.
func (m *Dense) RowSlice(lo, hi int) *Dense {
	if lo < 0 || hi > m.rows || lo > hi {
		panic(fmt.Sprintf("mat: row slice [%d,%d) out of range %d", lo, hi, m.rows))
	}
	return &Dense{rows: hi - lo, cols: m.cols, data: m.data[lo*m.cols : hi*m.cols]}
}

// Fill sets every entry to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Scale multiplies every entry by a in place and returns m.
func (m *Dense) Scale(a float64) *Dense {
	kernel.Scale(a, m.data)
	return m
}

// Add accumulates b into m in place (m += b) and returns m.
func (m *Dense) Add(b *Dense) *Dense {
	m.checkSameShape(b)
	kernel.Axpy(1, b.data, m.data)
	return m
}

// Sub subtracts b from m in place (m -= b) and returns m.
func (m *Dense) Sub(b *Dense) *Dense {
	m.checkSameShape(b)
	kernel.Axpy(-1, b.data, m.data)
	return m
}

// AddScaled accumulates a*b into m in place (m += a*b) and returns m.
func (m *Dense) AddScaled(a float64, b *Dense) *Dense {
	m.checkSameShape(b)
	kernel.Axpy(a, b.data, m.data)
	return m
}

func (m *Dense) checkSameShape(b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
}

// Equal reports whether m and b have identical shape and entries.
func (m *Dense) Equal(b *Dense) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if v != b.data[i] {
			return false
		}
	}
	return true
}

// ApproxEqual reports whether m and b agree entrywise within tol,
// using a mixed absolute/relative comparison.
func (m *Dense) ApproxEqual(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if !approxEqual(v, b.data[i], tol) {
			return false
		}
	}
	return true
}

func approxEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// MaxAbs returns the largest absolute entry (0 for an empty matrix).
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	s := 0.0
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// String renders small matrices for debugging; large ones are summarised.
func (m *Dense) String() string {
	const limit = 8
	if m.rows > limit || m.cols > limit {
		return fmt.Sprintf("Dense{%dx%d}", m.rows, m.cols)
	}
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

// VStack concatenates the given matrices vertically (all must share a
// column count) into a newly allocated matrix.
func VStack(blocks ...*Dense) *Dense {
	if len(blocks) == 0 {
		return New(0, 0)
	}
	c := blocks[0].cols
	total := 0
	for _, b := range blocks {
		if b.cols != c {
			panic(fmt.Sprintf("mat: VStack column mismatch %d vs %d", b.cols, c))
		}
		total += b.rows
	}
	out := New(total, c)
	at := 0
	for _, b := range blocks {
		copy(out.data[at*c:], b.data)
		at += b.rows
	}
	return out
}

// HStack concatenates the given matrices horizontally (all must share a
// row count) into a newly allocated matrix.
func HStack(blocks ...*Dense) *Dense {
	if len(blocks) == 0 {
		return New(0, 0)
	}
	r := blocks[0].rows
	total := 0
	for _, b := range blocks {
		if b.rows != r {
			panic(fmt.Sprintf("mat: HStack row mismatch %d vs %d", b.rows, r))
		}
		total += b.cols
	}
	out := New(r, total)
	at := 0
	for _, b := range blocks {
		for i := 0; i < r; i++ {
			copy(out.data[i*total+at:], b.data[i*b.cols:(i+1)*b.cols])
		}
		at += b.cols
	}
	return out
}
