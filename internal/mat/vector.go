package mat

import (
	"fmt"
	"math"

	"github.com/coded-computing/s2c2/internal/kernel"
)

// Vector helpers operate on plain []float64 so callers can interoperate
// with the rest of the standard library without wrapper types.

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	return kernel.Dot(x, y)
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	kernel.Axpy(a, x, y)
}

// ScaleVec multiplies every element of x by a in place.
func ScaleVec(a float64, x []float64) {
	kernel.Scale(a, x)
}

// AddVec computes z = x + y into a new slice.
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: AddVec length mismatch %d vs %d", len(x), len(y)))
	}
	z := make([]float64, len(x))
	for i := range x {
		z[i] = x[i] + y[i]
	}
	return z
}

// SubVec computes z = x - y into a new slice.
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: SubVec length mismatch %d vs %d", len(x), len(y)))
	}
	z := make([]float64, len(x))
	for i := range x {
		z[i] = x[i] - y[i]
	}
	return z
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the 1-norm of x.
func Norm1(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the max-norm of x.
func NormInf(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// VecApproxEqual reports whether x and y agree elementwise within tol.
func VecApproxEqual(x, y []float64, tol float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if !approxEqual(x[i], y[i], tol) {
			return false
		}
	}
	return true
}

// Normalize scales x to unit 1-norm in place (no-op on a zero vector).
// It returns the original norm.
func Normalize(x []float64) float64 {
	n := Norm1(x)
	if n == 0 {
		return 0
	}
	ScaleVec(1/n, x)
	return n
}
