package mat

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/kernel"
)

// Parallel multiplication runs on the persistent worker pool in
// internal/kernel instead of spawning goroutines per call: dispatch is
// allocation-free in steady state and work is chunk-stolen, so uneven
// bands self-balance. The workers argument caps the fan-out (<= 0 means
// the full pool); it no longer controls goroutine creation.

// ParallelMatVec computes y = A·x using up to workers pool participants.
func ParallelMatVec(a *Dense, x []float64, workers int) []float64 {
	y := make([]float64, a.rows)
	ParallelMatVecInto(a, x, y, workers)
	return y
}

// ParallelMatVecInto is ParallelMatVec writing into a caller slice.
// Zero-row matrices and workers exceeding the row count are handled
// uniformly by the pool's chunking (a worker never receives an empty band).
//
//s2c2:noalloc
func ParallelMatVecInto(a *Dense, x, y []float64, workers int) {
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: ParallelMatVec x length %d want %d", len(x), a.cols))
	}
	if len(y) != a.rows {
		panic(fmt.Sprintf("mat: ParallelMatVec y length %d want %d", len(y), a.rows))
	}
	kernel.Default().MatVec(y, a.data, a.rows, a.cols, x, workers)
}

// ParallelMatMul computes C = A·B splitting A's rows across the pool.
func ParallelMatMul(a, b *Dense, workers int) *Dense {
	c := New(a.rows, b.cols)
	ParallelMatMulInto(a, b, c, workers)
	return c
}

// ParallelMatMulInto is ParallelMatMul writing into a caller matrix of
// shape A.Rows()×B.Cols(). C is overwritten.
//
//s2c2:noalloc
func ParallelMatMulInto(a, b, c *Dense, workers int) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: ParallelMatMul inner dim %d vs %d", a.cols, b.rows))
	}
	if c.rows != a.rows || c.cols != b.cols {
		panic(fmt.Sprintf("mat: ParallelMatMul dst %dx%d want %dx%d", c.rows, c.cols, a.rows, b.cols))
	}
	kernel.Default().MatMul(c.data, a.data, a.rows, a.cols, b.data, b.cols, workers)
}
