package mat

import (
	"runtime"
	"sync"
)

// ParallelMatVec computes y = A·x using up to workers goroutines, splitting
// A's rows into contiguous bands. workers <= 0 means GOMAXPROCS.
func ParallelMatVec(a *Dense, x []float64, workers int) []float64 {
	y := make([]float64, a.rows)
	ParallelMatVecInto(a, x, y, workers)
	return y
}

// ParallelMatVecInto is ParallelMatVec writing into a caller slice.
func ParallelMatVecInto(a *Dense, x, y []float64, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.rows {
		workers = a.rows
	}
	if workers <= 1 || a.rows < 64 {
		MatVecInto(a, x, y)
		return
	}
	var wg sync.WaitGroup
	band := (a.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := lo + band
		if hi > a.rows {
			hi = a.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				row := a.data[i*a.cols : (i+1)*a.cols]
				s := 0.0
				for j, v := range row {
					s += v * x[j]
				}
				y[i] = s
			}
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelMatMul computes C = A·B splitting A's rows across goroutines.
func ParallelMatMul(a, b *Dense, workers int) *Dense {
	if a.cols != b.rows {
		panic("mat: ParallelMatMul inner dimension mismatch")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.rows {
		workers = a.rows
	}
	c := New(a.rows, b.cols)
	if workers <= 1 || a.rows < 32 {
		matMulInto(a, b, c, 0, a.rows)
		return c
	}
	var wg sync.WaitGroup
	band := (a.rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * band
		hi := lo + band
		if hi > a.rows {
			hi = a.rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulInto(a, b, c, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return c
}
