package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a := NewFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3}
	if !VecApproxEqual(x, want, 1e-10) {
		t.Fatalf("Solve = %v want %v", x, want)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		a := Rand(n, n, r)
		// Diagonal boost keeps the random systems comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		xTrue := randVec(n, r)
		b := MatVec(a, xTrue)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		return VecApproxEqual(x, xTrue, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := Rand(7, 7, rng)
	for i := 0; i < 7; i++ {
		a.Set(i, i, a.At(i, i)+7)
	}
	inv, err := Invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if !MatMul(a, inv).ApproxEqual(Identity(7), 1e-8) {
		t.Fatal("A·A⁻¹ != I")
	}
}

func TestDeterminantKnown(t *testing.T) {
	a := NewFromRows([][]float64{{3, 0}, {0, 2}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Det()-6) > 1e-12 {
		t.Fatalf("Det = %v want 6", f.Det())
	}
	// Row swap flips sign handling; determinant must still be correct.
	b := NewFromRows([][]float64{{0, 2}, {3, 0}})
	fb, err := FactorLU(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fb.Det()+6) > 1e-12 {
		t.Fatalf("Det = %v want -6", fb.Det())
	}
}

func TestSolveMany(t *testing.T) {
	a := NewFromRows([][]float64{{4, 1}, {1, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	xs := f.SolveMany([][]float64{{5, 4}, {9, 7}})
	for i, b := range [][]float64{{5, 4}, {9, 7}} {
		got := MatVec(a, xs[i])
		if !VecApproxEqual(got, b, 1e-10) {
			t.Fatalf("rhs %d: A·x = %v want %v", i, got, b)
		}
	}
}
