package mat

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/kernel"
)

// The multiplication entry points validate shapes and delegate the float64
// loops to internal/kernel, the shared compute substrate. Every operation
// has an ...Into form writing into caller-owned storage; the non-Into form
// allocates the result.

// MatVec computes y = A·x into a new slice.
func MatVec(a *Dense, x []float64) []float64 {
	y := make([]float64, a.rows)
	MatVecInto(a, x, y)
	return y
}

// MatVecInto computes y = A·x into the provided slice.
// len(x) must equal A's column count and len(y) its row count.
//
//s2c2:noalloc
func MatVecInto(a *Dense, x, y []float64) {
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: MatVec x length %d want %d", len(x), a.cols))
	}
	if len(y) != a.rows {
		panic(fmt.Sprintf("mat: MatVec y length %d want %d", len(y), a.rows))
	}
	kernel.MatVec(y, a.data, a.rows, a.cols, x)
}

// MatVecRows computes (A·x)[lo:hi] — only the rows in [lo, hi) — into a
// new slice of length hi-lo. This is the kernel a coded-computing worker
// runs when S2C2 assigns it a sub-range of its partition.
func MatVecRows(a *Dense, x []float64, lo, hi int) []float64 {
	if lo < 0 || hi > a.rows || lo > hi {
		panic(fmt.Sprintf("mat: MatVecRows range [%d,%d) out of %d", lo, hi, a.rows))
	}
	y := make([]float64, hi-lo)
	MatVecRowsInto(a, x, y, lo, hi)
	return y
}

// MatVecRowsInto is MatVecRows writing into a caller slice of length hi-lo.
//
//s2c2:noalloc
func MatVecRowsInto(a *Dense, x, y []float64, lo, hi int) {
	if lo < 0 || hi > a.rows || lo > hi {
		panic(fmt.Sprintf("mat: MatVecRows range [%d,%d) out of %d", lo, hi, a.rows))
	}
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: MatVecRows x length %d want %d", len(x), a.cols))
	}
	if len(y) != hi-lo {
		panic(fmt.Sprintf("mat: MatVecRows y length %d want %d", len(y), hi-lo))
	}
	kernel.MatVecRange(y, a.data, a.cols, x, lo, hi)
}

// VecMat computes y = xᵀ·A (a row vector) into a new slice of length
// A.Cols(). It streams row-wise for cache efficiency.
func VecMat(x []float64, a *Dense) []float64 {
	y := make([]float64, a.cols)
	VecMatInto(x, a, y)
	return y
}

// VecMatInto is VecMat writing into a caller slice of length A.Cols().
//
//s2c2:noalloc
func VecMatInto(x []float64, a *Dense, y []float64) {
	if len(x) != a.rows {
		panic(fmt.Sprintf("mat: VecMat x length %d want %d", len(x), a.rows))
	}
	if len(y) != a.cols {
		panic(fmt.Sprintf("mat: VecMat y length %d want %d", len(y), a.cols))
	}
	kernel.VecMat(y, x, a.data, a.rows, a.cols)
}

// MatMul computes C = A·B into a new matrix using the cache-blocked kernel.
func MatMul(a, b *Dense) *Dense {
	c := New(a.rows, b.cols)
	MatMulInto(a, b, c)
	return c
}

// MatMulInto computes C = A·B into the provided matrix, which must be
// A.Rows()×B.Cols(). C is overwritten.
//
//s2c2:noalloc
func MatMulInto(a, b, c *Dense) {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MatMul inner dim %d vs %d", a.cols, b.rows))
	}
	if c.rows != a.rows || c.cols != b.cols {
		panic(fmt.Sprintf("mat: MatMul dst %dx%d want %dx%d", c.rows, c.cols, a.rows, b.cols))
	}
	kernel.MatMul(c.data, a.data, a.rows, a.cols, b.data, b.cols)
}

// Transpose returns Aᵀ as a new matrix.
func Transpose(a *Dense) *Dense {
	t := New(a.cols, a.rows)
	TransposeInto(a, t)
	return t
}

// TransposeInto writes Aᵀ into the provided A.Cols()×A.Rows() matrix.
//
//s2c2:noalloc
func TransposeInto(a, t *Dense) {
	if t.rows != a.cols || t.cols != a.rows {
		panic(fmt.Sprintf("mat: Transpose dst %dx%d want %dx%d", t.rows, t.cols, a.cols, a.rows))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			t.data[j*a.rows+i] = v
		}
	}
}

// MulDiagLeft computes diag(d)·A into a new matrix (scales row i by d[i]).
func MulDiagLeft(d []float64, a *Dense) *Dense {
	if len(d) != a.rows {
		panic(fmt.Sprintf("mat: MulDiagLeft d length %d want %d", len(d), a.rows))
	}
	out := a.Clone()
	for i := 0; i < a.rows; i++ {
		kernel.Scale(d[i], out.data[i*a.cols:(i+1)*a.cols])
	}
	return out
}

// ATDiagA computes Aᵀ·diag(d)·A — the Hessian-style bilinear form used by
// the polynomial-coding workload. A is m-by-n, d has length m, and the
// result is n-by-n.
func ATDiagA(a *Dense, d []float64) *Dense {
	if len(d) != a.rows {
		panic(fmt.Sprintf("mat: ATDiagA d length %d want %d", len(d), a.rows))
	}
	out := New(a.cols, a.cols)
	kernel.ATDiagBRange(out.data, a.data, d, a.data, a.rows, a.cols, a.cols, 0, a.cols)
	return out
}

// ATDiagB computes Aᵀ·diag(d)·B for m-by-p A, m-by-q B, len(d)==m.
// This is the general bilinear kernel evaluated by polynomial-code workers,
// where A and B are *encoded* column-block partitions.
func ATDiagB(a *Dense, d []float64, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: ATDiagB row mismatch %d vs %d", a.rows, b.rows))
	}
	if len(d) != a.rows {
		panic(fmt.Sprintf("mat: ATDiagB d length %d want %d", len(d), a.rows))
	}
	out := New(a.cols, b.cols)
	kernel.ATDiagBRange(out.data, a.data, d, b.data, a.rows, a.cols, b.cols, 0, a.cols)
	return out
}

// ATDiagBRows computes only rows [lo,hi) of Aᵀ·diag(d)·B, the partial
// bilinear kernel an S2C2 worker runs under polynomial coding. Row p of the
// output depends on column p of A, i.e. entry a[i][p] for all i.
func ATDiagBRows(a *Dense, d []float64, b *Dense, lo, hi int) *Dense {
	if lo < 0 || hi > a.cols || lo > hi {
		panic(fmt.Sprintf("mat: ATDiagBRows range [%d,%d) out of %d", lo, hi, a.cols))
	}
	out := New(hi-lo, b.cols)
	ATDiagBRowsInto(a, d, b, lo, hi, out.data)
	return out
}

// ATDiagBRowsInto is ATDiagBRows writing row-major into a caller slice of
// length (hi-lo)·B.Cols().
//
//s2c2:noalloc
func ATDiagBRowsInto(a *Dense, d []float64, b *Dense, lo, hi int, dst []float64) {
	if lo < 0 || hi > a.cols || lo > hi {
		panic(fmt.Sprintf("mat: ATDiagBRows range [%d,%d) out of %d", lo, hi, a.cols))
	}
	if a.rows != b.rows || len(d) != a.rows {
		panic("mat: ATDiagBRows shape mismatch")
	}
	if len(dst) != (hi-lo)*b.cols {
		panic(fmt.Sprintf("mat: ATDiagBRows dst length %d want %d", len(dst), (hi-lo)*b.cols))
	}
	kernel.ATDiagBRange(dst, a.data, d, b.data, a.rows, a.cols, b.cols, lo, hi)
}
