package mat

import "fmt"

// MatVec computes y = A·x into a new slice.
func MatVec(a *Dense, x []float64) []float64 {
	y := make([]float64, a.rows)
	MatVecInto(a, x, y)
	return y
}

// MatVecInto computes y = A·x into the provided slice.
// len(x) must equal A's column count and len(y) its row count.
func MatVecInto(a *Dense, x, y []float64) {
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: MatVec x length %d want %d", len(x), a.cols))
	}
	if len(y) != a.rows {
		panic(fmt.Sprintf("mat: MatVec y length %d want %d", len(y), a.rows))
	}
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// MatVecRows computes (A·x)[lo:hi] — only the rows in [lo, hi) — into a
// new slice of length hi-lo. This is the kernel a coded-computing worker
// runs when S2C2 assigns it a sub-range of its partition.
func MatVecRows(a *Dense, x []float64, lo, hi int) []float64 {
	if lo < 0 || hi > a.rows || lo > hi {
		panic(fmt.Sprintf("mat: MatVecRows range [%d,%d) out of %d", lo, hi, a.rows))
	}
	if len(x) != a.cols {
		panic(fmt.Sprintf("mat: MatVecRows x length %d want %d", len(x), a.cols))
	}
	y := make([]float64, hi-lo)
	for i := lo; i < hi; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i-lo] = s
	}
	return y
}

// VecMat computes y = xᵀ·A (a row vector) into a new slice of length
// A.Cols(). It streams row-wise for cache efficiency.
func VecMat(x []float64, a *Dense) []float64 {
	if len(x) != a.rows {
		panic(fmt.Sprintf("mat: VecMat x length %d want %d", len(x), a.rows))
	}
	y := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			y[j] += xi * v
		}
	}
	return y
}

// MatMul computes C = A·B into a new matrix using an ikj loop order so the
// innermost loop streams both B and C rows.
func MatMul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: MatMul inner dim %d vs %d", a.cols, b.rows))
	}
	c := New(a.rows, b.cols)
	matMulInto(a, b, c, 0, a.rows)
	return c
}

// matMulInto computes rows [lo,hi) of C = A·B.
func matMulInto(a, b, c *Dense, lo, hi int) {
	n := b.cols
	for i := lo; i < hi; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		crow := c.data[i*n : (i+1)*n]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*n : (k+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// Transpose returns Aᵀ as a new matrix.
func Transpose(a *Dense) *Dense {
	t := New(a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			t.data[j*a.rows+i] = v
		}
	}
	return t
}

// MulDiagLeft computes diag(d)·A into a new matrix (scales row i by d[i]).
func MulDiagLeft(d []float64, a *Dense) *Dense {
	if len(d) != a.rows {
		panic(fmt.Sprintf("mat: MulDiagLeft d length %d want %d", len(d), a.rows))
	}
	out := a.Clone()
	for i := 0; i < a.rows; i++ {
		row := out.data[i*a.cols : (i+1)*a.cols]
		for j := range row {
			row[j] *= d[i]
		}
	}
	return out
}

// ATDiagA computes Aᵀ·diag(d)·A — the Hessian-style bilinear form used by
// the polynomial-coding workload. A is m-by-n, d has length m, and the
// result is n-by-n.
func ATDiagA(a *Dense, d []float64) *Dense {
	if len(d) != a.rows {
		panic(fmt.Sprintf("mat: ATDiagA d length %d want %d", len(d), a.rows))
	}
	n := a.cols
	out := New(n, n)
	// Accumulate rank-1 updates d[i] * a_i a_iᵀ where a_i is row i of A.
	for i := 0; i < a.rows; i++ {
		di := d[i]
		if di == 0 {
			continue
		}
		row := a.data[i*n : (i+1)*n]
		for p := 0; p < n; p++ {
			s := di * row[p]
			if s == 0 {
				continue
			}
			orow := out.data[p*n : (p+1)*n]
			for q, v := range row {
				orow[q] += s * v
			}
		}
	}
	return out
}

// ATDiagB computes Aᵀ·diag(d)·B for m-by-p A, m-by-q B, len(d)==m.
// This is the general bilinear kernel evaluated by polynomial-code workers,
// where A and B are *encoded* column-block partitions.
func ATDiagB(a *Dense, d []float64, b *Dense) *Dense {
	if a.rows != b.rows {
		panic(fmt.Sprintf("mat: ATDiagB row mismatch %d vs %d", a.rows, b.rows))
	}
	if len(d) != a.rows {
		panic(fmt.Sprintf("mat: ATDiagB d length %d want %d", len(d), a.rows))
	}
	out := New(a.cols, b.cols)
	for i := 0; i < a.rows; i++ {
		di := d[i]
		if di == 0 {
			continue
		}
		arow := a.data[i*a.cols : (i+1)*a.cols]
		brow := b.data[i*b.cols : (i+1)*b.cols]
		for p, av := range arow {
			s := di * av
			if s == 0 {
				continue
			}
			orow := out.data[p*b.cols : (p+1)*b.cols]
			for q, bv := range brow {
				orow[q] += s * bv
			}
		}
	}
	return out
}

// ATDiagBRows computes only rows [lo,hi) of Aᵀ·diag(d)·B, the partial
// bilinear kernel an S2C2 worker runs under polynomial coding. Row p of the
// output depends on column p of A, i.e. entry a[i][p] for all i.
func ATDiagBRows(a *Dense, d []float64, b *Dense, lo, hi int) *Dense {
	if lo < 0 || hi > a.cols || lo > hi {
		panic(fmt.Sprintf("mat: ATDiagBRows range [%d,%d) out of %d", lo, hi, a.cols))
	}
	if a.rows != b.rows || len(d) != a.rows {
		panic("mat: ATDiagBRows shape mismatch")
	}
	out := New(hi-lo, b.cols)
	for i := 0; i < a.rows; i++ {
		di := d[i]
		if di == 0 {
			continue
		}
		arow := a.data[i*a.cols : (i+1)*a.cols]
		brow := b.data[i*b.cols : (i+1)*b.cols]
		for p := lo; p < hi; p++ {
			s := di * arow[p]
			if s == 0 {
				continue
			}
			orow := out.data[(p-lo)*b.cols : (p-lo+1)*b.cols]
			for q, bv := range brow {
				orow[q] += s * bv
			}
		}
	}
	return out
}
