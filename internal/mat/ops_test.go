package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatVecKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := []float64{1, 0, -1}
	y := MatVec(a, x)
	want := []float64{-2, -2}
	if !VecApproxEqual(y, want, 1e-12) {
		t.Fatalf("MatVec = %v want %v", y, want)
	}
}

func TestMatVecRowsMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Rand(20, 9, rng)
	x := randVec(9, rng)
	full := MatVec(a, x)
	for lo := 0; lo <= 20; lo += 5 {
		for hi := lo; hi <= 20; hi += 5 {
			part := MatVecRows(a, x, lo, hi)
			if !VecApproxEqual(part, full[lo:hi], 1e-12) {
				t.Fatalf("MatVecRows[%d:%d] mismatch", lo, hi)
			}
		}
	}
}

func TestVecMatMatchesTransposedMatVec(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := Rand(13, 7, rng)
	x := randVec(13, rng)
	got := VecMat(x, a)
	want := MatVec(Transpose(a), x)
	if !VecApproxEqual(got, want, 1e-10) {
		t.Fatalf("VecMat = %v want %v", got, want)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewFromRows([][]float64{{5, 6}, {7, 8}})
	c := MatMul(a, b)
	want := NewFromRows([][]float64{{19, 22}, {43, 50}})
	if !c.ApproxEqual(want, 1e-12) {
		t.Fatalf("MatMul = %v want %v", c, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := Rand(6, 6, rng)
	if !MatMul(a, Identity(6)).ApproxEqual(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !MatMul(Identity(6), a).ApproxEqual(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMulDiagLeft(t *testing.T) {
	a := NewFromRows([][]float64{{1, 2}, {3, 4}})
	got := MulDiagLeft([]float64{2, -1}, a)
	want := NewFromRows([][]float64{{2, 4}, {-3, -4}})
	if !got.ApproxEqual(want, 1e-12) {
		t.Fatalf("MulDiagLeft = %v", got)
	}
}

func TestATDiagAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := Rand(15, 6, rng)
	d := randVec(15, rng)
	got := ATDiagA(a, d)
	want := MatMul(Transpose(a), MulDiagLeft(d, a))
	if !got.ApproxEqual(want, 1e-9) {
		t.Fatal("ATDiagA mismatch vs naive composition")
	}
}

func TestATDiagBMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := Rand(12, 5, rng)
	b := Rand(12, 4, rng)
	d := randVec(12, rng)
	got := ATDiagB(a, d, b)
	want := MatMul(Transpose(a), MulDiagLeft(d, b))
	if !got.ApproxEqual(want, 1e-9) {
		t.Fatal("ATDiagB mismatch vs naive composition")
	}
}

func TestATDiagBRowsMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := Rand(10, 8, rng)
	b := Rand(10, 3, rng)
	d := randVec(10, rng)
	full := ATDiagB(a, d, b)
	part := ATDiagBRows(a, d, b, 2, 6)
	for i := 0; i < 4; i++ {
		if !VecApproxEqual(part.Row(i), full.Row(i+2), 1e-9) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestParallelMatVecMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, rows := range []int{1, 63, 64, 257} {
		a := Rand(rows, 31, rng)
		x := randVec(31, rng)
		seq := MatVec(a, x)
		for _, w := range []int{1, 2, 4, 8} {
			par := ParallelMatVec(a, x, w)
			if !VecApproxEqual(seq, par, 1e-12) {
				t.Fatalf("rows=%d workers=%d mismatch", rows, w)
			}
		}
	}
}

func TestParallelMatMulMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := Rand(65, 40, rng)
	b := Rand(40, 23, rng)
	seq := MatMul(a, b)
	par := ParallelMatMul(a, b, 4)
	if !seq.ApproxEqual(par, 1e-10) {
		t.Fatal("parallel matmul mismatch")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, p, q := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a, b, c := Rand(m, n, r), Rand(n, p, r), Rand(p, q, r)
		return MatMul(MatMul(a, b), c).ApproxEqual(MatMul(a, MatMul(b, c)), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRowsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, rows := range []int{12, 13, 17} {
		a := Rand(rows, 5, rng)
		blocks := SplitRows(a, 4)
		if len(blocks) != 4 {
			t.Fatalf("got %d blocks", len(blocks))
		}
		re := VStack(blocks...)
		padded := PadRows(a, 4)
		if !re.Equal(padded) {
			t.Fatalf("rows=%d: reassembled != padded original", rows)
		}
	}
}

func TestSplitColsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := Rand(6, 10, rng)
	blocks := SplitCols(a, 3)
	re := HStack(blocks...)
	// Padded to 12 columns: first 10 must match, last 2 must be zero.
	for i := 0; i < 6; i++ {
		for j := 0; j < 10; j++ {
			if re.At(i, j) != a.At(i, j) {
				t.Fatalf("mismatch at (%d,%d)", i, j)
			}
		}
		for j := 10; j < 12; j++ {
			if re.At(i, j) != 0 {
				t.Fatalf("padding not zero at (%d,%d)", i, j)
			}
		}
	}
}

func TestPadRowsNoopWhenDivisible(t *testing.T) {
	a := New(8, 3)
	if PadRows(a, 4) != a {
		t.Fatal("PadRows should return the same matrix when divisible")
	}
	if PaddedRows(8, 4) != 8 || PaddedRows(9, 4) != 12 {
		t.Fatal("PaddedRows arithmetic wrong")
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if Norm1(x) != 7 {
		t.Fatalf("Norm1 = %v", Norm1(x))
	}
	if NormInf([]float64{-9, 2}) != 9 {
		t.Fatal("NormInf wrong")
	}
	if Dot(x, []float64{1, 1}) != 7 {
		t.Fatal("Dot wrong")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	z := CloneVec(x)
	z[0] = 0
	if x[0] != 3 {
		t.Fatal("CloneVec aliases")
	}
	n := Normalize([]float64{0, 0})
	if n != 0 {
		t.Fatal("Normalize of zero vector should return 0")
	}
	v := []float64{2, 2}
	Normalize(v)
	if Norm1(v) < 0.999 || Norm1(v) > 1.001 {
		t.Fatalf("Normalize: norm %v", Norm1(v))
	}
}
