package mat

import (
	"math/rand"
	"testing"
)

// Allocation-regression tests: the Into forms of the hot kernels must not
// allocate once destination storage exists.

func TestMatVecIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := Rand(256, 128, rng)
	x := randVec(128, rng)
	y := make([]float64, 256)
	if allocs := testing.AllocsPerRun(100, func() { MatVecInto(a, x, y) }); allocs != 0 {
		t.Fatalf("MatVecInto allocates %v/op, want 0", allocs)
	}
}

func TestMatVecRowsIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := Rand(256, 64, rng)
	x := randVec(64, rng)
	y := make([]float64, 100)
	if allocs := testing.AllocsPerRun(100, func() { MatVecRowsInto(a, x, y, 50, 150) }); allocs != 0 {
		t.Fatalf("MatVecRowsInto allocates %v/op, want 0", allocs)
	}
}

func TestMatMulIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := Rand(64, 64, rng)
	b := Rand(64, 64, rng)
	c := New(64, 64)
	// Warm the kernel's pack-buffer pool.
	for i := 0; i < 4; i++ {
		MatMulInto(a, b, c)
	}
	if allocs := testing.AllocsPerRun(100, func() { MatMulInto(a, b, c) }); allocs != 0 {
		t.Fatalf("MatMulInto allocates %v/op in steady state, want 0", allocs)
	}
}

func TestLUSolveIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := Rand(12, 12, rng)
	for i := 0; i < 12; i++ {
		a.Set(i, i, a.At(i, i)+12) // diagonally dominant: well-conditioned
	}
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(12, rng)
	x := make([]float64, 12)
	if allocs := testing.AllocsPerRun(100, func() { f.SolveInto(x, b) }); allocs != 0 {
		t.Fatalf("LU.SolveInto allocates %v/op, want 0", allocs)
	}
}

func TestVecMatIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	a := Rand(100, 50, rng)
	x := randVec(100, rng)
	y := make([]float64, 50)
	if allocs := testing.AllocsPerRun(100, func() { VecMatInto(x, a, y) }); allocs != 0 {
		t.Fatalf("VecMatInto allocates %v/op, want 0", allocs)
	}
}
