package mat

import (
	"math/rand"
	"testing"
)

// Regression tests for the band-split edge cases of the parallel
// multipliers: worker counts exceeding the row count, zero-row and
// zero-column matrices, and row counts that do not divide evenly.

func TestParallelMatVecWorkersExceedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, rows := range []int{1, 2, 3, 5} {
		a := Rand(rows, 17, rng)
		x := randVec(17, rng)
		want := MatVec(a, x)
		for _, w := range []int{rows + 1, 4 * rows, 64} {
			got := ParallelMatVec(a, x, w)
			if !VecApproxEqual(got, want, 1e-12) {
				t.Fatalf("rows=%d workers=%d: mismatch", rows, w)
			}
		}
	}
}

func TestParallelMatVecZeroRows(t *testing.T) {
	a := New(0, 5)
	x := make([]float64, 5)
	for _, w := range []int{-1, 0, 1, 8} {
		y := ParallelMatVec(a, x, w)
		if len(y) != 0 {
			t.Fatalf("workers=%d: got %d rows", w, len(y))
		}
	}
}

func TestParallelMatVecZeroCols(t *testing.T) {
	a := New(4, 0)
	y := ParallelMatVec(a, nil, 3)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("row %d = %v, want 0", i, v)
		}
	}
}

func TestParallelMatMulWorkersExceedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, m := range []int{1, 2, 3} {
		a := Rand(m, 6, rng)
		b := Rand(6, 9, rng)
		want := MatMul(a, b)
		for _, w := range []int{m + 1, 16} {
			got := ParallelMatMul(a, b, w)
			if !want.ApproxEqual(got, 1e-12) {
				t.Fatalf("m=%d workers=%d: mismatch", m, w)
			}
		}
	}
}

func TestParallelMatMulZeroRows(t *testing.T) {
	a := New(0, 4)
	b := New(4, 3)
	c := ParallelMatMul(a, b, 8)
	if r, cc := c.Dims(); r != 0 || cc != 3 {
		t.Fatalf("got %dx%d, want 0x3", r, cc)
	}
}

func TestParallelMatMulUnevenBands(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	// 67 rows across 4 participants: bands of unequal size.
	a := Rand(67, 31, rng)
	b := Rand(31, 29, rng)
	want := MatMul(a, b)
	got := ParallelMatMul(a, b, 4)
	if !want.ApproxEqual(got, 1e-10) {
		t.Fatal("uneven band split mismatch")
	}
}

func TestParallelMatVecNegativeWorkersUsesPool(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := Rand(200, 40, rng)
	x := randVec(40, rng)
	want := MatVec(a, x)
	if !VecApproxEqual(ParallelMatVec(a, x, -3), want, 1e-12) {
		t.Fatal("negative workers mismatch")
	}
}
