package coding

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/kernel"
)

// GFMDSCode is the exact (n,k) MDS code over GF(2³¹−1). Its generator is a
// Vandermonde matrix with distinct evaluation points, so any k rows are
// provably invertible and decoding is bit-exact. It backs property tests
// and offers an exact coding path for integer payloads.
type GFMDSCode struct {
	n, k int
	gen  *gf.Matrix // n×k Vandermonde
	exec kernel.Exec
}

// NewGFMDSCode builds an exact (n,k) code.
func NewGFMDSCode(n, k int) (*GFMDSCode, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("coding: invalid GF MDS parameters n=%d k=%d", n, k)
	}
	xs := make([]gf.Elem, n)
	for i := range xs {
		xs[i] = gf.Elem(i + 1) // distinct nonzero points
	}
	return &GFMDSCode{n: n, k: k, gen: gf.Vandermonde(xs, k)}, nil
}

// SetExec pins the code's parallel encode loops to the given pool and
// fan-out; the zero Exec uses the shared kernel pool with full fan-out.
func (c *GFMDSCode) SetExec(e kernel.Exec) { c.exec = e }

// N returns the number of coded partitions.
func (c *GFMDSCode) N() int { return c.n }

// K returns the recovery threshold.
func (c *GFMDSCode) K() int { return c.k }

// GFEncodedMatrix holds the coded partitions of a field-valued matrix,
// stored as n slices of row-major blocks.
type GFEncodedMatrix struct {
	Code      *GFMDSCode
	OrigRows  int
	Cols      int
	BlockRows int
	Parts     []*gf.Matrix
}

// Encode splits the rows*cols data (row-major) into k row blocks, padding
// with zeros, and emits n Vandermonde-coded partitions.
func (c *GFMDSCode) Encode(rows, cols int, data []gf.Elem) (*GFEncodedMatrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("coding: data length %d want %d", len(data), rows*cols)
	}
	blockRows := (rows + c.k - 1) / c.k
	blocks := make([]*gf.Matrix, c.k)
	for b := 0; b < c.k; b++ {
		m := gf.NewMatrix(blockRows, cols)
		for r := 0; r < blockRows; r++ {
			src := b*blockRows + r
			if src >= rows {
				break
			}
			copy(m.Row(r), data[src*cols:(src+1)*cols])
		}
		blocks[b] = m
	}
	parts := make([]*gf.Matrix, c.n)
	for i := 0; i < c.n; i++ {
		parts[i] = gf.NewMatrix(blockRows, cols)
	}
	// Band-split the field mixing across the pool: each participant owns
	// rows [lo, hi) of every partition. The inner sweep is the gf.Axpy
	// mul-accumulate kernel, not a scalar Add/Mul chain.
	c.exec.For(blockRows, encodeChunk(c.n, c.k, cols), func(lo, hi int) {
		for i := 0; i < c.n; i++ {
			p := parts[i]
			for j := 0; j < c.k; j++ {
				g := c.gen.At(i, j)
				if g == 0 {
					continue
				}
				for r := lo; r < hi; r++ {
					gf.Axpy(p.Row(r), g, blocks[j].Row(r))
				}
			}
		}
	})
	return &GFEncodedMatrix{Code: c, OrigRows: rows, Cols: cols, BlockRows: blockRows, Parts: parts}, nil
}

// WorkerMatVec computes rows [ranges] of Ã_w·x over the field through the
// dot-lane kernel (gf.Matrix.MulVecRangeInto).
func (e *GFEncodedMatrix) WorkerMatVec(w int, x []gf.Elem, ranges []Range) (*GFPartial, error) {
	if len(x) != e.Cols {
		return nil, fmt.Errorf("coding: x length %d want %d", len(x), e.Cols)
	}
	ranges = NormalizeRanges(ranges)
	vals := make([]gf.Elem, TotalRows(ranges))
	part := e.Parts[w]
	at := 0
	for _, r := range ranges {
		part.MulVecRangeInto(vals[at:at+r.Len()], x, r.Lo, r.Hi)
		at += r.Len()
	}
	return &GFPartial{Worker: w, Ranges: ranges, RowWidth: 1, Values: vals}, nil
}

// WorkerMatVecBatch computes rows [ranges] of Ã_w·[x_0 … x_{width-1}]
// over the field, the x-vectors concatenated in xs: one sweep of the
// partition rows serves every lane. The returned partial carries
// RowWidth = width with row-major width-wide Values, exactly equal to
// width WorkerMatVec calls lane by lane.
func (e *GFEncodedMatrix) WorkerMatVecBatch(w int, xs []gf.Elem, width int, ranges []Range) (*GFPartial, error) {
	if width < 1 {
		return nil, fmt.Errorf("coding: batch width %d", width)
	}
	if len(xs) != width*e.Cols {
		return nil, fmt.Errorf("coding: xs length %d want %d", len(xs), width*e.Cols)
	}
	ranges = NormalizeRanges(ranges)
	vals := make([]gf.Elem, TotalRows(ranges)*width)
	part := e.Parts[w]
	at := 0
	for _, r := range ranges {
		part.MulVecBatchRangeInto(vals[at:at+r.Len()*width], xs, width, r.Lo, r.Hi)
		at += r.Len() * width
	}
	return &GFPartial{Worker: w, Ranges: ranges, RowWidth: width, Values: vals}, nil
}

// GFPartial is a worker's exact partial result: RowWidth field elements
// per covered row (lane l of row r at Values[r*RowWidth+l], rows in range
// order). RowWidth 0 is read as 1 so zero-valued partials from single-x
// paths stay valid.
type GFPartial struct {
	Worker   int
	Ranges   []Range
	RowWidth int
	Values   []gf.Elem
}

// Width returns the partial's row width, treating the zero value as 1.
func (p *GFPartial) Width() int {
	if p.RowWidth <= 0 {
		return 1
	}
	return p.RowWidth
}

// gfInvSet caches one inverted decode system per distinct worker set.
type gfInvSet struct {
	workers []int
	inv     *gf.Matrix
}

// gfDecodeGroupLanes bounds the gather/apply scratch of the grouped
// decode solve: a run of same-worker-set rows is split so one group's
// right-hand-side block holds at most this many lanes (columns), keeping
// ws.bm/ws.zm at k·gfDecodeGroupLanes elements regardless of BlockRows.
const gfDecodeGroupLanes = 4096

// GFDecodeWorkspace holds reusable decode state for one GFEncodedMatrix:
// the per-worker row index (the shared generic rowTable), cached inverted
// systems, and the grouped-solve scratch (bm gathers the right-hand-side
// block of a same-worker-set row run, zm receives inv·bm, bmat is the
// reused matrix view over bm). Not safe for concurrent decodes.
type GFDecodeWorkspace struct {
	table   rowTable[gf.Elem]
	sets    []*gfInvSet
	workers []int
	next    []int
	bm, zm  []gf.Elem
	bmat    gf.Matrix
	out     []gf.Elem
}

// NewDecodeWorkspace returns an empty decode workspace for e.
// A constructor allocates by definition; rounds reuse the workspace.
//
//s2c2:noalloc-waive
func (e *GFEncodedMatrix) NewDecodeWorkspace() *GFDecodeWorkspace {
	k := e.Code.k
	return &GFDecodeWorkspace{
		workers: make([]int, 0, k),
		next:    make([]int, 0, k),
		out:     make([]gf.Elem, e.BlockRows*k),
	}
}

// DecodeMatVec reconstructs A·x exactly from partials covering every
// partition row with at least k workers.
func (e *GFEncodedMatrix) DecodeMatVec(partials []*GFPartial) ([]gf.Elem, error) {
	return e.DecodeMatVecInto(nil, partials, nil)
}

// DecodeMatVecInto is DecodeMatVec writing into dst (length
// OrigRows·width, where width is the partials' common RowWidth; nil
// allocates it), reusing ws across rounds: inverted decode systems are
// cached per distinct worker set and index/scratch storage is recycled.
// Runs of consecutive rows covered by the same worker set apply the
// cached inverse to all of the run's rows and lanes as one k×k·k×(rows·
// width) mat-mul (gf.Matrix.MulRangeInto — the vectorized exact kernel)
// rather than per-row per-lane mat-vec solves. Field arithmetic is
// exact, so grouping cannot change any value: lane l of the result is
// bit-identical to decoding that lane's partials alone; dst is row-major
// width-wide (lane l of row r at dst[r*width+l]).
//
//s2c2:noalloc
func (e *GFEncodedMatrix) DecodeMatVecInto(dst []gf.Elem, partials []*GFPartial, ws *GFDecodeWorkspace) ([]gf.Elem, error) {
	if ws == nil {
		ws = e.NewDecodeWorkspace()
	}
	k := e.Code.k
	// Index rows via the shared generic rowTable, reusing per-worker
	// slices from previous rounds.
	ws.table.reset(e.BlockRows)
	for _, p := range partials {
		if err := ws.table.add(p.Worker, p.Ranges, p.Values, p.Width()); err != nil {
			return nil, err
		}
	}
	width := ws.table.rowWidth
	if width == 0 {
		width = 1
	}
	if dst != nil && len(dst) != e.OrigRows*width {
		return nil, fmt.Errorf("coding: decode dst length %d want %d", len(dst), e.OrigRows*width)
	}
	if cap(ws.out) < e.BlockRows*k*width {
		//s2c2:waive noalloc — capacity growth, first decode at this shape only
		ws.out = make([]gf.Elem, e.BlockRows*k*width)
	}
	ws.out = ws.out[:e.BlockRows*k*width]
	maxGroupRows := gfDecodeGroupLanes / width
	if maxGroupRows < 1 {
		maxGroupRows = 1
	}
	var cur *gfInvSet
	for row := 0; row < e.BlockRows; {
		ws.workers = ws.table.appendWorkersForRow(ws.workers, row, k)
		if len(ws.workers) < k {
			return nil, fmt.Errorf("%w: row %d covered by %d of %d workers", ErrInsufficient, row, len(ws.workers), k)
		}
		sortInts(ws.workers) // canonical order: cache key ignores arrival order
		if cur == nil || !sameWorkers(cur.workers, ws.workers) {
			cur = nil
			for _, s := range ws.sets {
				if sameWorkers(s.workers, ws.workers) {
					cur = s
					break
				}
			}
			if cur == nil {
				// Cache miss: invert a fresh decode system — once per
				// distinct worker set, never in a warm round.
				//s2c2:waive noalloc
				sub := gf.NewMatrix(k, k)
				for i, w := range ws.workers {
					copy(sub.Row(i), e.Code.gen.Row(w))
				}
				inv, invertible := gf.Invert(sub)
				if !invertible {
					return nil, fmt.Errorf("coding: GF decode set %v singular", ws.workers)
				}
				//s2c2:waive noalloc — cache-miss continuation of the branch above
				cur = &gfInvSet{workers: append([]int(nil), ws.workers...), inv: inv}
				if len(ws.sets) >= maxCachedSets {
					ws.sets = ws.sets[:0]
				}
				//s2c2:waive noalloc — bounded by maxCachedSets
				ws.sets = append(ws.sets, cur)
			}
		}
		// Extend the group: consecutive rows decoded by the same worker
		// set share cur.inv, so they ride one mat-mul application instead
		// of per-row per-lane mat-vec solves. In the common straggler
		// pattern — each worker computing a contiguous row range — the
		// whole block is a handful of runs.
		end := row + 1
		for end < e.BlockRows && end-row < maxGroupRows {
			ws.next = ws.table.appendWorkersForRow(ws.next, end, k)
			if len(ws.next) < k {
				break // the next iteration reports the coverage error
			}
			sortInts(ws.next)
			if !sameWorkers(ws.next, ws.workers) {
				break
			}
			end++
		}
		gw := (end - row) * width // right-hand-side lanes in this group
		if cap(ws.bm) < k*gw {
			//s2c2:waive noalloc — capacity growth, first decode at this shape only
			ws.bm = make([]gf.Elem, k*gw)
			//s2c2:waive noalloc — grown alongside bm
			ws.zm = make([]gf.Elem, k*gw)
		}
		bm, zm := ws.bm[:k*gw], ws.zm[:k*gw]
		// Gather: bm row i holds worker ws.workers[i]'s values for rows
		// [row, end), width lanes per row — contiguous in both tables.
		for i, w := range ws.workers {
			for g := 0; g < end-row; g++ {
				copy(bm[i*gw+g*width:i*gw+(g+1)*width], ws.table.rowValue(w, row+g)[:width])
			}
		}
		ws.bmat.Reshape(k, gw, bm)
		cur.inv.MulRangeInto(zm, &ws.bmat, 0, k)
		// Scatter: zm row j is exactly ws.out's contiguous run for coded
		// row j, block rows [row, end).
		for j := 0; j < k; j++ {
			copy(ws.out[(j*e.BlockRows+row)*width:][:gw], zm[j*gw:(j+1)*gw])
		}
		row = end
	}
	if dst == nil {
		// Convenience fallback; hot callers pass a reused dst.
		//s2c2:waive noalloc
		dst = make([]gf.Elem, e.OrigRows*width)
	}
	copy(dst, ws.out[:e.OrigRows*width])
	return dst, nil
}
