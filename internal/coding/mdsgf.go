package coding

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/gf"
)

// GFMDSCode is the exact (n,k) MDS code over GF(2³¹−1). Its generator is a
// Vandermonde matrix with distinct evaluation points, so any k rows are
// provably invertible and decoding is bit-exact. It backs property tests
// and offers an exact coding path for integer payloads.
type GFMDSCode struct {
	n, k int
	gen  *gf.Matrix // n×k Vandermonde
}

// NewGFMDSCode builds an exact (n,k) code.
func NewGFMDSCode(n, k int) (*GFMDSCode, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("coding: invalid GF MDS parameters n=%d k=%d", n, k)
	}
	xs := make([]gf.Elem, n)
	for i := range xs {
		xs[i] = gf.Elem(i + 1) // distinct nonzero points
	}
	return &GFMDSCode{n: n, k: k, gen: gf.Vandermonde(xs, k)}, nil
}

// N returns the number of coded partitions.
func (c *GFMDSCode) N() int { return c.n }

// K returns the recovery threshold.
func (c *GFMDSCode) K() int { return c.k }

// GFEncodedMatrix holds the coded partitions of a field-valued matrix,
// stored as n slices of row-major blocks.
type GFEncodedMatrix struct {
	Code      *GFMDSCode
	OrigRows  int
	Cols      int
	BlockRows int
	Parts     []*gf.Matrix
}

// Encode splits the rows*cols data (row-major) into k row blocks, padding
// with zeros, and emits n Vandermonde-coded partitions.
func (c *GFMDSCode) Encode(rows, cols int, data []gf.Elem) (*GFEncodedMatrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("coding: data length %d want %d", len(data), rows*cols)
	}
	blockRows := (rows + c.k - 1) / c.k
	blocks := make([]*gf.Matrix, c.k)
	for b := 0; b < c.k; b++ {
		m := gf.NewMatrix(blockRows, cols)
		for r := 0; r < blockRows; r++ {
			src := b*blockRows + r
			if src >= rows {
				break
			}
			copy(m.Row(r), data[src*cols:(src+1)*cols])
		}
		blocks[b] = m
	}
	parts := make([]*gf.Matrix, c.n)
	for i := 0; i < c.n; i++ {
		p := gf.NewMatrix(blockRows, cols)
		for j := 0; j < c.k; j++ {
			g := c.gen.At(i, j)
			if g == 0 {
				continue
			}
			for r := 0; r < blockRows; r++ {
				prow, brow := p.Row(r), blocks[j].Row(r)
				for q := range prow {
					prow[q] = gf.Add(prow[q], gf.Mul(g, brow[q]))
				}
			}
		}
		parts[i] = p
	}
	return &GFEncodedMatrix{Code: c, OrigRows: rows, Cols: cols, BlockRows: blockRows, Parts: parts}, nil
}

// WorkerMatVec computes rows [ranges] of Ã_w·x over the field.
func (e *GFEncodedMatrix) WorkerMatVec(w int, x []gf.Elem, ranges []Range) (*GFPartial, error) {
	if len(x) != e.Cols {
		return nil, fmt.Errorf("coding: x length %d want %d", len(x), e.Cols)
	}
	ranges = NormalizeRanges(ranges)
	vals := make([]gf.Elem, 0, TotalRows(ranges))
	part := e.Parts[w]
	for _, r := range ranges {
		for row := r.Lo; row < r.Hi; row++ {
			prow := part.Row(row)
			var acc gf.Elem
			for j, v := range prow {
				acc = gf.Add(acc, gf.Mul(v, x[j]))
			}
			vals = append(vals, acc)
		}
	}
	return &GFPartial{Worker: w, Ranges: ranges, Values: vals}, nil
}

// GFPartial is a worker's exact partial result (one field element per row).
type GFPartial struct {
	Worker int
	Ranges []Range
	Values []gf.Elem
}

// DecodeMatVec reconstructs A·x exactly from partials covering every
// partition row with at least k workers.
func (e *GFEncodedMatrix) DecodeMatVec(partials []*GFPartial) ([]gf.Elem, error) {
	k := e.Code.k
	// Index rows.
	offsets := make(map[int][]int, len(partials))
	values := make(map[int][]gf.Elem, len(partials))
	var order []int
	for _, p := range partials {
		off, ok := offsets[p.Worker]
		if !ok {
			off = make([]int, e.BlockRows)
			for i := range off {
				off[i] = -1
			}
			offsets[p.Worker] = off
			order = append(order, p.Worker)
		}
		vals := values[p.Worker]
		base := len(vals)
		vals = append(vals, p.Values...)
		values[p.Worker] = vals
		at := base
		for _, r := range p.Ranges {
			for row := r.Lo; row < r.Hi; row++ {
				if row < 0 || row >= e.BlockRows {
					return nil, fmt.Errorf("coding: row %d outside partition", row)
				}
				off[row] = at
				at++
			}
		}
	}
	out := make([]gf.Elem, e.BlockRows*k)
	invCache := map[string]*gf.Matrix{}
	workers := make([]int, 0, k)
	b := make([]gf.Elem, k)
	for row := 0; row < e.BlockRows; row++ {
		workers = workers[:0]
		for _, w := range order {
			if offsets[w][row] >= 0 {
				workers = append(workers, w)
				if len(workers) == k {
					break
				}
			}
		}
		if len(workers) < k {
			return nil, fmt.Errorf("%w: row %d covered by %d of %d workers", ErrInsufficient, row, len(workers), k)
		}
		key := setKey(workers)
		inv, ok := invCache[key]
		if !ok {
			sub := gf.NewMatrix(k, k)
			for i, w := range workers {
				copy(sub.Row(i), e.Code.gen.Row(w))
			}
			var invertible bool
			inv, invertible = gf.Invert(sub)
			if !invertible {
				return nil, fmt.Errorf("coding: GF decode set %v singular", workers)
			}
			invCache[key] = inv
		}
		for i, w := range workers {
			b[i] = values[w][offsets[w][row]]
		}
		z := inv.MulVec(b)
		for j := 0; j < k; j++ {
			out[j*e.BlockRows+row] = z[j]
		}
	}
	return out[:e.OrigRows], nil
}
