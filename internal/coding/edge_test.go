package coding

import (
	"math/rand"
	"testing"

	"github.com/coded-computing/s2c2/internal/mat"
)

// Edge cases around the partial-result model: duplicates, overlaps, and
// degenerate code parameters.

func TestDecodeWithDuplicatePartialsFromSameWorker(t *testing.T) {
	// A worker may answer in several messages (e.g. after reassignment);
	// overlapping ranges from the same worker must not break decoding.
	rng := rand.New(rand.NewSource(51))
	a := mat.Rand(12, 4, rng)
	x := randVec(4, rng)
	want := mat.MatVec(a, x)
	c, _ := NewMDSCode(4, 2)
	enc := c.Encode(a)
	br := enc.BlockRows
	partials := []*Partial{
		enc.WorkerCompute(0, x, []Range{{0, br}}),
		enc.WorkerCompute(0, x, []Range{{0, br / 2}}), // duplicate coverage
		enc.WorkerCompute(1, x, []Range{{0, br}}),
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, want, 1e-9) {
		t.Fatal("duplicate partials changed the decode")
	}
}

func TestDecodeMoreThanKCoverageUsesFirstK(t *testing.T) {
	// Over-coverage (all n workers answering fully) must decode fine.
	rng := rand.New(rand.NewSource(52))
	a := mat.Rand(20, 5, rng)
	x := randVec(5, rng)
	want := mat.MatVec(a, x)
	c, _ := NewMDSCode(6, 3)
	enc := c.Encode(a)
	var partials []*Partial
	for w := 0; w < 6; w++ {
		partials = append(partials, enc.WorkerCompute(w, x, []Range{{0, enc.BlockRows}}))
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, want, 1e-9) {
		t.Fatal("over-coverage decode mismatch")
	}
}

func TestK1CodeIsReplication(t *testing.T) {
	// (n,1)-MDS is n-way replication: every partition equals A itself and
	// any single worker decodes.
	rng := rand.New(rand.NewSource(53))
	a := mat.Rand(7, 3, rng)
	x := randVec(3, rng)
	want := mat.MatVec(a, x)
	c, _ := NewMDSCode(3, 1)
	enc := c.Encode(a)
	for w := 0; w < 3; w++ {
		p := enc.WorkerCompute(w, x, []Range{{0, enc.BlockRows}})
		got, err := enc.DecodeMatVec([]*Partial{p})
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
		if !mat.VecApproxEqual(got, want, 1e-8) {
			t.Fatalf("worker %d: (3,1) decode mismatch", w)
		}
	}
}

func TestKEqualsNCodeIsUncoded(t *testing.T) {
	// (n,n)-MDS has zero redundancy: every worker is required.
	rng := rand.New(rand.NewSource(54))
	a := mat.Rand(12, 3, rng)
	x := randVec(3, rng)
	want := mat.MatVec(a, x)
	c, _ := NewMDSCode(4, 4)
	enc := c.Encode(a)
	var partials []*Partial
	for w := 0; w < 4; w++ {
		partials = append(partials, enc.WorkerCompute(w, x, []Range{{0, enc.BlockRows}}))
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, want, 1e-9) {
		t.Fatal("(4,4) decode mismatch")
	}
	// Dropping any worker must fail.
	if _, err := enc.DecodeMatVec(partials[:3]); err == nil {
		t.Fatal("(4,4) should need every worker")
	}
}

func TestWorkerComputeEmptyRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a := mat.Rand(8, 2, rng)
	c, _ := NewMDSCode(4, 2)
	enc := c.Encode(a)
	p := enc.WorkerCompute(0, []float64{1, 1}, nil)
	if p.NumRows() != 0 || len(p.Values) != 0 {
		t.Fatal("empty assignment should produce an empty partial")
	}
}

func TestDecodeRejectsWrongRowWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	a := mat.Rand(8, 2, rng)
	c, _ := NewMDSCode(4, 2)
	enc := c.Encode(a)
	p := enc.WorkerCompute(0, []float64{1, 1}, []Range{{0, enc.BlockRows}})
	p.RowWidth = 2
	p.Values = append(p.Values, p.Values...)
	if _, err := enc.DecodeMatVec([]*Partial{p}); err == nil {
		t.Fatal("RowWidth != 1 must be rejected by DecodeMatVec")
	}
}

func TestGeneratorRowIsCopy(t *testing.T) {
	c, _ := NewMDSCode(4, 2)
	row := c.GeneratorRow(3)
	row[0] = 999
	if c.GeneratorRow(3)[0] == 999 {
		t.Fatal("GeneratorRow must return a copy")
	}
}

func TestPolySingleBlockGrid(t *testing.T) {
	// a=b=1: the product decodes from any single worker.
	rng := rand.New(rand.NewSource(57))
	a := mat.Rand(6, 4, rng)
	b := mat.Rand(6, 3, rng)
	d := randVec(6, rng)
	want := mat.ATDiagB(a, d, b)
	c, err := NewPolyCode(3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.EncodeBilinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p := enc.WorkerCompute(2, d, []Range{{0, enc.BlockColsA}})
	got, err := enc.Decode([]*Partial{p})
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, 1e-8) {
		t.Fatal("(3,1,1) single-worker decode mismatch")
	}
}

func TestPolyHessianRequiresSquareGrid(t *testing.T) {
	c, _ := NewPolyCode(7, 3, 2)
	rng := rand.New(rand.NewSource(58))
	if _, err := c.EncodeHessian(mat.Rand(4, 6, rng)); err == nil {
		t.Fatal("EncodeHessian with a != b must fail")
	}
}

func TestPolyBilinearRowMismatch(t *testing.T) {
	c, _ := NewPolyCode(5, 2, 2)
	rng := rand.New(rand.NewSource(59))
	if _, err := c.EncodeBilinear(mat.Rand(4, 4, rng), mat.Rand(5, 4, rng)); err == nil {
		t.Fatal("row-count mismatch must fail")
	}
}
