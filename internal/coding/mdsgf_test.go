package coding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coded-computing/s2c2/internal/gf"
)

func gfMatVec(rows, cols int, data, x []gf.Elem) []gf.Elem {
	y := make([]gf.Elem, rows)
	for i := 0; i < rows; i++ {
		var acc gf.Elem
		for j := 0; j < cols; j++ {
			acc = gf.Add(acc, gf.Mul(data[i*cols+j], x[j]))
		}
		y[i] = acc
	}
	return y
}

func randGFData(n int, rng *rand.Rand) []gf.Elem {
	out := make([]gf.Elem, n)
	for i := range out {
		out[i] = gf.New(rng.Uint64())
	}
	return out
}

// The headline MDS property, bit-exact: for random (n,k), any k of n
// full-partition results decode to exactly A·x.
func TestGFMDSAnyKOfNExactProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		k := 1 + r.Intn(n)
		rows := 1 + r.Intn(20)
		cols := 1 + r.Intn(5)
		data := randGFData(rows*cols, r)
		x := randGFData(cols, r)
		want := gfMatVec(rows, cols, data, x)

		c, err := NewGFMDSCode(n, k)
		if err != nil {
			return false
		}
		enc, err := c.Encode(rows, cols, data)
		if err != nil {
			return false
		}
		var partials []*GFPartial
		for _, w := range r.Perm(n)[:k] {
			p, err := enc.WorkerMatVec(w, x, []Range{{0, enc.BlockRows}})
			if err != nil {
				return false
			}
			partials = append(partials, p)
		}
		got, err := enc.DecodeMatVec(partials)
		if err != nil {
			return false
		}
		if len(got) != rows {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestGFMDSPartialCoverageExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rows, cols := 24, 3
	data := randGFData(rows*cols, rng)
	x := randGFData(cols, rng)
	want := gfMatVec(rows, cols, data, x)

	c, _ := NewGFMDSCode(4, 2)
	enc, err := c.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	br := enc.BlockRows
	third := br / 3
	assignments := map[int][]Range{
		0: {{0, 2 * third}},
		1: {{0, third}, {2 * third, br}},
		2: {{third, br}},
	}
	var partials []*GFPartial
	for w, ranges := range assignments {
		p, err := enc.WorkerMatVec(w, x, ranges)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestGFMDSInsufficient(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := randGFData(12, rng)
	c, _ := NewGFMDSCode(4, 3)
	enc, err := c.Encode(6, 2, data)
	if err != nil {
		t.Fatal(err)
	}
	x := randGFData(2, rng)
	p, _ := enc.WorkerMatVec(0, x, []Range{{0, enc.BlockRows}})
	if _, err := enc.DecodeMatVec([]*GFPartial{p}); err == nil {
		t.Fatal("expected insufficient-coverage error")
	}
}

func TestGFMDSValidation(t *testing.T) {
	if _, err := NewGFMDSCode(2, 3); err == nil {
		t.Fatal("k>n must fail")
	}
	c, _ := NewGFMDSCode(3, 2)
	if _, err := c.Encode(2, 2, make([]gf.Elem, 3)); err == nil {
		t.Fatal("bad data length must fail")
	}
}
