package coding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coded-computing/s2c2/internal/gf"
)

func gfMatVec(rows, cols int, data, x []gf.Elem) []gf.Elem {
	y := make([]gf.Elem, rows)
	for i := 0; i < rows; i++ {
		var acc gf.Elem
		for j := 0; j < cols; j++ {
			acc = gf.Add(acc, gf.Mul(data[i*cols+j], x[j]))
		}
		y[i] = acc
	}
	return y
}

func randGFData(n int, rng *rand.Rand) []gf.Elem {
	out := make([]gf.Elem, n)
	for i := range out {
		out[i] = gf.New(rng.Uint64())
	}
	return out
}

// The headline MDS property, bit-exact: for random (n,k), any k of n
// full-partition results decode to exactly A·x.
func TestGFMDSAnyKOfNExactProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		k := 1 + r.Intn(n)
		rows := 1 + r.Intn(20)
		cols := 1 + r.Intn(5)
		data := randGFData(rows*cols, r)
		x := randGFData(cols, r)
		want := gfMatVec(rows, cols, data, x)

		c, err := NewGFMDSCode(n, k)
		if err != nil {
			return false
		}
		enc, err := c.Encode(rows, cols, data)
		if err != nil {
			return false
		}
		var partials []*GFPartial
		for _, w := range r.Perm(n)[:k] {
			p, err := enc.WorkerMatVec(w, x, []Range{{0, enc.BlockRows}})
			if err != nil {
				return false
			}
			partials = append(partials, p)
		}
		got, err := enc.DecodeMatVec(partials)
		if err != nil {
			return false
		}
		if len(got) != rows {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestGFMDSPartialCoverageExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rows, cols := 24, 3
	data := randGFData(rows*cols, rng)
	x := randGFData(cols, rng)
	want := gfMatVec(rows, cols, data, x)

	c, _ := NewGFMDSCode(4, 2)
	enc, err := c.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	br := enc.BlockRows
	third := br / 3
	assignments := map[int][]Range{
		0: {{0, 2 * third}},
		1: {{0, third}, {2 * third, br}},
		2: {{third, br}},
	}
	var partials []*GFPartial
	for w, ranges := range assignments {
		p, err := enc.WorkerMatVec(w, x, ranges)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// TestGFMDSBatchDecodeGrouped drives the grouped decode solve through
// both of its boundary kinds: worker-set changes mid-block (short runs,
// including single-row groups) and a uniform-set block whose lane count
// forces the gfDecodeGroupLanes cap to split one run into several
// mat-mul applications. Every lane must decode bit-identical to the
// scalar reference.
func TestGFMDSBatchDecodeGrouped(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	check := func(t *testing.T, n, k, rows, cols, width int, assign func(br int) map[int][]Range) {
		t.Helper()
		data := randGFData(rows*cols, rng)
		xs := randGFData(width*cols, rng)
		c, err := NewGFMDSCode(n, k)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := c.Encode(rows, cols, data)
		if err != nil {
			t.Fatal(err)
		}
		var partials []*GFPartial
		for w, ranges := range assign(enc.BlockRows) {
			p, err := enc.WorkerMatVecBatch(w, xs, width, ranges)
			if err != nil {
				t.Fatal(err)
			}
			partials = append(partials, p)
		}
		ws := enc.NewDecodeWorkspace()
		got, err := enc.DecodeMatVecInto(make([]gf.Elem, rows*width), partials, ws)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < width; l++ {
			want := gfMatVec(rows, cols, data, xs[l*cols:(l+1)*cols])
			for i := range want {
				if got[i*width+l] != want[i] {
					t.Fatalf("lane %d row %d: got %d want %d", l, i, got[i*width+l], want[i])
				}
			}
		}
		// A second decode through the same workspace must reuse the cached
		// inverses and scratch and still be exact.
		got2, err := enc.DecodeMatVecInto(got, partials, ws)
		if err != nil {
			t.Fatal(err)
		}
		for l := 0; l < width; l++ {
			want := gfMatVec(rows, cols, data, xs[l*cols:(l+1)*cols])
			for i := range want {
				if got2[i*width+l] != want[i] {
					t.Fatalf("warm lane %d row %d: got %d want %d", l, i, got2[i*width+l], want[i])
				}
			}
		}
	}
	t.Run("alternating-sets", func(t *testing.T) {
		// Rows flip between {0,1} and {1,2} coverage every few rows, plus a
		// region all three cover — groups of length 1..4 with cache hits.
		check(t, 3, 2, 24, 3, 5, func(br int) map[int][]Range {
			return map[int][]Range{
				0: {{0, 3}, {6, 9}, {12, br}},
				1: {{0, br}},
				2: {{3, 6}, {9, 12}, {12, br}},
			}
		})
	})
	t.Run("cap-split", func(t *testing.T) {
		// One worker set covers the whole block at width 256: with
		// BlockRows 32 the run holds 8192 lanes, above gfDecodeGroupLanes,
		// so the uniform run must split into multiple groups.
		check(t, 3, 2, 64, 2, 256, func(br int) map[int][]Range {
			if br*256 <= gfDecodeGroupLanes {
				t.Fatalf("shape does not exceed the group cap: %d lanes", br*256)
			}
			return map[int][]Range{
				0: {{0, br}},
				2: {{0, br}},
			}
		})
	})
}

func TestGFMDSInsufficient(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	data := randGFData(12, rng)
	c, _ := NewGFMDSCode(4, 3)
	enc, err := c.Encode(6, 2, data)
	if err != nil {
		t.Fatal(err)
	}
	x := randGFData(2, rng)
	p, _ := enc.WorkerMatVec(0, x, []Range{{0, enc.BlockRows}})
	if _, err := enc.DecodeMatVec([]*GFPartial{p}); err == nil {
		t.Fatal("expected insufficient-coverage error")
	}
}

func TestGFMDSValidation(t *testing.T) {
	if _, err := NewGFMDSCode(2, 3); err == nil {
		t.Fatal("k>n must fail")
	}
	c, _ := NewGFMDSCode(3, 2)
	if _, err := c.Encode(2, 2, make([]gf.Elem, 3)); err == nil {
		t.Fatal("bad data length must fail")
	}
}
