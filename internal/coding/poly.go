package coding

import (
	"fmt"
	"math"

	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
)

// PolyCode implements polynomial codes (Yu, Maddah-Ali, Avestimehr,
// NIPS'17) for bilinear computations of the form Aᵀ·diag(d)·B, the Hessian
// workload of the paper (§5, §7.2.3).
//
// A (m×dA) is split into a column blocks and B (m×dB) into b column
// blocks. Worker i receives the encoded partitions
//
//	Ã_i = Σ_j α_i^j     A_j
//	B̃_i = Σ_l α_i^(a·l) B_l
//
// and computes P_i = Ã_iᵀ·diag(d)·B̃_i, which is the evaluation at α_i of a
// matrix polynomial of degree a·b−1 whose coefficients are exactly the
// blocks H_(j,l) = A_jᵀ·diag(d)·B_l. Any a·b of the n evaluations decode
// the full product by interpolation — and, as with MDS, any individual
// *row* of P_i decodes independently, which is what lets S2C2 assign
// partial work per worker.
type PolyCode struct {
	a, b, n int
	alphas  []float64
	exec    kernel.Exec
}

// NewPolyCode builds a polynomial code with n workers and an a×b block
// grid. Requires a·b <= n. Evaluation points are Chebyshev nodes in
// (−1, 1) for well-conditioned float64 interpolation.
func NewPolyCode(n, a, b int) (*PolyCode, error) {
	if a < 1 || b < 1 || a*b > n {
		return nil, fmt.Errorf("coding: invalid polynomial code n=%d a=%d b=%d (need a·b <= n)", n, a, b)
	}
	alphas := make([]float64, n)
	for i := range alphas {
		alphas[i] = math.Cos(math.Pi * (2*float64(i) + 1) / (2 * float64(n)))
	}
	return &PolyCode{a: a, b: b, n: n, alphas: alphas}, nil
}

// SetExec pins the code's parallel encode loops to the given pool and
// fan-out; the zero Exec uses the shared kernel pool with full fan-out.
func (c *PolyCode) SetExec(e kernel.Exec) { c.exec = e }

// N returns the number of workers the code targets.
func (c *PolyCode) N() int { return c.n }

// RecoveryThreshold returns a·b, the number of worker evaluations needed
// per output row.
func (c *PolyCode) RecoveryThreshold() int { return c.a * c.b }

// Alpha returns worker i's evaluation point.
func (c *PolyCode) Alpha(i int) float64 { return c.alphas[i] }

// EncodedBilinear holds the per-worker encoded partitions for a bilinear
// computation Aᵀ·diag(d)·B.
type EncodedBilinear struct {
	Code                   *PolyCode
	RowsM                  int // shared row count of A and B
	ColsA, ColsB           int // original column counts
	BlockColsA, BlockColsB int // per-block (padded) column counts
	PartsA, PartsB         []*mat.Dense
}

// EncodeBilinear encodes A and B for the bilinear product Aᵀ·diag(d)·B.
// A and B must share their row count.
func (c *PolyCode) EncodeBilinear(a, b *mat.Dense) (*EncodedBilinear, error) {
	if a.Rows() != b.Rows() {
		return nil, fmt.Errorf("coding: EncodeBilinear row mismatch %d vs %d", a.Rows(), b.Rows())
	}
	blocksA := mat.SplitCols(a, c.a)
	blocksB := mat.SplitCols(b, c.b)
	e := &EncodedBilinear{
		Code:       c,
		RowsM:      a.Rows(),
		ColsA:      a.Cols(),
		ColsB:      b.Cols(),
		BlockColsA: blocksA[0].Cols(),
		BlockColsB: blocksB[0].Cols(),
		PartsA:     make([]*mat.Dense, c.n),
		PartsB:     make([]*mat.Dense, c.n),
	}
	for i := 0; i < c.n; i++ {
		e.PartsA[i] = mat.New(a.Rows(), e.BlockColsA)
		e.PartsB[i] = mat.New(b.Rows(), e.BlockColsB)
	}
	// Band-split the encode over the shared row dimension: a participant
	// owns rows [lo, hi) of every encoded partition, A-side and B-side.
	rows := a.Rows()
	bcA, bcB := e.BlockColsA, e.BlockColsB
	c.exec.For(rows, encodeChunk(c.n, c.a+c.b, bcA+bcB), func(lo, hi int) {
		for i := 0; i < c.n; i++ {
			pa := e.PartsA[i].Data()[lo*bcA : hi*bcA]
			coeff := 1.0
			for j := 0; j < c.a; j++ {
				kernel.Axpy(coeff, blocksA[j].Data()[lo*bcA:hi*bcA], pa)
				coeff *= c.alphas[i]
			}
			pb := e.PartsB[i].Data()[lo*bcB : hi*bcB]
			alphaToA := math.Pow(c.alphas[i], float64(c.a))
			coeff = 1.0
			for l := 0; l < c.b; l++ {
				kernel.Axpy(coeff, blocksB[l].Data()[lo*bcB:hi*bcB], pb)
				coeff *= alphaToA
			}
		}
	})
	return e, nil
}

// EncodeHessian is EncodeBilinear(A, A): the Hessian form Aᵀ·diag(d)·A.
func (c *PolyCode) EncodeHessian(a *mat.Dense) (*EncodedBilinear, error) {
	if c.a != c.b {
		return nil, fmt.Errorf("coding: EncodeHessian requires a == b, have %d×%d", c.a, c.b)
	}
	return c.EncodeBilinear(a, a)
}

// WorkerCompute runs worker w's kernel on rows [ranges) of its product
// block P_w = Ã_wᵀ·diag(d)·B̃_w. Row r of P_w depends on column r of Ã_w.
func (e *EncodedBilinear) WorkerCompute(w int, d []float64, ranges []Range) *Partial {
	return e.WorkerComputeInto(w, d, ranges, nil)
}

// WorkerComputeInto is WorkerCompute reusing dst's backing storage.
// dst == nil allocates a fresh Partial.
//
//s2c2:noalloc
func (e *EncodedBilinear) WorkerComputeInto(w int, d []float64, ranges []Range, dst *Partial) *Partial {
	if dst == nil {
		// Convenience fallback; hot callers pass a reused Partial.
		//s2c2:waive noalloc
		dst = &Partial{}
	}
	dst.Worker = w
	dst.RowWidth = e.BlockColsB
	dst.Ranges = AppendNormalizeRanges(dst.Ranges[:0], ranges)
	dst.Values = kernel.Grow(dst.Values, TotalRows(dst.Ranges)*e.BlockColsB)
	at := 0
	for _, r := range dst.Ranges {
		n := r.Len() * e.BlockColsB
		mat.ATDiagBRowsInto(e.PartsA[w], d, e.PartsB[w], r.Lo, r.Hi, dst.Values[at:at+n])
		at += n
	}
	return dst
}

// polyInvSet caches one inverted interpolation system per worker set.
type polyInvSet struct {
	workers []int
	inv     *mat.Dense
}

// PolyDecodeWorkspace holds reusable decode state for one EncodedBilinear:
// the row-index table, cached Vandermonde inverses, and scratch. Not safe
// for concurrent decodes.
type PolyDecodeWorkspace struct {
	table   rowTable[float64]
	sets    []*polyInvSet
	workers []int
	segs    []rowSegment
	segInvs []*mat.Dense // per-segment inverse, resolved before the scatter
}

// NewDecodeWorkspace returns an empty decode workspace for e.
func (e *EncodedBilinear) NewDecodeWorkspace() *PolyDecodeWorkspace {
	ab := e.Code.a * e.Code.b
	return &PolyDecodeWorkspace{workers: make([]int, 0, ab)}
}

// Decode reconstructs H = Aᵀ·diag(d)·B (ColsA×ColsB) from worker partials.
// Every row index in [0, BlockColsA) must be covered by at least a·b
// workers.
func (e *EncodedBilinear) Decode(partials []*Partial) (*mat.Dense, error) {
	return e.DecodeInto(nil, partials, nil)
}

// DecodeInto is Decode writing into dst (ColsA×ColsB; nil allocates it),
// reusing ws across rounds: interpolation inverses are cached per distinct
// worker set and index storage is recycled.
func (e *EncodedBilinear) DecodeInto(dst *mat.Dense, partials []*Partial, ws *PolyDecodeWorkspace) (*mat.Dense, error) {
	c := e.Code
	ab := c.a * c.b
	if ws == nil {
		ws = e.NewDecodeWorkspace()
	}
	if err := buildPartials(&ws.table, partials, e.BlockColsA); err != nil {
		return nil, err
	}
	if ws.table.rowWidth != 0 && ws.table.rowWidth != e.BlockColsB {
		return nil, fmt.Errorf("coding: Decode expects RowWidth %d, got %d", e.BlockColsB, ws.table.rowWidth)
	}
	out := dst
	if out == nil {
		out = mat.New(e.ColsA, e.ColsB)
	} else {
		if r, cc := out.Dims(); r != e.ColsA || cc != e.ColsB {
			return nil, fmt.Errorf("coding: decode dst %dx%d want %dx%d", r, cc, e.ColsA, e.ColsB)
		}
		out.Fill(0)
	}
	// Segment the rows into maximal runs sharing one worker set, then
	// scatter coefficients block-wise: for a fixed (coefficient, worker)
	// pair the inner loop streams the worker's stored values sequentially
	// and writes consecutive output rows, instead of the cache-hostile
	// row-at-a-time interleaving of all workers.
	if err := e.segmentRows(ws, ab); err != nil {
		return nil, err
	}
	// Resolve every segment's interpolation inverse up front: the per-set
	// cache mutates, so this stays serial, leaving the scatter below with
	// read-only shared state.
	if cap(ws.segInvs) < len(ws.segs) {
		ws.segInvs = make([]*mat.Dense, len(ws.segs))
	}
	ws.segInvs = ws.segInvs[:len(ws.segs)]
	for si := range ws.segs {
		inv, err := e.interpInverse(ws, ws.segs[si].set)
		if err != nil {
			return nil, err
		}
		ws.segInvs[si] = inv
	}
	// Segments write disjoint output rows (a global row j·BlockColsA+row
	// determines (j, row) uniquely, and each segment owns its row window),
	// so they fan out on the code's pool once the decode is big enough to
	// amortize dispatch; small decodes stay serial.
	if e.decodeFlops() >= polyParallelMinFlops {
		e.Code.exec.For(len(ws.segs), 1, func(lo, hi int) {
			for si := lo; si < hi; si++ {
				e.scatterSegment(ws, si, out)
			}
		})
	} else {
		for si := range ws.segs {
			e.scatterSegment(ws, si, out)
		}
	}
	return out, nil
}

// polyParallelMinFlops gates the decode scatter's fan-out: below it, pool
// dispatch overhead outweighs the win and segments run serially.
const polyParallelMinFlops = 128 << 10

// decodeFlops estimates the scatter work of one full decode (2 flops per
// accumulated value across ab coefficients × ab workers per row).
func (e *EncodedBilinear) decodeFlops() int {
	ab := e.Code.a * e.Code.b
	return 2 * e.BlockColsA * ab * ab * e.BlockColsB
}

// scatterSegment accumulates one segment's rows into the output:
// coeffs[exp] = Σ_i inv[exp][i] · rowvals_i, one BlockColsB-wide vector
// per polynomial coefficient exp = j + a·l. Distinct segments touch
// disjoint output rows, so concurrent calls never conflict.
func (e *EncodedBilinear) scatterSegment(ws *PolyDecodeWorkspace, si int, out *mat.Dense) {
	c := e.Code
	ab := c.a * c.b
	seg := &ws.segs[si]
	inv := ws.segInvs[si]
	table := &ws.table
	for exp := 0; exp < ab; exp++ {
		j := exp % c.a
		l := exp / c.a
		// Rows whose global output row j·BlockColsA+row falls into A's
		// padding decode to nothing; clip once per (segment, exp).
		rowHi := e.ColsA - j*e.BlockColsA
		if rowHi > seg.hi {
			rowHi = seg.hi
		}
		if rowHi <= seg.lo {
			continue
		}
		dstBase := l * e.BlockColsB
		width := e.ColsB - dstBase // clip B's padding columns
		if width > e.BlockColsB {
			width = e.BlockColsB
		}
		if width <= 0 {
			continue
		}
		for i, w := range seg.set {
			f := inv.At(exp, i)
			if f == 0 {
				continue
			}
			offs := table.offsets[w]
			vals := table.values[w]
			for row := seg.lo; row < rowHi; row++ {
				src := vals[offs[row] : offs[row]+width]
				kernel.Axpy(f, src, out.Row(j*e.BlockColsA + row)[dstBase:dstBase+width])
			}
		}
	}
}

// rowSegment is a maximal run of partition rows [lo, hi) decoded by one
// canonical worker set; set storage is recycled across rounds.
type rowSegment struct {
	lo, hi int
	set    []int
}

// segmentRows groups the rows of the decode into per-worker-set segments,
// writing them into ws.segs (storage reused across rounds).
func (e *EncodedBilinear) segmentRows(ws *PolyDecodeWorkspace, ab int) error {
	segs := ws.segs[:0]
	for row := 0; row < e.BlockColsA; row++ {
		ws.workers = ws.table.appendWorkersForRow(ws.workers, row, ab)
		if len(ws.workers) < ab {
			return fmt.Errorf("%w: row %d covered by %d of %d workers", ErrInsufficient, row, len(ws.workers), ab)
		}
		sortInts(ws.workers) // canonical order: cache key ignores arrival order
		if n := len(segs); n > 0 && segs[n-1].hi == row && sameWorkers(segs[n-1].set, ws.workers) {
			segs[n-1].hi = row + 1
			continue
		}
		if len(segs) < cap(segs) {
			segs = segs[:len(segs)+1]
		} else {
			segs = append(segs, rowSegment{})
		}
		s := &segs[len(segs)-1]
		s.lo, s.hi = row, row+1
		s.set = append(s.set[:0], ws.workers...)
	}
	ws.segs = segs
	return nil
}

// interpInverse returns the inverse of the a·b × a·b Vandermonde system for
// the given worker set, cached per set in the workspace (linear scan — the
// distinct-set count per decode is tiny).
func (e *EncodedBilinear) interpInverse(ws *PolyDecodeWorkspace, workers []int) (*mat.Dense, error) {
	for _, s := range ws.sets {
		if sameWorkers(s.workers, workers) {
			return s.inv, nil
		}
	}
	ab := e.Code.a * e.Code.b
	v := mat.New(ab, ab)
	for i, w := range workers {
		alpha := e.Code.alphas[w]
		p := 1.0
		for exp := 0; exp < ab; exp++ {
			v.Set(i, exp, p)
			p *= alpha
		}
	}
	// We need coefficients = V⁻¹·evaluations, i.e. the inverse transposed
	// relative to row access; store V⁻¹ directly and index (exp, i).
	inv, err := mat.Invert(v)
	if err != nil {
		return nil, fmt.Errorf("coding: interpolation set %v singular: %w", workers, err)
	}
	if len(ws.sets) >= maxCachedSets {
		ws.sets = ws.sets[:0]
	}
	ws.sets = append(ws.sets, &polyInvSet{workers: append([]int(nil), workers...), inv: inv})
	return inv, nil
}
