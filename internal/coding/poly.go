package coding

import (
	"fmt"
	"math"

	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
)

// PolyCode implements polynomial codes (Yu, Maddah-Ali, Avestimehr,
// NIPS'17) for bilinear computations of the form Aᵀ·diag(d)·B, the Hessian
// workload of the paper (§5, §7.2.3).
//
// A (m×dA) is split into a column blocks and B (m×dB) into b column
// blocks. Worker i receives the encoded partitions
//
//	Ã_i = Σ_j α_i^j     A_j
//	B̃_i = Σ_l α_i^(a·l) B_l
//
// and computes P_i = Ã_iᵀ·diag(d)·B̃_i, which is the evaluation at α_i of a
// matrix polynomial of degree a·b−1 whose coefficients are exactly the
// blocks H_(j,l) = A_jᵀ·diag(d)·B_l. Any a·b of the n evaluations decode
// the full product by interpolation — and, as with MDS, any individual
// *row* of P_i decodes independently, which is what lets S2C2 assign
// partial work per worker.
type PolyCode struct {
	a, b, n int
	alphas  []float64
}

// NewPolyCode builds a polynomial code with n workers and an a×b block
// grid. Requires a·b <= n. Evaluation points are Chebyshev nodes in
// (−1, 1) for well-conditioned float64 interpolation.
func NewPolyCode(n, a, b int) (*PolyCode, error) {
	if a < 1 || b < 1 || a*b > n {
		return nil, fmt.Errorf("coding: invalid polynomial code n=%d a=%d b=%d (need a·b <= n)", n, a, b)
	}
	alphas := make([]float64, n)
	for i := range alphas {
		alphas[i] = math.Cos(math.Pi * (2*float64(i) + 1) / (2 * float64(n)))
	}
	return &PolyCode{a: a, b: b, n: n, alphas: alphas}, nil
}

// N returns the number of workers the code targets.
func (c *PolyCode) N() int { return c.n }

// RecoveryThreshold returns a·b, the number of worker evaluations needed
// per output row.
func (c *PolyCode) RecoveryThreshold() int { return c.a * c.b }

// Alpha returns worker i's evaluation point.
func (c *PolyCode) Alpha(i int) float64 { return c.alphas[i] }

// EncodedBilinear holds the per-worker encoded partitions for a bilinear
// computation Aᵀ·diag(d)·B.
type EncodedBilinear struct {
	Code                   *PolyCode
	RowsM                  int // shared row count of A and B
	ColsA, ColsB           int // original column counts
	BlockColsA, BlockColsB int // per-block (padded) column counts
	PartsA, PartsB         []*mat.Dense
}

// EncodeBilinear encodes A and B for the bilinear product Aᵀ·diag(d)·B.
// A and B must share their row count.
func (c *PolyCode) EncodeBilinear(a, b *mat.Dense) (*EncodedBilinear, error) {
	if a.Rows() != b.Rows() {
		return nil, fmt.Errorf("coding: EncodeBilinear row mismatch %d vs %d", a.Rows(), b.Rows())
	}
	blocksA := mat.SplitCols(a, c.a)
	blocksB := mat.SplitCols(b, c.b)
	e := &EncodedBilinear{
		Code:       c,
		RowsM:      a.Rows(),
		ColsA:      a.Cols(),
		ColsB:      b.Cols(),
		BlockColsA: blocksA[0].Cols(),
		BlockColsB: blocksB[0].Cols(),
		PartsA:     make([]*mat.Dense, c.n),
		PartsB:     make([]*mat.Dense, c.n),
	}
	for i := 0; i < c.n; i++ {
		pa := mat.New(a.Rows(), e.BlockColsA)
		coeff := 1.0
		for j := 0; j < c.a; j++ {
			pa.AddScaled(coeff, blocksA[j])
			coeff *= c.alphas[i]
		}
		pb := mat.New(b.Rows(), e.BlockColsB)
		alphaToA := math.Pow(c.alphas[i], float64(c.a))
		coeff = 1.0
		for l := 0; l < c.b; l++ {
			pb.AddScaled(coeff, blocksB[l])
			coeff *= alphaToA
		}
		e.PartsA[i] = pa
		e.PartsB[i] = pb
	}
	return e, nil
}

// EncodeHessian is EncodeBilinear(A, A): the Hessian form Aᵀ·diag(d)·A.
func (c *PolyCode) EncodeHessian(a *mat.Dense) (*EncodedBilinear, error) {
	if c.a != c.b {
		return nil, fmt.Errorf("coding: EncodeHessian requires a == b, have %d×%d", c.a, c.b)
	}
	return c.EncodeBilinear(a, a)
}

// WorkerCompute runs worker w's kernel on rows [ranges) of its product
// block P_w = Ã_wᵀ·diag(d)·B̃_w. Row r of P_w depends on column r of Ã_w.
func (e *EncodedBilinear) WorkerCompute(w int, d []float64, ranges []Range) *Partial {
	return e.WorkerComputeInto(w, d, ranges, nil)
}

// WorkerComputeInto is WorkerCompute reusing dst's backing storage.
// dst == nil allocates a fresh Partial.
func (e *EncodedBilinear) WorkerComputeInto(w int, d []float64, ranges []Range, dst *Partial) *Partial {
	if dst == nil {
		dst = &Partial{}
	}
	dst.Worker = w
	dst.RowWidth = e.BlockColsB
	dst.Ranges = appendNormalizeRanges(dst.Ranges[:0], ranges)
	dst.Values = kernel.Grow(dst.Values, TotalRows(dst.Ranges)*e.BlockColsB)
	at := 0
	for _, r := range dst.Ranges {
		n := r.Len() * e.BlockColsB
		mat.ATDiagBRowsInto(e.PartsA[w], d, e.PartsB[w], r.Lo, r.Hi, dst.Values[at:at+n])
		at += n
	}
	return dst
}

// polyInvSet caches one inverted interpolation system per worker set.
type polyInvSet struct {
	workers []int
	inv     *mat.Dense
}

// PolyDecodeWorkspace holds reusable decode state for one EncodedBilinear:
// the row-index table, cached Vandermonde inverses, and scratch. Not safe
// for concurrent decodes.
type PolyDecodeWorkspace struct {
	table   rowTable
	sets    []*polyInvSet
	workers []int
}

// NewDecodeWorkspace returns an empty decode workspace for e.
func (e *EncodedBilinear) NewDecodeWorkspace() *PolyDecodeWorkspace {
	ab := e.Code.a * e.Code.b
	return &PolyDecodeWorkspace{workers: make([]int, 0, ab)}
}

// Decode reconstructs H = Aᵀ·diag(d)·B (ColsA×ColsB) from worker partials.
// Every row index in [0, BlockColsA) must be covered by at least a·b
// workers.
func (e *EncodedBilinear) Decode(partials []*Partial) (*mat.Dense, error) {
	return e.DecodeInto(nil, partials, nil)
}

// DecodeInto is Decode writing into dst (ColsA×ColsB; nil allocates it),
// reusing ws across rounds: interpolation inverses are cached per distinct
// worker set and index storage is recycled.
func (e *EncodedBilinear) DecodeInto(dst *mat.Dense, partials []*Partial, ws *PolyDecodeWorkspace) (*mat.Dense, error) {
	c := e.Code
	ab := c.a * c.b
	if ws == nil {
		ws = e.NewDecodeWorkspace()
	}
	if err := ws.table.build(partials, e.BlockColsA); err != nil {
		return nil, err
	}
	if ws.table.rowWidth != 0 && ws.table.rowWidth != e.BlockColsB {
		return nil, fmt.Errorf("coding: Decode expects RowWidth %d, got %d", e.BlockColsB, ws.table.rowWidth)
	}
	out := dst
	if out == nil {
		out = mat.New(e.ColsA, e.ColsB)
	} else {
		if r, cc := out.Dims(); r != e.ColsA || cc != e.ColsB {
			return nil, fmt.Errorf("coding: decode dst %dx%d want %dx%d", r, cc, e.ColsA, e.ColsB)
		}
		out.Fill(0)
	}
	table := &ws.table
	for row := 0; row < e.BlockColsA; row++ {
		ws.workers = table.appendWorkersForRow(ws.workers, row, ab)
		workers := ws.workers
		if len(workers) < ab {
			return nil, fmt.Errorf("%w: row %d covered by %d of %d workers", ErrInsufficient, row, len(workers), ab)
		}
		sortInts(workers) // canonical order: cache key ignores arrival order
		inv, err := e.interpInverse(ws, workers)
		if err != nil {
			return nil, err
		}
		// coeffs[e] = Σ_i inv[e][i] · rowvals_i, one BlockColsB-wide vector
		// per polynomial coefficient e = j + a·l.
		for exp := 0; exp < ab; exp++ {
			j := exp % c.a
			l := exp / c.a
			globalRow := j*e.BlockColsA + row
			if globalRow >= e.ColsA {
				continue // padding column of A
			}
			dstBase := l * e.BlockColsB
			dst := out.Row(globalRow)
			for i, w := range workers {
				f := inv.At(exp, i)
				if f == 0 {
					continue
				}
				src := table.rowValue(w, row)
				for q, v := range src {
					gc := dstBase + q
					if gc >= e.ColsB {
						break // padding column of B
					}
					dst[gc] += f * v
				}
			}
		}
	}
	return out, nil
}

// interpInverse returns the inverse of the a·b × a·b Vandermonde system for
// the given worker set, cached per set in the workspace (linear scan — the
// distinct-set count per decode is tiny).
func (e *EncodedBilinear) interpInverse(ws *PolyDecodeWorkspace, workers []int) (*mat.Dense, error) {
	for _, s := range ws.sets {
		if sameWorkers(s.workers, workers) {
			return s.inv, nil
		}
	}
	ab := e.Code.a * e.Code.b
	v := mat.New(ab, ab)
	for i, w := range workers {
		alpha := e.Code.alphas[w]
		p := 1.0
		for exp := 0; exp < ab; exp++ {
			v.Set(i, exp, p)
			p *= alpha
		}
	}
	// We need coefficients = V⁻¹·evaluations, i.e. the inverse transposed
	// relative to row access; store V⁻¹ directly and index (exp, i).
	inv, err := mat.Invert(v)
	if err != nil {
		return nil, fmt.Errorf("coding: interpolation set %v singular: %w", workers, err)
	}
	if len(ws.sets) >= maxCachedSets {
		ws.sets = ws.sets[:0]
	}
	ws.sets = append(ws.sets, &polyInvSet{workers: append([]int(nil), workers...), inv: inv})
	return inv, nil
}
