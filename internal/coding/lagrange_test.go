package coding

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/kernel"
)

func TestLagrangeValidation(t *testing.T) {
	if _, err := NewLagrangeCode(2, 3); err == nil {
		t.Fatal("n < k must fail")
	}
	c, err := NewLagrangeCode(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 3 || c.N() != 9 {
		t.Fatal("dims wrong")
	}
	if c.RecoveryThreshold(2) != 5 {
		t.Fatalf("threshold(2) = %d want (3-1)*2+1 = 5", c.RecoveryThreshold(2))
	}
	if c.MaxDegree() != 4 {
		t.Fatalf("MaxDegree = %d want (9-1)/(3-1) = 4", c.MaxDegree())
	}
}

func TestLagrangeSystematicPrefix(t *testing.T) {
	c, _ := NewLagrangeCode(6, 3)
	blocks := [][]gf.Elem{{1, 2}, {3, 4}, {5, 6}}
	shares, err := c.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		for e := range blocks[j] {
			if shares[j][e] != blocks[j][e] {
				t.Fatalf("share %d not systematic", j)
			}
		}
	}
}

func TestLagrangeLinearRoundTrip(t *testing.T) {
	// Degree-1 computation: f = identity. Any k shares decode the data —
	// Lagrange coding degenerates to an MDS code.
	rng := rand.New(rand.NewSource(1))
	c, _ := NewLagrangeCode(7, 4)
	blocks := randomBlocks(4, 10, rng)
	shares, err := c.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	results := map[int][]gf.Elem{}
	for _, w := range rng.Perm(7)[:4] {
		results[w] = shares[w]
	}
	got, err := c.Decode(results, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertBlocksEqual(t, got, blocks)
}

func TestLagrangeQuadraticComputation(t *testing.T) {
	// f(x) = x² + 3x + 7 elementwise (degree 2): any (k−1)·2+1 results
	// decode f(X_j) for every block, including from parity-only shares.
	rng := rand.New(rand.NewSource(2))
	n, k := 9, 3
	c, _ := NewLagrangeCode(n, k)
	blocks := randomBlocks(k, 16, rng)
	shares, err := c.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x gf.Elem) gf.Elem {
		return gf.Add(gf.Add(gf.Mul(x, x), gf.Mul(3, x)), 7)
	}
	results := map[int][]gf.Elem{}
	// Use only non-systematic shares 3..8 — still ≥ threshold 5.
	for w := 3; w < 9; w++ {
		out := make([]gf.Elem, len(shares[w]))
		for e, v := range shares[w] {
			out[e] = f(v)
		}
		results[w] = out
	}
	got, err := c.Decode(results, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j, b := range blocks {
		for e, v := range b {
			if got[j][e] != f(v) {
				t.Fatalf("block %d elem %d: got %d want %d", j, e, got[j][e], f(v))
			}
		}
	}
}

func TestLagrangeCubicProperty(t *testing.T) {
	// Property: for random (n,k) with capacity for degree-3 computation,
	// any threshold-sized subset of f(shares) decodes f(blocks) exactly,
	// with f(x) = x³ + 5.
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(3) // 2..4
		n := (k-1)*3 + 1 + r.Intn(4)
		c, err := NewLagrangeCode(n, k)
		if err != nil {
			return false
		}
		blocks := randomBlocks(k, 1+r.Intn(8), r)
		shares, err := c.Encode(blocks)
		if err != nil {
			return false
		}
		cube := func(x gf.Elem) gf.Elem { return gf.Add(gf.Mul(gf.Mul(x, x), x), 5) }
		results := map[int][]gf.Elem{}
		for _, w := range r.Perm(n)[:c.RecoveryThreshold(3)] {
			out := make([]gf.Elem, len(shares[w]))
			for e, v := range shares[w] {
				out[e] = cube(v)
			}
			results[w] = out
		}
		got, err := c.Decode(results, 3)
		if err != nil {
			return false
		}
		for j, b := range blocks {
			for e, v := range b {
				if got[j][e] != cube(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestLagrangeInsufficient(t *testing.T) {
	c, _ := NewLagrangeCode(5, 3)
	blocks := [][]gf.Elem{{1}, {2}, {3}}
	shares, _ := c.Encode(blocks)
	results := map[int][]gf.Elem{0: shares[0], 1: shares[1], 2: shares[2], 3: shares[3]}
	// Degree 2 needs (3−1)·2+1 = 5 results; 4 must fail.
	if _, err := c.Decode(results, 2); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
}

func TestLagrangeEncodeErrors(t *testing.T) {
	c, _ := NewLagrangeCode(4, 2)
	if _, err := c.Encode([][]gf.Elem{{1}}); err == nil {
		t.Fatal("wrong block count must fail")
	}
	if _, err := c.Encode([][]gf.Elem{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged blocks must fail")
	}
}

func TestLagrangeDecodeErrors(t *testing.T) {
	c, _ := NewLagrangeCode(4, 2)
	blocks := [][]gf.Elem{{1, 2}, {3, 4}}
	shares, _ := c.Encode(blocks)
	bad := map[int][]gf.Elem{0: shares[0], 9: shares[1]}
	if _, err := c.Decode(bad, 1); err == nil {
		t.Fatal("unknown worker index must fail")
	}
	mixed := map[int][]gf.Elem{0: shares[0], 1: shares[1][:1]}
	if _, err := c.Decode(mixed, 1); err == nil {
		t.Fatal("mixed result lengths must fail")
	}
}

func randomBlocks(k, size int, rng *rand.Rand) [][]gf.Elem {
	blocks := make([][]gf.Elem, k)
	for j := range blocks {
		b := make([]gf.Elem, size)
		for e := range b {
			b[e] = gf.New(rng.Uint64())
		}
		blocks[j] = b
	}
	return blocks
}

func assertBlocksEqual(t *testing.T, got, want [][]gf.Elem) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("block count %d want %d", len(got), len(want))
	}
	for j := range want {
		for e := range want[j] {
			if got[j][e] != want[j][e] {
				t.Fatalf("block %d elem %d: got %d want %d", j, e, got[j][e], want[j][e])
			}
		}
	}
}

// TestLagrangeEncodeIntoMatchesEncode pins the share-reuse path: EncodeInto
// over a warm destination must reuse every share's storage and produce
// exactly the shares a fresh Encode produces.
// TestCompleteGFShares pins the share-assembly contract: split partials
// merge into one complete vector per worker, workers with partial
// coverage are omitted, duplicates are benign, and malformed partials
// are rejected.
func TestCompleteGFShares(t *testing.T) {
	const blockRows = 5
	partials := []*GFPartial{
		// Worker 0: complete, split across two partials (out of order).
		{Worker: 0, Ranges: []Range{{Lo: 2, Hi: 5}}, Values: []gf.Elem{12, 13, 14}},
		{Worker: 0, Ranges: []Range{{Lo: 0, Hi: 2}}, Values: []gf.Elem{10, 11}},
		// Worker 1: incomplete (rows 0..3 only).
		{Worker: 1, Ranges: []Range{{Lo: 0, Hi: 3}}, Values: []gf.Elem{20, 21, 22}},
		// Worker 2: complete in one partial, plus a duplicate delivery.
		{Worker: 2, Ranges: []Range{{Lo: 0, Hi: 5}}, Values: []gf.Elem{30, 31, 32, 33, 34}},
		{Worker: 2, Ranges: []Range{{Lo: 1, Hi: 3}}, Values: []gf.Elem{31, 32}},
	}
	shares, err := CompleteGFShares(partials, blockRows)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 2 {
		t.Fatalf("%d complete shares, want 2 (workers 0 and 2)", len(shares))
	}
	if _, ok := shares[1]; ok {
		t.Fatal("incomplete worker 1 must be omitted")
	}
	for i, v := range []gf.Elem{10, 11, 12, 13, 14} {
		if shares[0][i] != v {
			t.Fatalf("worker 0 row %d = %d, want %d", i, shares[0][i], v)
		}
	}
	for i, v := range []gf.Elem{30, 31, 32, 33, 34} {
		if shares[2][i] != v {
			t.Fatalf("worker 2 row %d = %d, want %d", i, shares[2][i], v)
		}
	}
	// Malformed: range outside the partition.
	if _, err := CompleteGFShares([]*GFPartial{
		{Worker: 0, Ranges: []Range{{Lo: 0, Hi: 6}}, Values: make([]gf.Elem, 6)},
	}, blockRows); err == nil {
		t.Fatal("out-of-range partial must be rejected")
	}
	// Malformed: value count does not match the ranges.
	if _, err := CompleteGFShares([]*GFPartial{
		{Worker: 0, Ranges: []Range{{Lo: 0, Hi: 2}}, Values: make([]gf.Elem, 3)},
	}, blockRows); err == nil {
		t.Fatal("count-mismatched partial must be rejected")
	}
}

func TestLagrangeEncodeIntoMatchesEncode(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	c, err := NewLagrangeCode(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	const size = 64
	newBlocks := func() [][]gf.Elem {
		blocks := make([][]gf.Elem, 3)
		for j := range blocks {
			blocks[j] = make([]gf.Elem, size)
			for e := range blocks[j] {
				blocks[j][e] = gf.New(rng.Uint64())
			}
		}
		return blocks
	}
	blocks := newBlocks()
	dst, err := c.EncodeInto(nil, blocks)
	if err != nil {
		t.Fatal(err)
	}
	base := make([]*gf.Elem, len(dst))
	for i := range dst {
		base[i] = &dst[i][0]
	}
	for round := 0; round < 3; round++ {
		blocks = newBlocks() // iterative job: the data changes every round
		want, err := c.Encode(blocks)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.EncodeInto(dst, blocks)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if &got[i][0] != base[i] {
				t.Fatalf("round %d: share %d storage was reallocated", round, i)
			}
			for e := range want[i] {
				if got[i][e] != want[i][e] {
					t.Fatalf("round %d: share %d element %d: %d != %d", round, i, e, got[i][e], want[i][e])
				}
			}
		}
	}
	if _, err := c.EncodeInto(make([][]gf.Elem, 2), blocks); err == nil {
		t.Fatal("EncodeInto must reject a dst with the wrong share count")
	}
}

// TestLagrangeEncodeIntoZeroAllocsSteadyState is the re-encode alloc
// regression: iterative Lagrange jobs re-encoding into a warm destination
// must not allocate. Pinned on the serial path — parallel dispatch adds
// one closure allocation by design (Pool.For documents it).
func TestLagrangeEncodeIntoZeroAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	c, err := NewLagrangeCode(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.SetExec(kernel.Serial())
	const size = 256
	blocks := make([][]gf.Elem, 4)
	for j := range blocks {
		blocks[j] = make([]gf.Elem, size)
		for e := range blocks[j] {
			blocks[j][e] = gf.New(rng.Uint64())
		}
	}
	dst, err := c.EncodeInto(nil, blocks)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		var err error
		dst, err = c.EncodeInto(dst, blocks)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("EncodeInto allocates %v/op in steady state, want 0", allocs)
	}
}
