package coding

import (
	"math/rand"
	"testing"

	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/mat"
)

// laneSlice extracts lane l of a width-wide batched partial as a width-1
// partial — the "decode one lane alone" reference for bit-exactness.
func gfLaneSlice(p *GFPartial, l int) *GFPartial {
	w := p.Width()
	rows := TotalRows(p.Ranges)
	vals := make([]gf.Elem, rows)
	for r := 0; r < rows; r++ {
		vals[r] = p.Values[r*w+l]
	}
	return &GFPartial{Worker: p.Worker, Ranges: p.Ranges, RowWidth: 1, Values: vals}
}

func floatLaneSlice(p *Partial, l int) *Partial {
	w := p.RowWidth
	rows := TotalRows(p.Ranges)
	vals := make([]float64, rows)
	for r := 0; r < rows; r++ {
		vals[r] = p.Values[r*w+l]
	}
	return &Partial{Worker: p.Worker, Ranges: p.Ranges, RowWidth: 1, Values: vals}
}

// Batched GF rounds are exact: a width-w compute-and-decode is bit-equal,
// lane by lane, to w independent single-x rounds over the same workers.
func TestGFMDSBatchedExactVsSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, w := range []int{1, 2, 3, 4, 8} {
		for trial := 0; trial < 20; trial++ {
			n := 2 + rng.Intn(8)
			k := 1 + rng.Intn(n)
			rows := 1 + rng.Intn(25)
			cols := 1 + rng.Intn(7)
			data := randGFData(rows*cols, rng)
			xs := randGFData(w*cols, rng)

			c, err := NewGFMDSCode(n, k)
			if err != nil {
				t.Fatal(err)
			}
			enc, err := c.Encode(rows, cols, data)
			if err != nil {
				t.Fatal(err)
			}
			workers := rng.Perm(n)[:k]
			var batched []*GFPartial
			for _, wk := range workers {
				p, err := enc.WorkerMatVecBatch(wk, xs, w, []Range{{0, enc.BlockRows}})
				if err != nil {
					t.Fatal(err)
				}
				// Batched worker compute == per-lane single compute, exactly.
				for l := 0; l < w; l++ {
					single, err := enc.WorkerMatVec(wk, xs[l*cols:(l+1)*cols], []Range{{0, enc.BlockRows}})
					if err != nil {
						t.Fatal(err)
					}
					for r := 0; r < enc.BlockRows; r++ {
						if p.Values[r*w+l] != single.Values[r] {
							t.Fatalf("w=%d worker=%d lane=%d row=%d: batch %d single %d", w, wk, l, r, p.Values[r*w+l], single.Values[r])
						}
					}
				}
				batched = append(batched, p)
			}
			got, err := enc.DecodeMatVec(batched)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != rows*w {
				t.Fatalf("w=%d decode length %d want %d", w, len(got), rows*w)
			}
			for l := 0; l < w; l++ {
				// Reference 1: direct exact mat-vec.
				want := gfMatVec(rows, cols, data, xs[l*cols:(l+1)*cols])
				// Reference 2: decoding this lane's partials alone.
				lanes := make([]*GFPartial, len(batched))
				for i, p := range batched {
					lanes[i] = gfLaneSlice(p, l)
				}
				alone, err := enc.DecodeMatVec(lanes)
				if err != nil {
					t.Fatal(err)
				}
				for r := 0; r < rows; r++ {
					if got[r*w+l] != want[r] {
						t.Fatalf("w=%d lane=%d row=%d: decode %d want %d", w, l, r, got[r*w+l], want[r])
					}
					if got[r*w+l] != alone[r] {
						t.Fatalf("w=%d lane=%d row=%d: batched decode %d lane-alone decode %d", w, l, r, got[r*w+l], alone[r])
					}
				}
			}
		}
	}
}

// Batched GF decode works with S2C2-style partial coverage too: split
// ranges, every row covered by exactly k workers.
func TestGFMDSBatchedPartialCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const n, k, rows, cols, w = 5, 3, 30, 6, 4
	data := randGFData(rows*cols, rng)
	xs := randGFData(w*cols, rng)
	c, err := NewGFMDSCode(n, k)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	// Rotate k-of-n coverage bands across the partition rows.
	var partials []*GFPartial
	bands := 6
	per := (enc.BlockRows + bands - 1) / bands
	for b := 0; b < bands; b++ {
		lo := b * per
		hi := lo + per
		if hi > enc.BlockRows {
			hi = enc.BlockRows
		}
		if lo >= hi {
			break
		}
		for i := 0; i < k; i++ {
			wk := (b + i) % n
			p, err := enc.WorkerMatVecBatch(wk, xs, w, []Range{{lo, hi}})
			if err != nil {
				t.Fatal(err)
			}
			partials = append(partials, p)
		}
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < w; l++ {
		want := gfMatVec(rows, cols, data, xs[l*cols:(l+1)*cols])
		for r := 0; r < rows; r++ {
			if got[r*w+l] != want[r] {
				t.Fatalf("lane=%d row=%d: decode %d want %d", l, r, got[r*w+l], want[r])
			}
		}
	}
}

// Float64 batched compute-and-decode: every lane approximates A·x_l, and
// the batched decode is bit-identical to decoding each lane's partials
// alone (the solves see identical right-hand sides either way).
func TestMDSBatchedDecodeMatchesPerLane(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, w := range []int{1, 2, 4, 8} {
		for trial := 0; trial < 10; trial++ {
			n := 3 + rng.Intn(6)
			k := 1 + rng.Intn(n)
			rows := k * (1 + rng.Intn(4))
			cols := 1 + rng.Intn(9)
			a := mat.Rand(rows, cols, rng)
			xs := randVec(w*cols, rng)

			c, err := NewMDSCode(n, k)
			if err != nil {
				t.Fatal(err)
			}
			enc := c.Encode(a)
			var batched []*Partial
			for _, wk := range rng.Perm(n)[:k] {
				batched = append(batched, enc.WorkerComputeBatchInto(wk, xs, w, []Range{{0, enc.BlockRows}}, nil))
			}
			got, err := enc.DecodeMatVec(batched)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != rows*w {
				t.Fatalf("w=%d decode length %d want %d", w, len(got), rows*w)
			}
			lane := make([]float64, rows)
			for l := 0; l < w; l++ {
				want := mat.MatVec(a, xs[l*cols:(l+1)*cols])
				for r := 0; r < rows; r++ {
					lane[r] = got[r*w+l]
				}
				if !mat.VecApproxEqual(lane, want, 1e-8) {
					t.Fatalf("w=%d lane=%d: decode drifted from A·x_l", w, l)
				}
				lanes := make([]*Partial, len(batched))
				for i, p := range batched {
					lanes[i] = floatLaneSlice(p, l)
				}
				alone, err := enc.DecodeMatVec(lanes)
				if err != nil {
					t.Fatal(err)
				}
				for r := 0; r < rows; r++ {
					if lane[r] != alone[r] {
						t.Fatalf("w=%d lane=%d row=%d: batched %v lane-alone %v", w, l, r, lane[r], alone[r])
					}
				}
			}
		}
	}
}

// Batched worker compute matches the single-x path lane by lane within
// rounding (the batch kernel uses a different accumulation order).
func TestWorkerComputeBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := mat.Rand(120, 33, rng) // BlockRows = 30 with k = 4
	c, _ := NewMDSCode(6, 4)
	enc := c.Encode(a)
	ranges := []Range{{2, 9}, {11, 17}}
	rows := TotalRows(ranges)
	for _, w := range []int{1, 2, 5, 8, 9} {
		xs := randVec(w*enc.Cols, rng)
		p := enc.WorkerComputeBatchInto(3, xs, w, ranges, nil)
		if p.RowWidth != w || len(p.Values) != rows*w {
			t.Fatalf("w=%d: RowWidth=%d len=%d", w, p.RowWidth, len(p.Values))
		}
		for l := 0; l < w; l++ {
			single := enc.WorkerCompute(3, xs[l*enc.Cols:(l+1)*enc.Cols], ranges)
			for r := 0; r < rows; r++ {
				if d := p.Values[r*w+l] - single.Values[r]; d > 1e-9 || d < -1e-9 {
					t.Fatalf("w=%d lane=%d row=%d: batch %v single %v", w, l, r, p.Values[r*w+l], single.Values[r])
				}
			}
		}
	}
}

// CompleteGFShares understands batched partials: width-wide vectors out,
// mixed widths rejected.
func TestCompleteGFSharesBatched(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	const rows, cols, w = 12, 5, 3
	data := randGFData(rows*cols, rng)
	xs := randGFData(w*cols, rng)
	c, err := NewGFMDSCode(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encode(rows, cols, data)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0 covers everything in two split partials; worker 1 only half.
	mid := enc.BlockRows / 2
	p0a, _ := enc.WorkerMatVecBatch(0, xs, w, []Range{{0, mid}})
	p0b, _ := enc.WorkerMatVecBatch(0, xs, w, []Range{{mid, enc.BlockRows}})
	p1, _ := enc.WorkerMatVecBatch(1, xs, w, []Range{{0, mid}})
	vecs, err := CompleteGFShares([]*GFPartial{p0a, p0b, p1}, enc.BlockRows)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := vecs[1]; ok {
		t.Fatal("partially covered worker 1 should be omitted")
	}
	v := vecs[0]
	if len(v) != enc.BlockRows*w {
		t.Fatalf("share length %d want %d", len(v), enc.BlockRows*w)
	}
	full, _ := enc.WorkerMatVecBatch(0, xs, w, []Range{{0, enc.BlockRows}})
	for i := range v {
		if v[i] != full.Values[i] {
			t.Fatalf("share value %d: got %d want %d", i, v[i], full.Values[i])
		}
	}
	// Mixing widths in one share set is an error.
	single, _ := enc.WorkerMatVec(2, xs[:cols], []Range{{0, enc.BlockRows}})
	if _, err := CompleteGFShares([]*GFPartial{p0a, single}, enc.BlockRows); err == nil {
		t.Fatal("mixed widths should be rejected")
	}
}

// Mixed-width partial sets are rejected by the decoders.
func TestDecodeRejectsMixedWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	const rows, cols = 10, 4
	data := randGFData(rows*cols, rng)
	xs := randGFData(2*cols, rng)
	c, _ := NewGFMDSCode(3, 2)
	enc, _ := c.Encode(rows, cols, data)
	b, _ := enc.WorkerMatVecBatch(0, xs, 2, []Range{{0, enc.BlockRows}})
	s, _ := enc.WorkerMatVec(1, xs[:cols], []Range{{0, enc.BlockRows}})
	if _, err := enc.DecodeMatVec([]*GFPartial{b, s}); err == nil {
		t.Fatal("GF decode should reject mixed row widths")
	}
}
