package coding

import (
	"errors"
	"fmt"

	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
)

// ErrInsufficient is returned when a row is covered by fewer worker
// results than the code requires.
var ErrInsufficient = errors.New("coding: insufficient results to decode")

// MDSCode is an (n,k) maximum-distance-separable code over float64 with a
// systematic generator: partitions 0..k-1 store the raw sub-matrices and
// partitions k..n-1 store Cauchy-coded parity, so any k of the n coded
// partitions reconstruct the original data.
//
// The Cauchy construction guarantees (in exact arithmetic) that every k×k
// submatrix of the generator is nonsingular. In float64 the decode systems
// are solved with partially pivoted LU plus one iterative-refinement step;
// for the (n,k) regimes used by the paper (n ≤ 50, n−k ≤ 10) reconstruction
// error stays near machine precision because at most n−k parity rows mix
// into any decode system.
type MDSCode struct {
	n, k int
	gen  *mat.Dense // n×k generator
	exec kernel.Exec
}

// NewMDSCode builds an (n,k) code. Requires 1 <= k <= n.
func NewMDSCode(n, k int) (*MDSCode, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("coding: invalid MDS parameters n=%d k=%d", n, k)
	}
	gen := mat.New(n, k)
	for j := 0; j < k; j++ {
		gen.Set(j, j, 1)
	}
	// Parity rows: Cauchy matrix c[i][j] = 1/(x_i + y_j) with all x_i + y_j
	// distinct and nonzero. x_i = k + i, y_j = -j + 0.5 keeps every sum in
	// (0, n+k], distinct, and O(n), which bounds the dynamic range of the
	// decode systems.
	for i := k; i < n; i++ {
		for j := 0; j < k; j++ {
			x := float64(i) // i in [k, n)
			y := 0.5 - float64(j)
			gen.Set(i, j, 1/(x+y))
		}
	}
	return &MDSCode{n: n, k: k, gen: gen}, nil
}

// SetExec pins the code's parallel loops (encoding, today) to the given
// pool and fan-out. The zero Exec — the default — uses the shared kernel
// pool with full fan-out; co-tenant clusters in one process should give
// each code its own pool or a bounded MaxFan.
func (c *MDSCode) SetExec(e kernel.Exec) { c.exec = e }

// N returns the number of coded partitions.
func (c *MDSCode) N() int { return c.n }

// K returns the recovery threshold.
func (c *MDSCode) K() int { return c.k }

// GeneratorRow returns generator row i (the mixing coefficients of coded
// partition i over the k data blocks). The returned slice is a copy.
func (c *MDSCode) GeneratorRow(i int) []float64 {
	return mat.CloneVec(c.gen.Row(i))
}

// EncodedMatrix holds the n coded partitions of a data matrix A along with
// the bookkeeping needed to decode distributed products against it.
type EncodedMatrix struct {
	Code      *MDSCode
	OrigRows  int // rows of A before padding
	Cols      int
	BlockRows int          // rows per partition (= PaddedRows/k)
	Parts     []*mat.Dense // n coded partitions, each BlockRows×Cols

	pad *mat.Dense // re-encode padding scratch (rows % k != 0 only)
}

// Encode splits A into k row blocks (zero-padding the tail) and produces
// the n coded partitions Ã_i = Σ_j G[i][j]·A_j.
func (c *MDSCode) Encode(a *mat.Dense) *EncodedMatrix {
	return c.EncodeInto(a, nil)
}

// EncodeInto is Encode reusing the partition storage of dst when its shape
// matches (the re-encode path of iterative jobs whose data matrix
// changes). dst == nil, or any shape mismatch, allocates fresh partitions.
func (c *MDSCode) EncodeInto(a *mat.Dense, dst *EncodedMatrix) *EncodedMatrix {
	cols := a.Cols()
	paddedRows := mat.PaddedRows(a.Rows(), c.k)
	blockRows := paddedRows / c.k
	if dst == nil || dst.Code != c || dst.BlockRows != blockRows || dst.Cols != cols {
		dst = &EncodedMatrix{
			Code:  c,
			Parts: make([]*mat.Dense, c.n),
		}
		for i := range dst.Parts {
			dst.Parts[i] = mat.New(blockRows, cols)
		}
	}
	dst.OrigRows = a.Rows()
	dst.Cols = cols
	dst.BlockRows = blockRows
	padded := a
	if a.Rows() != paddedRows {
		// Zero-pad into per-encoding scratch reused across re-encodes.
		if dst.pad == nil || dst.pad.Rows() != paddedRows || dst.pad.Cols() != cols {
			dst.pad = mat.New(paddedRows, cols)
		}
		data := dst.pad.Data()
		copy(data, a.Data())
		kernel.Zero(data[a.Rows()*cols:])
		padded = dst.pad
	}
	// Band-split the axpy sweeps across the pool: each participant owns a
	// disjoint row band [lo, hi) of every partition, so no two goroutines
	// ever write the same destination rows. Data blocks are row bands of
	// the padded matrix read in place — no per-block copies.
	src := padded.Data()
	c.exec.For(blockRows, encodeChunk(c.n, c.k, cols), func(lo, hi int) {
		for i := 0; i < c.n; i++ {
			band := dst.Parts[i].Data()[lo*cols : hi*cols]
			kernel.Zero(band)
			for j, g := range c.gen.Row(i) {
				if g != 0 {
					kernel.Axpy(g, src[(j*blockRows+lo)*cols:(j*blockRows+hi)*cols], band)
				}
			}
		}
	})
	return dst
}

// encodeChunk sizes encode bands so each chunk is a cache-friendly amount
// of axpy work across all n partitions and k blocks, scaled to the active
// kernel backend's per-chunk flop target.
func encodeChunk(n, k, cols int) int {
	return kernel.ChunkRows(2 * n * k * cols)
}

// WorkerCompute runs the coded mat-vec kernel a worker executes: the rows
// [ranges] of Ã_w · x. It returns a Partial ready for the decoder.
func (e *EncodedMatrix) WorkerCompute(w int, x []float64, ranges []Range) *Partial {
	return e.WorkerComputeInto(w, x, ranges, nil)
}

// WorkerComputeInto is WorkerCompute reusing dst's backing storage
// (Ranges and Values are overwritten). dst == nil allocates a fresh
// Partial.
//
//s2c2:noalloc
func (e *EncodedMatrix) WorkerComputeInto(w int, x []float64, ranges []Range, dst *Partial) *Partial {
	if dst == nil {
		// Convenience fallback; hot callers pass a reused Partial.
		//s2c2:waive noalloc
		dst = &Partial{}
	}
	dst.Worker = w
	dst.RowWidth = 1
	dst.Ranges = AppendNormalizeRanges(dst.Ranges[:0], ranges)
	total := TotalRows(dst.Ranges)
	dst.Values = kernel.Grow(dst.Values, total)
	at := 0
	for _, r := range dst.Ranges {
		mat.MatVecRowsInto(e.Parts[w], x, dst.Values[at:at+r.Len()], r.Lo, r.Hi)
		at += r.Len()
	}
	return dst
}

// WorkerComputeBatchInto is WorkerComputeInto over w x-vectors
// concatenated in xs (x_l at xs[l*Cols : (l+1)*Cols]): one sweep of the
// assigned partition rows serves every lane through the batched kernel,
// and the Partial carries RowWidth = w with row-major w-wide Values
// (lane l of covered row r at Values[r*w+l], rows in range order).
//
//s2c2:noalloc
func (e *EncodedMatrix) WorkerComputeBatchInto(worker int, xs []float64, w int, ranges []Range, dst *Partial) *Partial {
	if dst == nil {
		// Convenience fallback; hot callers pass a reused Partial.
		//s2c2:waive noalloc
		dst = &Partial{}
	}
	dst.Worker = worker
	dst.RowWidth = w
	dst.Ranges = AppendNormalizeRanges(dst.Ranges[:0], ranges)
	total := TotalRows(dst.Ranges)
	dst.Values = kernel.Grow(dst.Values, total*w)
	at := 0
	part := e.Parts[worker]
	for _, r := range dst.Ranges {
		kernel.MatVecRangeBatch(dst.Values[at:at+r.Len()*w], part.Data(), e.Cols, xs, w, r.Lo, r.Hi)
		at += r.Len() * w
	}
	return dst
}

// decodeSet is a factored k×k decode system for one set of workers.
type decodeSet struct {
	workers []int // owned copy, identifies the set
	sub     *mat.Dense
	lu      *mat.LU
}

// DecodeWorkspace holds the reusable state of DecodeMatVec rounds: the
// row-index table, factored decode systems (cached across rounds, so a
// recurring worker set is factored exactly once per workspace lifetime),
// and solve scratch. A workspace belongs to one EncodedMatrix and must not
// be shared between concurrent decodes.
type DecodeWorkspace struct {
	table   rowTable[float64]
	sets    []*decodeSet
	workers []int
	b, z    []float64
	r, dx   []float64 // iterative-refinement scratch
	out     []float64
}

// NewDecodeWorkspace returns an empty workspace for decodes against e.
// A constructor allocates by definition; rounds reuse the workspace.
//
//s2c2:noalloc-waive
func (e *EncodedMatrix) NewDecodeWorkspace() *DecodeWorkspace {
	k := e.Code.k
	return &DecodeWorkspace{
		workers: make([]int, 0, k),
		b:       make([]float64, k),
		z:       make([]float64, k),
		r:       make([]float64, k),
		dx:      make([]float64, k),
		out:     make([]float64, e.BlockRows*k),
	}
}

// setFor returns the factored decode system for the worker set, reusing a
// cached factorization when the set has been seen before. Lookup compares
// worker slices directly (the distinct-set count is tiny), so the steady
// state allocates nothing. The cache-miss branch below factors a fresh
// system — once per distinct worker set, never in a warm round.
//
//s2c2:noalloc-waive
func (ws *DecodeWorkspace) setFor(e *EncodedMatrix, workers []int) (*decodeSet, error) {
	for _, ds := range ws.sets {
		if sameWorkers(ds.workers, workers) {
			return ds, nil
		}
	}
	k := e.Code.k
	sub := mat.New(k, k)
	for i, w := range workers {
		copy(sub.Row(i), e.Code.gen.Row(w))
	}
	lu, err := mat.FactorLU(sub)
	if err != nil {
		return nil, fmt.Errorf("coding: decode set %v singular: %w", workers, err)
	}
	ds := &decodeSet{workers: append([]int(nil), workers...), sub: sub, lu: lu}
	if len(ws.sets) >= maxCachedSets {
		ws.sets = ws.sets[:0] // churn guard: drop rather than grow unbounded
	}
	ws.sets = append(ws.sets, ds)
	return ds, nil
}

// solveInto runs LU solve with one iterative-refinement sweep, writing the
// solution into x using the workspace scratch r and dx.
//
//s2c2:noalloc
func (d *decodeSet) solveInto(x, b, r, dx []float64) {
	d.lu.SolveInto(x, b)
	mat.MatVecInto(d.sub, x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	d.lu.SolveInto(dx, r)
	for i := range x {
		x[i] += dx[i]
	}
}

// DecodeMatVec reconstructs y = A·x (length OrigRows) from worker partials.
// Every partition row index must be covered by at least k workers. Decode
// systems are LU-factored once per distinct worker set and reused across
// rows, so chunk-aligned assignments decode in O(rows·k²) after O(sets·k³).
func (e *EncodedMatrix) DecodeMatVec(partials []*Partial) ([]float64, error) {
	return e.DecodeMatVecInto(nil, partials, nil)
}

// DecodeMatVecInto is DecodeMatVec writing into dst (length OrigRows ×
// the partials' RowWidth; nil allocates it) using ws for all scratch
// state. Passing the same workspace across rounds makes the steady-state
// decode allocation-free and amortises LU factorizations of recurring
// worker sets.
//
// Batched rounds decode through the same path: RowWidth-w partials yield
// a row-major w-wide dst (lane l of output row r at dst[r*w+l]), each
// lane solved as its own right-hand side against the shared per-row
// decode system — bit-identical to decoding the lane's partials alone.
//
//s2c2:noalloc
func (e *EncodedMatrix) DecodeMatVecInto(dst []float64, partials []*Partial, ws *DecodeWorkspace) ([]float64, error) {
	if ws == nil {
		ws = e.NewDecodeWorkspace()
	}
	k := e.Code.k
	if err := buildPartials(&ws.table, partials, e.BlockRows); err != nil {
		return nil, err
	}
	width := ws.table.rowWidth
	if width == 0 {
		width = 1 // no partials: fall through to the coverage error below
	}
	if dst != nil && len(dst) != e.OrigRows*width {
		return nil, fmt.Errorf("coding: decode dst length %d want %d", len(dst), e.OrigRows*width)
	}
	ws.out = kernel.Grow(ws.out, e.BlockRows*k*width)
	ws.b = kernel.Grow(ws.b, k)
	ws.z = kernel.Grow(ws.z, k)
	ws.r = kernel.Grow(ws.r, k)
	ws.dx = kernel.Grow(ws.dx, k)
	var ds *decodeSet
	for row := 0; row < e.BlockRows; row++ {
		ws.workers = ws.table.appendWorkersForRow(ws.workers, row, k)
		if len(ws.workers) < k {
			return nil, fmt.Errorf("%w: row %d covered by %d of %d needed workers", ErrInsufficient, row, len(ws.workers), k)
		}
		// Canonicalize so cache hits don't depend on arrival order (the
		// same equations in a different order solve to the same values).
		sortInts(ws.workers)
		// Consecutive rows usually share a worker set; only look up on change.
		if ds == nil || !sameWorkers(ds.workers, ws.workers) {
			var err error
			if ds, err = ws.setFor(e, ws.workers); err != nil {
				return nil, err
			}
		}
		for l := 0; l < width; l++ {
			for i, w := range ws.workers {
				ws.b[i] = ws.table.rowValue(w, row)[l]
			}
			ds.solveInto(ws.z, ws.b, ws.r, ws.dx)
			for j := 0; j < k; j++ {
				ws.out[(j*e.BlockRows+row)*width+l] = ws.z[j]
			}
		}
	}
	if dst == nil {
		// Convenience fallback; hot callers pass a reused dst.
		//s2c2:waive noalloc
		dst = make([]float64, e.OrigRows*width)
	}
	copy(dst, ws.out[:e.OrigRows*width])
	return dst, nil
}

// DecodeFullPartitions reconstructs A·x the conventional-MDS way, from k
// workers that each computed their whole partition. It is a convenience
// wrapper over DecodeMatVec.
func (e *EncodedMatrix) DecodeFullPartitions(results map[int][]float64) ([]float64, error) {
	partials := make([]*Partial, 0, len(results))
	for w, vals := range results {
		if len(vals) != e.BlockRows {
			return nil, fmt.Errorf("coding: worker %d returned %d rows, partition has %d", w, len(vals), e.BlockRows)
		}
		partials = append(partials, &Partial{
			Worker:   w,
			Ranges:   []Range{{0, e.BlockRows}},
			RowWidth: 1,
			Values:   vals,
		})
	}
	return e.DecodeMatVec(partials)
}
