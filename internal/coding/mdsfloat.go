package coding

import (
	"errors"
	"fmt"

	"github.com/coded-computing/s2c2/internal/mat"
)

// ErrInsufficient is returned when a row is covered by fewer worker
// results than the code requires.
var ErrInsufficient = errors.New("coding: insufficient results to decode")

// MDSCode is an (n,k) maximum-distance-separable code over float64 with a
// systematic generator: partitions 0..k-1 store the raw sub-matrices and
// partitions k..n-1 store Cauchy-coded parity, so any k of the n coded
// partitions reconstruct the original data.
//
// The Cauchy construction guarantees (in exact arithmetic) that every k×k
// submatrix of the generator is nonsingular. In float64 the decode systems
// are solved with partially pivoted LU plus one iterative-refinement step;
// for the (n,k) regimes used by the paper (n ≤ 50, n−k ≤ 10) reconstruction
// error stays near machine precision because at most n−k parity rows mix
// into any decode system.
type MDSCode struct {
	n, k int
	gen  *mat.Dense // n×k generator
}

// NewMDSCode builds an (n,k) code. Requires 1 <= k <= n.
func NewMDSCode(n, k int) (*MDSCode, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("coding: invalid MDS parameters n=%d k=%d", n, k)
	}
	gen := mat.New(n, k)
	for j := 0; j < k; j++ {
		gen.Set(j, j, 1)
	}
	// Parity rows: Cauchy matrix c[i][j] = 1/(x_i + y_j) with all x_i + y_j
	// distinct and nonzero. x_i = k + i, y_j = -j + 0.5 keeps every sum in
	// (0, n+k], distinct, and O(n), which bounds the dynamic range of the
	// decode systems.
	for i := k; i < n; i++ {
		for j := 0; j < k; j++ {
			x := float64(i) // i in [k, n)
			y := 0.5 - float64(j)
			gen.Set(i, j, 1/(x+y))
		}
	}
	return &MDSCode{n: n, k: k, gen: gen}, nil
}

// N returns the number of coded partitions.
func (c *MDSCode) N() int { return c.n }

// K returns the recovery threshold.
func (c *MDSCode) K() int { return c.k }

// GeneratorRow returns generator row i (the mixing coefficients of coded
// partition i over the k data blocks). The returned slice is a copy.
func (c *MDSCode) GeneratorRow(i int) []float64 {
	return mat.CloneVec(c.gen.Row(i))
}

// EncodedMatrix holds the n coded partitions of a data matrix A along with
// the bookkeeping needed to decode distributed products against it.
type EncodedMatrix struct {
	Code      *MDSCode
	OrigRows  int // rows of A before padding
	Cols      int
	BlockRows int          // rows per partition (= PaddedRows/k)
	Parts     []*mat.Dense // n coded partitions, each BlockRows×Cols
}

// Encode splits A into k row blocks (zero-padding the tail) and produces
// the n coded partitions Ã_i = Σ_j G[i][j]·A_j.
func (c *MDSCode) Encode(a *mat.Dense) *EncodedMatrix {
	blocks := mat.SplitRows(a, c.k)
	blockRows, cols := blocks[0].Dims()
	parts := make([]*mat.Dense, c.n)
	for i := 0; i < c.n; i++ {
		p := mat.New(blockRows, cols)
		row := c.gen.Row(i)
		for j, g := range row {
			if g != 0 {
				p.AddScaled(g, blocks[j])
			}
		}
		parts[i] = p
	}
	return &EncodedMatrix{
		Code:      c,
		OrigRows:  a.Rows(),
		Cols:      cols,
		BlockRows: blockRows,
		Parts:     parts,
	}
}

// WorkerCompute runs the coded mat-vec kernel a worker executes: the rows
// [ranges] of Ã_w · x. It returns a Partial ready for the decoder.
func (e *EncodedMatrix) WorkerCompute(w int, x []float64, ranges []Range) *Partial {
	ranges = NormalizeRanges(ranges)
	vals := make([]float64, 0, TotalRows(ranges))
	for _, r := range ranges {
		vals = append(vals, mat.MatVecRows(e.Parts[w], x, r.Lo, r.Hi)...)
	}
	return &Partial{Worker: w, Ranges: ranges, RowWidth: 1, Values: vals}
}

// DecodeMatVec reconstructs y = A·x (length OrigRows) from worker partials.
// Every partition row index must be covered by at least k workers. Decode
// systems are LU-factored once per distinct worker set and reused across
// rows, so chunk-aligned assignments decode in O(rows·k²) after O(sets·k³).
func (e *EncodedMatrix) DecodeMatVec(partials []*Partial) ([]float64, error) {
	k := e.Code.k
	table, err := buildRowTable(partials, e.BlockRows)
	if err != nil {
		return nil, err
	}
	if table.rowWidth != 0 && table.rowWidth != 1 {
		return nil, fmt.Errorf("coding: DecodeMatVec expects RowWidth 1, got %d", table.rowWidth)
	}
	out := make([]float64, e.BlockRows*k)
	cache := map[string]*decodeSet{}
	b := make([]float64, k)
	for row := 0; row < e.BlockRows; row++ {
		workers := table.workersForRow(row, k)
		if len(workers) < k {
			return nil, fmt.Errorf("%w: row %d covered by %d of %d needed workers", ErrInsufficient, row, len(workers), k)
		}
		ds, err := e.decodeSetFor(cache, workers)
		if err != nil {
			return nil, err
		}
		for i, w := range workers {
			b[i] = table.rowValue(w, row)[0]
		}
		z := ds.solve(b)
		for j := 0; j < k; j++ {
			out[j*e.BlockRows+row] = z[j]
		}
	}
	return out[:e.OrigRows], nil
}

// decodeSet is a factored k×k decode system for one set of workers.
type decodeSet struct {
	sub *mat.Dense
	lu  *mat.LU
}

func (e *EncodedMatrix) decodeSetFor(cache map[string]*decodeSet, workers []int) (*decodeSet, error) {
	key := setKey(workers)
	if ds, ok := cache[key]; ok {
		return ds, nil
	}
	k := e.Code.k
	sub := mat.New(k, k)
	for i, w := range workers {
		copy(sub.Row(i), e.Code.gen.Row(w))
	}
	lu, err := mat.FactorLU(sub)
	if err != nil {
		return nil, fmt.Errorf("coding: decode set %v singular: %w", workers, err)
	}
	ds := &decodeSet{sub: sub, lu: lu}
	cache[key] = ds
	return ds, nil
}

// solve runs LU solve with one iterative-refinement sweep.
func (d *decodeSet) solve(b []float64) []float64 {
	x := d.lu.Solve(b)
	r := mat.MatVec(d.sub, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	dx := d.lu.Solve(r)
	for i := range x {
		x[i] += dx[i]
	}
	return x
}

// DecodeFullPartitions reconstructs A·x the conventional-MDS way, from k
// workers that each computed their whole partition. It is a convenience
// wrapper over DecodeMatVec.
func (e *EncodedMatrix) DecodeFullPartitions(results map[int][]float64) ([]float64, error) {
	partials := make([]*Partial, 0, len(results))
	for w, vals := range results {
		if len(vals) != e.BlockRows {
			return nil, fmt.Errorf("coding: worker %d returned %d rows, partition has %d", w, len(vals), e.BlockRows)
		}
		partials = append(partials, &Partial{
			Worker:   w,
			Ranges:   []Range{{0, e.BlockRows}},
			RowWidth: 1,
			Values:   vals,
		})
	}
	return e.DecodeMatVec(partials)
}
