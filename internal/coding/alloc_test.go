package coding

import (
	"math/rand"
	"testing"

	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/mat"
)

// Allocation-regression tests for the workspace-backed decode paths.

func mdsDecodeFixture(t testing.TB) (*EncodedMatrix, []*Partial) {
	rng := rand.New(rand.NewSource(40))
	a := mat.Rand(600, 20, rng)
	code, err := NewMDSCode(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	enc := code.Encode(a)
	x := make([]float64, 20)
	for i := range x {
		x[i] = rng.Float64()
	}
	// Mixed systematic+parity worker set with full partitions.
	var partials []*Partial
	for _, w := range []int{0, 1, 2, 3, 4, 5, 8, 9} {
		partials = append(partials, enc.WorkerCompute(w, x, []Range{{0, enc.BlockRows}}))
	}
	return enc, partials
}

func TestDecodeMatVecIntoZeroAllocsSteadyState(t *testing.T) {
	enc, partials := mdsDecodeFixture(t)
	ws := enc.NewDecodeWorkspace()
	dst := make([]float64, enc.OrigRows)
	// Warm: first round builds the table and factors the decode set.
	if _, err := enc.DecodeMatVecInto(dst, partials, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := enc.DecodeMatVecInto(dst, partials, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodeMatVecInto allocates %v/op in steady state, want 0", allocs)
	}
}

func TestDecodeMatVecIntoMatchesDecodeMatVec(t *testing.T) {
	enc, partials := mdsDecodeFixture(t)
	want, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	ws := enc.NewDecodeWorkspace()
	dst := make([]float64, enc.OrigRows)
	for round := 0; round < 3; round++ {
		got, err := enc.DecodeMatVecInto(dst, partials, ws)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.VecApproxEqual(got, want, 1e-12) {
			t.Fatalf("round %d: workspace decode disagrees with one-shot decode", round)
		}
	}
}

func TestDecodeWorkspaceCachesFactorizations(t *testing.T) {
	enc, partials := mdsDecodeFixture(t)
	ws := enc.NewDecodeWorkspace()
	for round := 0; round < 3; round++ {
		if _, err := enc.DecodeMatVecInto(nil, partials, ws); err != nil {
			t.Fatal(err)
		}
	}
	if len(ws.sets) != 1 {
		t.Fatalf("workspace holds %d factored sets after 3 identical rounds, want 1", len(ws.sets))
	}
}

func TestWorkerComputeIntoReusesBuffers(t *testing.T) {
	enc, _ := mdsDecodeFixture(t)
	x := make([]float64, enc.Cols)
	p := enc.WorkerComputeInto(0, x, []Range{{0, enc.BlockRows}}, nil)
	base := &p.Values[0]
	p2 := enc.WorkerComputeInto(1, x, []Range{{0, enc.BlockRows}}, p)
	if p2 != p || &p2.Values[0] != base {
		t.Fatal("WorkerComputeInto did not reuse the destination partial's storage")
	}
	if p2.Worker != 1 {
		t.Fatalf("Worker = %d, want 1", p2.Worker)
	}
}

func TestPolyDecodeIntoMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := mat.Rand(60, 24, rng)
	code, err := NewPolyCode(10, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := code.EncodeHessian(a)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, 60)
	for i := range d {
		d[i] = rng.Float64()
	}
	var partials []*Partial
	for w := 0; w < 9; w++ {
		partials = append(partials, enc.WorkerCompute(w, d, []Range{{0, enc.BlockColsA}}))
	}
	want, err := enc.Decode(partials)
	if err != nil {
		t.Fatal(err)
	}
	ws := enc.NewDecodeWorkspace()
	dst := mat.New(enc.ColsA, enc.ColsB)
	for round := 0; round < 3; round++ {
		got, err := enc.DecodeInto(dst, partials, ws)
		if err != nil {
			t.Fatal(err)
		}
		if !got.ApproxEqual(want, 1e-9) {
			t.Fatalf("round %d: poly workspace decode mismatch", round)
		}
	}
	if len(ws.sets) != 1 {
		t.Fatalf("poly workspace holds %d inverses, want 1", len(ws.sets))
	}
}

func TestEncodeIntoReusesPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	code, err := NewMDSCode(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := mat.Rand(40, 8, rng)
	enc := code.Encode(a)
	parts0 := enc.Parts[0]
	b := mat.Rand(40, 8, rng)
	enc2 := code.EncodeInto(b, enc)
	if enc2 != enc || enc2.Parts[0] != parts0 {
		t.Fatal("EncodeInto did not reuse partition storage")
	}
	// Re-encoded partitions must decode the new matrix.
	x := make([]float64, 8)
	for i := range x {
		x[i] = rng.Float64()
	}
	results := map[int][]float64{}
	for w := 0; w < 4; w++ {
		results[w] = mat.MatVec(enc2.Parts[w], x)
	}
	got, err := enc2.DecodeFullPartitions(results)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, mat.MatVec(b, x), 1e-9) {
		t.Fatal("EncodeInto-reencoded matrix decodes wrong product")
	}
}

func TestGFDecodeIntoMatchesDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rows, cols := 100, 10
	code, err := NewGFMDSCode(8, 6)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]gf.Elem, rows*cols)
	for i := range payload {
		payload[i] = gf.New(rng.Uint64())
	}
	enc, err := code.Encode(rows, cols, payload)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]gf.Elem, cols)
	for i := range x {
		x[i] = gf.New(rng.Uint64())
	}
	var partials []*GFPartial
	for _, w := range []int{0, 1, 2, 3, 6, 7} {
		p, err := enc.WorkerMatVec(w, x, []Range{{0, enc.BlockRows}})
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, p)
	}
	want, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	ws := enc.NewDecodeWorkspace()
	dst := make([]gf.Elem, enc.OrigRows)
	for round := 0; round < 3; round++ {
		got, err := enc.DecodeMatVecInto(dst, partials, ws)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("round %d: GF workspace decode differs at %d", round, i)
			}
		}
	}
}
