package coding

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/kernel"
)

// LagrangeCode implements Lagrange Coded Computing (Yu et al.,
// AISTATS'19), the generalisation of MDS/polynomial coding the paper
// points to in §2: it adds coded redundancy for *any* polynomial
// computation f applied to the data blocks, not just linear or bilinear
// maps.
//
// K data blocks X_1..X_K are interpolated by the encoding polynomial
//
//	u(z) = Σ_j X_j · ℓ_j(z)        (ℓ_j = Lagrange basis over points β_j)
//
// and worker i stores the share u(α_i). When every worker applies a
// polynomial f of total degree d to its share, f∘u has degree (K−1)·d,
// so any (K−1)·d + 1 worker results interpolate f∘u exactly — and
// evaluating it back at the β_j yields every f(X_j).
//
// Arithmetic is over GF(2³¹−1), making encode→compute→decode bit-exact.
// The first K evaluation points coincide with the β_j, so shares 0..K−1
// are systematic (they hold the raw blocks).
type LagrangeCode struct {
	k, n   int
	betas  []gf.Elem
	alphas []gf.Elem
	exec   kernel.Exec
}

// NewLagrangeCode builds a code with n workers over k data blocks.
// The usable polynomial degree is bounded by n ≥ (k−1)·d + 1.
func NewLagrangeCode(n, k int) (*LagrangeCode, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("coding: invalid Lagrange parameters n=%d k=%d", n, k)
	}
	betas := make([]gf.Elem, k)
	for j := range betas {
		betas[j] = gf.Elem(j + 1)
	}
	alphas := make([]gf.Elem, n)
	for i := range alphas {
		alphas[i] = gf.Elem(i + 1) // α_i = β_i for i < k → systematic prefix
	}
	return &LagrangeCode{k: k, n: n, betas: betas, alphas: alphas}, nil
}

// SetExec pins the code's parallel encode loops to the given pool and
// fan-out; the zero Exec uses the shared kernel pool with full fan-out.
func (c *LagrangeCode) SetExec(e kernel.Exec) { c.exec = e }

// K returns the number of data blocks.
func (c *LagrangeCode) K() int { return c.k }

// N returns the number of workers/shares.
func (c *LagrangeCode) N() int { return c.n }

// RecoveryThreshold returns the number of worker results needed to decode
// a degree-d polynomial computation.
func (c *LagrangeCode) RecoveryThreshold(degree int) int {
	if degree < 1 {
		degree = 1
	}
	return (c.k-1)*degree + 1
}

// MaxDegree returns the largest polynomial degree this (n,k) code can
// decode.
func (c *LagrangeCode) MaxDegree() int {
	if c.k == 1 {
		return 1 << 30 // a single block is recoverable from any 1 share
	}
	return (c.n - 1) / (c.k - 1)
}

// Encode produces the n shares u(α_i) from k equal-length data blocks,
// elementwise. Share i has the same length as each block.
func (c *LagrangeCode) Encode(blocks [][]gf.Elem) ([][]gf.Elem, error) {
	if len(blocks) != c.k {
		return nil, fmt.Errorf("coding: got %d blocks for k=%d", len(blocks), c.k)
	}
	size := len(blocks[0])
	for j, b := range blocks {
		if len(b) != size {
			return nil, fmt.Errorf("coding: block %d has length %d, want %d", j, len(b), size)
		}
	}
	shares := make([][]gf.Elem, c.n)
	coeffs := make([][]gf.Elem, c.n)
	for i := 0; i < c.n; i++ {
		// Systematic fast path: α_i == β_i for i < k.
		if i < c.k {
			shares[i] = append([]gf.Elem(nil), blocks[i]...)
			continue
		}
		// ℓ_j(α_i) coefficients, computed up front so the element sweep
		// below can split freely across the pool.
		coeffs[i] = lagrangeBasisAt(c.betas, c.alphas[i])
		shares[i] = make([]gf.Elem, size)
	}
	if c.n == c.k {
		return shares, nil // fully systematic: nothing left to mix
	}
	// Band-split the parity mixing over the element dimension: each
	// participant owns elements [lo, hi) of every non-systematic share.
	c.exec.For(size, encodeChunk(c.n-c.k, c.k, 1), func(lo, hi int) {
		for i := c.k; i < c.n; i++ {
			share := shares[i]
			for j, b := range blocks {
				cj := coeffs[i][j]
				if cj == 0 {
					continue
				}
				for e := lo; e < hi; e++ {
					share[e] = gf.Add(share[e], gf.Mul(cj, b[e]))
				}
			}
		}
	})
	return shares, nil
}

// LagrangeWorkspace holds the reusable decode state of one LagrangeCode:
// the selected worker set, its evaluation points, and the interpolation
// weight matrix, recycled across rounds. Not safe for concurrent decodes.
type LagrangeWorkspace struct {
	workers []int
	pts     []gf.Elem
	weights [][]gf.Elem
}

// NewDecodeWorkspace returns an empty decode workspace for c.
func (c *LagrangeCode) NewDecodeWorkspace() *LagrangeWorkspace {
	return &LagrangeWorkspace{}
}

// Decode reconstructs f(X_1)..f(X_K) from worker results f(u(α_i)).
// results maps worker index → its computed share (all equal length);
// degree is the total degree of f. At least RecoveryThreshold(degree)
// results are required.
func (c *LagrangeCode) Decode(results map[int][]gf.Elem, degree int) ([][]gf.Elem, error) {
	return c.DecodeInto(nil, results, degree, nil)
}

// DecodeInto is Decode writing into dst — k blocks (nil allocates them)
// whose storage is reused when block lengths match the result size, with
// ws recycling the interpolation scratch across rounds. Like the other
// codecs' Into forms, a non-nil dst of the wrong block count is an error.
func (c *LagrangeCode) DecodeInto(dst [][]gf.Elem, results map[int][]gf.Elem, degree int, ws *LagrangeWorkspace) ([][]gf.Elem, error) {
	if dst != nil && len(dst) != c.k {
		return nil, fmt.Errorf("coding: decode dst has %d blocks, want %d", len(dst), c.k)
	}
	t := c.RecoveryThreshold(degree)
	if len(results) < t {
		return nil, fmt.Errorf("%w: have %d results, degree-%d decode needs %d",
			ErrInsufficient, len(results), degree, t)
	}
	if ws == nil {
		ws = c.NewDecodeWorkspace()
	}
	// Pick t results deterministically (ascending worker index).
	ws.workers = ws.workers[:0]
	for w := range results {
		if w < 0 || w >= c.n {
			return nil, fmt.Errorf("coding: result from unknown worker %d", w)
		}
		ws.workers = append(ws.workers, w)
	}
	sortInts(ws.workers)
	workers := ws.workers[:t]
	size := -1
	for _, w := range workers {
		if size == -1 {
			size = len(results[w])
		} else if len(results[w]) != size {
			return nil, fmt.Errorf("coding: worker %d result length %d, want %d", w, len(results[w]), size)
		}
	}
	if cap(ws.pts) < t {
		ws.pts = make([]gf.Elem, t)
	}
	ws.pts = ws.pts[:t]
	for i, w := range workers {
		ws.pts[i] = c.alphas[w]
	}
	// Interpolation weights from the t sample points to each β_j:
	// out_j = Σ_i y_i · ℓ_i^{pts}(β_j).
	if cap(ws.weights) < c.k {
		ws.weights = make([][]gf.Elem, c.k)
	}
	ws.weights = ws.weights[:c.k]
	for j := 0; j < c.k; j++ {
		ws.weights[j] = appendLagrangeBasisAt(ws.weights[j][:0], ws.pts, c.betas[j])
	}
	if dst == nil {
		dst = make([][]gf.Elem, c.k)
	}
	for j := 0; j < c.k; j++ {
		if len(dst[j]) != size {
			dst[j] = make([]gf.Elem, size)
		} else {
			for e := range dst[j] {
				dst[j][e] = 0
			}
		}
		block := dst[j]
		for i, w := range workers {
			wij := ws.weights[j][i]
			if wij == 0 {
				continue
			}
			for e, v := range results[w] {
				block[e] = gf.Add(block[e], gf.Mul(wij, v))
			}
		}
	}
	return dst, nil
}

// lagrangeBasisAt returns [ℓ_0(x), …, ℓ_{m−1}(x)] for the basis defined
// by the distinct points pts.
func lagrangeBasisAt(pts []gf.Elem, x gf.Elem) []gf.Elem {
	return appendLagrangeBasisAt(nil, pts, x)
}

// appendLagrangeBasisAt appends the basis values onto dst, reusing its
// storage.
func appendLagrangeBasisAt(dst []gf.Elem, pts []gf.Elem, x gf.Elem) []gf.Elem {
	m := len(pts)
	for i := 0; i < m; i++ {
		num := gf.Elem(1)
		den := gf.Elem(1)
		for j := 0; j < m; j++ {
			if j == i {
				continue
			}
			num = gf.Mul(num, gf.Sub(x, pts[j]))
			den = gf.Mul(den, gf.Sub(pts[i], pts[j]))
		}
		dst = append(dst, gf.Mul(num, gf.Inv(den)))
	}
	return dst
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
