package coding

import (
	"fmt"

	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/kernel"
)

// LagrangeCode implements Lagrange Coded Computing (Yu et al.,
// AISTATS'19), the generalisation of MDS/polynomial coding the paper
// points to in §2: it adds coded redundancy for *any* polynomial
// computation f applied to the data blocks, not just linear or bilinear
// maps.
//
// K data blocks X_1..X_K are interpolated by the encoding polynomial
//
//	u(z) = Σ_j X_j · ℓ_j(z)        (ℓ_j = Lagrange basis over points β_j)
//
// and worker i stores the share u(α_i). When every worker applies a
// polynomial f of total degree d to its share, f∘u has degree (K−1)·d,
// so any (K−1)·d + 1 worker results interpolate f∘u exactly — and
// evaluating it back at the β_j yields every f(X_j).
//
// Arithmetic is over GF(2³¹−1), making encode→compute→decode bit-exact.
// The first K evaluation points coincide with the β_j, so shares 0..K−1
// are systematic (they hold the raw blocks).
type LagrangeCode struct {
	k, n   int
	betas  []gf.Elem
	alphas []gf.Elem
	// parity[i-k][j] = ℓ_j(α_i) for the non-systematic shares: the mixing
	// coefficients depend only on the code's points, so they are computed
	// once here instead of on every encode.
	parity [][]gf.Elem
	exec   kernel.Exec
}

// NewLagrangeCode builds a code with n workers over k data blocks.
// The usable polynomial degree is bounded by n ≥ (k−1)·d + 1.
func NewLagrangeCode(n, k int) (*LagrangeCode, error) {
	if k < 1 || n < k {
		return nil, fmt.Errorf("coding: invalid Lagrange parameters n=%d k=%d", n, k)
	}
	betas := make([]gf.Elem, k)
	for j := range betas {
		betas[j] = gf.Elem(j + 1)
	}
	alphas := make([]gf.Elem, n)
	for i := range alphas {
		alphas[i] = gf.Elem(i + 1) // α_i = β_i for i < k → systematic prefix
	}
	parity := make([][]gf.Elem, n-k)
	for i := k; i < n; i++ {
		parity[i-k] = lagrangeBasisAt(betas, alphas[i])
	}
	return &LagrangeCode{k: k, n: n, betas: betas, alphas: alphas, parity: parity}, nil
}

// SetExec pins the code's parallel encode loops to the given pool and
// fan-out; the zero Exec uses the shared kernel pool with full fan-out.
func (c *LagrangeCode) SetExec(e kernel.Exec) { c.exec = e }

// K returns the number of data blocks.
func (c *LagrangeCode) K() int { return c.k }

// N returns the number of workers/shares.
func (c *LagrangeCode) N() int { return c.n }

// RecoveryThreshold returns the number of worker results needed to decode
// a degree-d polynomial computation.
func (c *LagrangeCode) RecoveryThreshold(degree int) int {
	if degree < 1 {
		degree = 1
	}
	return (c.k-1)*degree + 1
}

// MaxDegree returns the largest polynomial degree this (n,k) code can
// decode.
func (c *LagrangeCode) MaxDegree() int {
	if c.k == 1 {
		return 1 << 30 // a single block is recoverable from any 1 share
	}
	return (c.n - 1) / (c.k - 1)
}

// Encode produces the n shares u(α_i) from k equal-length data blocks,
// elementwise. Share i has the same length as each block.
func (c *LagrangeCode) Encode(blocks [][]gf.Elem) ([][]gf.Elem, error) {
	return c.EncodeInto(nil, blocks)
}

// EncodeInto is Encode writing into dst, reusing its share storage when
// lengths match — the re-encode path of iterative Lagrange jobs, which
// would otherwise re-allocate every share each iteration. dst == nil
// allocates fresh shares; a non-nil dst must have n slots (their backing
// arrays may be nil or of any capacity). Steady-state re-encodes with a
// warm dst perform no allocation.
func (c *LagrangeCode) EncodeInto(dst [][]gf.Elem, blocks [][]gf.Elem) ([][]gf.Elem, error) {
	if len(blocks) != c.k {
		return nil, fmt.Errorf("coding: got %d blocks for k=%d", len(blocks), c.k)
	}
	size := len(blocks[0])
	for j, b := range blocks {
		if len(b) != size {
			return nil, fmt.Errorf("coding: block %d has length %d, want %d", j, len(b), size)
		}
	}
	if dst == nil {
		dst = make([][]gf.Elem, c.n)
	} else if len(dst) != c.n {
		return nil, fmt.Errorf("coding: encode dst has %d shares, want %d", len(dst), c.n)
	}
	for i := 0; i < c.n; i++ {
		dst[i] = kernel.GrowSlice(dst[i], size)
		if i < c.k {
			// Systematic fast path: α_i == β_i for i < k.
			copy(dst[i], blocks[i])
		} else {
			clear(dst[i])
		}
	}
	if c.n == c.k {
		return dst, nil // fully systematic: nothing left to mix
	}
	// Band-split the parity mixing over the element dimension: each
	// participant owns elements [lo, hi) of every non-systematic share.
	// The serial case calls mixParity directly — no closure, so warm
	// steady-state re-encodes allocate nothing.
	if c.exec.Workers() == 1 {
		c.mixParity(dst, blocks, 0, size)
	} else {
		c.exec.For(size, encodeChunk(c.n-c.k, c.k, 1), func(lo, hi int) {
			c.mixParity(dst, blocks, lo, hi)
		})
	}
	return dst, nil
}

// mixParity accumulates elements [lo, hi) of every non-systematic share
// with the gf.Axpy mul-accumulate kernel over the cached ℓ_j(α_i)
// coefficients.
func (c *LagrangeCode) mixParity(shares, blocks [][]gf.Elem, lo, hi int) {
	for i := c.k; i < c.n; i++ {
		share := shares[i]
		coeffs := c.parity[i-c.k]
		for j, b := range blocks {
			gf.Axpy(share[lo:hi], coeffs[j], b[lo:hi])
		}
	}
}

// LagrangeWorkspace holds the reusable decode state of one LagrangeCode:
// the selected worker set, its evaluation points, and the interpolation
// weight matrix, recycled across rounds. Not safe for concurrent decodes.
type LagrangeWorkspace struct {
	workers []int
	pts     []gf.Elem
	weights [][]gf.Elem
}

// NewDecodeWorkspace returns an empty decode workspace for c.
func (c *LagrangeCode) NewDecodeWorkspace() *LagrangeWorkspace {
	return &LagrangeWorkspace{}
}

// Decode reconstructs f(X_1)..f(X_K) from worker results f(u(α_i)).
// results maps worker index → its computed share (all equal length);
// degree is the total degree of f. At least RecoveryThreshold(degree)
// results are required.
func (c *LagrangeCode) Decode(results map[int][]gf.Elem, degree int) ([][]gf.Elem, error) {
	return c.DecodeInto(nil, results, degree, nil)
}

// DecodeInto is Decode writing into dst — k blocks (nil allocates them)
// whose storage is reused when block lengths match the result size, with
// ws recycling the interpolation scratch across rounds. Like the other
// codecs' Into forms, a non-nil dst of the wrong block count is an error.
func (c *LagrangeCode) DecodeInto(dst [][]gf.Elem, results map[int][]gf.Elem, degree int, ws *LagrangeWorkspace) ([][]gf.Elem, error) {
	if dst != nil && len(dst) != c.k {
		return nil, fmt.Errorf("coding: decode dst has %d blocks, want %d", len(dst), c.k)
	}
	t := c.RecoveryThreshold(degree)
	if len(results) < t {
		return nil, fmt.Errorf("%w: have %d results, degree-%d decode needs %d",
			ErrInsufficient, len(results), degree, t)
	}
	if ws == nil {
		ws = c.NewDecodeWorkspace()
	}
	// Pick t results deterministically (ascending worker index).
	ws.workers = ws.workers[:0]
	for w := range results {
		if w < 0 || w >= c.n {
			return nil, fmt.Errorf("coding: result from unknown worker %d", w)
		}
		ws.workers = append(ws.workers, w)
	}
	sortInts(ws.workers)
	workers := ws.workers[:t]
	size := -1
	for _, w := range workers {
		if size == -1 {
			size = len(results[w])
		} else if len(results[w]) != size {
			return nil, fmt.Errorf("coding: worker %d result length %d, want %d", w, len(results[w]), size)
		}
	}
	if cap(ws.pts) < t {
		ws.pts = make([]gf.Elem, t)
	}
	ws.pts = ws.pts[:t]
	for i, w := range workers {
		ws.pts[i] = c.alphas[w]
	}
	// Interpolation weights from the t sample points to each β_j:
	// out_j = Σ_i y_i · ℓ_i^{pts}(β_j).
	if cap(ws.weights) < c.k {
		ws.weights = make([][]gf.Elem, c.k)
	}
	ws.weights = ws.weights[:c.k]
	for j := 0; j < c.k; j++ {
		ws.weights[j] = appendLagrangeBasisAt(ws.weights[j][:0], ws.pts, c.betas[j])
	}
	if dst == nil {
		dst = make([][]gf.Elem, c.k)
	}
	for j := 0; j < c.k; j++ {
		dst[j] = kernel.GrowSlice(dst[j], size)
		clear(dst[j])
		// Back-substitution: accumulate each selected worker's share into
		// the output block with the mul-accumulate kernel.
		block := dst[j]
		for i, w := range workers {
			gf.Axpy(block, ws.weights[j][i], results[w])
		}
	}
	return dst, nil
}

// CompleteGFShares assembles per-worker complete result vectors from a GF
// round's partials — the form LagrangeCode.Decode consumes. A worker whose
// partials (possibly several: split results, reassignment extras) cover
// every one of the blockRows rows contributes one length blockRows·width
// vector, where width is the partials' common RowWidth (row-major
// width-wide, like batched decode output); mixing widths is an error.
// Workers with partial coverage are omitted (Lagrange interpolation needs
// whole share evaluations, unlike the per-row MDS decode). Duplicate
// (worker, row) deliveries are benign: every copy is the same
// deterministic field value, so the last write wins.
func CompleteGFShares(partials []*GFPartial, blockRows int) (map[int][]gf.Elem, error) {
	width := 1
	if len(partials) > 0 {
		width = partials[0].Width()
	}
	vecs := map[int][]gf.Elem{}
	covered := map[int][]bool{}
	count := map[int]int{}
	for _, p := range partials {
		if p.Width() != width {
			return nil, fmt.Errorf("coding: mixed row widths %d and %d", width, p.Width())
		}
		if err := validatePartial(p.Worker, p.Ranges, len(p.Values), width, blockRows); err != nil {
			return nil, err
		}
		v := vecs[p.Worker]
		if v == nil {
			v = make([]gf.Elem, blockRows*width)
			vecs[p.Worker] = v
			covered[p.Worker] = make([]bool, blockRows)
		}
		cov := covered[p.Worker]
		at := 0
		for _, r := range p.Ranges {
			for row := r.Lo; row < r.Hi; row++ {
				copy(v[row*width:(row+1)*width], p.Values[at:at+width])
				if !cov[row] {
					cov[row] = true
					count[p.Worker]++
				}
				at += width
			}
		}
	}
	for w, c := range count {
		if c < blockRows {
			delete(vecs, w)
		}
	}
	return vecs, nil
}

// lagrangeBasisAt returns [ℓ_0(x), …, ℓ_{m−1}(x)] for the basis defined
// by the distinct points pts.
func lagrangeBasisAt(pts []gf.Elem, x gf.Elem) []gf.Elem {
	return appendLagrangeBasisAt(nil, pts, x)
}

// appendLagrangeBasisAt appends the basis values onto dst, reusing its
// storage.
func appendLagrangeBasisAt(dst []gf.Elem, pts []gf.Elem, x gf.Elem) []gf.Elem {
	m := len(pts)
	for i := 0; i < m; i++ {
		num := gf.Elem(1)
		den := gf.Elem(1)
		for j := 0; j < m; j++ {
			if j == i {
				continue
			}
			num = gf.Mul(num, gf.Sub(x, pts[j]))
			den = gf.Mul(den, gf.Sub(pts[i], pts[j]))
		}
		dst = append(dst, gf.Mul(num, gf.Inv(den)))
	}
	return dst
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
