package coding

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coded-computing/s2c2/internal/mat"
)

func TestPolyCodeValidation(t *testing.T) {
	if _, err := NewPolyCode(3, 2, 2); err == nil {
		t.Fatal("a·b > n must fail")
	}
	if _, err := NewPolyCode(5, 0, 2); err == nil {
		t.Fatal("a=0 must fail")
	}
	c, err := NewPolyCode(5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.RecoveryThreshold() != 4 || c.N() != 5 {
		t.Fatal("bad parameters")
	}
	seen := map[float64]bool{}
	for i := 0; i < 5; i++ {
		a := c.Alpha(i)
		if a <= -1 || a >= 1 || seen[a] {
			t.Fatalf("alpha %d = %v not distinct in (-1,1)", i, a)
		}
		seen[a] = true
	}
}

func TestPolyHessianRoundTrip(t *testing.T) {
	// The paper's Figure 12 setup at test scale: 12 nodes, a=b=3, any 9
	// of 12 decode Aᵀ·diag(d)·A.
	rng := rand.New(rand.NewSource(21))
	a := mat.Rand(18, 9, rng)
	d := randVec(18, rng)
	want := mat.ATDiagA(a, d)

	c, err := NewPolyCode(12, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.EncodeHessian(a)
	if err != nil {
		t.Fatal(err)
	}
	// Any 9 of the 12 nodes, full partitions.
	var partials []*Partial
	for _, w := range rng.Perm(12)[:9] {
		partials = append(partials, enc.WorkerCompute(w, d, []Range{{0, enc.BlockColsA}}))
	}
	got, err := enc.Decode(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, 1e-7) {
		t.Fatalf("Hessian decode mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestPolyBilinearRectangular(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := mat.Rand(10, 6, rng)
	b := mat.Rand(10, 4, rng)
	d := randVec(10, rng)
	want := mat.ATDiagB(a, d, b)

	c, err := NewPolyCode(7, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.EncodeBilinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	var partials []*Partial
	for _, w := range rng.Perm(7)[:6] {
		partials = append(partials, enc.WorkerCompute(w, d, []Range{{0, enc.BlockColsA}}))
	}
	got, err := enc.Decode(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, 1e-7) {
		t.Fatal("bilinear decode mismatch")
	}
}

func TestPolyS2C2PartialRows(t *testing.T) {
	// Figure 5's exact scenario: 5 nodes, a=b=2, each partition has 9 rows,
	// relative speeds {2,2,2,2,1}. General S2C2 allocates {8,8,8,8,4} rows
	// as contiguous cyclic ranges, so every row index is covered by exactly
	// a·b = 4 nodes and the partial straggler still contributes useful work.
	rng := rand.New(rand.NewSource(23))
	a := mat.Rand(12, 18, rng) // a=2 → BlockColsA = 9, as in Figure 5
	b := mat.Rand(12, 8, rng)
	d := randVec(12, rng)
	want := mat.ATDiagB(a, d, b)

	c, err := NewPolyCode(5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.EncodeBilinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if enc.BlockColsA != 9 {
		t.Fatalf("BlockColsA = %d want 9", enc.BlockColsA)
	}
	// Contiguous cyclic allocation of {8,8,8,8,4} rows over 9 row indices.
	assign := map[int][]Range{
		0: {{0, 8}},
		1: {{8, 9}, {0, 7}},
		2: {{7, 9}, {0, 6}},
		3: {{6, 9}, {0, 5}},
		4: {{5, 9}},
	}
	var partials []*Partial
	for w, ranges := range assign {
		partials = append(partials, enc.WorkerCompute(w, d, ranges))
	}
	got, err := enc.Decode(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, 1e-7) {
		t.Fatal("S2C2 partial-row polynomial decode mismatch")
	}
}

func TestPolyInsufficient(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := mat.Rand(8, 4, rng)
	d := randVec(8, rng)
	c, _ := NewPolyCode(5, 2, 2)
	enc, _ := c.EncodeHessian(a)
	var partials []*Partial
	for w := 0; w < 3; w++ {
		partials = append(partials, enc.WorkerCompute(w, d, []Range{{0, enc.BlockColsA}}))
	}
	if _, err := enc.Decode(partials); err == nil {
		t.Fatal("expected insufficient-coverage error")
	}
}

func TestPolyAnySubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		aBlocks := 1 + r.Intn(3)
		bBlocks := 1 + r.Intn(3)
		n := aBlocks*bBlocks + r.Intn(3)
		rows := 2 + r.Intn(8)
		colsA := aBlocks * (1 + r.Intn(3))
		colsB := bBlocks * (1 + r.Intn(3))
		a := mat.Rand(rows, colsA, r)
		b := mat.Rand(rows, colsB, r)
		d := randVec(rows, r)
		want := mat.ATDiagB(a, d, b)
		c, err := NewPolyCode(n, aBlocks, bBlocks)
		if err != nil {
			return false
		}
		enc, err := c.EncodeBilinear(a, b)
		if err != nil {
			return false
		}
		var partials []*Partial
		for _, w := range r.Perm(n)[:aBlocks*bBlocks] {
			partials = append(partials, enc.WorkerCompute(w, d, []Range{{0, enc.BlockColsA}}))
		}
		got, err := enc.Decode(partials)
		if err != nil {
			return false
		}
		return got.ApproxEqual(want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
