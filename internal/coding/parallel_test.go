package coding

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/coded-computing/s2c2/internal/gf"
	"github.com/coded-computing/s2c2/internal/kernel"
	"github.com/coded-computing/s2c2/internal/mat"
)

// The band-split encoders must produce bit-identical partitions to the
// serial sweep: every output row is accumulated in the same order by
// exactly one participant, regardless of how the bands are chunked.

func TestMDSEncodeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, shape := range []struct{ rows, cols, n, k int }{
		{200, 17, 6, 4},
		{37, 5, 5, 3}, // padded tail
		{8, 3, 4, 4},  // blockRows smaller than pool chunking
	} {
		a := mat.Rand(shape.rows, shape.cols, rng)
		serial, err := NewMDSCode(shape.n, shape.k)
		if err != nil {
			t.Fatal(err)
		}
		serial.SetExec(kernel.Serial())
		parallel, err := NewMDSCode(shape.n, shape.k)
		if err != nil {
			t.Fatal(err)
		}
		parallel.SetExec(kernel.Exec{Pool: kernel.NewPool(4)})
		want := serial.Encode(a)
		got := parallel.Encode(a)
		for i := range want.Parts {
			wd, gd := want.Parts[i].Data(), got.Parts[i].Data()
			for q := range wd {
				if wd[q] != gd[q] {
					t.Fatalf("shape %+v: partition %d differs at %d: %v vs %v", shape, i, q, wd[q], gd[q])
				}
			}
		}
	}
}

func TestGFEncodeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	rows, cols := 150, 9
	payload := make([]gf.Elem, rows*cols)
	for i := range payload {
		payload[i] = gf.New(rng.Uint64())
	}
	serial, _ := NewGFMDSCode(7, 5)
	serial.SetExec(kernel.Serial())
	parallel, _ := NewGFMDSCode(7, 5)
	parallel.SetExec(kernel.Exec{Pool: kernel.NewPool(4)})
	want, err := serial.Encode(rows, cols, payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.Encode(rows, cols, payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Parts {
		for r := 0; r < want.BlockRows; r++ {
			wr, gr := want.Parts[i].Row(r), got.Parts[i].Row(r)
			for q := range wr {
				if wr[q] != gr[q] {
					t.Fatalf("partition %d row %d differs", i, r)
				}
			}
		}
	}
}

func TestLagrangeEncodeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	const n, k, size = 9, 4, 301
	blocks := make([][]gf.Elem, k)
	for j := range blocks {
		blocks[j] = make([]gf.Elem, size)
		for e := range blocks[j] {
			blocks[j][e] = gf.New(rng.Uint64())
		}
	}
	serial, _ := NewLagrangeCode(n, k)
	serial.SetExec(kernel.Serial())
	parallel, _ := NewLagrangeCode(n, k)
	parallel.SetExec(kernel.Exec{Pool: kernel.NewPool(4)})
	want, err := serial.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.Encode(blocks)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for e := range want[i] {
			if want[i][e] != got[i][e] {
				t.Fatalf("share %d differs at %d", i, e)
			}
		}
	}
}

func TestPolyEncodeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	a := mat.Rand(120, 22, rng)
	serial, _ := NewPolyCode(10, 3, 3)
	serial.SetExec(kernel.Serial())
	parallel, _ := NewPolyCode(10, 3, 3)
	parallel.SetExec(kernel.Exec{Pool: kernel.NewPool(4)})
	want, err := serial.EncodeHessian(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := parallel.EncodeHessian(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.PartsA {
		wa, ga := want.PartsA[i].Data(), got.PartsA[i].Data()
		for q := range wa {
			if wa[q] != ga[q] {
				t.Fatalf("A-partition %d differs at %d", i, q)
			}
		}
		wb, gb := want.PartsB[i].Data(), got.PartsB[i].Data()
		for q := range wb {
			if wb[q] != gb[q] {
				t.Fatalf("B-partition %d differs at %d", i, q)
			}
		}
	}
}

// TestDecodeDuplicatePartialsBitExact is the reassignment-path regression:
// the rpc master delivers a helper worker's original ranges and its
// reassigned extras as two partials from the same worker — and a slow
// worker's late result may even duplicate a (worker, row) pair outright.
// The decode must be bit-identical to the clean single-partial decode.
func TestDecodeDuplicatePartialsBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a := mat.Rand(90, 11, rng)
	code, _ := NewMDSCode(6, 4)
	enc := code.Encode(a)
	x := make([]float64, 11)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	full := []Range{{0, enc.BlockRows}}
	clean := []*Partial{
		enc.WorkerCompute(0, x, full),
		enc.WorkerCompute(1, x, full),
		enc.WorkerCompute(3, x, full),
		enc.WorkerCompute(5, x, full),
	}
	want, err := enc.DecodeMatVec(clean)
	if err != nil {
		t.Fatal(err)
	}
	half := enc.BlockRows / 2
	dup := []*Partial{
		// Worker 0 split across two partials (original + reassigned extras).
		enc.WorkerCompute(0, x, []Range{{0, half}}),
		enc.WorkerCompute(1, x, full),
		enc.WorkerCompute(3, x, full),
		enc.WorkerCompute(0, x, []Range{{half, enc.BlockRows}}),
		enc.WorkerCompute(5, x, full),
		// Outright duplicate (worker, row) coverage from a late result.
		enc.WorkerCompute(1, x, []Range{{0, 2}}),
	}
	got, err := enc.DecodeMatVec(dup)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("row %d: duplicate-partial decode %v differs from clean decode %v", i, got[i], want[i])
		}
	}
}

// TestPolyDecodeDuplicatePartialsBitExact covers the same duplicate
// delivery through the batched bilinear decoder.
func TestPolyDecodeDuplicatePartialsBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	a := mat.Rand(48, 13, rng)
	code, _ := NewPolyCode(9, 2, 2)
	enc, err := code.EncodeHessian(a)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, 48)
	for i := range d {
		d[i] = rng.Float64()
	}
	full := []Range{{0, enc.BlockColsA}}
	var clean []*Partial
	for w := 0; w < 4; w++ {
		clean = append(clean, enc.WorkerCompute(w, d, full))
	}
	want, err := enc.Decode(clean)
	if err != nil {
		t.Fatal(err)
	}
	half := enc.BlockColsA / 2
	dup := []*Partial{
		enc.WorkerCompute(0, d, []Range{{0, half}}),
		enc.WorkerCompute(1, d, full),
		enc.WorkerCompute(2, d, full),
		enc.WorkerCompute(0, d, []Range{{half, enc.BlockColsA}}),
		enc.WorkerCompute(3, d, full),
		enc.WorkerCompute(2, d, []Range{{0, 1}}), // duplicate coverage
	}
	got, err := enc.Decode(dup)
	if err != nil {
		t.Fatal(err)
	}
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("duplicate-partial poly decode differs at %d", i)
		}
	}
}

// TestParallelEncodeSpeedup asserts the acceptance criterion — parallel
// encode at least 2× faster than serial — on machines with >= 4 cores.
// Single-core CI boxes skip it (there is nothing to parallelize over);
// the benchmarks below report the same ratio for any machine.
func TestParallelEncodeSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need >= 4 cores to demonstrate the speedup, have %d", runtime.GOMAXPROCS(0))
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(76))
	a := mat.Rand(2000, 200, rng)
	serial, _ := NewMDSCode(12, 10)
	serial.SetExec(kernel.Serial())
	parallel, _ := NewMDSCode(12, 10)
	dstS := serial.Encode(a)
	dstP := parallel.Encode(a)
	time.Sleep(10 * time.Millisecond) // let the pool settle
	best := func(c *MDSCode, dst *EncodedMatrix) time.Duration {
		bestD := time.Duration(1 << 62)
		for trial := 0; trial < 7; trial++ {
			start := time.Now()
			for i := 0; i < 4; i++ {
				c.EncodeInto(a, dst)
			}
			if d := time.Since(start) / 4; d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	ser := best(serial, dstS)
	par := best(parallel, dstP)
	t.Logf("encode 2000x200 (12,10): serial %v, parallel %v (%.2fx)", ser, par, float64(ser)/float64(par))
	if float64(ser) < 2*float64(par) {
		t.Fatalf("parallel encode only %.2fx over serial, want >= 2x", float64(ser)/float64(par))
	}
}

func BenchmarkMDSEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	a := mat.Rand(2000, 200, rng)
	b.Run("serial", func(b *testing.B) {
		code, _ := NewMDSCode(12, 10)
		code.SetExec(kernel.Serial())
		dst := code.Encode(a)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			code.EncodeInto(a, dst)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		code, _ := NewMDSCode(12, 10)
		dst := code.Encode(a)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			code.EncodeInto(a, dst)
		}
	})
}

func BenchmarkPolyDecodeBatched(b *testing.B) {
	rng := rand.New(rand.NewSource(78))
	a := mat.Rand(400, 96, rng)
	code, _ := NewPolyCode(10, 3, 3)
	enc, err := code.EncodeHessian(a)
	if err != nil {
		b.Fatal(err)
	}
	d := make([]float64, 400)
	for i := range d {
		d[i] = rng.Float64()
	}
	var partials []*Partial
	for w := 0; w < 9; w++ {
		partials = append(partials, enc.WorkerCompute(w, d, []Range{{0, enc.BlockColsA}}))
	}
	ws := enc.NewDecodeWorkspace()
	dst := mat.New(enc.ColsA, enc.ColsB)
	if _, err := enc.DecodeInto(dst, partials, ws); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.DecodeInto(dst, partials, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPolyDecodeParallelMatchesSerial pins the fanned-out decode scatter:
// a decode spanning multiple per-worker-set segments must produce
// bit-identical output on the pool and on the serial path (each output
// row is accumulated by exactly one participant, in the same order).
func TestPolyDecodeParallelMatchesSerial(t *testing.T) {
	build := func(exec kernel.Exec) (*EncodedBilinear, []*Partial, []float64) {
		rng := rand.New(rand.NewSource(74)) // same data both runs
		a := mat.Rand(40, 256, rng)
		code, err := NewPolyCode(6, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		code.SetExec(exec)
		enc, err := code.EncodeHessian(a)
		if err != nil {
			t.Fatal(err)
		}
		if enc.decodeFlops() < polyParallelMinFlops {
			t.Fatalf("fixture below the parallel threshold: %d < %d", enc.decodeFlops(), polyParallelMinFlops)
		}
		d := make([]float64, 40)
		for i := range d {
			d[i] = rng.Float64()
		}
		// Two row segments with different worker sets: workers 0-3 cover
		// the lower half, workers 2-5 the upper half.
		half := enc.BlockColsA / 2
		var partials []*Partial
		for w := 0; w < 6; w++ {
			var ranges []Range
			switch {
			case w < 2:
				ranges = []Range{{0, half}}
			case w < 4:
				ranges = []Range{{0, enc.BlockColsA}}
			default:
				ranges = []Range{{half, enc.BlockColsA}}
			}
			partials = append(partials, enc.WorkerCompute(w, d, ranges))
		}
		return enc, partials, d
	}
	encS, partialsS, _ := build(kernel.Serial())
	want, err := encS.DecodeInto(nil, partialsS, encS.NewDecodeWorkspace())
	if err != nil {
		t.Fatal(err)
	}
	encP, partialsP, _ := build(kernel.Exec{Pool: kernel.NewPool(4)})
	ws := encP.NewDecodeWorkspace()
	for round := 0; round < 3; round++ {
		got, err := encP.DecodeInto(nil, partialsP, ws)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws.segs) < 2 {
			t.Fatalf("fixture produced %d segments, want >= 2", len(ws.segs))
		}
		wd, gd := want.Data(), got.Data()
		for q := range wd {
			if wd[q] != gd[q] {
				t.Fatalf("round %d: decode differs at %d: %v vs %v", round, q, wd[q], gd[q])
			}
		}
	}
}
