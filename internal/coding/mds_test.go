package coding

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/coded-computing/s2c2/internal/mat"
)

func TestNewMDSCodeValidation(t *testing.T) {
	if _, err := NewMDSCode(3, 0); err == nil {
		t.Fatal("k=0 should be rejected")
	}
	if _, err := NewMDSCode(3, 4); err == nil {
		t.Fatal("k>n should be rejected")
	}
	c, err := NewMDSCode(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 || c.K() != 2 {
		t.Fatal("dims wrong")
	}
}

func TestMDSSystematicPrefix(t *testing.T) {
	c, _ := NewMDSCode(5, 3)
	for i := 0; i < 3; i++ {
		row := c.GeneratorRow(i)
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if row[j] != want {
				t.Fatalf("generator row %d = %v not systematic", i, row)
			}
		}
	}
}

func TestMDSEncodeSystematicPartsMatchBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := mat.Rand(12, 5, rng)
	c, _ := NewMDSCode(6, 4)
	enc := c.Encode(a)
	blocks := mat.SplitRows(a, 4)
	for j := 0; j < 4; j++ {
		if !enc.Parts[j].ApproxEqual(blocks[j], 1e-14) {
			t.Fatalf("systematic part %d differs from raw block", j)
		}
	}
}

func TestMDSFullPartitionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := mat.Rand(20, 7, rng)
	x := randVec(7, rng)
	want := mat.MatVec(a, x)

	c, _ := NewMDSCode(6, 4)
	enc := c.Encode(a)
	// Use the last k workers (all parity mixed in) — hardest case.
	results := map[int][]float64{}
	for w := 2; w < 6; w++ {
		p := enc.WorkerCompute(w, x, []Range{{0, enc.BlockRows}})
		results[w] = p.Values
	}
	got, err := enc.DecodeFullPartitions(results)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, want, 1e-8) {
		t.Fatalf("decode mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestMDSAnyKOfNProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(8) // 3..10
		k := 1 + r.Intn(n) // 1..n
		rows := k * (1 + r.Intn(4))
		cols := 1 + r.Intn(6)
		a := mat.Rand(rows, cols, r)
		x := randVec(cols, r)
		want := mat.MatVec(a, x)
		c, err := NewMDSCode(n, k)
		if err != nil {
			return false
		}
		enc := c.Encode(a)
		workers := r.Perm(n)[:k]
		partials := make([]*Partial, 0, k)
		for _, w := range workers {
			partials = append(partials, enc.WorkerCompute(w, x, []Range{{0, enc.BlockRows}}))
		}
		got, err := enc.DecodeMatVec(partials)
		if err != nil {
			return false
		}
		return mat.VecApproxEqual(got, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestMDSPartialCoverageDecode(t *testing.T) {
	// S2C2-style decode: each worker computes only part of its partition,
	// with every row index covered by exactly k workers.
	rng := rand.New(rand.NewSource(4))
	a := mat.Rand(30, 6, rng)
	x := randVec(6, rng)
	want := mat.MatVec(a, x)

	n, k := 4, 2
	c, _ := NewMDSCode(n, k)
	enc := c.Encode(a)
	br := enc.BlockRows // 15
	third := br / 3
	// Mirror Figure 4c: worker 0 does chunks {0,1}, worker 1 {0,2},
	// worker 2 {1,2}, worker 3 (straggler) does nothing.
	assignments := map[int][]Range{
		0: {{0, 2 * third}},
		1: {{0, third}, {2 * third, br}},
		2: {{third, br}},
	}
	var partials []*Partial
	for w, ranges := range assignments {
		partials = append(partials, enc.WorkerCompute(w, x, ranges))
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, want, 1e-8) {
		t.Fatal("partial-coverage decode mismatch")
	}
}

func TestMDSInsufficientCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := mat.Rand(12, 4, rng)
	x := randVec(4, rng)
	c, _ := NewMDSCode(4, 3)
	enc := c.Encode(a)
	partials := []*Partial{
		enc.WorkerCompute(0, x, []Range{{0, enc.BlockRows}}),
		enc.WorkerCompute(1, x, []Range{{0, enc.BlockRows}}),
	}
	_, err := enc.DecodeMatVec(partials)
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
}

func TestMDSPaddedRowsRoundTrip(t *testing.T) {
	// Row count not divisible by k: padding must be invisible to callers.
	rng := rand.New(rand.NewSource(6))
	a := mat.Rand(17, 3, rng)
	x := randVec(3, rng)
	want := mat.MatVec(a, x)
	c, _ := NewMDSCode(5, 4)
	enc := c.Encode(a)
	var partials []*Partial
	for _, w := range []int{4, 2, 1, 0} {
		partials = append(partials, enc.WorkerCompute(w, x, []Range{{0, enc.BlockRows}}))
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 17 {
		t.Fatalf("decoded length %d want 17", len(got))
	}
	if !mat.VecApproxEqual(got, want, 1e-8) {
		t.Fatal("padded decode mismatch")
	}
}

func TestMDSLargeCodeAccuracy(t *testing.T) {
	// The (50,40) scaling configuration from Figure 13, decoded from a mix
	// of systematic and parity workers.
	rng := rand.New(rand.NewSource(7))
	a := mat.Rand(80, 4, rng)
	x := randVec(4, rng)
	want := mat.MatVec(a, x)
	c, _ := NewMDSCode(50, 40)
	enc := c.Encode(a)
	// Drop 10 random workers; decode from the rest (40 workers).
	drop := map[int]bool{}
	for len(drop) < 10 {
		drop[rng.Intn(50)] = true
	}
	var partials []*Partial
	for w := 0; w < 50; w++ {
		if drop[w] {
			continue
		}
		partials = append(partials, enc.WorkerCompute(w, x, []Range{{0, enc.BlockRows}}))
	}
	got, err := enc.DecodeMatVec(partials)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.VecApproxEqual(got, want, 1e-5) {
		t.Fatal("(50,40) decode accuracy below tolerance")
	}
}

func TestNormalizeRanges(t *testing.T) {
	in := []Range{{5, 7}, {0, 2}, {2, 2}, {1, 4}, {9, 9}}
	out := NormalizeRanges(in)
	want := []Range{{0, 4}, {5, 7}}
	if len(out) != len(want) {
		t.Fatalf("got %v want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v want %v", out, want)
		}
	}
	if TotalRows(out) != 6 {
		t.Fatalf("TotalRows = %d", TotalRows(out))
	}
}

func TestPartialValidate(t *testing.T) {
	p := &Partial{Worker: 0, Ranges: []Range{{0, 3}}, RowWidth: 1, Values: []float64{1, 2}}
	if err := p.Validate(10); err == nil {
		t.Fatal("length mismatch should fail validation")
	}
	p.Values = []float64{1, 2, 3}
	if err := p.Validate(10); err != nil {
		t.Fatal(err)
	}
	p.Ranges = []Range{{8, 12}}
	if err := p.Validate(10); err == nil {
		t.Fatal("out-of-bounds range should fail validation")
	}
}

func randVec(n int, rng *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 2*rng.Float64() - 1
	}
	return v
}
