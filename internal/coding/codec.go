// Package coding implements the erasure-coding layer of the S2C2 stack:
//
//   - an (n,k) MDS code over float64 with a systematic Cauchy-parity
//     generator (any k of the n coded partitions suffice to decode),
//   - the same code over the exact prime field GF(2³¹−1) for bit-exact
//     round trips and property tests, and
//   - polynomial codes (Yu et al., NIPS'17) for bilinear computations
//     such as the Hessian form Aᵀ·diag(x)·B.
//
// All codecs share the partial-result model of the paper: a worker holds
// one coded partition and may return results for an arbitrary subset of
// its partition's row indices; the decoder reconstructs every output row
// from any k (or a·b, for polynomial codes) worker results covering it.
package coding

import (
	"fmt"
)

// Range is a half-open row-index interval [Lo, Hi) within a partition.
type Range struct {
	Lo, Hi int
}

// Len returns the number of rows in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Contains reports whether row is inside the range.
func (r Range) Contains(row int) bool { return row >= r.Lo && row < r.Hi }

// TotalRows sums the lengths of the ranges.
func TotalRows(ranges []Range) int {
	n := 0
	for _, r := range ranges {
		n += r.Len()
	}
	return n
}

// NormalizeRanges sorts ranges, drops empties, and merges overlaps,
// returning a canonical minimal representation.
func NormalizeRanges(ranges []Range) []Range {
	return AppendNormalizeRanges(make([]Range, 0, len(ranges)), ranges)
}

// AppendNormalizeRanges is NormalizeRanges appending onto dst (which must
// be empty and must not alias ranges) so hot paths can reuse a result's
// Range storage. It performs no allocation once dst has capacity.
func AppendNormalizeRanges(dst []Range, ranges []Range) []Range {
	for _, r := range ranges {
		if r.Len() > 0 {
			// Amortized: callers reuse dst's backing storage round to round.
			//s2c2:waive noalloc
			dst = append(dst, r)
		}
	}
	// Insertion sort: range lists are short and this avoids the closure
	// allocation of sort.Slice.
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j].Lo < dst[j-1].Lo; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
	out := dst[:0]
	for _, r := range dst {
		if len(out) > 0 && r.Lo <= out[len(out)-1].Hi {
			if r.Hi > out[len(out)-1].Hi {
				out[len(out)-1].Hi = r.Hi
			}
			continue
		}
		// Writes through dst's own storage (out aliases dst[:0]).
		//s2c2:waive noalloc
		out = append(out, r)
	}
	return out
}

// Partial is the result a worker returns for one round: the values of its
// assigned rows of the coded computation. Values holds the computed rows
// concatenated in range order; for vector results each row contributes one
// float64, for matrix results RowWidth values per row.
type Partial struct {
	Worker   int
	Ranges   []Range
	RowWidth int
	Values   []float64
}

// NumRows returns how many partition rows the partial covers.
func (p *Partial) NumRows() int { return TotalRows(p.Ranges) }

// Validate checks internal consistency of the partial. It applies the
// same checks rowTable.add runs when the partial enters a decode.
func (p *Partial) Validate(blockRows int) error {
	return validatePartial(p.Worker, p.Ranges, len(p.Values), p.RowWidth, blockRows)
}

// validatePartial is the single validation rule shared by Partial.Validate
// and rowTable.add: positive row width, in-bounds ranges, and a value
// count matching rows × width.
func validatePartial(worker int, ranges []Range, numValues, rowWidth, blockRows int) error {
	if rowWidth <= 0 {
		return fmt.Errorf("coding: partial from worker %d has RowWidth %d", worker, rowWidth)
	}
	rows := 0
	for _, r := range ranges {
		if r.Lo < 0 || r.Hi > blockRows || r.Lo > r.Hi {
			return fmt.Errorf("coding: partial from worker %d has range [%d,%d) outside [0,%d)", worker, r.Lo, r.Hi, blockRows)
		}
		rows += r.Len()
	}
	if want := rows * rowWidth; numValues != want {
		return fmt.Errorf("coding: partial from worker %d has %d values, want %d", worker, numValues, want)
	}
	return nil
}

// rowTable indexes partial results row-by-row for a decode pass, generic
// over the value element (float64 for the MDS/polynomial codecs, gf.Elem
// for the exact-field codec — one implementation of the trickiest reuse
// logic instead of two). offsets[w][r] is the offset into values[w] for
// row r, or -1 when worker w did not compute row r.
//
// A rowTable is reusable: reset clears it and add repopulates it,
// retaining map entries and per-worker slices across decode rounds so a
// steady-state rebuild performs no allocation once every recurring worker
// has an entry.
type rowTable[T any] struct {
	blockRows int
	rowWidth  int
	offsets   map[int][]int
	values    map[int][]T
	order     []int // workers in arrival order
}

// reset prepares the table for a new decode round over partitions of
// blockRows rows, keeping per-worker storage for reuse.
func (t *rowTable[T]) reset(blockRows int) {
	if t.offsets == nil {
		// First round only; map entries are retained and reused after.
		//s2c2:waive noalloc
		t.offsets = make(map[int][]int, 8)
		//s2c2:waive noalloc
		t.values = make(map[int][]T, 8)
	}
	t.blockRows = blockRows
	t.rowWidth = 0
	t.order = t.order[:0]
}

// add registers one partial result: the given worker computed values for
// the rows in ranges, rowWidth values per row. Duplicate (worker, row)
// entries are legal — the rpc reassignment path delivers a worker's
// original ranges and its reassigned extras as separate partials, and a
// slow worker's late duplicate of an already-covered row may follow. The
// last registered offset wins, which is sound because every copy of a
// (worker, row) value is the same deterministic kernel output.
func (t *rowTable[T]) add(worker int, ranges []Range, values []T, rowWidth int) error {
	if err := validatePartial(worker, ranges, len(values), rowWidth, t.blockRows); err != nil {
		return err
	}
	if t.rowWidth == 0 {
		t.rowWidth = rowWidth
	} else if t.rowWidth != rowWidth {
		return fmt.Errorf("coding: mixed row widths %d and %d", t.rowWidth, rowWidth)
	}
	off := t.offsets[worker]
	seen := false
	for _, w := range t.order {
		if w == worker {
			seen = true
			break
		}
	}
	if !seen {
		if cap(off) < t.blockRows {
			//s2c2:waive noalloc — first round this worker appears, reused after
			off = make([]int, t.blockRows)
		}
		off = off[:t.blockRows]
		for i := range off {
			off[i] = -1
		}
		t.offsets[worker] = off
		t.values[worker] = t.values[worker][:0]
		// Amortized: order resets to length 0 each round, capacity retained.
		//s2c2:waive noalloc
		t.order = append(t.order, worker)
	}
	vals := t.values[worker]
	base := len(vals)
	// Amortized: per-worker value storage retains capacity across rounds.
	//s2c2:waive noalloc
	vals = append(vals, values...)
	t.values[worker] = vals
	at := base
	for _, r := range ranges {
		for row := r.Lo; row < r.Hi; row++ {
			off[row] = at
			at += rowWidth
		}
	}
	return nil
}

// appendWorkersForRow appends up to max workers (in arrival order) that
// computed the given row onto dst, reusing its storage.
func (t *rowTable[T]) appendWorkersForRow(dst []int, row, max int) []int {
	dst = dst[:0]
	for _, w := range t.order {
		if t.offsets[w][row] >= 0 {
			// Writes through dst's reused storage (bounded by k workers).
			//s2c2:waive noalloc
			dst = append(dst, w)
			if len(dst) == max {
				break
			}
		}
	}
	return dst
}

// rowValue returns the rowWidth values worker w computed for row.
func (t *rowTable[T]) rowValue(w, row int) []T {
	off := t.offsets[w][row]
	return t.values[w][off : off+t.rowWidth]
}

// buildPartials populates the table from float64 partials, the shared
// entry point of the MDS and polynomial decode paths.
func buildPartials(t *rowTable[float64], partials []*Partial, blockRows int) error {
	t.reset(blockRows)
	for _, p := range partials {
		if err := t.add(p.Worker, p.Ranges, p.Values, p.RowWidth); err != nil {
			return err
		}
	}
	return nil
}

// maxCachedSets bounds every per-workspace decode-system cache. Worker
// sets are canonicalized (sorted) before lookup, so the cache only grows
// when the *membership* of responding workers churns; if it still
// overflows, the whole cache is dropped rather than letting a long-lived
// workspace accumulate factorizations without bound.
const maxCachedSets = 64

// sameWorkers reports whether a and b hold identical worker sequences.
func sameWorkers(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
