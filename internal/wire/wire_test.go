package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var net bytes.Buffer
	w := NewWriter(&net)
	floats := []float64{0, 1.5, -2.25, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	words := []uint32{0, 1, 1<<31 - 2, 123456789}

	w.Begin(TypeResult)
	w.Int(7)           // iter
	w.Int(2)           // phase
	w.Uvarint(1 << 40) // a large field (nanos-scale)
	w.Float64s(floats)
	w.Uint32s(words)
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	w.Begin(TypeShutdown)
	if err := w.End(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(net.Bytes()))
	typ, p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if typ != TypeResult {
		t.Fatalf("type = %v, want %v", typ, TypeResult)
	}
	if got := p.Int(); got != 7 {
		t.Fatalf("iter = %d", got)
	}
	if got := p.Int(); got != 2 {
		t.Fatalf("phase = %d", got)
	}
	if got := p.Uvarint(); got != 1<<40 {
		t.Fatalf("large field = %d", got)
	}
	gotF := p.Float64s(nil)
	for i, v := range floats {
		if b, gb := math.Float64bits(v), math.Float64bits(gotF[i]); b != gb {
			t.Fatalf("float %d: bits %x != %x", i, gb, b)
		}
	}
	gotU := p.Uint32s(nil)
	for i, v := range words {
		if gotU[i] != v {
			t.Fatalf("uint32 %d: %d != %d", i, gotU[i], v)
		}
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	if p.Remaining() != 0 {
		t.Fatalf("%d bytes left over", p.Remaining())
	}
	typ, _, err = r.Next()
	if err != nil || typ != TypeShutdown {
		t.Fatalf("second frame: %v %v", typ, err)
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

func TestReaderRejectsOversizedFrame(t *testing.T) {
	// A length prefix above the limit must be rejected before any buffer
	// is sized to it.
	var b []byte
	b = binary.AppendUvarint(b, uint64(DefaultMaxFrame)+1)
	r := NewReader(bytes.NewReader(b))
	if _, _, err := r.Next(); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}

	// A tighter configured limit applies too.
	var net bytes.Buffer
	w := NewWriter(&net)
	w.Begin(TypeWork)
	w.Float64s(make([]float64, 100))
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	r2 := NewReader(bytes.NewReader(net.Bytes()))
	r2.SetMaxFrame(16)
	if _, _, err := r2.Next(); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
}

func TestReaderTruncatedStream(t *testing.T) {
	var net bytes.Buffer
	w := NewWriter(&net)
	w.Begin(TypeWork)
	w.Float64s([]float64{1, 2, 3, 4})
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	full := net.Bytes()
	// Cut the stream mid-body at every prefix length: the reader must
	// report an unexpected EOF, never decode garbage.
	for cut := 1; cut < len(full); cut++ {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, _, err := r.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestPayloadTruncatedFields(t *testing.T) {
	// A frame whose declared element count exceeds its actual bytes must
	// fail with ErrTruncated (sticky), not read out of bounds.
	var body []byte
	body = append(body, byte(TypeResult))
	body = binary.AppendUvarint(body, 1000) // claims 1000 floats, has none
	var net bytes.Buffer
	net.Write(binary.AppendUvarint(nil, uint64(len(body))))
	net.Write(body)
	r := NewReader(bytes.NewReader(net.Bytes()))
	_, p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	got := p.Float64s(nil)
	if len(got) != 0 {
		t.Fatalf("decoded %d floats from a truncated payload", len(got))
	}
	if !errors.Is(p.Err(), ErrTruncated) {
		t.Fatalf("sticky err = %v, want ErrTruncated", p.Err())
	}
	// Further reads stay failed.
	if v := p.Uvarint(); v != 0 || !errors.Is(p.Err(), ErrTruncated) {
		t.Fatal("sticky error did not stick")
	}
}

// TestHostileCountDoesNotOverflowGuard pins the count-validation fix: an
// element count chosen so that count*elemSize wraps around must still be
// rejected (by division against the remaining bytes), not passed through
// to a make() that panics.
func TestHostileCountDoesNotOverflowGuard(t *testing.T) {
	for _, count := range []uint64{1 << 61, (1 << 62) / 8 * 2, math.MaxInt64 / 2} {
		var body []byte
		body = append(body, byte(TypeResult))
		body = binary.AppendUvarint(body, count)
		var net bytes.Buffer
		net.Write(binary.AppendUvarint(nil, uint64(len(body))))
		net.Write(body)
		r := NewReader(bytes.NewReader(net.Bytes()))
		_, p, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Float64s(nil); len(got) != 0 || p.Err() == nil {
			t.Fatalf("count %d: decoded %d floats, err %v — hostile count slipped the guard", count, len(got), p.Err())
		}
	}
}

func TestFloat64sIntoCountMismatch(t *testing.T) {
	var net bytes.Buffer
	w := NewWriter(&net)
	w.Begin(TypePartitionChunk)
	w.Float64s([]float64{1, 2, 3})
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(net.Bytes()))
	_, p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 4) // expects 4, frame carries 3
	if err := p.Float64sInto(dst); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestUint32sIntoCountMismatch(t *testing.T) {
	var net bytes.Buffer
	w := NewWriter(&net)
	w.Begin(TypeGFPartitionChunk)
	w.Uint32s([]uint32{1, 2, 3})
	if err := w.End(); err != nil {
		t.Fatal(err)
	}
	stream := net.Bytes()
	r := NewReader(bytes.NewReader(stream))
	_, p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]uint32, 4) // expects 4, frame carries 3
	if err := p.Uint32sInto(dst); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
	// Exact-count decode succeeds and lands the payload in place.
	r2 := NewReader(bytes.NewReader(stream))
	_, p2, err := r2.Next()
	if err != nil {
		t.Fatal(err)
	}
	dst3 := make([]uint32, 3)
	if err := p2.Uint32sInto(dst3); err != nil {
		t.Fatal(err)
	}
	for i, v := range []uint32{1, 2, 3} {
		if dst3[i] != v {
			t.Fatalf("dst[%d] = %d, want %d", i, dst3[i], v)
		}
	}
	// A declared count the body cannot hold is rejected by division, so a
	// hostile count cannot overflow the guard.
	var body []byte
	body = append(body, byte(TypeGFPartitionChunk))
	body = binary.AppendUvarint(body, 1<<61)
	var hostile bytes.Buffer
	hostile.Write(binary.AppendUvarint(nil, uint64(len(body))))
	hostile.Write(body)
	r3 := NewReader(bytes.NewReader(hostile.Bytes()))
	_, p3, err := r3.Next()
	if err != nil {
		t.Fatal(err)
	}
	if err := p3.Uint32sInto(make([]uint32, 2)); err == nil {
		t.Fatal("hostile uint32 count decoded without error")
	}
}

func TestHandshake(t *testing.T) {
	var b bytes.Buffer
	if err := WriteHandshake(&b, VersionWire); err != nil {
		t.Fatal(err)
	}
	v, err := ReadHandshake(&b)
	if err != nil || v != VersionWire {
		t.Fatalf("handshake: v=%d err=%v", v, err)
	}
	if _, err := ReadHandshake(bytes.NewReader([]byte("BOGUS"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := ReadHandshake(bytes.NewReader([]byte("S2"))); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("short handshake: %v", err)
	}
}

func TestReaderZeroAllocSteadyState(t *testing.T) {
	// One warm reader decoding the same frame stream repeatedly must not
	// allocate: this is the master's per-message receive cost.
	var net bytes.Buffer
	w := NewWriter(&net)
	vals := make([]float64, 512)
	for i := range vals {
		vals[i] = float64(i) * 0.5
	}
	for f := 0; f < 4; f++ {
		w.Begin(TypeResult)
		w.Int(f)
		w.Float64s(vals)
		if err := w.End(); err != nil {
			t.Fatal(err)
		}
	}
	stream := net.Bytes()
	src := bytes.NewReader(stream)
	r := NewReader(src)
	dst := make([]float64, 0, len(vals))
	round := func() {
		src.Reset(stream)
		r.Reset(src)
		for f := 0; f < 4; f++ {
			typ, p, err := r.Next()
			if err != nil || typ != TypeResult {
				t.Fatal(typ, err)
			}
			if got := p.Int(); got != f {
				t.Fatalf("frame %d decoded as %d", f, got)
			}
			dst = p.Float64s(dst)
			if err := p.Err(); err != nil {
				t.Fatal(err)
			}
		}
	}
	round() // warm: sizes the receive buffer and dst
	allocs := testing.AllocsPerRun(100, round)
	if allocs != 0 {
		t.Fatalf("steady-state frame decode allocates %v/op, want 0", allocs)
	}
}

func TestWriterZeroAllocSteadyState(t *testing.T) {
	w := NewWriter(io.Discard)
	vals := make([]float64, 512)
	round := func() {
		w.Begin(TypeWork)
		w.Int(3)
		w.Float64s(vals)
		if err := w.End(); err != nil {
			t.Fatal(err)
		}
	}
	round() // warm: sizes the scratch buffer
	allocs := testing.AllocsPerRun(100, round)
	if allocs != 0 {
		t.Fatalf("steady-state frame encode allocates %v/op, want 0", allocs)
	}
}
