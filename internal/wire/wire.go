// Package wire is the binary framing layer of the network runtime: a
// length-prefixed frame format with varint headers and raw little-endian
// payloads, designed so both ends of a connection run allocation-free in
// steady state.
//
// Every frame is
//
//	uvarint(len(body)) · body
//	body = type byte · type-specific fields
//
// where multi-byte integers are unsigned varints and numeric bulk payloads
// are raw element bytes (float64 as IEEE-754 bits, field elements as
// uint32, both little-endian) prefixed by an element count. A Writer owns
// one scratch buffer reused across frames; a Reader owns one receive
// buffer plus a Payload cursor that decodes fields in place, so the only
// per-message cost is the copy into caller-owned storage (matrices, pooled
// result slices) — there is no intermediate message object.
//
// Connections open with a 5-byte handshake — the 4-byte magic "S2C2"
// followed by a version byte — letting one listener speak both this format
// (VersionWire) and the legacy gob encoding (VersionGob) per connection.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Handshake versions. The version byte follows the 4-byte magic and
// selects the message encoding for the rest of the connection.
const (
	// VersionGob selects the legacy encoding/gob envelope stream, kept as
	// a compatibility fallback.
	VersionGob byte = 0
	// VersionWire selects this package's binary frame format.
	VersionWire byte = 1
)

// magic opens every connection, before the version byte.
var magic = [4]byte{'S', '2', 'C', '2'}

// ErrBadMagic reports a handshake that does not start with the protocol
// magic.
var ErrBadMagic = errors.New("wire: bad handshake magic")

// WriteHandshake sends the magic and version. The dialing side calls it
// exactly once, before any frame.
func WriteHandshake(w io.Writer, version byte) error {
	var hs [5]byte
	copy(hs[:], magic[:])
	hs[4] = version
	_, err := w.Write(hs[:])
	return err
}

// ReadHandshake consumes and validates the magic, returning the peer's
// version byte. Callers decide which versions they accept.
func ReadHandshake(r io.Reader) (byte, error) {
	var hs [5]byte
	if _, err := io.ReadFull(r, hs[:]); err != nil {
		return 0, fmt.Errorf("wire: handshake: %w", err)
	}
	if [4]byte(hs[:4]) != magic {
		return 0, ErrBadMagic
	}
	return hs[4], nil
}

// Type discriminates frames. The zero value is invalid so a zeroed frame
// can never masquerade as a message.
type Type byte

// Frame types of the master↔worker protocol. The GF(2³¹−1) variants carry
// uint32 field elements instead of float64 rows — the exact distributed
// round path; acks are shared (a PartitionAck credits whichever transfer
// its sequence number fences, float64 or GF).
const (
	TypeHello            Type = 1 + iota // worker → master: join
	TypeWork                             // master → worker: row assignment
	TypeResult                           // worker → master: computed rows
	TypePartitionStart                   // master → worker: begin streamed partition
	TypePartitionChunk                   // master → worker: one row band
	TypePartitionAck                     // worker → master: chunk stored (credit return)
	TypeShutdown                         // master → worker: exit
	TypeGFWork                           // master → worker: field-element row assignment
	TypeGFResult                         // worker → master: computed field-element rows
	TypeGFPartitionStart                 // master → worker: begin streamed GF partition
	TypeGFPartitionChunk                 // master → worker: one row band of field elements
	TypeWorkBatch                        // master → worker: row assignment over w x-vectors
	TypeResultBatch                      // worker → master: computed rows, w values per row
	TypeGFWorkBatch                      // master → worker: field-element batch assignment
	TypeGFResultBatch                    // worker → master: field-element rows, w values per row
	TypePing                             // master → worker: liveness probe (empty body)
	TypePong                             // worker → master: liveness answer (empty body)
	TypeJobWork                          // master → worker: row assignment tagged with a job id
	TypeJobResult                        // worker → master: computed rows for a tagged job
	TypeJobGFWork                        // master → worker: field-element assignment for a tagged job
	TypeJobGFResult                      // worker → master: field-element rows for a tagged job
)

// DefaultMaxFrame bounds accepted frame bodies. Partitions are streamed in
// bounded chunks, so legitimate frames are far smaller; the limit exists to
// reject corrupt or hostile length prefixes before any buffer is sized to
// them.
const DefaultMaxFrame = 64 << 20

// Frame decode errors. These are sentinel values (not fmt-wrapped per
// message) so the receive path stays allocation-free.
var (
	// ErrFrameTooBig reports a length prefix above the reader's limit.
	ErrFrameTooBig = errors.New("wire: frame exceeds size limit")
	// ErrTruncated reports a payload shorter than its fields claim.
	ErrTruncated = errors.New("wire: truncated frame payload")
	// ErrMalformed reports an undecodable varint or corrupt field.
	ErrMalformed = errors.New("wire: malformed frame")
)

// Writer frames messages onto an io.Writer through one reused scratch
// buffer: Begin starts a frame, the append methods build its body, End
// length-prefixes and writes it. The body is built after a reserved header
// region so the finished frame (prefix + body) goes out in a single Write.
// Writers are not safe for concurrent use; the rpc layer serializes sends
// per connection.
type Writer struct {
	w    io.Writer
	buf  []byte // reserved header space, then the frame body
	head [binary.MaxVarintLen64]byte
}

// headReserve is the space kept ahead of the body for the length prefix.
const headReserve = binary.MaxVarintLen64

// NewWriter returns a Writer framing onto w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Reset points the Writer at a new destination, keeping its buffer.
func (w *Writer) Reset(dst io.Writer) { w.w = dst }

// Begin starts a frame of the given type, discarding any unfinished frame.
//
//s2c2:noalloc
func (w *Writer) Begin(t Type) {
	w.buf = growBytes(w.buf[:0], headReserve)
	// Amortized: w.buf keeps its capacity across frames, so this append
	// only grows on the very first frame.
	//s2c2:waive noalloc
	w.buf = append(w.buf, byte(t))
}

// Uvarint appends an unsigned varint field.
//
//s2c2:noalloc
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Int appends a non-negative int as a varint.
//
//s2c2:noalloc
func (w *Writer) Int(v int) { w.Uvarint(uint64(v)) }

// Float64 appends one float64 as raw IEEE-754 bits.
//
//s2c2:noalloc
func (w *Writer) Float64(v float64) {
	at := len(w.buf)
	w.buf = growBytes(w.buf, at+8)
	binary.LittleEndian.PutUint64(w.buf[at:], math.Float64bits(v))
}

// Float64s appends a count-prefixed float64 payload as raw IEEE-754 bits.
//
//s2c2:noalloc
func (w *Writer) Float64s(vs []float64) {
	w.Uvarint(uint64(len(vs)))
	at := len(w.buf)
	w.buf = growBytes(w.buf, at+8*len(vs))
	for _, v := range vs {
		binary.LittleEndian.PutUint64(w.buf[at:], math.Float64bits(v))
		at += 8
	}
}

// Uint32s appends a count-prefixed uint32 payload (field-element rows).
//
//s2c2:noalloc
func (w *Writer) Uint32s(vs []uint32) {
	w.Uvarint(uint64(len(vs)))
	at := len(w.buf)
	w.buf = growBytes(w.buf, at+4*len(vs))
	for _, v := range vs {
		binary.LittleEndian.PutUint32(w.buf[at:], v)
		at += 4
	}
}

// PendingBytes reports the size of the frame under construction (callers
// use it to scale write deadlines with the payload).
func (w *Writer) PendingBytes() int { return len(w.buf) }

// End writes the frame started by Begin — the body's length prefix
// followed by the body — as one Write call. The scratch buffer is retained
// for the next frame.
//
//s2c2:noalloc
func (w *Writer) End() error {
	body := len(w.buf) - headReserve
	n := binary.PutUvarint(w.head[:], uint64(body))
	start := headReserve - n
	copy(w.buf[start:], w.head[:n])
	_, err := w.w.Write(w.buf[start:])
	return err
}

// Reader decodes frames from an io.Reader through one reused receive
// buffer. Not safe for concurrent use.
type Reader struct {
	r        io.Reader
	buf      []byte
	pay      Payload
	maxFrame int
	// one-byte scratch for the length prefix (readByte without a bufio
	// layer's allocation).
	b [1]byte
}

// NewReader returns a Reader with the DefaultMaxFrame limit.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, maxFrame: DefaultMaxFrame}
}

// SetMaxFrame overrides the accepted frame-body limit.
func (r *Reader) SetMaxFrame(n int) { r.maxFrame = n }

// Reset points the Reader at a new source, keeping its buffers.
func (r *Reader) Reset(src io.Reader) { r.r = src }

// ReadByte reads one length-prefix byte. It exists so binary.ReadUvarint
// can consume the prefix through the Reader itself without an adapter
// allocation; wrap network sources in a bufio.Reader (as the rpc layer
// does) to avoid single-byte reads hitting the kernel.
//
//s2c2:noalloc
func (r *Reader) ReadByte() (byte, error) {
	if br, ok := r.r.(io.ByteReader); ok {
		return br.ReadByte()
	}
	_, err := io.ReadFull(r.r, r.b[:1])
	return r.b[0], err
}

// Next reads one frame, returning its type and a Payload cursor over the
// body. The cursor (and any byte view it exposes) is valid only until the
// next call to Next.
//
//s2c2:noalloc
func (r *Reader) Next() (Type, *Payload, error) {
	size, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, nil, err
	}
	if size > uint64(r.maxFrame) {
		return 0, nil, ErrFrameTooBig
	}
	if size < 1 {
		return 0, nil, ErrMalformed // a frame has at least its type byte
	}
	r.buf = growBytes(r.buf, int(size))
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	r.pay = Payload{b: r.buf[1:]}
	return Type(r.buf[0]), &r.pay, nil
}

// Payload is a decode cursor over one frame body. Decoding methods record
// the first failure in a sticky error — callers run the field reads
// straight through and check Err once at the end. All sticky errors are
// package sentinels, so the error path allocates nothing.
//
// The cursor aliases the Reader's reused frame buffer: it is only valid
// until the next call to Next. s2c2-vet (payloadescape) rejects stores
// that would let it outlive the frame.
//
//s2c2:frame-scoped
type Payload struct {
	b   []byte
	off int
	err error
}

// Err returns the first decode failure, or nil.
func (p *Payload) Err() error { return p.err }

// Remaining reports the undecoded byte count.
func (p *Payload) Remaining() int { return len(p.b) - p.off }

// Reject marks the payload malformed. Decoders use it when a structurally
// valid field fails a higher-level invariant (e.g. an element count that
// cannot fit in the remaining bytes) so the failure surfaces through the
// same sticky-error path as raw decode errors.
func (p *Payload) Reject() {
	if p.err == nil {
		p.err = ErrMalformed
	}
}

// Float64 decodes one float64 field (0 after a failure).
//
//s2c2:noalloc
func (p *Payload) Float64() float64 {
	if p.err != nil {
		return 0
	}
	if p.Remaining() < 8 {
		p.err = ErrTruncated
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(p.b[p.off:]))
	p.off += 8
	return v
}

// Uvarint decodes one varint field (0 after a failure).
//
//s2c2:noalloc
func (p *Payload) Uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		if n == 0 {
			p.err = ErrTruncated
		} else {
			p.err = ErrMalformed
		}
		return 0
	}
	p.off += n
	return v
}

// Int decodes a non-negative int field. Values above MaxInt/2 for the
// platform's int are rejected, so the result is always safe to use in
// size arithmetic.
//
//s2c2:noalloc
func (p *Payload) Int() int {
	v := p.Uvarint()
	if p.err == nil && v > math.MaxInt/2 {
		p.err = ErrMalformed
		return 0
	}
	return int(v)
}

// Float64s decodes a count-prefixed float64 payload, reusing dst's
// capacity (the caller-owned buffer idiom: pass last round's slice back in
// and steady state never reallocates). The count is validated against the
// remaining bytes by division — never by multiplication, which a hostile
// count could overflow into passing — before anything is sized to it.
//
//s2c2:noalloc
func (p *Payload) Float64s(dst []float64) []float64 {
	n := p.Int()
	if p.err != nil {
		return dst[:0]
	}
	if n > p.Remaining()/8 {
		p.err = ErrTruncated
		return dst[:0]
	}
	dst = grow(dst, n)
	p.float64sInto(dst)
	return dst
}

// Float64sInto decodes a count-prefixed float64 payload directly into dst,
// requiring the count to match len(dst) exactly — the zero-copy path for
// writing a partition chunk straight into its matrix rows.
//
//s2c2:noalloc
func (p *Payload) Float64sInto(dst []float64) error {
	n := p.Int()
	if p.err != nil {
		return p.err
	}
	if n != len(dst) {
		p.err = ErrMalformed
		return p.err
	}
	if n > p.Remaining()/8 {
		p.err = ErrTruncated
		return p.err
	}
	p.float64sInto(dst)
	return p.err
}

func (p *Payload) float64sInto(dst []float64) {
	b := p.b[p.off:]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	p.off += 8 * len(dst)
}

// Uint32sInto decodes a count-prefixed uint32 payload directly into dst,
// requiring the count to match len(dst) exactly — the zero-copy path for
// writing a GF partition chunk straight into its matrix rows.
//
//s2c2:noalloc
func (p *Payload) Uint32sInto(dst []uint32) error {
	n := p.Int()
	if p.err != nil {
		return p.err
	}
	if n != len(dst) {
		p.err = ErrMalformed
		return p.err
	}
	if n > p.Remaining()/4 {
		p.err = ErrTruncated
		return p.err
	}
	b := p.b[p.off:]
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	p.off += 4 * n
	return p.err
}

// Uint32s decodes a count-prefixed uint32 payload, reusing dst's capacity.
//
//s2c2:noalloc
func (p *Payload) Uint32s(dst []uint32) []uint32 {
	n := p.Int()
	if p.err != nil {
		return dst[:0]
	}
	if n > p.Remaining()/4 {
		p.err = ErrTruncated
		return dst[:0]
	}
	dst = grow(dst, n)
	b := p.b[p.off:]
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
	p.off += 4 * n
	return dst
}

// growBytes returns s with length n, reallocating only when capacity is
// insufficient (geometric growth via append).
//
//s2c2:noalloc
func growBytes(s []byte, n int) []byte {
	if cap(s) >= n {
		return s[:n]
	}
	// Capacity growth: reached only until the buffer has seen the largest
	// frame, after which every call takes the branch above.
	//s2c2:waive noalloc
	return append(s[:cap(s)], make([]byte, n-cap(s))...)
}

// grow is the package-local grow-don't-copy helper (this package stays
// dependency-free by design, so it does not import the kernel package's
// GrowSlice). Contents are unspecified after a reallocation.
//
//s2c2:noalloc
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	// Capacity growth; callers reuse the returned slice across frames.
	//s2c2:waive noalloc
	return make([]T, n)
}
