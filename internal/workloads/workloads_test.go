package workloads

import (
	"math"
	"testing"

	"github.com/coded-computing/s2c2/internal/mat"
)

func TestSyntheticClassificationShape(t *testing.T) {
	d := SyntheticClassification(100, 20, 1)
	if r, c := d.X.Dims(); r != 100 || c != 20 {
		t.Fatalf("shape %dx%d", r, c)
	}
	pos, neg := 0, 0
	for _, y := range d.Y {
		switch y {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatalf("label %v not in {-1,+1}", y)
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatal("both classes must be present")
	}
	// Same seed → same data.
	d2 := SyntheticClassification(100, 20, 1)
	if !d.X.Equal(d2.X) {
		t.Fatal("generation must be deterministic")
	}
}

func TestLogisticRegressionConverges(t *testing.T) {
	data := SyntheticClassification(300, 10, 2)
	lr := &LogisticRegression{Data: data, LR: 0.5, Lambda: 1e-4, Tol: 1e-4}
	w0 := lr.Init()
	loss0 := lr.Loss(w0)
	w, iters := RunLocal(lr, 300)
	if iters == 300 {
		t.Log("did not hit tolerance; checking loss decrease anyway")
	}
	if lr.Loss(w) >= loss0 {
		t.Fatalf("loss did not decrease: %v -> %v", loss0, lr.Loss(w))
	}
	if acc := lr.Accuracy(w); acc < 0.85 {
		t.Fatalf("accuracy %.3f too low for separable-with-noise data", acc)
	}
}

func TestSVMConverges(t *testing.T) {
	data := SyntheticClassification(300, 10, 3)
	svm := &SVM{Data: data, LR: 0.2, Lambda: 1e-3, Tol: 1e-4}
	w, _ := RunLocal(svm, 300)
	if svm.HingeLoss(w) >= svm.HingeLoss(svm.Init()) {
		t.Fatal("hinge loss did not decrease")
	}
	// Accuracy via the LR helper semantics: sign agreement.
	z := mat.MatVec(data.X, w)
	correct := 0
	for i, zi := range z {
		if (zi >= 0) == (data.Y[i] > 0) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(z)); acc < 0.85 {
		t.Fatalf("SVM accuracy %.3f too low", acc)
	}
}

func TestPageRankStochasticMatrix(t *testing.T) {
	g := PowerLawGraph(50, 4, 4)
	// Columns of the transition matrix must sum to 1.
	for j := 0; j < 50; j++ {
		s := 0.0
		for i := 0; i < 50; i++ {
			s += g.Stochastic.At(i, j)
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("column %d sums to %v", j, s)
		}
	}
}

func TestPageRankConvergesToStationary(t *testing.T) {
	g := PowerLawGraph(60, 4, 5)
	pr := &PageRank{Graph: g, Damping: 0.85, Tol: 1e-10}
	x, iters := RunLocal(pr, 500)
	if iters >= 500 {
		t.Fatal("PageRank did not converge")
	}
	// The result is a probability distribution.
	if math.Abs(mat.Norm1(x)-1) > 1e-6 {
		t.Fatalf("ranks sum to %v", mat.Norm1(x))
	}
	// And a fixed point: x == d·M·x + (1−d)/N.
	mx := mat.MatVec(g.Stochastic, x)
	for i := range x {
		want := 0.85*mx[i] + 0.15/60
		if math.Abs(x[i]-want) > 1e-6 {
			t.Fatalf("not a fixed point at %d", i)
		}
	}
}

func TestGraphLaplacianProperties(t *testing.T) {
	g := RingGraph(20)
	// Laplacian rows sum to zero and L is symmetric.
	for i := 0; i < 20; i++ {
		s := 0.0
		for j := 0; j < 20; j++ {
			s += g.Laplacian.At(i, j)
			if g.Laplacian.At(i, j) != g.Laplacian.At(j, i) {
				t.Fatal("Laplacian must be symmetric")
			}
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	// L·1 = 0.
	ones := make([]float64, 20)
	for i := range ones {
		ones[i] = 1
	}
	if n := mat.Norm2(mat.MatVec(g.Laplacian, ones)); n > 1e-12 {
		t.Fatalf("L·1 = %v, want 0", n)
	}
}

func TestGraphFilterRunsHops(t *testing.T) {
	g := RingGraph(16)
	gf := &GraphFilter{Graph: g, Hops: 3}
	_, iters := RunLocal(gf, 100)
	if iters != 3 {
		t.Fatalf("filter ran %d hops want 3", iters)
	}
}

func TestLRPhaseWiringMatchesDirectGradient(t *testing.T) {
	// One phase round-trip: the two-phase decomposition must equal the
	// directly computed gradient.
	data := SyntheticClassification(40, 6, 6)
	lr := &LogisticRegression{Data: data, LR: 0.1, Lambda: 0, Tol: 0}
	ms := lr.Matrices()
	w := make([]float64, 6)
	for i := range w {
		w[i] = 0.1 * float64(i)
	}
	z := mat.MatVec(ms[0], lr.PhaseInput(0, w, nil))
	r := lr.PhaseInput(1, w, [][]float64{z})
	grad := mat.MatVec(ms[1], r)
	// Direct: Xᵀ(σ(Xw) − y01).
	zd := mat.MatVec(data.X, w)
	rd := make([]float64, len(zd))
	for i, zi := range zd {
		y01 := 0.0
		if data.Y[i] > 0 {
			y01 = 1
		}
		rd[i] = sigmoid(zi) - y01
	}
	want := mat.MatVec(mat.Transpose(data.X), rd)
	if !mat.VecApproxEqual(grad, want, 1e-10) {
		t.Fatal("phase decomposition disagrees with direct gradient")
	}
}
