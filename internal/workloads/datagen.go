// Package workloads implements the paper's evaluation applications on top
// of the coded-computing stack: gradient descent for logistic regression
// and SVM (§7.1.1), PageRank power iteration and n-hop graph filtering
// (§7.1.2), and the polynomial-coded Hessian computation (§7.2.3), plus
// the synthetic dataset generators that stand in for the gisette and
// CS-Toronto datasets (see DESIGN.md §2).
//
// Every workload is expressed as an iterative sequence of coded mat-vec
// phases (Iterative), so the same simulator/runtime drives all of them.
package workloads

import (
	"math"
	"math/rand"

	"github.com/coded-computing/s2c2/internal/mat"
)

// Classification is a synthetic dense binary-classification dataset in
// the style of gisette: two Gaussian clusters with label noise.
type Classification struct {
	X *mat.Dense // samples × features
	Y []float64  // labels in {-1, +1}
	W []float64  // the generating hyperplane (for sanity checks)
}

// SyntheticClassification generates a linearly-separable-with-noise
// dataset of the given shape.
func SyntheticClassification(samples, features int, seed int64) *Classification {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, features)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	mat.ScaleVec(1/mat.Norm2(w), w)
	x := mat.New(samples, features)
	y := make([]float64, samples)
	for i := 0; i < samples; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		margin := mat.Dot(row, w) + 0.3*rng.NormFloat64()
		if margin >= 0 {
			y[i] = 1
		} else {
			y[i] = -1
		}
	}
	return &Classification{X: x, Y: y, W: w}
}

// Graph is a directed graph with the matrices the ranking and filtering
// workloads need.
type Graph struct {
	Nodes int
	// Adjacency[i][j] = 1 when j links to i (column j holds j's out-links).
	Adjacency *mat.Dense
	// Stochastic is the column-stochastic transition matrix for PageRank.
	Stochastic *mat.Dense
	// Laplacian is the combinatorial Laplacian D − A of the undirected
	// version, used by graph filtering.
	Laplacian *mat.Dense
}

// PowerLawGraph generates a web-like directed graph: node out-degrees
// follow a heavy-tailed distribution and link targets are preferentially
// attached, mirroring ranking datasets like the CS-Toronto crawl.
func PowerLawGraph(nodes, meanOutDegree int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := mat.New(nodes, nodes)
	// Preferential attachment: sample targets weighted by in-degree+1.
	inDeg := make([]float64, nodes)
	totalIn := float64(nodes)
	for j := 0; j < nodes; j++ {
		// Heavy-tailed out-degree: pareto-ish via 1/U.
		deg := int(float64(meanOutDegree) * 0.5 / math.Max(0.05, rng.Float64()))
		if deg < 1 {
			deg = 1
		}
		if deg > nodes/2 {
			deg = nodes / 2
		}
		for e := 0; e < deg; e++ {
			// Weighted pick by (inDeg+1).
			r := rng.Float64() * totalIn
			acc := 0.0
			target := nodes - 1
			for i := 0; i < nodes; i++ {
				acc += inDeg[i] + 1
				if r <= acc {
					target = i
					break
				}
			}
			if target == j || adj.At(target, j) != 0 {
				continue
			}
			adj.Set(target, j, 1)
			inDeg[target]++
			totalIn++
		}
	}
	return buildGraph(nodes, adj)
}

// RingGraph generates a deterministic ring-with-chords graph, useful for
// small exact tests.
func RingGraph(nodes int) *Graph {
	adj := mat.New(nodes, nodes)
	for j := 0; j < nodes; j++ {
		adj.Set((j+1)%nodes, j, 1)
		adj.Set((j+nodes/2)%nodes, j, 1)
	}
	return buildGraph(nodes, adj)
}

func buildGraph(nodes int, adj *mat.Dense) *Graph {
	stoch := adj.Clone()
	for j := 0; j < nodes; j++ {
		col := 0.0
		for i := 0; i < nodes; i++ {
			col += stoch.At(i, j)
		}
		if col == 0 {
			// Dangling node: teleport uniformly.
			for i := 0; i < nodes; i++ {
				stoch.Set(i, j, 1/float64(nodes))
			}
		} else {
			for i := 0; i < nodes; i++ {
				stoch.Set(i, j, stoch.At(i, j)/col)
			}
		}
	}
	// Undirected Laplacian: L = D − (A ∨ Aᵀ).
	lap := mat.New(nodes, nodes)
	for i := 0; i < nodes; i++ {
		deg := 0.0
		for j := 0; j < nodes; j++ {
			if i == j {
				continue
			}
			v := 0.0
			if adj.At(i, j) != 0 || adj.At(j, i) != 0 {
				v = 1
			}
			lap.Set(i, j, -v)
			deg += v
		}
		lap.Set(i, i, deg)
	}
	return &Graph{Nodes: nodes, Adjacency: adj, Stochastic: stoch, Laplacian: lap}
}
