package workloads

import (
	"math"

	"github.com/coded-computing/s2c2/internal/mat"
)

// Iterative is a workload expressed as repeated coded mat-vec rounds.
// Each iteration runs one or more *phases*; phase p multiplies the fixed
// matrix Matrices()[p] by a vector derived from the current state and the
// previous phases' outputs. The driver (simulator or TCP runtime) owns
// encoding, distribution and decoding; the workload owns the math.
type Iterative interface {
	// Name identifies the workload in experiment output.
	Name() string
	// Matrices returns the per-phase data matrices, encoded once at setup.
	Matrices() []*mat.Dense
	// Init returns the initial state vector.
	Init() []float64
	// PhaseInput derives phase p's input vector from the state and the
	// outputs of phases 0..p-1 of the current iteration.
	PhaseInput(p int, state []float64, outputs [][]float64) []float64
	// Update folds the iteration's phase outputs into a new state,
	// reporting whether the workload has converged.
	Update(state []float64, outputs [][]float64) (next []float64, done bool)
}

// RunLocal executes an Iterative workload without any cluster — the
// ground-truth oracle used by tests and by timing-only simulations.
// Phase outputs are computed into per-phase buffers reused across
// iterations; the returned state is a fresh copy.
func RunLocal(w Iterative, maxIter int) ([]float64, int) {
	ms := w.Matrices()
	state := w.Init()
	outputs := make([][]float64, len(ms))
	iters := maxIter
	for iter := 0; iter < maxIter; iter++ {
		for p := range ms {
			in := w.PhaseInput(p, state, outputs[:p])
			if cap(outputs[p]) < ms[p].Rows() {
				outputs[p] = make([]float64, ms[p].Rows())
			}
			outputs[p] = outputs[p][:ms[p].Rows()]
			mat.MatVecInto(ms[p], in, outputs[p])
		}
		var done bool
		state, done = w.Update(state, outputs)
		if done {
			iters = iter + 1
			break
		}
	}
	return mat.CloneVec(state), iters
}

// stepBuffers is the reusable iterate storage of a gradient-style
// workload: Update writes the next state into whichever of the two
// buffers the current state does not occupy, so states ping-pong without
// per-iteration allocation. PhaseInput scratch rides along.
type stepBuffers struct {
	a, b    []float64
	phaseIn []float64
}

// next returns a buffer of length n guaranteed not to alias state.
func (s *stepBuffers) next(state []float64, n int) []float64 {
	if cap(s.a) < n {
		s.a = make([]float64, n)
	}
	if cap(s.b) < n {
		s.b = make([]float64, n)
	}
	if len(state) > 0 && len(s.a) > 0 && &s.a[0] == &state[0] {
		return s.b[:n]
	}
	return s.a[:n]
}

// input returns the PhaseInput scratch buffer resized to n.
func (s *stepBuffers) input(n int) []float64 {
	if cap(s.phaseIn) < n {
		s.phaseIn = make([]float64, n)
	}
	return s.phaseIn[:n]
}

// LogisticRegression is batch gradient descent for ℓ2-regularised
// logistic regression. Phase 0 computes z = X·w, phase 1 computes the
// gradient Xᵀ·r where r is the per-sample residual.
type LogisticRegression struct {
	Data *Classification
	// LR is the learning rate; Lambda the ℓ2 penalty; Tol the gradient
	// norm that stops the descent.
	LR, Lambda, Tol float64

	xt  *mat.Dense
	buf stepBuffers
}

// Name implements Iterative.
func (l *LogisticRegression) Name() string { return "logistic-regression" }

// Matrices returns X and Xᵀ (both encoded and distributed by the driver).
func (l *LogisticRegression) Matrices() []*mat.Dense {
	if l.xt == nil {
		l.xt = mat.Transpose(l.Data.X)
	}
	return []*mat.Dense{l.Data.X, l.xt}
}

// Init implements Iterative.
func (l *LogisticRegression) Init() []float64 {
	return make([]float64, l.Data.X.Cols())
}

// PhaseInput implements Iterative.
func (l *LogisticRegression) PhaseInput(p int, state []float64, outputs [][]float64) []float64 {
	if p == 0 {
		return state // X·w
	}
	// Phase 1 input: residual r_i = σ(z_i) − y01_i, in reused scratch.
	z := outputs[0]
	r := l.buf.input(len(z))
	for i, zi := range z {
		y01 := 0.0
		if l.Data.Y[i] > 0 {
			y01 = 1
		}
		r[i] = sigmoid(zi) - y01
	}
	return r
}

// Update applies the gradient step, writing the new iterate into
// preallocated ping-pong state storage.
func (l *LogisticRegression) Update(state []float64, outputs [][]float64) ([]float64, bool) {
	grad := outputs[1]
	m := float64(l.Data.X.Rows())
	next := l.buf.next(state, len(state))
	gn := 0.0
	for j := range next {
		g := grad[j]/m + l.Lambda*state[j]
		next[j] = state[j] - l.LR*g
		gn += g * g
	}
	return next, math.Sqrt(gn) < l.Tol
}

// Loss returns the regularised negative log-likelihood at w.
func (l *LogisticRegression) Loss(w []float64) float64 {
	z := mat.MatVec(l.Data.X, w)
	loss := 0.0
	for i, zi := range z {
		y01 := 0.0
		if l.Data.Y[i] > 0 {
			y01 = 1
		}
		// Numerically stable log(1+e^z) − y·z.
		loss += math.Max(zi, 0) - zi*y01 + math.Log1p(math.Exp(-math.Abs(zi)))
	}
	loss /= float64(len(z))
	for _, wj := range w {
		loss += 0.5 * l.Lambda * wj * wj
	}
	return loss
}

// Accuracy returns the training accuracy of w.
func (l *LogisticRegression) Accuracy(w []float64) float64 {
	z := mat.MatVec(l.Data.X, w)
	correct := 0
	for i, zi := range z {
		if (zi >= 0) == (l.Data.Y[i] > 0) {
			correct++
		}
	}
	return float64(correct) / float64(len(z))
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// SVM is batch subgradient descent for the ℓ2-regularised hinge loss.
// Its phase structure matches LogisticRegression.
type SVM struct {
	Data            *Classification
	LR, Lambda, Tol float64

	xt  *mat.Dense
	buf stepBuffers
}

// Name implements Iterative.
func (s *SVM) Name() string { return "svm" }

// Matrices implements Iterative.
func (s *SVM) Matrices() []*mat.Dense {
	if s.xt == nil {
		s.xt = mat.Transpose(s.Data.X)
	}
	return []*mat.Dense{s.Data.X, s.xt}
}

// Init implements Iterative.
func (s *SVM) Init() []float64 { return make([]float64, s.Data.X.Cols()) }

// PhaseInput implements Iterative.
func (s *SVM) PhaseInput(p int, state []float64, outputs [][]float64) []float64 {
	if p == 0 {
		return state
	}
	z := outputs[0]
	r := s.buf.input(len(z))
	for i, zi := range z {
		r[i] = 0
		if s.Data.Y[i]*zi < 1 {
			r[i] = -s.Data.Y[i] // hinge subgradient
		}
	}
	return r
}

// Update applies the subgradient step into ping-pong state storage.
func (s *SVM) Update(state []float64, outputs [][]float64) ([]float64, bool) {
	grad := outputs[1]
	m := float64(s.Data.X.Rows())
	next := s.buf.next(state, len(state))
	gn := 0.0
	for j := range next {
		g := grad[j]/m + s.Lambda*state[j]
		next[j] = state[j] - s.LR*g
		gn += g * g
	}
	return next, math.Sqrt(gn) < s.Tol
}

// HingeLoss returns the regularised hinge loss at w.
func (s *SVM) HingeLoss(w []float64) float64 {
	z := mat.MatVec(s.Data.X, w)
	loss := 0.0
	for i, zi := range z {
		if h := 1 - s.Data.Y[i]*zi; h > 0 {
			loss += h
		}
	}
	loss /= float64(len(z))
	for _, wj := range w {
		loss += 0.5 * s.Lambda * wj * wj
	}
	return loss
}

// PageRank is power iteration on the damped column-stochastic transition
// matrix: x ← d·M·x + (1−d)/N.
type PageRank struct {
	Graph   *Graph
	Damping float64
	Tol     float64

	buf stepBuffers
}

// Name implements Iterative.
func (p *PageRank) Name() string { return "pagerank" }

// Matrices implements Iterative.
func (p *PageRank) Matrices() []*mat.Dense { return []*mat.Dense{p.Graph.Stochastic} }

// Init returns the uniform distribution.
func (p *PageRank) Init() []float64 {
	n := p.Graph.Nodes
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	return x
}

// PhaseInput implements Iterative.
func (p *PageRank) PhaseInput(_ int, state []float64, _ [][]float64) []float64 { return state }

// Update applies damping and checks the ℓ1 residual, writing the next
// distribution into ping-pong state storage.
func (p *PageRank) Update(state []float64, outputs [][]float64) ([]float64, bool) {
	mx := outputs[0]
	n := float64(p.Graph.Nodes)
	next := p.buf.next(state, len(mx))
	diff := 0.0
	for i := range next {
		next[i] = p.Damping*mx[i] + (1-p.Damping)/n
		diff += math.Abs(next[i] - state[i])
	}
	return next, diff < p.Tol
}

// GraphFilter applies Hops iterations of the combinatorial Laplacian —
// the n-hop filtering operation of §6.3.
type GraphFilter struct {
	Graph *Graph
	Hops  int

	done int
	buf  stepBuffers
}

// Name implements Iterative.
func (g *GraphFilter) Name() string { return "graph-filter" }

// Matrices implements Iterative.
func (g *GraphFilter) Matrices() []*mat.Dense { return []*mat.Dense{g.Graph.Laplacian} }

// Init returns an impulse signal at node 0.
func (g *GraphFilter) Init() []float64 {
	x := make([]float64, g.Graph.Nodes)
	x[0] = 1
	return x
}

// PhaseInput implements Iterative.
func (g *GraphFilter) PhaseInput(_ int, state []float64, _ [][]float64) []float64 { return state }

// Update stops after Hops applications. The filtered signal is written
// into ping-pong state storage.
func (g *GraphFilter) Update(state []float64, outputs [][]float64) ([]float64, bool) {
	g.done++
	out := g.buf.next(state, len(outputs[0]))
	copy(out, outputs[0])
	// Normalise to keep magnitudes bounded across hops.
	if n := mat.NormInf(out); n > 0 {
		mat.ScaleVec(1/n, out)
	}
	return out, g.done >= g.Hops
}
