package trace

// Presets mirror the three environments of the paper's evaluation.

// ControlledCluster reproduces the §7.1 local-cluster setup: identical
// servers with up to ±20% speed variation between non-stragglers, plus
// `stragglers` nodes that are at least 5× slower than the fastest node for
// the whole run. Workers 0..stragglers-1 are the stragglers.
func ControlledCluster(workers, stragglers, steps int, seed int64) *Trace {
	cfg := Config{
		Workers:    workers,
		Steps:      steps,
		Seed:       seed,
		BaseMin:    0.8, // ±20% static spread among non-stragglers
		BaseMax:    1.0,
		DriftPhi:   0.3,
		DriftSigma: 0.01, // controlled environment: tiny jitter
		SwitchProb: 0,    // no tenancy regime shifts on dedicated hardware
		RegimeMin:  1,
		RegimeMax:  1,
		MinSpeed:   0.01,
	}
	tr, err := Generate(cfg)
	if err != nil {
		panic(err) // static config; cannot fail
	}
	specs := make([]StragglerSpec, 0, stragglers)
	for w := 0; w < stragglers && w < workers; w++ {
		specs = append(specs, StragglerSpec{Worker: w, Factor: 6.25}) // 0.8/6.25 ≈ 5x..7.8x slower than peers
	}
	return tr.ApplyStragglers(specs...)
}

// CloudStable models the low-mis-prediction Digital Ocean environment of
// §7.2.1: speeds drift slowly, regimes rarely shift, so a one-step-ahead
// predictor is nearly perfect.
func CloudStable(workers, steps int, seed int64) *Trace {
	cfg := Config{
		Workers:    workers,
		Steps:      steps,
		Seed:       seed,
		BaseMin:    0.7,
		BaseMax:    1.0,
		DriftPhi:   0.2,
		DriftSigma: 0.015,
		SwitchProb: 0.005,
		RegimeMin:  0.8,
		RegimeMax:  1.1,
		MinSpeed:   0.01,
	}
	tr, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}

// CloudVolatile models the high-mis-prediction environment of §7.2.2:
// shared VMs whose speeds shift abruptly and substantially, driving
// predictor mis-prediction rates near the paper's observed 18%.
func CloudVolatile(workers, steps int, seed int64) *Trace {
	cfg := Config{
		Workers:    workers,
		Steps:      steps,
		Seed:       seed,
		BaseMin:    0.6,
		BaseMax:    1.0,
		DriftPhi:   0.6, // snaps quickly to the new regime
		DriftSigma: 0.04,
		SwitchProb: 0.12,
		RegimeMin:  0.25,
		RegimeMax:  1.3,
		MinSpeed:   0.01,
	}
	tr, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}

// DigitalOceanLike reproduces the Figure 2 measurement campaign shape:
// a large fleet with mostly-stable speeds, occasional regime shifts, and
// a small fraction of heavily degraded nodes.
func DigitalOceanLike(workers, steps int, seed int64) *Trace {
	cfg := Config{
		Workers:    workers,
		Steps:      steps,
		Seed:       seed,
		BaseMin:    0.5,
		BaseMax:    1.0,
		DriftPhi:   0.25,
		DriftSigma: 0.02,
		SwitchProb: 0.02,
		RegimeMin:  0.5,
		RegimeMax:  1.2,
		MinSpeed:   0.01,
	}
	tr, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	// Roughly 1 in 12 nodes experiences a mid-run straggler episode.
	for w := 0; w < workers; w += 12 {
		from := (w * 7) % (steps / 2)
		tr.ApplyStragglers(StragglerSpec{Worker: w, Factor: 8, From: from, To: from + steps/4})
	}
	return tr
}
