package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func baseConfig() Config {
	return Config{
		Workers: 4, Steps: 200, Seed: 1,
		BaseMin: 0.8, BaseMax: 1.0,
		DriftPhi: 0.3, DriftSigma: 0.02,
		SwitchProb: 0.01, RegimeMin: 0.5, RegimeMax: 1.2,
		MinSpeed: 0.01,
	}
}

func TestGenerateShapeAndDeterminism(t *testing.T) {
	cfg := baseConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumWorkers() != 4 || a.Len() != 200 {
		t.Fatalf("shape %dx%d", a.NumWorkers(), a.Len())
	}
	b, _ := Generate(cfg)
	for w := 0; w < 4; w++ {
		for i := 0; i < 200; i++ {
			if a.Speeds[w][i] != b.Speeds[w][i] {
				t.Fatal("same seed must give identical traces")
			}
		}
	}
	cfg.Seed = 2
	c, _ := Generate(cfg)
	same := true
	for i := 0; i < 200 && same; i++ {
		same = a.Speeds[0][i] == c.Speeds[0][i]
	}
	if same {
		t.Fatal("different seeds should give different traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := baseConfig()
	bad.Workers = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("workers=0 must fail")
	}
	bad = baseConfig()
	bad.BaseMax = 0.1 // < BaseMin
	if _, err := Generate(bad); err == nil {
		t.Fatal("inverted base range must fail")
	}
	bad = baseConfig()
	bad.SwitchProb = 1.5
	if _, err := Generate(bad); err == nil {
		t.Fatal("bad probability must fail")
	}
}

func TestSpeedsPositiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := baseConfig()
		cfg.Seed = seed
		tr, err := Generate(cfg)
		if err != nil {
			return false
		}
		for w := 0; w < tr.NumWorkers(); w++ {
			for _, v := range tr.Speeds[w] {
				if v < cfg.MinSpeed || math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSlowDriftProperty(t *testing.T) {
	// The paper's key observation: within a ~10-step neighbourhood, speed
	// stays within ~10% on average. Check that mean relative step change
	// in a stable config is small.
	tr := CloudStable(8, 500, 3)
	for w := 0; w < 8; w++ {
		sum := 0.0
		for i := 1; i < 500; i++ {
			sum += math.Abs(tr.Speeds[w][i]-tr.Speeds[w][i-1]) / tr.Speeds[w][i-1]
		}
		if avg := sum / 499; avg > 0.10 {
			t.Fatalf("worker %d mean step change %.3f too large for stable preset", w, avg)
		}
	}
}

func TestControlledClusterStragglers(t *testing.T) {
	tr := ControlledCluster(12, 3, 100, 5)
	// Stragglers are workers 0..2 and must be at least 5x slower than the
	// fastest non-straggler at every step.
	for i := 0; i < 100; i++ {
		fastest := 0.0
		for w := 3; w < 12; w++ {
			if s := tr.Speeds[w][i]; s > fastest {
				fastest = s
			}
		}
		for w := 0; w < 3; w++ {
			if tr.Speeds[w][i] > fastest/5 {
				t.Fatalf("step %d: straggler %d speed %.3f vs fastest %.3f (not 5x slower)",
					i, w, tr.Speeds[w][i], fastest)
			}
		}
	}
	// Non-straggler spread stays within the configured ±20% band ±jitter.
	for i := 0; i < 100; i++ {
		lo, hi := math.Inf(1), 0.0
		for w := 3; w < 12; w++ {
			s := tr.Speeds[w][i]
			lo = math.Min(lo, s)
			hi = math.Max(hi, s)
		}
		if hi/lo > 1.5 {
			t.Fatalf("step %d: non-straggler spread %.2f too wide", i, hi/lo)
		}
	}
}

func TestVolatileIsMoreVolatileThanStable(t *testing.T) {
	stable := CloudStable(10, 400, 7)
	volatile := CloudVolatile(10, 400, 7)
	vs := meanAbsStep(stable)
	vv := meanAbsStep(volatile)
	if vv <= vs {
		t.Fatalf("volatile preset (%.4f) should exceed stable (%.4f)", vv, vs)
	}
}

func meanAbsStep(tr *Trace) float64 {
	sum, n := 0.0, 0
	for w := 0; w < tr.NumWorkers(); w++ {
		for i := 1; i < tr.Len(); i++ {
			sum += math.Abs(tr.Speeds[w][i]-tr.Speeds[w][i-1]) / tr.Speeds[w][i-1]
			n++
		}
	}
	return sum / float64(n)
}

func TestApplyStragglersWindow(t *testing.T) {
	tr := &Trace{Speeds: [][]float64{{1, 1, 1, 1}}}
	tr.ApplyStragglers(StragglerSpec{Worker: 0, Factor: 2, From: 1, To: 3})
	want := []float64{1, 0.5, 0.5, 1}
	for i, v := range want {
		if tr.Speeds[0][i] != v {
			t.Fatalf("got %v want %v", tr.Speeds[0], want)
		}
	}
}

func TestAtWraps(t *testing.T) {
	tr := &Trace{Speeds: [][]float64{{1, 2, 3}}}
	if tr.At(0, 4) != 2 {
		t.Fatalf("At should wrap: got %v", tr.At(0, 4))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := CloudStable(3, 20, 9)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumWorkers() != 3 || back.Len() != 20 {
		t.Fatalf("round-trip shape %dx%d", back.NumWorkers(), back.Len())
	}
	for w := 0; w < 3; w++ {
		for i := 0; i < 20; i++ {
			if back.Speeds[w][i] != tr.Speeds[w][i] {
				t.Fatal("CSV round trip not exact")
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("step,worker0\n")); err == nil {
		t.Fatal("no data rows must fail")
	}
	if _, err := ReadCSV(bytes.NewBufferString("step,worker0\n0,notanumber\n")); err == nil {
		t.Fatal("bad float must fail")
	}
}

func TestCloneIndependent(t *testing.T) {
	tr := CloudStable(2, 10, 1)
	c := tr.Clone()
	c.Speeds[0][0] = 999
	if tr.Speeds[0][0] == 999 {
		t.Fatal("Clone aliases original")
	}
}
