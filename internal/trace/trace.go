// Package trace models per-worker execution-speed time series.
//
// The paper measured 100 Digital Ocean droplets running matrix
// multiplication and logging speed at 1% progress granularity (Figure 2),
// observing that (a) speed drifts slowly — staying within ~10% over ~10
// neighbouring samples, (b) occasionally jumps abruptly to a new regime
// (shared-tenancy effects), and (c) some nodes degrade into stragglers an
// order of magnitude slower. This package generates synthetic traces with
// exactly those statistics, replays them deterministically, and
// exports/imports them as CSV. It is the substitute substrate for the
// paper's cloud measurements (see DESIGN.md §2).
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"math/rand"
	"strconv"
)

// Trace holds speed samples for a set of workers. Speeds[w][t] is worker
// w's processing speed (rows per unit time) during step t.
type Trace struct {
	Speeds [][]float64
}

// NumWorkers returns the worker count.
func (t *Trace) NumWorkers() int { return len(t.Speeds) }

// Len returns the number of steps (0 for an empty trace).
func (t *Trace) Len() int {
	if len(t.Speeds) == 0 {
		return 0
	}
	return len(t.Speeds[0])
}

// At returns worker w's speed at step i, wrapping cyclically so traces can
// drive arbitrarily long simulations.
func (t *Trace) At(w, i int) float64 {
	s := t.Speeds[w]
	return s[i%len(s)]
}

// Row returns worker w's full series (aliased).
func (t *Trace) Row(w int) []float64 { return t.Speeds[w] }

// Config parameterises the generative speed model. Each worker draws a
// base speed uniformly from [BaseMin, BaseMax]. Within a regime the speed
// follows an AR(1) mean-reverting walk around base×regime with relative
// step noise DriftSigma; with probability SwitchProb per step the regime
// multiplier resamples from [RegimeMin, RegimeMax] (the abrupt shifts of
// Figure 2).
type Config struct {
	Workers int
	Steps   int
	Seed    int64

	BaseMin, BaseMax     float64
	DriftPhi             float64 // mean-reversion strength in (0,1]
	DriftSigma           float64 // per-step relative noise
	SwitchProb           float64
	RegimeMin, RegimeMax float64
	MinSpeed             float64 // floor, keeps speeds strictly positive
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Workers <= 0:
		return fmt.Errorf("trace: Workers = %d", c.Workers)
	case c.Steps <= 0:
		return fmt.Errorf("trace: Steps = %d", c.Steps)
	case c.BaseMin <= 0 || c.BaseMax < c.BaseMin:
		return fmt.Errorf("trace: base speed range [%v,%v]", c.BaseMin, c.BaseMax)
	case c.DriftPhi < 0 || c.DriftPhi > 1:
		return fmt.Errorf("trace: DriftPhi = %v", c.DriftPhi)
	case c.SwitchProb < 0 || c.SwitchProb > 1:
		return fmt.Errorf("trace: SwitchProb = %v", c.SwitchProb)
	case c.RegimeMin <= 0 || c.RegimeMax < c.RegimeMin:
		return fmt.Errorf("trace: regime range [%v,%v]", c.RegimeMin, c.RegimeMax)
	}
	return nil
}

// Generate produces a deterministic trace from the config.
func Generate(cfg Config) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Speeds: make([][]float64, cfg.Workers)}
	for w := 0; w < cfg.Workers; w++ {
		base := cfg.BaseMin + rng.Float64()*(cfg.BaseMax-cfg.BaseMin)
		regime := 1.0
		cur := base
		series := make([]float64, cfg.Steps)
		for t := 0; t < cfg.Steps; t++ {
			if rng.Float64() < cfg.SwitchProb {
				regime = cfg.RegimeMin + rng.Float64()*(cfg.RegimeMax-cfg.RegimeMin)
			}
			target := base * regime
			// Mean-reverting step toward the regime target plus
			// proportional Gaussian noise.
			cur += cfg.DriftPhi * (target - cur)
			cur += cur * cfg.DriftSigma * rng.NormFloat64()
			if cur < cfg.MinSpeed {
				cur = cfg.MinSpeed
			}
			series[t] = cur
		}
		tr.Speeds[w] = series
	}
	return tr, nil
}

// StragglerSpec marks worker Worker as slowed by Factor (e.g. 5 means 5×
// slower) during steps [From, To). To <= 0 means "until the end".
type StragglerSpec struct {
	Worker int
	Factor float64
	From   int
	To     int
}

// ApplyStragglers divides the specified workers' speeds in place and
// returns the trace for chaining.
func (t *Trace) ApplyStragglers(specs ...StragglerSpec) *Trace {
	for _, s := range specs {
		if s.Worker < 0 || s.Worker >= t.NumWorkers() || s.Factor <= 0 {
			panic(fmt.Sprintf("trace: bad straggler spec %+v", s))
		}
		to := s.To
		if to <= 0 || to > t.Len() {
			to = t.Len()
		}
		for i := s.From; i < to; i++ {
			t.Speeds[s.Worker][i] /= s.Factor
		}
	}
	return t
}

// Clone deep-copies the trace.
func (t *Trace) Clone() *Trace {
	out := &Trace{Speeds: make([][]float64, len(t.Speeds))}
	for i, s := range t.Speeds {
		out.Speeds[i] = append([]float64(nil), s...)
	}
	return out
}

// WriteCSV emits the trace as step,worker0,worker1,... rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, t.NumWorkers()+1)
	header[0] = "step"
	for i := 0; i < t.NumWorkers(); i++ {
		header[i+1] = fmt.Sprintf("worker%d", i)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, t.NumWorkers()+1)
	for step := 0; step < t.Len(); step++ {
		row[0] = strconv.Itoa(step)
		for i := 0; i < t.NumWorkers(); i++ {
			row[i+1] = strconv.FormatFloat(t.Speeds[i][step], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("trace: CSV has no data rows")
	}
	workers := len(records[0]) - 1
	if workers <= 0 {
		return nil, fmt.Errorf("trace: CSV has no worker columns")
	}
	tr := &Trace{Speeds: make([][]float64, workers)}
	for w := range tr.Speeds {
		tr.Speeds[w] = make([]float64, len(records)-1)
	}
	for i, rec := range records[1:] {
		if len(rec) != workers+1 {
			return nil, fmt.Errorf("trace: CSV row %d has %d fields want %d", i+1, len(rec), workers+1)
		}
		for w := 0; w < workers; w++ {
			v, err := strconv.ParseFloat(rec[w+1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: CSV row %d col %d: %w", i+1, w+1, err)
			}
			tr.Speeds[w][i] = v
		}
	}
	return tr, nil
}
