package kernel

// Exec names the execution resources a component runs its parallel loops
// on: which worker pool, and how many of its participants one operation
// may fan out to. It exists for co-tenancy — several clusters, masters, or
// workers in one process can each be pinned to their own pool (or to a
// bounded share of the default one) instead of all contending for a single
// GOMAXPROCS-sized pool.
//
// The zero value selects the process-wide Default pool with full fan-out,
// which is the right choice for a single tenant. Exec is a small value
// type; copy it freely.
type Exec struct {
	// Pool is the worker pool to dispatch on; nil selects Default().
	Pool *Pool
	// MaxFan caps the participants per operation. <= 0 uses the whole
	// pool; 1 runs operations entirely on the calling goroutine.
	MaxFan int
}

// Serial returns an Exec that performs every operation on the calling
// goroutine — no pool dispatch at all.
func Serial() Exec { return Exec{MaxFan: 1} }

func (e Exec) pool() *Pool {
	if e.Pool != nil {
		return e.Pool
	}
	return Default()
}

// Workers reports how many participants an operation on this Exec may use.
func (e Exec) Workers() int {
	w := e.pool().Workers()
	if e.MaxFan > 0 && e.MaxFan < w {
		return e.MaxFan
	}
	return w
}

// For runs fn over [0, total) in parallel chunks of at least minChunk
// rows, subject to the Exec's pool and fan-out cap.
func (e Exec) For(total, minChunk int, fn func(lo, hi int)) {
	e.pool().ForMax(total, minChunk, e.MaxFan, fn)
}

// MatVec computes dst = A·x (A rows×cols row-major) on the Exec's pool.
func (e Exec) MatVec(dst, a []float64, rows, cols int, x []float64) {
	e.pool().MatVec(dst, a, rows, cols, x, e.MaxFan)
}

// MatMul computes dst = A·B (A m×k, B k×n row-major) on the Exec's pool.
func (e Exec) MatMul(dst, a []float64, m, k int, b []float64, n int) {
	e.pool().MatMul(dst, a, m, k, b, n, e.MaxFan)
}
