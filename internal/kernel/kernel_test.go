package kernel

import (
	"math"
	"math/rand"
	"testing"
)

func randSlice(n int, rng *rand.Rand) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 2*rng.Float64() - 1
	}
	return s
}

// naive reference kernels — the pre-refactor loops.

func naiveMatVec(dst, a []float64, rows, cols int, x []float64) {
	for i := 0; i < rows; i++ {
		s := 0.0
		for j := 0; j < cols; j++ {
			s += a[i*cols+j] * x[j]
		}
		dst[i] = s
	}
}

func naiveMatMul(dst, a []float64, m, k int, b []float64, n int) {
	for i := range dst[:m*n] {
		dst[i] = 0
	}
	for i := 0; i < m; i++ {
		for kx := 0; kx < k; kx++ {
			av := a[i*k+kx]
			for j := 0; j < n; j++ {
				dst[i*n+j] += av * b[kx*n+j]
			}
		}
	}
}

func maxAbsDiff(x, y []float64) float64 {
	d := 0.0
	for i := range x {
		if a := math.Abs(x[i] - y[i]); a > d {
			d = a
		}
	}
	return d
}

func TestDotMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 4, 7, 64, 1001} {
		x, y := randSlice(n, rng), randSlice(n, rng)
		want := 0.0
		for i := range x {
			want += x[i] * y[i]
		}
		if got := Dot(x, y); math.Abs(got-want) > 1e-12*float64(n+1) {
			t.Fatalf("n=%d: Dot=%v want %v", n, got, want)
		}
	}
}

func TestMatVecMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][2]int{{0, 5}, {1, 1}, {7, 3}, {64, 64}, {33, 129}} {
		rows, cols := dims[0], dims[1]
		a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
		got, want := make([]float64, rows), make([]float64, rows)
		MatVec(got, a, rows, cols, x)
		naiveMatVec(want, a, rows, cols, x)
		if maxAbsDiff(got, want) > 1e-10 {
			t.Fatalf("%dx%d: MatVec mismatch", rows, cols)
		}
	}
}

func TestMatVecRangeMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows, cols := 37, 19
	a, x := randSlice(rows*cols, rng), randSlice(cols, rng)
	full := make([]float64, rows)
	MatVec(full, a, rows, cols, x)
	for lo := 0; lo <= rows; lo += 7 {
		for hi := lo; hi <= rows; hi += 11 {
			part := make([]float64, hi-lo)
			MatVecRange(part, a, cols, x, lo, hi)
			if maxAbsDiff(part, full[lo:hi]) > 1e-12 {
				t.Fatalf("range [%d,%d) mismatch", lo, hi)
			}
		}
	}
}

func TestVecMatMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows, cols := 23, 17
	a, x := randSlice(rows*cols, rng), randSlice(rows, rng)
	got := make([]float64, cols)
	VecMat(got, x, a, rows, cols)
	want := make([]float64, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			want[j] += x[i] * a[i*cols+j]
		}
	}
	if maxAbsDiff(got, want) > 1e-10 {
		t.Fatal("VecMat mismatch")
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Shapes straddling every blocking boundary: micro-kernel tails,
	// kc/nc panel edges, degenerate dims.
	shapes := [][3]int{
		{1, 1, 1}, {4, 4, 4}, {5, 3, 2}, {3, 200, 300},
		{64, 64, 64}, {65, 129, 257}, {130, 128, 256}, {0, 4, 4}, {4, 0, 4},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := randSlice(m*k, rng), randSlice(k*n, rng)
		got, want := make([]float64, m*n), make([]float64, m*n)
		MatMul(got, a, m, k, b, n)
		naiveMatMul(want, a, m, k, b, n)
		if maxAbsDiff(got, want) > 1e-9 {
			t.Fatalf("%dx%dx%d: MatMul mismatch (max diff %g)", m, k, n, maxAbsDiff(got, want))
		}
	}
}

func TestMatMulRangeBandsCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, k, n := 31, 40, 27
	a, b := randSlice(m*k, rng), randSlice(k*n, rng)
	want := make([]float64, m*n)
	MatMul(want, a, m, k, b, n)
	got := make([]float64, m*n)
	for lo := 0; lo < m; lo += 9 {
		hi := lo + 9
		if hi > m {
			hi = m
		}
		MatMulRange(got, a, m, k, b, n, lo, hi)
	}
	if maxAbsDiff(got, want) > 1e-10 {
		t.Fatal("banded MatMulRange disagrees with full MatMul")
	}
}

func TestATDiagBRangeMatchesComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, ka, nb := 14, 9, 6
	a, b, d := randSlice(m*ka, rng), randSlice(m*nb, rng), randSlice(m, rng)
	// want = Aᵀ·diag(d)·B by explicit loops.
	want := make([]float64, ka*nb)
	for i := 0; i < m; i++ {
		for p := 0; p < ka; p++ {
			for q := 0; q < nb; q++ {
				want[p*nb+q] += a[i*ka+p] * d[i] * b[i*nb+q]
			}
		}
	}
	got := make([]float64, ka*nb)
	ATDiagBRange(got, a, d, b, m, ka, nb, 0, ka)
	if maxAbsDiff(got, want) > 1e-10 {
		t.Fatal("ATDiagBRange mismatch")
	}
	// Partial row window [2, 5).
	part := make([]float64, 3*nb)
	ATDiagBRange(part, a, d, b, m, ka, nb, 2, 5)
	if maxAbsDiff(part, want[2*nb:5*nb]) > 1e-10 {
		t.Fatal("partial ATDiagBRange mismatch")
	}
}

func TestAxpyScaleZero(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, y)
	if y[0] != 3 || y[2] != 5 {
		t.Fatalf("Axpy = %v", y)
	}
	Scale(2, y)
	if y[0] != 6 {
		t.Fatalf("Scale = %v", y)
	}
	Zero(y)
	if y[0] != 0 || y[2] != 0 {
		t.Fatalf("Zero = %v", y)
	}
}
