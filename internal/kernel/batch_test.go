package kernel

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// Tests for the batched multi-x float64 kernel and the GF(2³¹−1) dot-lane
// kernel: cross-backend equivalence, band invariance (the determinism
// contract distributed rounds rely on), boundary-value GF exactness
// against a per-element reference, and the gated speedup acceptance tests.

func TestMatVecBatchBackendsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	shapes := [][2]int{{1, 1}, {3, 7}, {4, 8}, {5, 9}, {7, 16}, {9, 17}, {13, 31}, {16, 33}, {33, 129}, {5, 300}}
	widths := []int{1, 2, 3, 4, 5, 7, 8, 9, 11, 16, 17}
	for _, s := range shapes {
		rows, cols := s[0], s[1]
		a := randSlice(rows*cols, rng)
		for _, w := range widths {
			xs := randSlice(w*cols, rng)
			want := make([]float64, rows*w)
			for i := 0; i < rows; i++ {
				for l := 0; l < w; l++ {
					want[i*w+l] = dotRef(a[i*cols:(i+1)*cols], xs[l*cols:(l+1)*cols])
				}
			}
			for _, backend := range Backends() {
				withBackend(t, backend, func() {
					got := make([]float64, rows*w)
					MatVecBatch(got, a, rows, cols, xs, w)
					if d := maxAbsDiff(got, want); d > 1e-11*float64(cols+1) {
						t.Errorf("backend=%s %dx%d w=%d: MatVecBatch max diff %g", backend, rows, cols, w, d)
					}
					// Every lane must match the same backend's result for that
					// lane computed alone — within rounding (the avx2 batch
					// kernel accumulates in mat-mul tile order, the single-x
					// kernel in dot order).
					single := make([]float64, rows)
					for l := 0; l < w; l++ {
						MatVec(single, a, rows, cols, xs[l*cols:(l+1)*cols])
						for i := 0; i < rows; i++ {
							if math.Abs(got[i*w+l]-single[i]) > 1e-11*float64(cols+1) {
								t.Errorf("backend=%s %dx%d w=%d lane=%d row=%d: batch %v single %v",
									backend, rows, cols, w, l, i, got[i*w+l], single[i])
							}
						}
					}
				})
			}
		}
	}
}

// TestMatVecBatchBandInvariant pins the determinism contract banded
// callers rely on: splitting a batched sweep at arbitrary row boundaries
// must be bit-identical to the unbanded call on the same backend (workers
// band rows across a pool; the decoded round compares exactly against an
// unbanded local computation).
func TestMatVecBatchBandInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	const rows, cols = 23, 67
	for _, w := range []int{1, 3, 8, 12} {
		a := randSlice(rows*cols, rng)
		xs := randSlice(w*cols, rng)
		for _, backend := range Backends() {
			withBackend(t, backend, func() {
				whole := make([]float64, rows*w)
				MatVecBatch(whole, a, rows, cols, xs, w)
				for _, band := range []int{1, 2, 3, 5, 7, 16} {
					banded := make([]float64, rows*w)
					for lo := 0; lo < rows; lo += band {
						hi := min(lo+band, rows)
						MatVecRangeBatch(banded[lo*w:hi*w], a, cols, xs, w, lo, hi)
					}
					for i := range banded {
						if math.Float64bits(banded[i]) != math.Float64bits(whole[i]) {
							t.Fatalf("backend=%s w=%d band=%d i=%d: banded %v != whole %v (must be bit-identical)",
								backend, w, band, i, banded[i], whole[i])
						}
					}
				}
			})
		}
	}
}

// gfDotRef is the per-element scalar reference the dot-lane kernel must
// match exactly: one gfMulAdd31 chain, no vectorization.
func gfDotRef(row, x []uint32) uint32 {
	var acc uint32
	for j := range row {
		acc = gfMulAdd31(acc, row[j], x[j])
	}
	return acc
}

// TestGFMatVecBackendsExact checks the dot-lane kernel on every backend
// against the per-element reference: boundary lanes (0, 1, p−1, and the
// non-canonical p itself, which callers may hold transiently), worst-case
// fold bounds (long rows of p−1 · p−1), and every length straddling the
// 8-lane blocks and scalar tail.
func TestGFMatVecBackendsExact(t *testing.T) {
	const p = uint32(p31)
	rng := rand.New(rand.NewSource(63))
	boundary := []uint32{0, 1, 2, p - 1, p - 2, p / 2, p}
	for cols := 0; cols <= 40; cols++ {
		rows := 3
		a := make([]uint32, rows*cols)
		x := make([]uint32, cols)
		for i := range a {
			if i < len(boundary) {
				a[i] = boundary[i]
			} else {
				a[i] = rng.Uint32() % p
			}
		}
		for i := range x {
			if i < len(boundary) {
				x[i] = boundary[len(boundary)-1-i]
			} else {
				x[i] = rng.Uint32() % p
			}
		}
		want := make([]uint32, rows)
		for i := 0; i < rows; i++ {
			want[i] = gfDotRef(a[i*cols:(i+1)*cols], x)
		}
		for _, backend := range Backends() {
			withBackend(t, backend, func() {
				got := make([]uint32, rows)
				GFMatVecMod31(got, a, cols, x, 0, rows)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("backend=%s cols=%d row=%d: %d != reference %d", backend, cols, i, got[i], want[i])
					}
				}
				// Sub-ranges must agree with the full product.
				if rows > 2 {
					part := make([]uint32, rows-2)
					GFMatVecMod31(part, a, cols, x, 1, rows-1)
					for i := range part {
						if part[i] != want[i+1] {
							t.Fatalf("backend=%s cols=%d: range row %d mismatch", backend, cols, i+1)
						}
					}
				}
			})
		}
	}
	// Worst-case fold bound: a long all-(p−1) row against an all-(p−1) x
	// keeps every product at its 62-bit maximum.
	const long = 10007
	a := make([]uint32, long)
	x := make([]uint32, long)
	for i := range a {
		a[i], x[i] = p-1, p-1
	}
	want := gfDotRef(a, x)
	for _, backend := range Backends() {
		withBackend(t, backend, func() {
			got := make([]uint32, 1)
			GFMatVecMod31(got, a, long, x, 0, 1)
			if got[0] != want {
				t.Fatalf("backend=%s long all-(p-1) row: %d != reference %d", backend, got[0], want)
			}
		})
	}
}

// TestGFMatVecBatchMatchesSingle: a w-lane GF batch must equal w single-x
// sweeps exactly on every backend (modular arithmetic leaves no rounding
// slack anywhere).
func TestGFMatVecBatchMatchesSingle(t *testing.T) {
	const p = uint32(p31)
	rng := rand.New(rand.NewSource(64))
	for _, shape := range [][2]int{{1, 1}, {5, 9}, {7, 24}, {16, 33}} {
		rows, cols := shape[0], shape[1]
		for _, w := range []int{1, 2, 3, 4, 8, 9} {
			a := make([]uint32, rows*cols)
			xs := make([]uint32, w*cols)
			for i := range a {
				a[i] = rng.Uint32() % p
			}
			for i := range xs {
				xs[i] = rng.Uint32() % p
			}
			for _, backend := range Backends() {
				withBackend(t, backend, func() {
					got := make([]uint32, rows*w)
					GFMatVecBatchMod31(got, a, cols, xs, w, 0, rows)
					single := make([]uint32, rows)
					for l := 0; l < w; l++ {
						GFMatVecMod31(single, a, cols, xs[l*cols:(l+1)*cols], 0, rows)
						for i := 0; i < rows; i++ {
							if got[i*w+l] != single[i] {
								t.Fatalf("backend=%s %dx%d w=%d lane=%d row=%d: batch %d != single %d",
									backend, rows, cols, w, l, i, got[i*w+l], single[i])
							}
						}
					}
				})
			}
		}
	}
}

func FuzzGFMatVecBackends(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, []byte{7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0xFE, 0xFF, 0xFF, 0x7F}, []byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, rowData, xData []byte) {
		if len(rowData) > 1<<12 || len(xData) > 1<<12 {
			t.Skip()
		}
		const p = uint32(p31)
		n := min(len(rowData), len(xData)) / 4
		row := make([]uint32, n)
		x := make([]uint32, n)
		for i := 0; i < n; i++ {
			row[i] = (uint32(rowData[i*4]) | uint32(rowData[i*4+1])<<8 | uint32(rowData[i*4+2])<<16 | uint32(rowData[i*4+3])<<24) % p
			x[i] = (uint32(xData[i*4]) | uint32(xData[i*4+1])<<8 | uint32(xData[i*4+2])<<16 | uint32(xData[i*4+3])<<24) % p
		}
		want := gfDotRef(row, x)
		for _, backend := range Backends() {
			withBackend(t, backend, func() {
				got := make([]uint32, 1)
				GFMatVecMod31(got, row, n, x, 0, 1)
				if got[0] != want {
					t.Fatalf("backend=%s n=%d: %d != reference %d", backend, n, got[0], want)
				}
			})
		}
	})
}

// TestGFMatVecVectorSpeedup asserts the acceptance criterion for the GF
// dot-lane kernel: the dispatched vector backend at least 1.5× over the
// scalar fold at a cache-resident 512².
func TestGFMatVecVectorSpeedup(t *testing.T) {
	skipUnlessVectorDispatched(t)
	const rows, cols = 512, 512
	a := make([]uint32, rows*cols)
	x := make([]uint32, cols)
	for i := range a {
		a[i] = (uint32(i) * 2654435761) % uint32(p31)
	}
	for i := range x {
		x[i] = (uint32(i) * 40503) % uint32(p31)
	}
	dst := make([]uint32, rows)
	vec := ActiveBackend()
	run := func(name string) time.Duration {
		var d time.Duration
		withBackend(t, name, func() {
			d = bestOf(7, 20, func() { GFMatVecMod31(dst, a, cols, x, 0, rows) })
		})
		return d
	}
	scalar := run("generic")
	vector := run(vec)
	t.Logf("GFMatVec %dx%d: generic %v, %s %v (%.2fx)", rows, cols, scalar, vec, vector, float64(scalar)/float64(vector))
	if float64(scalar) < 1.5*float64(vector) {
		t.Fatalf("vector GFMatVec only %.2fx over scalar, want >= 1.5x", float64(scalar)/float64(vector))
	}
}

// TestMatVecBatchVectorSpeedup asserts the acceptance criterion for the
// batched kernel on the dispatched vector backend: one 8-lane sweep at
// least 2× the throughput of eight single-x sweeps over the same A. The
// matrix is sized well past L2 so the single-x sweeps pay the full A
// stream each time — the DRAM-bound gap the batch exists to close.
func TestMatVecBatchVectorSpeedup(t *testing.T) {
	skipUnlessVectorDispatched(t)
	const rows, cols, w = 1024, 1024, 8
	rng := rand.New(rand.NewSource(65))
	a := randSlice(rows*cols, rng)
	xs := randSlice(w*cols, rng)
	batchDst := make([]float64, rows*w)
	singleDst := make([]float64, rows)
	batch := bestOf(5, 3, func() { MatVecBatch(batchDst, a, rows, cols, xs, w) })
	single := bestOf(5, 3, func() {
		for l := 0; l < w; l++ {
			MatVec(singleDst, a, rows, cols, xs[l*cols:(l+1)*cols])
		}
	})
	t.Logf("MatVecBatch %dx%d w=%d: batch %v, %d singles %v (%.2fx)",
		rows, cols, w, batch, w, single, float64(single)/float64(batch))
	if float64(single) < 2*float64(batch) {
		t.Fatalf("batched sweep only %.2fx over %d single sweeps, want >= 2x", float64(single)/float64(batch), w)
	}
}

// BenchmarkBatchKernels reports the new kernels under every backend, the
// same side-by-side shape as BenchmarkKernelBackends.
func BenchmarkBatchKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(66))
	const rows, cols, w = 512, 512, 8
	a := randSlice(rows*cols, rng)
	xs := randSlice(w*cols, rng)
	dst := make([]float64, rows*w)
	ga := make([]uint32, rows*cols)
	gx := make([]uint32, w*cols)
	for i := range ga {
		ga[i] = (uint32(i) * 2654435761) % uint32(p31)
	}
	for i := range gx {
		gx[i] = (uint32(i) * 40503) % uint32(p31)
	}
	gdst := make([]uint32, rows*w)
	prev := ActiveBackend()
	defer SetBackend(prev) //nolint:errcheck
	for _, backend := range Backends() {
		if err := SetBackend(backend); err != nil {
			b.Fatal(err)
		}
		b.Run("MatVecBatch512w8/"+backend, func(b *testing.B) {
			b.SetBytes(8 * rows * cols)
			for i := 0; i < b.N; i++ {
				MatVecBatch(dst, a, rows, cols, xs, w)
			}
		})
		b.Run("GFMatVec512/"+backend, func(b *testing.B) {
			b.SetBytes(4 * rows * cols)
			for i := 0; i < b.N; i++ {
				GFMatVecMod31(gdst[:rows], ga, cols, gx[:cols], 0, rows)
			}
		})
		b.Run("GFMatVecBatch512w8/"+backend, func(b *testing.B) {
			b.SetBytes(4 * rows * cols)
			for i := 0; i < b.N; i++ {
				GFMatVecBatchMod31(gdst, ga, cols, gx, w, 0, rows)
			}
		})
	}
}
