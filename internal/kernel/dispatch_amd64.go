//go:build amd64 && !noasm

package kernel

// archBackends reports the vector backends this CPU can run, best last
// (init picks the final entry). Every registration sits inside its own
// cpuHas* feature guard — the backendpair analyzer enforces that shape, so
// a backend can never be registered on hardware that cannot execute it.
// The AVX2 backend needs AVX2+FMA and OS-enabled YMM state; the AVX-512
// backend additionally needs AVX512F/DQ/BW/VL and OS-enabled
// OPMASK/ZMM/Hi16-ZMM state.
func archBackends() []*backendImpl {
	var out []*backendImpl
	if cpuHasAVX2FMA() {
		out = append(out, avx2Backend)
	}
	if cpuHasAVX512() {
		out = append(out, avx512Backend)
	}
	return out
}
