//go:build amd64 && !noasm

package kernel

// archBackends reports the vector backends this CPU can run. The AVX2
// backend additionally needs FMA and OS-enabled YMM state; absent any of
// those the generic backend is the only choice.
func archBackends() []*backendImpl {
	if !cpuHasAVX2FMA() {
		return nil
	}
	return []*backendImpl{avx2Backend}
}
