// Package kernel is the shared compute substrate of the S2C2 stack: flat
// float64 kernels (dot, axpy, mat-vec, cache-blocked mat-mul), the
// GF(2³¹−1) mul-accumulate lane kernel, a persistent sized worker pool for
// band-parallel execution, and sync.Pool-backed workspace buffers.
//
// Everything above this package — mat, gf, coding, sim, rpc, workloads —
// routes its hot loops through these kernels, so a performance improvement
// here lifts the whole stack at once.
//
// # Backends
//
// Every kernel dispatches through a backend selected once at init:
// "generic" is portable scalar Go and the reference semantics; "avx2"
// (amd64, no noasm tag, CPU with AVX2+FMA) uses hand-written assembly with
// 256-bit FMA accumulators; "avx512" (additionally AVX512F/DQ/BW/VL with
// OS-enabled OPMASK/ZMM state) uses 512-bit accumulators with
// opmask-register tail handling in place of scratch-tile padding.
// Selection is observable via ActiveBackend and
// forceable via the S2C2_KERNEL_BACKEND environment variable or
// SetBackend. Each backend uses a fixed accumulation order, so results are
// bit-identical run to run *within* a backend; across backends, float64
// results agree within accumulated rounding tolerance and GF results agree
// exactly.
//
// Kernels operate on raw row-major slices and perform no argument
// validation; callers (normally package mat) own shape checking. All
// kernels are safe for concurrent use on disjoint destinations.
package kernel

// Register blocking and cache blocking parameters.
//
// The generic mat-mul micro-kernel computes 4 rows of C per sweep over a B
// panel, cutting B traffic 4× versus the naive row-at-a-time loop. Panels
// of kcBlock B-rows by ncBlock columns (512 KiB at the defaults) are sized
// to stay resident in L2 across the sweep. The AVX2 backend shares the
// panel dimensions but packs 8-column tiles (see avx2_amd64.go).
const (
	mrRows  = 4   // micro-kernel C rows
	nrCols  = 4   // generic micro-kernel C cols
	kcBlock = 256 // B panel rows (shared dim block)
	ncBlock = 256 // B panel cols
)

// Dot returns the inner product of x and y (lengths must match).
//
//s2c2:noalloc
func Dot(x, y []float64) float64 {
	return active.Load().dot(x, y)
}

// Axpy computes y += a*x elementwise (lengths must match). a == 0 is a
// no-op on every backend (NaN/Inf in x are not propagated).
//
//s2c2:noalloc
func Axpy(a float64, x, y []float64) {
	if a == 0 {
		return
	}
	active.Load().axpy(a, x, y)
}

// Scale multiplies every element of x by a in place.
//
//s2c2:noalloc
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Zero clears x.
//
//s2c2:noalloc
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// MatVec computes dst = A·x for row-major A (rows×cols).
//
//s2c2:noalloc
func MatVec(dst, a []float64, rows, cols int, x []float64) {
	active.Load().matVecRange(dst, a, cols, x, 0, rows)
}

// MatVecRange computes dst[i-lo] = (A·x)[i] for i in [lo, hi).
// dst has length hi-lo.
//
//s2c2:noalloc
func MatVecRange(dst, a []float64, cols int, x []float64, lo, hi int) {
	active.Load().matVecRange(dst, a, cols, x, lo, hi)
}

// MatVecBatch computes dst = A·[x_0 … x_{w-1}] for row-major A
// (rows×cols): one sweep of A serving w x-vectors. xs holds the vectors
// concatenated (x_l at xs[l*cols : (l+1)*cols]); dst is row-major w-wide
// (dst[i*w+l] = (A·x_l)[i]).
//
//s2c2:noalloc
func MatVecBatch(dst, a []float64, rows, cols int, xs []float64, w int) {
	active.Load().matVecRangeBatch(dst, a, cols, xs, w, 0, rows)
}

// MatVecRangeBatch computes dst[(i-lo)*w+l] = (A·x_l)[i] for i in
// [lo, hi); layouts as in MatVecBatch. Row bands are independent:
// splitting a range at any row boundary is bit-identical to the unbanded
// call on the same backend.
//
//s2c2:noalloc
func MatVecRangeBatch(dst, a []float64, cols int, xs []float64, w, lo, hi int) {
	active.Load().matVecRangeBatch(dst, a, cols, xs, w, lo, hi)
}

// VecMat computes dst = xᵀ·A (length cols) for row-major A (rows×cols),
// streaming row-wise. dst is overwritten.
//
//s2c2:noalloc
func VecMat(dst, x, a []float64, rows, cols int) {
	Zero(dst)
	bk := active.Load()
	for i := 0; i < rows; i++ {
		if x[i] == 0 {
			continue
		}
		bk.axpy(x[i], a[i*cols:(i+1)*cols], dst)
	}
}

// MatMul computes dst = A·B for row-major A (m×k) and B (k×n), overwriting
// dst (m×n). The loop nest is cache-blocked (kcBlock×ncBlock B panels) and
// register-blocked (a backend-specific micro-kernel per panel sweep).
//
//s2c2:noalloc
func MatMul(dst, a []float64, m, k int, b []float64, n int) {
	Zero(dst[:m*n])
	active.Load().matMulAccRange(dst, a, k, b, n, 0, m)
}

// MatMulRange computes rows [lo, hi) of dst = A·B, overwriting those rows.
// Bands are independent, so disjoint row ranges may run concurrently.
//
//s2c2:noalloc
func MatMulRange(dst, a []float64, m, k int, b []float64, n int, lo, hi int) {
	_ = m
	Zero(dst[lo*n : hi*n])
	active.Load().matMulAccRange(dst, a, k, b, n, lo, hi)
}

// MatMulAccRange accumulates rows [lo, hi) of A·B into dst (dst += A·B).
//
//s2c2:noalloc
func MatMulAccRange(dst, a []float64, m, k int, b []float64, n int, lo, hi int) {
	_ = m
	active.Load().matMulAccRange(dst, a, k, b, n, lo, hi)
}

// GFAxpyMod31 computes dst[i] ← dst[i] + c·src[i] over GF(2³¹−1), the
// mul-accumulate lane kernel behind gf.Axpy. Inputs must be fully reduced
// (< 2³¹−1); lengths must match. Results are exact on every backend (this
// is modular arithmetic, not floating point).
//
//s2c2:noalloc
func GFAxpyMod31(dst []uint32, c uint32, src []uint32) {
	if c == 0 {
		return
	}
	active.Load().gfAxpy(dst, c, src)
}

// GFMatVecMod31 computes dst[i-lo] = (A·x)[i] over GF(2³¹−1) for i in
// [lo, hi), A row-major with cols columns — the dot-lane kernel behind
// gf.Matrix.MulVecRangeInto (worker compute, decode solves). Inputs must
// be fully reduced; results are exact and identical on every backend
// (modular reduction is order-independent).
//
//s2c2:noalloc
func GFMatVecMod31(dst, a []uint32, cols int, x []uint32, lo, hi int) {
	active.Load().gfMatVec(dst, a, cols, x, lo, hi)
}

// GFMatVecBatchMod31 is GFMatVecMod31 over w concatenated x-vectors with
// row-major w-wide output (layouts as in MatVecBatch). Exact on every
// backend.
//
//s2c2:noalloc
func GFMatVecBatchMod31(dst, a []uint32, cols int, xs []uint32, w, lo, hi int) {
	active.Load().gfMatVecBatch(dst, a, cols, xs, w, lo, hi)
}

// GFMatMulAccMod31 accumulates rows [lo, hi) of A·B over GF(2³¹−1) into
// dst: dst[(i-lo)*n+j] += Σ_t A[i,t]·B[t,j] mod 2³¹−1 for row-major A
// (rows×k) and B (k×n). dst is band-relative ((hi-lo)×n) — unlike the
// float64 MatMulAccRange's absolute indexing — because the decode solves
// it backs (gf.Matrix.MulRangeInto) write compact per-band outputs.
// Inputs must be fully reduced; results are exact and identical on every
// backend.
//
//s2c2:noalloc
func GFMatMulAccMod31(dst, a []uint32, k int, b []uint32, n, lo, hi int) {
	active.Load().gfMatMulAccRange(dst, a, k, b, n, lo, hi)
}

// ATDiagBRange accumulates rows [lo, hi) of Aᵀ·diag(d)·B into dst, the
// partial bilinear kernel a polynomial-coded worker runs. A is m×ka, B is
// m×nb, dst is (hi-lo)×nb row-major and is overwritten.
//
//s2c2:noalloc
func ATDiagBRange(dst, a, d, b []float64, m, ka, nb, lo, hi int) {
	Zero(dst[:(hi-lo)*nb])
	bk := active.Load()
	for i := 0; i < m; i++ {
		di := d[i]
		if di == 0 {
			continue
		}
		arow := a[i*ka : (i+1)*ka]
		brow := b[i*nb : (i+1)*nb]
		for p := lo; p < hi; p++ {
			s := di * arow[p]
			if s == 0 {
				continue
			}
			bk.axpy(s, brow, dst[(p-lo)*nb:(p-lo+1)*nb])
		}
	}
}
