// Package kernel is the shared compute substrate of the S2C2 stack: flat
// float64 kernels (dot, axpy, mat-vec, cache-blocked mat-mul), a persistent
// sized worker pool for band-parallel execution, and sync.Pool-backed
// workspace buffers.
//
// Everything above this package — mat, coding, sim, rpc, workloads — routes
// its float64 hot loops through these kernels, so a performance improvement
// here (SIMD, better blocking, a future cgo/BLAS backend) lifts the whole
// stack at once.
//
// Kernels operate on raw row-major slices and perform no argument
// validation; callers (normally package mat) own shape checking. All
// kernels are safe for concurrent use on disjoint destinations.
package kernel

// Register blocking and cache blocking parameters.
//
// The mat-mul micro-kernel computes 4 rows of C per sweep over a B panel,
// cutting B traffic 4× versus the naive row-at-a-time loop. Panels of
// kcBlock B-rows by ncBlock columns (256 KiB at the defaults) are sized to
// stay resident in L2 across the sweep.
const (
	mrRows  = 4   // micro-kernel C rows
	nrCols  = 4   // micro-kernel C cols
	kcBlock = 256 // B panel rows (shared dim block)
	ncBlock = 256 // B panel cols
)

// Dot returns the inner product of x and y (lengths must match). Four
// independent accumulators expose instruction-level parallelism; the
// summation order therefore differs from a sequential loop by O(ε).
func Dot(x, y []float64) float64 {
	n := len(x)
	y = y[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < n; i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Axpy computes y += a*x elementwise (lengths must match).
func Axpy(a float64, x, y []float64) {
	if a == 0 {
		return
	}
	x = x[:len(y)]
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies every element of x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Zero clears x.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// MatVec computes dst = A·x for row-major A (rows×cols).
func MatVec(dst, a []float64, rows, cols int, x []float64) {
	MatVecRange(dst, a, cols, x, 0, rows)
}

// MatVecRange computes dst[i-lo] = (A·x)[i] for i in [lo, hi).
// dst has length hi-lo.
func MatVecRange(dst, a []float64, cols int, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = Dot(a[i*cols:(i+1)*cols], x)
	}
}

// VecMat computes dst = xᵀ·A (length cols) for row-major A (rows×cols),
// streaming row-wise. dst is overwritten.
func VecMat(dst, x, a []float64, rows, cols int) {
	Zero(dst)
	for i := 0; i < rows; i++ {
		Axpy(x[i], a[i*cols:(i+1)*cols], dst)
	}
}

// MatMul computes dst = A·B for row-major A (m×k) and B (k×n), overwriting
// dst (m×n). The loop nest is cache-blocked (kcBlock×ncBlock B panels) and
// register-blocked (mrRows C rows per panel sweep).
func MatMul(dst, a []float64, m, k int, b []float64, n int) {
	Zero(dst[:m*n])
	MatMulAccRange(dst, a, m, k, b, n, 0, m)
}

// MatMulRange computes rows [lo, hi) of dst = A·B, overwriting those rows.
// Bands are independent, so disjoint row ranges may run concurrently.
func MatMulRange(dst, a []float64, m, k int, b []float64, n int, lo, hi int) {
	Zero(dst[lo*n : hi*n])
	MatMulAccRange(dst, a, m, k, b, n, lo, hi)
}

// MatMulAccRange accumulates rows [lo, hi) of A·B into dst (dst += A·B).
//
// Each kcBlock×ncBlock panel of B is packed once into contiguous 4-column
// tiles (GotoBLAS-style), so the 4×4 register micro-kernel streams both A
// and the packed panel sequentially. The pack buffer is pooled.
func MatMulAccRange(dst, a []float64, m, k int, b []float64, n int, lo, hi int) {
	_ = m
	if hi <= lo {
		return
	}
	buf := GetBuf(kcBlock * ncBlock)
	defer buf.Put()
	for kk := 0; kk < k; kk += kcBlock {
		kc := kcBlock
		if kk+kc > k {
			kc = k - kk
		}
		for jj := 0; jj < n; jj += ncBlock {
			nc := ncBlock
			if jj+nc > n {
				nc = n - jj
			}
			packPanel(buf.F, b, n, kk, kc, jj, nc)
			i := lo
			for ; i+mrRows <= hi; i += mrRows {
				mulPanel4(dst, a, buf.F, i, k, n, kk, kc, jj, nc)
			}
			for ; i < hi; i++ {
				mulPanel1(dst, a, buf.F, i, k, n, kk, kc, jj, nc)
			}
		}
	}
}

// packPanel copies the B panel rows [kk,kk+kc) × cols [jj,jj+nc) into dst
// as 4-column tiles, each tile stored kc×4 row-major. The final tile is
// zero-padded to width 4 so the micro-kernel needs no column masking.
func packPanel(dst, b []float64, n, kk, kc, jj, nc int) {
	tiles := (nc + nrCols - 1) / nrCols
	for t := 0; t < tiles; t++ {
		base := t * kc * nrCols
		j0 := jj + t*nrCols
		w := nc - t*nrCols
		if w >= nrCols {
			for kx := 0; kx < kc; kx++ {
				src := b[(kk+kx)*n+j0 : (kk+kx)*n+j0+4 : (kk+kx)*n+j0+4]
				d := dst[base+kx*4 : base+kx*4+4 : base+kx*4+4]
				d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			}
			continue
		}
		for kx := 0; kx < kc; kx++ {
			d := dst[base+kx*4 : base+kx*4+4]
			for c := 0; c < nrCols; c++ {
				if c < w {
					d[c] = b[(kk+kx)*n+j0+c]
				} else {
					d[c] = 0
				}
			}
		}
	}
}

// mulPanel4 accumulates the (4 × [jj,jj+nc)) block of C rows i..i+3 from
// the packed B panel (kc rows). The 4×4 micro-kernel keeps its C block in
// sixteen register accumulators, so C is loaded and stored once per panel
// and both A and the packed panel stream sequentially.
func mulPanel4(c, a, packed []float64, i, k, n, kk, kc, jj, nc int) {
	a0 := a[i*k+kk : i*k+kk+kc]
	a1 := a[(i+1)*k+kk : (i+1)*k+kk+kc]
	a2 := a[(i+2)*k+kk : (i+2)*k+kk+kc]
	a3 := a[(i+3)*k+kk : (i+3)*k+kk+kc]
	tiles := (nc + nrCols - 1) / nrCols
	for t := 0; t < tiles; t++ {
		bt := packed[t*kc*4 : (t+1)*kc*4]
		var c00, c01, c02, c03 float64
		var c10, c11, c12, c13 float64
		var c20, c21, c22, c23 float64
		var c30, c31, c32, c33 float64
		for kx := 0; kx < kc; kx++ {
			brow := bt[kx*4 : kx*4+4 : kx*4+4]
			b0, b1, b2, b3 := brow[0], brow[1], brow[2], brow[3]
			av := a0[kx]
			c00 += av * b0
			c01 += av * b1
			c02 += av * b2
			c03 += av * b3
			av = a1[kx]
			c10 += av * b0
			c11 += av * b1
			c12 += av * b2
			c13 += av * b3
			av = a2[kx]
			c20 += av * b0
			c21 += av * b1
			c22 += av * b2
			c23 += av * b3
			av = a3[kx]
			c30 += av * b0
			c31 += av * b1
			c32 += av * b2
			c33 += av * b3
		}
		j := jj + t*nrCols
		w := nc - t*nrCols
		if w > nrCols {
			w = nrCols
		}
		store4(c[i*n+j:i*n+j+w], w, c00, c01, c02, c03)
		store4(c[(i+1)*n+j:(i+1)*n+j+w], w, c10, c11, c12, c13)
		store4(c[(i+2)*n+j:(i+2)*n+j+w], w, c20, c21, c22, c23)
		store4(c[(i+3)*n+j:(i+3)*n+j+w], w, c30, c31, c32, c33)
	}
}

// store4 accumulates up to four register values into a C row fragment.
func store4(dst []float64, w int, v0, v1, v2, v3 float64) {
	switch w {
	case 4:
		dst[0] += v0
		dst[1] += v1
		dst[2] += v2
		dst[3] += v3
	case 3:
		dst[0] += v0
		dst[1] += v1
		dst[2] += v2
	case 2:
		dst[0] += v0
		dst[1] += v1
	case 1:
		dst[0] += v0
	}
}

// mulPanel1 is the tail micro-kernel for a single C row over the packed
// panel: one row of register accumulators per 4-column tile.
func mulPanel1(c, a, packed []float64, i, k, n, kk, kc, jj, nc int) {
	a0 := a[i*k+kk : i*k+kk+kc]
	tiles := (nc + nrCols - 1) / nrCols
	for t := 0; t < tiles; t++ {
		bt := packed[t*kc*4 : (t+1)*kc*4]
		var c0, c1, c2, c3 float64
		for kx := 0; kx < kc; kx++ {
			av := a0[kx]
			if av == 0 {
				continue
			}
			brow := bt[kx*4 : kx*4+4 : kx*4+4]
			c0 += av * brow[0]
			c1 += av * brow[1]
			c2 += av * brow[2]
			c3 += av * brow[3]
		}
		j := jj + t*nrCols
		w := nc - t*nrCols
		if w > nrCols {
			w = nrCols
		}
		store4(c[i*n+j:i*n+j+w], w, c0, c1, c2, c3)
	}
}

// ATDiagBRange accumulates rows [lo, hi) of Aᵀ·diag(d)·B into dst, the
// partial bilinear kernel a polynomial-coded worker runs. A is m×ka, B is
// m×nb, dst is (hi-lo)×nb row-major and is overwritten.
func ATDiagBRange(dst, a, d, b []float64, m, ka, nb, lo, hi int) {
	Zero(dst[:(hi-lo)*nb])
	for i := 0; i < m; i++ {
		di := d[i]
		if di == 0 {
			continue
		}
		arow := a[i*ka : (i+1)*ka]
		brow := b[i*nb : (i+1)*nb]
		for p := lo; p < hi; p++ {
			s := di * arow[p]
			if s == 0 {
				continue
			}
			Axpy(s, brow, dst[(p-lo)*nb:(p-lo+1)*nb])
		}
	}
}
